# Empty dependencies file for dc_shortest_path.
# This may be replaced when dependencies are built.
