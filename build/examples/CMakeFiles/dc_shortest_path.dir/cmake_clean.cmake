file(REMOVE_RECURSE
  "CMakeFiles/dc_shortest_path.dir/dc_shortest_path.cpp.o"
  "CMakeFiles/dc_shortest_path.dir/dc_shortest_path.cpp.o.d"
  "dc_shortest_path"
  "dc_shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
