# Empty compiler generated dependencies file for route_symmetry.
# This may be replaced when dependencies are built.
