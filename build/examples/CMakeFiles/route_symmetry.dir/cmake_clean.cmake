file(REMOVE_RECURSE
  "CMakeFiles/route_symmetry.dir/route_symmetry.cpp.o"
  "CMakeFiles/route_symmetry.dir/route_symmetry.cpp.o.d"
  "route_symmetry"
  "route_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
