# Empty dependencies file for wan_waypoint.
# This may be replaced when dependencies are built.
