file(REMOVE_RECURSE
  "CMakeFiles/wan_waypoint.dir/wan_waypoint.cpp.o"
  "CMakeFiles/wan_waypoint.dir/wan_waypoint.cpp.o.d"
  "wan_waypoint"
  "wan_waypoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_waypoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
