# Empty compiler generated dependencies file for invariants_tour.
# This may be replaced when dependencies are built.
