file(REMOVE_RECURSE
  "CMakeFiles/invariants_tour.dir/invariants_tour.cpp.o"
  "CMakeFiles/invariants_tour.dir/invariants_tour.cpp.o.d"
  "invariants_tour"
  "invariants_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariants_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
