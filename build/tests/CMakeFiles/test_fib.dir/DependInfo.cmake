
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fib/fib_parser_test.cpp" "tests/CMakeFiles/test_fib.dir/fib/fib_parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_fib.dir/fib/fib_parser_test.cpp.o.d"
  "/root/repo/tests/fib/fib_table_test.cpp" "tests/CMakeFiles/test_fib.dir/fib/fib_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_fib.dir/fib/fib_table_test.cpp.o.d"
  "/root/repo/tests/fib/lec_test.cpp" "tests/CMakeFiles/test_fib.dir/fib/lec_test.cpp.o" "gcc" "tests/CMakeFiles/test_fib.dir/fib/lec_test.cpp.o.d"
  "/root/repo/tests/fib/rule_test.cpp" "tests/CMakeFiles/test_fib.dir/fib/rule_test.cpp.o" "gcc" "tests/CMakeFiles/test_fib.dir/fib/rule_test.cpp.o.d"
  "/root/repo/tests/fib/update_test.cpp" "tests/CMakeFiles/test_fib.dir/fib/update_test.cpp.o" "gcc" "tests/CMakeFiles/test_fib.dir/fib/update_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tulkun.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
