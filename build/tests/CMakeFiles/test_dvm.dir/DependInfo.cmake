
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dvm/cib_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/cib_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/cib_test.cpp.o.d"
  "/root/repo/tests/dvm/codec_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/codec_test.cpp.o.d"
  "/root/repo/tests/dvm/engine_more_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/engine_more_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/engine_more_test.cpp.o.d"
  "/root/repo/tests/dvm/engine_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/engine_test.cpp.o.d"
  "/root/repo/tests/dvm/multipath_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/multipath_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/multipath_test.cpp.o.d"
  "/root/repo/tests/dvm/transform_test.cpp" "tests/CMakeFiles/test_dvm.dir/dvm/transform_test.cpp.o" "gcc" "tests/CMakeFiles/test_dvm.dir/dvm/transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tulkun.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
