# Empty compiler generated dependencies file for test_dvm.
# This may be replaced when dependencies are built.
