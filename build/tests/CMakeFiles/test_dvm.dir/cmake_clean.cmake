file(REMOVE_RECURSE
  "CMakeFiles/test_dvm.dir/dvm/cib_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/cib_test.cpp.o.d"
  "CMakeFiles/test_dvm.dir/dvm/codec_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/codec_test.cpp.o.d"
  "CMakeFiles/test_dvm.dir/dvm/engine_more_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/engine_more_test.cpp.o.d"
  "CMakeFiles/test_dvm.dir/dvm/engine_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/engine_test.cpp.o.d"
  "CMakeFiles/test_dvm.dir/dvm/multipath_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/multipath_test.cpp.o.d"
  "CMakeFiles/test_dvm.dir/dvm/transform_test.cpp.o"
  "CMakeFiles/test_dvm.dir/dvm/transform_test.cpp.o.d"
  "test_dvm"
  "test_dvm.pdb"
  "test_dvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
