file(REMOVE_RECURSE
  "CMakeFiles/test_verifier.dir/verifier/flooding_test.cpp.o"
  "CMakeFiles/test_verifier.dir/verifier/flooding_test.cpp.o.d"
  "CMakeFiles/test_verifier.dir/verifier/verifier_test.cpp.o"
  "CMakeFiles/test_verifier.dir/verifier/verifier_test.cpp.o.d"
  "test_verifier"
  "test_verifier.pdb"
  "test_verifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
