# Empty compiler generated dependencies file for test_dpvnet.
# This may be replaced when dependencies are built.
