file(REMOVE_RECURSE
  "CMakeFiles/test_dpvnet.dir/dpvnet/build_test.cpp.o"
  "CMakeFiles/test_dpvnet.dir/dpvnet/build_test.cpp.o.d"
  "CMakeFiles/test_dpvnet.dir/dpvnet/compound_test.cpp.o"
  "CMakeFiles/test_dpvnet.dir/dpvnet/compound_test.cpp.o.d"
  "CMakeFiles/test_dpvnet.dir/dpvnet/fault_test.cpp.o"
  "CMakeFiles/test_dpvnet.dir/dpvnet/fault_test.cpp.o.d"
  "test_dpvnet"
  "test_dpvnet.pdb"
  "test_dpvnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpvnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
