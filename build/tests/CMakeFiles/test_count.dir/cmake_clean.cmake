file(REMOVE_RECURSE
  "CMakeFiles/test_count.dir/count/count_set_test.cpp.o"
  "CMakeFiles/test_count.dir/count/count_set_test.cpp.o.d"
  "test_count"
  "test_count.pdb"
  "test_count[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
