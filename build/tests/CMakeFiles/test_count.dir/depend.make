# Empty dependencies file for test_count.
# This may be replaced when dependencies are built.
