file(REMOVE_RECURSE
  "CMakeFiles/test_regex.dir/regex/describe_test.cpp.o"
  "CMakeFiles/test_regex.dir/regex/describe_test.cpp.o.d"
  "CMakeFiles/test_regex.dir/regex/dfa_test.cpp.o"
  "CMakeFiles/test_regex.dir/regex/dfa_test.cpp.o.d"
  "CMakeFiles/test_regex.dir/regex/parser_test.cpp.o"
  "CMakeFiles/test_regex.dir/regex/parser_test.cpp.o.d"
  "test_regex"
  "test_regex.pdb"
  "test_regex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
