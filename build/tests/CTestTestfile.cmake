# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_fib[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_count[1]_include.cmake")
include("/root/repo/build/tests/test_dpvnet[1]_include.cmake")
include("/root/repo/build/tests/test_dvm[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
