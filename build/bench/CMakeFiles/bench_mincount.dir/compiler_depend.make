# Empty compiler generated dependencies file for bench_mincount.
# This may be replaced when dependencies are built.
