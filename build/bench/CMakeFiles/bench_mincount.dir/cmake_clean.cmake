file(REMOVE_RECURSE
  "CMakeFiles/bench_mincount.dir/bench_mincount.cpp.o"
  "CMakeFiles/bench_mincount.dir/bench_mincount.cpp.o.d"
  "bench_mincount"
  "bench_mincount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mincount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
