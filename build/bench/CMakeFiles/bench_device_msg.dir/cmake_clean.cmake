file(REMOVE_RECURSE
  "CMakeFiles/bench_device_msg.dir/bench_device_msg.cpp.o"
  "CMakeFiles/bench_device_msg.dir/bench_device_msg.cpp.o.d"
  "bench_device_msg"
  "bench_device_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
