# Empty compiler generated dependencies file for bench_device_msg.
# This may be replaced when dependencies are built.
