# Empty compiler generated dependencies file for bench_device_init.
# This may be replaced when dependencies are built.
