file(REMOVE_RECURSE
  "CMakeFiles/bench_device_init.dir/bench_device_init.cpp.o"
  "CMakeFiles/bench_device_init.dir/bench_device_init.cpp.o.d"
  "bench_device_init"
  "bench_device_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
