file(REMOVE_RECURSE
  "libtulkun.a"
)
