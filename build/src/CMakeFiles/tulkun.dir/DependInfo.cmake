
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ap.cpp" "src/CMakeFiles/tulkun.dir/baseline/ap.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/ap.cpp.o.d"
  "/root/repo/src/baseline/apkeep.cpp" "src/CMakeFiles/tulkun.dir/baseline/apkeep.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/apkeep.cpp.o.d"
  "/root/repo/src/baseline/centralized.cpp" "src/CMakeFiles/tulkun.dir/baseline/centralized.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/centralized.cpp.o.d"
  "/root/repo/src/baseline/deltanet.cpp" "src/CMakeFiles/tulkun.dir/baseline/deltanet.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/deltanet.cpp.o.d"
  "/root/repo/src/baseline/flash.cpp" "src/CMakeFiles/tulkun.dir/baseline/flash.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/flash.cpp.o.d"
  "/root/repo/src/baseline/veriflow.cpp" "src/CMakeFiles/tulkun.dir/baseline/veriflow.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/baseline/veriflow.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/tulkun.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/serialize.cpp" "src/CMakeFiles/tulkun.dir/bdd/serialize.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/bdd/serialize.cpp.o.d"
  "/root/repo/src/core/error.cpp" "src/CMakeFiles/tulkun.dir/core/error.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/core/error.cpp.o.d"
  "/root/repo/src/core/interval_set.cpp" "src/CMakeFiles/tulkun.dir/core/interval_set.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/core/interval_set.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/tulkun.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/core/stats.cpp.o.d"
  "/root/repo/src/count/count_set.cpp" "src/CMakeFiles/tulkun.dir/count/count_set.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/count/count_set.cpp.o.d"
  "/root/repo/src/dpvnet/compound.cpp" "src/CMakeFiles/tulkun.dir/dpvnet/compound.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dpvnet/compound.cpp.o.d"
  "/root/repo/src/dpvnet/dpvnet.cpp" "src/CMakeFiles/tulkun.dir/dpvnet/dpvnet.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dpvnet/dpvnet.cpp.o.d"
  "/root/repo/src/dpvnet/fault_tolerant.cpp" "src/CMakeFiles/tulkun.dir/dpvnet/fault_tolerant.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dpvnet/fault_tolerant.cpp.o.d"
  "/root/repo/src/dpvnet/product.cpp" "src/CMakeFiles/tulkun.dir/dpvnet/product.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dpvnet/product.cpp.o.d"
  "/root/repo/src/dvm/cib.cpp" "src/CMakeFiles/tulkun.dir/dvm/cib.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dvm/cib.cpp.o.d"
  "/root/repo/src/dvm/codec.cpp" "src/CMakeFiles/tulkun.dir/dvm/codec.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dvm/codec.cpp.o.d"
  "/root/repo/src/dvm/engine.cpp" "src/CMakeFiles/tulkun.dir/dvm/engine.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dvm/engine.cpp.o.d"
  "/root/repo/src/dvm/pathset.cpp" "src/CMakeFiles/tulkun.dir/dvm/pathset.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/dvm/pathset.cpp.o.d"
  "/root/repo/src/eval/datasets.cpp" "src/CMakeFiles/tulkun.dir/eval/datasets.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/eval/datasets.cpp.o.d"
  "/root/repo/src/eval/fib_synth.cpp" "src/CMakeFiles/tulkun.dir/eval/fib_synth.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/eval/fib_synth.cpp.o.d"
  "/root/repo/src/eval/harness.cpp" "src/CMakeFiles/tulkun.dir/eval/harness.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/eval/harness.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/tulkun.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/workload.cpp" "src/CMakeFiles/tulkun.dir/eval/workload.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/eval/workload.cpp.o.d"
  "/root/repo/src/fib/fib_parser.cpp" "src/CMakeFiles/tulkun.dir/fib/fib_parser.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/fib/fib_parser.cpp.o.d"
  "/root/repo/src/fib/fib_table.cpp" "src/CMakeFiles/tulkun.dir/fib/fib_table.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/fib/fib_table.cpp.o.d"
  "/root/repo/src/fib/lec.cpp" "src/CMakeFiles/tulkun.dir/fib/lec.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/fib/lec.cpp.o.d"
  "/root/repo/src/fib/rule.cpp" "src/CMakeFiles/tulkun.dir/fib/rule.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/fib/rule.cpp.o.d"
  "/root/repo/src/fib/update_stream.cpp" "src/CMakeFiles/tulkun.dir/fib/update_stream.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/fib/update_stream.cpp.o.d"
  "/root/repo/src/packet/fields.cpp" "src/CMakeFiles/tulkun.dir/packet/fields.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/packet/fields.cpp.o.d"
  "/root/repo/src/packet/packet_set.cpp" "src/CMakeFiles/tulkun.dir/packet/packet_set.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/packet/packet_set.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/tulkun.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/partition/partition.cpp.o.d"
  "/root/repo/src/planner/planner.cpp" "src/CMakeFiles/tulkun.dir/planner/planner.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/planner/planner.cpp.o.d"
  "/root/repo/src/planner/tasks.cpp" "src/CMakeFiles/tulkun.dir/planner/tasks.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/planner/tasks.cpp.o.d"
  "/root/repo/src/regex/dfa.cpp" "src/CMakeFiles/tulkun.dir/regex/dfa.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/regex/dfa.cpp.o.d"
  "/root/repo/src/regex/minimize.cpp" "src/CMakeFiles/tulkun.dir/regex/minimize.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/regex/minimize.cpp.o.d"
  "/root/repo/src/regex/nfa.cpp" "src/CMakeFiles/tulkun.dir/regex/nfa.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/regex/nfa.cpp.o.d"
  "/root/repo/src/regex/parser.cpp" "src/CMakeFiles/tulkun.dir/regex/parser.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/regex/parser.cpp.o.d"
  "/root/repo/src/runtime/event_sim.cpp" "src/CMakeFiles/tulkun.dir/runtime/event_sim.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/runtime/event_sim.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/tulkun.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/thread_runtime.cpp" "src/CMakeFiles/tulkun.dir/runtime/thread_runtime.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/runtime/thread_runtime.cpp.o.d"
  "/root/repo/src/spec/ast.cpp" "src/CMakeFiles/tulkun.dir/spec/ast.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/spec/ast.cpp.o.d"
  "/root/repo/src/spec/builtins.cpp" "src/CMakeFiles/tulkun.dir/spec/builtins.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/spec/builtins.cpp.o.d"
  "/root/repo/src/spec/check.cpp" "src/CMakeFiles/tulkun.dir/spec/check.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/spec/check.cpp.o.d"
  "/root/repo/src/spec/multipath.cpp" "src/CMakeFiles/tulkun.dir/spec/multipath.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/spec/multipath.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/CMakeFiles/tulkun.dir/spec/parser.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/spec/parser.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/CMakeFiles/tulkun.dir/topo/generators.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/topo/generators.cpp.o.d"
  "/root/repo/src/topo/parser.cpp" "src/CMakeFiles/tulkun.dir/topo/parser.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/topo/parser.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/tulkun.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/topo/topology.cpp.o.d"
  "/root/repo/src/verifier/flooding.cpp" "src/CMakeFiles/tulkun.dir/verifier/flooding.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/verifier/flooding.cpp.o.d"
  "/root/repo/src/verifier/verifier.cpp" "src/CMakeFiles/tulkun.dir/verifier/verifier.cpp.o" "gcc" "src/CMakeFiles/tulkun.dir/verifier/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
