# Empty compiler generated dependencies file for tulkun.
# This may be replaced when dependencies are built.
