#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "eval/workload.hpp"
#include "topo/generators.hpp"

namespace tulkun::eval {
namespace {

TEST(Datasets, RegistryHasThirteen) {
  const auto& all = all_datasets();
  ASSERT_EQ(all.size(), 13u);
  EXPECT_EQ(all.front().name, "INet2");
  EXPECT_EQ(all.back().name, "NGDC");
  EXPECT_THROW((void)dataset("nope"), Error);
  EXPECT_EQ(dataset("FT-48").kind, "DC");
  EXPECT_EQ(wan_lan_datasets().size(), 11u);
}

TEST(Datasets, TopologiesBuildWithPublishedShapes) {
  const auto& inet2 = dataset("INet2");
  const auto t = build_topology(inet2);
  EXPECT_EQ(t.device_count(), 9u);
  EXPECT_EQ(t.link_count(), 13u);

  const auto ft = build_topology(dataset("FT-48"));
  EXPECT_EQ(ft.device_count(), 80u);  // scaled k=8
}

TEST(Datasets, RuleCountSensitivityPairs) {
  HarnessOptions opts;
  Harness a1(dataset("AT1-1"), opts);
  Harness a2(dataset("AT1-2"), opts);
  // Same topology...
  EXPECT_EQ(a1.topology().device_count(), a2.topology().device_count());
  EXPECT_EQ(a1.topology().link_count(), a2.topology().link_count());
  // ...but AT1-2 carries several times the rules.
  EXPECT_GT(a2.total_rules(), a1.total_rules() * 3);
}

TEST(FibSynth, EveryPairRoutedAndDelivered) {
  const auto t = build_topology(dataset("INet2"));
  const auto net = synthesize(t, SynthOptions{2, 0, 1});
  // Every device has one rule per destination prefix in the network.
  const std::size_t total_prefixes = t.all_prefix_attachments().size();
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    EXPECT_EQ(net.table(d).size(), total_prefixes);
  }
  // Delivery rule at each owner.
  for (const auto& [dev, prefix] : t.all_prefix_attachments()) {
    bool delivers = false;
    for (const auto* r : net.table(dev).all()) {
      if (r->dst_prefix == prefix &&
          r->action.forwards_to(fib::kExternalPort)) {
        delivers = true;
      }
    }
    EXPECT_TRUE(delivers);
  }
}

TEST(FibSynth, EcmpWidthRespected) {
  const auto t = topo::fat_tree(4);
  const auto net = synthesize(t, SynthOptions{2, 0, 1});
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    for (const auto* r : net.table(d).all()) {
      EXPECT_LE(r->action.next_hops.size(), 2u);
      if (r->action.next_hops.size() > 1) {
        EXPECT_EQ(r->action.type, fib::ActionType::Any);
      }
    }
  }
}

TEST(FibSynth, ExtraRulesInflateCount) {
  const auto t = build_topology(dataset("INet2"));
  const auto base = synthesize(t, SynthOptions{2, 0, 1});
  const auto fat = synthesize(t, SynthOptions{2, 3, 1});
  EXPECT_GT(fat.total_rules(), base.total_rules() * 3);
}

TEST(Workload, RandomUpdatesBalanced) {
  const auto t = build_topology(dataset("INet2"));
  auto net = synthesize(t, SynthOptions{2, 0, 1});
  const auto plan = random_updates(t, net, 100, 5);
  ASSERT_EQ(plan.steps.size(), 100u);
  std::size_t erases = 0;
  for (const auto& s : plan.steps) {
    if (s.update.kind == fib::FibUpdate::Kind::Erase) {
      ++erases;
      ASSERT_GE(s.erase_of, 0);
      EXPECT_EQ(plan.steps[static_cast<std::size_t>(s.erase_of)]
                    .update.kind,
                fib::FibUpdate::Kind::Insert);
    }
  }
  EXPECT_GT(erases, 10u);
  EXPECT_LT(erases, 90u);
}

TEST(Workload, UpdatesReplayCleanly) {
  const auto t = build_topology(dataset("INet2"));
  auto net = synthesize(t, SynthOptions{2, 0, 1});
  auto plan = random_updates(t, net, 60, 6);
  std::vector<std::uint64_t> ids(plan.steps.size(), 0);
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    auto upd = plan.steps[i].update;
    if (plan.steps[i].erase_of >= 0) {
      upd.rule_id = ids[static_cast<std::size_t>(plan.steps[i].erase_of)];
    }
    (void)fib::apply_update(net, upd);
    ids[i] = upd.rule_id;
  }
  SUCCEED();
}

TEST(Workload, FaultScenesSizedAndSubsetsClosed) {
  const auto t = build_topology(dataset("B4-13"));
  const auto scenes = sample_fault_scenes(t, 20, 3, 9);
  EXPECT_LE(scenes.size(), 20u);
  for (const auto& s : scenes) {
    EXPECT_GE(s.failed.size(), 1u);
    EXPECT_LE(s.failed.size(), 3u);
  }
  const auto closed = with_subsets(scenes);
  for (const auto& s : closed) {
    for (std::size_t mask_size = 1; mask_size < s.failed.size();
         ++mask_size) {
      // Each strict subset must be present.
      // (Spot-check single-link subsets.)
      for (const auto& link : s.failed) {
        const auto single = spec::FaultScene::of({link});
        EXPECT_NE(std::find(closed.begin(), closed.end(), single),
                  closed.end());
      }
    }
  }
}

TEST(Harness, SmallDatasetRunsToolRows) {
  HarnessOptions opts;
  opts.max_destinations = 3;
  Harness h(dataset("INet2"), opts);
  const auto result = h.run(/*with_baselines=*/true, /*n_updates=*/10);
  ASSERT_EQ(result.rows.size(), 6u);  // Tulkun + 5 baselines
  EXPECT_EQ(result.rows[0].tool, "Tulkun");
  for (const auto& row : result.rows) {
    EXPECT_GT(row.burst_seconds, 0.0) << row.tool;
    EXPECT_EQ(row.violations, 0u) << row.tool;  // clean plane
    if (!row.memory_out) {
      EXPECT_EQ(row.incremental_seconds.size(), 10u) << row.tool;
    }
  }
}

TEST(Harness, FaultRunProducesScenes) {
  HarnessOptions opts;
  opts.max_destinations = 2;
  Harness h(dataset("INet2"), opts);
  const auto result = h.run_faults(/*n_scenes=*/3, /*updates_per_scene=*/3,
                                   /*with_baselines=*/false);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].scene_seconds.size(), result.scenes);
  EXPECT_EQ(result.rows[0].incremental_seconds.size(), 3u * result.scenes);
}

TEST(Harness, PlanLatencyGrowsWithK) {
  HarnessOptions opts;
  opts.max_destinations = 2;
  Harness h(dataset("INet2"), opts);
  const auto k0 = h.plan_latency(0, 512);
  const auto k1 = h.plan_latency(1, 512);
  EXPECT_EQ(k0.scenes, 1u);
  EXPECT_GT(k1.scenes, k0.scenes);
  EXPECT_GT(k1.seconds, 0.0);
}

TEST(Harness, OverheadCdfsPopulated) {
  HarnessOptions opts;
  opts.max_destinations = 2;
  Harness h(dataset("INet2"), opts);
  const auto oh = h.measure_overhead(switch_profiles().front(), 5);
  EXPECT_EQ(oh.init_seconds.size(), h.topology().device_count());
  EXPECT_EQ(oh.init_memory.size(), h.topology().device_count());
  EXPECT_EQ(oh.msg_seconds.size(), h.topology().device_count());
  EXPECT_GT(oh.per_message_seconds.size(), 0u);
  // CPU loads are valid fractions.
  EXPECT_LE(oh.init_cpu.max(), 1.0);
  EXPECT_GE(oh.init_cpu.min(), 0.0);
}

TEST(Report, PrintersProduceTables) {
  HarnessOptions opts;
  opts.max_destinations = 2;
  Harness h(dataset("INet2"), opts);
  std::vector<Harness::Result> results{h.run(false, 5)};
  std::ostringstream os;
  print_burst_table(os, results);
  print_under_threshold_table(os, results, 0.010);
  print_quantile_table(os, results, 0.80);
  const auto text = os.str();
  EXPECT_NE(text.find("Figure 11a"), std::string::npos);
  EXPECT_NE(text.find("INet2"), std::string::npos);
  EXPECT_NE(text.find("Tulkun"), std::string::npos);
}

TEST(Report, CdfPrinter) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(i * 1e-3);
  std::ostringstream os;
  print_cdf(os, "test", s, true);
  EXPECT_NE(os.str().find("p80="), std::string::npos);
  EXPECT_NE(os.str().find("p100="), std::string::npos);
}

}  // namespace
}  // namespace tulkun::eval
