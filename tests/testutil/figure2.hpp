// Shared fixture: the paper's running example (Figure 2).
//
// Topology: S-A, A-B, A-W, B-W, B-D, W-D (+ C attached to B for the §9.1
// multicast demo). Data plane reconstructed from the §2.2 narrative so the
// counting results match the paper exactly:
//
//   S: 10.0.0.0/23            -> A
//   A: 10.0.0.0/24            -> ALL {B, W}     ("A forwards p to both")
//      10.0.1.0/24 & port 80  -> ANY {B, W}     ("either B or W")
//      10.0.1.0/24            -> W
//   B: 10.0.1.0/24            -> D              (drops 10.0.0.0/24)
//   W: 10.0.0.0/23            -> D
//   D: 10.0.0.0/23            -> deliver
//
// Expected final counting at S1 for the waypoint invariant
// (dstIP=10.0.0.0/23, [S], exist >= 1, S .* W .* D, loop_free):
//   [(P2 ∪ P4, 1), (P3, {0,1})]   — a violation (§2.2.2).
// After B reroutes 10.0.1.0/24 to W: [(P1, 1)] — satisfied (§2.2.3).
#pragma once

#include "eval/fib_synth.hpp"
#include "fib/update_stream.hpp"
#include "topo/generators.hpp"

namespace tulkun::testutil {

struct Figure2 {
  topo::Topology topo = topo::figure2_network();
  fib::NetworkFib net{topo};
  DeviceId S = topo.device("S");
  DeviceId A = topo.device("A");
  DeviceId B = topo.device("B");
  DeviceId W = topo.device("W");
  DeviceId D = topo.device("D");
  DeviceId C = topo.device("C");

  packet::Ipv4Prefix p1 = packet::Ipv4Prefix::parse("10.0.0.0/23");
  packet::Ipv4Prefix p2 = packet::Ipv4Prefix::parse("10.0.0.0/24");
  packet::Ipv4Prefix p34 = packet::Ipv4Prefix::parse("10.0.1.0/24");

  Figure2() { install_paper_data_plane(); }

  packet::PacketSpace& space() { return net.space(); }

  packet::PacketSet P1() { return space().dst_prefix(p1); }
  packet::PacketSet P2() { return space().dst_prefix(p2); }
  packet::PacketSet P3() {
    return space().dst_prefix(p34) & space().dst_port(80);
  }
  packet::PacketSet P4() {
    return space().dst_prefix(p34) - space().dst_port(80);
  }

  void install_paper_data_plane() {
    // S
    {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p1;
      r.action = fib::Action::forward(A);
      net.table(S).insert(r);
    }
    // A
    {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p2;
      r.action = fib::Action::forward_all({B, W});
      net.table(A).insert(r);
    }
    {
      fib::Rule r;
      r.priority = 20;
      r.dst_prefix = p34;
      r.extra_match = space().dst_port(80);
      r.action = fib::Action::forward_any({B, W});
      net.table(A).insert(r);
    }
    {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p34;
      r.action = fib::Action::forward(W);
      net.table(A).insert(r);
    }
    // B
    b_rule_id = [&] {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p34;
      r.action = fib::Action::forward(D);
      return net.table(B).insert(r);
    }();
    // W
    {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p1;
      r.action = fib::Action::forward(D);
      net.table(W).insert(r);
    }
    // D
    {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = p1;
      r.action = fib::Action::deliver();
      net.table(D).insert(r);
    }
  }

  /// The §2.2.3 incremental update: B reroutes 10.0.1.0/24 to W.
  [[nodiscard]] fib::FibUpdate b_reroute_to_w() const {
    fib::Rule r;
    r.priority = 30;
    r.dst_prefix = p34;
    r.action = fib::Action::forward(W);
    return fib::FibUpdate::insert(B, std::move(r));
  }

  std::uint64_t b_rule_id = 0;
};

}  // namespace tulkun::testutil
