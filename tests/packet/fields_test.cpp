#include "packet/fields.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace tulkun::packet {
namespace {

TEST(Ipv4, ParseAndFormat) {
  EXPECT_EQ(parse_ipv4("10.0.0.0"), 0x0A000000u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(parse_ipv4("1.2.3.4"), 0x01020304u);
  EXPECT_EQ(format_ipv4(0x0A000000u), "10.0.0.0");
  EXPECT_EQ(format_ipv4(0x01020304u), "1.2.3.4");
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_THROW((void)parse_ipv4("10.0.0"), Error);
  EXPECT_THROW((void)parse_ipv4("10.0.0.0.0"), Error);
  EXPECT_THROW((void)parse_ipv4("10.0.0.256"), Error);
  EXPECT_THROW((void)parse_ipv4("a.b.c.d"), Error);
  EXPECT_THROW((void)parse_ipv4(""), Error);
}

TEST(Ipv4Prefix, ParseCidr) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/23");
  EXPECT_EQ(p.addr, 0x0A000000u);
  EXPECT_EQ(p.len, 23);
  EXPECT_EQ(p.to_string(), "10.0.0.0/23");
}

TEST(Ipv4Prefix, BareAddressIsSlash32) {
  const auto p = Ipv4Prefix::parse("192.168.1.1");
  EXPECT_EQ(p.len, 32);
  EXPECT_TRUE(p.contains(parse_ipv4("192.168.1.1")));
  EXPECT_FALSE(p.contains(parse_ipv4("192.168.1.2")));
}

TEST(Ipv4Prefix, HostBitsNormalized) {
  const Ipv4Prefix p(parse_ipv4("10.0.1.77"), 24);
  EXPECT_EQ(p.addr, parse_ipv4("10.0.1.0"));
}

TEST(Ipv4Prefix, RejectsBadLength) {
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0.0/33"), Error);
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0.0/x"), Error);
}

TEST(Ipv4Prefix, Contains) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/23");
  EXPECT_TRUE(p.contains(parse_ipv4("10.0.0.1")));
  EXPECT_TRUE(p.contains(parse_ipv4("10.0.1.255")));
  EXPECT_FALSE(p.contains(parse_ipv4("10.0.2.0")));
}

TEST(Ipv4Prefix, Covers) {
  const auto wide = Ipv4Prefix::parse("10.0.0.0/23");
  const auto narrow = Ipv4Prefix::parse("10.0.1.0/24");
  const auto other = Ipv4Prefix::parse("10.0.2.0/24");
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
  EXPECT_FALSE(wide.covers(other));
}

TEST(Ipv4Prefix, RangeHalfOpen) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/23");
  EXPECT_EQ(p.range_lo(), 0x0A000000u);
  EXPECT_EQ(p.range_hi(), 0x0A000000u + 512u);
  const auto all = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(all.range_hi(), 1ULL << 32);
}

TEST(Layout, FieldGeometry) {
  EXPECT_EQ(Layout::offset(Field::DstIp), 0u);
  EXPECT_EQ(Layout::width(Field::DstIp), 32u);
  EXPECT_EQ(Layout::offset(Field::Proto) + Layout::width(Field::Proto),
            Layout::kNumVars);
}

}  // namespace
}  // namespace tulkun::packet
