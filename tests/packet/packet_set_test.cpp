#include "packet/packet_set.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace tulkun::packet {
namespace {

class PacketSetTest : public ::testing::Test {
 protected:
  PacketSpace space;
};

TEST_F(PacketSetTest, AllAndNone) {
  EXPECT_TRUE(space.all().is_all());
  EXPECT_TRUE(space.none().empty());
  EXPECT_EQ(space.all().fraction(), 1.0);
  EXPECT_EQ(space.none().fraction(), 0.0);
}

TEST_F(PacketSetTest, DstPrefixFraction) {
  const auto p = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/8"));
  // A /8 constrains 8 of 32 dstIP bits: 1/256 of the space.
  EXPECT_DOUBLE_EQ(p.fraction(), 1.0 / 256.0);
}

TEST_F(PacketSetTest, PrefixContainment) {
  const auto wide = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/23"));
  const auto narrow = space.dst_prefix(Ipv4Prefix::parse("10.0.1.0/24"));
  EXPECT_TRUE(narrow.subset_of(wide));
  EXPECT_FALSE(wide.subset_of(narrow));
  EXPECT_EQ(wide & narrow, narrow);
  EXPECT_EQ(wide | narrow, wide);
}

TEST_F(PacketSetTest, DisjointPrefixes) {
  const auto a = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/24"));
  const auto b = space.dst_prefix(Ipv4Prefix::parse("10.0.1.0/24"));
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE((a | b).subset_of(space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/23"))));
  EXPECT_EQ(a | b, space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/23")));
}

TEST_F(PacketSetTest, Figure2PacketSpaces) {
  // The paper's P1..P4: P1 = P2 ∪ P3 ∪ P4, disjoint P2/P3/P4.
  const auto p1 = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/23"));
  const auto p2 = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/24"));
  const auto p3 =
      space.dst_prefix(Ipv4Prefix::parse("10.0.1.0/24")) & space.dst_port(80);
  const auto p4 = space.dst_prefix(Ipv4Prefix::parse("10.0.1.0/24")) -
                  space.dst_port(80);
  EXPECT_EQ(p2 | p3 | p4, p1);
  EXPECT_FALSE(p2.intersects(p3));
  EXPECT_FALSE(p3.intersects(p4));
  EXPECT_FALSE(p2.intersects(p4));
}

TEST_F(PacketSetTest, PortExactAndRange) {
  const auto exact = space.dst_port(80);
  const auto range = space.field_range(Field::DstPort, 80, 80);
  EXPECT_EQ(exact, range);
  const auto wide = space.field_range(Field::DstPort, 0, 65535);
  EXPECT_TRUE(wide.is_all());
}

TEST_F(PacketSetTest, RangeCounts) {
  const auto r = space.field_range(Field::DstPort, 10, 19);
  // 10 of 65536 port values.
  EXPECT_DOUBLE_EQ(r.fraction(), 10.0 / 65536.0);
}

TEST_F(PacketSetTest, RangeMembershipSweep) {
  const auto r = space.field_range(Field::Proto, 6, 17);
  for (std::uint32_t v = 0; v < 32; ++v) {
    const auto point = space.proto(static_cast<std::uint8_t>(v));
    EXPECT_EQ(point.subset_of(r), v >= 6 && v <= 17) << "proto " << v;
  }
}

TEST_F(PacketSetTest, SetAlgebra) {
  const auto a = space.dst_prefix(Ipv4Prefix::parse("10.0.0.0/9"));
  const auto b = space.src_prefix(Ipv4Prefix::parse("192.168.0.0/16"));
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(a - b, a & ~b);
  EXPECT_EQ((a - b) | (a & b), a);
}

TEST_F(PacketSetTest, EqualityIsConstantTime) {
  const auto a = space.dst_prefix(Ipv4Prefix::parse("10.1.0.0/16")) &
                 space.dst_port(443);
  const auto b = space.dst_port(443) &
                 space.dst_prefix(Ipv4Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ref(), b.ref());
}

class RangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeProperty, RandomRangesBehaveLikeIntervals) {
  PacketSpace space;
  Rng rng(GetParam());
  const std::uint32_t lo = static_cast<std::uint32_t>(rng.uniform(0, 60000));
  const std::uint32_t hi =
      static_cast<std::uint32_t>(rng.uniform(lo, 65535));
  const auto r = space.field_range(Field::DstPort, lo, hi);
  EXPECT_DOUBLE_EQ(r.fraction(),
                   static_cast<double>(hi - lo + 1) / 65536.0);
  // Complement splits into the two remaining ranges.
  auto rest = space.none();
  if (lo > 0) rest |= space.field_range(Field::DstPort, 0, lo - 1);
  if (hi < 65535) rest |= space.field_range(Field::DstPort, hi + 1, 65535);
  EXPECT_EQ(~r, rest);
  EXPECT_EQ(r | rest, space.all());
  EXPECT_FALSE(r.intersects(rest));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace tulkun::packet
