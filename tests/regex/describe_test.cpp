#include "regex/describe.hpp"

#include <gtest/gtest.h>

#include "regex/nfa.hpp"
#include "regex/parser.hpp"

namespace tulkun::regex {
namespace {

Dfa waypoint_dfa() {
  const NameResolver resolver = [](std::string_view name) -> Symbol {
    if (name == "S") return 0;
    if (name == "W") return 1;
    if (name == "D") return 2;
    throw RegexError("unknown");
  };
  return Dfa::determinize(build_nfa(parse("S .* W .* D", resolver)))
      .minimize();
}

SymbolNamer namer() {
  return [](Symbol s) -> std::string {
    const char* names[] = {"S", "W", "D"};
    return s < 3 ? names[s] : std::to_string(s);
  };
}

TEST(Describe, ListsStatesAndTransitions) {
  const auto text = describe(waypoint_dfa(), namer());
  EXPECT_NE(text.find("start: q"), std::string::npos);
  EXPECT_NE(text.find("(accept)"), std::string::npos);
  EXPECT_NE(text.find("S ->"), std::string::npos);
  EXPECT_NE(text.find("* -> "), std::string::npos);
}

TEST(Describe, DotOutputWellFormed) {
  const auto dot = to_dot(waypoint_dfa(), namer());
  EXPECT_EQ(dot.rfind("digraph dfa {", 0), 0u);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("__start ->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Describe, EmptyDfa) {
  const Dfa empty;
  EXPECT_NE(describe(empty, namer()).find("start: DEAD"), std::string::npos);
  EXPECT_EQ(to_dot(empty, namer()).find("__start"), std::string::npos);
}

}  // namespace
}  // namespace tulkun::regex
