#include "regex/parser.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace tulkun::regex {
namespace {

NameResolver test_resolver() {
  return [](std::string_view name) -> Symbol {
    static const std::map<std::string, Symbol, std::less<>> devices = {
        {"S", 0}, {"A", 1}, {"B", 2}, {"W", 3}, {"D", 4}, {"p0_tor1", 5}};
    const auto it = devices.find(std::string(name));
    if (it == devices.end()) {
      throw RegexError("unknown device: " + std::string(name));
    }
    return it->second;
  };
}

TEST(SymbolSet, Matching) {
  EXPECT_TRUE(SymbolSet::any().matches(42));
  EXPECT_TRUE(SymbolSet::single(3).matches(3));
  EXPECT_FALSE(SymbolSet::single(3).matches(4));
  const auto none_of = SymbolSet::none_of({1, 2});
  EXPECT_FALSE(none_of.matches(1));
  EXPECT_TRUE(none_of.matches(3));
  const auto of = SymbolSet::of({5, 1, 5});
  EXPECT_EQ(of.syms, (std::vector<Symbol>{1, 5}));
}

TEST(RegexParser, SingleSymbol) {
  const auto ast = parse("S", test_resolver());
  EXPECT_EQ(ast.kind, AstKind::Symbols);
  EXPECT_EQ(ast.symbols, SymbolSet::single(0));
}

TEST(RegexParser, WaypointPattern) {
  const auto ast = parse("S .* W .* D", test_resolver());
  ASSERT_EQ(ast.kind, AstKind::Concat);
  ASSERT_EQ(ast.children.size(), 5u);
  EXPECT_EQ(ast.children[0].symbols, SymbolSet::single(0));
  EXPECT_EQ(ast.children[1].kind, AstKind::Star);
  EXPECT_EQ(ast.children[1].children[0].symbols, SymbolSet::any());
  EXPECT_EQ(ast.children[2].symbols, SymbolSet::single(3));
  EXPECT_EQ(ast.children[4].symbols, SymbolSet::single(4));
}

TEST(RegexParser, TightAndSpacedEquivalent) {
  // Multi-character names require whitespace or operators as separators,
  // but ".*" style from the paper parses fine.
  const auto a = parse("S.*D", test_resolver());
  const auto b = parse("S .* D", test_resolver());
  ASSERT_EQ(a.kind, b.kind);
  ASSERT_EQ(a.children.size(), b.children.size());
}

TEST(RegexParser, Alternation) {
  const auto ast = parse("S A | S B", test_resolver());
  ASSERT_EQ(ast.kind, AstKind::Union);
  EXPECT_EQ(ast.children.size(), 2u);
}

TEST(RegexParser, PostfixOperators) {
  EXPECT_EQ(parse("A*", test_resolver()).kind, AstKind::Star);
  EXPECT_EQ(parse("A+", test_resolver()).kind, AstKind::Plus);
  EXPECT_EQ(parse("A?", test_resolver()).kind, AstKind::Optional);
  const auto nested = parse("A*+", test_resolver());
  EXPECT_EQ(nested.kind, AstKind::Plus);
}

TEST(RegexParser, CharClass) {
  const auto pos = parse("[A B]", test_resolver());
  EXPECT_EQ(pos.symbols, SymbolSet::of({1, 2}));
  const auto neg = parse("[^W]", test_resolver());
  EXPECT_EQ(neg.symbols, SymbolSet::none_of({3}));
}

TEST(RegexParser, GroupingAndComplexPattern) {
  // Limited-path-length reachability from Table 1: S D | S . D | S . . D
  const auto ast = parse("S D | S . D | S . . D", test_resolver());
  ASSERT_EQ(ast.kind, AstKind::Union);
  EXPECT_EQ(ast.children.size(), 3u);
  const auto grouped = parse("S (A | B) D", test_resolver());
  ASSERT_EQ(grouped.kind, AstKind::Concat);
  EXPECT_EQ(grouped.children[1].kind, AstKind::Union);
}

TEST(RegexParser, UnderscoreNames) {
  const auto ast = parse("p0_tor1 .* D", test_resolver());
  ASSERT_EQ(ast.kind, AstKind::Concat);
  EXPECT_EQ(ast.children[0].symbols, SymbolSet::single(5));
}

TEST(RegexParser, SyntaxErrors) {
  EXPECT_THROW((void)parse("S (A", test_resolver()), RegexError);
  EXPECT_THROW((void)parse("S )", test_resolver()), RegexError);
  EXPECT_THROW((void)parse("[ ]", test_resolver()), RegexError);
  EXPECT_THROW((void)parse("S ] D", test_resolver()), RegexError);
  EXPECT_THROW((void)parse("Q", test_resolver()), RegexError);  // unknown
}

TEST(RegexParser, EmptyIsEpsilon) {
  EXPECT_EQ(parse("", test_resolver()).kind, AstKind::Epsilon);
  EXPECT_EQ(parse("()", test_resolver()).kind, AstKind::Epsilon);
}

}  // namespace
}  // namespace tulkun::regex
