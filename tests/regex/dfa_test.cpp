#include "regex/dfa.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/rng.hpp"
#include "regex/parser.hpp"

namespace tulkun::regex {
namespace {

constexpr std::size_t kAlphabet = 5;  // S=0 A=1 B=2 W=3 D=4

NameResolver resolver() {
  return [](std::string_view name) -> Symbol {
    static const std::map<std::string, Symbol, std::less<>> devices = {
        {"S", 0}, {"A", 1}, {"B", 2}, {"W", 3}, {"D", 4}};
    return devices.at(std::string(name));
  };
}

Dfa compile(const char* pattern) {
  return Dfa::determinize(build_nfa(parse(pattern, resolver()))).minimize();
}

bool accepts(const Dfa& dfa, std::initializer_list<Symbol> word) {
  const std::vector<Symbol> w(word);
  return dfa.accepts(w);
}

TEST(Dfa, WaypointLanguage) {
  const auto dfa = compile("S .* W .* D");
  EXPECT_TRUE(accepts(dfa, {0, 3, 4}));           // S W D
  EXPECT_TRUE(accepts(dfa, {0, 1, 3, 2, 4}));     // S A W B D
  EXPECT_FALSE(accepts(dfa, {0, 1, 4}));          // no W
  EXPECT_FALSE(accepts(dfa, {1, 3, 4}));          // wrong start
  EXPECT_FALSE(accepts(dfa, {0, 3}));             // no D
  EXPECT_FALSE(accepts(dfa, {}));
}

TEST(Dfa, PaperFigure4AutomatonShape) {
  // The minimized DFA of S.*W.*D has 4 live states (q0..q3 in Figure 4).
  const auto dfa = compile("S .* W .* D");
  EXPECT_EQ(dfa.state_count(), 4u);
}

TEST(Dfa, AlternationLanguage) {
  const auto dfa = compile("S D | S . D");
  EXPECT_TRUE(accepts(dfa, {0, 4}));
  EXPECT_TRUE(accepts(dfa, {0, 2, 4}));
  EXPECT_FALSE(accepts(dfa, {0, 1, 2, 4}));
}

TEST(Dfa, NegatedClass) {
  const auto dfa = compile("S [^W]* D");
  EXPECT_TRUE(accepts(dfa, {0, 1, 2, 4}));
  EXPECT_FALSE(accepts(dfa, {0, 3, 4}));  // W forbidden in the middle
  EXPECT_TRUE(accepts(dfa, {0, 4}));
}

TEST(Dfa, EmptyLanguageIsDeadStart) {
  // Intersection of disjoint languages is empty.
  const auto a = compile("S D");
  const auto b = compile("S A D");
  const auto both = Dfa::product(a, b, /*intersect=*/true);
  EXPECT_EQ(both.start(), Dfa::kDead);
  EXPECT_FALSE(accepts(both, {0, 4}));
}

TEST(Dfa, ProductIntersection) {
  const auto reach = compile("S .* D");
  const auto via_w = compile(". .* W .* .");  // any path via W, len >= 3
  const auto inter = Dfa::product(reach, via_w, /*intersect=*/true);
  EXPECT_TRUE(accepts(inter, {0, 3, 4}));
  EXPECT_FALSE(accepts(inter, {0, 1, 4}));
  // Equivalent to the waypoint regex on test words.
  const auto direct = compile("S .* W .* D");
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<Symbol> word;
    const auto len = rng.uniform(0, 6);
    for (std::uint64_t j = 0; j < len; ++j) {
      word.push_back(static_cast<Symbol>(rng.index(kAlphabet)));
    }
    EXPECT_EQ(inter.accepts(word), direct.accepts(word));
  }
}

TEST(Dfa, ProductUnion) {
  const auto a = compile("S A D");
  const auto b = compile("S B D");
  const auto u = Dfa::product(a, b, /*intersect=*/false);
  EXPECT_TRUE(accepts(u, {0, 1, 4}));
  EXPECT_TRUE(accepts(u, {0, 2, 4}));
  EXPECT_FALSE(accepts(u, {0, 3, 4}));
}

TEST(Dfa, ComplementFlipsMembership) {
  const auto dfa = compile("S .* D");
  const auto comp = dfa.complement();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::vector<Symbol> word;
    const auto len = rng.uniform(0, 5);
    for (std::uint64_t j = 0; j < len; ++j) {
      word.push_back(static_cast<Symbol>(rng.index(kAlphabet)));
    }
    EXPECT_NE(dfa.accepts(word), comp.accepts(word));
  }
}

TEST(Dfa, MinimizeIsIdempotentAndLanguagePreserving) {
  const auto dfa = compile("S (A | B)* W . D | S W D");
  const auto min1 = dfa.minimize();
  const auto min2 = min1.minimize();
  EXPECT_EQ(min1.state_count(), min2.state_count());
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    std::vector<Symbol> word;
    const auto len = rng.uniform(0, 7);
    for (std::uint64_t j = 0; j < len; ++j) {
      word.push_back(static_cast<Symbol>(rng.index(kAlphabet)));
    }
    EXPECT_EQ(dfa.accepts(word), min1.accepts(word));
  }
}

TEST(Dfa, MinStepsToAccept) {
  const auto dfa = compile("S .* W .* D");
  // From the start: need S, W, D = 3 symbols.
  EXPECT_EQ(dfa.min_steps_to_accept(dfa.start()), 3u);
  EXPECT_TRUE(dfa.can_accept(dfa.start()));
  EXPECT_FALSE(dfa.can_accept(Dfa::kDead));
  EXPECT_EQ(dfa.min_steps_to_accept(Dfa::kDead), Dfa::kInfinity);
  // After consuming S: 2 more.
  const auto after_s = dfa.next(dfa.start(), 0);
  EXPECT_EQ(dfa.min_steps_to_accept(after_s), 2u);
}

TEST(Dfa, StarAcceptsEmptyWord) {
  const auto dfa = compile(".*");
  EXPECT_TRUE(accepts(dfa, {}));
  EXPECT_TRUE(accepts(dfa, {0, 1, 2}));
}

TEST(Dfa, PlusRequiresOne) {
  const auto dfa = compile(".+");
  EXPECT_FALSE(accepts(dfa, {}));
  EXPECT_TRUE(accepts(dfa, {2}));
}

// Property: determinize+minimize preserves the NFA language on random
// regexes built from the grammar.
class DfaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfaProperty, RandomRegexMinimizationSound) {
  Rng rng(GetParam());
  // Random regex over {S,A,B}: depth-2 combinators.
  const auto rand_atom = [&]() {
    const auto r = rng.index(3);
    if (r == 0) return std::string("S");
    if (r == 1) return std::string("A");
    return std::string(".");
  };
  std::string pattern = rand_atom();
  for (int i = 0; i < 4; ++i) {
    const auto op = rng.index(4);
    if (op == 0) pattern += " " + rand_atom();
    if (op == 1) pattern = "(" + pattern + ")*";
    if (op == 2) pattern += " | " + rand_atom();
    if (op == 3) pattern = "(" + pattern + ") " + rand_atom();
  }
  const auto full = Dfa::determinize(build_nfa(parse(pattern, resolver())));
  const auto minimized = full.minimize();
  EXPECT_LE(minimized.state_count(), full.state_count() + 1);
  for (int i = 0; i < 200; ++i) {
    std::vector<Symbol> word;
    const auto len = rng.uniform(0, 6);
    for (std::uint64_t j = 0; j < len; ++j) {
      word.push_back(static_cast<Symbol>(rng.index(kAlphabet)));
    }
    EXPECT_EQ(full.accepts(word), minimized.accepts(word))
        << "pattern: " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace tulkun::regex
