#include "dpvnet/build.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dpvnet {
namespace {

using testutil::Figure2;

std::set<std::vector<DeviceId>> path_set(const DpvNet& dag,
                                         std::size_t scene = 0) {
  std::set<std::vector<DeviceId>> out;
  for (const auto& p : dag.all_paths(scene)) {
    out.insert(p.devices);
  }
  return out;
}

TEST(BuildDpvnet, WaypointFigure2c) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);

  BuildStats stats;
  const auto dag = build_dpvnet(fig.topo, inv, {}, &stats);

  // Valid simple paths S..W..D in the Figure 2a topology:
  // S A W D, S A B W D, S A W B D, S A B C? no (C is a stub).
  const std::set<std::vector<DeviceId>> expected = {
      {fig.S, fig.A, fig.W, fig.D},
      {fig.S, fig.A, fig.B, fig.W, fig.D},
      {fig.S, fig.A, fig.W, fig.B, fig.D},
  };
  EXPECT_EQ(path_set(dag), expected);
  EXPECT_EQ(stats.paths, 3u);

  // Figure 2c compaction: B appears twice (before/after the waypoint),
  // W twice, S/A/D once.
  const auto count_dev = [&](DeviceId d) {
    return dag.nodes_of_device(d).size();
  };
  EXPECT_EQ(count_dev(fig.S), 1u);
  EXPECT_EQ(count_dev(fig.A), 1u);
  EXPECT_EQ(count_dev(fig.B), 2u);
  EXPECT_EQ(count_dev(fig.W), 2u);
  EXPECT_EQ(count_dev(fig.D), 1u);
  EXPECT_EQ(dag.node_count(), 7u);

  // The sole source is at S.
  ASSERT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sources()[0].first, fig.S);
  EXPECT_EQ(dag.node(dag.sources()[0].second).dev, fig.S);
}

TEST(BuildDpvnet, AcceptingNodesAreAtDestination) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.reachability(fig.P1(), fig.S, fig.D);
  const auto dag = build_dpvnet(fig.topo, inv);
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    if (n.accepting()) {
      EXPECT_EQ(n.dev, fig.D);
      EXPECT_TRUE(n.accepts(0, 0));
    }
  }
}

TEST(BuildDpvnet, ReverseTopologicalOrderValid) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto dag =
      build_dpvnet(fig.topo, b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto order = dag.reverse_topological();
  ASSERT_EQ(order.size(), dag.node_count());
  std::vector<std::size_t> pos(dag.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    for (const auto& e : dag.node(id).down) {
      EXPECT_LT(pos[e.to], pos[id]) << "downstream must come first";
    }
  }
}

TEST(BuildDpvnet, UpEdgesMirrorDownEdges) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto dag =
      build_dpvnet(fig.topo, b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    for (const auto& e : dag.node(id).down) {
      const auto& ups = dag.node(e.to).up;
      EXPECT_NE(std::find(ups.begin(), ups.end(), id), ups.end());
    }
  }
}

TEST(BuildDpvnet, LengthFilterPrunesPaths) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  // Exactly-shortest: only S A W D (3 hops) survives for the waypoint...
  // shortest S..D without waypoint is 3 hops (S A W D or S A B D).
  const auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 0);
  const auto dag = build_dpvnet(fig.topo, inv);
  const auto paths = path_set(dag);
  const std::set<std::vector<DeviceId>> expected = {
      {fig.S, fig.A, fig.W, fig.D},
      {fig.S, fig.A, fig.B, fig.D},
  };
  EXPECT_EQ(paths, expected);
}

TEST(BuildDpvnet, SlackAdmitsLongerPaths) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  const auto dag = build_dpvnet(fig.topo, inv);
  // Adds the 4-hop simple paths S A B W D and S A W B D.
  EXPECT_EQ(path_set(dag).size(), 4u);
}

TEST(BuildDpvnet, MultiIngressSharesSuffixes) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.multi_ingress_reachability(
      fig.P1(), {fig.S, fig.C}, fig.D);
  const auto dag = build_dpvnet(fig.topo, inv);
  ASSERT_EQ(dag.sources().size(), 2u);
  // Both ingresses have at least one valid path.
  for (const auto& [ingress, src] : dag.sources()) {
    EXPECT_NE(src, kNoNode) << "ingress " << fig.topo.name(ingress);
  }
  // Paths from both sources end at D.
  for (const auto& p : dag.all_paths(0)) {
    EXPECT_EQ(p.devices.back(), fig.D);
  }
}

TEST(BuildDpvnet, UnreachableIngressGetsNoSource) {
  // Island device: no path to D.
  topo::Topology t;
  const auto s = t.add_device("S");
  const auto d = t.add_device("D");
  (void)t.add_device("island");
  t.add_link(s, d, 1e-3);
  t.attach_prefix(d, packet::Ipv4Prefix::parse("10.0.0.0/24"));

  packet::PacketSpace space;
  spec::Builtins b(t, space);
  auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")),
      t.device("island"), d);
  const auto dag = build_dpvnet(t, inv);
  ASSERT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sources()[0].second, kNoNode);
  // Reported as intolerable for scene 0.
  ASSERT_EQ(dag.intolerable.size(), 1u);
  EXPECT_EQ(dag.intolerable[0].first, 0u);
}

TEST(BuildDpvnet, SelfReachabilitySingleNode) {
  // Ingress == destination: the one-node path [D].
  topo::Topology t;
  const auto d = t.add_device("D");
  const auto x = t.add_device("X");
  t.add_link(d, x, 1e-3);
  t.attach_prefix(d, packet::Ipv4Prefix::parse("10.0.0.0/24"));
  packet::PacketSpace space;

  spec::Invariant inv;
  inv.name = "self";
  inv.packet_space = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  inv.ingress_set = {d};
  spec::PathExpr pe;
  pe.regex_text = "D";
  pe.ast = regex::Ast::symbols_node(regex::SymbolSet::single(d));
  pe.loop_free = true;
  inv.behavior = spec::Behavior::exist(
      spec::CountExpr{spec::CountExpr::Cmp::Ge, 1}, std::move(pe));

  const auto dag = build_dpvnet(t, inv);
  ASSERT_EQ(dag.sources().size(), 1u);
  const auto src = dag.sources()[0].second;
  ASSERT_NE(src, kNoNode);
  EXPECT_TRUE(dag.node(src).accepting());
  EXPECT_TRUE(dag.node(src).down.empty());
}

TEST(BuildDpvnet, PathCapEnforced) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);
  BuildOptions opts;
  opts.max_paths = 2;  // fewer than the 3 valid paths
  EXPECT_THROW((void)build_dpvnet(fig.topo, inv, opts), Error);
}

TEST(BuildDpvnet, UnboundedAtomRejected) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  auto inv = b.reachability(fig.P1(), fig.S, fig.D);
  inv.behavior.path.loop_free = false;
  EXPECT_THROW((void)build_dpvnet(fig.topo, inv), Error);
}

TEST(BuildDpvnet, CutDevicesIdentified) {
  // §7: A is a cut of the Figure 2a network for S->D traffic; every valid
  // waypoint path is S A ... W ... D, so S, A, W, D are cuts and B is not.
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto dag =
      build_dpvnet(fig.topo, b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto cuts = dag.cut_devices(0);
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), fig.S), cuts.end());
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), fig.A), cuts.end());
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), fig.W), cuts.end());
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), fig.D), cuts.end());
  EXPECT_EQ(std::find(cuts.begin(), cuts.end(), fig.B), cuts.end());
}

TEST(BuildDpvnet, CutDevicesPerScene) {
  // Plain reachability S->D: both B and W provide alternatives, so only
  // S, A, D are cuts. With A-B failed, every surviving path runs through
  // W, which becomes a cut in that scene.
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  auto inv = b.reachability(fig.P1(), fig.S, fig.D);
  inv.faults.scenes.push_back(
      spec::FaultScene::of({LinkId{fig.A, fig.B}}));
  const auto dag = build_dpvnet(fig.topo, inv);

  const auto base = dag.cut_devices(0);
  EXPECT_EQ(std::find(base.begin(), base.end(), fig.W), base.end());
  EXPECT_NE(std::find(base.begin(), base.end(), fig.A), base.end());

  const auto failed = dag.cut_devices(1);
  EXPECT_NE(std::find(failed.begin(), failed.end(), fig.W), failed.end());
}

TEST(ShortestMatching, ComputesRegexAwareDistance) {
  Figure2 fig;
  const auto resolver = [&](std::string_view name) {
    return fig.topo.device(std::string(name));
  };
  const auto dfa = regex::Dfa::determinize(regex::build_nfa(
      regex::parse("S .* W .* D", resolver))).minimize();
  // Shortest waypointed path S A W D = 3 hops.
  EXPECT_EQ(shortest_matching(fig.topo, dfa, fig.S, {}), 3u);
  // With A-W failed, shortest is S A B W D = 4 hops.
  std::unordered_set<LinkId> failed{LinkId{std::min(fig.A, fig.W),
                                           std::max(fig.A, fig.W)}};
  EXPECT_EQ(shortest_matching(fig.topo, dfa, fig.S, failed), 4u);
}

TEST(ExpandScenes, ExplicitAndAnyK) {
  Figure2 fig;
  spec::FaultSpec faults;
  faults.scenes.push_back(spec::FaultScene::of({LinkId{fig.A, fig.B}}));
  const auto scenes = expand_scenes(fig.topo, faults, 100);
  ASSERT_EQ(scenes.size(), 2u);
  EXPECT_TRUE(scenes[0].failed.empty());  // scene 0 = no failure

  spec::FaultSpec any1;
  any1.any_k = 1;
  const auto singles = expand_scenes(fig.topo, any1, 100);
  // 7 links in Figure 2a (+C) => 1 + 7 scenes.
  EXPECT_EQ(singles.size(), 1u + fig.topo.link_count());

  spec::FaultSpec any2;
  any2.any_k = 2;
  const auto pairs = expand_scenes(fig.topo, any2, 100);
  EXPECT_EQ(pairs.size(), 1u + 7u + 21u);
  // Ascending failure-count order.
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].failed.size(), pairs[i].failed.size());
  }

  EXPECT_THROW((void)expand_scenes(fig.topo, any2, 10), Error);
}

}  // namespace
}  // namespace tulkun::dpvnet
