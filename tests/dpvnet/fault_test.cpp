#include <gtest/gtest.h>

#include <set>

#include "dpvnet/build.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dpvnet {
namespace {

using testutil::Figure2;

std::set<std::vector<DeviceId>> path_set(const DpvNet& dag,
                                         std::size_t scene) {
  std::set<std::vector<DeviceId>> out;
  for (const auto& p : dag.all_paths(scene)) out.insert(p.devices);
  return out;
}

/// The paper's Figure 8 scenario: (<= shortest+1) reachability S -> D
/// under 2-link-failure in the Figure 2a topology.
class FaultTolerantDpvnet : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};

  spec::Invariant make_invariant(std::uint32_t any_k) {
    auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
    inv.faults.any_k = any_k;
    return inv;
  }

  std::size_t scene_index(const std::vector<spec::FaultScene>& scenes,
                          std::initializer_list<LinkId> links) {
    const auto target = spec::FaultScene::of(links);
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      if (scenes[i] == target) return i;
    }
    ADD_FAILURE() << "scene not found";
    return 0;
  }
};

TEST_F(FaultTolerantDpvnet, BaseSceneMatchesNonFaultBuild) {
  const auto plain = build_dpvnet(fig.topo, make_invariant(0));
  const auto ft = build_dpvnet(fig.topo, make_invariant(2));
  EXPECT_EQ(path_set(plain, 0), path_set(ft, 0));
}

TEST_F(FaultTolerantDpvnet, SceneRestrictsToSurvivingPaths) {
  const auto inv = make_invariant(2);
  const auto scenes = expand_scenes(fig.topo, inv.faults, 4096);
  const auto dag = build_dpvnet(fig.topo, inv);

  // Scene: A-W down. Shortest S->D becomes 3 via S A B D; +1 admits 4.
  const auto si = scene_index(scenes, {LinkId{fig.A, fig.W}});
  const auto paths = path_set(dag, si);
  for (const auto& p : paths) {
    for (std::size_t h = 0; h + 1 < p.size(); ++h) {
      const bool uses_failed =
          (p[h] == fig.A && p[h + 1] == fig.W) ||
          (p[h] == fig.W && p[h + 1] == fig.A);
      EXPECT_FALSE(uses_failed);
    }
  }
  const std::set<std::vector<DeviceId>> expected = {
      {fig.S, fig.A, fig.B, fig.D},
      {fig.S, fig.A, fig.B, fig.W, fig.D},
  };
  EXPECT_EQ(paths, expected);
}

TEST_F(FaultTolerantDpvnet, SymbolicFilterLoosensUnderFailure) {
  const auto inv = make_invariant(2);
  const auto scenes = expand_scenes(fig.topo, inv.faults, 4096);
  const auto dag = build_dpvnet(fig.topo, inv);

  // Scene {A-W, B-D}: surviving S->D simple paths: S A B W D (4 hops).
  // Shortest becomes 4, +1 admits up to 5.
  const auto si = scene_index(
      scenes, {LinkId{fig.A, fig.W}, LinkId{fig.B, fig.D}});
  const std::set<std::vector<DeviceId>> expected = {
      {fig.S, fig.A, fig.B, fig.W, fig.D},
  };
  EXPECT_EQ(path_set(dag, si), expected);
}

TEST_F(FaultTolerantDpvnet, IntolerableSceneRecorded) {
  // Failing both A-B and A-W disconnects S from D entirely.
  auto inv = make_invariant(0);
  inv.faults.scenes.push_back(
      spec::FaultScene::of({LinkId{fig.A, fig.B}, LinkId{fig.A, fig.W}}));
  const auto dag = build_dpvnet(fig.topo, inv);
  ASSERT_FALSE(dag.intolerable.empty());
  EXPECT_EQ(dag.intolerable[0].second, fig.S);
}

TEST_F(FaultTolerantDpvnet, SceneReuseKicksIn) {
  // Failing B-C never touches any S->D path: §6 reuse must serve that
  // scene without a fresh enumeration.
  auto inv = make_invariant(0);
  inv.faults.scenes.push_back(spec::FaultScene::of({LinkId{fig.B, fig.C}}));
  BuildStats stats;
  const auto dag = build_dpvnet(fig.topo, inv, {}, &stats);
  EXPECT_EQ(stats.scenes, 2u);
  EXPECT_EQ(stats.scenes_enumerated, 1u);  // base scene only
  EXPECT_EQ(stats.scenes_reused, 1u);
  EXPECT_EQ(path_set(dag, 0), path_set(dag, 1));
}

TEST_F(FaultTolerantDpvnet, ConcreteFilterSharesPathsAcrossScenes) {
  // A concrete (non-symbolic) filter: valid paths of a fault scene are a
  // subset of the base scene's (Proposition 2, first case).
  auto inv = b.bounded_reachability(fig.P1(), fig.S, fig.D, 4);
  inv.faults.any_k = 1;
  const auto scenes = expand_scenes(fig.topo, inv.faults, 4096);
  const auto dag = build_dpvnet(fig.topo, inv);
  const auto base = path_set(dag, 0);
  for (std::size_t si = 1; si < scenes.size(); ++si) {
    const auto scene_paths = path_set(dag, si);
    for (const auto& p : scene_paths) {
      EXPECT_TRUE(base.contains(p));
    }
  }
}

TEST_F(FaultTolerantDpvnet, EveryScenePathRespectsItsFilters) {
  const auto inv = make_invariant(2);
  const auto scenes = expand_scenes(fig.topo, inv.faults, 4096);
  const auto dag = build_dpvnet(fig.topo, inv);
  const auto resolver = [&](std::string_view name) {
    return fig.topo.device(std::string(name));
  };
  const auto dfa = regex::Dfa::determinize(regex::build_nfa(
      regex::parse("S .* D", resolver))).minimize();

  for (std::size_t si = 0; si < scenes.size(); ++si) {
    std::unordered_set<LinkId> failed;
    for (const auto& l : scenes[si].failed) {
      failed.insert(l.from < l.to ? l : l.reversed());
    }
    const auto shortest = shortest_matching(fig.topo, dfa, fig.S, failed);
    for (const auto& p : dag.all_paths(si)) {
      const auto hops = static_cast<std::uint32_t>(p.devices.size()) - 1;
      EXPECT_LE(hops, shortest + 1) << "scene " << si;
      // No failed link used.
      for (std::size_t h = 0; h + 1 < p.devices.size(); ++h) {
        const LinkId l{std::min(p.devices[h], p.devices[h + 1]),
                       std::max(p.devices[h], p.devices[h + 1])};
        EXPECT_FALSE(failed.contains(l));
      }
    }
  }
}

}  // namespace
}  // namespace tulkun::dpvnet
