#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dpvnet/build.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dpvnet {
namespace {

using testutil::Figure2;

TEST(CompoundDpvnet, AnycastUnionDag) {
  // §4.3 different destinations: one DAG, per-atom acceptance.
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.anycast(fig.P1(), fig.S, {fig.D, fig.C});
  const auto dag = build_dpvnet(fig.topo, inv);
  EXPECT_EQ(dag.arity(), 4u);  // anycast over 2 dests => 4 atoms

  // Acceptance masks: nodes at D accept the to-D atoms (0 and 2 in dfs
  // order), nodes at C accept the to-C atoms (1 and 3).
  bool saw_d = false;
  bool saw_c = false;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    if (!n.accepting()) continue;
    if (n.dev == fig.D) {
      saw_d = true;
      EXPECT_TRUE(n.accepts(0, 0));
      EXPECT_TRUE(n.accepts(2, 0));
      EXPECT_FALSE(n.accepts(1, 0));
      EXPECT_FALSE(n.accepts(3, 0));
    } else if (n.dev == fig.C) {
      saw_c = true;
      EXPECT_TRUE(n.accepts(1, 0));
      EXPECT_TRUE(n.accepts(3, 0));
      EXPECT_FALSE(n.accepts(0, 0));
    } else {
      ADD_FAILURE() << "unexpected accepting device "
                    << fig.topo.name(n.dev);
    }
  }
  EXPECT_TRUE(saw_d);
  EXPECT_TRUE(saw_c);
}

TEST(CompoundDpvnet, SameDestinationAtomsStayDistinct) {
  // §4.3 same destination: (exist >= 2 simple) or (exist >= 1 via W).
  // Our construction labels each path with the set of atoms it matches,
  // so no virtual destination devices are needed.
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  spec::Invariant inv;
  inv.name = "same_dest";
  inv.packet_space = fig.P1();
  inv.packet_space_text = "dstIP=10.0.0.0/23";
  inv.ingress_set = {fig.S};
  inv.behavior = spec::Behavior::disj(
      {spec::Behavior::exist(spec::CountExpr{spec::CountExpr::Cmp::Ge, 2},
                             b.simple_paths(fig.S, fig.D)),
       spec::Behavior::exist(spec::CountExpr{spec::CountExpr::Cmp::Ge, 1},
                             b.waypoint_paths(fig.S, fig.W, fig.D))});
  const auto dag = build_dpvnet(fig.topo, inv);
  EXPECT_EQ(dag.arity(), 2u);

  // Every waypointed path matches both atoms; S A B D matches only the
  // first.
  for (const auto& p : dag.all_paths(0)) {
    const bool via_w = std::find(p.devices.begin(), p.devices.end(),
                                 fig.W) != p.devices.end();
    EXPECT_TRUE(p.accept_mask & 1u);  // every path is a simple S->D path
    EXPECT_EQ((p.accept_mask >> 1) & 1u, via_w ? 1u : 0u);
  }
}

TEST(CompoundDpvnet, MulticastHasBothDestinations) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.multicast(fig.P1(), fig.S, {fig.D, fig.C});
  const auto dag = build_dpvnet(fig.topo, inv);
  EXPECT_EQ(dag.arity(), 2u);
  std::set<DeviceId> accept_devs;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    if (dag.node(id).accepting()) accept_devs.insert(dag.node(id).dev);
  }
  EXPECT_EQ(accept_devs, (std::set<DeviceId>{fig.D, fig.C}));
}

TEST(CompoundDpvnet, EqualCannotMixWithOtherAtoms) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  spec::Invariant inv = b.all_shortest_path(fig.P1(), fig.S, fig.D);
  inv.behavior = spec::Behavior::conj(
      {inv.behavior,
       spec::Behavior::exist(spec::CountExpr{spec::CountExpr::Cmp::Ge, 1},
                             b.simple_paths(fig.S, fig.D))});
  EXPECT_THROW((void)build_dpvnet(fig.topo, inv), Error);
}

TEST(CompoundDpvnet, EqualAloneBuilds) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.all_shortest_path(fig.P1(), fig.S, fig.D);
  const auto dag = build_dpvnet(fig.topo, inv);
  EXPECT_GT(dag.node_count(), 0u);
  // All shortest S->D paths: S A W D and S A B D.
  EXPECT_EQ(dag.all_paths(0).size(), 2u);
}

TEST(CompoundDpvnet, InteriorAcceptanceForNestedDestinations) {
  // Regex S .* (D | W): a path may end at W or continue through W to D,
  // producing interior accepting nodes.
  Figure2 fig;
  spec::Invariant inv;
  inv.name = "interior";
  inv.packet_space = fig.P1();
  inv.ingress_set = {fig.S};
  spec::PathExpr pe;
  pe.regex_text = "S .* (D|W)";
  const auto resolver = [&](std::string_view name) {
    return fig.topo.device(std::string(name));
  };
  pe.ast = regex::parse("S .* (D|W)", resolver);
  pe.loop_free = true;
  inv.behavior = spec::Behavior::exist(
      spec::CountExpr{spec::CountExpr::Cmp::Ge, 1}, std::move(pe));

  const auto dag = build_dpvnet(fig.topo, inv);
  bool interior_accept = false;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    if (n.accepting() && !n.down.empty()) interior_accept = true;
  }
  EXPECT_TRUE(interior_accept);
}

}  // namespace
}  // namespace tulkun::dpvnet
