#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "eval/fib_synth.hpp"
#include "topo/generators.hpp"

namespace tulkun::partition {
namespace {

TEST(MakeClusters, CoversAllDevicesDeterministically) {
  const auto topo = topo::synthetic_wan("w", 30, 50, 5);
  const auto a = make_clusters(topo, 4, 9);
  const auto b = make_clusters(topo, 4, 9);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.clusters, 4u);
  std::size_t covered = 0;
  for (std::uint32_t c = 0; c < a.clusters; ++c) {
    const auto m = a.members(c);
    EXPECT_FALSE(m.empty());
    covered += m.size();
  }
  EXPECT_EQ(covered, topo.device_count());
}

TEST(MakeClusters, ClampsToDeviceCount) {
  const auto topo = topo::figure2_network();
  const auto p = make_clusters(topo, 100, 1);
  EXPECT_EQ(p.clusters, topo.device_count());
}

TEST(MakeClusters, SingleCluster) {
  const auto topo = topo::figure2_network();
  const auto p = make_clusters(topo, 1, 1);
  EXPECT_EQ(p.clusters, 1u);
  EXPECT_EQ(p.members(0).size(), topo.device_count());
}

class PartitionedVerifierTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::synthetic_wan("w", 24, 40, 7);
  fib::NetworkFib net = eval::synthesize(topo, eval::SynthOptions{2, 0, 7});
};

TEST_F(PartitionedVerifierTest, CleanPlanePassesAllPairs) {
  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  EXPECT_TRUE(v.verify_all_pairs().empty());
  EXPECT_GT(v.stats().intra_queries, 0u);
  EXPECT_GT(v.stats().cross_messages, 0u);  // borders were crossed
}

TEST_F(PartitionedVerifierTest, AgreesAcrossClusterCounts) {
  eval::inject_blackhole(net, 5, topo.prefixes(17).front());
  PartitionedVerifier flat(net, make_clusters(topo, 1, 3));
  PartitionedVerifier split(net, make_clusters(topo, 6, 3));
  EXPECT_EQ(flat.verify_all_pairs(), split.verify_all_pairs());
}

TEST_F(PartitionedVerifierTest, BlackholeLocalized) {
  // Device 5 drops traffic toward device 17's prefix: the pair (5, 17)
  // fails, as does any ingress whose only route runs through 5.
  eval::inject_blackhole(net, 5, topo.prefixes(17).front());
  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  const auto failures = v.verify_all_pairs();
  ASSERT_FALSE(failures.empty());
  bool direct = false;
  for (const auto& [ing, dst] : failures) {
    EXPECT_EQ(dst, 17u);
    if (ing == 5u) direct = true;
  }
  EXPECT_TRUE(direct);
}

TEST_F(PartitionedVerifierTest, MemoizationKicksIn) {
  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  (void)v.verify_all_pairs();
  const auto hits_before = v.stats().cache_hits;
  (void)v.query(0, 17);
  EXPECT_GT(v.stats().cache_hits, hits_before);
}

TEST_F(PartitionedVerifierTest, InvalidationAfterUpdate) {
  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  ASSERT_EQ(v.query(0, 17), Reach::Yes);

  // Drop at 17's sole announcer? Instead drop at ingress 0 directly.
  eval::inject_blackhole(net, 0, topo.prefixes(17).front());
  v.invalidate(0);
  EXPECT_EQ(v.query(0, 17), Reach::No);
}

TEST_F(PartitionedVerifierTest, LoopDetected) {
  // Force a loop across the first link that does not touch the
  // destination: x -> y -> x for dst 17's prefix.
  DeviceId x = kNoDevice;
  DeviceId y = kNoDevice;
  for (DeviceId d = 0; d < topo.device_count() && x == kNoDevice; ++d) {
    if (d == 17) continue;
    for (const auto& adj : topo.neighbors(d)) {
      if (adj.neighbor != 17) {
        x = d;
        y = adj.neighbor;
        break;
      }
    }
  }
  ASSERT_NE(x, kNoDevice);
  fib::Rule a;
  a.priority = 900;
  a.dst_prefix = topo.prefixes(17).front();
  a.action = fib::Action::forward(y);
  net.table(x).insert(a);
  fib::Rule b;
  b.priority = 900;
  b.dst_prefix = topo.prefixes(17).front();
  b.action = fib::Action::forward(x);
  net.table(y).insert(b);

  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  EXPECT_EQ(v.query(x, 17), Reach::No);
  EXPECT_EQ(v.query(y, 17), Reach::No);
}

TEST_F(PartitionedVerifierTest, AnyRequiresEveryChoice) {
  // Device 2 ANYs between a delivering neighbor-chain and a dropping one:
  // some universe loses the packet, so delivery is not guaranteed.
  const auto dst = DeviceId{17};
  const auto prefix = topo.prefixes(dst).front();
  // Pick two neighbors of device 2.
  const auto& adj = topo.neighbors(2);
  ASSERT_GE(adj.size(), 2u);
  const DeviceId good = adj[0].neighbor;
  const DeviceId bad = adj[1].neighbor;
  if (bad == dst) GTEST_SKIP() << "blackhole target is the destination";
  fib::Rule any;
  any.priority = 900;
  any.dst_prefix = prefix;
  any.action = fib::Action::forward_any({good, bad});
  net.table(2).insert(any);
  eval::inject_blackhole(net, bad, prefix);

  PartitionedVerifier v(net, make_clusters(topo, 4, 3));
  if (good == dst || v.query(good, dst) == Reach::Yes) {
    EXPECT_EQ(v.query(2, dst), Reach::No);  // the bad choice loses it
  }
}

}  // namespace
}  // namespace tulkun::partition
