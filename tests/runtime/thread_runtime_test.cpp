#include "runtime/thread_runtime.hpp"

#include <gtest/gtest.h>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::runtime {
namespace {

using testutil::Figure2;

class ThreadRuntimeTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  void initialize_all(ThreadRuntime& rt) {
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      rt.post_initialize(d, fig.net.table(d));
    }
    rt.wait_quiescent();
  }
};

TEST_F(ThreadRuntimeTest, LocalizeInvariantTransfersPacketSpace) {
  packet::PacketSpace other;
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);
  const auto local = localize_invariant(inv, other);
  EXPECT_EQ(local.packet_space.manager(), &other.manager());
  EXPECT_DOUBLE_EQ(local.packet_space.count(), inv.packet_space.count());
  EXPECT_EQ(local.ingress_set, inv.ingress_set);
}

TEST_F(ThreadRuntimeTest, LocalizeFibPreservesRules) {
  packet::PacketSpace other;
  const auto local = localize_fib(fig.net.table(fig.A), other);
  EXPECT_EQ(local.size(), fig.net.table(fig.A).size());
  for (const auto* r : local.all()) {
    if (r->extra_match) {
      EXPECT_EQ(r->extra_match->manager(), &other.manager());
    }
  }
}

TEST_F(ThreadRuntimeTest, DistributedVerdictMatchesPaper) {
  // Every device runs in its own thread with its own BDD space; all
  // predicates cross threads through the wire codec. The verdicts must
  // match the single-threaded engines (paper §2.2).
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  ThreadRuntime rt(fig.topo);
  rt.install(plan);
  initialize_all(rt);
  EXPECT_FALSE(rt.violations().empty());

  rt.post_rule_update(fig.B, fig.b_reroute_to_w());
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());
}

TEST_F(ThreadRuntimeTest, ManyUpdatesStayConsistent) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  ThreadRuntime rt(fig.topo);
  rt.install(plan);
  initialize_all(rt);
  EXPECT_TRUE(rt.violations().empty());

  // Alternate breaking and fixing W's route; end in the fixed state.
  for (int round = 0; round < 5; ++round) {
    fib::Rule bad;
    bad.priority = 100 + round;
    bad.dst_prefix = fig.p1;
    bad.action = fib::Action::drop();
    rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, bad));

    fib::Rule good;
    good.priority = 200 + round;
    good.dst_prefix = fig.p1;
    good.action = fib::Action::forward(fig.D);
    rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, good));
  }
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());
}

}  // namespace
}  // namespace tulkun::runtime
