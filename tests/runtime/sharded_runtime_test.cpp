#include "runtime/sharded_runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>

#include "pred/atom_set.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::runtime {
namespace {

using testutil::Figure2;

class ShardedRuntimeTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  [[nodiscard]] dvm::EngineConfig shards(std::size_t n) const {
    dvm::EngineConfig cfg;
    cfg.runtime_shards = n;
    return cfg;
  }

  void initialize_all(ShardedRuntime& rt) {
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      rt.post_initialize(d, fig.net.table(d));
    }
    rt.wait_quiescent();
  }
};

TEST_F(ShardedRuntimeTest, LocalizeInvariantTransfersPacketSpace) {
  packet::PacketSpace other;
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);
  const auto local = localize_invariant(inv, other);
  EXPECT_EQ(local.packet_space.manager(), &other.manager());
  EXPECT_DOUBLE_EQ(local.packet_space.count(), inv.packet_space.count());
  EXPECT_EQ(local.ingress_set, inv.ingress_set);
}

TEST_F(ShardedRuntimeTest, LocalizeFibPreservesRules) {
  packet::PacketSpace other;
  const auto local = localize_fib(fig.net.table(fig.A), other);
  EXPECT_EQ(local.size(), fig.net.table(fig.A).size());
  for (const auto* r : local.all()) {
    if (r->extra_match) {
      EXPECT_EQ(r->extra_match->manager(), &other.manager());
    }
  }
}

TEST_F(ShardedRuntimeTest, DistributedVerdictMatchesPaper) {
  // Devices share worker threads but not BDD spaces; every predicate
  // crosses shards through the wire codec, batched into frames. Verdicts
  // must match the single-threaded engines (paper §2.2).
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  ShardedRuntime rt(fig.topo);
  rt.install(plan);
  initialize_all(rt);
  EXPECT_FALSE(rt.violations().empty());

  rt.post_rule_update(fig.B, fig.b_reroute_to_w());
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());
}

TEST_F(ShardedRuntimeTest, OneShardMatchesManyShards) {
  // The pool size is a throughput knob, never a semantics knob: one
  // worker and one-per-device must reach identical verdicts.
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  for (const std::size_t n : {std::size_t{1}, fig.topo.device_count()}) {
    ShardedRuntime rt(fig.topo, shards(n));
    ASSERT_LE(rt.shard_count(), fig.topo.device_count());
    rt.install(plan);
    initialize_all(rt);
    EXPECT_EQ(rt.violations().size(), 1u) << n << " shards";

    rt.post_rule_update(fig.B, fig.b_reroute_to_w());
    rt.wait_quiescent();
    EXPECT_TRUE(rt.violations().empty()) << n << " shards";
  }
}

TEST_F(ShardedRuntimeTest, ManyUpdatesStayConsistent) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  ShardedRuntime rt(fig.topo, shards(2));
  rt.install(plan);
  initialize_all(rt);
  EXPECT_TRUE(rt.violations().empty());

  // Alternate breaking and fixing W's route; end in the fixed state.
  for (int round = 0; round < 5; ++round) {
    fib::Rule bad;
    bad.priority = 100 + round;
    bad.dst_prefix = fig.p1;
    bad.action = fib::Action::drop();
    rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, bad));

    fib::Rule good;
    good.priority = 200 + round;
    good.dst_prefix = fig.p1;
    good.action = fib::Action::forward(fig.D);
    rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, good));
  }
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());
}

TEST_F(ShardedRuntimeTest, InsertHandleReceivesRuleId) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  ShardedRuntime rt(fig.topo, shards(1));
  rt.install(plan);
  initialize_all(rt);

  // Insert a drop rule, read the assigned id off the handle, erase it.
  fib::Rule bad;
  bad.priority = 100;
  bad.dst_prefix = fig.p1;
  bad.action = fib::Action::drop();
  const auto handle =
      rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, bad));
  rt.wait_quiescent();
  EXPECT_FALSE(rt.violations().empty());

  rt.post_rule_update(fig.W, fib::FibUpdate::erase(fig.W, handle->rule_id));
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());
}

TEST_F(ShardedRuntimeTest, QuiescenceNeverMissesTheLastDecrement) {
  // Regression guard for the enqueue/finish_one rework: hammer short
  // work waves; a missed wakeup on the final decrement would hang a
  // wait_quiescent() forever, so run the waves under a watchdog.
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  ShardedRuntime rt(fig.topo, shards(2));
  rt.install(plan);
  initialize_all(rt);

  auto waves = std::async(std::launch::async, [&] {
    for (int wave = 0; wave < 100; ++wave) {
      fib::Rule good;
      good.priority = static_cast<std::uint32_t>(1000 + wave);
      good.dst_prefix = fig.p1;
      good.action = fib::Action::forward(fig.D);
      const auto handle =
          rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, good));
      rt.wait_quiescent();
      rt.post_rule_update(fig.W,
                          fib::FibUpdate::erase(fig.W, handle->rule_id));
      rt.wait_quiescent();
    }
  });
  ASSERT_EQ(waves.wait_for(std::chrono::seconds(120)),
            std::future_status::ready)
      << "wait_quiescent() hung: lost quiescence wakeup";
  waves.get();
  EXPECT_TRUE(rt.violations().empty());
}

TEST_F(ShardedRuntimeTest, MetricsObserveBatchingAndTransferCache) {
  // Dst-only predicates ship as interval atoms and never touch the
  // serialize cache; pin the cache behavior on the BDD wire path.
  const bool atoms_were_enabled = pred::atom_path_enabled();
  pred::set_atom_path_enabled(false);
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  ShardedRuntime rt(fig.topo, shards(2));
  rt.install(plan);
  initialize_all(rt);
  rt.post_rule_update(fig.B, fig.b_reroute_to_w());
  rt.wait_quiescent();

  const auto m = rt.metrics();
  ASSERT_EQ(m.jobs_per_shard.size(), rt.shard_count());
  std::uint64_t per_shard_total = 0;
  for (const auto n : m.jobs_per_shard) per_shard_total += n;
  EXPECT_EQ(per_shard_total, m.jobs);
  EXPECT_GT(m.jobs, 0u);
  EXPECT_GT(m.frames, 0u);
  EXPECT_GE(m.envelopes, m.frames);  // frames coalesce >= 1 envelope each
  EXPECT_GT(m.frame_bytes, 0u);
  // Every frame predicate went through the per-shard delta channels (which
  // supersede the serialize cache on this path — the cache stays as the
  // channel-less fallback used by DistributedRuntime).
  EXPECT_GT(m.channel_roots, 0u);
  EXPECT_GT(m.channel_nodes_shipped, 0u);
  EXPECT_EQ(m.transfer_cache_hits + m.transfer_cache_misses, 0u);
  EXPECT_FALSE(m.queue_wait_seconds.empty());
  pred::set_atom_path_enabled(atoms_were_enabled);
}

}  // namespace
}  // namespace tulkun::runtime
