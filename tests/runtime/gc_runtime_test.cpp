// Epoch GC in the sharded runtime must be invisible to verification: a
// runtime collecting aggressively (tiny node threshold) has to converge to
// byte-identical device state and verdicts as one that never collects.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pred/atom_set.hpp"
#include "runtime/digest.hpp"
#include "runtime/sharded_runtime.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::runtime {
namespace {

using testutil::Figure2;

class GcRuntimeTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  [[nodiscard]] dvm::EngineConfig config(std::size_t gc_nodes) const {
    dvm::EngineConfig cfg;
    cfg.runtime_shards = 2;
    cfg.bdd_gc_node_threshold = gc_nodes;
    return cfg;
  }

  void churn(ShardedRuntime& rt) {
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      rt.post_initialize(d, fig.net.table(d));
    }
    rt.wait_quiescent();
    // Break and fix W's route repeatedly so predicates churn through every
    // device's manager — the garbage a collector has to find.
    for (int round = 0; round < 8; ++round) {
      fib::Rule bad;
      bad.priority = static_cast<std::uint32_t>(100 + round);
      bad.dst_prefix = fig.p1;
      bad.action = fib::Action::drop();
      const auto handle =
          rt.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, bad));
      rt.wait_quiescent();
      rt.post_rule_update(fig.W, fib::FibUpdate::erase(fig.W, handle->rule_id));
      rt.wait_quiescent();
    }
    rt.post_rule_update(fig.B, fig.b_reroute_to_w());
    rt.wait_quiescent();
  }

  [[nodiscard]] std::vector<std::string> network_rows(ShardedRuntime& rt) {
    std::vector<std::string> rows;
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      const auto dev_rows = canonical_device_rows(rt.device(d));
      rows.insert(rows.end(), dev_rows.begin(), dev_rows.end());
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

TEST_F(GcRuntimeTest, AggressiveGcReachesIdenticalState) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));

  ShardedRuntime baseline(fig.topo, config(/*gc_nodes=*/0));
  baseline.install(plan);
  churn(baseline);

  // Threshold far below steady-state live size: collections fire all run.
  ShardedRuntime collected(fig.topo, config(/*gc_nodes=*/64));
  collected.install(plan);
  churn(collected);

  EXPECT_EQ(baseline.violations().size(), collected.violations().size());
  EXPECT_EQ(network_rows(baseline), network_rows(collected));

  const auto m0 = baseline.metrics();
  const auto m1 = collected.metrics();
  EXPECT_EQ(m0.gc_runs, 0u);
  EXPECT_GT(m1.gc_runs, 0u);
  EXPECT_GT(m1.gc_reclaimed_nodes, 0u);
}

TEST_F(GcRuntimeTest, DeltaChannelsSurviveCollections) {
  // The per-(src, dst) node streams self-reset when a sender's epoch moves
  // and pin received nodes on the receiver; with collections firing between
  // update waves, verdicts must still track the single-runtime truth.
  // Atoms off so dst-only predicates take the BDD/delta path too.
  const bool atoms_were = pred::atom_path_enabled();
  pred::set_atom_path_enabled(false);
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  ShardedRuntime rt(fig.topo, config(/*gc_nodes=*/64));
  rt.install(plan);
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    rt.post_initialize(d, fig.net.table(d));
  }
  rt.wait_quiescent();
  EXPECT_FALSE(rt.violations().empty());

  rt.post_rule_update(fig.B, fig.b_reroute_to_w());
  rt.wait_quiescent();
  EXPECT_TRUE(rt.violations().empty());

  const auto m = rt.metrics();
  EXPECT_GT(m.channel_roots, 0u);
  EXPECT_GT(m.channel_nodes_shipped, 0u);
  pred::set_atom_path_enabled(atoms_were);
}

}  // namespace
}  // namespace tulkun::runtime
