#include "runtime/event_sim.hpp"

#include <gtest/gtest.h>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::runtime {
namespace {

using testutil::Figure2;

class EventSimTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  EventSimulator make_sim(const planner::InvariantPlan& plan,
                          SimConfig cfg = {}) {
    EventSimulator sim(fig.topo, cfg);
    sim.make_devices(fig.space());
    sim.install(plan);
    return sim;
  }

  void post_burst(EventSimulator& sim) {
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      sim.post_initialize(d, fig.net.table(d), 0.0);
    }
  }
};

TEST_F(EventSimTest, BurstConvergesAndDetectsViolation) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  auto sim = make_sim(plan);
  post_burst(sim);
  const double t = sim.run();
  EXPECT_GT(t, 0.0);
  EXPECT_FALSE(sim.violations().empty());
  EXPECT_GT(sim.stats().messages, 0u);
  EXPECT_GT(sim.stats().events, 0u);
}

TEST_F(EventSimTest, VerificationTimeIncludesPropagation) {
  // Links are 1ms in the Figure 2 fixture; results must cross at least
  // the S<-A<-{B,W}<-D chain, so >= 3ms of virtual time.
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  auto sim = make_sim(plan);
  post_burst(sim);
  EXPECT_GE(sim.run(), 3e-3);
}

TEST_F(EventSimTest, CpuScaleStretchesComputeOnly) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  SimConfig slow;
  slow.cpu_scale = 50.0;
  auto fast_sim = make_sim(plan);
  auto slow_sim = make_sim(plan, slow);
  post_burst(fast_sim);
  post_burst(slow_sim);
  const double fast_busy = [&] {
    fast_sim.run();
    double total = 0;
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      total += fast_sim.device_busy_seconds(d);
    }
    return total;
  }();
  const double slow_busy = [&] {
    slow_sim.run();
    double total = 0;
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      total += slow_sim.device_busy_seconds(d);
    }
    return total;
  }();
  // Slowdown should be roughly 50x on busy time (allow wide slack for
  // host noise).
  EXPECT_GT(slow_busy, fast_busy * 5.0);
}

TEST_F(EventSimTest, IncrementalUpdateRunsAfterBurst) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  auto sim = make_sim(plan);
  post_burst(sim);
  const double t0 = sim.run();
  ASSERT_FALSE(sim.violations().empty());

  auto handle = sim.post_rule_update(fig.B, fig.b_reroute_to_w(), t0);
  const double t1 = sim.run();
  EXPECT_GT(t1, t0);
  EXPECT_GT(handle->rule_id, 0u);  // assigned id readable after run
  EXPECT_TRUE(sim.violations().empty());
}

TEST_F(EventSimTest, EraseViaHandleRestoresViolation) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  auto sim = make_sim(plan);
  post_burst(sim);
  double now = sim.run();

  auto insert = sim.post_rule_update(fig.B, fig.b_reroute_to_w(), now);
  now = sim.run();
  EXPECT_TRUE(sim.violations().empty());

  auto erase = fib::FibUpdate::erase(fig.B, insert->rule_id);
  sim.post_rule_update(fig.B, erase, now);
  sim.run();
  EXPECT_FALSE(sim.violations().empty());
}

TEST_F(EventSimTest, LinkEventTriggersRecount) {
  auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  inv.faults.any_k = 1;
  const auto plan = planner.plan(std::move(inv));
  auto sim = make_sim(plan);
  post_burst(sim);
  double now = sim.run();
  EXPECT_TRUE(sim.violations().empty());

  sim.post_link_event(LinkId{fig.B, fig.D}, false, now);
  sim.run();
  EXPECT_FALSE(sim.violations().empty());
}

TEST_F(EventSimTest, ProxyLatencyModelsOffDeviceVerifiers) {
  // §7 incremental deployment: moving verifiers into VMs adds two proxy
  // hops per message, stretching verification time but not the verdict.
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  SimConfig proxied;
  proxied.proxy_latency = 5e-3;
  auto on_device = make_sim(plan);
  auto off_device = make_sim(plan, proxied);
  post_burst(on_device);
  post_burst(off_device);
  const double t_on = on_device.run();
  const double t_off = off_device.run();
  EXPECT_GT(t_off, t_on + 2 * 5e-3);
  EXPECT_EQ(on_device.violations().empty(), off_device.violations().empty());
}

TEST_F(EventSimTest, ByteAccountingCountsWireBytes) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  SimConfig cfg;
  cfg.account_bytes = true;
  auto sim = make_sim(plan, cfg);
  post_burst(sim);
  sim.run();
  EXPECT_GT(sim.stats().bytes, 0u);
  EXPECT_GT(sim.stats().per_message_seconds.size(), 0u);
}

}  // namespace
}  // namespace tulkun::runtime
