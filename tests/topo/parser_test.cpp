#include "topo/parser.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace tulkun::topo {
namespace {

TEST(TopoParser, ParsesBasicDocument) {
  const auto t = parse_topology(
      "# example\n"
      "device S\n"
      "device A\n"
      "device D\n"
      "link S A 5ms\n"
      "link A D 10us # inline comment\n"
      "prefix D 10.0.0.0/24\n");
  EXPECT_EQ(t.device_count(), 3u);
  EXPECT_DOUBLE_EQ(t.link_latency(t.device("S"), t.device("A")), 5e-3);
  EXPECT_DOUBLE_EQ(t.link_latency(t.device("A"), t.device("D")), 10e-6);
  EXPECT_EQ(t.prefixes(t.device("D")).size(), 1u);
}

TEST(TopoParser, LatencyUnits) {
  EXPECT_DOUBLE_EQ(parse_latency("250ns"), 250e-9);
  EXPECT_DOUBLE_EQ(parse_latency("10us"), 10e-6);
  EXPECT_DOUBLE_EQ(parse_latency("5ms"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_latency("2s"), 2.0);
  EXPECT_DOUBLE_EQ(parse_latency("1.5ms"), 1.5e-3);
  EXPECT_DOUBLE_EQ(parse_latency("3"), 3.0);  // bare seconds
}

TEST(TopoParser, RejectsMalformed) {
  EXPECT_THROW((void)parse_latency("abc"), TopologyError);
  EXPECT_THROW((void)parse_latency("-5ms"), TopologyError);
  EXPECT_THROW((void)parse_topology("device\n"), TopologyError);
  EXPECT_THROW((void)parse_topology("link A B 5ms\n"), TopologyError);
  EXPECT_THROW((void)parse_topology("device A\nfrobnicate A\n"),
               TopologyError);
  // Prefix parsing raises the packet layer's Error (not TopologyError).
  EXPECT_THROW((void)parse_topology("device A\nprefix A not-an-ip\n"),
               Error);
}

TEST(TopoParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_topology("device A\n\nlink A B 5ms\n");
    FAIL() << "expected TopologyError";
  } catch (const TopologyError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TopoParser, RoundTripsGeneratedTopology) {
  const auto original = figure2_network();
  const auto reparsed = parse_topology(to_text(original));
  EXPECT_EQ(reparsed.device_count(), original.device_count());
  EXPECT_EQ(reparsed.link_count(), original.link_count());
  for (DeviceId d = 0; d < original.device_count(); ++d) {
    EXPECT_EQ(reparsed.name(d), original.name(d));
    EXPECT_EQ(reparsed.prefixes(d).size(), original.prefixes(d).size());
  }
  EXPECT_TRUE(reparsed.has_link(reparsed.device("S"), reparsed.device("A")));
}

}  // namespace
}  // namespace tulkun::topo
