#include "topo/generators.hpp"

#include <gtest/gtest.h>

namespace tulkun::topo {
namespace {

TEST(FatTree, K4Shape) {
  const auto t = fat_tree(4);
  // (k/2)^2 core + k pods * k switches = 4 + 16 = 20.
  EXPECT_EQ(t.device_count(), 20u);
  // Links: k pods * ((k/2)^2 edge-agg + (k/2)^2 agg-core) = 4*(4+4) = 32.
  EXPECT_EQ(t.link_count(), 32u);
  // Every ToR owns a prefix.
  EXPECT_EQ(t.all_prefix_attachments().size(), 8u);
}

TEST(FatTree, RejectsOddArity) {
  EXPECT_THROW((void)fat_tree(3), TopologyError);
  EXPECT_THROW((void)fat_tree(0), TopologyError);
}

TEST(FatTree, TorToTorShortestIs4HopsAcrossPods) {
  const auto t = fat_tree(4);
  const auto src = t.device("p0_tor0");
  const auto dst = t.device("p1_tor0");
  EXPECT_EQ(t.hop_distances_to(dst)[src], 4u);
  const auto same_pod = t.device("p0_tor1");
  EXPECT_EQ(t.hop_distances_to(same_pod)[src], 2u);
}

TEST(Clos3, ShapeAndConnectivity) {
  const auto t = clos3(4, 2, 4, 4);
  // 4 cores + 4 pods * (2 spines + 4 ToRs) = 4 + 24 = 28.
  EXPECT_EQ(t.device_count(), 28u);
  EXPECT_EQ(t.all_prefix_attachments().size(), 16u);
  // All ToR pairs reachable.
  const auto dst = t.device("p3_tor3");
  const auto dist = t.hop_distances_to(dst);
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    EXPECT_NE(dist[d], Topology::kUnreachable) << t.name(d);
  }
}

TEST(SyntheticWan, DeterministicInSeed) {
  const auto a = synthetic_wan("w", 20, 35, 7);
  const auto b = synthetic_wan("w", 20, 35, 7);
  EXPECT_EQ(a.device_count(), b.device_count());
  EXPECT_EQ(a.link_count(), b.link_count());
  for (DeviceId d = 0; d < a.device_count(); ++d) {
    ASSERT_EQ(a.neighbors(d).size(), b.neighbors(d).size());
    for (std::size_t i = 0; i < a.neighbors(d).size(); ++i) {
      EXPECT_EQ(a.neighbors(d)[i].neighbor, b.neighbors(d)[i].neighbor);
      EXPECT_DOUBLE_EQ(a.neighbors(d)[i].latency_s,
                       b.neighbors(d)[i].latency_s);
    }
  }
}

TEST(SyntheticWan, ConnectedWithRequestedLinks) {
  const auto t = synthetic_wan("w", 30, 55, 11);
  EXPECT_EQ(t.device_count(), 30u);
  EXPECT_EQ(t.link_count(), 55u);
  const auto dist = t.hop_distances_to(0);
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    EXPECT_NE(dist[d], Topology::kUnreachable);
  }
  // One /24 per device.
  EXPECT_EQ(t.all_prefix_attachments().size(), 30u);
}

TEST(SyntheticWan, ClampsLinkTargets) {
  // Below spanning-tree minimum: clamped up to n-1.
  const auto t = synthetic_wan("w", 10, 2, 3);
  EXPECT_EQ(t.link_count(), 9u);
  // Above complete-graph maximum: clamped down.
  const auto full = synthetic_wan("w", 5, 100, 3);
  EXPECT_EQ(full.link_count(), 10u);
}

TEST(SyntheticWan, LatenciesPositive) {
  const auto t = synthetic_wan("w", 15, 25, 5, 0.04);
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    for (const auto& adj : t.neighbors(d)) {
      EXPECT_GE(adj.latency_s, 1e-4);
      EXPECT_LE(adj.latency_s, 0.04);
    }
  }
}

TEST(Figure2Network, MatchesPaperTopology) {
  const auto t = figure2_network();
  EXPECT_EQ(t.device_count(), 6u);
  EXPECT_TRUE(t.has_link(t.device("S"), t.device("A")));
  EXPECT_TRUE(t.has_link(t.device("A"), t.device("B")));
  EXPECT_TRUE(t.has_link(t.device("A"), t.device("W")));
  EXPECT_TRUE(t.has_link(t.device("B"), t.device("W")));
  EXPECT_TRUE(t.has_link(t.device("B"), t.device("D")));
  EXPECT_TRUE(t.has_link(t.device("W"), t.device("D")));
  EXPECT_FALSE(t.has_link(t.device("S"), t.device("D")));
  const auto covering =
      t.devices_covering(packet::Ipv4Prefix::parse("10.0.0.0/23"));
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0], t.device("D"));
}

}  // namespace
}  // namespace tulkun::topo
