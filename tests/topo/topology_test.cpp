#include "topo/topology.hpp"

#include <gtest/gtest.h>

namespace tulkun::topo {
namespace {

Topology line3() {
  Topology t;
  t.add_device("a");
  t.add_device("b");
  t.add_device("c");
  t.add_link(0, 1, 1e-3);
  t.add_link(1, 2, 2e-3);
  return t;
}

TEST(Topology, AddAndLookupDevices) {
  Topology t;
  EXPECT_EQ(t.add_device("x"), 0u);
  EXPECT_EQ(t.add_device("y"), 1u);
  EXPECT_EQ(t.device("x"), 0u);
  EXPECT_EQ(t.name(1), "y");
  EXPECT_FALSE(t.find_device("z").has_value());
  EXPECT_THROW((void)t.device("z"), TopologyError);
}

TEST(Topology, RejectsDuplicatesAndEmpty) {
  Topology t;
  t.add_device("x");
  EXPECT_THROW((void)t.add_device("x"), TopologyError);
  EXPECT_THROW((void)t.add_device(""), TopologyError);
}

TEST(Topology, LinksAreBidirectional) {
  const auto t = line3();
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_TRUE(t.has_link(1, 0));
  EXPECT_FALSE(t.has_link(0, 2));
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_DOUBLE_EQ(t.link_latency(1, 2), 2e-3);
  EXPECT_DOUBLE_EQ(t.link_latency(2, 1), 2e-3);
  EXPECT_THROW((void)t.link_latency(0, 2), TopologyError);
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  t.add_device("x");
  t.add_device("y");
  EXPECT_THROW(t.add_link(0, 0, 1e-3), TopologyError);
  t.add_link(0, 1, 1e-3);
  EXPECT_THROW(t.add_link(1, 0, 1e-3), TopologyError);
  EXPECT_THROW(t.add_link(0, 1, -1.0), TopologyError);
}

TEST(Topology, HopDistances) {
  const auto t = line3();
  const auto d = t.hop_distances_to(2);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[0], 2u);
}

TEST(Topology, HopDistancesWithFailedLink) {
  Topology t;
  t.add_device("a");
  t.add_device("b");
  t.add_device("c");
  t.add_link(0, 1, 1e-3);
  t.add_link(1, 2, 1e-3);
  t.add_link(0, 2, 1e-3);
  std::unordered_set<LinkId> failed{LinkId{0, 2}};
  const auto d = t.hop_distances_to(2, failed);
  EXPECT_EQ(d[0], 2u);  // must go via b
  const auto d_all = t.hop_distances_to(2);
  EXPECT_EQ(d_all[0], 1u);
}

TEST(Topology, DisconnectedIsUnreachable) {
  Topology t;
  t.add_device("a");
  t.add_device("b");
  const auto d = t.hop_distances_to(0);
  EXPECT_EQ(d[1], Topology::kUnreachable);
}

TEST(Topology, LatencyDistancesPickCheapestPath) {
  Topology t;
  t.add_device("a");
  t.add_device("b");
  t.add_device("c");
  t.add_link(0, 1, 10e-3);
  t.add_link(1, 2, 10e-3);
  t.add_link(0, 2, 50e-3);
  const auto d = t.latency_distances_to(2);
  EXPECT_DOUBLE_EQ(d[0], 20e-3);  // two cheap hops beat one expensive
}

TEST(Topology, PrefixAttachments) {
  Topology t;
  t.add_device("tor");
  t.attach_prefix(0, packet::Ipv4Prefix::parse("10.0.0.0/24"));
  t.attach_prefix(0, packet::Ipv4Prefix::parse("10.0.1.0/24"));
  EXPECT_EQ(t.prefixes(0).size(), 2u);
  EXPECT_EQ(t.all_prefix_attachments().size(), 2u);
  const auto covering =
      t.devices_covering(packet::Ipv4Prefix::parse("10.0.0.0/25"));
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0], 0u);
  EXPECT_TRUE(
      t.devices_covering(packet::Ipv4Prefix::parse("11.0.0.0/24")).empty());
}

}  // namespace
}  // namespace tulkun::topo
