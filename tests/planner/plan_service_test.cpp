#include "planner/plan_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "planner/plan_digest.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::planner {
namespace {

using testutil::Figure2;

class PlanServiceTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};

  PlanService make(std::size_t workers = 1, bool incremental = true) {
    PlanServiceOptions opts;
    opts.workers = workers;
    opts.incremental = incremental;
    return PlanService(fig.topo, fig.space(), opts);
  }

  spec::Invariant reach_sd() {
    return b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  }
  spec::Invariant reach_cd() {
    return b.shortest_plus_reachability(fig.P1(), fig.C, fig.D, 1);
  }
};

TEST_F(PlanServiceTest, CommitPlansEveryIntent) {
  auto svc = make();
  const auto id1 = svc.add_invariant(reach_sd());
  const auto id2 = svc.add_invariant(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  EXPECT_EQ(svc.dirty_count(), 2u);
  const auto delta = svc.commit();
  EXPECT_EQ(delta.replanned, (std::vector<InvariantId>{id1, id2}));
  EXPECT_EQ(delta.reused, 0u);
  ASSERT_NE(svc.plan(id1), nullptr);
  ASSERT_NE(svc.plan(id2), nullptr);
  EXPECT_EQ(svc.plan(id1)->id, id1);
  EXPECT_EQ(svc.dirty_count(), 0u);
  EXPECT_NE(svc.digest(), 0u);
}

TEST_F(PlanServiceTest, RecommitReusesCleanPlans) {
  auto svc = make();
  svc.add_invariant(reach_sd());
  svc.add_invariant(reach_cd());
  svc.commit();
  const auto d0 = svc.digest();
  const auto delta = svc.commit();
  EXPECT_TRUE(delta.replanned.empty());
  EXPECT_EQ(delta.reused, 2u);
  EXPECT_EQ(svc.digest(), d0);
}

TEST_F(PlanServiceTest, MatchesBatchPlannerByteForByte) {
  Planner planner(fig.topo, fig.space());
  std::vector<InvariantPlan> legacy;
  legacy.push_back(planner.plan(reach_sd()));
  legacy.push_back(planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D)));
  std::vector<const InvariantPlan*> legacy_ptrs;
  for (const auto& p : legacy) legacy_ptrs.push_back(&p);

  auto svc = make();
  svc.add_invariant(reach_sd());
  svc.add_invariant(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  svc.commit();
  EXPECT_EQ(svc.digest(), plan_digest(legacy_ptrs));
}

TEST_F(PlanServiceTest, ParallelWorkersProduceIdenticalPlans) {
  auto serial = make(1);
  auto parallel = make(4);
  for (auto* svc : {&serial, &parallel}) {
    svc->add_invariant(reach_sd());
    svc->add_invariant(reach_cd());
    svc->add_invariant(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
    svc->commit();
  }
  EXPECT_EQ(serial.digest(), parallel.digest());
}

TEST_F(PlanServiceTest, LinkFlapDirtiesOnlyTouchingPlans) {
  auto svc = make();
  const auto id_sd = svc.add_invariant(reach_sd());
  const auto id_cd = svc.add_invariant(reach_cd());
  svc.commit();

  // Every S->D path crosses S-A; no C->D path does.
  svc.set_link_state(LinkId{fig.S, fig.A}, false);
  EXPECT_FALSE(svc.link_is_up(LinkId{fig.S, fig.A}));
  EXPECT_EQ(svc.dirty_count(), 1u);
  const auto delta = svc.commit();
  EXPECT_EQ(delta.replanned, (std::vector<InvariantId>{id_sd}));
  EXPECT_EQ(delta.reused, 1u);
  // S is now cut off: the replanned intent reports it statically.
  ASSERT_FALSE(svc.plan(id_sd)->static_warnings.empty());
  EXPECT_NE(svc.plan(id_sd)->static_warnings[0].find("no valid path"),
            std::string::npos);
  EXPECT_TRUE(svc.plan(id_cd)->static_warnings.empty());
}

TEST_F(PlanServiceTest, LinkUpRestoresOriginalDigest) {
  auto svc = make();
  svc.add_invariant(reach_sd());
  svc.add_invariant(reach_cd());
  svc.commit();
  const auto d0 = svc.digest();

  svc.set_link_state(LinkId{fig.S, fig.A}, false);
  svc.commit();
  EXPECT_NE(svc.digest(), d0);

  svc.set_link_state(LinkId{fig.S, fig.A}, true);
  EXPECT_EQ(svc.dirty_count(), 1u);
  svc.commit();
  EXPECT_EQ(svc.digest(), d0);
}

TEST_F(PlanServiceTest, IncrementalMatchesFullReplanUnderOverlay) {
  auto inc = make();
  inc.add_invariant(reach_sd());
  inc.add_invariant(reach_cd());
  inc.commit();
  inc.set_link_state(LinkId{fig.B, fig.D}, false);
  inc.commit();

  auto full = make(1, /*incremental=*/false);
  full.set_link_state(LinkId{fig.B, fig.D}, false);
  full.add_invariant(reach_sd());
  full.add_invariant(reach_cd());
  full.commit();

  EXPECT_EQ(inc.digest(), full.digest());
}

TEST_F(PlanServiceTest, RemoveInvariantRetiresPlan) {
  auto svc = make();
  const auto id1 = svc.add_invariant(reach_sd());
  const auto id2 = svc.add_invariant(reach_cd());
  svc.commit();
  EXPECT_TRUE(svc.remove_invariant(id1));
  EXPECT_FALSE(svc.remove_invariant(999));
  const auto delta = svc.commit();
  EXPECT_EQ(delta.removed, (std::vector<InvariantId>{id1}));
  EXPECT_EQ(svc.plan(id1), nullptr);
  ASSERT_EQ(svc.plans().size(), 1u);
  EXPECT_EQ(svc.plans()[0]->id, id2);
}

TEST_F(PlanServiceTest, CommitAbortsAtomicallyOnInvalidInvariant) {
  auto svc = make();
  svc.add_invariant(reach_sd());
  svc.add_invariant(b.reachability(
      fig.space().dst_prefix(packet::Ipv4Prefix::parse("99.0.0.0/8")), fig.S,
      fig.D));
  EXPECT_THROW(svc.commit(), SpecError);
  EXPECT_TRUE(svc.plans().empty());  // nothing published
}

TEST_F(PlanServiceTest, DfaCacheSharesAcrossIntents) {
  auto svc = make();
  svc.add_invariant(reach_sd());
  svc.add_invariant(b.shortest_plus_reachability(fig.P2(), fig.S, fig.D, 1));
  svc.commit();
  // Identical regex AST (".* D"): compiled once, hit afterwards.
  EXPECT_EQ(svc.dfa_cache().size(), 1u);
  EXPECT_GT(svc.dfa_cache().stats().hits, 0u);
}

// Regression: Planner::plan from several threads must not race on the id
// counter. Isolation (exist == 0) skips the packet-space coverage check —
// the only part of planning that touches the shared BDD manager — so a
// shared const Planner is otherwise thread-safe.
TEST_F(PlanServiceTest, ConcurrentBatchPlannerIdAllocationIsRaceFree) {
  Planner planner(fig.topo, fig.space());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<spec::Invariant> invs;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    invs.push_back(b.isolation(fig.P1(), fig.S, fig.D));
  }
  std::vector<std::vector<InvariantId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[t].push_back(planner.plan(invs[t * kPerThread + i]).id);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<InvariantId> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate invariant id allocated under concurrency";
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace tulkun::planner
