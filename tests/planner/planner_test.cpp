#include "planner/planner.hpp"

#include <gtest/gtest.h>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::planner {
namespace {

using testutil::Figure2;

class PlannerTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  Planner planner{fig.topo, fig.space()};
};

TEST_F(PlannerTest, PlanProducesDagAndScenes) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  EXPECT_GT(plan.id, 0u);
  ASSERT_NE(plan.dag, nullptr);
  EXPECT_EQ(plan.dag->node_count(), 7u);
  ASSERT_EQ(plan.scenes.size(), 1u);  // just the no-failure scene
  EXPECT_TRUE(plan.static_warnings.empty());
  EXPECT_GT(plan.plan_seconds, 0.0);
}

TEST_F(PlannerTest, PlanIdsIncrease) {
  const auto p1 = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  const auto p2 = planner.plan(b.reachability(fig.P1(), fig.C, fig.D));
  EXPECT_LT(p1.id, p2.id);
}

TEST_F(PlannerTest, InvalidInvariantRejected) {
  const auto inv = b.reachability(
      fig.space().dst_prefix(packet::Ipv4Prefix::parse("99.0.0.0/8")),
      fig.S, fig.D);
  EXPECT_THROW((void)planner.plan(inv), SpecError);
}

TEST_F(PlannerTest, StaticWarningForUnreachableIngress) {
  // Make every S->D path impossible: fail both of A's uplinks in the
  // fault-free scene by using a waypoint that is off-path.
  // Simplest: island ingress in a custom topology.
  topo::Topology t;
  const auto s = t.add_device("S");
  const auto d = t.add_device("D");
  const auto i = t.add_device("I");
  t.add_link(s, d, 1e-3);
  (void)i;
  t.attach_prefix(d, packet::Ipv4Prefix::parse("10.0.0.0/24"));
  packet::PacketSpace space;
  spec::Builtins bb(t, space);
  Planner p(t, space);
  auto inv = bb.multi_ingress_reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")),
      {s, t.device("I")}, d);
  const auto plan = p.plan(std::move(inv));
  ASSERT_FALSE(plan.static_warnings.empty());
  EXPECT_NE(plan.static_warnings[0].find("no valid path"), std::string::npos);
}

TEST_F(PlannerTest, DecomposeCoversEveryNodeOnce) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto tasks = Planner::decompose(*plan.dag, plan.inv);
  std::size_t total_nodes = 0;
  for (const auto& t : tasks) {
    for (const auto& nt : t.nodes) {
      EXPECT_EQ(plan.dag->node(nt.node).dev, t.device);
      ++total_nodes;
    }
  }
  EXPECT_EQ(total_nodes, plan.dag->node_count());
}

TEST_F(PlannerTest, TasksCarryNeighborLists) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto tasks = Planner::decompose(*plan.dag, plan.inv);
  for (const auto& t : tasks) {
    for (const auto& nt : t.nodes) {
      const auto& node = plan.dag->node(nt.node);
      EXPECT_EQ(nt.downstream.size(), node.down.size());
      EXPECT_EQ(nt.upstream.size(), node.up.size());
      EXPECT_EQ(nt.accepting, node.accepting());
      for (const auto& [nid, dev] : nt.downstream) {
        EXPECT_EQ(plan.dag->node(nid).dev, dev);
      }
    }
  }
  // S is flagged as ingress.
  bool s_is_ingress = false;
  for (const auto& t : tasks) {
    if (t.device == fig.S) s_is_ingress = t.is_ingress;
  }
  EXPECT_TRUE(s_is_ingress);
}

TEST_F(PlannerTest, NonParticipantsDropped) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto tasks = Planner::decompose(*plan.dag, plan.inv);
  for (const auto& t : tasks) {
    EXPECT_TRUE(!t.nodes.empty() || t.is_ingress);
    EXPECT_NE(t.device, fig.C);  // C is not on any waypointed path
  }
}

TEST_F(PlannerTest, DescribeTasksMentionsLabels) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto tasks = Planner::decompose(*plan.dag, plan.inv);
  const auto text = Planner::describe_tasks(*plan.dag, tasks);
  EXPECT_NE(text.find("device S"), std::string::npos);
  EXPECT_NE(text.find("[dest]"), std::string::npos);
  EXPECT_NE(text.find("B1"), std::string::npos);
  EXPECT_NE(text.find("B2"), std::string::npos);
}

TEST_F(PlannerTest, FaultScenesExpandedInPlan) {
  auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  inv.faults.any_k = 1;
  const auto plan = planner.plan(std::move(inv));
  EXPECT_EQ(plan.scenes.size(), 1u + fig.topo.link_count());
  EXPECT_EQ(plan.dag->scene_count(), plan.scenes.size());
}

}  // namespace
}  // namespace tulkun::planner
