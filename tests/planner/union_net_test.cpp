#include "planner/union_net.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::planner {
namespace {

using testutil::Figure2;

class UnionDpvNetTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  Planner planner{fig.topo, fig.space()};
};

TEST_F(UnionDpvNetTest, IdenticalStructurePlansShareAllNodes) {
  // Same (s, d) pair, different packet sets: the DAGs are structurally
  // equal, so the second plan must intern onto the first's nodes.
  const auto p1 = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  const auto p2 = planner.plan(b.reachability(fig.P2(), fig.S, fig.D));

  UnionDpvNet u;
  const auto r1 = u.add(p1);  // copy: refs_ may reallocate on the next add
  const auto r2 = u.add(p2);

  EXPECT_EQ(r1.nodes_total, p1.dag->node_count());
  EXPECT_EQ(r1.nodes_new, p1.dag->node_count());
  EXPECT_EQ(r2.nodes_total, p2.dag->node_count());
  EXPECT_EQ(r2.nodes_new, 0u) << "structurally equal DAG re-added nodes";
  EXPECT_EQ(u.node_count(), p1.dag->node_count());
  EXPECT_EQ(u.total_nodes(), p1.dag->node_count() + p2.dag->node_count());
  EXPECT_EQ(r1.sources, r2.sources);
}

TEST_F(UnionDpvNetTest, DifferentShapesAddNodes) {
  const auto reach = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  const auto way = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));

  UnionDpvNet u;
  u.add(reach);
  const auto r = u.add(way);
  EXPECT_GT(r.nodes_new, 0u);
  EXPECT_EQ(u.plan_count(), 2u);
  EXPECT_LE(u.node_count(), u.total_nodes());
}

TEST_F(UnionDpvNetTest, DeviceTablesSliceByInvariant) {
  const auto p_sd = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  const auto p_cd = planner.plan(b.reachability(fig.P1(), fig.C, fig.D));

  UnionDpvNet u;
  u.add(p_sd);
  u.add(p_cd);
  const auto tables = u.device_tables();

  const UnionDpvNet::DeviceTable* at_d = nullptr;
  const UnionDpvNet::DeviceTable* at_s = nullptr;
  DeviceId prev = 0;
  for (const auto& t : tables) {
    if (&t != &tables.front()) {
      EXPECT_GT(t.device, prev);  // ascending device ids
    }
    prev = t.device;
    if (t.device == fig.D) at_d = &t;
    if (t.device == fig.S) at_s = &t;
  }

  // D terminates both invariants: one slice each, shared nodes stored once.
  ASSERT_NE(at_d, nullptr);
  ASSERT_EQ(at_d->slices.size(), 2u);
  EXPECT_EQ(at_d->slices[0].invariant, p_sd.id);
  EXPECT_EQ(at_d->slices[1].invariant, p_cd.id);
  EXPECT_TRUE(std::is_sorted(at_d->unique_nodes.begin(),
                             at_d->unique_nodes.end()));
  std::size_t sliced = 0;
  for (const auto& s : at_d->slices) sliced += s.nodes.size();
  EXPECT_LE(at_d->unique_nodes.size(), sliced);

  // S is only on the first invariant's paths.
  ASSERT_NE(at_s, nullptr);
  ASSERT_EQ(at_s->slices.size(), 1u);
  EXPECT_EQ(at_s->slices[0].invariant, p_sd.id);
  EXPECT_TRUE(at_s->slices[0].is_ingress);
}

TEST_F(UnionDpvNetTest, SourcesMapToGlobalNodes) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  UnionDpvNet u;
  const auto r = u.add(plan);

  ASSERT_EQ(r.sources.size(), plan.dag->sources().size());
  for (std::size_t i = 0; i < r.sources.size(); ++i) {
    const auto [dev, gid] = r.sources[i];
    EXPECT_EQ(dev, plan.dag->sources()[i].first);
    if (plan.dag->sources()[i].second == kNoNode) {
      EXPECT_EQ(gid, ~std::uint32_t{0});
      continue;
    }
    ASSERT_LT(gid, u.node_count());
    EXPECT_EQ(u.node(gid).dev, dev);
  }
}

}  // namespace
}  // namespace tulkun::planner
