// Property test: the planner's serial, parallel, and incremental paths
// must be observationally identical. Over randomized WAN topologies we
// check that (a) commits with 1/4/8 workers publish byte-identical plans
// (canonical digest + structural decompose equality) and (b) incremental
// replanning after link churn matches a from-scratch replan of the same
// logical state.
#include <gtest/gtest.h>

#include <vector>

#include "dpvnet/build.hpp"
#include "fib/update_stream.hpp"
#include "planner/plan_service.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun::planner {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

std::vector<spec::Invariant> make_invariants(const topo::Topology& topo,
                                             packet::PacketSpace& space,
                                             std::uint64_t seed) {
  spec::Builtins b(topo, space);
  const auto n = topo.device_count();
  std::vector<spec::Invariant> invs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const DeviceId d = static_cast<DeviceId>((3 * i + seed) % n);
    DeviceId s = static_cast<DeviceId>((d + 1 + i) % n);
    if (s == d) s = (s + 1) % n;
    const auto p = space.dst_prefix(topo.prefixes(d).front());
    auto inv = (i % 2 == 0)
                   ? b.shortest_plus_reachability(p, s, d, 1)
                   : b.multi_ingress_reachability(
                         p, {s, static_cast<DeviceId>((s + 1) % n == d
                                                          ? (s + 2) % n
                                                          : (s + 1) % n)},
                         d);
    if (i < 2) inv.faults.any_k = 1;  // fault tolerance on a subset (cost)
    invs.push_back(std::move(inv));
  }
  return invs;
}

PlanService make_service(const topo::Topology& topo,
                         packet::PacketSpace& space, std::size_t workers,
                         bool incremental = true) {
  PlanServiceOptions opts;
  opts.workers = workers;
  opts.incremental = incremental;
  return PlanService(topo, space, opts);
}

void expect_same_tasks(const std::vector<DeviceTask>& a,
                       const std::vector<DeviceTask>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].device, b[i].device);
    EXPECT_EQ(a[i].is_ingress, b[i].is_ingress);
    ASSERT_EQ(a[i].nodes.size(), b[i].nodes.size());
    for (std::size_t j = 0; j < a[i].nodes.size(); ++j) {
      EXPECT_EQ(a[i].nodes[j].node, b[i].nodes[j].node);
      EXPECT_EQ(a[i].nodes[j].accepting, b[i].nodes[j].accepting);
      EXPECT_EQ(a[i].nodes[j].downstream, b[i].nodes[j].downstream);
      EXPECT_EQ(a[i].nodes[j].upstream, b[i].nodes[j].upstream);
    }
  }
}

TEST(PlanEquivalence, WorkerCountNeverChangesPublishedPlans) {
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto topo = topo::synthetic_wan("w", 12, 18, seed);
    fib::NetworkFib net(topo);
    auto& space = net.space();
    const auto invs = make_invariants(topo, space, seed);

    auto serial = make_service(topo, space, 1);
    auto par4 = make_service(topo, space, 4);
    auto par8 = make_service(topo, space, 8);
    for (auto* svc : {&serial, &par4, &par8}) {
      for (const auto& inv : invs) svc->add_invariant(inv);
      svc->commit();
    }
    EXPECT_EQ(serial.digest(), par4.digest());
    EXPECT_EQ(serial.digest(), par8.digest());

    // Digest equality should imply decompose equality; check it directly
    // so a digest-collision bug cannot mask a structural divergence.
    const auto sp = serial.plans();
    const auto pp = par8.plans();
    ASSERT_EQ(sp.size(), pp.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
      expect_same_tasks(Planner::decompose(*sp[i]->dag, sp[i]->inv),
                        Planner::decompose(*pp[i]->dag, pp[i]->inv));
    }
  }
}

TEST(PlanEquivalence, IncrementalChurnMatchesFullReplan) {
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto topo = topo::synthetic_wan("w", 12, 18, seed);
    fib::NetworkFib net(topo);
    auto& space = net.space();
    const auto invs = make_invariants(topo, space, seed);

    auto inc = make_service(topo, space, 1);
    for (const auto& inv : invs) inc.add_invariant(inv);
    inc.commit();
    const auto d0 = inc.digest();

    // Flap the first link of device 0 (always exists: WANs are connected).
    const LinkId link{0, topo.neighbors(0).front().neighbor};
    inc.set_link_state(link, false);
    inc.commit();

    // A fresh service planning everything under the same overlay must
    // agree byte for byte with the incremental replan.
    auto full = make_service(topo, space, 1, /*incremental=*/false);
    full.set_link_state(link, false);
    for (const auto& inv : invs) full.add_invariant(inv);
    full.commit();
    EXPECT_EQ(inc.digest(), full.digest());

    // Bringing the link back restores the original state exactly.
    inc.set_link_state(link, true);
    inc.commit();
    EXPECT_EQ(inc.digest(), d0);
  }
}

// Regression for the hash-set scene dedup: order and uniqueness of
// expand_scenes output are part of plan determinism.
TEST(PlanEquivalence, ExpandScenesDedupKeepsSerialOrder) {
  const auto topo = topo::synthetic_wan("w", 6, 8, 42);
  spec::FaultSpec faults;
  // An explicit scene that any_k=1 will also generate, plus an exact
  // duplicate: both must collapse onto the first occurrence.
  const LinkId l{0, topo.neighbors(0).front().neighbor};
  faults.scenes.push_back(spec::FaultScene::of({l}));
  faults.scenes.push_back(spec::FaultScene::of({l}));
  faults.any_k = 1;
  const auto scenes = dpvnet::expand_scenes(topo, faults, 1024);

  ASSERT_FALSE(scenes.empty());
  EXPECT_TRUE(scenes[0].failed.empty()) << "scene 0 must be no-failure";
  // The explicit scene keeps its early position (index 1).
  ASSERT_GE(scenes.size(), 2u);
  EXPECT_EQ(scenes[1], spec::FaultScene::of({l}));
  // All unique.
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    for (std::size_t j = i + 1; j < scenes.size(); ++j) {
      EXPECT_NE(scenes[i], scenes[j]) << "duplicate at " << i << "," << j;
    }
  }
  // any_k=1 over 8 links: no-failure + 8 singletons, duplicates folded.
  EXPECT_EQ(scenes.size(), 1 + topo.link_count());
  // Ascending failure count (explicit first, then generated singletons).
  for (std::size_t i = 1; i + 1 < scenes.size(); ++i) {
    EXPECT_LE(scenes[i].failed.size(), scenes[i + 1].failed.size());
  }
}

}  // namespace
}  // namespace tulkun::planner
