#include "planner/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace tulkun::planner {
namespace {

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back([&order, i] { order.push_back(i); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(WorkerPoolTest, NestedRunAllDoesNotDeadlock) {
  WorkerPool pool(2);
  std::atomic<int> inner_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&pool, &inner_runs] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.emplace_back([&inner_runs] { inner_runs.fetch_add(1); });
      }
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(WorkerPoolTest, LowestIndexExceptionWins) {
  WorkerPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] {});
  tasks.emplace_back([] { throw std::runtime_error("task-1"); });
  tasks.emplace_back([] {});
  tasks.emplace_back([] { throw std::runtime_error("task-3"); });
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task-1");
  }
}

TEST(WorkerPoolTest, ReusableAcrossBatches) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 8; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.emplace_back([&total] { total.fetch_add(1); });
    }
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 64);
}

TEST(SerialExecutorTest, RunsInSubmissionOrderAndThrowsThrough) {
  auto& exec = core::serial_executor();
  EXPECT_EQ(exec.concurrency(), 1u);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.emplace_back([&order, i] { order.push_back(i); });
  }
  exec.run_all(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));

  std::vector<std::function<void()>> bad;
  bad.emplace_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(exec.run_all(std::move(bad)), std::runtime_error);
}

}  // namespace
}  // namespace tulkun::planner
