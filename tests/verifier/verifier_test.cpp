#include "verifier/verifier.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::verifier {
namespace {

using testutil::Figure2;

/// A whole-network fixture: one OnDeviceVerifier per device with a
/// synchronous pump (the runtime-free path used by unit tests).
class VerifierNetwork {
 public:
  VerifierNetwork(Figure2& fig, const planner::InvariantPlan& plan)
      : fig_(&fig) {
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      devices_.push_back(
          std::make_unique<OnDeviceVerifier>(d, fig.topo, fig.space()));
      devices_.back()->install(plan);
    }
  }

  void initialize_all() {
    std::vector<dvm::Envelope> pending;
    for (DeviceId d = 0; d < devices_.size(); ++d) {
      auto msgs = devices_[d]->initialize(fig_->net.table(d));
      append(pending, std::move(msgs));
    }
    pump(std::move(pending));
  }

  void apply(fib::FibUpdate update) {
    pump(devices_[update.device]->apply_rule_update(update));
  }

  void link_event(LinkId link, bool up) {
    std::vector<dvm::Envelope> pending;
    append(pending, devices_[link.from]->on_local_link_event(link, up));
    append(pending, devices_[link.to]->on_local_link_event(link, up));
    pump(std::move(pending));
  }

  std::vector<dvm::Violation> violations() const {
    std::vector<dvm::Violation> out;
    for (const auto& d : devices_) {
      auto v = d->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  OnDeviceVerifier& device(DeviceId d) { return *devices_[d]; }

 private:
  static void append(std::vector<dvm::Envelope>& into,
                     std::vector<dvm::Envelope> from) {
    into.insert(into.end(), std::make_move_iterator(from.begin()),
                std::make_move_iterator(from.end()));
  }

  void pump(std::vector<dvm::Envelope> initial) {
    std::deque<dvm::Envelope> queue(
        std::make_move_iterator(initial.begin()),
        std::make_move_iterator(initial.end()));
    while (!queue.empty()) {
      const auto env = std::move(queue.front());
      queue.pop_front();
      append_deque(queue, devices_[env.dst]->on_message(env));
    }
  }

  static void append_deque(std::deque<dvm::Envelope>& into,
                           std::vector<dvm::Envelope> from) {
    for (auto& e : from) into.push_back(std::move(e));
  }

  Figure2* fig_;
  std::vector<std::unique_ptr<OnDeviceVerifier>> devices_;
};

class VerifierTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};
};

TEST_F(VerifierTest, WaypointViolationDetectedAndFixed) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  VerifierNetwork net(fig, plan);
  net.initialize_all();
  EXPECT_FALSE(net.violations().empty());

  net.apply(fig.b_reroute_to_w());
  EXPECT_TRUE(net.violations().empty());
}

TEST_F(VerifierTest, ShadowedUpdateIsLocal) {
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  VerifierNetwork net(fig, plan);
  net.initialize_all();
  const auto before = net.device(fig.B).stats().lec_patches;

  fib::Rule r;
  r.priority = 1;  // shadowed by B's existing higher-priority rule
  r.dst_prefix = fig.p34;
  r.action = fib::Action::forward(fig.W);
  auto upd = fib::FibUpdate::insert(fig.B, std::move(r));
  net.apply(std::move(upd));
  // No LEC change: no patch, no messages.
  EXPECT_EQ(net.device(fig.B).stats().lec_patches, before);
}

TEST_F(VerifierTest, FaultSceneRecountWithoutPlanner) {
  auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  inv.faults.any_k = 1;
  const auto plan = planner.plan(std::move(inv));
  VerifierNetwork net(fig, plan);
  net.initialize_all();
  EXPECT_TRUE(net.violations().empty());

  // Fail B-D: in the universe where A sends P3 toward B, B still points
  // at the dead link — the recount must flag it (without any planner
  // involvement).
  net.link_event(LinkId{fig.B, fig.D}, false);
  EXPECT_EQ(net.device(fig.S).stats().unknown_scene_reports, 0u);
  bool p3_flagged = false;
  for (const auto& v : net.violations()) {
    if (v.pred.intersects(fig.P3())) p3_flagged = true;
  }
  EXPECT_TRUE(p3_flagged);

  // The control plane reacts: B reroutes 10.0.1.0/24 to W. The invariant
  // holds again in the failed scene.
  net.apply(fig.b_reroute_to_w());
  EXPECT_TRUE(net.violations().empty());

  // Restoring the link returns to the base scene, still clean.
  net.link_event(LinkId{fig.B, fig.D}, true);
  EXPECT_TRUE(net.violations().empty());
}

TEST_F(VerifierTest, FaultSceneViolationDetected) {
  auto inv = b.shortest_plus_reachability(fig.P1(), fig.S, fig.D, 1);
  inv.faults.any_k = 1;
  const auto plan = planner.plan(std::move(inv));
  VerifierNetwork net(fig, plan);
  net.initialize_all();

  // Fail A-W: the data plane still ANYs P3 toward B or W at A... but the
  // A-W link is down, so in the W-universe the packet is lost. The
  // invariant (exist >= 1 on surviving paths) must flag P3 or P2
  // depending on residual forwarding; at minimum, W-only P4 now breaks.
  net.link_event(LinkId{fig.A, fig.W}, false);
  const auto violations = net.violations();
  ASSERT_FALSE(violations.empty());
  bool p4_flagged = false;
  for (const auto& v : violations) {
    if (v.pred.intersects(fig.P4())) p4_flagged = true;
  }
  EXPECT_TRUE(p4_flagged);
}

TEST_F(VerifierTest, UnknownSceneReported) {
  // Plan with NO fault tolerance; any failure is an unspecified scene.
  const auto plan = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  VerifierNetwork net(fig, plan);
  net.initialize_all();
  net.link_event(LinkId{fig.B, fig.D}, false);
  std::uint64_t reports = 0;
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    reports += net.device(d).stats().unknown_scene_reports;
  }
  EXPECT_GT(reports, 0u);
}

TEST_F(VerifierTest, MultipleInvariantsCoexist) {
  const auto plan1 = planner.plan(b.waypoint(fig.P1(), fig.S, fig.W, fig.D));
  const auto plan2 = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  Figure2& f = fig;
  std::vector<std::unique_ptr<OnDeviceVerifier>> devices;
  std::vector<dvm::Envelope> pending;
  for (DeviceId d = 0; d < f.topo.device_count(); ++d) {
    auto dev = std::make_unique<OnDeviceVerifier>(d, f.topo, f.space());
    dev->install(plan1);
    dev->install(plan2);
    devices.push_back(std::move(dev));
  }
  for (DeviceId d = 0; d < f.topo.device_count(); ++d) {
    auto msgs = devices[d]->initialize(f.net.table(d));
    pending.insert(pending.end(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
  }
  std::deque<dvm::Envelope> queue(
      std::make_move_iterator(pending.begin()),
      std::make_move_iterator(pending.end()));
  while (!queue.empty()) {
    const auto env = std::move(queue.front());
    queue.pop_front();
    for (auto& e : devices[env.dst]->on_message(env)) {
      queue.push_back(std::move(e));
    }
  }
  // The waypoint invariant is violated (P3), plain reachability is not.
  std::size_t waypoint_violations = 0;
  std::size_t reach_violations = 0;
  for (const auto& dev : devices) {
    for (const auto& v : dev->violations()) {
      if (v.invariant == plan1.id) ++waypoint_violations;
      if (v.invariant == plan2.id) ++reach_violations;
    }
  }
  EXPECT_GT(waypoint_violations, 0u);
  EXPECT_EQ(reach_violations, 0u);
}

TEST_F(VerifierTest, MemoryAccountingNonZero) {
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  VerifierNetwork net(fig, plan);
  net.initialize_all();
  EXPECT_GT(net.device(fig.A).memory_bytes(), 0u);
}

}  // namespace
}  // namespace tulkun::verifier
