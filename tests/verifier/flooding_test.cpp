#include "verifier/flooding.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "topo/generators.hpp"

namespace tulkun::verifier {
namespace {

class FloodingTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::figure2_network();
  std::vector<std::unique_ptr<FloodingAgent>> agents;

  void SetUp() override {
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      agents.push_back(std::make_unique<FloodingAgent>(d, topo));
    }
  }

  /// Delivers flooding messages until quiescence; returns delivery count.
  std::size_t pump(std::vector<dvm::Envelope> initial) {
    std::deque<dvm::Envelope> queue(
        std::make_move_iterator(initial.begin()),
        std::make_move_iterator(initial.end()));
    std::size_t count = 0;
    while (!queue.empty()) {
      const auto env = std::move(queue.front());
      queue.pop_front();
      ++count;
      bool changed = false;
      auto more = agents[env.dst]->on_message(
          env.src, std::get<dvm::LinkStateMessage>(env.msg), changed);
      for (auto& m : more) queue.push_back(std::move(m));
    }
    return count;
  }
};

TEST_F(FloodingTest, LocalEventReachesEveryDevice) {
  const LinkId failed{topo.device("B"), topo.device("D")};
  auto initial = agents[failed.from]->local_event(failed, /*up=*/false);
  pump(std::move(initial));
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    const auto links = agents[d]->failed_links();
    ASSERT_EQ(links.size(), 1u) << topo.name(d);
    EXPECT_EQ(links[0], (LinkId{std::min(failed.from, failed.to),
                                std::max(failed.from, failed.to)}));
  }
}

TEST_F(FloodingTest, FloodingTerminates) {
  const LinkId failed{topo.device("A"), topo.device("W")};
  const auto count = pump(agents[failed.from]->local_event(failed, false));
  // Bounded: each device re-floods a given LSA at most once.
  EXPECT_LE(count, topo.device_count() * topo.device_count());
  EXPECT_GT(count, 0u);
}

TEST_F(FloodingTest, LinkRestoreClearsFailure) {
  const LinkId link{topo.device("B"), topo.device("W")};
  pump(agents[link.from]->local_event(link, false));
  pump(agents[link.from]->local_event(link, true));
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    EXPECT_TRUE(agents[d]->failed_links().empty()) << topo.name(d);
  }
}

TEST_F(FloodingTest, BothEndpointsDetecting) {
  const LinkId link{topo.device("W"), topo.device("D")};
  auto a = agents[link.from]->local_event(link, false);
  auto b = agents[link.to]->local_event(link, false);
  a.insert(a.end(), std::make_move_iterator(b.begin()),
           std::make_move_iterator(b.end()));
  pump(std::move(a));
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    EXPECT_EQ(agents[d]->failed_links().size(), 1u);
  }
}

TEST_F(FloodingTest, MultipleFailuresAccumulate) {
  const LinkId l1{topo.device("A"), topo.device("B")};
  const LinkId l2{topo.device("W"), topo.device("D")};
  pump(agents[l1.from]->local_event(l1, false));
  pump(agents[l2.from]->local_event(l2, false));
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    EXPECT_EQ(agents[d]->failed_links().size(), 2u);
  }
}

TEST_F(FloodingTest, StaleSequenceIgnored) {
  const LinkId link{topo.device("A"), topo.device("B")};
  FloodingAgent& origin = *agents[link.from];
  pump(origin.local_event(link, false));
  pump(origin.local_event(link, true));  // newer seq: link up

  // Replay the stale "down" LSA (seq 1) at another device: must not
  // resurrect the failure.
  dvm::LinkStateMessage stale;
  stale.link = LinkId{std::min(link.from, link.to),
                      std::max(link.from, link.to)};
  stale.up = false;
  stale.seq = 1;
  stale.origin = link.from;
  bool changed = true;
  const auto refloods =
      agents[topo.device("D")]->on_message(topo.device("W"), stale, changed);
  EXPECT_FALSE(changed);
  EXPECT_TRUE(refloods.empty());
  EXPECT_TRUE(agents[topo.device("D")]->failed_links().empty());
}

}  // namespace
}  // namespace tulkun::verifier
