#include "bdd/manager.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace tulkun::bdd {
namespace {

TEST(BddManager, TerminalsAreFixed) {
  Manager m(8);
  EXPECT_EQ(kFalse, 0u);
  EXPECT_EQ(kTrue, 1u);
  EXPECT_EQ(m.arena_size(), 2u);
}

TEST(BddManager, VarAndNegVar) {
  Manager m(8);
  const NodeRef x = m.var(3);
  const NodeRef nx = m.nvar(3);
  EXPECT_EQ(m.negate(x), nx);
  EXPECT_EQ(m.negate(nx), x);
  EXPECT_EQ(m.land(x, nx), kFalse);
  EXPECT_EQ(m.lor(x, nx), kTrue);
}

TEST(BddManager, MkReducesEqualChildren) {
  Manager m(8);
  EXPECT_EQ(m.mk(2, kTrue, kTrue), kTrue);
  EXPECT_EQ(m.mk(2, kFalse, kFalse), kFalse);
}

TEST(BddManager, HashConsingGivesCanonicalNodes) {
  Manager m(8);
  const NodeRef a = m.land(m.var(0), m.var(1));
  const NodeRef b = m.land(m.var(1), m.var(0));
  EXPECT_EQ(a, b);  // structural equality == reference equality
}

TEST(BddManager, AndOrXorTruthTable) {
  Manager m(4);
  const NodeRef x = m.var(0);
  const NodeRef y = m.var(1);
  EXPECT_EQ(m.land(x, kTrue), x);
  EXPECT_EQ(m.land(x, kFalse), kFalse);
  EXPECT_EQ(m.lor(x, kFalse), x);
  EXPECT_EQ(m.lor(x, kTrue), kTrue);
  EXPECT_EQ(m.lxor(x, x), kFalse);
  EXPECT_EQ(m.lxor(x, kFalse), x);
  EXPECT_EQ(m.lxor(x, kTrue), m.negate(x));
  EXPECT_EQ(m.diff(x, y), m.land(x, m.negate(y)));
}

TEST(BddManager, DeMorgan) {
  Manager m(6);
  const NodeRef x = m.var(2);
  const NodeRef y = m.var(4);
  EXPECT_EQ(m.negate(m.land(x, y)), m.lor(m.negate(x), m.negate(y)));
  EXPECT_EQ(m.negate(m.lor(x, y)), m.land(m.negate(x), m.negate(y)));
}

TEST(BddManager, IteMatchesDefinition) {
  Manager m(6);
  const NodeRef f = m.var(0);
  const NodeRef g = m.var(1);
  const NodeRef h = m.var(2);
  const NodeRef expected =
      m.lor(m.land(f, g), m.land(m.negate(f), h));
  EXPECT_EQ(m.ite(f, g, h), expected);
}

TEST(BddManager, Implies) {
  Manager m(4);
  const NodeRef x = m.var(0);
  const NodeRef xy = m.land(x, m.var(1));
  EXPECT_TRUE(m.implies(xy, x));
  EXPECT_FALSE(m.implies(x, xy));
  EXPECT_TRUE(m.implies(kFalse, x));
  EXPECT_TRUE(m.implies(x, kTrue));
}

TEST(BddManager, SatCountSingleVar) {
  Manager m(4);
  // One constrained variable out of 4: half the assignments satisfy.
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(3)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kFalse), 0.0);
}

TEST(BddManager, SatCountConjunction) {
  Manager m(10);
  NodeRef conj = kTrue;
  for (std::uint32_t v = 0; v < 4; ++v) conj = m.land(conj, m.var(v));
  EXPECT_DOUBLE_EQ(m.sat_count(conj), std::pow(2.0, 6));
}

TEST(BddManager, SatCountDisjointUnionAdds) {
  Manager m(8);
  const NodeRef a = m.land(m.var(0), m.var(1));
  const NodeRef b = m.land(m.negate(m.var(0)), m.var(2));
  EXPECT_DOUBLE_EQ(m.sat_count(m.lor(a, b)),
                   m.sat_count(a) + m.sat_count(b));
}

TEST(BddManager, NodeCount) {
  Manager m(8);
  EXPECT_EQ(m.node_count(kTrue), 0u);
  EXPECT_EQ(m.node_count(m.var(0)), 1u);
  const NodeRef chain = m.land(m.land(m.var(0), m.var(1)), m.var(2));
  EXPECT_EQ(m.node_count(chain), 3u);
}

TEST(BddManager, AnySatIsSatisfying) {
  Manager m(8);
  const NodeRef f =
      m.lor(m.land(m.var(1), m.nvar(3)), m.land(m.var(2), m.var(5)));
  const auto path = m.any_sat(f);
  // Evaluate f under the returned partial assignment: walk manually.
  NodeRef cur = f;
  for (const auto& [var, val] : path) {
    ASSERT_GE(cur, 2u);
    const auto& n = m.node(cur);
    ASSERT_EQ(n.var, var);
    cur = val ? n.high : n.low;
  }
  EXPECT_EQ(cur, kTrue);
}

TEST(BddManager, ExistsRangeDropsConstraint) {
  Manager m(8);
  const NodeRef f = m.land(m.var(2), m.var(5));
  // Quantifying out var 2 leaves just var 5.
  EXPECT_EQ(m.exists_range(f, 2, 3), m.var(5));
  // Quantifying everything yields TRUE (f is satisfiable).
  EXPECT_EQ(m.exists_range(f, 0, 8), kTrue);
  EXPECT_EQ(m.exists_range(kFalse, 0, 8), kFalse);
}

TEST(BddManager, ExistsRangeOfDisjunction) {
  Manager m(8);
  // f = x2 | x5; exists x2. f == TRUE.
  const NodeRef f = m.lor(m.var(2), m.var(5));
  EXPECT_EQ(m.exists_range(f, 2, 3), kTrue);
}

TEST(BddManager, ResetInvalidatesArena) {
  Manager m(8);
  (void)m.land(m.var(0), m.var(1));
  const auto size_before = m.arena_size();
  EXPECT_GT(size_before, 2u);
  m.reset();
  EXPECT_EQ(m.arena_size(), 2u);
  // Rebuilt structures are canonical again.
  EXPECT_EQ(m.land(m.var(0), m.var(1)), m.land(m.var(1), m.var(0)));
}

// Property test: random 3-term formulas obey boolean identities.
class BddPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddPropertyTest, RandomFormulasSatisfyIdentities) {
  Manager m(12);
  Rng rng(GetParam());
  const auto random_term = [&]() {
    NodeRef t = kTrue;
    for (int i = 0; i < 3; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.index(12));
      t = m.land(t, rng.chance(0.5) ? m.var(v) : m.nvar(v));
    }
    return t;
  };
  const NodeRef a = random_term();
  const NodeRef b = random_term();
  const NodeRef c = random_term();

  // Distributivity.
  EXPECT_EQ(m.land(a, m.lor(b, c)), m.lor(m.land(a, b), m.land(a, c)));
  // Absorption.
  EXPECT_EQ(m.lor(a, m.land(a, b)), a);
  // Double negation.
  EXPECT_EQ(m.negate(m.negate(a)), a);
  // Difference definition.
  EXPECT_EQ(m.diff(a, b), m.land(a, m.negate(b)));
  // Xor via or/and.
  EXPECT_EQ(m.lxor(a, b), m.diff(m.lor(a, b), m.land(a, b)));
  // Sat-count inclusion-exclusion.
  EXPECT_DOUBLE_EQ(m.sat_count(m.lor(a, b)),
                   m.sat_count(a) + m.sat_count(b) -
                       m.sat_count(m.land(a, b)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tulkun::bdd
