#include <gtest/gtest.h>

#include <vector>

#include "bdd/manager.hpp"
#include "bdd/serialize.hpp"

namespace tulkun::bdd {
namespace {

// Parity over vars [lo, lo + width): a function with a non-trivial,
// predictable node count.
NodeRef parity(Manager& mgr, std::uint32_t width, std::uint32_t lo = 0) {
  NodeRef acc = kFalse;
  for (std::uint32_t v = lo; v < lo + width; ++v) {
    acc = mgr.lxor(acc, mgr.var(v));
  }
  return acc;
}

TEST(ManagerGcTest, KeepsRootsAndReclaimsGarbage) {
  Manager mgr(16);
  const NodeRef keep = parity(mgr, 8);
  const std::size_t keep_nodes = mgr.node_count(keep);
  // Garbage: a pile of conjunctions we drop on the floor.
  for (std::uint32_t v = 0; v + 1 < 16; ++v) {
    (void)mgr.land(mgr.var(v), mgr.nvar(v + 1));
  }
  ASSERT_GT(mgr.live_node_count(), keep_nodes);

  const std::uint64_t epoch_before = mgr.epoch();
  const std::vector<NodeRef> roots{keep};
  const std::size_t reclaimed = mgr.gc(roots);

  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(mgr.live_node_count(), keep_nodes);
  EXPECT_EQ(mgr.epoch(), epoch_before + 1);
  EXPECT_EQ(mgr.gc_runs(), 1u);
  EXPECT_EQ(mgr.gc_reclaimed(), reclaimed);
  // The root's structure survived in place.
  EXPECT_EQ(mgr.node_count(keep), keep_nodes);
  EXPECT_DOUBLE_EQ(mgr.sat_count(keep), mgr.sat_count(keep));
}

TEST(ManagerGcTest, FreedSlotsAreReusedAndOpsStayCanonical) {
  Manager mgr(16);
  const NodeRef keep = parity(mgr, 6);
  for (std::uint32_t v = 0; v < 10; ++v) {
    (void)mgr.lor(mgr.var(v), mgr.var((v + 3) % 16));
  }
  const std::size_t arena_before = mgr.arena_size();
  const std::vector<NodeRef> roots{keep};
  (void)mgr.gc(roots);

  // Rebuilding the same garbage fits in the freed slots: no arena growth.
  for (std::uint32_t v = 0; v < 10; ++v) {
    (void)mgr.lor(mgr.var(v), mgr.var((v + 3) % 16));
  }
  EXPECT_EQ(mgr.arena_size(), arena_before);

  // Canonicity holds across the collection: the kept root is the unique
  // representation, so rebuilding the same function yields the same ref.
  EXPECT_EQ(parity(mgr, 6), keep);
  // And ops on survivors are still correct (caches were cleared, not stale).
  EXPECT_EQ(mgr.land(keep, mgr.negate(keep)), kFalse);
  EXPECT_EQ(mgr.lor(keep, mgr.negate(keep)), kTrue);
}

TEST(ManagerGcTest, EmptyRootsReclaimEverything) {
  Manager mgr(8);
  (void)parity(mgr, 8);
  ASSERT_GT(mgr.live_node_count(), 0u);
  (void)mgr.gc({});
  EXPECT_EQ(mgr.live_node_count(), 0u);
  // Terminals are always live.
  EXPECT_EQ(mgr.land(kTrue, kTrue), kTrue);
}

TEST(ManagerGcTest, MaybeGcPolicy) {
  // One fixed threshold per manager, like the runtime's per-device knob
  // (the first maybe_gc call latches the trigger floor).
  constexpr std::size_t kThreshold = 64;
  Manager mgr(16);
  const NodeRef keep = parity(mgr, 4);
  const std::vector<NodeRef> roots{keep};

  // threshold 0 disables.
  EXPECT_FALSE(mgr.gc_pending(0));
  EXPECT_FALSE(mgr.maybe_gc(roots, 0));

  // Below threshold: not pending, no collection.
  ASSERT_LT(mgr.live_node_count(), kThreshold);
  EXPECT_FALSE(mgr.gc_pending(kThreshold));
  EXPECT_FALSE(mgr.maybe_gc(roots, kThreshold));
  EXPECT_EQ(mgr.gc_runs(), 0u);

  // Grow past the threshold.
  for (std::uint32_t width = 2; mgr.live_node_count() < kThreshold; ++width) {
    (void)parity(mgr, width);
  }
  ASSERT_TRUE(mgr.gc_pending(kThreshold));
  EXPECT_TRUE(mgr.maybe_gc(roots, kThreshold));
  EXPECT_EQ(mgr.gc_runs(), 1u);
  // After the collection the trigger re-arms above the surviving live set,
  // so an immediate retry does not thrash.
  EXPECT_FALSE(mgr.gc_pending(kThreshold));
  EXPECT_FALSE(mgr.maybe_gc(roots, kThreshold));
  EXPECT_EQ(mgr.gc_runs(), 1u);
}

TEST(ManagerGcTest, ProcessGlobalTotalsAccumulate) {
  const GcTotals before = gc_totals();
  Manager mgr(8);
  (void)parity(mgr, 8);
  const std::size_t reclaimed = mgr.gc({});
  const GcTotals after = gc_totals();
  EXPECT_EQ(after.runs, before.runs + 1);
  EXPECT_EQ(after.reclaimed_nodes, before.reclaimed_nodes + reclaimed);
}

// Cross-manager canonical comparison: serialize() bytes are canonical.
bool same_function(const Manager& a, NodeRef ra, const Manager& b,
                   NodeRef rb) {
  return serialize(a, ra) == serialize(b, rb);
}

TEST(NodeChannelTest, RoundTripAndDeltaReuse) {
  Manager sender(16);
  Manager receiver(16);
  NodeChannelEncoder enc(sender);
  NodeChannelDecoder dec(receiver);

  // Parity over vars 1..8 so a later predicate can branch above it (var 0
  // is topmost) and share the whole structure.
  const NodeRef p = parity(sender, 8, /*lo=*/1);
  std::vector<std::uint8_t> wire;
  enc.encode(p, wire);
  const std::size_t first_size = wire.size();
  EXPECT_EQ(enc.roots_encoded(), 1u);
  EXPECT_EQ(enc.nodes_shipped(), sender.node_count(p));
  EXPECT_EQ(enc.resets(), 1u);  // first use always resets

  std::size_t pos = 0;
  const NodeRef got = dec.decode(wire, pos);
  EXPECT_EQ(pos, wire.size());
  EXPECT_TRUE(same_function(sender, p, receiver, got));

  // Re-sending the same root ships zero nodes: flags + n_new + root_id.
  wire.clear();
  enc.encode(p, wire);
  EXPECT_EQ(wire.size(), 9u);
  EXPECT_LT(wire.size(), first_size);
  EXPECT_EQ(enc.nodes_shipped(), sender.node_count(p));

  pos = 0;
  EXPECT_TRUE(same_function(sender, p, receiver, dec.decode(wire, pos)));

  // A structurally overlapping predicate ships only its new nodes:
  // var(0) AND p is one fresh node on top of the already-shipped p.
  const NodeRef q = sender.land(sender.var(0), p);
  wire.clear();
  enc.encode(q, wire);
  EXPECT_EQ(enc.nodes_shipped(), sender.node_count(p) + 1);
  pos = 0;
  EXPECT_TRUE(same_function(sender, q, receiver, dec.decode(wire, pos)));
}

TEST(NodeChannelTest, ResetsWhenSenderEpochMoves) {
  Manager sender(16);
  Manager receiver(16);
  NodeChannelEncoder enc(sender);
  NodeChannelDecoder dec(receiver);

  NodeRef p = parity(sender, 8);
  std::vector<std::uint8_t> wire;
  enc.encode(p, wire);
  std::size_t pos = 0;
  (void)dec.decode(wire, pos);
  ASSERT_EQ(enc.resets(), 1u);
  ASSERT_GT(dec.table_size(), 0u);

  // A collection on the sender bumps its epoch; freed slots may be reissued
  // for different nodes, so the next encode must start a fresh stream.
  const std::vector<NodeRef> roots{p};
  (void)sender.gc(roots);
  wire.clear();
  enc.encode(p, wire);
  EXPECT_EQ(enc.resets(), 2u);
  pos = 0;
  const NodeRef got = dec.decode(wire, pos);
  EXPECT_TRUE(same_function(sender, p, receiver, got));

  // The reset cleared and repopulated the decoder table.
  EXPECT_EQ(dec.table_size(), sender.node_count(p));
}

TEST(NodeChannelTest, DecoderTableSurvivesReceiverGcViaCollectRefs) {
  Manager sender(16);
  Manager receiver(16);
  NodeChannelEncoder enc(sender);
  NodeChannelDecoder dec(receiver);

  const NodeRef p = parity(sender, 8);
  std::vector<std::uint8_t> wire;
  enc.encode(p, wire);
  std::size_t pos = 0;
  const NodeRef got = dec.decode(wire, pos);

  // Collect the decoder table as roots; the rebuilt predicate must survive
  // a receiver-side collection so later stream ids still resolve.
  std::vector<NodeRef> roots;
  dec.collect_refs(roots);
  (void)receiver.gc(roots);
  EXPECT_TRUE(same_function(sender, p, receiver, got));

  // The stream keeps working: the sender references only already-shipped
  // nodes, the receiver resolves them from its (still live) table.
  wire.clear();
  enc.encode(p, wire);
  EXPECT_EQ(wire.size(), 9u);
  pos = 0;
  EXPECT_TRUE(same_function(sender, p, receiver, dec.decode(wire, pos)));
}

TEST(NodeChannelTest, MalformedStreamThrows) {
  Manager receiver(16);
  NodeChannelDecoder dec(receiver);
  // Truncated: flags byte only.
  const std::vector<std::uint8_t> bad{0x01};
  std::size_t pos = 0;
  EXPECT_THROW((void)dec.decode(bad, pos), Error);
}

}  // namespace
}  // namespace tulkun::bdd
