#include "bdd/serialize.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace tulkun::bdd {
namespace {

TEST(BddSerialize, TerminalsRoundTrip) {
  Manager m(8);
  EXPECT_EQ(deserialize(m, serialize(m, kFalse)), kFalse);
  EXPECT_EQ(deserialize(m, serialize(m, kTrue)), kTrue);
}

TEST(BddSerialize, SingleVarRoundTrip) {
  Manager m(8);
  const NodeRef x = m.var(5);
  EXPECT_EQ(deserialize(m, serialize(m, x)), x);
}

TEST(BddSerialize, CrossManagerTransfer) {
  Manager src(16);
  Manager dst(16);
  const NodeRef f =
      src.lor(src.land(src.var(0), src.nvar(7)), src.var(12));
  const NodeRef g = deserialize(dst, serialize(src, f));
  // Same function: equal sat counts and same structure when re-serialized.
  EXPECT_DOUBLE_EQ(src.sat_count(f), dst.sat_count(g));
  EXPECT_EQ(serialize(src, f), serialize(dst, g));
}

TEST(BddSerialize, SizeMatchesFormula) {
  Manager m(16);
  const NodeRef f = m.land(m.var(0), m.land(m.var(1), m.var(2)));
  EXPECT_EQ(serialize(m, f).size(), serialized_size(m, f));
  EXPECT_EQ(serialized_size(m, f), 8 + 3 * 12);
}

TEST(BddSerialize, RejectsTruncatedBuffer) {
  Manager m(8);
  auto bytes = serialize(m, m.land(m.var(0), m.var(1)));
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW((void)deserialize(m, bytes), Error);
}

TEST(BddSerialize, RejectsVariableOutOfRange) {
  Manager big(32);
  Manager small(4);
  const auto bytes = serialize(big, big.var(20));
  EXPECT_THROW((void)deserialize(small, bytes), Error);
}

TEST(BddSerialize, RejectsForwardReference) {
  // Hand-craft a buffer whose node references a not-yet-defined node.
  std::vector<std::uint8_t> bytes;
  const auto put = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put(1);  // one node
  put(2);  // root = first node
  put(0);  // var 0
  put(3);  // low -> local ref 3 (node index 1): forward/dangling
  put(1);  // high -> TRUE
  Manager m(8);
  EXPECT_THROW((void)deserialize(m, bytes), Error);
}

TEST(BddSerialize, RandomFormulaRoundTrips) {
  Manager src(24);
  Manager dst(24);
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    NodeRef f = kFalse;
    for (int term = 0; term < 4; ++term) {
      NodeRef t = kTrue;
      for (int lit = 0; lit < 5; ++lit) {
        const auto v = static_cast<std::uint32_t>(rng.index(24));
        t = src.land(t, rng.chance(0.5) ? src.var(v) : src.nvar(v));
      }
      f = src.lor(f, t);
    }
    const NodeRef g = deserialize(dst, serialize(src, f));
    EXPECT_EQ(serialize(src, f), serialize(dst, g));
    EXPECT_DOUBLE_EQ(src.sat_count(f), dst.sat_count(g));
  }
}

TEST(SerializeCache, HitsOnRepeatedRoots) {
  Manager m(16);
  SerializeCache cache;
  const NodeRef f = m.land(m.var(0), m.var(3));
  const auto first = cache.get(m, f);
  const auto again = cache.get(m, f);
  EXPECT_EQ(first.get(), again.get());  // same shared buffer
  EXPECT_EQ(*first, serialize(m, f));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SerializeCache, DistinguishesRootsAndManagers) {
  Manager a(16);
  Manager b(16);
  SerializeCache cache;
  const NodeRef fa = a.land(a.var(0), a.var(1));
  const NodeRef fb = b.land(b.var(0), b.var(1));
  EXPECT_EQ(*cache.get(a, fa), *cache.get(b, fb));  // same bytes...
  EXPECT_EQ(cache.misses(), 2u);  // ...but separate entries
  (void)cache.get(a, a.var(0));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SerializeCache, ResetInvalidatesViaGeneration) {
  Manager m(16);
  SerializeCache cache;
  const NodeRef f = m.land(m.var(0), m.var(1));
  const auto before = *cache.get(m, f);
  const auto gen = m.generation();
  m.reset();
  EXPECT_GT(m.generation(), gen);
  // Same numeric ref, different generation: must re-serialize, not reuse.
  const NodeRef g = m.lor(m.var(2), m.var(5));
  EXPECT_EQ(*cache.get(m, g), serialize(m, g));
  EXPECT_NE(*cache.get(m, g), before);
  EXPECT_EQ(cache.hits(), 1u);  // only the immediate repeat of g
}

TEST(SerializeCache, EvictsWhenFull) {
  Manager m(16);
  SerializeCache cache(/*max_entries=*/2);
  (void)cache.get(m, m.var(0));
  (void)cache.get(m, m.var(1));
  (void)cache.get(m, m.var(2));  // trips the clear-all eviction
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(*cache.get(m, m.var(0)), serialize(m, m.var(0)));
}

}  // namespace
}  // namespace tulkun::bdd
