// Multi-path invariants (§7): route symmetry and node-disjointness via
// distributed path collection.
#include <gtest/gtest.h>

#include "runtime/event_sim.hpp"
#include "spec/multipath.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dvm {
namespace {

using testutil::Figure2;

TEST(ComparePathSets, RouteSymmetry) {
  const spec::PathSet fwd = {{0, 1, 2}};
  const spec::PathSet rev_ok = {{2, 1, 0}};
  const spec::PathSet rev_bad = {{2, 3, 0}};
  EXPECT_TRUE(spec::compare_path_sets(spec::PathCompareKind::RouteSymmetry,
                                      fwd, rev_ok)
                  .empty());
  EXPECT_FALSE(spec::compare_path_sets(spec::PathCompareKind::RouteSymmetry,
                                       fwd, rev_bad)
                   .empty());
}

TEST(ComparePathSets, NodeAndLinkDisjoint) {
  const spec::PathSet a = {{0, 1, 2, 5}};
  const spec::PathSet share_node = {{0, 2, 6}};   // shares interior 2
  const spec::PathSet disjoint = {{0, 3, 6}};
  EXPECT_FALSE(spec::compare_path_sets(spec::PathCompareKind::NodeDisjoint,
                                       a, share_node)
                   .empty());
  EXPECT_TRUE(spec::compare_path_sets(spec::PathCompareKind::NodeDisjoint, a,
                                      disjoint)
                  .empty());

  const spec::PathSet share_link = {{9, 1, 2, 8}};  // shares link 1-2
  EXPECT_FALSE(spec::compare_path_sets(spec::PathCompareKind::LinkDisjoint,
                                       a, share_link)
                   .empty());
  EXPECT_TRUE(spec::compare_path_sets(spec::PathCompareKind::LinkDisjoint, a,
                                      disjoint)
                  .empty());
}

TEST(ComparePathSets, SamePaths) {
  const spec::PathSet a = {{0, 1}, {0, 2}};
  EXPECT_TRUE(
      spec::compare_path_sets(spec::PathCompareKind::SamePaths, a, a).empty());
  EXPECT_FALSE(spec::compare_path_sets(spec::PathCompareKind::SamePaths, a,
                                       {{0, 1}})
                   .empty());
}

class MultiPathTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::MultiPathBuiltins mb{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  /// Adds a unicast route for `prefix` at each (device, next hop) pair.
  void route(const packet::Ipv4Prefix& prefix,
             std::initializer_list<std::pair<DeviceId, fib::Action>> rules) {
    for (const auto& [dev, action] : rules) {
      fib::Rule r;
      r.priority = 50;
      r.dst_prefix = prefix;
      r.action = action;
      fig.net.table(dev).insert(r);
    }
  }

  runtime::EventSimulator run(const planner::MultiPathPlan& plan) {
    runtime::EventSimulator sim(fig.topo, {});
    sim.make_devices(fig.space());
    sim.install_multipath(plan);
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      sim.post_initialize(d, fig.net.table(d), 0.0);
    }
    sim.run();
    return sim;
  }
};

TEST_F(MultiPathTest, RouteSymmetryHoldsOnMirroredPlane) {
  // Forward: packets to D's prefix (10.0.0.0/23). Return: packets to a
  // prefix attached at S, routed back along the mirror path S A W D.
  const auto s_prefix = packet::Ipv4Prefix::parse("10.0.7.0/24");
  fig.topo.attach_prefix(fig.S, s_prefix);

  // Forward path S A W D only (override A's multipath behaviour).
  route(fig.p1, {{fig.S, fib::Action::forward(fig.A)},
                 {fig.A, fib::Action::forward(fig.W)},
                 {fig.W, fib::Action::forward(fig.D)},
                 {fig.D, fib::Action::deliver()}});
  // Return path D W A S.
  route(s_prefix, {{fig.D, fib::Action::forward(fig.W)},
                   {fig.W, fib::Action::forward(fig.A)},
                   {fig.A, fib::Action::forward(fig.S)},
                   {fig.S, fib::Action::deliver()}});

  const auto inv = mb.route_symmetry(
      fig.space().dst_prefix(fig.p1), fig.space().dst_prefix(s_prefix),
      fig.S, fig.D);
  const auto plan = planner.plan_multipath(inv);
  auto sim = run(plan);
  EXPECT_TRUE(sim.violations().empty());

  const auto view = sim.device(fig.S).multipath_view(plan.id);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->first,
            (spec::PathSet{{fig.S, fig.A, fig.W, fig.D}}));
  EXPECT_EQ(view->second,
            (spec::PathSet{{fig.D, fig.W, fig.A, fig.S}}));
}

TEST_F(MultiPathTest, RouteAsymmetryDetected) {
  const auto s_prefix = packet::Ipv4Prefix::parse("10.0.7.0/24");
  fig.topo.attach_prefix(fig.S, s_prefix);

  // Forward via W, return via B: asymmetric.
  route(fig.p1, {{fig.S, fib::Action::forward(fig.A)},
                 {fig.A, fib::Action::forward(fig.W)},
                 {fig.W, fib::Action::forward(fig.D)},
                 {fig.D, fib::Action::deliver()}});
  route(s_prefix, {{fig.D, fib::Action::forward(fig.B)},
                   {fig.B, fib::Action::forward(fig.A)},
                   {fig.A, fib::Action::forward(fig.S)},
                   {fig.S, fib::Action::deliver()}});

  const auto inv = mb.route_symmetry(
      fig.space().dst_prefix(fig.p1), fig.space().dst_prefix(s_prefix),
      fig.S, fig.D);
  auto sim = run(planner.plan_multipath(inv));
  const auto violations = sim.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().reason.find("asymmetry"), std::string::npos);
}

TEST_F(MultiPathTest, EcmpAlternativesCollected) {
  // ANY at A: both S A W D and S A B D are possible forward paths; the
  // return plane mirrors only one of them -> asymmetric.
  const auto s_prefix = packet::Ipv4Prefix::parse("10.0.7.0/24");
  fig.topo.attach_prefix(fig.S, s_prefix);
  route(fig.p1, {{fig.S, fib::Action::forward(fig.A)},
                 {fig.A, fib::Action::forward_any({fig.B, fig.W})},
                 {fig.W, fib::Action::forward(fig.D)},
                 {fig.B, fib::Action::forward(fig.D)},
                 {fig.D, fib::Action::deliver()}});
  route(s_prefix, {{fig.D, fib::Action::forward(fig.W)},
                   {fig.W, fib::Action::forward(fig.A)},
                   {fig.A, fib::Action::forward(fig.S)},
                   {fig.S, fib::Action::deliver()}});

  const auto inv = mb.route_symmetry(
      fig.space().dst_prefix(fig.p1), fig.space().dst_prefix(s_prefix),
      fig.S, fig.D);
  const auto plan = planner.plan_multipath(inv);
  auto sim = run(plan);
  EXPECT_FALSE(sim.violations().empty());

  const auto view = sim.device(fig.S).multipath_view(plan.id);
  ASSERT_TRUE(view.has_value());
  // Both ECMP alternatives were collected.
  EXPECT_EQ(view->first.size(), 2u);
}

TEST_F(MultiPathTest, NodeDisjointServices) {
  // Service A: to D's prefix via W. Service B: to C's prefix via B.
  // Interior devices {A, W} vs {A, B} share A -> not node-disjoint.
  const auto c_prefix = packet::Ipv4Prefix::parse("10.0.2.0/24");
  route(fig.p1, {{fig.S, fib::Action::forward(fig.A)},
                 {fig.A, fib::Action::forward(fig.W)},
                 {fig.W, fib::Action::forward(fig.D)},
                 {fig.D, fib::Action::deliver()}});
  route(c_prefix, {{fig.S, fib::Action::forward(fig.A)},
                   {fig.A, fib::Action::forward(fig.B)},
                   {fig.B, fib::Action::forward(fig.C)},
                   {fig.C, fib::Action::deliver()}});

  const auto inv = mb.node_disjoint(
      fig.space().dst_prefix(fig.p1), fig.D,
      fig.space().dst_prefix(c_prefix), fig.C, fig.S);
  auto sim = run(planner.plan_multipath(inv));
  const auto violations = sim.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().reason.find("share"), std::string::npos);
}

TEST_F(MultiPathTest, IncrementalUpdateReEvaluates) {
  const auto s_prefix = packet::Ipv4Prefix::parse("10.0.7.0/24");
  fig.topo.attach_prefix(fig.S, s_prefix);
  route(fig.p1, {{fig.S, fib::Action::forward(fig.A)},
                 {fig.A, fib::Action::forward(fig.W)},
                 {fig.W, fib::Action::forward(fig.D)},
                 {fig.D, fib::Action::deliver()}});
  // Asymmetric return via B initially.
  route(s_prefix, {{fig.D, fib::Action::forward(fig.B)},
                   {fig.B, fib::Action::forward(fig.A)},
                   {fig.A, fib::Action::forward(fig.S)},
                   {fig.S, fib::Action::deliver()}});

  const auto inv = mb.route_symmetry(
      fig.space().dst_prefix(fig.p1), fig.space().dst_prefix(s_prefix),
      fig.S, fig.D);
  const auto plan = planner.plan_multipath(inv);
  runtime::EventSimulator sim(fig.topo, {});
  sim.make_devices(fig.space());
  sim.install_multipath(plan);
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    sim.post_initialize(d, fig.net.table(d), 0.0);
  }
  double now = sim.run();
  EXPECT_FALSE(sim.violations().empty());

  // Fix: D reroutes the return traffic via W.
  fib::Rule fix;
  fix.priority = 60;
  fix.dst_prefix = s_prefix;
  fix.action = fib::Action::forward(fig.W);
  sim.post_rule_update(fig.D, fib::FibUpdate::insert(fig.D, fix), now);
  now = sim.run();
  // ...and W must carry it toward A.
  fib::Rule w_fix;
  w_fix.priority = 60;
  w_fix.dst_prefix = s_prefix;
  w_fix.action = fib::Action::forward(fig.A);
  sim.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, w_fix), now);
  sim.run();
  EXPECT_TRUE(sim.violations().empty());
}

}  // namespace
}  // namespace tulkun::dvm
