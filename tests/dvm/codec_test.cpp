#include "dvm/codec.hpp"

#include <gtest/gtest.h>

namespace tulkun::dvm {
namespace {

class CodecTest : public ::testing::Test {
 protected:
  packet::PacketSpace src;
  packet::PacketSpace dst;
};

TEST_F(CodecTest, UpdateRoundTrip) {
  UpdateMessage u;
  u.invariant = 7;
  u.up_node = 3;
  u.down_node = 9;
  u.withdrawn.push_back(
      src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  CountEntry e1;
  e1.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  e1.counts = count::CountSet::singleton(count::CountVec{1});
  CountEntry e2;
  e2.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.1.0/24"));
  count::CountSet cs;
  cs.insert(count::CountVec{0});
  cs.insert(count::CountVec{1});
  e2.counts = cs;
  u.results.push_back(std::move(e1));
  u.results.push_back(std::move(e2));

  const Envelope env{2, 5, std::move(u)};
  const auto bytes = encode(env);
  EXPECT_EQ(bytes.size(), encoded_size(env));

  const Envelope back = decode(bytes, dst);
  EXPECT_EQ(back.src, 2u);
  EXPECT_EQ(back.dst, 5u);
  const auto& bu = std::get<UpdateMessage>(back.msg);
  EXPECT_EQ(bu.invariant, 7u);
  EXPECT_EQ(bu.up_node, 3u);
  EXPECT_EQ(bu.down_node, 9u);
  ASSERT_EQ(bu.withdrawn.size(), 1u);
  EXPECT_EQ(bu.withdrawn[0],
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  ASSERT_EQ(bu.results.size(), 2u);
  EXPECT_EQ(bu.results[0].pred,
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")));
  EXPECT_EQ(bu.results[0].counts,
            count::CountSet::singleton(count::CountVec{1}));
  EXPECT_EQ(bu.results[1].counts.size(), 2u);
}

TEST_F(CodecTest, SubscribeRoundTrip) {
  SubscribeMessage s;
  s.invariant = 1;
  s.up_node = 4;
  s.down_node = 6;
  s.original = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  s.rewritten = src.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32"));
  const Envelope env{0, 1, std::move(s)};
  const Envelope back = decode(encode(env), dst);
  const auto& bs = std::get<SubscribeMessage>(back.msg);
  EXPECT_EQ(bs.rewritten,
            dst.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32")));
  EXPECT_EQ(bs.up_node, 4u);
}

TEST_F(CodecTest, LinkStateRoundTrip) {
  LinkStateMessage l;
  l.link = LinkId{2, 7};
  l.up = false;
  l.seq = 0x123456789ABCULL;
  l.origin = 2;
  const Envelope env{2, 3, l};
  const Envelope back = decode(encode(env), dst);
  const auto& bl = std::get<LinkStateMessage>(back.msg);
  EXPECT_EQ(bl.link, (LinkId{2, 7}));
  EXPECT_FALSE(bl.up);
  EXPECT_EQ(bl.seq, 0x123456789ABCULL);
  EXPECT_EQ(bl.origin, 2u);
}

TEST_F(CodecTest, RejectsGarbage) {
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_THROW((void)decode(junk, dst), Error);
  // Unknown tag.
  std::vector<std::uint8_t> bad(9, 0);
  bad[8] = 99;
  EXPECT_THROW((void)decode(bad, dst), Error);
}

TEST_F(CodecTest, EmptyUpdateIsSmall) {
  UpdateMessage u;
  const Envelope env{0, 1, std::move(u)};
  // Envelope header + tag + ids + two zero-length lists.
  EXPECT_LT(encode(env).size(), 32u);
}

}  // namespace
}  // namespace tulkun::dvm
