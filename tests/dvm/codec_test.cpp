#include "dvm/codec.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <span>

#include "pred/atom_set.hpp"

namespace tulkun::dvm {
namespace {

class CodecTest : public ::testing::Test {
 protected:
  packet::PacketSpace src;
  packet::PacketSpace dst;
};

TEST_F(CodecTest, UpdateRoundTrip) {
  UpdateMessage u;
  u.invariant = 7;
  u.up_node = 3;
  u.down_node = 9;
  u.withdrawn.push_back(
      src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  CountEntry e1;
  e1.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  e1.counts = count::CountSet::singleton(count::CountVec{1});
  CountEntry e2;
  e2.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.1.0/24"));
  count::CountSet cs;
  cs.insert(count::CountVec{0});
  cs.insert(count::CountVec{1});
  e2.counts = cs;
  u.results.push_back(std::move(e1));
  u.results.push_back(std::move(e2));

  const Envelope env{2, 5, std::move(u)};
  const auto bytes = encode(env);
  EXPECT_EQ(bytes.size(), encoded_size(env));

  const Envelope back = decode(bytes, dst);
  EXPECT_EQ(back.src, 2u);
  EXPECT_EQ(back.dst, 5u);
  const auto& bu = std::get<UpdateMessage>(back.msg);
  EXPECT_EQ(bu.invariant, 7u);
  EXPECT_EQ(bu.up_node, 3u);
  EXPECT_EQ(bu.down_node, 9u);
  ASSERT_EQ(bu.withdrawn.size(), 1u);
  EXPECT_EQ(bu.withdrawn[0],
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  ASSERT_EQ(bu.results.size(), 2u);
  EXPECT_EQ(bu.results[0].pred,
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")));
  EXPECT_EQ(bu.results[0].counts,
            count::CountSet::singleton(count::CountVec{1}));
  EXPECT_EQ(bu.results[1].counts.size(), 2u);
}

TEST_F(CodecTest, SubscribeRoundTrip) {
  SubscribeMessage s;
  s.invariant = 1;
  s.up_node = 4;
  s.down_node = 6;
  s.original = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  s.rewritten = src.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32"));
  const Envelope env{0, 1, std::move(s)};
  const Envelope back = decode(encode(env), dst);
  const auto& bs = std::get<SubscribeMessage>(back.msg);
  EXPECT_EQ(bs.rewritten,
            dst.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32")));
  EXPECT_EQ(bs.up_node, 4u);
}

TEST_F(CodecTest, LinkStateRoundTrip) {
  LinkStateMessage l;
  l.link = LinkId{2, 7};
  l.up = false;
  l.seq = 0x123456789ABCULL;
  l.origin = 2;
  const Envelope env{2, 3, l};
  const Envelope back = decode(encode(env), dst);
  const auto& bl = std::get<LinkStateMessage>(back.msg);
  EXPECT_EQ(bl.link, (LinkId{2, 7}));
  EXPECT_FALSE(bl.up);
  EXPECT_EQ(bl.seq, 0x123456789ABCULL);
  EXPECT_EQ(bl.origin, 2u);
}

TEST_F(CodecTest, PathSetRoundTrip) {
  PathSetUpdate p;
  p.session = 11;
  p.up_node = kNoNode;
  p.down_node = 2;
  p.side = 1;
  p.withdrawn.push_back(
      src.dst_prefix(packet::Ipv4Prefix::parse("10.1.0.0/16")));
  PathSetUpdate::Entry e;
  e.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.1.2.0/24"));
  e.paths = {{0, 3, 5}, {0, 4, 5}};
  p.results.push_back(std::move(e));

  const Envelope env{4, 9, std::move(p)};
  const Envelope back = decode(encode(env), dst);
  const auto& bp = std::get<PathSetUpdate>(back.msg);
  EXPECT_EQ(bp.session, 11u);
  EXPECT_EQ(bp.up_node, kNoNode);
  EXPECT_EQ(bp.down_node, 2u);
  EXPECT_EQ(bp.side, 1);
  ASSERT_EQ(bp.withdrawn.size(), 1u);
  EXPECT_EQ(bp.withdrawn[0],
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.1.0.0/16")));
  ASSERT_EQ(bp.results.size(), 1u);
  EXPECT_EQ(bp.results[0].pred,
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.1.2.0/24")));
  EXPECT_EQ(bp.results[0].paths,
            (std::vector<std::vector<DeviceId>>{{0, 3, 5}, {0, 4, 5}}));
}

// Builds one envelope of every message type, all in `src`'s space.
std::vector<Envelope> sample_envelopes(packet::PacketSpace& src) {
  std::vector<Envelope> envs;
  {
    UpdateMessage u;
    u.invariant = 3;
    u.up_node = 1;
    u.down_node = 2;
    u.withdrawn.push_back(
        src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")));
    CountEntry e;
    e.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
    e.counts = count::CountSet::singleton(count::CountVec{1});
    u.results.push_back(std::move(e));
    envs.push_back(Envelope{0, 1, std::move(u)});
  }
  {
    SubscribeMessage s;
    s.invariant = 3;
    s.up_node = 1;
    s.down_node = 2;
    s.original = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
    s.rewritten = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.9.0/24"));
    envs.push_back(Envelope{2, 1, std::move(s)});
  }
  envs.push_back(Envelope{1, 3, LinkStateMessage{LinkId{1, 3}, true, 7, 1}});
  {
    PathSetUpdate p;
    p.session = 5;
    p.down_node = 4;
    PathSetUpdate::Entry e;
    e.pred = src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23"));
    e.paths = {{0, 1}};
    p.results.push_back(std::move(e));
    envs.push_back(Envelope{3, 1, std::move(p)});
  }
  return envs;
}

TEST_F(CodecTest, FrameRoundTripsEveryMessageType) {
  const auto envs = sample_envelopes(src);
  const auto frame = encode_frame(envs);
  const auto back = decode_frame(frame, dst);
  ASSERT_EQ(back.size(), envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    EXPECT_EQ(back[i].src, envs[i].src);
    EXPECT_EQ(back[i].dst, envs[i].dst);
    EXPECT_EQ(back[i].msg.index(), envs[i].msg.index());
    // Byte-identical re-encoding in the destination space proves the
    // payloads survived (predicate structure is canonical per space).
    EXPECT_EQ(encode(back[i], nullptr).size(), encode(envs[i]).size());
  }
  const auto& u = std::get<UpdateMessage>(back[0].msg);
  EXPECT_EQ(u.results[0].pred,
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")));
}

TEST_F(CodecTest, EmptyFrameRoundTrips) {
  const auto frame = encode_frame({});
  EXPECT_TRUE(decode_frame(frame, dst).empty());
}

TEST_F(CodecTest, FrameWithSerializeCacheMatchesUncached) {
  // Repeated predicates across envelopes hit the cache; the bytes must be
  // identical either way. The cache only serves the blob form, so pin the
  // atom fast path off (dst-only predicates would ship as intervals).
  const bool atoms_were_enabled = pred::atom_path_enabled();
  pred::set_atom_path_enabled(false);
  auto envs = sample_envelopes(src);
  auto more = sample_envelopes(src);
  envs.insert(envs.end(), more.begin(), more.end());
  bdd::SerializeCache cache;
  const auto cached = encode_frame(envs, &cache);
  const auto plain = encode_frame(envs, nullptr);
  EXPECT_EQ(cached, plain);
  EXPECT_GT(cache.hits(), 0u);
  pred::set_atom_path_enabled(atoms_were_enabled);
}

TEST_F(CodecTest, TruncatedInputsFailCleanly) {
  // Every strict prefix of a valid encoding must throw (never crash,
  // never decode successfully): the byte stream the parser follows is
  // unchanged up to the cut, so it must run off the end.
  for (const auto& env : sample_envelopes(src)) {
    const auto bytes = encode(env);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> cut(bytes.data(), len);
      EXPECT_THROW((void)decode(cut, dst), Error) << "prefix len " << len;
    }
  }
}

TEST_F(CodecTest, TruncatedFramesFailCleanly) {
  const auto frame = encode_frame(sample_envelopes(src));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::span<const std::uint8_t> cut(frame.data(), len);
    EXPECT_THROW((void)decode_frame(cut, dst), Error) << "prefix len " << len;
  }
  // A frame with extra bytes after the last envelope is also rejected.
  auto padded = frame;
  padded.push_back(0);
  EXPECT_THROW((void)decode_frame(padded, dst), Error);
  // And a non-frame tag is rejected before any allocation.
  EXPECT_THROW((void)decode_frame(encode(sample_envelopes(src)[0]), dst),
               Error);
}

TEST_F(CodecTest, RejectsGarbage) {
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_THROW((void)decode(junk, dst), Error);
  // Unknown tag.
  std::vector<std::uint8_t> bad(9, 0);
  bad[8] = 99;
  EXPECT_THROW((void)decode(bad, dst), Error);
}

TEST_F(CodecTest, EmptyUpdateIsSmall) {
  UpdateMessage u;
  const Envelope env{0, 1, std::move(u)};
  // Envelope header + tag + ids + two zero-length lists.
  EXPECT_LT(encode(env).size(), 32u);
}

// --------------------------------------------------------------------------
// Hostile-input hardening: declared sizes are validated against the bytes
// actually present BEFORE any allocation, and every rejection carries a
// typed kind so transports can pick the dead-peer path.
// --------------------------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] CodecErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CodecError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected CodecError";
  return CodecErrorKind::Truncated;
}

TEST_F(CodecTest, HostileWithdrawnCountRejectedBeforeAllocation) {
  // An update claiming 2^32-1 withdrawn predicates in a 30-byte buffer.
  // The count guard must fire on the declared count, not after attempting
  // to materialize four billion predicates.
  std::vector<std::uint8_t> bytes;
  put_u32(bytes, 0);  // src
  put_u32(bytes, 1);  // dst
  bytes.push_back(1); // kTagUpdate
  put_u32(bytes, 7);  // invariant
  put_u32(bytes, 0);  // up_node
  put_u32(bytes, 0);  // down_node
  put_u32(bytes, 0xFFFFFFFFu);  // withdrawn count
  EXPECT_EQ(kind_of([&] { (void)decode(bytes, dst); }),
            CodecErrorKind::Truncated);
}

TEST_F(CodecTest, HostileCountTupleHeaderRejected) {
  // Same idea one level deeper: a count-set claiming 2^31 tuples.
  std::vector<std::uint8_t> bytes;
  put_u32(bytes, 0);
  put_u32(bytes, 1);
  bytes.push_back(1);  // kTagUpdate
  put_u32(bytes, 7);
  put_u32(bytes, 0);
  put_u32(bytes, 0);
  put_u32(bytes, 0);  // no withdrawn
  put_u32(bytes, 1);  // one result entry...
  {
    // ...whose predicate is a valid blob-form serialization of "all
    // packets" (tag 0 = kPredBlob, then length-prefixed node list).
    const auto pred = bdd::serialize(
        src.manager(),
        src.dst_prefix(packet::Ipv4Prefix::parse("0.0.0.0/0")).ref());
    bytes.push_back(0);
    put_u32(bytes, static_cast<std::uint32_t>(pred.size()));
    bytes.insert(bytes.end(), pred.begin(), pred.end());
  }
  put_u32(bytes, 1u << 31);  // tuples
  put_u32(bytes, 2);         // arity
  EXPECT_EQ(kind_of([&] { (void)decode(bytes, dst); }),
            CodecErrorKind::Truncated);
}

TEST_F(CodecTest, HostileFrameEnvelopeCountRejected) {
  // Above the envelope cap: Oversize.
  std::vector<std::uint8_t> over{0xF5};
  put_u32(over, default_decode_limits().max_envelopes + 1);
  EXPECT_EQ(kind_of([&] { (void)decode_frame(over, dst); }),
            CodecErrorKind::Oversize);
  // Under the cap but impossible for the buffer: Truncated, before
  // reserve() touches the count.
  std::vector<std::uint8_t> thin{0xF5};
  put_u32(thin, 50000);
  EXPECT_EQ(kind_of([&] { (void)decode_frame(thin, dst); }),
            CodecErrorKind::Truncated);
}

TEST_F(CodecTest, PredicateSizeCapEnforced) {
  const auto envs = sample_envelopes(src);
  const auto bytes = encode(envs[0]);
  DecodeLimits limits;
  limits.max_pred_bytes = 2;  // below any real serialization
  EXPECT_EQ(kind_of([&] { (void)decode(bytes, dst, limits); }),
            CodecErrorKind::Oversize);
}

TEST_F(CodecTest, FrameSizeCapEnforced) {
  const auto frame = encode_frame(sample_envelopes(src));
  DecodeLimits limits;
  limits.max_frame_bytes = frame.size() - 1;
  EXPECT_EQ(kind_of([&] { (void)decode_frame(frame, dst, limits); }),
            CodecErrorKind::Oversize);
  // At the cap it decodes fine.
  limits.max_frame_bytes = frame.size();
  EXPECT_EQ(decode_frame(frame, dst, limits).size(), 4u);
}

TEST_F(CodecTest, ErrorKindsAreTyped) {
  const auto bytes = encode(sample_envelopes(src)[0]);
  // Truncation.
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 1);
  EXPECT_EQ(kind_of([&] { (void)decode(cut, dst); }),
            CodecErrorKind::Truncated);
  // Unknown tag.
  auto bad_tag = bytes;
  bad_tag[8] = 0xEE;
  EXPECT_EQ(kind_of([&] { (void)decode(bad_tag, dst); }),
            CodecErrorKind::BadTag);
  // Trailing junk after a well-formed message.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(kind_of([&] { (void)decode(padded, dst); }),
            CodecErrorKind::TrailingBytes);
  // CodecError is still an Error, so existing catch sites keep working.
  EXPECT_THROW((void)decode(padded, dst), Error);
}

}  // namespace
}  // namespace tulkun::dvm
