// Packet transformation end-to-end (§5 "Handling packet transformation"):
// a NAT device rewrites the destination IP mid-path; the rewriting node
// must SUBSCRIBE downstream for the rewritten predicate and pull counts
// back through the preimage.
#include <gtest/gtest.h>

#include <deque>

#include "dpvnet/build.hpp"
#include "dvm/engine.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"

namespace tulkun::dvm {
namespace {

/// S -- N (NAT) -- D: packets to 10.0.9.0/24 are rewritten at N to the
/// server address 192.168.0.1 that D owns.
struct NatNet {
  topo::Topology topo;
  DeviceId S, N, D;
  fib::NetworkFib net;

  NatNet()
      : topo(make_topo()),
        S(topo.device("S")),
        N(topo.device("N")),
        D(topo.device("D")),
        net(topo) {
    const auto vip = packet::Ipv4Prefix::parse("10.0.9.0/24");
    const auto real = packet::Ipv4Prefix::parse("192.168.0.1/32");

    fib::Rule s;
    s.priority = 10;
    s.dst_prefix = vip;
    s.action = fib::Action::forward(N);
    net.table(S).insert(s);

    fib::Rule n;
    n.priority = 10;
    n.dst_prefix = vip;
    n.action = fib::Action::forward(
        D, fib::Rewrite{packet::Field::DstIp,
                        packet::parse_ipv4("192.168.0.1")});
    nat_rule = net.table(N).insert(n);

    fib::Rule d;
    d.priority = 10;
    d.dst_prefix = real;
    d.action = fib::Action::deliver();
    net.table(D).insert(d);
  }

  static topo::Topology make_topo() {
    topo::Topology t;
    const auto s = t.add_device("S");
    const auto n = t.add_device("N");
    const auto d = t.add_device("D");
    t.add_link(s, n, 1e-3);
    t.add_link(n, d, 1e-3);
    // The VIP is "reachable via" D for spec-consistency purposes.
    t.attach_prefix(d, packet::Ipv4Prefix::parse("10.0.9.0/24"));
    t.attach_prefix(d, packet::Ipv4Prefix::parse("192.168.0.1/32"));
    return t;
  }

  std::uint64_t nat_rule = 0;
};

class TransformTest : public ::testing::Test {
 protected:
  NatNet nat;

  spec::Invariant vip_reachability() {
    spec::Builtins b(nat.topo, nat.net.space());
    return b.reachability(
        nat.net.space().dst_prefix(packet::Ipv4Prefix::parse("10.0.9.0/24")),
        nat.S, nat.D);
  }
};

TEST_F(TransformTest, SubscribePullsRewrittenCounts) {
  const auto inv = vip_reachability();
  planner::Planner planner(nat.topo, nat.net.space());
  const auto plan = planner.plan(inv);

  runtime::SimConfig cfg;
  runtime::EventSimulator sim(nat.topo, cfg);
  sim.make_devices(nat.net.space());
  sim.install(plan);
  for (DeviceId d = 0; d < nat.topo.device_count(); ++d) {
    sim.post_initialize(d, nat.net.table(d), 0.0);
  }
  sim.run();
  EXPECT_TRUE(sim.violations().empty());

  // The source saw one delivered copy for the whole VIP space.
  const auto results = sim.device(nat.S).source_results(plan.id);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].second.empty());
  for (const auto& e : results[0].second) {
    EXPECT_EQ(e.counts, count::CountSet::singleton(count::CountVec{1}));
  }
}

TEST_F(TransformTest, RewriteToWrongAddressDetected) {
  // NAT rewrites to an address D does not serve: D's FIB drops it, but the
  // node at D still *accepts* (assume-delivery destination semantics), so
  // detection needs the stricter config that ties acceptance to external
  // delivery at non-pure destinations... here D remains pure-dest, so we
  // instead break the invariant by making N rewrite and forward BACK to S
  // (off the DPVNet): the count drops to zero.
  auto& table = nat.net.table(nat.N);
  (void)table.erase(nat.nat_rule);
  fib::Rule wrong;
  wrong.priority = 10;
  wrong.dst_prefix = packet::Ipv4Prefix::parse("10.0.9.0/24");
  wrong.action = fib::Action::forward(
      nat.S, fib::Rewrite{packet::Field::DstIp,
                          packet::parse_ipv4("192.168.0.1")});
  table.insert(wrong);

  const auto inv = vip_reachability();
  planner::Planner planner(nat.topo, nat.net.space());
  const auto plan = planner.plan(inv);
  runtime::EventSimulator sim(nat.topo, {});
  sim.make_devices(nat.net.space());
  sim.install(plan);
  for (DeviceId d = 0; d < nat.topo.device_count(); ++d) {
    sim.post_initialize(d, nat.net.table(d), 0.0);
  }
  sim.run();
  EXPECT_FALSE(sim.violations().empty());
}

TEST_F(TransformTest, NatUpdateReconverges) {
  const auto inv = vip_reachability();
  planner::Planner planner(nat.topo, nat.net.space());
  const auto plan = planner.plan(inv);
  runtime::EventSimulator sim(nat.topo, {});
  sim.make_devices(nat.net.space());
  sim.install(plan);
  for (DeviceId d = 0; d < nat.topo.device_count(); ++d) {
    sim.post_initialize(d, nat.net.table(d), 0.0);
  }
  double now = sim.run();
  ASSERT_TRUE(sim.violations().empty());

  // Break: N drops the VIP. Then fix again with the NAT rule.
  fib::Rule drop;
  drop.priority = 50;
  drop.dst_prefix = packet::Ipv4Prefix::parse("10.0.9.0/24");
  drop.action = fib::Action::drop();
  const auto handle = sim.post_rule_update(
      nat.N, fib::FibUpdate::insert(nat.N, drop), now);
  now = sim.run();
  EXPECT_FALSE(sim.violations().empty());

  sim.post_rule_update(nat.N,
                       fib::FibUpdate::erase(nat.N, handle->rule_id), now);
  sim.run();
  EXPECT_TRUE(sim.violations().empty());
}

}  // namespace
}  // namespace tulkun::dvm
