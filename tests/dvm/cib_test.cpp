#include "dvm/cib.hpp"

#include <gtest/gtest.h>

namespace tulkun::dvm {
namespace {

class CibTest : public ::testing::Test {
 protected:
  packet::PacketSpace space;

  packet::PacketSet prefix(const char* cidr) {
    return space.dst_prefix(packet::Ipv4Prefix::parse(cidr));
  }
  static count::CountSet counts(std::initializer_list<std::uint32_t> vs) {
    count::CountSet s;
    for (const auto v : vs) s.insert(count::CountVec{v});
    return s;
  }
};

TEST_F(CibTest, ApplyInsertsAndWithdraws) {
  CibIn cib;
  cib.apply({}, {CountEntry{prefix("10.0.0.0/23"), counts({1})}});
  ASSERT_EQ(cib.entries().size(), 1u);

  // Withdraw half, insert new counts for it (the UPDATE principle).
  cib.apply({prefix("10.0.0.0/24")},
            {CountEntry{prefix("10.0.0.0/24"), counts({0})}});
  ASSERT_EQ(cib.entries().size(), 2u);
  const auto lookup = cib.lookup(prefix("10.0.0.0/23"), 1);
  ASSERT_EQ(lookup.size(), 2u);
  auto seen_one = space.none();
  auto seen_zero = space.none();
  for (const auto& e : lookup) {
    if (e.counts == counts({1})) seen_one |= e.pred;
    if (e.counts == counts({0})) seen_zero |= e.pred;
  }
  EXPECT_EQ(seen_zero, prefix("10.0.0.0/24"));
  EXPECT_EQ(seen_one, prefix("10.0.1.0/24"));
}

TEST_F(CibTest, LookupFillsUncoveredWithZeros) {
  CibIn cib;
  cib.apply({}, {CountEntry{prefix("10.0.0.0/24"), counts({2})}});
  const auto lookup = cib.lookup(prefix("10.0.0.0/23"), 1);
  ASSERT_EQ(lookup.size(), 2u);
  bool found_zero = false;
  for (const auto& e : lookup) {
    if (e.pred == prefix("10.0.1.0/24")) {
      EXPECT_EQ(e.counts, count::CountSet::zeros(1));
      found_zero = true;
    }
  }
  EXPECT_TRUE(found_zero);
}

TEST_F(CibTest, LookupOfEmptyRegion) {
  CibIn cib;
  EXPECT_TRUE(cib.lookup(space.none(), 1).empty());
  // Whole-region zero entry for an empty CIB.
  const auto lookup = cib.lookup(prefix("10.0.0.0/24"), 2);
  ASSERT_EQ(lookup.size(), 1u);
  EXPECT_EQ(lookup[0].counts, count::CountSet::zeros(2));
}

TEST_F(CibTest, DefensiveAgainstOverlappingResults) {
  CibIn cib;
  cib.apply({}, {CountEntry{prefix("10.0.0.0/23"), counts({1})}});
  // Incoming overlaps existing without withdrawal: table must stay
  // disjoint (first writer wins for the overlap).
  cib.apply({}, {CountEntry{prefix("10.0.0.0/24"), counts({5})}});
  auto covered = space.none();
  for (std::size_t i = 0; i < cib.entries().size(); ++i) {
    for (std::size_t j = i + 1; j < cib.entries().size(); ++j) {
      EXPECT_FALSE(
          cib.entries()[i].pred.intersects(cib.entries()[j].pred));
    }
    covered |= cib.entries()[i].pred;
  }
  EXPECT_EQ(covered, prefix("10.0.0.0/23"));
}

TEST_F(CibTest, MergeByCounts) {
  std::vector<LocEntry> loc;
  loc.push_back(LocEntry{prefix("10.0.0.0/24"), prefix("10.0.0.0/24"),
                         fib::Action::drop(), counts({1})});
  loc.push_back(LocEntry{prefix("10.0.1.0/24"), prefix("10.0.1.0/24"),
                         fib::Action::forward(3), counts({1})});
  loc.push_back(LocEntry{prefix("10.0.2.0/24"), prefix("10.0.2.0/24"),
                         fib::Action::drop(), counts({0, 1})});
  const auto merged = merge_by_counts(loc);
  ASSERT_EQ(merged.size(), 2u);
  // The two count-1 rows merged regardless of differing actions (§5.2
  // step 3 strips actions). Output order is unspecified.
  bool found = false;
  for (const auto& e : merged) {
    if (e.counts == counts({1})) {
      EXPECT_EQ(e.pred, prefix("10.0.0.0/23"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CibTest, PredUnion) {
  std::vector<CountEntry> entries{
      CountEntry{prefix("10.0.0.0/24"), counts({1})},
      CountEntry{prefix("10.0.1.0/24"), counts({2})},
  };
  EXPECT_EQ(pred_union(entries, space.none()), prefix("10.0.0.0/23"));
  EXPECT_TRUE(pred_union({}, space.none()).empty());
}

}  // namespace
}  // namespace tulkun::dvm
