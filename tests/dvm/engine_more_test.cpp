// Additional DVM engine coverage: comparator families end-to-end,
// randomized message delivery order (eventual consistency), port-based
// rule updates, and bounded-length invariants.
#include <gtest/gtest.h>

#include <deque>

#include "core/rng.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dvm {
namespace {

using testutil::Figure2;

class EngineMoreTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  runtime::EventSimulator run(const planner::InvariantPlan& plan) {
    runtime::EventSimulator sim(fig.topo, {});
    sim.make_devices(fig.space());
    sim.install(plan);
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      sim.post_initialize(d, fig.net.table(d), 0.0);
    }
    sim.run();
    return sim;
  }

  bool clean(const spec::Invariant& inv) {
    auto sim = run(planner.plan(inv));
    return sim.violations().empty();
  }
};

TEST_F(EngineMoreTest, IsolationEndToEnd) {
  // C must not receive D-bound traffic: holds (nothing routes 10.0.0.0/23
  // to C).
  spec::Invariant iso = b.isolation(fig.P1(), fig.S, fig.C);
  EXPECT_TRUE(clean(iso));

  // Now leak: B forwards P2 to C, C delivers. Isolation breaks.
  fib::Rule leak;
  leak.priority = 500;
  leak.dst_prefix = fig.p2;
  leak.action = fib::Action::forward(fig.C);
  fig.net.table(fig.B).insert(leak);
  fib::Rule deliver;
  deliver.priority = 500;
  deliver.dst_prefix = fig.p2;
  deliver.action = fib::Action::deliver();
  fig.net.table(fig.C).insert(deliver);
  EXPECT_FALSE(clean(iso));
}

TEST_F(EngineMoreTest, UpperBoundComparatorLe) {
  // "At most 1 copy may reach D" — the initial plane satisfies it (all
  // classes deliver exactly one copy; see ReachabilityCountsBothPaths).
  spec::Invariant inv = b.reachability(fig.P1(), fig.S, fig.D);
  inv.behavior.count = spec::CountExpr{spec::CountExpr::Cmp::Le, 1};
  EXPECT_TRUE(clean(inv));

  // Replicate P4 at A toward both B and W: 2 copies delivered.
  fib::Rule rep;
  rep.priority = 500;
  rep.dst_prefix = fig.p34;
  rep.action = fib::Action::forward_all({fig.B, fig.W});
  fig.net.table(fig.A).insert(rep);
  EXPECT_FALSE(clean(inv));
}

TEST_F(EngineMoreTest, StrictLessComparator) {
  spec::Invariant inv = b.reachability(fig.P1(), fig.S, fig.D);
  inv.behavior.count = spec::CountExpr{spec::CountExpr::Cmp::Lt, 1};
  // Exactly one copy arrives: (< 1) is violated everywhere.
  EXPECT_FALSE(clean(inv));
}

TEST_F(EngineMoreTest, BoundedLengthExcludesLongPath) {
  // Reachability within 2 hops: S A W D and S A B D are 3 hops — fails.
  EXPECT_FALSE(clean(b.bounded_reachability(fig.P1(), fig.S, fig.D, 2)));
  EXPECT_TRUE(clean(b.bounded_reachability(fig.P1(), fig.S, fig.D, 3)));
}

TEST_F(EngineMoreTest, PortBasedRuleUpdate) {
  // An update matching only dstPort 443 must split the LECs and affect
  // only that slice of the packet space.
  const auto plan = planner.plan(b.reachability(fig.P1(), fig.S, fig.D));
  runtime::EventSimulator sim(fig.topo, {});
  sim.make_devices(fig.space());
  sim.install(plan);
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    sim.post_initialize(d, fig.net.table(d), 0.0);
  }
  double now = sim.run();
  ASSERT_TRUE(sim.violations().empty());

  fib::Rule drop443;
  drop443.priority = 700;
  drop443.dst_prefix = fig.p1;
  drop443.extra_match = fig.space().dst_port(443);
  drop443.action = fib::Action::drop();
  sim.post_rule_update(fig.W, fib::FibUpdate::insert(fig.W, drop443), now);
  sim.run();

  const auto violations = sim.violations();
  ASSERT_FALSE(violations.empty());
  const auto port443 = fig.space().dst_port(443);
  for (const auto& v : violations) {
    EXPECT_TRUE(v.pred.subset_of(port443));
    // P3 (port 80 via ANY) is unaffected.
    EXPECT_FALSE(v.pred.intersects(fig.P3()));
  }
}

// Eventual consistency: the final verdict must not depend on message
// delivery order. We drive raw engines with a randomized pump.
class DeliveryOrderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeliveryOrderProperty, VerdictIndependentOfOrder) {
  Figure2 fig;
  spec::Builtins b(fig.topo, fig.space());
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);
  const auto dag = dpvnet::build_dpvnet(fig.topo, inv);

  std::vector<std::unique_ptr<DeviceEngine>> engines;
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    engines.push_back(std::make_unique<DeviceEngine>(
        d, dag, inv, 1, fig.space(), EngineConfig{}));
  }
  fib::LecBuilder builder(fig.space());

  std::vector<Envelope> pending;
  for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
    auto msgs = engines[d]->set_lec(builder.build(fig.net.table(d)));
    pending.insert(pending.end(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
  }

  // Random-order pump. DVM assumes per-link FIFO; randomizing *across*
  // links is legal, so shuffle among distinct (src,dst) pairs while
  // keeping each pair's relative order.
  Rng rng(GetParam());
  std::deque<Envelope> queue(std::make_move_iterator(pending.begin()),
                             std::make_move_iterator(pending.end()));
  while (!queue.empty()) {
    // Pick a random queue position whose (src,dst) pair has no earlier
    // message in the queue.
    std::vector<std::size_t> heads;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      bool head = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (queue[j].src == queue[i].src && queue[j].dst == queue[i].dst) {
          head = false;
          break;
        }
      }
      if (head) heads.push_back(i);
    }
    const std::size_t pick = heads[rng.index(heads.size())];
    Envelope env = std::move(queue[pick]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<Envelope> out;
    if (const auto* u = std::get_if<UpdateMessage>(&env.msg)) {
      out = engines[env.dst]->on_update(*u);
    }
    for (auto& e : out) queue.push_back(std::move(e));
  }

  // Regardless of order: the P3 violation is present, P2/P4 are clean.
  std::vector<Violation> violations;
  for (const auto& e : engines) {
    const auto& v = e->violations();
    violations.insert(violations.end(), v.begin(), v.end());
  }
  ASSERT_FALSE(violations.empty());
  auto flagged = fig.space().none();
  for (const auto& v : violations) flagged |= v.pred;
  EXPECT_EQ(flagged & fig.P1(), fig.P3());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryOrderProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace tulkun::dvm
