// Wire-form selection tests for the predicate tiers: interval-atom form
// for dst-only predicates, node-ID delta streams for BDD predicates on a
// channel, and the self-contained blob fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dvm/codec.hpp"
#include "pred/atom_set.hpp"

namespace tulkun::dvm {
namespace {

// Restores the process-global atom switch on scope exit.
class AtomToggleGuard {
 public:
  AtomToggleGuard() : was_(pred::atom_path_enabled()) {}
  ~AtomToggleGuard() { pred::set_atom_path_enabled(was_); }

 private:
  bool was_;
};

Envelope update_env(packet::PacketSpace& space, packet::PacketSet pred,
                    DeviceId src = 2, DeviceId dst = 5) {
  UpdateMessage u;
  u.invariant = 1;
  u.up_node = 0;
  u.down_node = 1;
  CountEntry e;
  e.pred = std::move(pred);
  e.counts = count::CountSet::singleton(count::CountVec{1});
  u.results.push_back(std::move(e));
  return Envelope{src, dst, std::move(u)};
}

const packet::PacketSet& update_pred(const Envelope& env) {
  return std::get<UpdateMessage>(env.msg).results.at(0).pred;
}

TEST(CodecChannelTest, AtomFormIsCompactAndSkipsReceiverBddWork) {
  AtomToggleGuard guard;
  packet::PacketSpace src;
  packet::PacketSpace dst;
  const auto prefix = packet::Ipv4Prefix::parse("10.0.0.0/24");

  pred::set_atom_path_enabled(true);
  const auto atom_bytes = encode(update_env(src, src.dst_prefix(prefix)));

  pred::set_atom_path_enabled(false);
  packet::PacketSpace src2;  // fresh space so the pred is built BDD-only
  const auto blob_bytes = encode(update_env(src2, src2.dst_prefix(prefix)));

  // Interval form: 1 tag + 4 count + 8 bytes per interval, vs a node list.
  EXPECT_LT(atom_bytes.size(), blob_bytes.size());

  pred::set_atom_path_enabled(true);
  const Envelope back = decode(atom_bytes, dst);
  EXPECT_EQ(update_pred(back), dst.dst_prefix(prefix));
  // The receiver interned the interval list directly; no BDD was built.
  EXPECT_NE(update_pred(back).atom_ref(), pred::kNoAtom);
}

TEST(CodecChannelTest, NonCanonicalIntervalListRejected) {
  AtomToggleGuard guard;
  pred::set_atom_path_enabled(true);
  packet::PacketSpace src;
  packet::PacketSpace dst;

  // 10.0.0.0/24 ships as one interval: lo 0x0a000000, hi_incl 0x0a0000ff.
  auto bytes = encode(
      update_env(src, src.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"))));
  const std::vector<std::uint8_t> interval{
      0x01, 0x00, 0x00, 0x00,              // n = 1
      0x00, 0x00, 0x00, 0x0a,              // lo  (LE)
      0xff, 0x00, 0x00, 0x0a,              // hi_incl (LE)
  };
  auto it = std::search(bytes.begin(), bytes.end(), interval.begin(),
                        interval.end());
  ASSERT_NE(it, bytes.end());
  // Corrupt hi_incl below lo: an impossible (empty/backwards) interval.
  *(it + 11) = 0x00;
  EXPECT_THROW((void)decode(bytes, dst), CodecError);
}

TEST(CodecChannelTest, DeltaRoundTripAndReuse) {
  packet::PacketSpace src;
  packet::PacketSpace dst;
  ChannelEncoders encs;
  ChannelDecoders decs(dst.manager());

  // A src-prefix predicate has no atom form, so with a channel configured
  // it ships as a node-ID delta.
  const auto pred = src.src_prefix(packet::Ipv4Prefix::parse("172.16.0.0/12"));
  ASSERT_EQ(pred.atom_ref(), pred::kNoAtom);

  const Envelope env = update_env(src, pred);
  const auto first = encode(env, nullptr, &encs);
  const Envelope back =
      decode(first, dst, default_decode_limits(), &decs);
  EXPECT_EQ(update_pred(back),
            dst.src_prefix(packet::Ipv4Prefix::parse("172.16.0.0/12")));
  EXPECT_GT(encs.roots_encoded(), 0u);
  EXPECT_GT(encs.nodes_shipped(), 0u);

  // Re-sending the same predicate ships zero nodes: the frame shrinks.
  const auto second = encode(env, nullptr, &encs);
  EXPECT_LT(second.size(), first.size());
  const Envelope back2 =
      decode(second, dst, default_decode_limits(), &decs);
  EXPECT_EQ(update_pred(back2), update_pred(back));

  // The decoder tables are gc roots on the receiving manager.
  std::vector<bdd::NodeRef> roots;
  decs.collect_refs(roots);
  EXPECT_FALSE(roots.empty());
}

TEST(CodecChannelTest, DeltaPredicateWithoutChannelThrows) {
  packet::PacketSpace src;
  packet::PacketSpace dst;
  ChannelEncoders encs;

  const Envelope env = update_env(
      src, src.src_prefix(packet::Ipv4Prefix::parse("172.16.0.0/12")));
  const auto bytes = encode(env, nullptr, &encs);
  // Decoding a delta-form predicate requires the matching channel state.
  EXPECT_THROW((void)decode(bytes, dst), CodecError);
}

TEST(CodecChannelTest, ChannelsArePerSourceStream) {
  packet::PacketSpace a;
  packet::PacketSpace b;
  packet::PacketSpace dst;
  ChannelEncoders encs_a;
  ChannelEncoders encs_b;
  ChannelDecoders decs(dst.manager());

  const auto pa = a.src_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8"));
  const auto pb = b.src_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8"));
  const auto fa = encode(update_env(a, pa, /*src=*/7), nullptr, &encs_a);
  const auto fb = encode(update_env(b, pb, /*src=*/8), nullptr, &encs_b);

  // Interleaved delivery from two sources decodes correctly because the
  // receiver keys its decoder table by envelope source.
  const Envelope ba = decode(fa, dst, default_decode_limits(), &decs);
  const Envelope bb = decode(fb, dst, default_decode_limits(), &decs);
  EXPECT_EQ(update_pred(ba), update_pred(bb));

  const auto fa2 = encode(update_env(a, pa, /*src=*/7), nullptr, &encs_a);
  EXPECT_LT(fa2.size(), fa.size());
  const Envelope ba2 = decode(fa2, dst, default_decode_limits(), &decs);
  EXPECT_EQ(update_pred(ba2), update_pred(ba));
}

TEST(CodecChannelTest, FrameLevelChannelPassthrough) {
  packet::PacketSpace src;
  packet::PacketSpace dst;
  ChannelEncoders encs;
  ChannelDecoders decs(dst.manager());

  std::vector<Envelope> envs;
  envs.push_back(update_env(
      src, src.src_prefix(packet::Ipv4Prefix::parse("172.16.0.0/12"))));
  envs.push_back(update_env(
      src, src.dst_prefix(packet::Ipv4Prefix::parse("10.1.0.0/16"))));
  LinkStateMessage l;
  l.link = LinkId{0, 1};
  l.seq = 3;
  l.origin = 2;
  envs.push_back(Envelope{2, 5, l});

  const auto frame1 = encode_frame(envs, nullptr, &encs);
  const auto out1 = decode_frame(frame1, dst, default_decode_limits(), &decs);
  ASSERT_EQ(out1.size(), envs.size());
  EXPECT_EQ(update_pred(out1[0]),
            dst.src_prefix(packet::Ipv4Prefix::parse("172.16.0.0/12")));
  EXPECT_EQ(update_pred(out1[1]),
            dst.dst_prefix(packet::Ipv4Prefix::parse("10.1.0.0/16")));

  // Repeating the frame reuses the stream: strictly fewer wire bytes.
  const auto frame2 = encode_frame(envs, nullptr, &encs);
  EXPECT_LT(frame2.size(), frame1.size());
  const auto out2 = decode_frame(frame2, dst, default_decode_limits(), &decs);
  ASSERT_EQ(out2.size(), envs.size());
  EXPECT_EQ(update_pred(out2[0]), update_pred(out1[0]));
}

TEST(CodecChannelTest, BlobFallbackStillRoundTrips) {
  AtomToggleGuard guard;
  pred::set_atom_path_enabled(false);
  packet::PacketSpace src;
  packet::PacketSpace dst;

  const auto prefix = packet::Ipv4Prefix::parse("10.2.0.0/16");
  const Envelope back = decode(encode(update_env(src, src.dst_prefix(prefix))),
                               dst);
  EXPECT_EQ(update_pred(back), dst.dst_prefix(prefix));
}

}  // namespace
}  // namespace tulkun::dvm
