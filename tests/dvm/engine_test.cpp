// End-to-end DVM counting on the paper's Figure 2 example: engines per
// device exchange UPDATE messages through an in-test pump, and the source
// results must match the numbers in §2.2 exactly.
#include "dvm/engine.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "dpvnet/build.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun::dvm {
namespace {

using testutil::Figure2;

/// Synchronous message pump between DeviceEngines.
class Pump {
 public:
  void add(DeviceId dev, DeviceEngine* engine) { engines_[dev] = engine; }

  void deliver(std::vector<Envelope> initial) {
    std::deque<Envelope> queue(
        std::make_move_iterator(initial.begin()),
        std::make_move_iterator(initial.end()));
    std::size_t delivered = 0;
    while (!queue.empty()) {
      Envelope env = std::move(queue.front());
      queue.pop_front();
      ++delivered;
      const auto it = engines_.find(env.dst);
      ASSERT_NE(it, engines_.end()) << "message to unknown device";
      std::vector<Envelope> out;
      if (const auto* u = std::get_if<UpdateMessage>(&env.msg)) {
        out = it->second->on_update(*u);
      } else if (const auto* s = std::get_if<SubscribeMessage>(&env.msg)) {
        out = it->second->on_subscribe(*s);
      }
      for (auto& e : out) queue.push_back(std::move(e));
    }
    delivered_ += delivered;
  }

  std::size_t delivered() const { return delivered_; }

 private:
  std::map<DeviceId, DeviceEngine*> engines_;
  std::size_t delivered_ = 0;
};

class EngineFigure2Test : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};

  struct Session {
    spec::Invariant inv;
    dpvnet::DpvNet dag;
    std::vector<std::unique_ptr<DeviceEngine>> engines;
    Pump pump;
    fib::LecBuilder builder;
    std::vector<fib::LecTable> lecs;

    Session(Figure2& fig, spec::Invariant invariant, EngineConfig cfg)
        : inv(std::move(invariant)),
          dag(dpvnet::build_dpvnet(fig.topo, inv)),
          builder(fig.space()) {
      for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
        engines.push_back(std::make_unique<DeviceEngine>(
            d, dag, inv, 1, fig.space(), cfg));
      }
      for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
        lecs.push_back(builder.build(fig.net.table(d)));
      }
    }

    void initialize(Figure2& fig) {
      std::vector<Envelope> pending;
      for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
        auto msgs = engines[d]->set_lec(lecs[d]);
        pending.insert(pending.end(),
                       std::make_move_iterator(msgs.begin()),
                       std::make_move_iterator(msgs.end()));
        pump.add(d, engines[d].get());
      }
      pump.deliver(std::move(pending));
    }

    void apply(Figure2& fig, fib::FibUpdate update) {
      const auto deltas = fib::apply_update(fig.net, update);
      lecs[update.device] = builder.build(fig.net.table(update.device));
      auto msgs =
          engines[update.device]->on_lec_deltas(deltas, lecs[update.device]);
      pump.deliver(std::move(msgs));
    }

    std::vector<CountEntry> source_counts(DeviceId ingress) {
      for (auto& e : engines) {
        for (auto& [ing, entries] : e->source_results()) {
          if (ing == ingress) return entries;
        }
      }
      return {};
    }

    std::vector<Violation> violations() {
      std::vector<Violation> out;
      for (const auto& e : engines) {
        const auto& v = e->violations();
        out.insert(out.end(), v.begin(), v.end());
      }
      return out;
    }
  };

  static count::CountSet counts(std::initializer_list<std::uint32_t> vs) {
    count::CountSet s;
    for (const auto v : vs) s.insert(count::CountVec{v});
    return s;
  }

  /// Finds the counts for a packet set in merged source entries.
  static count::CountSet counts_for(const std::vector<CountEntry>& entries,
                                    const packet::PacketSet& p) {
    for (const auto& e : entries) {
      if (p.subset_of(e.pred)) return e.counts;
    }
    return {};
  }
};

TEST_F(EngineFigure2Test, WaypointCountsMatchPaperSection22) {
  EngineConfig cfg;
  cfg.minimize_counting_info = false;  // keep the paper's full count sets
  Session s(fig, b.waypoint(fig.P1(), fig.S, fig.W, fig.D), cfg);
  s.initialize(fig);

  const auto src = s.source_counts(fig.S);
  ASSERT_FALSE(src.empty());
  // Paper: S1 = [(P2 ∪ P4, 1), (P3, [0,1])].
  EXPECT_EQ(counts_for(src, fig.P2()), counts({1}));
  EXPECT_EQ(counts_for(src, fig.P4()), counts({1}));
  EXPECT_EQ(counts_for(src, fig.P2() | fig.P4()), counts({1}));
  EXPECT_EQ(counts_for(src, fig.P3()), counts({0, 1}));

  // The P3 universe with count 0 violates (exist >= 1): an error.
  const auto violations = s.violations();
  ASSERT_FALSE(violations.empty());
  bool p3_flagged = false;
  for (const auto& v : violations) {
    if (v.pred.intersects(fig.P3())) p3_flagged = true;
  }
  EXPECT_TRUE(p3_flagged);
}

TEST_F(EngineFigure2Test, IncrementalUpdateMatchesPaperSection223) {
  EngineConfig cfg;
  cfg.minimize_counting_info = false;
  Session s(fig, b.waypoint(fig.P1(), fig.S, fig.W, fig.D), cfg);
  s.initialize(fig);

  // §2.2.3: B reroutes 10.0.1.0/24 to W; afterwards S1 = [(P1, 1)].
  s.apply(fig, fig.b_reroute_to_w());
  const auto src = s.source_counts(fig.S);
  EXPECT_EQ(counts_for(src, fig.P1()), counts({1}));
  EXPECT_TRUE(s.violations().empty());
}

TEST_F(EngineFigure2Test, MinimizationPreservesVerdicts) {
  EngineConfig minimized;
  minimized.minimize_counting_info = true;
  Session s(fig, b.waypoint(fig.P1(), fig.S, fig.W, fig.D), minimized);
  s.initialize(fig);

  // Prop. 1: the verdict is unchanged (violation on P3).
  bool p3_flagged = false;
  for (const auto& v : s.violations()) {
    if (v.pred.intersects(fig.P3())) p3_flagged = true;
  }
  EXPECT_TRUE(p3_flagged);

  s.apply(fig, fig.b_reroute_to_w());
  EXPECT_TRUE(s.violations().empty());
}

TEST_F(EngineFigure2Test, ReachabilityCountsBothPaths) {
  EngineConfig cfg;
  cfg.minimize_counting_info = false;
  Session s(fig, b.reachability(fig.P1(), fig.S, fig.D), cfg);
  s.initialize(fig);
  const auto src = s.source_counts(fig.S);
  // P2: A replicates to B and W; B drops, W delivers -> exactly 1 copy.
  EXPECT_EQ(counts_for(src, fig.P2()), counts({1}));
  // P3: ANY{B,W} at A; both branches deliver via D -> 1 in each universe.
  EXPECT_EQ(counts_for(src, fig.P3()), counts({1}));
  // P4: via W only -> 1.
  EXPECT_EQ(counts_for(src, fig.P4()), counts({1}));
  EXPECT_TRUE(s.violations().empty());
}

TEST_F(EngineFigure2Test, NonRedundantDetectsDuplicateDelivery) {
  // Make A replicate P4 to both B and W (both deliver via D): 2 copies.
  {
    fib::Rule r;
    r.priority = 50;
    r.dst_prefix = fig.p34;
    r.action = fib::Action::forward_all({fig.B, fig.W});
    fig.net.table(fig.A).insert(r);
  }
  EngineConfig cfg;
  cfg.minimize_counting_info = false;
  Session s(fig, b.non_redundant_reachability(fig.P1(), fig.S, fig.D), cfg);
  s.initialize(fig);
  const auto src = s.source_counts(fig.S);
  EXPECT_EQ(counts_for(src, fig.P3() | fig.P4()), counts({2}));
  bool flagged = false;
  for (const auto& v : s.violations()) {
    if (v.pred.intersects(fig.P4())) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST_F(EngineFigure2Test, EqualOperatorRunsLocally) {
  Session s(fig, b.all_shortest_path(fig.P1(), fig.S, fig.D),
            EngineConfig{});
  s.initialize(fig);
  // Local contracts: zero DVM messages exchanged (§4.2 minimal counting
  // information is the empty set).
  std::uint64_t total_updates = 0;
  for (const auto& e : s.engines) total_updates += e->stats().updates_sent;
  EXPECT_EQ(total_updates, 0u);

  // The Figure 2 data plane violates all-shortest-path availability: A
  // sends P4 only via W (missing B), and B drops P2 instead of passing it
  // to D.
  const auto violations = s.violations();
  ASSERT_FALSE(violations.empty());
  bool missing_fwd = false;
  for (const auto& v : violations) {
    if (v.reason.find("missing forwarding") != std::string::npos) {
      missing_fwd = true;
    }
  }
  EXPECT_TRUE(missing_fwd);
}

TEST_F(EngineFigure2Test, AnycastTupleCountingAvoidsPhantomError) {
  // §4.3: S anycasts to D or C. Install a plane where A sends P3 to
  // either B or W; via W it reaches D, via B... B forwards P3 to C.
  // Each universe delivers to exactly one destination: no violation.
  auto& b_table = fig.net.table(fig.B);
  for (const auto* r : b_table.all()) {
    if (r->dst_prefix == fig.p34) {
      b_table.erase(r->id);
      break;
    }
  }
  {
    fib::Rule r;
    r.priority = 10;
    r.dst_prefix = fig.p34;
    r.action = fib::Action::forward(fig.C);
    b_table.insert(r);
  }
  // C delivers 10.0.1.0/24 externally (it is an anycast replica).
  {
    fib::Rule r;
    r.priority = 10;
    r.dst_prefix = fig.p34;
    r.action = fib::Action::deliver();
    fig.net.table(fig.C).insert(r);
  }

  EngineConfig cfg;
  cfg.minimize_counting_info = false;
  Session s(fig, b.anycast(fig.P3(), fig.S, {fig.D, fig.C}), cfg);
  s.initialize(fig);

  // P3 at A is ANY{B,W}: universe via W delivers to D (not C), universe
  // via B delivers to C (not D) — the invariant holds in all universes;
  // naive per-destination cross-multiplication would raise a phantom
  // error here.
  for (const auto& v : s.violations()) {
    EXPECT_FALSE(v.pred.intersects(fig.P3()))
        << "phantom anycast violation: " << v.reason;
  }
}

}  // namespace
}  // namespace tulkun::dvm
