// DistributedRuntime over the loopback InProcTransport: the full
// coordinator/device protocol (phases, termination probes, verdict and
// digest collection) without sockets or forks, differentially checked
// against ShardedRuntime.
#include <gtest/gtest.h>

#include "dist_testutil.hpp"

namespace tulkun::eval {
namespace {

HarnessOptions small_opts() {
  HarnessOptions opts;
  opts.max_destinations = 2;  // keep the BDD work small; topology unchanged
  return opts;
}

TEST(DistRuntimeTest, InprocThreeProcessesMatchShardedRuntime) {
  const auto& spec = dataset("INet2");
  const auto opts = small_opts();
  constexpr std::size_t kUpdates = 6;
  const auto base = testutil::sharded_baseline(spec, opts, kUpdates);

  DistOptions dist;
  dist.kind = net::TransportKind::Inproc;
  dist.device_procs = 3;
  dist.n_updates = kUpdates;
  const auto res = dist_run(spec, opts, dist);

  EXPECT_EQ(res.violations, base.violations);
  EXPECT_EQ(res.resets, 0u);
  ASSERT_EQ(res.rows.size(), base.rows.size());
  EXPECT_EQ(res.rows, base.rows);
  EXPECT_EQ(res.incremental_wall_seconds.size(), kUpdates);
  EXPECT_GT(res.metrics.transport.frames_sent, 0u);
}

TEST(DistRuntimeTest, WorldBuilderIsDeterministicAcrossInstances) {
  // Epoch-replay recovery and cross-process digest equality both rest on
  // every process deriving the identical world from (dataset, options).
  const auto& spec = dataset("INet2");
  const auto opts = small_opts();
  Harness h1(spec, opts);
  Harness h2(spec, opts);
  const auto w1 = h1.world_builder(5)();
  const auto w2 = h2.world_builder(5)();

  EXPECT_EQ(w1.plans.size(), w2.plans.size());
  ASSERT_EQ(w1.tables.size(), w2.tables.size());
  ASSERT_EQ(w1.steps.size(), w2.steps.size());
  for (std::size_t i = 0; i < w1.steps.size(); ++i) {
    EXPECT_EQ(w1.steps[i].update.device, w2.steps[i].update.device);
    EXPECT_EQ(w1.steps[i].update.kind, w2.steps[i].update.kind);
    EXPECT_EQ(w1.steps[i].erase_of, w2.steps[i].erase_of);
  }
}

TEST(DistRuntimeTest, InprocRejectsChaosKill) {
  // The chaos hook _exits a process; only the forked transports support it.
  DistOptions dist;
  dist.kind = net::TransportKind::Inproc;
  dist.kill_rank1_at_phase = 1;
  EXPECT_THROW((void)dist_run(dataset("INet2"), small_opts(), dist), Error);
}

}  // namespace
}  // namespace tulkun::eval
