// Shared baseline for the distributed differential tests: drive a plain
// in-process ShardedRuntime through exactly the world every distributed
// process rebuilds locally, and digest the converged state.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "eval/dist_run.hpp"
#include "runtime/digest.hpp"
#include "runtime/distributed.hpp"

namespace tulkun::eval::testutil {

struct ShardedBaseline {
  std::vector<std::string> rows;
  std::uint64_t violations = 0;
};

inline ShardedBaseline sharded_baseline(const DatasetSpec& spec,
                                        const HarnessOptions& opts,
                                        std::size_t n_updates) {
  Harness harness(spec, opts);
  const auto world = harness.world_builder(n_updates)();
  runtime::ShardedRuntime rt(harness.topology(), opts.engine);
  for (const auto& plan : world.plans) rt.install(plan);
  for (DeviceId d = 0; d < static_cast<DeviceId>(world.tables.size()); ++d) {
    rt.post_initialize(d, world.tables[d]);
  }
  rt.wait_quiescent();
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles;
  for (const auto& step : world.steps) {
    fib::FibUpdate u = step.update;
    // Erase steps target whatever id the runtime assigned to the insert
    // they undo — same resolution the DeviceProcess performs.
    if (step.erase_of >= 0) {
      u.rule_id = handles[static_cast<std::size_t>(step.erase_of)]->rule_id;
    }
    handles.push_back(rt.post_rule_update(u.device, u));
    rt.wait_quiescent();
  }
  ShardedBaseline base;
  base.violations = rt.violations().size();
  for (DeviceId d = 0; d < static_cast<DeviceId>(rt.device_count()); ++d) {
    auto rows = runtime::canonical_device_rows(rt.device(d));
    base.rows.insert(base.rows.end(), std::make_move_iterator(rows.begin()),
                     std::make_move_iterator(rows.end()));
  }
  std::sort(base.rows.begin(), base.rows.end());
  return base;
}

}  // namespace tulkun::eval::testutil
