// Multi-process differential tests: a coordinator plus three device
// processes over Unix-domain sockets must converge to verdicts and state
// digests byte-identical to an in-process ShardedRuntime, including when a
// device process is killed mid-run and re-forked.
//
// This binary forks/execs itself as the device processes, so it carries a
// custom main() that routes the --tulkun-device-proc re-exec before gtest.
#include <gtest/gtest.h>

#include "dist_testutil.hpp"

namespace tulkun::eval {
namespace {

HarnessOptions small_opts() {
  HarnessOptions opts;
  opts.max_destinations = 2;
  return opts;
}

TEST(DistDifferentialTest, UdsThreeProcessesMatchShardedRuntime) {
  const auto& spec = dataset("INet2");
  const auto opts = small_opts();
  constexpr std::size_t kUpdates = 6;
  const auto base = testutil::sharded_baseline(spec, opts, kUpdates);

  DistOptions dist;
  dist.kind = net::TransportKind::Unix;
  dist.device_procs = 3;
  dist.n_updates = kUpdates;
  const auto res = dist_run(spec, opts, dist);

  EXPECT_EQ(res.violations, base.violations);
  EXPECT_EQ(res.resets, 0u);
  ASSERT_EQ(res.rows.size(), base.rows.size());
  EXPECT_EQ(res.rows, base.rows);
  EXPECT_GT(res.metrics.transport.frames_sent, 0u);
  EXPECT_GT(res.metrics.transport.bytes_received, 0u);
}

TEST(DistDifferentialTest, KilledDeviceProcessReconvergesIdentically) {
  const auto& spec = dataset("INet2");
  const auto opts = small_opts();
  constexpr std::size_t kUpdates = 6;
  const auto base = testutil::sharded_baseline(spec, opts, kUpdates);

  DistOptions dist;
  dist.kind = net::TransportKind::Unix;
  dist.device_procs = 2;
  dist.n_updates = kUpdates;
  dist.kill_rank1_at_phase = 2;  // rank 1 _exits when phase 2 begins
  const auto res = dist_run(spec, opts, dist);

  // The supervisor re-forked the rank, the coordinator bumped the epoch and
  // replayed, and the surviving senders redialed with backoff.
  EXPECT_GE(res.resets, 1u);
  EXPECT_GE(res.metrics.transport.reconnects, 1u);
  EXPECT_EQ(res.violations, base.violations);
  EXPECT_EQ(res.rows, base.rows);
}

}  // namespace
}  // namespace tulkun::eval

int main(int argc, char** argv) {
  // Forked device-process re-exec path: runs the device role to completion.
  if (tulkun::eval::maybe_run_device_role(argc, argv)) return 0;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
