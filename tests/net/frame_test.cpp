#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tulkun::net {
namespace {

std::vector<std::uint8_t> payload_of(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  std::iota(p.begin(), p.end(), static_cast<std::uint8_t>(1));
  return p;
}

TEST(FrameTest, EncodeLayout) {
  const auto p = payload_of(3);
  const auto bytes = encode_frame(FrameType::kData, p);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 3);
  // magic, little-endian
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  EXPECT_EQ(magic, kFrameMagic);
  EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(FrameType::kData));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(bytes[5 + i]) << (8 * i);
  }
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin() + 9, bytes.end()), p);
}

TEST(FrameTest, RoundTripWholeBuffer) {
  FrameParser parser(1 << 20);
  const auto p = payload_of(100);
  const auto frames = parser.feed(encode_frame(FrameType::kData, p));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kData);
  EXPECT_EQ(frames[0].payload, p);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FrameTest, PartialReadsByteByByte) {
  // Non-blocking sockets hand the parser arbitrary slices; the degenerate
  // 1-byte case exercises every resume point in the header and payload.
  FrameParser parser(1 << 20);
  const auto p = payload_of(17);
  const auto bytes = encode_frame(FrameType::kData, p);
  std::vector<ParsedFrame> got;
  for (const std::uint8_t b : bytes) {
    auto out = parser.feed(std::span<const std::uint8_t>(&b, 1));
    got.insert(got.end(), std::make_move_iterator(out.begin()),
               std::make_move_iterator(out.end()));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, p);
}

TEST(FrameTest, CoalescedFramesInOneFeed) {
  FrameParser parser(1 << 20);
  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto f = encode_frame(
        i % 2 == 0 ? FrameType::kData : FrameType::kHeartbeat, payload_of(i));
    wire.insert(wire.end(), f.begin(), f.end());
  }
  // Split at an arbitrary point that straddles a frame boundary.
  const std::size_t cut = wire.size() / 2;
  auto a = parser.feed(std::span<const std::uint8_t>(wire.data(), cut));
  auto b = parser.feed(
      std::span<const std::uint8_t>(wire.data() + cut, wire.size() - cut));
  EXPECT_EQ(a.size() + b.size(), 5u);
}

TEST(FrameTest, EmptyPayloadFrames) {
  FrameParser parser(16);
  const auto frames = parser.feed(encode_frame(FrameType::kHeartbeat, {}));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHeartbeat);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(FrameTest, TruncatedFrameStaysPending) {
  FrameParser parser(1 << 20);
  const auto bytes = encode_frame(FrameType::kData, payload_of(50));
  const auto frames = parser.feed(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(parser.pending_bytes(), bytes.size() - 1);
}

TEST(FrameTest, BadMagicPoisonsParser) {
  FrameParser parser(1 << 20);
  auto bytes = encode_frame(FrameType::kData, payload_of(4));
  bytes[0] ^= 0xFF;
  try {
    (void)parser.feed(bytes);
    FAIL() << "expected FrameError";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameErrorKind::BadMagic);
  }
  // Poisoned: even valid input rethrows (the connection must be dropped).
  EXPECT_THROW((void)parser.feed(encode_frame(FrameType::kData, {})),
               FrameError);
}

TEST(FrameTest, OversizeDeclaredLengthRejectedBeforeBuffering) {
  // A header claiming a 1GB payload against a 1KB cap must be rejected as
  // soon as the header is complete — no waiting for (or allocating) the
  // gigabyte.
  FrameParser parser(1024);
  std::vector<std::uint8_t> header;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<std::uint8_t>(kFrameMagic >> (8 * i)));
  }
  header.push_back(static_cast<std::uint8_t>(FrameType::kData));
  const std::uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
  }
  try {
    (void)parser.feed(header);
    FAIL() << "expected FrameError";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameErrorKind::Oversize);
  }
}

TEST(FrameTest, UnknownTypeRejected) {
  FrameParser parser(1024);
  auto bytes = encode_frame(FrameType::kData, {});
  bytes[4] = 0x7F;
  try {
    (void)parser.feed(bytes);
    FAIL() << "expected FrameError";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameErrorKind::BadType);
  }
}

}  // namespace
}  // namespace tulkun::net
