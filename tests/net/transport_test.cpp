// SocketTransport behaviour over real Unix-domain sockets: delivery,
// kernel-level partial reads, malformed-input rejection, and the
// kill/restart reconnect path.
#include "net/socket_transport.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>

namespace tulkun::net {
namespace {

/// Fresh socket directory per test (sockets are unlinked by stop()).
class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/tulkun-net-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    for (const auto& ep : local_endpoints(TransportKind::Unix, dir_, 4, 0)) {
      ::unlink(ep.address.c_str());
    }
    ::rmdir(dir_.c_str());
  }

  [[nodiscard]] SocketTransportConfig fast_mesh(PeerId rank,
                                                std::size_t ranks) const {
    auto cfg = mesh_config(rank, local_endpoints(TransportKind::Unix, dir_,
                                                 ranks, 0));
    cfg.backoff_initial_s = 0.01;
    cfg.backoff_max_s = 0.05;  // keep reconnect tests fast
    return cfg;
  }

  std::string dir_;
};

/// Collects delivered frames; wait_for blocks until a predicate holds.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<PeerId, std::vector<std::uint8_t>>> frames;
  std::vector<std::pair<PeerId, bool>> peer_events;

  Transport::Handlers handlers() {
    Transport::Handlers h;
    h.on_frame = [this](PeerId from, std::vector<std::uint8_t> frame) {
      std::lock_guard<std::mutex> lock(mu);
      frames.emplace_back(from, std::move(frame));
      cv.notify_all();
    };
    h.on_peer_state = [this](PeerId peer, bool up) {
      std::lock_guard<std::mutex> lock(mu);
      peer_events.emplace_back(peer, up);
      cv.notify_all();
    };
    return h;
  }

  template <typename Pred>
  bool wait_for(Pred pred, double seconds = 10.0) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(seconds),
                       [&] { return pred(); });
  }
};

std::vector<std::uint8_t> seq_frame(std::uint32_t seq) {
  std::vector<std::uint8_t> f(4);
  for (int i = 0; i < 4; ++i) f[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return f;
}

std::uint32_t seq_of(const std::vector<std::uint8_t>& f) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4 && i < static_cast<int>(f.size()); ++i) {
    v |= static_cast<std::uint32_t>(f[i]) << (8 * i);
  }
  return v;
}

TEST_F(TransportTest, BidirectionalOrderedDelivery) {
  SocketTransport a(fast_mesh(0, 2));
  SocketTransport b(fast_mesh(1, 2));
  Sink sa;
  Sink sb;
  a.start(sa.handlers());
  b.start(sb.handlers());

  constexpr std::uint32_t kN = 20;
  for (std::uint32_t i = 0; i < kN; ++i) {
    a.send(1, seq_frame(i));
    b.send(0, seq_frame(1000 + i));
  }
  ASSERT_TRUE(sb.wait_for([&] { return sb.frames.size() >= kN; }));
  ASSERT_TRUE(sa.wait_for([&] { return sa.frames.size() >= kN; }));

  // Per-pair FIFO: sequence numbers arrive in send order.
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(sb.frames[i].first, 0u);
    EXPECT_EQ(seq_of(sb.frames[i].second), i);
    EXPECT_EQ(sa.frames[i].first, 1u);
    EXPECT_EQ(seq_of(sa.frames[i].second), 1000 + i);
  }

  // Wire counters saw the data frames on both sides.
  std::uint64_t b_received = 0;
  for (const auto& [peer, m] : b.link_metrics()) {
    if (peer == 0) b_received = m.frames_received;
  }
  EXPECT_EQ(b_received, kN);

  a.stop();
  b.stop();
}

/// Raw client socket: lets tests drive the receive path with arbitrary
/// byte timing and malformed input that a real SocketTransport would
/// never produce.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // The listener may not be up yet; retry briefly.
    for (int i = 0; i < 100; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "cannot connect to " << path;
  }
  ~RawClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void write_all(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// One byte per send(): every kernel read on the receiver is partial.
  void dribble(const std::vector<std::uint8_t>& bytes) {
    for (const std::uint8_t b : bytes) {
      ASSERT_EQ(::send(fd_, &b, 1, MSG_NOSIGNAL), 1);
    }
  }

  void hello(PeerId rank) {
    std::vector<std::uint8_t> payload(4);
    for (int i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::uint8_t>(rank >> (8 * i));
    }
    write_all(encode_frame(FrameType::kHello, payload));
  }

 private:
  int fd_ = -1;
};

TEST_F(TransportTest, PartialReadsReassembleFrames) {
  SocketTransport t(fast_mesh(0, 2));
  Sink sink;
  t.start(sink.handlers());

  RawClient client(t.local_endpoint().address);
  client.hello(7);
  // Two frames dribbled one byte at a time: the receiver sees dozens of
  // partial reads and must reassemble both frames intact and in order.
  client.dribble(encode_frame(FrameType::kData, seq_frame(41)));
  client.dribble(encode_frame(FrameType::kData, seq_frame(42)));

  ASSERT_TRUE(sink.wait_for([&] { return sink.frames.size() >= 2; }));
  EXPECT_EQ(sink.frames[0].first, 7u);
  EXPECT_EQ(seq_of(sink.frames[0].second), 41u);
  EXPECT_EQ(seq_of(sink.frames[1].second), 42u);
  t.stop();
}

TEST_F(TransportTest, MalformedHeaderTakesDeadPeerPath) {
  SocketTransport t(fast_mesh(0, 2));
  Sink sink;
  t.start(sink.handlers());

  RawClient client(t.local_endpoint().address);
  client.hello(9);
  ASSERT_TRUE(sink.wait_for([&] {
    for (const auto& [peer, up] : sink.peer_events) {
      if (peer == 9 && up) return true;
    }
    return false;
  }));
  // Garbage magic: the connection must be dropped and counted as a
  // protocol error, with a peer-down event — never a delivered frame.
  client.write_all(std::vector<std::uint8_t>(16, 0xFF));

  ASSERT_TRUE(sink.wait_for([&] {
    for (const auto& [peer, up] : sink.peer_events) {
      if (peer == 9 && !up) return true;
    }
    return false;
  }));
  std::uint64_t errors = 0;
  for (const auto& [peer, m] : t.link_metrics()) {
    if (peer == 9) errors = m.protocol_errors;
  }
  EXPECT_GE(errors, 1u);
  EXPECT_TRUE(sink.frames.empty());
  t.stop();
}

TEST_F(TransportTest, TruncatedFrameNeverDelivered) {
  SocketTransport t(fast_mesh(0, 2));
  Sink sink;
  t.start(sink.handlers());
  {
    RawClient client(t.local_endpoint().address);
    client.hello(5);
    // A data frame header promising 100 bytes, then only 10, then EOF: the
    // partial frame dies with the connection.
    auto frame = encode_frame(FrameType::kData,
                              std::vector<std::uint8_t>(100, 0xAB));
    frame.resize(kFrameHeaderBytes + 10);
    client.write_all(frame);
  }  // close
  // Peer-down surfaces on EOF; the partial frame was discarded.
  ASSERT_TRUE(sink.wait_for([&] {
    for (const auto& [peer, up] : sink.peer_events) {
      if (peer == 5 && !up) return true;
    }
    return false;
  }));
  EXPECT_TRUE(sink.frames.empty());
  t.stop();
}

TEST_F(TransportTest, KillRestartReconnectsWithoutDuplicates) {
  SocketTransport a(fast_mesh(0, 2));
  Sink sa;
  a.start(sa.handlers());

  std::set<std::uint32_t> first_life;
  {
    SocketTransport b(fast_mesh(1, 2));
    Sink sb;
    b.start(sb.handlers());
    for (std::uint32_t i = 0; i < 10; ++i) a.send(1, seq_frame(i));
    ASSERT_TRUE(sb.wait_for([&] { return sb.frames.size() >= 10; }));
    for (const auto& [from, f] : sb.frames) first_life.insert(seq_of(f));
    b.stop();
  }  // peer 1 is dead; its socket file is gone

  // Queued while the peer is down: these ride the send queue across
  // reconnect attempts with exponential backoff.
  for (std::uint32_t i = 10; i < 20; ++i) a.send(1, seq_frame(i));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  SocketTransport b2(fast_mesh(1, 2));
  Sink sb2;
  b2.start(sb2.handlers());
  ASSERT_TRUE(sb2.wait_for([&] { return sb2.frames.size() >= 10; }));

  // The restarted peer got exactly the post-kill frames — every one of
  // them, none twice, and nothing from the first life resent.
  std::set<std::uint32_t> second_life;
  for (const auto& [from, f] : sb2.frames) {
    EXPECT_TRUE(second_life.insert(seq_of(f)).second)
        << "duplicate frame " << seq_of(f);
  }
  for (std::uint32_t i = 10; i < 20; ++i) EXPECT_TRUE(second_life.count(i));
  for (const std::uint32_t s : second_life) EXPECT_FALSE(first_life.count(s));

  std::uint64_t reconnects = 0;
  for (const auto& [peer, m] : a.link_metrics()) {
    if (peer == 1) reconnects = m.reconnects;
  }
  EXPECT_GE(reconnects, 1u);
  a.stop();
  b2.stop();
}

}  // namespace
}  // namespace tulkun::net
