#include "core/bitset.hpp"

#include <gtest/gtest.h>

namespace tulkun {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset b(100);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(DynBitset, AndOrSubtract) {
  DynBitset a(128);
  DynBitset b(128);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(2);

  DynBitset and_ab = a;
  and_ab &= b;
  EXPECT_EQ(and_ab.count(), 1u);
  EXPECT_TRUE(and_ab.test(100));

  DynBitset or_ab = a;
  or_ab |= b;
  EXPECT_EQ(or_ab.count(), 3u);

  DynBitset diff = a;
  diff.subtract(b);
  EXPECT_EQ(diff.count(), 1u);
  EXPECT_TRUE(diff.test(1));
}

TEST(DynBitset, Intersects) {
  DynBitset a(64);
  DynBitset b(64);
  a.set(5);
  b.set(6);
  EXPECT_FALSE(a.intersects(b));
  b.set(5);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynBitset, ForEachVisitsAllSetBits) {
  DynBitset b(130);
  for (std::size_t i = 0; i < 130; i += 13) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < 130; i += 13) expected.push_back(i);
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace tulkun
