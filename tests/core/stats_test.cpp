#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace tulkun {
namespace {

TEST(Samples, QuantilesOfKnownSequence) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.8), 80.2, 1e-9);
}

TEST(Samples, SingleSample) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, FractionBelow) {
  Samples s;
  for (int i = 0; i < 10; ++i) s.add(i);  // 0..9
  EXPECT_DOUBLE_EQ(s.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(Samples{}.fraction_below(1.0), 0.0);
}

TEST(Samples, QuantileOnEmptyThrows) {
  Samples s;
  EXPECT_THROW((void)s.quantile(0.5), InternalError);
}

TEST(Samples, UnsortedInsertOrderIrrelevant) {
  Samples a;
  Samples b;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(v);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(v);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.min(), b.min());
}

TEST(Samples, CdfIsMonotone) {
  Samples s;
  for (int i = 0; i < 37; ++i) s.add((i * 7919) % 100);
  const auto cdf = s.cdf(11);
  ASSERT_EQ(cdf.size(), 11u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(5e-9), "5ns");
  EXPECT_EQ(format_duration(1.5e-5), "15.00us");
  EXPECT_EQ(format_duration(2.5e-3), "2.50ms");
  EXPECT_EQ(format_duration(3.25), "3.25s");
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2048), "2.0KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5MB");
}

}  // namespace
}  // namespace tulkun
