#include "core/interval_set.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace tulkun {
namespace {

TEST(IntervalSet, EmptyBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet s(Interval{10, 20});
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
  EXPECT_FALSE(s.contains(9));
}

TEST(IntervalSet, EmptyIntervalIgnored) {
  IntervalSet s(Interval{5, 5});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, InsertMergesAdjacent) {
  IntervalSet s;
  s.insert(Interval{0, 10});
  s.insert(Interval{10, 20});
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals().front(), (Interval{0, 20}));
}

TEST(IntervalSet, InsertMergesOverlap) {
  IntervalSet s{Interval{0, 15}, Interval{10, 20}, Interval{30, 40}};
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.size(), 30u);
}

TEST(IntervalSet, UniteIntersectSubtract) {
  const IntervalSet a{Interval{0, 10}, Interval{20, 30}};
  const IntervalSet b{Interval{5, 25}};

  const auto u = a.unite(b);
  EXPECT_EQ(u, (IntervalSet{Interval{0, 30}}));

  const auto i = a.intersect(b);
  EXPECT_EQ(i, (IntervalSet{Interval{5, 10}, Interval{20, 25}}));

  const auto d = a.subtract(b);
  EXPECT_EQ(d, (IntervalSet{Interval{0, 5}, Interval{25, 30}}));
}

TEST(IntervalSet, IntersectsPredicate) {
  const IntervalSet a{Interval{0, 10}};
  EXPECT_TRUE(a.intersects(IntervalSet{Interval{9, 12}}));
  EXPECT_FALSE(a.intersects(IntervalSet{Interval{10, 12}}));
  EXPECT_FALSE(a.intersects(IntervalSet{}));
}

class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, SetAlgebraLaws) {
  Rng rng(GetParam());
  const auto random_set = [&]() {
    IntervalSet s;
    const int n = static_cast<int>(rng.uniform(1, 5));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t lo = rng.uniform(0, 90);
      s.insert(Interval{lo, lo + rng.uniform(1, 15)});
    }
    return s;
  };
  const auto a = random_set();
  const auto b = random_set();

  // Size arithmetic: |a| = |a∩b| + |a−b|.
  EXPECT_EQ(a.size(), a.intersect(b).size() + a.subtract(b).size());
  // |a∪b| = |a| + |b| − |a∩b|.
  EXPECT_EQ(a.unite(b).size(), a.size() + b.size() - a.intersect(b).size());
  // Commutativity.
  EXPECT_EQ(a.intersect(b), b.intersect(a));
  EXPECT_EQ(a.unite(b), b.unite(a));
  // a − b never intersects b.
  EXPECT_FALSE(a.subtract(b).intersects(b));
  // Point membership agreement on a sample.
  for (std::uint64_t x = 0; x < 110; x += 7) {
    EXPECT_EQ(a.unite(b).contains(x), a.contains(x) || b.contains(x));
    EXPECT_EQ(a.intersect(b).contains(x), a.contains(x) && b.contains(x));
    EXPECT_EQ(a.subtract(b).contains(x), a.contains(x) && !b.contains(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace tulkun
