#include "baseline/centralized.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/fib_synth.hpp"
#include "topo/generators.hpp"

namespace tulkun::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::fat_tree(4);

  fib::NetworkFib make_net() {
    return eval::synthesize(topo, eval::SynthOptions{2, 0, 42});
  }

  QuerySet make_queries(fib::NetworkFib& net, std::uint32_t slack = 0) {
    return all_pair_queries(topo, net.space(), slack);
  }
};

TEST_F(BaselineTest, QueriesCoverAllTorPairs) {
  auto net = make_net();
  const auto queries = make_queries(net);
  // fat_tree(4): 8 ToRs (prefix owners) as destinations; ingress = every
  // other device that can reach them.
  std::size_t tor_pairs = 0;
  for (const auto& q : queries) {
    EXPECT_NE(q.ingress, q.dst);
    if (!topo.prefixes(q.ingress).empty()) ++tor_pairs;
  }
  EXPECT_EQ(tor_pairs, 8u * 7u);
}

TEST_F(BaselineTest, CollectionLatencyPositive) {
  EXPECT_GT(collection_latency(topo, 0), 0.0);
  EXPECT_GE(update_latency(topo, 0, 1), 0.0);
  EXPECT_EQ(update_latency(topo, 0, 0), 0.0);
}

class EveryBaseline : public BaselineTest,
                      public ::testing::WithParamInterface<int> {
 protected:
  std::unique_ptr<CentralizedVerifier> make_tool() {
    switch (GetParam()) {
      case 0: return make_ap();
      case 1: return make_apkeep();
      case 2: return make_deltanet();
      case 3: return make_veriflow();
      default: return make_flash();
    }
  }
};

TEST_P(EveryBaseline, CleanPlanePassesBurst) {
  auto tool = make_tool();
  auto net = make_net();
  const auto queries = make_queries(net);
  const double t = tool->burst(net, queries);
  EXPECT_GE(t, 0.0);
  EXPECT_TRUE(tool->violations().empty()) << tool->name();
  EXPECT_GT(tool->memory_bytes(), 0u);
}

TEST_P(EveryBaseline, BlackholeDetectedInBurst) {
  auto tool = make_tool();
  auto net = make_net();
  // Ingress-local blackhole: p1_tor0 drops traffic toward p0_tor0's
  // prefix, so exactly that (ingress, dst) pair loses reachability.
  eval::inject_blackhole(net, topo.device("p1_tor0"),
                         packet::Ipv4Prefix::parse("10.0.0.0/24"));
  const auto queries = make_queries(net);
  (void)tool->burst(net, queries);
  ASSERT_FALSE(tool->violations().empty()) << tool->name();
  for (const auto& v : tool->violations()) {
    EXPECT_EQ(v.dst, topo.device("p0_tor0")) << tool->name();
    EXPECT_EQ(v.ingress, topo.device("p1_tor0")) << tool->name();
  }
}

TEST_P(EveryBaseline, IncrementalDetectsAndClears) {
  auto tool = make_tool();
  auto net = make_net();
  const auto queries = make_queries(net);
  (void)tool->burst(net, queries);
  ASSERT_TRUE(tool->violations().empty());

  // Break p0_tor0 -> everything: drop its uplink traffic toward
  // p1_tor0's prefix at the ToR itself.
  fib::Rule bad;
  bad.priority = 500;
  bad.dst_prefix = packet::Ipv4Prefix::parse("10.1.0.0/24");
  bad.action = fib::Action::drop();
  auto upd = fib::FibUpdate::insert(topo.device("p0_tor0"), bad);
  auto deltas = fib::apply_update(net, upd);
  (void)tool->incremental(net, upd, deltas, queries);
  EXPECT_FALSE(tool->violations().empty()) << tool->name();

  auto erase = fib::FibUpdate::erase(topo.device("p0_tor0"), upd.rule_id);
  deltas = fib::apply_update(net, erase);
  (void)tool->incremental(net, erase, deltas, queries);
  EXPECT_TRUE(tool->violations().empty()) << tool->name();
}

TEST_P(EveryBaseline, ReverifyIsConsistentWithBurst) {
  auto tool = make_tool();
  auto net = make_net();
  eval::inject_blackhole(net, topo.device("p1_tor0"),
                         packet::Ipv4Prefix::parse("10.0.0.0/24"));
  const auto queries = make_queries(net);
  (void)tool->burst(net, queries);
  const auto after_burst = tool->violations().size();
  (void)tool->reverify(net, queries);
  EXPECT_EQ(tool->violations().size(), after_burst) << tool->name();
}

INSTANTIATE_TEST_SUITE_P(Tools, EveryBaseline, ::testing::Range(0, 5));

TEST_F(BaselineTest, AllBaselinesHaveDistinctNames) {
  const auto tools = make_all_baselines();
  ASSERT_EQ(tools.size(), 5u);
  std::set<std::string> names;
  for (const auto& t : tools) names.insert(t->name());
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace tulkun::baseline
