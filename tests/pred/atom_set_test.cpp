#include "pred/atom_set.hpp"

#include <gtest/gtest.h>

#include "packet/packet_set.hpp"

namespace tulkun::pred {
namespace {

packet::Ipv4Prefix pfx(std::uint32_t addr, std::uint8_t len) {
  return packet::Ipv4Prefix{addr, len};
}

class AtomStoreTest : public ::testing::Test {
 protected:
  bdd::Manager mgr{packet::Layout::kNumVars};
  AtomStore store{mgr};
};

TEST_F(AtomStoreTest, TerminalsArePreInterned) {
  EXPECT_EQ(store.addr_count(kAtomEmpty), 0u);
  EXPECT_EQ(store.addr_count(kAtomAll), 1ull << 32);
  EXPECT_TRUE(store.intervals(kAtomEmpty).empty());
  ASSERT_EQ(store.intervals(kAtomAll).size(), 1u);
  EXPECT_EQ(store.intervals(kAtomAll)[0], (Interval{0, 1ull << 32}));
}

TEST_F(AtomStoreTest, InterningIsCanonical) {
  const AtomRef a = store.from_prefix(pfx(0x0a000000, 8));  // 10.0.0.0/8
  const AtomRef b = store.from_prefix(pfx(0x0a000000, 8));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.addr_count(a), 1ull << 24);

  // The same set reached through different operations interns to one id.
  const AtomRef lo = store.from_range(0x0a000000, 0x0a800000);
  const AtomRef hi = store.from_range(0x0a800000, 0x0b000000);
  EXPECT_EQ(store.unite(lo, hi), a);
  // Adjacent halves coalesce to a single interval.
  EXPECT_EQ(store.intervals(a).size(), 1u);
}

TEST_F(AtomStoreTest, SetAlgebra) {
  const AtomRef a = store.from_prefix(pfx(0x0a000000, 8));
  const AtomRef b = store.from_prefix(pfx(0x0a100000, 12));  // 10.16/12 ⊂ a
  const AtomRef c = store.from_prefix(pfx(0x14000000, 8));   // 20/8, disjoint

  EXPECT_EQ(store.intersect(a, b), b);
  EXPECT_EQ(store.intersect(a, c), kAtomEmpty);
  EXPECT_EQ(store.unite(a, kAtomEmpty), a);
  EXPECT_EQ(store.intersect(a, kAtomAll), a);
  EXPECT_EQ(store.subtract(a, a), kAtomEmpty);
  EXPECT_EQ(store.subtract(b, c), b);
  EXPECT_EQ(store.addr_count(store.subtract(a, b)),
            (1ull << 24) - (1ull << 20));
  EXPECT_EQ(store.complement(kAtomEmpty), kAtomAll);
  EXPECT_EQ(store.complement(store.complement(a)), a);

  EXPECT_TRUE(store.intersects(a, b));
  EXPECT_FALSE(store.intersects(a, c));
  EXPECT_TRUE(store.subset(b, a));
  EXPECT_FALSE(store.subset(a, b));
  EXPECT_TRUE(store.subset(kAtomEmpty, c));
  EXPECT_TRUE(store.subset(c, kAtomAll));
}

TEST_F(AtomStoreTest, HeaderCountMatchesBddSatCount) {
  const AtomRef a = store.from_prefix(pfx(0x0a000000, 8));
  const AtomRef odd = store.unite(a, store.from_range(17, 23));
  for (const AtomRef r : {kAtomEmpty, kAtomAll, a, odd}) {
    EXPECT_DOUBLE_EQ(store.header_count(r),
                     mgr.sat_count(store.materialize(r)));
  }
}

TEST_F(AtomStoreTest, HullMatchesLongestCommonPrefix) {
  const AtomRef a = store.from_prefix(pfx(0x0a000000, 8));
  EXPECT_EQ(store.hull(a), pfx(0x0a000000, 8));

  // 10.0/9 ∪ 10.128/9 hulls back to 10/8; 10/8 ∪ 20/8 hulls to 0/3.
  const AtomRef split = store.unite(store.from_prefix(pfx(0x0a000000, 9)),
                                    store.from_prefix(pfx(0x0a800000, 9)));
  EXPECT_EQ(store.hull(split), pfx(0x0a000000, 8));
  const AtomRef wide = store.unite(a, store.from_prefix(pfx(0x14000000, 8)));
  EXPECT_EQ(store.hull(wide), pfx(0x00000000, 3));
  EXPECT_EQ(store.hull(kAtomAll), pfx(0, 0));
}

TEST_F(AtomStoreTest, MaterializePromoteRoundTrip) {
  const AtomRef a = store.unite(store.from_prefix(pfx(0x0a000000, 8)),
                                store.from_range(100, 200));
  const bdd::NodeRef r = store.materialize(a);
  EXPECT_EQ(store.promote(r), a);
  // Memoized: a second materialize returns the identical ref.
  EXPECT_EQ(store.materialize(a), r);
  EXPECT_EQ(store.materialize(kAtomEmpty), bdd::kFalse);
  EXPECT_EQ(store.materialize(kAtomAll), bdd::kTrue);
  EXPECT_EQ(store.promote(bdd::kFalse), kAtomEmpty);
  EXPECT_EQ(store.promote(bdd::kTrue), kAtomAll);
}

TEST_F(AtomStoreTest, PromoteRejectsMultiFieldPredicates) {
  // A src-prefix constraint depends on non-dst variables.
  packet::PacketSpace space;
  const auto p = space.src_prefix(pfx(0x0a000000, 8));
  EXPECT_EQ(space.atoms().promote(p.ref()), kNoAtom);
  // dst ∧ src is still multi-field.
  const auto both = p & space.dst_prefix(pfx(0x14000000, 8));
  EXPECT_EQ(space.atoms().promote(both.ref()), kNoAtom);
}

TEST_F(AtomStoreTest, PromoteRecoversWireFormSets) {
  const AtomRef a = store.from_intervals({{0, 16}, {32, 48}, {256, 4096}});
  EXPECT_EQ(store.promote(store.materialize(a)), a);
  EXPECT_EQ(store.addr_count(a), 16u + 16u + 3840u);
}

TEST_F(AtomStoreTest, GaugesTrackStore) {
  const auto before = atom_counters_snapshot();
  {
    bdd::Manager m2{packet::Layout::kNumVars};
    AtomStore other{m2};
    (void)other.from_range(12345, 99999);
    const auto during = atom_counters_snapshot();
    EXPECT_GT(during.atom_table_size, before.atom_table_size);
  }
  // Destruction subtracts the store's gauge contribution back out.
  const auto after = atom_counters_snapshot();
  EXPECT_EQ(after.atom_table_size, before.atom_table_size);
}

TEST_F(AtomStoreTest, MemoSurvivesLockstepMode) {
  set_atom_lockstep_check(true);
  const AtomRef a = store.from_prefix(pfx(0xc0a80000, 16));
  const AtomRef b = store.from_prefix(pfx(0xc0a80100, 24));
  EXPECT_EQ(store.unite(a, b), a);
  EXPECT_EQ(store.promote(store.materialize(a)), a);
  set_atom_lockstep_check(false);
}

}  // namespace
}  // namespace tulkun::pred
