#include "spec/parser.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace tulkun::spec {
namespace {

class SpecParserTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::figure2_network();
  packet::PacketSpace space;
  SpecParser parser{topo, space};
};

TEST_F(SpecParserTest, PacketSpaceAtoms) {
  EXPECT_EQ(parser.parse_packets("dstIP=10.0.0.0/23"),
            space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  EXPECT_EQ(parser.parse_packets("dstPort=80"), space.dst_port(80));
  EXPECT_EQ(parser.parse_packets("dstPort=10-20"),
            space.field_range(packet::Field::DstPort, 10, 20));
  EXPECT_EQ(parser.parse_packets("proto=6"), space.proto(6));
  EXPECT_TRUE(parser.parse_packets("*").is_all());
}

TEST_F(SpecParserTest, PacketSpaceCombinators) {
  const auto p = parser.parse_packets("dstIP=10.0.1.0/24 & dstPort!=80");
  EXPECT_EQ(p, space.dst_prefix(packet::Ipv4Prefix::parse("10.0.1.0/24")) -
                   space.dst_port(80));
  const auto u =
      parser.parse_packets("dstIP=10.0.0.0/24 | dstIP=10.0.1.0/24");
  EXPECT_EQ(u, space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  const auto n = parser.parse_packets("!(dstPort=80)");
  EXPECT_EQ(n, ~space.dst_port(80));
  const auto grouped =
      parser.parse_packets("(dstPort=80 | dstPort=443) & dstIP=10.0.0.0/8");
  EXPECT_EQ(grouped,
            (space.dst_port(80) | space.dst_port(443)) &
                space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST_F(SpecParserTest, PacketSpaceErrors) {
  EXPECT_THROW((void)parser.parse_packets("badField=1"), SpecError);
  EXPECT_THROW((void)parser.parse_packets("dstIP=10.0.0.0/23 &"), SpecError);
  EXPECT_THROW((void)parser.parse_packets("dstPort=99999999"), Error);
}

TEST_F(SpecParserTest, PathExprWithOptions) {
  const auto pe =
      parser.parse_path("S .* W .* D ; loop_free ; length <= shortest+1");
  EXPECT_TRUE(pe.loop_free);
  ASSERT_EQ(pe.filters.size(), 1u);
  EXPECT_EQ(pe.filters[0].cmp, LengthFilter::Cmp::Le);
  EXPECT_EQ(pe.filters[0].base, LengthFilter::Base::Shortest);
  EXPECT_EQ(pe.filters[0].offset, 1);
  EXPECT_TRUE(pe.bounded());
}

TEST_F(SpecParserTest, PathExprConstFilter) {
  const auto pe = parser.parse_path("S .* D ; length < 5");
  ASSERT_EQ(pe.filters.size(), 1u);
  EXPECT_EQ(pe.filters[0].cmp, LengthFilter::Cmp::Lt);
  EXPECT_EQ(pe.filters[0].base, LengthFilter::Base::Const);
  EXPECT_EQ(pe.filters[0].offset, 5);
  EXPECT_FALSE(pe.loop_free);
  EXPECT_TRUE(pe.bounded());
}

TEST_F(SpecParserTest, UnboundedPathDetected) {
  const auto pe = parser.parse_path("S .* D");
  EXPECT_FALSE(pe.bounded());
  const auto lower_only = parser.parse_path("S .* D ; length >= 2");
  EXPECT_FALSE(lower_only.bounded());
}

TEST_F(SpecParserTest, BehaviorAtoms) {
  const auto b = parser.parse_behavior("exist >= 1 : { S .* D ; loop_free }");
  EXPECT_EQ(b.kind, BehaviorKind::Atom);
  EXPECT_EQ(b.op, MatchOpKind::Exist);
  EXPECT_EQ(b.count, (CountExpr{CountExpr::Cmp::Ge, 1}));

  const auto eq = parser.parse_behavior(
      "equal : { S .* D ; length == shortest }");
  EXPECT_EQ(eq.op, MatchOpKind::Equal);

  const auto sub = parser.parse_behavior("subset : { S .* D ; loop_free }");
  EXPECT_EQ(sub.op, MatchOpKind::Subset);
}

TEST_F(SpecParserTest, BehaviorComposition) {
  const auto b = parser.parse_behavior(
      "(exist >= 1 : { S .* D ; loop_free }) and "
      "(exist == 0 : { S .* C ; loop_free }) or "
      "not (exist > 2 : { S .* W ; loop_free })");
  // 'and' binds tighter than 'or'.
  ASSERT_EQ(b.kind, BehaviorKind::Or);
  ASSERT_EQ(b.children.size(), 2u);
  EXPECT_EQ(b.children[0].kind, BehaviorKind::And);
  EXPECT_EQ(b.children[1].kind, BehaviorKind::Not);
  EXPECT_EQ(b.atoms().size(), 3u);
}

TEST_F(SpecParserTest, FullDocument) {
  const auto invs = parser.parse(
      "# the paper's Figure 2b invariant\n"
      "invariant waypoint:\n"
      "  packets: dstIP=10.0.0.0/23\n"
      "  ingress: S\n"
      "  behavior: exist >= 1 : { S .* W .* D ; loop_free }\n"
      "\n"
      "invariant multi:\n"
      "  packets: dstIP=10.0.0.0/24 & dstPort=80\n"
      "  ingress: S, B\n"
      "  behavior: exist >= 1 : { S .* D ; loop_free } or "
      "exist >= 1 : { B .* D ; loop_free }\n"
      "  faults: (A,B) ; (B,W),(B,D)\n"
      "  faults: any 2\n");
  ASSERT_EQ(invs.size(), 2u);
  EXPECT_EQ(invs[0].name, "waypoint");
  EXPECT_EQ(invs[0].ingress_set.size(), 1u);
  EXPECT_EQ(invs[0].ingress_set[0], topo.device("S"));
  EXPECT_TRUE(invs[0].faults.empty());

  EXPECT_EQ(invs[1].ingress_set.size(), 2u);
  EXPECT_EQ(invs[1].faults.scenes.size(), 2u);
  EXPECT_EQ(invs[1].faults.any_k, 2u);
  EXPECT_EQ(invs[1].faults.scenes[1].failed.size(), 2u);
}

TEST_F(SpecParserTest, IngressStar) {
  const auto all = parser.parse_ingress("*");
  EXPECT_EQ(all.size(), topo.device_count());
}

TEST_F(SpecParserTest, DocumentErrors) {
  EXPECT_THROW((void)parser.parse(""), SpecError);
  EXPECT_THROW((void)parser.parse("invariant x:\n  ingress: S\n"), SpecError);
  EXPECT_THROW((void)parser.parse("packets: *\n"), SpecError);
  EXPECT_THROW(
      (void)parser.parse("invariant x:\n  packets: *\n  ingress: S\n"
                         "  behavior: exist >= 1 : { Z .* D }\n"),
      Error);  // unknown device Z
}

}  // namespace
}  // namespace tulkun::spec
