#include "spec/check.hpp"

#include <gtest/gtest.h>

#include "regex/nfa.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun::spec {
namespace {

class CheckTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::figure2_network();
  packet::PacketSpace space;
  Builtins b{topo, space};
  DeviceId S = topo.device("S");
  DeviceId W = topo.device("W");
  DeviceId D = topo.device("D");

  regex::Dfa compile(const PathExpr& pe) {
    return regex::Dfa::determinize(regex::build_nfa(pe.ast)).minimize();
  }
};

TEST_F(CheckTest, FirstAndLastSymbols) {
  const auto pe = b.waypoint_paths(S, W, D);
  const auto dfa = compile(pe);
  const auto firsts = first_symbols(dfa, topo.device_count());
  ASSERT_EQ(firsts.size(), 1u);
  EXPECT_EQ(firsts[0], S);
  const auto lasts = last_symbols(dfa, topo.device_count());
  ASSERT_EQ(lasts.size(), 1u);
  EXPECT_EQ(lasts[0], D);
}

TEST_F(CheckTest, ValidInvariantPasses) {
  const auto inv =
      b.reachability(space.dst_prefix(packet::Ipv4Prefix::parse(
                         "10.0.0.0/23")),
                     S, D);
  EXPECT_TRUE(validate(inv, topo, space).empty());
  EXPECT_NO_THROW(ensure_valid(inv, topo, space));
}

TEST_F(CheckTest, DestinationPrefixMismatchFlagged) {
  // Packet space points at 99.0.0.0/8, but D owns 10.0.0.0/23: the paper's
  // convenience check must raise an error.
  const auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("99.0.0.0/8")), S, D);
  const auto problems = validate(inv, topo, space);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("does not reach any prefix"), std::string::npos);
  EXPECT_THROW(ensure_valid(inv, topo, space), SpecError);
}

TEST_F(CheckTest, UnboundedPathFlagged) {
  auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")), S, D);
  inv.behavior.path.loop_free = false;  // now unbounded
  const auto problems = validate(inv, topo, space);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unbounded"), std::string::npos);
}

TEST_F(CheckTest, WrongIngressFlagged) {
  auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")), S, D);
  inv.ingress_set = {W};  // regex requires paths to start at S
  const auto problems = validate(inv, topo, space);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("cannot start"), std::string::npos);
}

TEST_F(CheckTest, EmptyIngressFlagged) {
  auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")), S, D);
  inv.ingress_set.clear();
  const auto problems = validate(inv, topo, space);
  EXPECT_FALSE(problems.empty());
}

TEST_F(CheckTest, BadFaultSceneFlagged) {
  auto inv = b.reachability(
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")), S, D);
  inv.faults.scenes.push_back(
      FaultScene::of({LinkId{S, D}}));  // S-D link does not exist
  const auto problems = validate(inv, topo, space);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("non-existent link"), std::string::npos);
}

TEST_F(CheckTest, FaultSceneHelpers) {
  const auto scene =
      FaultScene::of({LinkId{3, 1}, LinkId{1, 3}, LinkId{0, 2}});
  EXPECT_EQ(scene.failed.size(), 2u);  // deduped + canonicalized
  EXPECT_TRUE(scene.contains(LinkId{3, 1}));
  EXPECT_TRUE(scene.contains(LinkId{1, 3}));
  EXPECT_FALSE(scene.contains(LinkId{0, 1}));
  const auto sub = FaultScene::of({LinkId{1, 3}});
  EXPECT_TRUE(scene.superset_of(sub));
  EXPECT_FALSE(sub.superset_of(scene));
  EXPECT_TRUE(scene.superset_of(FaultScene{}));
}

}  // namespace
}  // namespace tulkun::spec
