#include "spec/builtins.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace tulkun::spec {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::figure2_network();
  packet::PacketSpace space;
  Builtins b{topo, space};
  DeviceId S = topo.device("S");
  DeviceId W = topo.device("W");
  DeviceId D = topo.device("D");
  DeviceId C = topo.device("C");
};

TEST_F(BuiltinsTest, ReachabilityShape) {
  const auto inv = b.reachability(space.all(), S, D);
  EXPECT_EQ(inv.ingress_set, (std::vector<DeviceId>{S}));
  EXPECT_EQ(inv.behavior.kind, BehaviorKind::Atom);
  EXPECT_EQ(inv.behavior.op, MatchOpKind::Exist);
  EXPECT_EQ(inv.behavior.count, (CountExpr{CountExpr::Cmp::Ge, 1}));
  EXPECT_TRUE(inv.behavior.path.loop_free);
  EXPECT_TRUE(inv.behavior.path.bounded());
}

TEST_F(BuiltinsTest, IsolationCountsZero) {
  const auto inv = b.isolation(space.all(), S, D);
  EXPECT_EQ(inv.behavior.count, (CountExpr{CountExpr::Cmp::Eq, 0}));
}

TEST_F(BuiltinsTest, WaypointRegexMentionsAllThree) {
  const auto inv = b.waypoint(space.all(), S, W, D);
  EXPECT_NE(inv.behavior.path.regex_text.find("S"), std::string::npos);
  EXPECT_NE(inv.behavior.path.regex_text.find("W"), std::string::npos);
  EXPECT_NE(inv.behavior.path.regex_text.find("D"), std::string::npos);
}

TEST_F(BuiltinsTest, BoundedReachabilityFilter) {
  const auto inv = b.bounded_reachability(space.all(), S, D, 3);
  ASSERT_EQ(inv.behavior.path.filters.size(), 1u);
  const auto& f = inv.behavior.path.filters[0];
  EXPECT_EQ(f.cmp, LengthFilter::Cmp::Le);
  EXPECT_EQ(f.base, LengthFilter::Base::Const);
  EXPECT_EQ(f.offset, 3);
  EXPECT_FALSE(f.symbolic());
}

TEST_F(BuiltinsTest, ShortestPlusFilterIsSymbolic) {
  const auto inv = b.shortest_plus_reachability(space.all(), S, D, 2);
  ASSERT_EQ(inv.behavior.path.filters.size(), 1u);
  EXPECT_TRUE(inv.behavior.path.filters[0].symbolic());
  EXPECT_EQ(inv.behavior.path.filters[0].offset, 2);
}

TEST_F(BuiltinsTest, AllShortestPathUsesEqual) {
  const auto inv = b.all_shortest_path(space.all(), S, D);
  EXPECT_EQ(inv.behavior.op, MatchOpKind::Equal);
  ASSERT_EQ(inv.behavior.path.filters.size(), 1u);
  EXPECT_EQ(inv.behavior.path.filters[0].cmp, LengthFilter::Cmp::Eq);
  EXPECT_TRUE(inv.behavior.path.filters[0].symbolic());
}

TEST_F(BuiltinsTest, NonRedundantCountsExactlyOne) {
  const auto inv = b.non_redundant_reachability(space.all(), S, D);
  EXPECT_EQ(inv.behavior.count, (CountExpr{CountExpr::Cmp::Eq, 1}));
}

TEST_F(BuiltinsTest, MulticastIsConjunction) {
  const auto inv = b.multicast(space.all(), S, {D, C});
  EXPECT_EQ(inv.behavior.kind, BehaviorKind::And);
  EXPECT_EQ(inv.behavior.atoms().size(), 2u);
}

TEST_F(BuiltinsTest, AnycastIsExclusiveDisjunction) {
  const auto inv = b.anycast(space.all(), S, {D, C});
  EXPECT_EQ(inv.behavior.kind, BehaviorKind::Or);
  ASSERT_EQ(inv.behavior.children.size(), 2u);
  for (const auto& disjunct : inv.behavior.children) {
    EXPECT_EQ(disjunct.kind, BehaviorKind::And);
    EXPECT_EQ(disjunct.children.size(), 2u);
  }
  EXPECT_EQ(inv.behavior.atoms().size(), 4u);
}

TEST_F(BuiltinsTest, MultiIngressUnionRegex) {
  const auto inv = b.multi_ingress_reachability(
      space.all(), {S, topo.device("B")}, D);
  EXPECT_EQ(inv.ingress_set.size(), 2u);
  EXPECT_EQ(inv.behavior.path.ast.kind, regex::AstKind::Union);
}

TEST_F(BuiltinsTest, AttachedPackets) {
  const auto pd = b.attached_packets(D);
  EXPECT_EQ(pd, space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23")));
  EXPECT_TRUE(b.attached_packets(S).empty());
}

TEST_F(BuiltinsTest, LengthFilterAdmits) {
  LengthFilter le{LengthFilter::Cmp::Le, LengthFilter::Base::Shortest, 1};
  EXPECT_TRUE(le.admits(3, 2));
  EXPECT_FALSE(le.admits(4, 2));
  EXPECT_EQ(le.upper_bound(2), 3u);

  LengthFilter eq{LengthFilter::Cmp::Eq, LengthFilter::Base::Const, 4};
  EXPECT_TRUE(eq.admits(4, 0));
  EXPECT_FALSE(eq.admits(3, 0));
  EXPECT_EQ(eq.upper_bound(0), 4u);

  LengthFilter ge{LengthFilter::Cmp::Ge, LengthFilter::Base::Const, 2};
  EXPECT_FALSE(ge.upper_bound(0).has_value());
  EXPECT_TRUE(ge.admits(2, 0));
  EXPECT_FALSE(ge.admits(1, 0));

  LengthFilter lt{LengthFilter::Cmp::Lt, LengthFilter::Base::Shortest, 0};
  EXPECT_EQ(lt.upper_bound(5), 4u);
  EXPECT_EQ(lt.to_string(), "< shortest");
  EXPECT_EQ(le.to_string(), "<= shortest+1");
}

}  // namespace
}  // namespace tulkun::spec
