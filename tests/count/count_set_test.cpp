#include "count/count_set.hpp"

#include <gtest/gtest.h>

namespace tulkun::count {
namespace {

CountSet set_of(std::initializer_list<std::uint32_t> scalars) {
  CountSet s;
  for (const auto v : scalars) s.insert(CountVec{v});
  return s;
}

TEST(CountSet, Constructors) {
  EXPECT_TRUE(CountSet{}.empty());
  const auto z = CountSet::zeros(2);
  EXPECT_EQ(z.size(), 1u);
  EXPECT_EQ(z.elems().front(), (CountVec{0, 0}));
  const auto u = CountSet::unit(3, 1);
  EXPECT_EQ(u.elems().front(), (CountVec{0, 1, 0}));
  EXPECT_EQ(u.arity(), 3u);
}

TEST(CountSet, InsertDedupesAndSorts) {
  auto s = set_of({3, 1, 3, 2});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.elems()[0], (CountVec{1}));
  EXPECT_EQ(s.elems()[2], (CountVec{3}));
}

TEST(CountSet, CrossSumIsPaperOtimes) {
  // Paper §4.2: c1 ⊗ c2 = {a+b | a in c1, b in c2}.
  const auto a = set_of({0, 1});
  const auto b = set_of({1, 2});
  const auto c = a.cross_sum(b);
  EXPECT_EQ(c, set_of({1, 2, 3}));
}

TEST(CountSet, CrossSumWithEmptyIsIdentity) {
  const auto a = set_of({1, 2});
  EXPECT_EQ(a.cross_sum(CountSet{}), a);
  EXPECT_EQ(CountSet{}.cross_sum(a), a);
}

TEST(CountSet, UniteIsPaperOplus) {
  const auto a = set_of({0});
  const auto b = set_of({1});
  // Figure 2c: A1's count for P3 is {0} ⊕ {1} = {0,1}.
  EXPECT_EQ(a.unite(b), set_of({0, 1}));
}

TEST(CountSet, TupleCrossSumIsElementwise) {
  CountSet a = CountSet::singleton(CountVec{1, 0});
  CountSet b = CountSet::singleton(CountVec{0, 2});
  EXPECT_EQ(a.cross_sum(b), CountSet::singleton(CountVec{1, 2}));
}

TEST(CountSet, MinimizedGe) {
  // Prop. 1: for (>= N) only the minimum matters.
  const auto s = set_of({2, 5, 9});
  const auto m = s.minimized(spec::CountExpr{spec::CountExpr::Cmp::Ge, 1});
  EXPECT_EQ(m, set_of({2}));
}

TEST(CountSet, MinimizedLe) {
  const auto s = set_of({2, 5, 9});
  const auto m = s.minimized(spec::CountExpr{spec::CountExpr::Cmp::Le, 3});
  EXPECT_EQ(m, set_of({9}));
}

TEST(CountSet, MinimizedEqKeepsTwoSmallest) {
  const auto s = set_of({2, 5, 9});
  const auto m = s.minimized(spec::CountExpr{spec::CountExpr::Cmp::Eq, 2});
  EXPECT_EQ(m, set_of({2, 5}));
  // A single element stays.
  EXPECT_EQ(set_of({4}).minimized(spec::CountExpr{spec::CountExpr::Cmp::Eq, 4}),
            set_of({4}));
}

TEST(CountSet, MinimizedLeavesTuplesAlone) {
  CountSet s;
  s.insert(CountVec{0, 1});
  s.insert(CountVec{1, 0});
  EXPECT_EQ(s.minimized(spec::CountExpr{spec::CountExpr::Cmp::Ge, 1}), s);
}

// Proposition 1 soundness: minimization must not change the source-side
// verdict, for any downstream continuation (modeled as ⊗ with arbitrary
// sets and ⊕ unions).
class Prop1Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop1Property, MinimizationPreservesVerdicts) {
  const int seed = GetParam();
  const auto mk = [&](int salt) {
    CountSet s;
    for (int i = 0; i < 3; ++i) {
      s.insert(CountVec{static_cast<std::uint32_t>((seed * 7 + salt * 3 + i * 5) % 6)});
    }
    return s;
  };
  const CountSet down = mk(1);
  const CountSet sibling = mk(2);

  for (const auto cmp :
       {spec::CountExpr::Cmp::Ge, spec::CountExpr::Cmp::Gt,
        spec::CountExpr::Cmp::Le, spec::CountExpr::Cmp::Lt}) {
    for (std::uint32_t n = 0; n <= 3; ++n) {
      const spec::CountExpr ce{cmp, n};
      const auto verdict = [&](const CountSet& d) {
        // Upstream combines with a sibling branch (⊗) and checks all
        // universes.
        const auto at_source = d.cross_sum(sibling);
        bool ok = true;
        for (const auto& v : at_source.elems()) {
          ok = ok && ce.satisfied(v[0]);
        }
        return ok;
      };
      EXPECT_EQ(verdict(down), verdict(down.minimized(ce)))
          << "cmp=" << static_cast<int>(cmp) << " n=" << n;
    }
  }
  // == N: two smallest elements are enough to preserve the verdict
  // (two distinct values already prove violation).
  for (std::uint32_t n = 0; n <= 3; ++n) {
    const spec::CountExpr ce{spec::CountExpr::Cmp::Eq, n};
    const auto verdict = [&](const CountSet& d) {
      const auto at_source = d.cross_sum(sibling);
      bool ok = true;
      for (const auto& v : at_source.elems()) ok = ok && ce.satisfied(v[0]);
      return ok;
    };
    EXPECT_EQ(verdict(down), verdict(down.minimized(ce)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop1Property, ::testing::Range(1, 40));

TEST(CountSet, TruncateFlagsLoss) {
  auto s = set_of({1, 2, 3, 4});
  s.truncate(2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.truncated());
  auto t = set_of({1});
  t.truncate(5);
  EXPECT_FALSE(t.truncated());
}

TEST(BehaviorEval, AtomAndComposition) {
  using namespace tulkun::spec;
  PathExpr pe;  // empty regex fine for evaluation-only tests
  auto atom1 = Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1}, pe);
  auto atom2 = Behavior::exist(CountExpr{CountExpr::Cmp::Eq, 0}, pe);
  auto b = Behavior::conj({std::move(atom1), std::move(atom2)});
  const auto atoms = b.atoms();
  ASSERT_EQ(atoms.size(), 2u);

  EXPECT_TRUE(evaluate_behavior(b, atoms, CountVec{1, 0}));
  EXPECT_FALSE(evaluate_behavior(b, atoms, CountVec{0, 0}));
  EXPECT_FALSE(evaluate_behavior(b, atoms, CountVec{1, 1}));

  const auto neg = Behavior::negate(b);
  EXPECT_FALSE(evaluate_behavior(neg, neg.atoms(), CountVec{1, 0}));
  EXPECT_TRUE(evaluate_behavior(neg, neg.atoms(), CountVec{0, 0}));
}

TEST(BehaviorEval, AnycastTupleSemantics) {
  using namespace tulkun::spec;
  PathExpr pe;
  // (exist>=1 d1 and exist==0 d2) or (exist==0 d1 and exist>=1 d2)
  auto d1_yes = Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1}, pe);
  auto d2_no = Behavior::exist(CountExpr{CountExpr::Cmp::Eq, 0}, pe);
  auto d1_no = Behavior::exist(CountExpr{CountExpr::Cmp::Eq, 0}, pe);
  auto d2_yes = Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1}, pe);
  // Atom order in dfs: d1_yes, d2_no, d1_no, d2_yes — 4 tasks.
  auto b = Behavior::disj({Behavior::conj({std::move(d1_yes), std::move(d2_no)}),
                           Behavior::conj({std::move(d1_no), std::move(d2_yes)})});
  const auto atoms = b.atoms();
  ASSERT_EQ(atoms.size(), 4u);
  // Tuple: (countD, countE, countD, countE) per atom order.
  EXPECT_TRUE(evaluate_behavior(b, atoms, CountVec{1, 0, 1, 0}));
  EXPECT_TRUE(evaluate_behavior(b, atoms, CountVec{0, 1, 0, 1}));
  EXPECT_FALSE(evaluate_behavior(b, atoms, CountVec{1, 1, 1, 1}));
  EXPECT_FALSE(evaluate_behavior(b, atoms, CountVec{0, 0, 0, 0}));

  CountSet universes;
  universes.insert(CountVec{1, 0, 1, 0});
  universes.insert(CountVec{0, 1, 0, 1});
  EXPECT_TRUE(universes.all_satisfy(b, atoms));
  universes.insert(CountVec{1, 1, 1, 1});
  EXPECT_FALSE(universes.all_satisfy(b, atoms));
  EXPECT_EQ(universes.violations(b, atoms).size(), 1u);
}

TEST(CountSet, HashConsistentWithEquality) {
  // Equal sets hash equal, however they were built (insert dedupes/sorts,
  // so construction order must not leak into the hash).
  auto a = set_of({3, 1, 2});
  auto b = set_of({2, 3, 1, 1});
  ASSERT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());

  // The truncation flag participates in equality, so it must participate
  // in the hash too.
  auto c = set_of({1, 2});
  auto d = set_of({1, 2, 3});
  d.truncate(2);  // same elements as c, but lossy
  ASSERT_EQ(c.elems(), d.elems());
  ASSERT_NE(c, d);
  EXPECT_NE(c.hash(), d.hash());

  // Element-boundary confusion: {(1,2)} vs {(1),(2)} must not collide.
  CountSet tup = CountSet::singleton(CountVec{1, 2});
  CountSet two = set_of({1, 2});
  ASSERT_NE(tup, two);
  EXPECT_NE(tup.hash(), two.hash());

  // CountSetHash is the unordered-container adapter for the same hash.
  EXPECT_EQ(CountSetHash{}(a), a.hash());
}

TEST(CountSet, ToString) {
  EXPECT_EQ(set_of({0, 1}).to_string(), "{0,1}");
  CountSet tup;
  tup.insert(CountVec{1, 2});
  EXPECT_EQ(tup.to_string(), "{(1,2)}");
}

}  // namespace
}  // namespace tulkun::count
