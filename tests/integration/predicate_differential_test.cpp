// Differential property test for the predicate tiers: drive the same
// random FIB-update stream through two simulators — one on the interval-
// atom fast path, one forced onto the BDD tier — and assert the LoC / CIB
// / out_sent tables and the verdicts are identical after every step.
//
// Both simulators share one PacketSpace, so materialized BDD refs are
// directly comparable (canonical manager), and run with cpu_scale = 0 so
// event ordering is a pure function of posting order. Mid-run the atom
// sim's fast path is switched off for a window and back on, planting
// BDD-born predicates in its state: the demotion guard (atom operands
// falling back to the BDD tier) and the recovery path both get exercised
// under churn, not just in unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "eval/fib_synth.hpp"
#include "eval/workload.hpp"
#include "pred/atom_set.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun {
namespace {

/// Restores the process-global atom switches no matter how the test exits.
struct AtomToggleGuard {
  ~AtomToggleGuard() {
    pred::set_atom_path_enabled(true);
    pred::set_atom_lockstep_check(false);
  }
};

/// Canonicalizes every hosted table of one device (same scheme as the
/// prefix-index differential: dense invariant renumbering + sorted rows).
/// pred.ref() materializes atom-tier sets into the shared manager, where
/// canonicity makes equal functions identical refs.
std::vector<std::string> canonical_tables(verifier::OnDeviceVerifier& v) {
  const auto snapshots = v.engine_snapshots();
  std::vector<InvariantId> ids;
  for (const auto& [raw, nodes] : snapshots) ids.push_back(raw);
  std::sort(ids.begin(), ids.end());
  const auto dense = [&](InvariantId raw) {
    return std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin();
  };

  std::vector<std::string> rows;
  for (const auto& [raw_inv, nodes] : snapshots) {
    const auto inv = dense(raw_inv);
    for (const auto& ns : nodes) {
      std::ostringstream node_key;
      node_key << inv << "|" << ns.id << "|";
      const std::string prefix = node_key.str();
      for (const auto& e : ns.loc) {
        std::ostringstream os;
        os << "loc|" << prefix << e.pred.ref() << "|" << e.down_pred.ref()
           << "|" << e.action.to_string() << "|" << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& e : ns.out_sent) {
        std::ostringstream os;
        os << "out|" << prefix << e.pred.ref() << "|" << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& [down, entries] : ns.cib_in) {
        for (const auto& e : entries) {
          std::ostringstream os;
          os << "cib|" << prefix << down << "|" << e.pred.ref() << "|"
             << e.counts.to_string();
          rows.push_back(os.str());
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> canonical_violations(
    const runtime::EventSimulator& sim) {
  const auto violations = sim.violations();
  std::vector<InvariantId> ids;
  for (const auto& v : violations) ids.push_back(v.invariant);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<std::string> rows;
  for (const auto& v : violations) {
    std::ostringstream os;
    os << (std::lower_bound(ids.begin(), ids.end(), v.invariant) -
           ids.begin())
       << "|" << v.device << "|" << v.node << "|" << v.pred.ref() << "|"
       << v.counts.to_string() << "|" << v.reason;
    rows.push_back(os.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(DifferentialPredicate, AtomTierMatchesBddTierUnderChurn) {
  AtomToggleGuard guard;
  pred::atom_counters_reset();
  constexpr std::size_t kUpdates = 1000;
  constexpr std::uint64_t kSeed = 17;
  constexpr std::size_t kMaxDestinations = 3;
  // The atom sim runs BDD-only inside this window, planting mixed-tier
  // state that the guard has to demote around once atoms come back on.
  constexpr std::size_t kWindowBegin = 400;
  constexpr std::size_t kWindowEnd = 500;
  // Lockstep-verify the first atom-tier steps op by op (heavy; bounded).
  constexpr std::size_t kLockstepSteps = 50;

  const auto topo = topo::synthetic_wan("w", 8, 13, kSeed);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, kSeed});

  runtime::SimConfig cfg;
  cfg.cpu_scale = 0.0;  // deterministic event ordering across both runs
  runtime::EventSimulator atoms(topo, cfg);
  runtime::EventSimulator bdds(topo, cfg);
  atoms.make_devices(net.space());
  bdds.make_devices(net.space());

  planner::Planner planner(topo, net.space());
  spec::Builtins b(topo, net.space());
  std::size_t destinations = 0;
  for (DeviceId dst = 0;
       dst < topo.device_count() && destinations < kMaxDestinations; ++dst) {
    if (topo.prefixes(dst).empty()) continue;
    ++destinations;
    auto space = net.space().none();
    for (const auto& p : topo.prefixes(dst)) {
      space |= net.space().dst_prefix(p);
    }
    std::vector<DeviceId> ingresses;
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      if (d != dst && !topo.prefixes(d).empty()) ingresses.push_back(d);
    }
    for (auto* sim : {&atoms, &bdds}) {
      auto inv = b.multi_ingress_reachability(space, ingresses, dst);
      spec::LengthFilter f;
      f.cmp = spec::LengthFilter::Cmp::Le;
      f.base = spec::LengthFilter::Base::Shortest;
      f.offset = 2;
      inv.behavior.path.filters.push_back(f);
      sim->install(planner.plan(std::move(inv)));
    }
  }
  ASSERT_GT(destinations, 0u);

  const auto expect_equal = [&](std::size_t step) {
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      ASSERT_EQ(canonical_tables(atoms.device(d)),
                canonical_tables(bdds.device(d)))
          << "device " << d << " diverged after step " << step;
    }
    ASSERT_EQ(canonical_violations(atoms), canonical_violations(bdds))
        << "verdicts diverged after step " << step;
  };

  double now_atoms = 0.0;
  double now_bdds = 0.0;
  pred::set_atom_path_enabled(true);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    atoms.post_initialize(d, net.table(d), now_atoms);
  }
  now_atoms = std::max(now_atoms, atoms.run());
  pred::set_atom_path_enabled(false);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    bdds.post_initialize(d, net.table(d), now_bdds);
  }
  now_bdds = std::max(now_bdds, bdds.run());
  expect_equal(0);

  // The workload generator mutates its net as it applies updates; the
  // simulators' devices each took a copy at initialization, so posting the
  // recorded stream to both keeps all three views in lockstep.
  const auto plan = eval::random_updates(topo, net, kUpdates, kSeed + 1);
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles_atoms(
      plan.steps.size());
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles_bdds(
      plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const auto& step = plan.steps[i];
    const bool in_window = i >= kWindowBegin && i < kWindowEnd;

    auto upd = step.update;
    if (step.erase_of >= 0) {
      upd.rule_id = handles_atoms[step.erase_of]->rule_id;
    }
    pred::set_atom_path_enabled(!in_window);
    pred::set_atom_lockstep_check(i < kLockstepSteps);
    handles_atoms[i] = atoms.post_rule_update(upd.device, upd, now_atoms);
    now_atoms = std::max(now_atoms, atoms.run());
    pred::set_atom_lockstep_check(false);

    upd = step.update;
    if (step.erase_of >= 0) {
      upd.rule_id = handles_bdds[step.erase_of]->rule_id;
    }
    pred::set_atom_path_enabled(false);
    handles_bdds[i] = bdds.post_rule_update(upd.device, upd, now_bdds);
    now_bdds = std::max(now_bdds, bdds.run());

    expect_equal(i + 1);
  }

  // Sanity: both tiers and both guard directions actually ran.
  const auto c = pred::atom_counters_snapshot();
  EXPECT_GT(c.atom_hits, 0u);         // fast path taken
  EXPECT_GT(c.bdd_fallbacks, 0u);     // BDD tier taken (reference sim + window)
  EXPECT_GT(c.demotions, 0u);         // atom operands hit the fallback
  EXPECT_GT(c.materializations, 0u);  // lazy atom -> BDD crossings happened

  // Promotion recovers the interval form of a BDD-born dst-only predicate.
  // TEST-NET-3: guaranteed absent from the workload, so this exact BDD has
  // never been through the (memoized) promote path before.
  pred::set_atom_path_enabled(false);
  const auto bdd_born =
      net.space().dst_prefix(packet::Ipv4Prefix::parse("203.0.113.0/29"));
  ASSERT_EQ(bdd_born.atom_ref(), pred::kNoAtom);
  pred::set_atom_path_enabled(true);
  const auto promoted = net.space().wrap(bdd_born.ref());
  EXPECT_NE(promoted.atom_ref(), pred::kNoAtom);
  EXPECT_GT(pred::atom_counters_snapshot().promotions, c.promotions);
}

}  // namespace
}  // namespace tulkun
