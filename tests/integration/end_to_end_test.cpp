// Larger end-to-end runs: synthesized WAN and fat-tree data planes
// verified by the full distributed pipeline (planner -> simulator ->
// verifiers), with injected errors that must be caught.
#include <gtest/gtest.h>

#include "eval/fib_synth.hpp"
#include "eval/workload.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun {
namespace {

/// A reusable end-to-end session over any topology.
class Session {
 public:
  Session(const topo::Topology& topo, fib::NetworkFib& net)
      : topo_(&topo), net_(&net), planner_(topo, net.space()),
        sim_(topo, {}) {
    sim_.make_devices(net.space());
  }

  void install_per_destination(std::uint32_t slack) {
    for (DeviceId dst = 0; dst < topo_->device_count(); ++dst) {
      if (topo_->prefixes(dst).empty()) continue;
      auto space = net_->space().none();
      for (const auto& p : topo_->prefixes(dst)) {
        space |= net_->space().dst_prefix(p);
      }
      std::vector<DeviceId> ingresses;
      for (DeviceId d = 0; d < topo_->device_count(); ++d) {
        if (d != dst && !topo_->prefixes(d).empty()) ingresses.push_back(d);
      }
      spec::Builtins b(*topo_, net_->space());
      auto inv = b.multi_ingress_reachability(space, ingresses, dst);
      auto& pe = inv.behavior.path;
      spec::LengthFilter f;
      f.cmp = spec::LengthFilter::Cmp::Le;
      f.base = spec::LengthFilter::Base::Shortest;
      f.offset = static_cast<std::int32_t>(slack);
      pe.filters.push_back(f);
      sim_.install(planner_.plan(std::move(inv)));
    }
  }

  double burst() {
    for (DeviceId d = 0; d < topo_->device_count(); ++d) {
      sim_.post_initialize(d, net_->table(d), 0.0);
    }
    now_ = sim_.run();
    return now_;
  }

  /// Applies an update; on return `update` carries the assigned rule id
  /// (Insert) or removed rule (Erase).
  double apply(fib::FibUpdate& update) {
    const double t0 = now_;
    const auto handle = sim_.post_rule_update(update.device, update, now_);
    now_ = std::max(now_, sim_.run());
    update = *handle;
    return now_ - t0;
  }

  std::vector<dvm::Violation> violations() { return sim_.violations(); }

 private:
  const topo::Topology* topo_;
  fib::NetworkFib* net_;
  planner::Planner planner_;
  runtime::EventSimulator sim_;
  double now_ = 0.0;
};

TEST(EndToEnd, CleanWanPasses) {
  const auto topo = topo::synthetic_wan("w", 12, 20, 3);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, 3});
  Session s(topo, net);
  s.install_per_destination(2);
  EXPECT_GT(s.burst(), 0.0);
  EXPECT_TRUE(s.violations().empty());
}

TEST(EndToEnd, WanBlackholeCaught) {
  const auto topo = topo::synthetic_wan("w", 12, 20, 3);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, 3});
  // Device 5 drops traffic toward device 0's prefix.
  eval::inject_blackhole(net, 5, topo.prefixes(0).front());
  Session s(topo, net);
  s.install_per_destination(2);
  s.burst();
  const auto violations = s.violations();
  ASSERT_FALSE(violations.empty());
}

TEST(EndToEnd, FatTreeCleanAndIncremental) {
  const auto topo = topo::fat_tree(4);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, 7});
  Session s(topo, net);
  s.install_per_destination(0);  // DC: shortest paths only
  s.burst();
  EXPECT_TRUE(s.violations().empty());

  // Break then fix one ToR's route.
  fib::Rule bad;
  bad.priority = 400;
  bad.dst_prefix = packet::Ipv4Prefix::parse("10.1.0.0/24");
  bad.action = fib::Action::drop();
  auto upd = fib::FibUpdate::insert(topo.device("p0_tor0"), bad);
  const double t_break = s.apply(upd);
  EXPECT_GT(t_break, 0.0);
  EXPECT_FALSE(s.violations().empty());

  // The violation is confined to (p0_tor0 -> p1_tor0).
  for (const auto& v : s.violations()) {
    EXPECT_EQ(v.device, topo.device("p0_tor0"));
  }

  auto erase = fib::FibUpdate::erase(topo.device("p0_tor0"), upd.rule_id);
  s.apply(erase);
  EXPECT_TRUE(s.violations().empty());
}

TEST(EndToEnd, RandomUpdateChurnStaysConsistent) {
  const auto topo = topo::synthetic_wan("w", 10, 16, 9);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, 9});
  Session s(topo, net);
  s.install_per_destination(2);
  s.burst();

  // Apply a churn of updates; after each, the sim must converge (run()
  // drains) and at the end, a mirror data plane must agree on LEC state.
  auto mirror = eval::synthesize(topo, eval::SynthOptions{2, 0, 9});
  auto plan = eval::random_updates(topo, mirror, 40, 123);
  std::vector<std::uint64_t> sim_ids(plan.steps.size(), 0);
  std::vector<std::uint64_t> mirror_ids(plan.steps.size(), 0);
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    auto upd_sim = plan.steps[i].update;
    auto upd_mirror = plan.steps[i].update;
    if (plan.steps[i].erase_of >= 0) {
      const auto ref = static_cast<std::size_t>(plan.steps[i].erase_of);
      upd_sim.rule_id = sim_ids[ref];
      upd_mirror.rule_id = mirror_ids[ref];
    }
    s.apply(upd_sim);
    sim_ids[i] = upd_sim.rule_id;
    (void)fib::apply_update(mirror, upd_mirror);
    mirror_ids[i] = upd_mirror.rule_id;
  }
  SUCCEED();  // churn completed without protocol assertion failures
}

}  // namespace
}  // namespace tulkun
