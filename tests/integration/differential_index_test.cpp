// Differential property test for the prefix-indexed hot path: drive the
// same random FIB-update stream through two simulators — one with the
// destination index enabled, one forced onto the linear full-scan path —
// and assert the LoC / CIB / out_sent tables and the verdicts are
// identical after every step.
//
// Both simulators share one PacketSpace, so BDD refs are directly
// comparable, and run with cpu_scale = 0 so event ordering is a pure
// function of posting order (identical across the two runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "eval/fib_synth.hpp"
#include "eval/workload.hpp"
#include "fib/prefix_index.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun {
namespace {

/// Restores the process-global index toggle no matter how the test exits.
struct IndexToggleGuard {
  ~IndexToggleGuard() { fib::set_prefix_index_enabled(true); }
};

/// Canonicalizes every hosted table of one device: the tables hold
/// disjoint predicates, so sorting rows makes the unspecified iteration
/// order irrelevant.
std::vector<std::string> canonical_tables(verifier::OnDeviceVerifier& v) {
  // Invariant ids are assigned by a global counter, so the two simulators
  // see different raw ids for the same invariant; renumber them densely
  // (installation order matches across the two sims).
  const auto snapshots = v.engine_snapshots();
  std::vector<InvariantId> ids;
  for (const auto& [raw, nodes] : snapshots) ids.push_back(raw);
  std::sort(ids.begin(), ids.end());
  const auto dense = [&](InvariantId raw) {
    return std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin();
  };

  std::vector<std::string> rows;
  for (const auto& [raw_inv, nodes] : snapshots) {
    const auto inv = dense(raw_inv);
    for (const auto& ns : nodes) {
      std::ostringstream node_key;
      node_key << inv << "|" << ns.id << "|";
      const std::string prefix = node_key.str();
      for (const auto& e : ns.loc) {
        std::ostringstream os;
        os << "loc|" << prefix << e.pred.ref() << "|"
           << e.down_pred.ref() << "|" << e.action.to_string() << "|"
           << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& e : ns.out_sent) {
        std::ostringstream os;
        os << "out|" << prefix << e.pred.ref() << "|"
           << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& [down, entries] : ns.cib_in) {
        for (const auto& e : entries) {
          std::ostringstream os;
          os << "cib|" << prefix << down << "|" << e.pred.ref() << "|"
             << e.counts.to_string();
          rows.push_back(os.str());
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> canonical_violations(
    const runtime::EventSimulator& sim) {
  // Same dense renumbering as canonical_tables: raw invariant ids differ
  // between the sims, but they are monotone in (shared) install order.
  const auto violations = sim.violations();
  std::vector<InvariantId> ids;
  for (const auto& v : violations) ids.push_back(v.invariant);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<std::string> rows;
  for (const auto& v : violations) {
    std::ostringstream os;
    os << (std::lower_bound(ids.begin(), ids.end(), v.invariant) -
           ids.begin())
       << "|" << v.device << "|" << v.node << "|" << v.pred.ref() << "|"
       << v.counts.to_string() << "|" << v.reason;
    rows.push_back(os.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(DifferentialIndex, IndexedMatchesLinearScanUnderChurn) {
  IndexToggleGuard guard;
  fib::index_counters_reset();
  constexpr std::size_t kUpdates = 1000;
  constexpr std::uint64_t kSeed = 11;
  constexpr std::size_t kMaxDestinations = 3;

  const auto topo = topo::synthetic_wan("w", 8, 13, kSeed);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, kSeed});

  runtime::SimConfig cfg;
  cfg.cpu_scale = 0.0;  // deterministic event ordering across both runs
  runtime::EventSimulator indexed(topo, cfg);
  runtime::EventSimulator linear(topo, cfg);
  indexed.make_devices(net.space());
  linear.make_devices(net.space());

  planner::Planner planner(topo, net.space());
  spec::Builtins b(topo, net.space());
  std::size_t destinations = 0;
  for (DeviceId dst = 0;
       dst < topo.device_count() && destinations < kMaxDestinations; ++dst) {
    if (topo.prefixes(dst).empty()) continue;
    ++destinations;
    auto space = net.space().none();
    for (const auto& p : topo.prefixes(dst)) {
      space |= net.space().dst_prefix(p);
    }
    std::vector<DeviceId> ingresses;
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      if (d != dst && !topo.prefixes(d).empty()) ingresses.push_back(d);
    }
    for (auto* sim : {&indexed, &linear}) {
      auto inv = b.multi_ingress_reachability(space, ingresses, dst);
      spec::LengthFilter f;
      f.cmp = spec::LengthFilter::Cmp::Le;
      f.base = spec::LengthFilter::Base::Shortest;
      f.offset = 2;
      inv.behavior.path.filters.push_back(f);
      sim->install(planner.plan(std::move(inv)));
    }
  }
  ASSERT_GT(destinations, 0u);

  const auto run_step =
      [&](runtime::EventSimulator& sim, bool enable, double& now,
          const fib::FibUpdate* upd) {
        fib::set_prefix_index_enabled(enable);
        if (upd == nullptr) {
          for (DeviceId d = 0; d < topo.device_count(); ++d) {
            sim.post_initialize(d, net.table(d), now);
          }
        }
        if (upd != nullptr) sim.post_rule_update(upd->device, *upd, now);
        now = std::max(now, sim.run());
      };
  const auto expect_equal = [&](std::size_t step) {
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      ASSERT_EQ(canonical_tables(indexed.device(d)),
                canonical_tables(linear.device(d)))
          << "device " << d << " diverged after step " << step;
    }
    ASSERT_EQ(canonical_violations(indexed), canonical_violations(linear))
        << "verdicts diverged after step " << step;
  };

  double now_indexed = 0.0;
  double now_linear = 0.0;
  run_step(indexed, /*enable=*/true, now_indexed, nullptr);
  run_step(linear, /*enable=*/false, now_linear, nullptr);
  expect_equal(0);

  // The workload generator mutates its net as it applies updates; the
  // simulators' devices each took a copy at initialization, so posting the
  // recorded stream to both keeps all three views in lockstep.
  const auto plan = eval::random_updates(topo, net, kUpdates, kSeed + 1);
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles_indexed(
      plan.steps.size());
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles_linear(
      plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const auto& step = plan.steps[i];

    auto upd = step.update;
    if (step.erase_of >= 0) {
      upd.rule_id = handles_indexed[step.erase_of]->rule_id;
    }
    fib::set_prefix_index_enabled(true);
    handles_indexed[i] =
        indexed.post_rule_update(upd.device, upd, now_indexed);
    now_indexed = std::max(now_indexed, indexed.run());

    upd = step.update;
    if (step.erase_of >= 0) {
      upd.rule_id = handles_linear[step.erase_of]->rule_id;
    }
    fib::set_prefix_index_enabled(false);
    handles_linear[i] = linear.post_rule_update(upd.device, upd, now_linear);
    now_linear = std::max(now_linear, linear.run());

    expect_equal(i + 1);
  }

  // Sanity: the indexed run actually exercised the index (queries landed
  // on the pruned path, not the full-scan fallback).
  const auto counters = fib::index_counters_snapshot();
  std::uint64_t pruned_queries = 0;
  for (const auto& c : counters) pruned_queries += c.queries - c.full_scans;
  EXPECT_GT(pruned_queries, 0u);
}

}  // namespace
}  // namespace tulkun
