// §9.1 functionality demonstrations on the Figure 2a network: the five
// demos, each with a correct and an erroneous data plane — "the network
// always computes the right results".
#include <gtest/gtest.h>

#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "testutil/figure2.hpp"

namespace tulkun {
namespace {

using testutil::Figure2;

class DemoTest : public ::testing::Test {
 protected:
  Figure2 fig;
  spec::Builtins b{fig.topo, fig.space()};
  planner::Planner planner{fig.topo, fig.space()};

  /// Runs the invariant over the fixture's current data plane and returns
  /// the violations at quiescence.
  std::vector<dvm::Violation> verify(const spec::Invariant& inv) {
    const auto plan = planner.plan(inv);
    runtime::EventSimulator sim(fig.topo, {});
    sim.make_devices(fig.space());
    sim.install(plan);
    for (DeviceId d = 0; d < fig.topo.device_count(); ++d) {
      sim.post_initialize(d, fig.net.table(d), 0.0);
    }
    sim.run();
    return sim.violations();
  }

  /// Routes `prefix` from every on-path device toward `dst` (correct
  /// shortest-path unicast), and delivers at `dst`.
  void route_all(const packet::Ipv4Prefix& prefix, DeviceId dst) {
    const auto dist = fig.topo.hop_distances_to(dst);
    for (DeviceId dev = 0; dev < fig.topo.device_count(); ++dev) {
      if (dist[dev] == topo::Topology::kUnreachable) continue;
      fib::Rule r;
      r.priority = 60;
      r.dst_prefix = prefix;
      if (dev == dst) {
        r.action = fib::Action::deliver();
      } else {
        for (const auto& adj : fig.topo.neighbors(dev)) {
          if (dist[adj.neighbor] + 1 == dist[dev]) {
            r.action = fib::Action::forward(adj.neighbor);
            break;
          }
        }
      }
      fig.net.table(dev).insert(r);
    }
  }
};

// Demo 1: loop-free waypoint reachability from S to D (Figure 2b).
TEST_F(DemoTest, WaypointDemo) {
  const auto inv = b.waypoint(fig.P1(), fig.S, fig.W, fig.D);
  // Erroneous plane (the paper's initial data plane violates it on P3).
  EXPECT_FALSE(verify(inv).empty());
  // Correct plane after B's reroute.
  auto upd = fig.b_reroute_to_w();
  (void)fib::apply_update(fig.net, upd);
  EXPECT_TRUE(verify(inv).empty());
}

// Demo 2: loop-free multicast from S to C and D.
TEST_F(DemoTest, MulticastDemo) {
  // C owns 10.0.2.0/24; use a dedicated multicast prefix attached at both
  // destinations for spec consistency.
  const auto mcast_prefix = packet::Ipv4Prefix::parse("10.0.4.0/24");
  fig.topo.attach_prefix(fig.D, mcast_prefix);
  fig.topo.attach_prefix(fig.C, mcast_prefix);

  const auto space = fig.space().dst_prefix(mcast_prefix);
  const auto inv = b.multicast(space, fig.S, {fig.D, fig.C});

  // Erroneous: no multicast routes at all.
  EXPECT_FALSE(verify(inv).empty());

  // Correct: S->A, A->B (ALL fanout at B: C and D via W? B reaches both).
  auto insert = [&](DeviceId dev, fib::Action action) {
    fib::Rule r;
    r.priority = 70;
    r.dst_prefix = mcast_prefix;
    r.action = std::move(action);
    fig.net.table(dev).insert(r);
  };
  insert(fig.S, fib::Action::forward(fig.A));
  insert(fig.A, fib::Action::forward(fig.B));
  insert(fig.B, fib::Action::forward_all({fig.C, fig.D}));
  insert(fig.C, fib::Action::deliver());
  insert(fig.D, fib::Action::deliver());
  EXPECT_TRUE(verify(inv).empty());
}

// Demo 3: loop-free anycast from S to B and D (the paper's demo 3 uses
// destinations B and D).
TEST_F(DemoTest, AnycastDemo) {
  const auto anycast_prefix = packet::Ipv4Prefix::parse("10.0.5.0/24");
  fig.topo.attach_prefix(fig.D, anycast_prefix);
  fig.topo.attach_prefix(fig.B, anycast_prefix);
  const auto space = fig.space().dst_prefix(anycast_prefix);
  const auto inv = b.anycast(space, fig.S, {fig.B, fig.D});

  auto insert = [&](DeviceId dev, fib::Action action) {
    fib::Rule r;
    r.priority = 70;
    r.dst_prefix = anycast_prefix;
    r.action = std::move(action);
    fig.net.table(dev).insert(r);
  };
  // Erroneous: A replicates to both B and W (both replicas deliver).
  insert(fig.S, fib::Action::forward(fig.A));
  insert(fig.A, fib::Action::forward_all({fig.B, fig.W}));
  insert(fig.W, fib::Action::forward(fig.D));
  insert(fig.B, fib::Action::deliver());
  insert(fig.D, fib::Action::deliver());
  EXPECT_FALSE(verify(inv).empty());

  // Correct: A picks exactly one of B / W (ANY): each universe delivers
  // to exactly one anycast replica.
  fib::Rule fix;
  fix.priority = 80;
  fix.dst_prefix = anycast_prefix;
  fix.action = fib::Action::forward_any({fig.B, fig.W});
  fig.net.table(fig.A).insert(fix);
  EXPECT_TRUE(verify(inv).empty());
}

// Demo 4: different-ingress consistent loop-free reachability from S and
// B to D.
TEST_F(DemoTest, DifferentIngressDemo) {
  const auto inv = b.multi_ingress_reachability(fig.P1(), {fig.S, fig.B},
                                                fig.D);
  // The paper's initial plane is inconsistent across ingresses: B drops
  // 10.0.0.0/24, so packets entering at B never reach D.
  {
    const auto violations = verify(inv);
    ASSERT_FALSE(violations.empty());
    for (const auto& v : violations) {
      EXPECT_TRUE(v.pred.subset_of(fig.P2()));
    }
  }

  // Consistent plane: B forwards 10.0.0.0/24 to D like everyone else.
  fib::Rule fix;
  fix.priority = 90;
  fix.dst_prefix = fig.p2;
  fix.action = fib::Action::forward(fig.D);
  fig.net.table(fig.B).insert(fix);
  EXPECT_TRUE(verify(inv).empty());

  // Erroneous again: B drops everything to D.
  fib::Rule bad;
  bad.priority = 95;
  bad.dst_prefix = fig.p1;
  bad.action = fib::Action::drop();
  fig.net.table(fig.B).insert(bad);
  EXPECT_FALSE(verify(inv).empty());
}

// Demo 5: all-shortest-path availability from S to C (the RCDC-style
// equal invariant).
TEST_F(DemoTest, AllShortestPathDemo) {
  const auto c_prefix = packet::Ipv4Prefix::parse("10.0.2.0/24");
  const auto space = fig.space().dst_prefix(c_prefix);
  const auto inv = b.all_shortest_path(space, fig.S, fig.C);

  // Erroneous: no routes toward C.
  EXPECT_FALSE(verify(inv).empty());

  // Correct: route the unique shortest chain S-A-B-C.
  route_all(c_prefix, fig.C);
  EXPECT_TRUE(verify(inv).empty());
}

}  // namespace
}  // namespace tulkun
