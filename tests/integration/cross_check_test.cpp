// Cross-validation: Tulkun's distributed verdicts must agree with every
// centralized baseline on whether a data plane satisfies all-pair
// reachability — on clean planes, with injected errors, and after random
// update churn.
#include <gtest/gtest.h>

#include <map>

#include "core/rng.hpp"

#include "baseline/centralized.hpp"
#include "eval/fib_synth.hpp"
#include "eval/workload.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun {
namespace {

struct Verdicts {
  bool tulkun_clean = false;
  std::map<std::string, bool> baseline_clean;
};

Verdicts verdicts_for(const topo::Topology& topo, std::uint64_t seed,
                      std::size_t error_injections) {
  Verdicts out;

  // Build the (possibly corrupted) data plane once per consumer.
  const auto corrupt = [&](fib::NetworkFib& net, Rng& rng) {
    for (std::size_t i = 0; i < error_injections; ++i) {
      const auto attachments = topo.all_prefix_attachments();
      const auto& [dst, prefix] = attachments[rng.index(attachments.size())];
      DeviceId at = dst;
      while (at == dst) at = static_cast<DeviceId>(rng.index(topo.device_count()));
      eval::inject_blackhole(net, at, prefix);
    }
  };

  // Tulkun.
  {
    auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, seed});
    Rng rng(seed ^ 0xabc);
    corrupt(net, rng);
    planner::Planner planner(topo, net.space());
    runtime::EventSimulator sim(topo, {});
    sim.make_devices(net.space());
    spec::Builtins b(topo, net.space());
    for (DeviceId dst = 0; dst < topo.device_count(); ++dst) {
      if (topo.prefixes(dst).empty()) continue;
      auto space = net.space().none();
      for (const auto& p : topo.prefixes(dst)) {
        space |= net.space().dst_prefix(p);
      }
      std::vector<DeviceId> ingresses;
      for (DeviceId d = 0; d < topo.device_count(); ++d) {
        if (d != dst && !topo.prefixes(d).empty()) ingresses.push_back(d);
      }
      auto inv = b.multi_ingress_reachability(space, ingresses, dst);
      spec::LengthFilter f;
      f.cmp = spec::LengthFilter::Cmp::Le;
      f.base = spec::LengthFilter::Base::Shortest;
      f.offset = 2;
      inv.behavior.path.filters.push_back(f);
      sim.install(planner.plan(std::move(inv)));
    }
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      sim.post_initialize(d, net.table(d), 0.0);
    }
    sim.run();
    out.tulkun_clean = sim.violations().empty();
  }

  // Baselines.
  for (auto& tool : baseline::make_all_baselines()) {
    auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, seed});
    Rng rng(seed ^ 0xabc);
    corrupt(net, rng);
    auto queries = baseline::all_pair_queries(topo, net.space(), 2);
    std::erase_if(queries, [&](const baseline::Query& q) {
      return topo.prefixes(q.ingress).empty();
    });
    (void)tool->burst(net, queries);
    out.baseline_clean[tool->name()] = tool->violations().empty();
  }
  return out;
}

class CrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheck, CleanPlaneAgreement) {
  const auto topo = topo::synthetic_wan("w", 10, 17, GetParam());
  const auto v = verdicts_for(topo, GetParam(), 0);
  EXPECT_TRUE(v.tulkun_clean);
  for (const auto& [name, clean] : v.baseline_clean) {
    EXPECT_TRUE(clean) << name;
  }
}

TEST_P(CrossCheck, CorruptedPlaneAgreement) {
  const auto topo = topo::synthetic_wan("w", 10, 17, GetParam());
  const auto v = verdicts_for(topo, GetParam(), 2);
  // Tulkun checks per-universe delivery (stricter than per-path
  // existence), so: baselines flag an error => Tulkun must flag it too.
  for (const auto& [name, clean] : v.baseline_clean) {
    if (!clean) {
      EXPECT_FALSE(v.tulkun_clean)
          << name << " found an error Tulkun missed";
    }
  }
  // A blackhole at a device on some shortest path is visible to Tulkun.
  EXPECT_FALSE(v.tulkun_clean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tulkun
