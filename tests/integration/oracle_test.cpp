// Universe-enumeration oracle: on random small networks, enumerate every
// universe (each ANY-type device pinned to one choice), simulate packet
// replication hop by hop, and count delivered copies at the destination.
// Tulkun's distributed count set at the ingress must match the oracle's
// set of per-universe counts exactly.
//
// This is the strongest correctness check in the suite: it exercises the
// whole pipeline (LEC, DPVNet, counting, DVM propagation) against an
// independent executable model of §2.1's trace semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rng.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace tulkun {
namespace {

struct RandomNet {
  topo::Topology topo;
  fib::NetworkFib net;
  packet::Ipv4Prefix prefix;
  DeviceId dst = kNoDevice;

  explicit RandomNet(std::uint64_t seed)
      : topo(topo::synthetic_wan("r", 6, 9, seed)),
        net(make_net(topo, seed)),
        prefix(packet::Ipv4Prefix::parse("10.5.0.0/24")),
        dst(5) {
    // Attach the test prefix at the destination (in addition to the
    // generator's defaults).
    topo.attach_prefix(dst, prefix);
    install_random_rules(seed);
  }

  static fib::NetworkFib make_net(const topo::Topology& t,
                                  std::uint64_t /*seed*/) {
    return fib::NetworkFib(t);
  }

  void install_random_rules(std::uint64_t seed) {
    Rng rng(seed ^ 0x5eed);
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      fib::Rule r;
      r.priority = 10;
      r.dst_prefix = prefix;
      if (d == dst) {
        r.action = fib::Action::deliver();
      } else {
        const double roll = rng.real();
        if (roll < 0.12) {
          r.action = fib::Action::drop();
        } else {
          // Pick 1-2 random neighbors; 50/50 ALL vs ANY when 2.
          const auto& adj = topo.neighbors(d);
          std::vector<DeviceId> hops{adj[rng.index(adj.size())].neighbor};
          if (adj.size() > 1 && rng.chance(0.6)) {
            DeviceId other = adj[rng.index(adj.size())].neighbor;
            if (other != hops[0]) hops.push_back(other);
          }
          if (hops.size() == 2 && rng.chance(0.5)) {
            r.action = fib::Action::forward_any(hops);
          } else {
            r.action = fib::Action::forward_all(hops);
          }
        }
      }
      net.table(d).insert(r);
    }
  }
};

/// The oracle: enumerate universes and simulate copy propagation.
class Oracle {
 public:
  Oracle(const RandomNet& rn) : rn_(&rn) {
    for (DeviceId d = 0; d < rn.topo.device_count(); ++d) {
      const auto* rule = rn.net.table(d).ordered().front();
      actions_.push_back(&rule->action);
      if (rule->action.type == fib::ActionType::Any &&
          rule->action.next_hops.size() > 1) {
        any_devices_.push_back(d);
      }
    }
  }

  /// Distinct delivered-copy counts across all universes for packets
  /// entering at `ingress`.
  std::set<std::uint32_t> counts(DeviceId ingress) const {
    std::set<std::uint32_t> out;
    const std::size_t n_universes = 1ULL << any_devices_.size();
    for (std::size_t u = 0; u < n_universes; ++u) {
      std::map<DeviceId, DeviceId> choice;
      for (std::size_t i = 0; i < any_devices_.size(); ++i) {
        const auto* a = actions_[any_devices_[i]];
        choice[any_devices_[i]] = a->next_hops[(u >> i) & 1];
      }
      out.insert(simulate(ingress, choice));
    }
    return out;
  }

 private:
  /// Copies delivered at dst in one universe. Each copy carries its own
  /// trace; a copy revisiting a device loops forever (not delivered).
  std::uint32_t simulate(DeviceId ingress,
                         const std::map<DeviceId, DeviceId>& choice) const {
    struct Copy {
      DeviceId at;
      std::set<DeviceId> visited;
    };
    std::vector<Copy> frontier{Copy{ingress, {ingress}}};
    std::uint32_t delivered = 0;
    while (!frontier.empty()) {
      std::vector<Copy> next;
      for (auto& copy : frontier) {
        const auto* action = actions_[copy.at];
        if (action->forwards_to(fib::kExternalPort) && copy.at == rn_->dst) {
          ++delivered;
          continue;
        }
        if (action->type == fib::ActionType::Drop) continue;
        std::vector<DeviceId> hops;
        if (action->type == fib::ActionType::Any &&
            action->next_hops.size() > 1) {
          hops.push_back(choice.at(copy.at));
        } else {
          hops = action->next_hops;
        }
        for (const DeviceId hop : hops) {
          if (hop == fib::kExternalPort) continue;
          if (copy.visited.contains(hop)) continue;  // would loop forever
          Copy fwd = copy;
          fwd.at = hop;
          fwd.visited.insert(hop);
          next.push_back(std::move(fwd));
        }
      }
      frontier = std::move(next);
    }
    return delivered;
  }

  const RandomNet* rn_;
  std::vector<const fib::Action*> actions_;
  std::vector<DeviceId> any_devices_;
};

class OracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleProperty, TulkunCountsMatchUniverseEnumeration) {
  RandomNet rn(GetParam());
  Oracle oracle(rn);

  // Tulkun: reachability invariant with full count sets (no Prop. 1
  // pruning, so the ingress sees every universe's count).
  spec::Builtins b(rn.topo, rn.net.space());
  const DeviceId ingress = 0;
  auto inv = b.reachability(rn.net.space().dst_prefix(rn.prefix), ingress,
                            rn.dst);
  planner::Planner planner(rn.topo, rn.net.space());
  const auto plan = planner.plan(std::move(inv));

  dvm::EngineConfig ecfg;
  ecfg.minimize_counting_info = false;
  runtime::EventSimulator sim(rn.topo, {});
  sim.make_devices(rn.net.space(), ecfg);
  sim.install(plan);
  for (DeviceId d = 0; d < rn.topo.device_count(); ++d) {
    sim.post_initialize(d, rn.net.table(d), 0.0);
  }
  sim.run();

  // Collect Tulkun's count set at the ingress for the test prefix.
  std::set<std::uint32_t> tulkun_counts;
  const auto results = sim.device(ingress).source_results(plan.id);
  const auto want = rn.net.space().dst_prefix(rn.prefix);
  for (const auto& [ing, entries] : results) {
    if (ing != ingress) continue;
    for (const auto& e : entries) {
      if (!e.pred.intersects(want)) continue;
      for (const auto& v : e.counts.elems()) {
        tulkun_counts.insert(v[0]);
      }
    }
  }
  if (results.empty()) {
    // No valid path at all: Tulkun reports the static violation; the
    // oracle must agree that no universe delivers.
    const auto expected = oracle.counts(ingress);
    EXPECT_EQ(expected, (std::set<std::uint32_t>{0}));
    return;
  }

  // Semantics note: the oracle pins each ANY device to ONE choice per
  // universe (hash-ECMP style, correlated across the copies an ALL fork
  // creates). The paper's Equation (1) combines branches independently —
  // the ANY selector is an explicit black box (§2.1), so per-copy
  // divergent choices are admissible outcomes. Therefore:
  //   * every correlated universe is also a Tulkun universe (subset), and
  //   * when the plane has no ALL fork, no copy ever duplicates and the
  //     two semantics coincide (equality).
  const auto expected = oracle.counts(ingress);
  for (const auto c : expected) {
    EXPECT_TRUE(tulkun_counts.contains(c))
        << "missing universe count " << c << " (seed " << GetParam() << ")";
  }

  bool has_all_fork = false;
  for (DeviceId d = 0; d < rn.topo.device_count(); ++d) {
    const auto* rule = rn.net.table(d).ordered().front();
    if (rule->action.type == fib::ActionType::All &&
        rule->action.next_hops.size() > 1 && d != rn.dst) {
      has_all_fork = true;
    }
  }
  if (!has_all_fork) {
    EXPECT_EQ(tulkun_counts, expected)
        << "fork-free plane must match exactly (seed " << GetParam() << ")";
  }

  // Verdict implication: a correlated universe delivering zero copies is
  // a genuine violation Tulkun must flag.
  bool tulkun_violated = false;
  for (const auto& v : sim.violations()) {
    if (v.pred.intersects(want)) tulkun_violated = true;
  }
  if (expected.contains(0)) {
    EXPECT_TRUE(tulkun_violated);
  }
  // Conversely, a flagged violation needs SOME zero-count universe in
  // Tulkun's (superset) model.
  if (tulkun_violated) {
    EXPECT_TRUE(tulkun_counts.contains(0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace tulkun
