// Flight-recorder core: ring wrap-around accounting, intern stability,
// span/context nesting, and a concurrent writer-vs-drain exercise that is
// the TSan workout for the seqlock-style ring protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace tulkun::obs {
namespace {

/// Tests share one process-global recorder; scope tracing to each test and
/// start from a clean cursor so earlier tests' records don't leak in.
struct TraceOn {
  TraceOn() {
    set_trace_enabled(true);
    (void)drain_snapshot();
  }
  ~TraceOn() {
    (void)drain_snapshot();
    set_trace_enabled(false);
  }
};

/// All records across threads whose interned name matches `name`.
std::vector<Record> records_named(const TraceSnapshot& snap,
                                  const std::string& name) {
  std::vector<Record> out;
  for (const auto& t : snap.threads) {
    for (const auto& r : t.records) {
      if (r.name_id < snap.names.size() && snap.names[r.name_id] == name) {
        out.push_back(r);
      }
    }
  }
  return out;
}

TEST(RingTest, WrapAroundKeepsNewestAndCountsDropped) {
  Ring ring(64);  // already a power of two
  const std::size_t cap = ring.capacity();
  ASSERT_EQ(cap, 64u);

  Record r;
  for (std::size_t i = 0; i < 3 * cap; ++i) {
    r.arg = i;
    ring.write(r);
  }
  std::vector<Record> out;
  std::uint64_t dropped = 0;
  const std::uint64_t cursor = ring.drain(0, out, dropped);

  EXPECT_EQ(cursor, 3 * cap);
  ASSERT_EQ(out.size(), cap);
  EXPECT_EQ(dropped, 2 * cap);
  // The survivors are exactly the newest `cap` records, oldest first.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arg, 2 * cap + i);
  }
}

TEST(RingTest, SecondDrainReturnsOnlyNewRecords) {
  Ring ring(8);
  Record r;
  r.arg = 1;
  ring.write(r);
  std::vector<Record> out;
  std::uint64_t dropped = 0;
  std::uint64_t cursor = ring.drain(0, out, dropped);
  EXPECT_EQ(out.size(), 1u);

  r.arg = 2;
  ring.write(r);
  out.clear();
  cursor = ring.drain(cursor, out, dropped);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 2u);
}

TEST(RingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(3).capacity(), 4u);
  EXPECT_EQ(Ring(1000).capacity(), 1024u);
}

TEST(TraceTest, InternIsStableAndSharedAcrossCallSites) {
  const std::uint32_t a = intern("obs.test.intern");
  const std::uint32_t b = intern("obs.test.intern");
  const std::uint32_t c = intern("obs.test.intern2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TraceTest, DormantSpansWriteNothing) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  set_trace_enabled(false);
  (void)drain_snapshot();
  { TLK_SPAN("obs.test.dormant"); }
  TLK_EVENT("obs.test.dormant_ev");
  set_trace_enabled(true);
  const auto snap = drain_snapshot();
  set_trace_enabled(false);
  EXPECT_TRUE(records_named(snap, "obs.test.dormant").empty());
  EXPECT_TRUE(records_named(snap, "obs.test.dormant_ev").empty());
}

TEST(TraceTest, NestedSpansParentUnderEachOther) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;

  const std::uint64_t trace = new_trace_id();
  {
    ContextScope root({trace, 0});
    TLK_SPAN("obs.test.outer");
    { TLK_SPAN_ARG("obs.test.inner", 7); }
  }
  const auto snap = drain_snapshot();

  const auto outer = records_named(snap, "obs.test.outer");
  const auto inner = records_named(snap, "obs.test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].trace_id, trace);
  EXPECT_EQ(inner[0].trace_id, trace);
  EXPECT_EQ(outer[0].parent_span, 0u);
  EXPECT_EQ(inner[0].parent_span, outer[0].span_id);
  EXPECT_NE(inner[0].span_id, outer[0].span_id);
  EXPECT_EQ(inner[0].arg, 7u);
  EXPECT_EQ(inner[0].kind, RecordKind::kSpan);
  // The inner span closed first, inside the outer's bounds.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST(TraceTest, EventsAttachToTheEnclosingSpan) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;
  {
    TLK_SPAN("obs.test.ev_parent");
    TLK_EVENT_ARG("obs.test.ev", 42);
  }
  const auto snap = drain_snapshot();
  const auto parent = records_named(snap, "obs.test.ev_parent");
  const auto ev = records_named(snap, "obs.test.ev");
  ASSERT_EQ(parent.size(), 1u);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, RecordKind::kEvent);
  EXPECT_EQ(ev[0].dur_ns, 0u);
  EXPECT_EQ(ev[0].arg, 42u);
  EXPECT_EQ(ev[0].parent_span, parent[0].span_id);
}

TEST(TraceTest, RankScopeTagsRecords) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;
  {
    RankScope rank(5);
    TLK_SPAN("obs.test.ranked");
  }
  { TLK_SPAN("obs.test.unranked"); }
  const auto snap = drain_snapshot();
  const auto ranked = records_named(snap, "obs.test.ranked");
  const auto unranked = records_named(snap, "obs.test.unranked");
  ASSERT_EQ(ranked.size(), 1u);
  ASSERT_EQ(unranked.size(), 1u);
  EXPECT_EQ(ranked[0].rank, 5u);
  EXPECT_EQ(unranked[0].rank, current_rank());
}

TEST(TraceTest, ThreadLabelSurfacesInSnapshot) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;
  std::thread([] {
    set_thread_label("obs-test-worker");
    TLK_SPAN("obs.test.labeled");
  }).join();
  const auto snap = drain_snapshot();
  bool found = false;
  for (const auto& t : snap.threads) {
    if (t.label == "obs-test-worker") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, SpanIdsAreUniqueAcrossThreads) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;
  constexpr int kThreads = 4;
  constexpr int kSpans = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TLK_SPAN("obs.test.unique");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = drain_snapshot();
  const auto recs = records_named(snap, "obs.test.unique");
  ASSERT_EQ(recs.size(), static_cast<std::size_t>(kThreads * kSpans));
  std::vector<std::uint64_t> ids;
  for (const auto& r : recs) ids.push_back(r.span_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 0u), 0);
}

TEST(TraceTest, ConcurrentWritersVersusDrain) {
  // The TSan exercise: writers hammer their rings (wrapping them many
  // times over) while the main thread drains concurrently. Every record
  // must be either drained or counted dropped — none lost, none invented.
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;

  constexpr int kWriters = 3;
  constexpr std::uint64_t kPerWriter = 60000;  // >> ring capacity
  std::atomic<int> running{kWriters};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&running] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        TLK_EVENT_ARG("obs.test.flood", i);
      }
      running.fetch_sub(1);
    });
  }

  std::uint64_t drained = 0;
  std::uint64_t dropped = 0;
  const auto absorb = [&](const TraceSnapshot& snap) {
    for (const auto& t : snap.threads) {
      dropped += t.dropped;
      for (const auto& r : t.records) {
        if (r.name_id < snap.names.size() &&
            snap.names[r.name_id] == "obs.test.flood") {
          ++drained;
        }
      }
    }
  };
  while (running.load() > 0) absorb(drain_snapshot());
  for (auto& t : writers) t.join();
  absorb(drain_snapshot());

  EXPECT_EQ(drained + dropped, kWriters * kPerWriter);
  EXPECT_GT(drained, 0u);
}

TEST(TraceTest, MergeSnapshotCombinesThreadRuns) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  TraceOn on;
  { TLK_SPAN("obs.test.merge_a"); }
  auto first = drain_snapshot();
  { TLK_SPAN("obs.test.merge_b"); }
  auto second = drain_snapshot();

  merge_snapshot(first, std::move(second));
  EXPECT_EQ(records_named(first, "obs.test.merge_a").size(), 1u);
  EXPECT_EQ(records_named(first, "obs.test.merge_b").size(), 1u);
}

}  // namespace
}  // namespace tulkun::obs
