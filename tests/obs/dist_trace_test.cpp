// Cross-process span propagation: trace contexts and trace blobs round-trip
// through dist_proto (including hostile truncation), and a 3-rank inproc
// DistributedRuntime run yields a merged trace with causally-linked,
// rank-tagged spans from every rank.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "eval/dist_run.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "runtime/dist_proto.hpp"

namespace tulkun::obs {
namespace {

TEST(DistProtoTraceTest, BeginCarriesTraceContext) {
  runtime::DistBegin b;
  b.epoch = 2;
  b.phase = 5;
  b.trace_id = 0xdeadbeefcafe;
  b.parent_span = 0x1234567890ab;
  const auto bytes = runtime::encode_dist(b);
  const auto back = std::get<runtime::DistBegin>(runtime::decode_dist(bytes));
  EXPECT_EQ(back.epoch, b.epoch);
  EXPECT_EQ(back.phase, b.phase);
  EXPECT_EQ(back.trace_id, b.trace_id);
  EXPECT_EQ(back.parent_span, b.parent_span);
}

TEST(DistProtoTraceTest, DataCarriesTraceContext) {
  runtime::DistData d;
  d.epoch = 1;
  d.dst_device = 17;
  d.frame = {1, 2, 3, 4};
  d.trace_id = 0xabc;
  d.parent_span = 0xdef;
  const auto bytes = runtime::encode_dist(d);
  const auto back = std::get<runtime::DistData>(runtime::decode_dist(bytes));
  EXPECT_EQ(back.frame, d.frame);
  EXPECT_EQ(back.trace_id, d.trace_id);
  EXPECT_EQ(back.parent_span, d.parent_span);
}

TEST(DistProtoTraceTest, VerdictsCarryTraceBlobAndTransportMetrics) {
  TraceSnapshot snap;
  snap.names = {"x"};
  ThreadTrace t;
  Record r;
  r.span_id = 9;
  r.name_id = 0;
  r.rank = 3;
  t.records.push_back(r);
  snap.threads.push_back(std::move(t));

  runtime::DistVerdicts v;
  v.rank = 3;
  v.violations = 1;
  v.rows = {"row"};
  v.transport.frames_sent = 10;
  v.transport.send_queue_depth = 4;
  v.transport.send_queue_peak = 8;
  v.trace = serialize_trace(snap);

  const auto bytes = runtime::encode_dist(v);
  const auto back =
      std::get<runtime::DistVerdicts>(runtime::decode_dist(bytes));
  EXPECT_EQ(back.transport.frames_sent, 10u);
  EXPECT_EQ(back.transport.send_queue_depth, 4u);
  EXPECT_EQ(back.transport.send_queue_peak, 8u);
  const auto got = deserialize_trace(back.trace);
  ASSERT_EQ(got.threads.size(), 1u);
  ASSERT_EQ(got.threads[0].records.size(), 1u);
  EXPECT_EQ(got.threads[0].records[0].span_id, 9u);
  EXPECT_EQ(got.threads[0].records[0].rank, 3u);
}

TEST(DistProtoTraceTest, TruncatedMessagesThrow) {
  runtime::DistBegin b;
  b.trace_id = 0x1;
  b.parent_span = 0x2;
  const auto bytes = runtime::encode_dist(b);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)runtime::decode_dist({bytes.data(), n}), Error)
        << "prefix length " << n;
  }

  runtime::DistVerdicts v;
  v.trace = serialize_trace(TraceSnapshot{});
  const auto vb = runtime::encode_dist(v);
  for (std::size_t n = 0; n < vb.size(); ++n) {
    EXPECT_THROW((void)runtime::decode_dist({vb.data(), n}), Error)
        << "prefix length " << n;
  }
}

/// Name of `r` resolved against its snapshot's intern table.
std::string name_of(const TraceSnapshot& snap, const Record& r) {
  return r.name_id < snap.names.size() ? snap.names[r.name_id] : "";
}

TEST(DistTraceTest, ThreeRankInprocRunMergesCausallyLinkedTraces) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "built with TULKUN_TRACE=OFF";
  set_trace_enabled(true);
  (void)drain_snapshot();  // start from a clean cursor

  eval::HarnessOptions opts;
  opts.max_destinations = 2;
  eval::DistOptions dist;
  dist.kind = net::TransportKind::Inproc;
  dist.device_procs = 3;
  dist.n_updates = 4;
  dist.collect_trace = true;
  const auto res = eval::dist_run(eval::dataset("INet2"), opts, dist);
  set_trace_enabled(false);

  ASSERT_FALSE(res.traces.empty());

  // Every rank contributed rank-tagged records, and device-side phase
  // spans adopted trace ids the coordinator minted.
  std::set<std::uint32_t> ranks;
  std::set<std::uint64_t> coordinator_traces;
  std::size_t total = 0;
  for (const auto& snap : res.traces) {
    for (const auto& t : snap.threads) {
      for (const auto& r : t.records) {
        ranks.insert(r.rank);
        ++total;
        if (name_of(snap, r) == "dist.phase") {
          coordinator_traces.insert(r.trace_id);
        }
      }
    }
  }
  EXPECT_GT(total, 0u);
  for (std::uint32_t rank = 0; rank <= 3; ++rank) {
    EXPECT_TRUE(ranks.count(rank)) << "no records from rank " << rank;
  }
  // One minted trace id per phase: burst + 4 updates.
  EXPECT_EQ(coordinator_traces.size(), 5u);
  EXPECT_FALSE(coordinator_traces.count(0));

  std::size_t linked = 0;
  for (const auto& snap : res.traces) {
    for (const auto& t : snap.threads) {
      for (const auto& r : t.records) {
        if (name_of(snap, r) != "dist.device_phase") continue;
        EXPECT_TRUE(coordinator_traces.count(r.trace_id))
            << "device phase span not under a coordinator trace";
        EXPECT_NE(r.parent_span, 0u);
        ++linked;
      }
    }
  }
  // 3 ranks x 5 phases (modulo ring overwrites, which this small run
  // cannot trigger: 8192 records/thread).
  EXPECT_EQ(linked, 15u);

  // The merged timeline exports as Chrome trace JSON with all four
  // process tracks.
  std::ostringstream os;
  write_chrome_trace(os, res.traces);
  const std::string json = os.str();
  for (std::uint32_t rank = 0; rank <= 3; ++rank) {
    EXPECT_NE(json.find("\"rank " + std::to_string(rank) + "\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace tulkun::obs
