// Exporter and registry coverage: TOBS binary round-trips (including
// hostile truncated/corrupt input), Chrome trace JSON shape, registry
// snapshot semantics, and a live HTTP scrape of the metrics endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tulkun::obs {
namespace {

TraceSnapshot sample_snapshot() {
  TraceSnapshot snap;
  snap.names = {"alpha", "beta.gamma", ""};
  ThreadTrace t0;
  t0.thread_index = 0;
  t0.label = "main";
  t0.dropped = 3;
  Record r;
  r.trace_id = 0x1111;
  r.span_id = 0x2222;
  r.parent_span = 0x3333;
  r.start_ns = 1000;
  r.dur_ns = 500;
  r.name_id = 0;
  r.rank = 2;
  r.kind = RecordKind::kSpan;
  r.arg = 99;
  t0.records.push_back(r);
  r.kind = RecordKind::kEvent;
  r.dur_ns = 0;
  r.name_id = 1;
  t0.records.push_back(r);
  snap.threads.push_back(std::move(t0));
  ThreadTrace t1;
  t1.thread_index = 7;
  t1.label = "shard7";
  snap.threads.push_back(std::move(t1));
  return snap;
}

TEST(ExportTest, SerializeRoundTrips) {
  const auto snap = sample_snapshot();
  const auto bytes = serialize_trace(snap);
  const auto back = deserialize_trace(bytes);

  ASSERT_EQ(back.names, snap.names);
  ASSERT_EQ(back.threads.size(), snap.threads.size());
  for (std::size_t i = 0; i < snap.threads.size(); ++i) {
    const auto& a = snap.threads[i];
    const auto& b = back.threads[i];
    EXPECT_EQ(b.thread_index, a.thread_index);
    EXPECT_EQ(b.label, a.label);
    EXPECT_EQ(b.dropped, a.dropped);
    ASSERT_EQ(b.records.size(), a.records.size());
    for (std::size_t j = 0; j < a.records.size(); ++j) {
      EXPECT_EQ(b.records[j].trace_id, a.records[j].trace_id);
      EXPECT_EQ(b.records[j].span_id, a.records[j].span_id);
      EXPECT_EQ(b.records[j].parent_span, a.records[j].parent_span);
      EXPECT_EQ(b.records[j].start_ns, a.records[j].start_ns);
      EXPECT_EQ(b.records[j].dur_ns, a.records[j].dur_ns);
      EXPECT_EQ(b.records[j].name_id, a.records[j].name_id);
      EXPECT_EQ(b.records[j].rank, a.records[j].rank);
      EXPECT_EQ(b.records[j].kind, a.records[j].kind);
      EXPECT_EQ(b.records[j].arg, a.records[j].arg);
    }
  }
}

TEST(ExportTest, EmptySnapshotRoundTrips) {
  const auto bytes = serialize_trace(TraceSnapshot{});
  const auto back = deserialize_trace(bytes);
  EXPECT_TRUE(back.names.empty());
  EXPECT_TRUE(back.threads.empty());
}

TEST(ExportTest, TruncationAtEveryPrefixThrows) {
  // Hostile input: every proper prefix must throw Error, never read past
  // the buffer or crash.
  const auto bytes = serialize_trace(sample_snapshot());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)deserialize_trace({bytes.data(), n}), Error)
        << "prefix length " << n;
  }
}

TEST(ExportTest, CorruptMagicAndCountsThrow) {
  auto bytes = serialize_trace(sample_snapshot());
  auto bad = bytes;
  bad[0] ^= 0xff;  // magic
  EXPECT_THROW((void)deserialize_trace(bad), Error);

  bad = bytes;
  bad[4] = 0x7f;  // version
  EXPECT_THROW((void)deserialize_trace(bad), Error);

  // A name count far beyond what the buffer could hold.
  bad = bytes;
  std::memset(bad.data() + 8, 0xff, 4);
  EXPECT_THROW((void)deserialize_trace(bad), Error);

  // Trailing garbage is rejected too.
  bad = bytes;
  bad.push_back(0);
  EXPECT_THROW((void)deserialize_trace(bad), Error);
}

TEST(ExportTest, ChromeTraceContainsTracksSpansAndFlows) {
  TraceSnapshot coord;
  coord.names = {"dist.phase"};
  ThreadTrace ct;
  ct.thread_index = 0;
  Record parent;
  parent.trace_id = 0xabc;
  parent.span_id = 0x111;
  parent.start_ns = 1000;
  parent.dur_ns = 9000;
  parent.name_id = 0;
  parent.rank = 0;
  ct.records.push_back(parent);
  coord.threads.push_back(std::move(ct));

  TraceSnapshot dev;
  dev.names = {"dist.device_phase", "net.rx_frame"};
  ThreadTrace dt;
  dt.thread_index = 0;
  Record child;
  child.trace_id = 0xabc;
  child.span_id = 0x222;
  child.parent_span = 0x111;  // lives on the coordinator: cross-pid flow
  child.start_ns = 2000;
  child.dur_ns = 1000;
  child.name_id = 0;
  child.rank = 1;
  dt.records.push_back(child);
  Record ev;
  ev.kind = RecordKind::kEvent;
  ev.name_id = 1;
  ev.rank = 1;
  ev.start_ns = 2500;
  dt.records.push_back(ev);
  dev.threads.push_back(std::move(dt));

  std::ostringstream os;
  write_chrome_trace(os, {coord, dev});
  const std::string json = os.str();

  // Track metadata for both ranks, the spans, the instant, and one
  // cross-process flow pair stitching child under parent.
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"dist.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"dist.device_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"net.rx_frame\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // JSON-object form with the traceEvents array (what Perfetto loads).
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.rfind("]}"), std::string::npos);
}

TEST(ExportTest, SamePidParentsDoNotEmitFlows) {
  TraceSnapshot snap;
  snap.names = {"outer", "inner"};
  ThreadTrace t;
  Record outer;
  outer.trace_id = 1;
  outer.span_id = 10;
  outer.start_ns = 0;
  outer.dur_ns = 100;
  outer.name_id = 0;
  t.records.push_back(outer);
  Record inner = outer;
  inner.span_id = 11;
  inner.parent_span = 10;
  inner.name_id = 1;
  t.records.push_back(inner);
  snap.threads.push_back(std::move(t));

  std::ostringstream os;
  write_chrome_trace(os, {snap});
  EXPECT_EQ(os.str().find("\"ph\":\"s\""), std::string::npos);
}

TEST(RegistryTest, CountersAccumulateAndMax) {
  auto& c = Registry::instance().counter("obs_test_counter_a");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  auto& peak = Registry::instance().counter("obs_test_peak_a");
  peak.max_of(10);
  peak.max_of(4);
  EXPECT_EQ(peak.value(), 10u);
  // Get-or-create returns the same counter.
  EXPECT_EQ(&Registry::instance().counter("obs_test_counter_a"), &c);
}

TEST(RegistryTest, SnapshotSumsSameNameSamples) {
  Registry::instance().counter("obs_test_dup").add(5);
  auto h = Registry::instance().add_provider([](std::vector<Sample>& out) {
    out.push_back({"obs_test_dup", 7.0});
  });
  double value = -1;
  for (const auto& s : Registry::instance().snapshot()) {
    if (s.name == "obs_test_dup") value = s.value;
  }
  EXPECT_DOUBLE_EQ(value, 12.0);
}

TEST(RegistryTest, ProviderHandleDeregistersOnDestruction) {
  {
    auto h = Registry::instance().add_provider([](std::vector<Sample>& out) {
      out.push_back({"obs_test_ephemeral", 1.0});
    });
    bool found = false;
    for (const auto& s : Registry::instance().snapshot()) {
      if (s.name == "obs_test_ephemeral") found = true;
    }
    EXPECT_TRUE(found);
  }
  for (const auto& s : Registry::instance().snapshot()) {
    EXPECT_NE(s.name, "obs_test_ephemeral");
  }
}

TEST(RegistryTest, PrometheusTextSanitizesNames) {
  Registry::instance().counter("obs test/bad-name").add(1);
  const std::string text = render_prometheus_text();
  EXPECT_NE(text.find("obs_test_bad_name"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

/// One-shot HTTP GET against `addr` ("ip:port"); returns the raw response.
std::string http_get(const std::string& addr) {
  const auto colon = addr.rfind(':');
  const std::string ip = addr.substr(0, colon);
  const int port = std::stoi(addr.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(inet_pton(AF_INET, ip.c_str(), &sa.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, req, sizeof(req) - 1),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) resp.append(buf, n);
  ::close(fd);
  return resp;
}

TEST(MetricsServerTest, ServesRegistrySnapshotOverHttp) {
  Registry::instance().counter("obs_test_http_counter").add(42);
  MetricsServer server;
  server.start("127.0.0.1:0");  // port 0: pick a free one
  ASSERT_FALSE(server.address().empty());

  const std::string resp = http_get(server.address());
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("text/plain"), std::string::npos);
  EXPECT_NE(resp.find("obs_test_http_counter 42"), std::string::npos);

  server.stop();
  server.stop();  // idempotent
}

}  // namespace
}  // namespace tulkun::obs
