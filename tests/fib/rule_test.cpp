#include "fib/rule.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace tulkun::fib {
namespace {

TEST(Action, DropIsEmpty) {
  const auto d = Action::drop();
  EXPECT_EQ(d.type, ActionType::Drop);
  EXPECT_TRUE(d.next_hops.empty());
  EXPECT_FALSE(d.forwards_to(0));
  EXPECT_EQ(d.to_string(), "drop");
}

TEST(Action, ForwardAllSortsAndDedupes) {
  const auto a = Action::forward_all({5, 2, 5, 9});
  EXPECT_EQ(a.type, ActionType::All);
  EXPECT_EQ(a.next_hops, (std::vector<DeviceId>{2, 5, 9}));
  EXPECT_TRUE(a.forwards_to(5));
  EXPECT_FALSE(a.forwards_to(3));
}

TEST(Action, SingletonAnyCanonicalizesToAll) {
  // A one-element ANY group is deterministic; equality with the ALL
  // spelling keeps LEC identity stable.
  EXPECT_EQ(Action::forward_any({7}), Action::forward_all({7}));
  EXPECT_EQ(Action::forward_any({7, 7}), Action::forward(7));
}

TEST(Action, AnyKeepsType) {
  const auto a = Action::forward_any({1, 2});
  EXPECT_EQ(a.type, ActionType::Any);
}

TEST(Action, EmptyGroupRejected) {
  EXPECT_THROW((void)Action::forward_all({}), Error);
  EXPECT_THROW((void)Action::forward_any({}), Error);
}

TEST(Action, DeliverUsesExternalPort) {
  const auto d = Action::deliver();
  EXPECT_TRUE(d.forwards_to(kExternalPort));
  EXPECT_EQ(d.to_string(), "fwd(ALL,{ext})");
}

TEST(Action, EqualityIncludesRewrite) {
  auto a = Action::forward(3);
  auto b = Action::forward(3, Rewrite{packet::Field::DstIp, 42});
  EXPECT_NE(a, b);
  EXPECT_EQ(b, Action::forward(3, Rewrite{packet::Field::DstIp, 42}));
  ActionHash h;
  EXPECT_NE(h(a), h(b));
}

TEST(Rule, MatchCombinesPrefixAndExtra) {
  packet::PacketSpace space;
  Rule r;
  r.dst_prefix = packet::Ipv4Prefix::parse("10.0.0.0/24");
  r.extra_match = space.dst_port(80);
  const auto m = r.match(space);
  EXPECT_EQ(m, space.dst_prefix(r.dst_prefix) & space.dst_port(80));
  EXPECT_FALSE(r.prefix_only());

  Rule plain;
  plain.dst_prefix = r.dst_prefix;
  EXPECT_TRUE(plain.prefix_only());
  EXPECT_EQ(plain.match(space), space.dst_prefix(r.dst_prefix));
}

}  // namespace
}  // namespace tulkun::fib
