#include "fib/update_stream.hpp"

#include <gtest/gtest.h>

#include "testutil/figure2.hpp"

namespace tulkun::fib {
namespace {

TEST(ApplyUpdate, InsertProducesDeltasAndAssignsId) {
  testutil::Figure2 fig;
  auto update = fig.b_reroute_to_w();
  const auto deltas = apply_update(fig.net, update);
  EXPECT_GT(update.rule_id, 0u);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front().old_action, Action::forward(fig.D));
  EXPECT_EQ(deltas.front().new_action, Action::forward(fig.W));
  EXPECT_EQ(deltas.front().pred, fig.P3() | fig.P4());
}

TEST(ApplyUpdate, EraseRestoresPreviousAction) {
  testutil::Figure2 fig;
  auto insert = fig.b_reroute_to_w();
  (void)apply_update(fig.net, insert);

  auto erase = FibUpdate::erase(fig.B, insert.rule_id);
  const auto deltas = apply_update(fig.net, erase);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front().old_action, Action::forward(fig.W));
  EXPECT_EQ(deltas.front().new_action, Action::forward(fig.D));
  // The erased rule is reported back for observers.
  EXPECT_EQ(erase.rule.dst_prefix, fig.p34);
}

TEST(ApplyUpdate, ShadowedInsertYieldsNoDeltas) {
  testutil::Figure2 fig;
  Rule r;
  r.priority = 1;  // below B's existing rule
  r.dst_prefix = fig.p34;
  r.action = Action::forward(fig.W);
  auto update = FibUpdate::insert(fig.B, std::move(r));
  EXPECT_TRUE(apply_update(fig.net, update).empty());
}

TEST(ApplyUpdate, NewPrefixCarvesDropRegion) {
  testutil::Figure2 fig;
  Rule r;
  r.priority = 10;
  r.dst_prefix = packet::Ipv4Prefix::parse("10.0.2.0/24");  // C's prefix
  r.action = Action::forward(fig.A);
  auto update = FibUpdate::insert(fig.S, std::move(r));
  const auto deltas = apply_update(fig.net, update);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front().old_action, Action::drop());
  EXPECT_EQ(deltas.front().new_action, Action::forward(fig.A));
}

TEST(NetworkFib, CountsRules) {
  testutil::Figure2 fig;
  // S:1, A:3, B:1, W:1, D:1, C:0.
  EXPECT_EQ(fig.net.total_rules(), 7u);
}

}  // namespace
}  // namespace tulkun::fib
