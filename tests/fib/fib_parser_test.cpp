#include "fib/fib_parser.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace tulkun::fib {
namespace {

class FibParserTest : public ::testing::Test {
 protected:
  topo::Topology topo = topo::figure2_network();
  NetworkFib net{topo};
};

TEST_F(FibParserTest, ParsesAllActionKinds) {
  parse_fib(
      "# demo plane\n"
      "rule S 10.0.0.0/23 prio 10 fwd A\n"
      "rule A 10.0.0.0/24 prio 10 fwd-all B W\n"
      "rule A 10.0.1.0/24 prio 20 port 80 fwd-any B W\n"
      "rule B 10.0.0.0/24 prio 10 drop\n"
      "rule D 10.0.0.0/23 prio 10 deliver\n",
      net);
  EXPECT_EQ(net.total_rules(), 5u);

  const auto* s_rule = net.table(topo.device("S")).ordered().front();
  EXPECT_EQ(s_rule->action, Action::forward(topo.device("A")));

  const auto a_rules = net.table(topo.device("A")).ordered();
  EXPECT_EQ(a_rules[0]->action.type, ActionType::Any);
  ASSERT_TRUE(a_rules[0]->extra_match.has_value());
  EXPECT_EQ(*a_rules[0]->extra_match, net.space().dst_port(80));
  EXPECT_EQ(a_rules[1]->action.type, ActionType::All);

  EXPECT_EQ(net.table(topo.device("B")).ordered().front()->action,
            Action::drop());
  EXPECT_TRUE(net.table(topo.device("D"))
                  .ordered()
                  .front()
                  ->action.forwards_to(kExternalPort));
}

TEST_F(FibParserTest, ParsesRewrite) {
  parse_fib("rule A 10.0.9.0/24 prio 10 rewrite-dst 192.168.0.1 fwd W\n",
            net);
  const auto* r = net.table(topo.device("A")).ordered().front();
  ASSERT_TRUE(r->action.rewrite.has_value());
  EXPECT_EQ(r->action.rewrite->field, packet::Field::DstIp);
  EXPECT_EQ(r->action.rewrite->value, packet::parse_ipv4("192.168.0.1"));
}

TEST_F(FibParserTest, RejectsMalformed) {
  EXPECT_THROW(parse_fib("frobnicate\n", net), Error);
  EXPECT_THROW(parse_fib("rule Z 10.0.0.0/24 prio 1 fwd A\n", net), Error);
  EXPECT_THROW(parse_fib("rule S 10.0.0.0/24 prio 1 fwd Z\n", net), Error);
  EXPECT_THROW(parse_fib("rule S 10.0.0.0/24 prio 1 teleport A\n", net),
               Error);
  EXPECT_THROW(parse_fib("rule S 10.0.0.0/24 prio 1 fwd\n", net), Error);
  EXPECT_THROW(parse_fib("rule S 10.0.0.0/24 prio 1 drop extra\n", net),
               Error);
  EXPECT_THROW(parse_fib("rule S 10.0.0.0/24 prio 1 rewrite-dst 1.2.3.4 "
                         "drop\n",
                         net),
               Error);
}

TEST_F(FibParserTest, RoundTrips) {
  const char* text =
      "rule A 10.0.1.0/24 prio 20 port 80 fwd-any B W\n"
      "rule A 10.0.1.0/24 prio 10 fwd-all W\n"
      "rule B 10.0.0.0/24 prio 10 drop\n"
      "rule D 10.0.0.0/23 prio 10 deliver\n"
      "rule S 10.0.9.0/24 prio 10 rewrite-dst 192.168.0.1 fwd-all A\n";
  parse_fib(text, net);
  const auto emitted = to_text(net);

  NetworkFib reparsed(topo);
  parse_fib(emitted, reparsed);
  EXPECT_EQ(reparsed.total_rules(), net.total_rules());
  EXPECT_EQ(to_text(reparsed), emitted);
}

TEST_F(FibParserTest, ToTextRejectsInexpressibleMatch) {
  fib::Rule r;
  r.priority = 10;
  r.dst_prefix = packet::Ipv4Prefix::parse("10.0.0.0/24");
  r.extra_match = net.space().field_range(packet::Field::DstPort, 10, 20);
  r.action = Action::forward(topo.device("A"));
  net.table(topo.device("S")).insert(r);
  EXPECT_THROW((void)to_text(net), Error);
}

}  // namespace
}  // namespace tulkun::fib
