#include "fib/fib_table.hpp"

#include <gtest/gtest.h>

namespace tulkun::fib {
namespace {

Rule make_rule(const char* cidr, std::int32_t priority, DeviceId hop) {
  Rule r;
  r.priority = priority;
  r.dst_prefix = packet::Ipv4Prefix::parse(cidr);
  r.action = Action::forward(hop);
  return r;
}

TEST(FibTable, InsertAssignsUniqueIds) {
  FibTable t;
  const auto a = t.insert(make_rule("10.0.0.0/24", 10, 1));
  const auto b = t.insert(make_rule("10.0.1.0/24", 10, 2));
  EXPECT_NE(a, b);
  EXPECT_TRUE(t.contains(a));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rule(a).action, Action::forward(1));
}

TEST(FibTable, EraseReturnsRule) {
  FibTable t;
  const auto id = t.insert(make_rule("10.0.0.0/24", 10, 1));
  const Rule r = t.erase(id);
  EXPECT_EQ(r.dst_prefix.to_string(), "10.0.0.0/24");
  EXPECT_FALSE(t.contains(id));
  EXPECT_THROW((void)t.erase(id), Error);
  EXPECT_THROW((void)t.rule(id), Error);
}

TEST(FibTable, OrderedByPriorityThenInsertion) {
  FibTable t;
  t.insert(make_rule("10.0.0.0/24", 10, 1));
  t.insert(make_rule("10.0.0.0/25", 30, 2));
  t.insert(make_rule("10.0.0.0/26", 30, 3));  // same prio, inserted later
  t.insert(make_rule("0.0.0.0/0", 0, 4));
  const auto ordered = t.ordered();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0]->action, Action::forward(2));
  EXPECT_EQ(ordered[1]->action, Action::forward(3));
  EXPECT_EQ(ordered[2]->action, Action::forward(1));
  EXPECT_EQ(ordered[3]->action, Action::forward(4));
}

TEST(FibTable, OverlappingFiltersByPrefix) {
  FibTable t;
  t.insert(make_rule("10.0.0.0/24", 10, 1));
  t.insert(make_rule("10.0.0.0/25", 10, 2));
  t.insert(make_rule("10.0.1.0/24", 10, 3));
  t.insert(make_rule("0.0.0.0/0", 0, 4));
  const auto hits = t.overlapping(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  // /24 itself, the /25 inside it, and the default route cover/overlap it.
  EXPECT_EQ(hits.size(), 3u);
}

TEST(RewriteImage, MapsPrefixOntoTarget) {
  packet::PacketSpace space;
  const auto src = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  const Rewrite rw{packet::Field::DstIp,
                   packet::parse_ipv4("192.168.0.1")};
  const auto image = rewrite_image(space, src, rw);
  EXPECT_EQ(image,
            space.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32")));
}

TEST(RewriteImage, PreservesOtherFields) {
  packet::PacketSpace space;
  const auto src = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")) &
                   space.dst_port(80);
  const Rewrite rw{packet::Field::DstIp,
                   packet::parse_ipv4("192.168.0.1")};
  const auto image = rewrite_image(space, src, rw);
  EXPECT_EQ(image,
            space.dst_prefix(packet::Ipv4Prefix::parse("192.168.0.1/32")) &
                space.dst_port(80));
}

TEST(RewritePreimage, InvertsImage) {
  packet::PacketSpace space;
  const Rewrite rw{packet::Field::DstPort, 8080};
  const auto target = space.dst_port(8080) &
                      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8"));
  const auto pre = rewrite_preimage(space, target, rw);
  // Preimage frees the rewritten field but keeps other constraints.
  EXPECT_EQ(pre, space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8")));
  // Image of the preimage lands back inside the target.
  EXPECT_TRUE(rewrite_image(space, pre, rw).subset_of(target));
}

TEST(RewritePreimage, EmptyWhenTargetExcludesWrittenValue) {
  packet::PacketSpace space;
  const Rewrite rw{packet::Field::DstPort, 8080};
  const auto target = space.dst_port(80);  // rewritten packets never match
  EXPECT_TRUE(rewrite_preimage(space, target, rw).empty());
}

}  // namespace
}  // namespace tulkun::fib
