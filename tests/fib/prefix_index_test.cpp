#include "fib/prefix_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hpp"
#include "fib/fib_table.hpp"

namespace tulkun::fib {
namespace {

packet::Ipv4Prefix pfx(const char* cidr) {
  return packet::Ipv4Prefix::parse(cidr);
}

std::vector<std::uint32_t> collect_sorted(const PrefixTrie& t,
                                          const char* cidr) {
  std::vector<std::uint32_t> out;
  t.collect(pfx(cidr), out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PrefixTrie, CollectReturnsAncestorsAndDescendantsOnly) {
  PrefixTrie t;
  t.insert(1, pfx("10.0.0.0/8"));     // ancestor of the query
  t.insert(2, pfx("10.1.0.0/16"));    // the query itself
  t.insert(3, pfx("10.1.2.0/24"));    // descendant
  t.insert(4, pfx("10.2.0.0/16"));    // sibling: disjoint
  t.insert(5, pfx("192.168.0.0/16"));  // unrelated
  EXPECT_EQ(t.size(), 5u);

  EXPECT_EQ(collect_sorted(t, "10.1.0.0/16"),
            (std::vector<std::uint32_t>{1, 2, 3}));
  // Query below a stored leaf: the leaf is an ancestor.
  EXPECT_EQ(collect_sorted(t, "10.1.2.128/25"),
            (std::vector<std::uint32_t>{1, 2, 3}));
  // The /0 query overlaps everything.
  EXPECT_EQ(collect_sorted(t, "0.0.0.0/0"),
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
}

TEST(PrefixTrie, EraseRemovesAndPrunesSubtreeCounts) {
  PrefixTrie t;
  t.insert(1, pfx("10.1.0.0/16"));
  t.insert(2, pfx("10.1.0.0/16"));  // duplicate prefix, distinct id
  t.erase(1, pfx("10.1.0.0/16"));
  EXPECT_EQ(collect_sorted(t, "10.1.0.0/16"),
            (std::vector<std::uint32_t>{2}));
  t.erase(2, pfx("10.1.0.0/16"));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(collect_sorted(t, "0.0.0.0/0").empty());
}

TEST(DstPrefixHull, ExactPrefixesAndUnions) {
  packet::PacketSpace space;
  EXPECT_EQ(packet::dst_prefix_hull(space.dst_prefix(pfx("10.0.0.0/24"))),
            pfx("10.0.0.0/24"));
  EXPECT_EQ(packet::dst_prefix_hull(space.all()), pfx("0.0.0.0/0"));

  // Adjacent /24s collapse to the exact covering /23.
  const auto adjacent = space.dst_prefix(pfx("10.0.0.0/24")) |
                        space.dst_prefix(pfx("10.0.1.0/24"));
  EXPECT_EQ(packet::dst_prefix_hull(adjacent), pfx("10.0.0.0/23"));

  // Non-adjacent /24s hull to their longest common prefix.
  const auto apart = space.dst_prefix(pfx("10.0.0.0/24")) |
                     space.dst_prefix(pfx("10.0.2.0/24"));
  EXPECT_EQ(packet::dst_prefix_hull(apart), pfx("10.0.0.0/22"));

  // Constraints below dst-IP don't extend the hull...
  const auto with_port =
      space.dst_prefix(pfx("10.0.0.0/24")) & space.dst_port(80);
  EXPECT_EQ(packet::dst_prefix_hull(with_port), pfx("10.0.0.0/24"));
  // ...and a port-only predicate has no dst hull at all.
  EXPECT_EQ(packet::dst_prefix_hull(space.dst_port(80)), pfx("0.0.0.0/0"));
}

struct Probe {
  packet::PacketSet pred;
};

TEST(RegionIndexed, CandidatePruningAndMutation) {
  packet::PacketSpace space;
  RegionIndexed<Probe> idx(IndexKind::CibIn);
  idx.insert(Probe{space.dst_prefix(pfx("10.0.0.0/24"))});
  idx.insert(Probe{space.dst_prefix(pfx("10.0.1.0/24"))});
  idx.insert(Probe{space.dst_prefix(pfx("192.168.0.0/16"))});
  EXPECT_EQ(idx.size(), 3u);

  std::size_t visited = 0;
  idx.for_candidates(space.dst_prefix(pfx("10.0.0.0/24")), [&](const Probe&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 1u);  // siblings and unrelated entries pruned

  // Subtracting the whole /24 erases that entry; the others survive.
  idx.mutate_candidates(space.dst_prefix(pfx("10.0.0.0/24")), [&](Probe& p) {
    p.pred -= space.dst_prefix(pfx("10.0.0.0/24"));
  });
  EXPECT_EQ(idx.size(), 2u);

  // Shrinking an entry re-indexes it under its new hull.
  idx.mutate_candidates(space.dst_prefix(pfx("192.168.0.0/17")),
                        [&](Probe& p) {
                          p.pred &= space.dst_prefix(pfx("192.168.5.0/24"));
                        });
  visited = 0;
  idx.for_candidates(space.dst_prefix(pfx("192.168.5.0/24")),
                     [&](const Probe&) {
                       ++visited;
                       return true;
                     });
  EXPECT_EQ(visited, 1u);
  visited = 0;
  // A query under the OLD hull but outside the new one finds nothing.
  idx.for_candidates(space.dst_prefix(pfx("192.168.64.0/24")),
                     [&](const Probe&) {
                       ++visited;
                       return true;
                     });
  EXPECT_EQ(visited, 0u);
}

TEST(RegionIndexed, DisabledIndexDegradesToFullScan) {
  packet::PacketSpace space;
  RegionIndexed<Probe> idx(IndexKind::Loc);
  idx.insert(Probe{space.dst_prefix(pfx("10.0.0.0/24"))});
  idx.insert(Probe{space.dst_prefix(pfx("192.168.0.0/16"))});

  index_counters_reset();
  set_prefix_index_enabled(false);
  std::size_t visited = 0;
  idx.for_candidates(space.dst_prefix(pfx("10.0.0.0/24")), [&](const Probe&) {
    ++visited;
    return true;
  });
  set_prefix_index_enabled(true);
  EXPECT_EQ(visited, 2u);

  const auto counters =
      index_counters_snapshot()[static_cast<std::size_t>(IndexKind::Loc)];
  EXPECT_EQ(counters.queries, 1u);
  EXPECT_EQ(counters.full_scans, 1u);
  EXPECT_EQ(counters.skipped, 0u);
}

TEST(FibTableIndex, OverlappingMatchesLinearScan) {
  Rng rng(7);
  FibTable fib;
  for (int i = 0; i < 300; ++i) {
    Rule r;
    r.priority = static_cast<std::int32_t>(rng.index(5));
    const auto len = static_cast<std::uint8_t>(8 + rng.index(17));
    const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF));
    r.dst_prefix = packet::Ipv4Prefix{addr, len};
    r.action = Action::drop();
    fib.insert(std::move(r));
  }
  for (int q = 0; q < 50; ++q) {
    const auto len = static_cast<std::uint8_t>(rng.index(33));
    const packet::Ipv4Prefix query{
        static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF)), len};
    const auto indexed = fib.overlapping(query);
    set_prefix_index_enabled(false);
    const auto linear = fib.overlapping(query);
    set_prefix_index_enabled(true);
    ASSERT_EQ(indexed.size(), linear.size()) << query.to_string();
    for (std::size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i]->id, linear[i]->id);
    }
  }
}

}  // namespace
}  // namespace tulkun::fib
