#include "fib/lec.hpp"

#include <gtest/gtest.h>

#include "testutil/figure2.hpp"

namespace tulkun::fib {
namespace {

Rule prefix_rule(const char* cidr, std::int32_t priority, Action action) {
  Rule r;
  r.priority = priority;
  r.dst_prefix = packet::Ipv4Prefix::parse(cidr);
  r.action = std::move(action);
  return r;
}

TEST(LecBuilder, EmptyFibIsOneDropClass) {
  packet::PacketSpace space;
  FibTable fib;
  const auto lec = LecBuilder(space).build(fib);
  ASSERT_EQ(lec.size(), 1u);
  EXPECT_TRUE(lec.entries().front().pred.is_all());
  EXPECT_EQ(lec.entries().front().action, Action::drop());
}

TEST(LecBuilder, EntriesPartitionTheSpace) {
  packet::PacketSpace space;
  FibTable fib;
  fib.insert(prefix_rule("10.0.0.0/24", 10, Action::forward(1)));
  fib.insert(prefix_rule("10.0.0.0/25", 20, Action::forward(2)));
  fib.insert(prefix_rule("10.0.1.0/24", 10, Action::forward(1)));
  const auto lec = LecBuilder(space).build(fib);

  // Disjoint and covering.
  auto uni = space.none();
  for (std::size_t i = 0; i < lec.size(); ++i) {
    for (std::size_t j = i + 1; j < lec.size(); ++j) {
      EXPECT_FALSE(lec.entries()[i].pred.intersects(lec.entries()[j].pred));
    }
    uni |= lec.entries()[i].pred;
  }
  EXPECT_TRUE(uni.is_all());
}

TEST(LecBuilder, MinimalClassesGroupedByAction) {
  packet::PacketSpace space;
  FibTable fib;
  // Two prefixes with the same action must share one LEC.
  fib.insert(prefix_rule("10.0.0.0/24", 10, Action::forward(1)));
  fib.insert(prefix_rule("10.0.1.0/24", 10, Action::forward(1)));
  const auto lec = LecBuilder(space).build(fib);
  // forward(1) class + drop class.
  EXPECT_EQ(lec.size(), 2u);
  const auto fwd_pred =
      space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23"));
  EXPECT_EQ(lec.action_of(fwd_pred), Action::forward(1));
}

TEST(LecBuilder, PriorityShadowingRespected) {
  packet::PacketSpace space;
  FibTable fib;
  fib.insert(prefix_rule("10.0.0.0/24", 10, Action::forward(1)));
  fib.insert(prefix_rule("10.0.0.0/24", 20, Action::forward(2)));  // wins
  const auto lec = LecBuilder(space).build(fib);
  const auto pred = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(lec.action_of(pred), Action::forward(2));
}

TEST(LecBuilder, Figure2DevicesHaveExpectedClasses) {
  testutil::Figure2 fig;
  LecBuilder builder(fig.space());
  const auto lec_a = builder.build(fig.net.table(fig.A));
  // A: P2 -> ALL{B,W}; P3 -> ANY{B,W}; P4 -> W; rest -> drop.
  EXPECT_EQ(lec_a.size(), 4u);
  EXPECT_EQ(lec_a.action_of(fig.P2()),
            Action::forward_all({fig.B, fig.W}));
  EXPECT_EQ(lec_a.action_of(fig.P3()),
            Action::forward_any({fig.B, fig.W}));
  EXPECT_EQ(lec_a.action_of(fig.P4()), Action::forward(fig.W));

  const auto lec_b = builder.build(fig.net.table(fig.B));
  EXPECT_EQ(lec_b.action_of(fig.P3() | fig.P4()), Action::forward(fig.D));
  EXPECT_EQ(lec_b.action_of(fig.P2()), Action::drop());
}

TEST(LecTable, PartitionSplitsRegionByAction) {
  testutil::Figure2 fig;
  LecBuilder builder(fig.space());
  const auto lec_a = builder.build(fig.net.table(fig.A));
  const auto parts = lec_a.partition(fig.P1());
  // P1 = P2 ∪ P3 ∪ P4, three different actions at A.
  EXPECT_EQ(parts.size(), 3u);
  auto uni = fig.space().none();
  for (const auto& part : parts) uni |= part.pred;
  EXPECT_EQ(uni, fig.P1());
}

TEST(LecBuilder, DiffFindsChangedRegions) {
  packet::PacketSpace space;
  FibTable fib;
  const auto id = fib.insert(prefix_rule("10.0.0.0/24", 10, Action::forward(1)));
  LecBuilder builder(space);
  const auto before = builder.build(fib);
  (void)fib.erase(id);
  fib.insert(prefix_rule("10.0.0.0/25", 10, Action::forward(2)));
  const auto after = builder.build(fib);

  const auto deltas = builder.diff(before, after);
  // Changed: /25 flipped 1->2, and the other half of the /24 flipped 1->drop.
  ASSERT_EQ(deltas.size(), 2u);
  auto changed = space.none();
  for (const auto& d : deltas) {
    EXPECT_NE(d.old_action, d.new_action);
    changed |= d.pred;
  }
  EXPECT_EQ(changed, space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/24")));
}

TEST(LecBuilder, ApplyPatchMatchesFullRebuild) {
  packet::PacketSpace space;
  FibTable fib;
  fib.insert(prefix_rule("10.0.0.0/24", 10, Action::forward(1)));
  fib.insert(prefix_rule("10.0.1.0/24", 10, Action::forward(2)));
  LecBuilder builder(space);
  const auto before = builder.build(fib);

  // Insert a /25 override and patch only its region.
  const auto rule = prefix_rule("10.0.0.0/25", 20, Action::forward(3));
  const auto region = space.dst_prefix(rule.dst_prefix);
  fib.insert(rule);
  const auto after_region =
      builder.effective_in_region(fib, rule.dst_prefix, region);
  const auto patched = builder.apply_patch(before, region, after_region);
  const auto rebuilt = builder.build(fib);

  // Same partition: every point has the same action.
  for (const auto& e : rebuilt.entries()) {
    for (const auto& p : patched.partition(e.pred)) {
      EXPECT_EQ(p.action, e.action);
    }
  }
  EXPECT_EQ(patched.size(), rebuilt.size());
}

TEST(LecBuilder, RegionDeltasDetectShadowedUpdate) {
  packet::PacketSpace space;
  FibTable fib;
  fib.insert(prefix_rule("10.0.0.0/24", 100, Action::forward(1)));
  LecBuilder builder(space);
  const auto rule = prefix_rule("10.0.0.0/25", 10, Action::forward(2));
  const auto region = space.dst_prefix(rule.dst_prefix);
  const auto before = builder.effective_in_region(fib, rule.dst_prefix, region);
  fib.insert(rule);  // fully shadowed by the higher-priority /24
  const auto after = builder.effective_in_region(fib, rule.dst_prefix, region);
  EXPECT_TRUE(builder.region_deltas(before, after).empty());
}

}  // namespace
}  // namespace tulkun::fib
