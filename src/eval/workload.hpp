// Incremental-update and fault-scene workload generators (§9.2, §9.3.3,
// §9.3.4).
#pragma once

#include "eval/fib_synth.hpp"
#include "spec/ast.hpp"

namespace tulkun::eval {

/// One scripted update: insert a higher-priority reroute for an existing
/// destination prefix at a random device, or remove a previously inserted
/// reroute (roughly half each, like a route flap trace).
struct UpdatePlan {
  /// The update stream in application order. Erase entries reference the
  /// i-th insert via `erase_of` (resolved to rule ids as inserts happen).
  struct Step {
    fib::FibUpdate update;
    std::int32_t erase_of = -1;  // >= 0: erase the rule of that insert step
  };
  std::vector<Step> steps;
};

/// Generates `count` updates against the synthesized data plane. Reroutes
/// point to a random neighbor (biased toward ones that still reach the
/// destination, so most updates are benign — matching the paper's mostly
/// error-free update streams).
///
/// `drop_fraction` of the insert steps are Drop-class instead: a drop rule
/// for a random destination prefix at a random device. Each drop grows the
/// device's Drop equivalence class into a union of scattered prefixes
/// whose hull is 0.0.0.0/0 — the profile the destination-hull index cannot
/// prune (every query against the class is a full-width set op), which is
/// exactly where the atom tier is supposed to win.
[[nodiscard]] UpdatePlan random_updates(const topo::Topology& topo,
                                        fib::NetworkFib& net,
                                        std::size_t count,
                                        std::uint64_t seed,
                                        double drop_fraction = 0.0);

/// Samples `count` fault scenes with 1..max_links failed links (the paper
/// samples 50 scenes of <= 3 links from Microsoft WAN failure statistics).
[[nodiscard]] std::vector<spec::FaultScene> sample_fault_scenes(
    const topo::Topology& topo, std::size_t count, std::uint32_t max_links,
    std::uint64_t seed);

/// Adds every non-empty subset of each scene (deduplicated), so that links
/// failing one at a time always land on a precomputed scene.
[[nodiscard]] std::vector<spec::FaultScene> with_subsets(
    const std::vector<spec::FaultScene>& scenes);

}  // namespace tulkun::eval
