// Table/CDF printers: one function per figure family, so every bench
// binary prints the same rows/series the paper reports.
#pragma once

#include <ostream>

#include "eval/harness.hpp"

namespace tulkun::eval {

/// Figure 10: dataset statistics table.
void print_dataset_table(std::ostream& os,
                         const std::vector<DatasetSpec>& specs,
                         const HarnessOptions& opts);

/// Figure 11a: Tulkun burst time per dataset + acceleration ratio of each
/// centralized tool over Tulkun.
void print_burst_table(std::ostream& os,
                       const std::vector<Harness::Result>& results);

/// Figure 11b: percentage of incremental verifications below `threshold`.
void print_under_threshold_table(std::ostream& os,
                                 const std::vector<Harness::Result>& results,
                                 double threshold_seconds);

/// Figure 11c: 80%-quantile incremental verification time.
void print_quantile_table(std::ostream& os,
                          const std::vector<Harness::Result>& results,
                          double quantile);

/// Figure 12a/b/c: fault-scene verification tables.
void print_fault_tables(std::ostream& os,
                        const std::vector<Harness::FaultResult>& results,
                        double threshold_seconds, double quantile);

/// Figures 14/15: one CDF line per profile.
void print_cdf(std::ostream& os, const std::string& label,
               const Samples& samples, bool as_duration);

}  // namespace tulkun::eval
