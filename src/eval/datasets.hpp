// Dataset registry mirroring the paper's Figure 10 (13 datasets:
// WAN / LAN / DC). The paper uses four public datasets and synthesizes the
// rest from public topologies; we synthesize all of them (seeded, so runs
// are reproducible) with node/link counts shaped after the published
// topologies and rule counts scaled down by a documented factor so that
// benches finish in minutes. AT1-2/AT2-2 share topologies with
// AT1-1/AT2-1 but carry ~3.4x / ~12x the rules, reproducing the paper's
// rule-count sensitivity experiment.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace tulkun::eval {

enum class Family { Wan, FatTree, Clos };

struct DatasetSpec {
  std::string name;
  std::string kind;  // "WAN", "LAN", "DC"
  Family family = Family::Wan;

  // WAN parameters.
  std::uint32_t devices = 0;
  std::uint32_t links = 0;
  double max_latency = 0.040;
  /// /24s announced per WAN device (rule-count scale knob).
  std::uint32_t prefixes_per_device = 1;

  // Fat-tree parameter.
  std::uint32_t fattree_k = 0;

  // Clos parameters.
  std::uint32_t clos_pods = 0;
  std::uint32_t clos_spines = 0;
  std::uint32_t clos_leaves = 0;
  std::uint32_t clos_cores = 0;

  std::uint64_t seed = 0;
  /// Extra more-specific rules per base route (rule-count inflation).
  std::uint32_t extra_rules = 0;
  std::string notes;  // approximation / scaling note
};

/// The 13 datasets in the paper's order:
/// INet2, B4-13, STFD, AT1-1, AT1-2, B4-18, BTNA, NTT, AT2-1, AT2-2,
/// OTEG, FT-48 (scaled to FT-8 by default), NGDC (scaled Clos).
[[nodiscard]] const std::vector<DatasetSpec>& all_datasets();

/// Lookup by name; throws Error if unknown.
[[nodiscard]] const DatasetSpec& dataset(const std::string& name);

/// WAN/LAN datasets only (the fault-tolerance experiments exclude DCs).
[[nodiscard]] std::vector<DatasetSpec> wan_lan_datasets();

[[nodiscard]] topo::Topology build_topology(const DatasetSpec& spec);

}  // namespace tulkun::eval
