// Evaluation harness: runs Tulkun and the centralized baselines on one
// dataset under the paper's scenarios (§9.2-§9.4) and collects the rows
// the figures report.
#pragma once

#include <memory>
#include <optional>

#include "baseline/centralized.hpp"
#include "eval/datasets.hpp"
#include "eval/workload.hpp"
#include "planner/planner.hpp"
#include "runtime/distributed.hpp"
#include "runtime/event_sim.hpp"

namespace tulkun::eval {

struct HarnessOptions {
  /// WAN/LAN invariant: (<= shortest + slack)-hop loop-free, blackhole-free
  /// all-pair reachability (§9.2). DC datasets use (== shortest).
  std::uint32_t slack = 2;
  std::uint32_t ecmp_width = 2;
  std::uint64_t seed = 42;
  double cpu_scale = 1.0;
  /// Baseline auxiliary-memory budget: beyond it a tool reports memory-out
  /// (reproduces Delta-net's NGDC behaviour at our scale).
  std::size_t memory_budget = 1ull << 31;
  /// Bound per-dataset work: verify at most this many destination devices
  /// (0 = all). The same sample drives every tool.
  std::size_t max_destinations = 0;
  /// Fraction of incremental inserts that are Drop-class (blackhole a
  /// random prefix): a /0-hull workload profile the destination-hull index
  /// cannot prune. See eval::random_updates.
  double drop_fraction = 0.0;
  /// Per-device engine knobs, forwarded to the simulator's verifiers and
  /// to the sharded runtime (whose pool size is engine.runtime_shards).
  dvm::EngineConfig engine;
  /// Planning concurrency for plan_all (PlanService workers, including the
  /// calling thread; 1 = serial, 0 = one per hardware thread). Output is
  /// byte-identical across worker counts.
  std::size_t plan_workers = 1;
  /// PlanService incremental mode (false replans everything per commit;
  /// the plans of one batch commit are identical either way).
  bool plan_incremental = true;
};

/// The §9.4 switch models, expressed as CPU slowdown factors relative to
/// the host (x86 Mellanox/UfiSpace/Edgecore; ARM Centec is the slowest).
struct SwitchProfile {
  std::string name;
  double cpu_scale;
};
[[nodiscard]] const std::vector<SwitchProfile>& switch_profiles();

class Harness {
 public:
  Harness(DatasetSpec spec, HarnessOptions opts);

  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] std::size_t total_rules();
  [[nodiscard]] const std::vector<DeviceId>& destinations() const {
    return dsts_;
  }

  struct ToolRow {
    std::string tool;
    double burst_seconds = 0.0;
    bool memory_out = false;
    std::size_t violations = 0;
    Samples incremental_seconds;
  };
  struct Result {
    std::string dataset;
    std::size_t devices = 0;
    std::size_t links = 0;
    std::size_t rules = 0;
    double tulkun_plan_seconds = 0.0;
    std::vector<ToolRow> rows;  // Tulkun first, then baselines
  };

  /// Figure 11: burst verification, then `n_updates` incremental updates.
  Result run(bool with_baselines, std::size_t n_updates);

  struct FaultToolRow {
    std::string tool;
    Samples scene_seconds;        // Fig 12a: verify whole net per scene
    Samples incremental_seconds;  // Fig 12b/c: updates under scenes
  };
  struct FaultResult {
    std::string dataset;
    std::size_t scenes = 0;
    double tulkun_plan_seconds = 0.0;
    std::vector<FaultToolRow> rows;
  };

  /// Figure 12: `n_scenes` sampled fault scenes (<= 3 links), each with
  /// `updates_per_scene` incremental updates.
  FaultResult run_faults(std::size_t n_scenes, std::size_t updates_per_scene,
                         bool with_baselines);

  struct DeviceOverhead {
    Samples init_seconds;    // Fig 14: per-device initialization time
    Samples init_memory;     // bytes
    Samples init_cpu;        // CPU load in [0,1]
    Samples msg_seconds;     // Fig 15: per-device total msg processing
    Samples msg_memory;
    Samples msg_cpu;
    Samples per_message_seconds;
  };
  /// Figures 14/15: replays initialization and the DVM message trace,
  /// measuring per-device cost under one switch profile.
  DeviceOverhead measure_overhead(const SwitchProfile& profile,
                                  std::size_t n_updates);

  /// All §9.4 switch profiles from ONE host measurement: every profile is
  /// a pure CPU slowdown factor, so durations are measured once at host
  /// speed and scaled per profile (4x cheaper than four measured runs).
  std::vector<std::pair<SwitchProfile, DeviceOverhead>> measure_overhead_all(
      std::size_t n_updates);

  struct DistributedRun {
    double burst_wall_seconds = 0.0;     // wall clock, not virtual time
    Samples incremental_wall_seconds;
    std::size_t violations = 0;
    std::size_t shards = 0;
    runtime::RuntimeMetrics metrics;
  };
  /// Replays the Figure 11 scenario on the sharded worker-pool runtime
  /// (wall-clock; opts.engine.runtime_shards selects the pool size).
  DistributedRun run_distributed(std::size_t n_updates);

  /// Deterministic world constructor for the multi-process
  /// DistributedRuntime: plans, initial FIBs and the update stream, all
  /// derived from this harness's dataset + options. Every process in a
  /// distributed run calls an identical builder and obtains an equivalent
  /// world (same plan order, same rule ids, same update steps), which is
  /// what makes epoch-replay recovery sound. The builder outlives `this`
  /// only if the Harness does; keep the Harness alive for the run.
  [[nodiscard]] runtime::WorldBuilder world_builder(std::size_t n_updates);

  /// Figure 13: planner latency to compute the k-link-failure tolerant
  /// DPVNets. Returns (seconds, scenes, capped?).
  struct PlanLatency {
    double seconds = 0.0;
    std::size_t scenes = 0;
    bool capped = false;
  };
  PlanLatency plan_latency(std::uint32_t k, std::size_t max_scenes);

 private:
  /// Per-destination invariant: all prefix-owning ingresses, regex
  /// `.* <dst>`, loop-free, the dataset's length filter.
  [[nodiscard]] spec::Invariant dst_invariant(packet::PacketSpace& space,
                                              DeviceId dst) const;
  /// Plans every destination invariant through a PlanService (parallel
  /// when opts_.plan_workers != 1; plans are identical regardless).
  [[nodiscard]] std::vector<planner::InvariantPlan> plan_all(
      packet::PacketSpace& space, const spec::FaultSpec& faults,
      double* seconds) const;

  struct TulkunRun {
    std::unique_ptr<packet::PacketSpace> space;
    std::unique_ptr<runtime::EventSimulator> sim;
    double burst_seconds = 0.0;
    double plan_seconds = 0.0;
    double now = 0.0;  // virtual time reached
  };
  TulkunRun start_tulkun(const spec::FaultSpec& faults);

  /// The measurement behind measure_overhead*: host CPU speed (scale 1).
  DeviceOverhead measure_overhead_host(std::size_t n_updates);

  DatasetSpec spec_;
  HarnessOptions opts_;
  topo::Topology topo_;
  std::vector<DeviceId> dsts_;
  std::optional<std::size_t> rules_cache_;
};

}  // namespace tulkun::eval
