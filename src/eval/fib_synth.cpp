#include "eval/fib_synth.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace tulkun::eval {

namespace {

/// Produces `count` DISTINCT more-specific children of `prefix`, taking 4
/// children two bits deeper, then 16 four bits deeper, and so on — the
/// rule-count inflation knob for the AT1-2/AT2-2 style datasets.
std::vector<packet::Ipv4Prefix> more_specifics(
    const packet::Ipv4Prefix& prefix, std::uint32_t count) {
  std::vector<packet::Ipv4Prefix> out;
  std::uint8_t extra_bits = 2;
  while (out.size() < count && prefix.len + extra_bits <= 32) {
    const auto child_len = static_cast<std::uint8_t>(prefix.len + extra_bits);
    const std::uint32_t fanout = 1U << extra_bits;
    for (std::uint32_t i = 0; i < fanout && out.size() < count; ++i) {
      const std::uint32_t child = prefix.addr | (i << (32 - child_len));
      out.emplace_back(child, child_len);
    }
    extra_bits += 2;
  }
  return out;
}

}  // namespace

fib::NetworkFib synthesize(const topo::Topology& topo,
                           const SynthOptions& opts) {
  fib::NetworkFib net(topo);
  Rng rng(opts.seed);

  for (DeviceId dst = 0; dst < topo.device_count(); ++dst) {
    const auto& prefixes = topo.prefixes(dst);
    if (prefixes.empty()) continue;
    const auto dist = topo.hop_distances_to(dst);

    for (DeviceId dev = 0; dev < topo.device_count(); ++dev) {
      if (dist[dev] == topo::Topology::kUnreachable) continue;

      fib::Action action;
      if (dev == dst) {
        action = fib::Action::deliver();
      } else {
        // Hop-shortest next hops, up to the ECMP width.
        std::vector<DeviceId> hops;
        for (const auto& adj : topo.neighbors(dev)) {
          if (dist[adj.neighbor] + 1 == dist[dev]) {
            hops.push_back(adj.neighbor);
          }
        }
        TULKUN_ASSERT(!hops.empty());
        std::shuffle(hops.begin(), hops.end(), rng.engine());
        if (hops.size() > opts.ecmp_width) hops.resize(opts.ecmp_width);
        action = hops.size() == 1 ? fib::Action::forward(hops.front())
                                  : fib::Action::forward_any(hops);
      }

      for (const auto& prefix : prefixes) {
        fib::Rule base;
        base.priority = 10;
        base.dst_prefix = prefix;
        base.action = action;
        net.table(dev).insert(base);
        for (const auto& child : more_specifics(prefix, opts.extra_rules)) {
          fib::Rule extra;
          extra.priority = 20;  // more specific wins
          extra.dst_prefix = child;
          extra.action = action;
          net.table(dev).insert(extra);
        }
      }
    }
  }
  return net;
}

void inject_blackhole(fib::NetworkFib& net, DeviceId at,
                      const packet::Ipv4Prefix& prefix) {
  fib::Rule r;
  r.priority = 1000;
  r.dst_prefix = prefix;
  r.action = fib::Action::drop();
  net.table(at).insert(r);
}

void inject_detour(fib::NetworkFib& net, DeviceId at, DeviceId towards,
                   const packet::Ipv4Prefix& prefix) {
  fib::Rule r;
  r.priority = 1000;
  r.dst_prefix = prefix;
  r.action = fib::Action::forward(towards);
  net.table(at).insert(r);
}

}  // namespace tulkun::eval
