#include "eval/datasets.hpp"

#include <algorithm>

#include "topo/generators.hpp"

namespace tulkun::eval {

namespace {

std::vector<DatasetSpec> make_registry() {
  std::vector<DatasetSpec> out;
  const auto wan = [&](std::string name, std::uint32_t devices,
                       std::uint32_t links, std::uint64_t seed,
                       std::uint32_t prefixes, std::uint32_t extra_rules,
                       std::string notes) {
    DatasetSpec s;
    s.name = std::move(name);
    s.kind = "WAN";
    s.family = Family::Wan;
    s.devices = devices;
    s.links = links;
    s.seed = seed;
    s.prefixes_per_device = prefixes;
    s.extra_rules = extra_rules;
    s.notes = std::move(notes);
    out.push_back(std::move(s));
  };

  wan("INet2", 9, 13, 0x1001, 24, 1,
      "9-device Internet2 WAN shape (paper testbed, §9.2)");
  wan("B4-13", 13, 19, 0x1002, 16, 1, "Google B4 (2013 paper) shape");
  wan("STFD", 16, 30, 0x1003, 16, 2,
      "Stanford campus backbone shape (16 routers)");
  out.back().kind = "LAN";
  wan("AT1-1", 25, 56, 0x1004, 8, 1, "Rocketfuel AS-shape, rule set 1");
  wan("AT1-2", 25, 56, 0x1004, 8, 6,
      "same topology as AT1-1, ~3.4x rules (rule-count sensitivity)");
  wan("B4-18", 18, 31, 0x1005, 12, 1, "Google B4-and-after (2018) shape");
  wan("BTNA", 36, 76, 0x1006, 6, 1, "BT North America shape");
  wan("NTT", 47, 96, 0x1007, 4, 1, "NTT backbone shape");
  wan("AT2-1", 60, 120, 0x1008, 3, 1,
      "larger Rocketfuel AS-shape, rule set 1");
  wan("AT2-2", 60, 120, 0x1008, 3, 23,
      "same topology as AT2-1, ~12x rules (rule-count sensitivity)");
  wan("OTEG", 93, 103, 0x1009, 2, 1,
      "OTEGlobe shape (sparse, large diameter)");

  DatasetSpec ft;
  ft.name = "FT-48";
  ft.kind = "DC";
  ft.family = Family::FatTree;
  ft.fattree_k = 8;  // paper: 48-ary (2880 switches); scaled to k=8 (80)
  ft.seed = 0x2001;
  ft.extra_rules = 0;
  ft.notes = "48-ary fat-tree scaled to k=8 (80 switches); pass k=48 for "
             "the full-size run";
  out.push_back(ft);

  DatasetSpec dc;
  dc.name = "NGDC";
  dc.kind = "DC";
  dc.family = Family::Clos;
  dc.clos_pods = 8;
  dc.clos_spines = 4;
  dc.clos_leaves = 8;
  dc.clos_cores = 8;
  dc.seed = 0x2002;
  dc.extra_rules = 1;
  dc.notes = "real Clos DC scaled to 8 pods x (4 spines + 8 ToRs) + 8 cores "
             "= 104 switches";
  out.push_back(dc);

  return out;
}

}  // namespace

const std::vector<DatasetSpec>& all_datasets() {
  static const std::vector<DatasetSpec> registry = make_registry();
  return registry;
}

const DatasetSpec& dataset(const std::string& name) {
  const auto& all = all_datasets();
  const auto it = std::find_if(
      all.begin(), all.end(),
      [&](const DatasetSpec& s) { return s.name == name; });
  if (it == all.end()) {
    throw Error("unknown dataset: " + name);
  }
  return *it;
}

std::vector<DatasetSpec> wan_lan_datasets() {
  std::vector<DatasetSpec> out;
  for (const auto& s : all_datasets()) {
    if (s.kind != "DC") out.push_back(s);
  }
  return out;
}

topo::Topology build_topology(const DatasetSpec& spec) {
  switch (spec.family) {
    case Family::Wan:
      return topo::synthetic_wan(spec.name + "_", spec.devices, spec.links,
                                 spec.seed, spec.max_latency,
                                 spec.prefixes_per_device);
    case Family::FatTree:
      return topo::fat_tree(spec.fattree_k);
    case Family::Clos:
      return topo::clos3(spec.clos_pods, spec.clos_spines, spec.clos_leaves,
                         spec.clos_cores);
  }
  throw Error("unreachable dataset family");
}

}  // namespace tulkun::eval
