#include "eval/harness.hpp"

#include <algorithm>
#include <chrono>

#include "core/rng.hpp"
#include "obs/trace.hpp"
#include "planner/plan_service.hpp"
#include "pred/atom_set.hpp"
#include "runtime/sharded_runtime.hpp"
#include "spec/builtins.hpp"

namespace tulkun::eval {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

regex::Ast any_to(DeviceId dst) {
  return regex::Ast::concat(
      {regex::Ast::star(regex::Ast::symbols_node(regex::SymbolSet::any())),
       regex::Ast::symbols_node(regex::SymbolSet::single(dst))});
}

/// Projects a host-speed overhead measurement onto a switch profile. Every
/// duration scales by the profile's CPU factor; memory is speed-invariant;
/// CPU load (busy/timeline) is scale-invariant to first order — compute
/// dominates both numerator and timeline, and host timing noise between
/// two measured runs exceeds the link-propagation correction.
Harness::DeviceOverhead scale_overhead(const Harness::DeviceOverhead& host,
                                       double cpu_scale) {
  Harness::DeviceOverhead out;
  for (const double v : host.init_seconds.values()) {
    out.init_seconds.add(v * cpu_scale);
  }
  out.init_memory = host.init_memory;
  out.init_cpu = host.init_cpu;
  for (const double v : host.msg_seconds.values()) {
    out.msg_seconds.add(v * cpu_scale);
  }
  out.msg_memory = host.msg_memory;
  out.msg_cpu = host.msg_cpu;
  for (const double v : host.per_message_seconds.values()) {
    out.per_message_seconds.add(v * cpu_scale);
  }
  return out;
}

}  // namespace

const std::vector<SwitchProfile>& switch_profiles() {
  // §9.4: three x86 switch CPUs of increasing age and one ARM (Centec),
  // which the paper finds markedly slower.
  static const std::vector<SwitchProfile> profiles = {
      {"Mellanox", 1.0},
      {"UfiSpace", 1.2},
      {"Edgecore", 1.45},
      {"Centec", 3.0},
  };
  return profiles;
}

Harness::Harness(DatasetSpec spec, HarnessOptions opts)
    : spec_(std::move(spec)), opts_(opts), topo_(build_topology(spec_)) {
  // Honor the TULKUN_ATOMS kill switch even when the harness is driven
  // outside the bench mains (tests, tools). Latch-once: flags already
  // applied by a bench's Args::parse stay in force.
  pred::apply_atom_env_overrides();
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    if (!topo_.prefixes(d).empty()) dsts_.push_back(d);
  }
  if (opts_.max_destinations > 0 && dsts_.size() > opts_.max_destinations) {
    Rng rng(opts_.seed ^ 0xd57);
    std::shuffle(dsts_.begin(), dsts_.end(), rng.engine());
    dsts_.resize(opts_.max_destinations);
    std::sort(dsts_.begin(), dsts_.end());
  }
}

std::size_t Harness::total_rules() {
  if (!rules_cache_) {
    const auto net = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    rules_cache_ = net.total_rules();
  }
  return *rules_cache_;
}

spec::Invariant Harness::dst_invariant(packet::PacketSpace& space,
                                       DeviceId dst) const {
  spec::Invariant inv;
  inv.name = "reach_" + topo_.name(dst);
  inv.packet_space = space.none();
  for (const auto& p : topo_.prefixes(dst)) {
    inv.packet_space |= space.dst_prefix(p);
  }
  inv.packet_space_text = "prefixes(" + topo_.name(dst) + ")";
  for (const DeviceId ing : dsts_.empty() ? topo_.all_devices() : dsts_) {
    if (ing != dst) inv.ingress_set.push_back(ing);
  }
  // WAN/LAN invariant (§9.2): loop-free blackhole-free reachability within
  // shortest+slack hops; DC (§9.3.1): all-ToR-pair shortest-path reach.
  spec::PathExpr pe;
  pe.regex_text = ".* " + topo_.name(dst);
  pe.ast = any_to(dst);
  pe.loop_free = true;
  spec::LengthFilter f;
  f.base = spec::LengthFilter::Base::Shortest;
  if (spec_.kind == "DC") {
    f.cmp = spec::LengthFilter::Cmp::Eq;
    f.offset = 0;
  } else {
    f.cmp = spec::LengthFilter::Cmp::Le;
    f.offset = static_cast<std::int32_t>(opts_.slack);
  }
  pe.filters.push_back(f);
  inv.behavior = spec::Behavior::exist(
      spec::CountExpr{spec::CountExpr::Cmp::Ge, 1}, std::move(pe));
  return inv;
}

std::vector<planner::InvariantPlan> Harness::plan_all(
    packet::PacketSpace& space, const spec::FaultSpec& faults,
    double* seconds) const {
  TLK_SPAN_ARG("harness.plan_all", dsts_.size());
  const auto t0 = std::chrono::steady_clock::now();
  planner::PlanServiceOptions sopts;
  sopts.workers = opts_.plan_workers;
  sopts.incremental = opts_.plan_incremental;
  planner::PlanService service(topo_, space, sopts);
  for (const DeviceId dst : dsts_) {
    spec::Invariant inv = dst_invariant(space, dst);
    inv.faults = faults;
    service.add_invariant(std::move(inv));
  }
  service.commit();
  std::vector<planner::InvariantPlan> plans;
  plans.reserve(dsts_.size());
  for (const auto* plan : service.plans()) plans.push_back(*plan);
  if (seconds != nullptr) *seconds = seconds_since(t0);
  return plans;
}

Harness::TulkunRun Harness::start_tulkun(const spec::FaultSpec& faults) {
  TulkunRun tr;
  tr.space = std::make_unique<packet::PacketSpace>();

  const auto plans = plan_all(*tr.space, faults, &tr.plan_seconds);

  runtime::SimConfig scfg;
  scfg.cpu_scale = opts_.cpu_scale;
  tr.sim = std::make_unique<runtime::EventSimulator>(topo_, scfg);
  tr.sim->make_devices(*tr.space, opts_.engine);
  for (const auto& plan : plans) {
    tr.sim->install(plan);
  }

  const auto net = synthesize(
      topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    tr.sim->post_initialize(d, net.table(d), 0.0);
  }
  tr.burst_seconds = tr.sim->run();
  tr.now = tr.burst_seconds;
  return tr;
}

Harness::Result Harness::run(bool with_baselines, std::size_t n_updates) {
  Result result;
  result.dataset = spec_.name;
  result.devices = topo_.device_count();
  result.links = topo_.link_count();
  result.rules = total_rules();

  // ---- Tulkun ----
  TulkunRun tr = start_tulkun(spec::FaultSpec{});
  result.tulkun_plan_seconds = tr.plan_seconds;

  ToolRow tulkun_row;
  tulkun_row.tool = "Tulkun";
  tulkun_row.burst_seconds = tr.burst_seconds;
  tulkun_row.violations = tr.sim->violations().size();

  {
    auto scratch = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    auto plan = random_updates(topo_, scratch, n_updates, opts_.seed + 1);
    std::vector<std::shared_ptr<const fib::FibUpdate>> handles(
        plan.steps.size());
    for (std::size_t i = 0; i < plan.steps.size(); ++i) {
      auto& step = plan.steps[i];
      fib::FibUpdate upd = step.update;
      if (step.erase_of >= 0) {
        upd.rule_id =
            handles[static_cast<std::size_t>(step.erase_of)]->rule_id;
      }
      const double post_time = tr.now;
      handles[i] = tr.sim->post_rule_update(upd.device, upd, post_time);
      const double end = tr.sim->run();
      tulkun_row.incremental_seconds.add(end - post_time);
      tr.now = std::max(tr.now, end);
    }
  }
  result.rows.push_back(std::move(tulkun_row));

  if (!with_baselines) return result;

  // ---- Centralized baselines ----
  Rng loc_rng(opts_.seed ^ 0xbeef);
  const auto verifier_loc =
      static_cast<DeviceId>(loc_rng.index(topo_.device_count()));

  for (auto& tool : baseline::make_all_baselines()) {
    auto net = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    auto queries =
        baseline::all_pair_queries(topo_, net.space(),
                                   spec_.kind == "DC" ? 0 : opts_.slack);
    std::erase_if(queries, [&](const baseline::Query& q) {
      return std::find(dsts_.begin(), dsts_.end(), q.dst) == dsts_.end() ||
             std::find(dsts_.begin(), dsts_.end(), q.ingress) == dsts_.end();
    });

    ToolRow row;
    row.tool = tool->name();
    row.burst_seconds = baseline::collection_latency(topo_, verifier_loc) +
                        tool->burst(net, queries);
    row.violations = tool->violations().size();
    row.memory_out = tool->memory_bytes() > opts_.memory_budget;

    if (!row.memory_out) {
      auto plan = random_updates(topo_, net, n_updates, opts_.seed + 1);
      std::vector<std::uint64_t> ids(plan.steps.size(), 0);
      for (std::size_t i = 0; i < plan.steps.size(); ++i) {
        auto& step = plan.steps[i];
        fib::FibUpdate upd = step.update;
        if (step.erase_of >= 0) {
          upd.rule_id = ids[static_cast<std::size_t>(step.erase_of)];
        }
        const auto deltas = fib::apply_update(net, upd);
        ids[i] = upd.rule_id;
        const double compute = tool->incremental(net, upd, deltas, queries);
        row.incremental_seconds.add(
            baseline::update_latency(topo_, verifier_loc, upd.device) +
            compute);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Harness::FaultResult Harness::run_faults(std::size_t n_scenes,
                                         std::size_t updates_per_scene,
                                         bool with_baselines) {
  FaultResult result;
  result.dataset = spec_.name;

  const auto sampled =
      sample_fault_scenes(topo_, n_scenes, 3, opts_.seed + 2);
  spec::FaultSpec faults;
  faults.scenes = with_subsets(sampled);
  result.scenes = sampled.size();

  // ---- Tulkun ----
  TulkunRun tr = start_tulkun(faults);
  result.tulkun_plan_seconds = tr.plan_seconds;

  FaultToolRow tulkun_row;
  tulkun_row.tool = "Tulkun";

  std::uint64_t update_seed = opts_.seed + 3;
  std::vector<UpdatePlan> scene_plans;  // replayed identically for baselines
  {
    auto scratch = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    for (std::size_t si = 0; si < sampled.size(); ++si) {
      scene_plans.push_back(random_updates(topo_, scratch, updates_per_scene,
                                           update_seed + si));
    }
  }

  for (std::size_t si = 0; si < sampled.size(); ++si) {
    const auto& scene = sampled[si];
    // Fail the scene's links; measure recount convergence (Fig 12a).
    const double fail_at = tr.now;
    for (const auto& link : scene.failed) {
      tr.sim->post_link_event(link, /*up=*/false, fail_at);
    }
    double end = tr.sim->run();
    tulkun_row.scene_seconds.add(end - fail_at);
    tr.now = std::max(tr.now, end);

    // Incremental updates under the scene (Fig 12b/c).
    std::vector<std::shared_ptr<const fib::FibUpdate>> handles(
        scene_plans[si].steps.size());
    for (std::size_t i = 0; i < scene_plans[si].steps.size(); ++i) {
      auto& step = scene_plans[si].steps[i];
      fib::FibUpdate upd = step.update;
      if (step.erase_of >= 0) {
        upd.rule_id =
            handles[static_cast<std::size_t>(step.erase_of)]->rule_id;
      }
      const double post_time = tr.now;
      handles[i] = tr.sim->post_rule_update(upd.device, upd, post_time);
      end = tr.sim->run();
      tulkun_row.incremental_seconds.add(end - post_time);
      tr.now = std::max(tr.now, end);
    }

    // Restore the links and reconverge before the next scene.
    for (const auto& link : scene.failed) {
      tr.sim->post_link_event(link, /*up=*/true, tr.now);
    }
    end = tr.sim->run();
    tr.now = std::max(tr.now, end);
  }
  result.rows.push_back(std::move(tulkun_row));

  if (!with_baselines) return result;

  Rng loc_rng(opts_.seed ^ 0xbeef);
  const auto verifier_loc =
      static_cast<DeviceId>(loc_rng.index(topo_.device_count()));

  for (auto& tool : baseline::make_all_baselines()) {
    auto net = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    auto queries =
        baseline::all_pair_queries(topo_, net.space(),
                                   spec_.kind == "DC" ? 0 : opts_.slack);
    std::erase_if(queries, [&](const baseline::Query& q) {
      return std::find(dsts_.begin(), dsts_.end(), q.dst) == dsts_.end() ||
             std::find(dsts_.begin(), dsts_.end(), q.ingress) == dsts_.end();
    });

    FaultToolRow row;
    row.tool = tool->name();
    (void)tool->burst(net, queries);  // setup (not a Fig 12 number)
    if (tool->memory_bytes() > opts_.memory_budget) {
      result.rows.push_back(std::move(row));
      continue;
    }

    for (std::size_t si = 0; si < sampled.size(); ++si) {
      // Scene verification: link state must reach the verifier, then the
      // tool re-checks every query on its existing EC structures.
      double notify = 0.0;
      for (const auto& link : sampled[si].failed) {
        notify = std::max(
            notify, baseline::update_latency(topo_, verifier_loc, link.from));
      }
      row.scene_seconds.add(notify + tool->reverify(net, queries));

      std::vector<std::uint64_t> ids(scene_plans[si].steps.size(), 0);
      for (std::size_t i = 0; i < scene_plans[si].steps.size(); ++i) {
        auto& step = scene_plans[si].steps[i];
        fib::FibUpdate upd = step.update;
        if (step.erase_of >= 0) {
          upd.rule_id = ids[static_cast<std::size_t>(step.erase_of)];
        }
        const auto deltas = fib::apply_update(net, upd);
        ids[i] = upd.rule_id;
        const double compute = tool->incremental(net, upd, deltas, queries);
        row.incremental_seconds.add(
            baseline::update_latency(topo_, verifier_loc, upd.device) +
            compute);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Harness::DeviceOverhead Harness::measure_overhead(
    const SwitchProfile& profile, std::size_t n_updates) {
  return scale_overhead(measure_overhead_host(n_updates), profile.cpu_scale);
}

std::vector<std::pair<SwitchProfile, Harness::DeviceOverhead>>
Harness::measure_overhead_all(std::size_t n_updates) {
  const DeviceOverhead host = measure_overhead_host(n_updates);
  std::vector<std::pair<SwitchProfile, DeviceOverhead>> out;
  for (const auto& profile : switch_profiles()) {
    out.emplace_back(profile, scale_overhead(host, profile.cpu_scale));
  }
  return out;
}

Harness::DeviceOverhead Harness::measure_overhead_host(
    std::size_t n_updates) {
  DeviceOverhead out;
  constexpr double kCores = 4.0;

  // Phase 1 (Fig 14): per-device initialization, measured standalone.
  auto space = std::make_unique<packet::PacketSpace>();
  double plan_seconds = 0.0;
  const auto plans = plan_all(*space, spec::FaultSpec{}, &plan_seconds);
  const auto net = synthesize(
      topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});

  std::vector<std::unique_ptr<verifier::OnDeviceVerifier>> devices;
  std::vector<double> init_durations(topo_.device_count(), 0.0);
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    auto dev = std::make_unique<verifier::OnDeviceVerifier>(
        d, topo_, *space, opts_.engine);
    for (const auto& plan : plans) dev->install(plan);
    const auto t0 = std::chrono::steady_clock::now();
    (void)dev->initialize(net.table(d));
    const double dur = seconds_since(t0);
    init_durations[d] = dur;
    out.init_seconds.add(dur);
    out.init_memory.add(static_cast<double>(dev->memory_bytes()));
    devices.push_back(std::move(dev));
  }
  const double init_makespan =
      *std::max_element(init_durations.begin(), init_durations.end());
  for (const double dur : init_durations) {
    out.init_cpu.add(init_makespan > 0.0 ? dur / (init_makespan * kCores)
                                         : 0.0);
  }

  // Phase 2 (Fig 15): run the full evaluation in the simulator, collecting
  // the DVM message trace per device, then report processing costs.
  runtime::SimConfig scfg;
  scfg.cpu_scale = 1.0;
  runtime::EventSimulator sim(topo_, scfg);
  sim.make_devices(*space, opts_.engine);
  for (const auto& plan : plans) sim.install(plan);
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  double now = sim.run();
  {
    auto scratch = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    auto plan = random_updates(topo_, scratch, n_updates, opts_.seed + 1);
    std::vector<std::shared_ptr<const fib::FibUpdate>> handles(
        plan.steps.size());
    for (std::size_t i = 0; i < plan.steps.size(); ++i) {
      auto& step = plan.steps[i];
      fib::FibUpdate upd = step.update;
      if (step.erase_of >= 0) {
        upd.rule_id =
            handles[static_cast<std::size_t>(step.erase_of)]->rule_id;
      }
      handles[i] = sim.post_rule_update(upd.device, upd, now);
      now = std::max(now, sim.run());
    }
  }

  for (const double s : sim.stats().per_message_seconds.values()) {
    out.per_message_seconds.add(s);
  }
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    const double busy = sim.device_busy_seconds(d);
    out.msg_seconds.add(busy);
    out.msg_memory.add(static_cast<double>(sim.device(d).memory_bytes()));
    out.msg_cpu.add(now > 0.0 ? busy / (now * kCores) : 0.0);
  }
  return out;
}

Harness::DistributedRun Harness::run_distributed(std::size_t n_updates) {
  DistributedRun out;
  // Scope the process-global index counters to this run.
  fib::index_counters_reset();

  // Plan in a dedicated space; the runtime localizes each plan into every
  // device's private space through the wire codec.
  packet::PacketSpace plan_space;
  double plan_seconds = 0.0;
  const auto plans = plan_all(plan_space, spec::FaultSpec{}, &plan_seconds);

  runtime::ShardedRuntime rt(topo_, opts_.engine);
  out.shards = rt.shard_count();
  for (const auto& plan : plans) rt.install(plan);

  const auto net = synthesize(
      topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
  const auto t0 = std::chrono::steady_clock::now();
  for (DeviceId d = 0; d < topo_.device_count(); ++d) {
    rt.post_initialize(d, net.table(d));
  }
  rt.wait_quiescent();
  out.burst_wall_seconds = seconds_since(t0);

  auto scratch = synthesize(
      topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
  auto plan = random_updates(topo_, scratch, n_updates, opts_.seed + 1,
                             opts_.drop_fraction);
  std::vector<std::shared_ptr<const fib::FibUpdate>> handles(
      plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    auto& step = plan.steps[i];
    fib::FibUpdate upd = step.update;
    if (step.erase_of >= 0) {
      upd.rule_id = handles[static_cast<std::size_t>(step.erase_of)]->rule_id;
    }
    const auto u0 = std::chrono::steady_clock::now();
    handles[i] = rt.post_rule_update(upd.device, upd);
    rt.wait_quiescent();
    out.incremental_wall_seconds.add(seconds_since(u0));
  }

  out.violations = rt.violations().size();
  out.metrics = rt.metrics();
  return out;
}

runtime::WorldBuilder Harness::world_builder(std::size_t n_updates) {
  return [this, n_updates]() {
    runtime::DistWorld world;
    // One space backs everything shipped in the world; devices localize
    // out of it through the wire codec exactly like ShardedRuntime does.
    auto space = std::make_shared<packet::PacketSpace>();
    world.plans = plan_all(*space, spec::FaultSpec{}, nullptr);

    auto net = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    world.tables.reserve(topo_.device_count());
    for (DeviceId d = 0; d < topo_.device_count(); ++d) {
      world.tables.push_back(runtime::localize_fib(net.table(d), *space));
    }

    auto scratch = synthesize(
        topo_, SynthOptions{opts_.ecmp_width, spec_.extra_rules, opts_.seed});
    const auto plan = random_updates(topo_, scratch, n_updates,
                                     opts_.seed + 1);
    world.steps.reserve(plan.steps.size());
    for (const auto& step : plan.steps) {
      runtime::DistWorld::Step s;
      s.update = step.update;
      if (s.update.kind == fib::FibUpdate::Kind::Insert) {
        s.update.rule = runtime::localize_rule(step.update.rule, *space);
      } else {
        // Erases are identified by rule_id; drop the rule so no predicate
        // from the scratch space (which dies with this builder call)
        // escapes into the world.
        s.update.rule = fib::Rule{};
      }
      s.erase_of = step.erase_of;
      world.steps.push_back(std::move(s));
    }
    world.keepalive = std::move(space);
    return world;
  };
}

Harness::PlanLatency Harness::plan_latency(std::uint32_t k,
                                           std::size_t max_scenes) {
  PlanLatency out;
  spec::FaultSpec faults;
  if (k > 0) {
    // Expand explicitly so we can cap deterministically.
    spec::FaultSpec any;
    any.any_k = k;
    std::vector<spec::FaultScene> scenes;
    try {
      scenes = dpvnet::expand_scenes(topo_, any, max_scenes);
    } catch (const Error&) {
      // Too many k-combinations: fall back to a sampled scene set of the
      // same failure sizes and report the run as capped.
      out.capped = true;
      const auto sampled =
          sample_fault_scenes(topo_, max_scenes / 4 + 1, k, opts_.seed + 7);
      scenes = with_subsets(sampled);
      if (scenes.size() > max_scenes) scenes.resize(max_scenes);
    }
    // Scene 0 is implicit in planning; strip it from the explicit list.
    std::erase_if(scenes,
                  [](const spec::FaultScene& s) { return s.failed.empty(); });
    faults.scenes = std::move(scenes);
  }
  out.scenes = faults.scenes.size() + 1;

  packet::PacketSpace space;
  (void)plan_all(space, faults, &out.seconds);
  return out;
}

}  // namespace tulkun::eval
