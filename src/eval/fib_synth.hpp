// FIB synthesis: shortest-path routing with ECMP toward every attached
// prefix, plus rule-count inflation and error injection.
//
// Substitution note (see DESIGN.md): the paper installs real FIB dumps; we
// synthesize routes over the same topology shapes. Every DPV tool under
// test sees cost driven by (#rules, #prefixes, topology, diameter), all of
// which these FIBs reproduce.
#pragma once

#include "fib/update_stream.hpp"
#include "topo/topology.hpp"

namespace tulkun::eval {

struct SynthOptions {
  /// Maximum ECMP fan-out; >1 creates ANY-type next-hop groups.
  std::uint32_t ecmp_width = 2;
  /// Additional more-specific rules per base route (same action), to match
  /// a dataset's rule-count scale.
  std::uint32_t extra_rules = 0;
  std::uint64_t seed = 1;
};

/// Builds the full network data plane: for each device with attached
/// prefixes, every other device routes toward it along hop-shortest paths
/// (up to ecmp_width next hops, ANY-type when more than one); the owner
/// delivers externally.
[[nodiscard]] fib::NetworkFib synthesize(const topo::Topology& topo,
                                         const SynthOptions& opts);

/// Error injection for functionality demos and violation-detection tests.

/// Makes `at` drop packets destined to `prefix` (a blackhole).
void inject_blackhole(fib::NetworkFib& net, DeviceId at,
                      const packet::Ipv4Prefix& prefix);

/// Makes `at` forward `prefix` back toward `towards` (creates a loop when
/// `towards` routes through `at`).
void inject_detour(fib::NetworkFib& net, DeviceId at, DeviceId towards,
                   const packet::Ipv4Prefix& prefix);

}  // namespace tulkun::eval
