#include "eval/workload.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace tulkun::eval {

UpdatePlan random_updates(const topo::Topology& topo, fib::NetworkFib& net,
                          std::size_t count, std::uint64_t seed,
                          double drop_fraction) {
  Rng rng(seed);
  UpdatePlan plan;

  // Destinations that exist in the data plane.
  std::vector<std::pair<DeviceId, packet::Ipv4Prefix>> dests =
      topo.all_prefix_attachments();
  if (dests.empty() || topo.device_count() < 2) return plan;

  std::vector<std::int32_t> open_inserts;  // step indices not yet erased
  for (std::size_t i = 0; i < count; ++i) {
    const bool do_erase = !open_inserts.empty() && rng.chance(0.5);
    UpdatePlan::Step step;
    if (do_erase) {
      const std::size_t pick = rng.index(open_inserts.size());
      step.erase_of = open_inserts[pick];
      open_inserts.erase(open_inserts.begin() +
                         static_cast<std::ptrdiff_t>(pick));
      step.update.kind = fib::FibUpdate::Kind::Erase;
      step.update.device =
          plan.steps[static_cast<std::size_t>(step.erase_of)].update.device;
    } else {
      const auto& [dst, prefix] = dests[rng.index(dests.size())];
      DeviceId dev = dst;
      while (dev == dst) {
        dev = static_cast<DeviceId>(rng.index(topo.device_count()));
      }
      // Guarded so drop_fraction == 0 consumes no draw: the default stream
      // stays bit-identical to the one published benches recorded.
      if (drop_fraction > 0.0 && rng.chance(drop_fraction)) {
        // Drop-class step: blackhole the prefix at this device. Dropped
        // prefixes scatter across destinations, so the Drop equivalence
        // class hulls out to /0 (see header).
        fib::Rule r;
        r.priority = 150 + static_cast<std::int32_t>(i % 10);
        r.dst_prefix = prefix;
        r.action = fib::Action::drop();
        step.update = fib::FibUpdate::insert(dev, std::move(r));
        open_inserts.push_back(static_cast<std::int32_t>(plan.steps.size()));
        plan.steps.push_back(std::move(step));
        continue;
      }
      const auto dist = topo.hop_distances_to(dst);
      // Prefer a neighbor that still makes progress toward the
      // destination (benign reroute); occasionally pick any neighbor,
      // which may create a detour or loop the verifier must flag.
      const auto& neighbors = topo.neighbors(dev);
      std::vector<DeviceId> good;
      for (const auto& adj : neighbors) {
        if (dist[adj.neighbor] != topo::Topology::kUnreachable &&
            dist[adj.neighbor] < dist[dev]) {
          good.push_back(adj.neighbor);
        }
      }
      DeviceId hop;
      if (!good.empty() && !rng.chance(0.05)) {
        hop = good[rng.index(good.size())];
      } else {
        hop = neighbors[rng.index(neighbors.size())].neighbor;
      }
      fib::Rule r;
      r.priority = 100 + static_cast<std::int32_t>(i % 10);
      r.dst_prefix = prefix;
      r.action = fib::Action::forward(hop);
      step.update = fib::FibUpdate::insert(dev, std::move(r));
      open_inserts.push_back(static_cast<std::int32_t>(plan.steps.size()));
    }
    plan.steps.push_back(std::move(step));
  }
  (void)net;
  return plan;
}

std::vector<spec::FaultScene> sample_fault_scenes(const topo::Topology& topo,
                                                  std::size_t count,
                                                  std::uint32_t max_links,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LinkId> links;
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    for (const auto& adj : topo.neighbors(d)) {
      if (adj.neighbor > d) links.push_back(LinkId{d, adj.neighbor});
    }
  }

  std::vector<spec::FaultScene> out;
  for (std::size_t i = 0; i < count && !links.empty(); ++i) {
    // Paper §9.3.4: scene sizes follow Microsoft WAN failure statistics —
    // single-link failures dominate.
    const double roll = rng.real();
    std::uint32_t size = roll < 0.70 ? 1 : (roll < 0.92 ? 2 : 3);
    size = std::min(size, max_links);
    std::vector<LinkId> failed;
    while (failed.size() < size) {
      const LinkId l = links[rng.index(links.size())];
      if (std::find(failed.begin(), failed.end(), l) == failed.end()) {
        failed.push_back(l);
      }
    }
    auto scene = spec::FaultScene::of(std::move(failed));
    if (std::find(out.begin(), out.end(), scene) == out.end()) {
      out.push_back(std::move(scene));
    }
  }
  return out;
}

std::vector<spec::FaultScene> with_subsets(
    const std::vector<spec::FaultScene>& scenes) {
  std::vector<spec::FaultScene> out;
  const auto add_unique = [&](spec::FaultScene s) {
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(std::move(s));
    }
  };
  for (const auto& scene : scenes) {
    const auto n = scene.failed.size();
    for (std::size_t mask = 1; mask < (1ULL << n); ++mask) {
      std::vector<LinkId> subset;
      for (std::size_t b = 0; b < n; ++b) {
        if (mask & (1ULL << b)) subset.push_back(scene.failed[b]);
      }
      add_unique(spec::FaultScene::of(std::move(subset)));
    }
  }
  return out;
}

}  // namespace tulkun::eval
