#include "eval/report.hpp"

#include <iomanip>

namespace tulkun::eval {

namespace {

void header(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace

void print_dataset_table(std::ostream& os,
                         const std::vector<DatasetSpec>& specs,
                         const HarnessOptions& opts) {
  header(os, "Figure 10: dataset statistics");
  os << std::left << std::setw(8) << "name" << std::setw(6) << "kind"
     << std::setw(10) << "devices" << std::setw(8) << "links"
     << std::setw(10) << "rules" << "notes\n";
  for (const auto& spec : specs) {
    Harness h(spec, opts);
    os << std::left << std::setw(8) << spec.name << std::setw(6) << spec.kind
       << std::setw(10) << h.topology().device_count() << std::setw(8)
       << h.topology().link_count() << std::setw(10) << h.total_rules()
       << spec.notes << "\n";
  }
}

void print_burst_table(std::ostream& os,
                       const std::vector<Harness::Result>& results) {
  header(os, "Figure 11a: burst verification time and acceleration ratio");
  os << std::left << std::setw(8) << "dataset" << std::setw(12) << "Tulkun";
  if (!results.empty()) {
    for (std::size_t i = 1; i < results.front().rows.size(); ++i) {
      os << std::setw(12) << (results.front().rows[i].tool + "/T");
    }
  }
  os << "\n";
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset << std::setw(12)
       << format_duration(r.rows.front().burst_seconds);
    for (std::size_t i = 1; i < r.rows.size(); ++i) {
      const auto& row = r.rows[i];
      if (row.memory_out) {
        os << std::setw(12) << "MemOut";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2fx",
                      row.burst_seconds / r.rows.front().burst_seconds);
        os << std::setw(12) << buf;
      }
    }
    os << "\n";
  }
}

void print_under_threshold_table(std::ostream& os,
                                 const std::vector<Harness::Result>& results,
                                 double threshold_seconds) {
  header(os, "Figure 11b: % of incremental verifications < " +
                 format_duration(threshold_seconds));
  os << std::left << std::setw(8) << "dataset";
  if (!results.empty()) {
    for (const auto& row : results.front().rows) {
      os << std::setw(12) << row.tool;
    }
  }
  os << "\n";
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset;
    for (const auto& row : r.rows) {
      if (row.memory_out || row.incremental_seconds.empty()) {
        os << std::setw(12) << "-";
      } else {
        char buf[32];
        std::snprintf(
            buf, sizeof buf, "%.1f%%",
            row.incremental_seconds.fraction_below(threshold_seconds) * 100);
        os << std::setw(12) << buf;
      }
    }
    os << "\n";
  }
}

void print_quantile_table(std::ostream& os,
                          const std::vector<Harness::Result>& results,
                          double quantile) {
  char title[64];
  std::snprintf(title, sizeof title,
                "Figure 11c: %.0f%% quantile of incremental time",
                quantile * 100);
  header(os, title);
  os << std::left << std::setw(8) << "dataset";
  if (!results.empty()) {
    for (const auto& row : results.front().rows) {
      os << std::setw(12) << row.tool;
    }
  }
  os << "\n";
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset;
    for (const auto& row : r.rows) {
      if (row.memory_out || row.incremental_seconds.empty()) {
        os << std::setw(12) << "-";
      } else {
        os << std::setw(12)
           << format_duration(row.incremental_seconds.quantile(quantile));
      }
    }
    os << "\n";
  }
}

void print_fault_tables(std::ostream& os,
                        const std::vector<Harness::FaultResult>& results,
                        double threshold_seconds, double quantile) {
  header(os, "Figure 12a: average whole-network verification per fault scene");
  os << std::left << std::setw(8) << "dataset";
  if (!results.empty()) {
    for (const auto& row : results.front().rows) {
      os << std::setw(12) << row.tool;
    }
  }
  os << "\n";
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset;
    for (const auto& row : r.rows) {
      os << std::setw(12)
         << (row.scene_seconds.empty()
                 ? std::string("MemOut")
                 : format_duration(row.scene_seconds.mean()));
    }
    os << "\n";
  }

  header(os, "Figure 12b: % of incremental verifications < " +
                 format_duration(threshold_seconds) + " under fault scenes");
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset;
    for (const auto& row : r.rows) {
      if (row.incremental_seconds.empty()) {
        os << std::setw(12) << "-";
      } else {
        char buf[32];
        std::snprintf(
            buf, sizeof buf, "%.1f%%",
            row.incremental_seconds.fraction_below(threshold_seconds) * 100);
        os << std::setw(12) << buf;
      }
    }
    os << "\n";
  }

  char title[80];
  std::snprintf(title, sizeof title,
                "Figure 12c: %.0f%% quantile of incremental time under "
                "fault scenes",
                quantile * 100);
  header(os, title);
  for (const auto& r : results) {
    os << std::left << std::setw(8) << r.dataset;
    for (const auto& row : r.rows) {
      if (row.incremental_seconds.empty()) {
        os << std::setw(12) << "-";
      } else {
        os << std::setw(12)
           << format_duration(row.incremental_seconds.quantile(quantile));
      }
    }
    os << "\n";
  }
}

void print_cdf(std::ostream& os, const std::string& label,
               const Samples& samples, bool as_duration) {
  os << label << ": ";
  if (samples.empty()) {
    os << "(no samples)\n";
    return;
  }
  for (const auto& [value, q] : samples.cdf(6)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "p%.0f=", q * 100);
    os << buf
       << (as_duration ? format_duration(value) : format_bytes(value))
       << "  ";
  }
  os << "\n";
}

}  // namespace tulkun::eval
