// Multi-process evaluation runs: a forking launcher plus manual
// coordinator/device entry points for the DistributedRuntime.
//
// The common path is dist_run(): it forks one device process per rank
// (re-exec'ing this binary with a --tulkun-device-proc marker argv, so no
// fork-with-threads hazards), runs the coordinator in-process, supervises
// the children (a dead rank is re-forked with a bumped incarnation, which
// triggers the coordinator's epoch-reset replay), and returns wall times,
// verdicts, the canonical state digest, and merged runtime + transport
// metrics. kind == Inproc runs the same protocol on loopback transports
// and threads instead of processes.
//
// For manual multi-host runs, dist_run_coordinator()/dist_run_device()
// accept explicit per-rank endpoints (the --role/--listen/--peers CLI
// path).
#pragma once

#include "eval/harness.hpp"
#include "net/socket_transport.hpp"
#include "obs/trace.hpp"

namespace tulkun::eval {

struct DistOptions {
  net::TransportKind kind = net::TransportKind::Unix;
  std::size_t device_procs = 2;
  std::size_t n_updates = 8;
  /// Rendezvous directory for Unix sockets (empty = fresh mkdtemp).
  std::string socket_dir;
  /// First TCP port; rank r listens on base_port + r (0 = derive from pid).
  std::uint16_t base_port = 0;
  /// Chaos hook: rank 1 _exits upon receiving Begin for this phase (its
  /// first incarnation only); the supervisor re-forks it and the run must
  /// reconverge through the epoch-reset protocol.
  std::uint32_t kill_rank1_at_phase = runtime::DeviceProcess::kNoKillPhase;
  /// Ship per-rank flight-recorder buffers back with the verdicts and
  /// surface them in DistRunResult::traces (requires obs tracing enabled
  /// in this process; child processes inherit the setting via argv).
  bool collect_trace = false;
};

struct DistRunResult {
  double burst_wall_seconds = 0.0;
  Samples incremental_wall_seconds;
  std::uint64_t violations = 0;
  /// Sorted canonical digest rows over every device (runtime/digest.hpp);
  /// byte-comparable against an in-process ShardedRuntime run.
  std::vector<std::string> rows;
  runtime::RuntimeMetrics metrics;
  std::uint32_t resets = 0;  // epoch bumps survived (chaos runs)
  /// Flight-recorder snapshots: one per device rank that shipped a trace
  /// blob, plus the coordinator's own drain appended last (when tracing).
  std::vector<obs::TraceSnapshot> traces;
};

/// Forking launcher (or threads for Inproc). Blocks until the run is done.
[[nodiscard]] DistRunResult dist_run(const DatasetSpec& spec,
                                     const HarnessOptions& opts,
                                     const DistOptions& dist);

/// Coordinator role over explicit endpoints (index = rank; size = device
/// processes + 1). The device processes must be started separately.
[[nodiscard]] DistRunResult dist_run_coordinator(
    const DatasetSpec& spec, const HarnessOptions& opts,
    std::size_t n_updates, const std::vector<net::Endpoint>& endpoints);

/// Device role over explicit endpoints; returns when the coordinator
/// finishes the run.
void dist_run_device(const DatasetSpec& spec, const HarnessOptions& opts,
                     std::size_t n_updates,
                     const std::vector<net::Endpoint>& endpoints,
                     net::PeerId rank, std::uint32_t incarnation,
                     std::uint32_t kill_at_phase);

/// Child-process entry point. Every binary that calls dist_run() must
/// invoke this first thing in main(); when argv carries the
/// --tulkun-device-proc marker the process runs the device role to
/// completion and this returns true (the caller must then return 0).
bool maybe_run_device_role(int argc, char** argv);

}  // namespace tulkun::eval
