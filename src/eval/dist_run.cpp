#include "eval/dist_run.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "net/inproc.hpp"

namespace tulkun::eval {

namespace {

// ---------------------------------------------------------------------------
// World spec wire format: the child process rebuilds the dataset + harness
// options from one comma-separated argv value (18 fields, in declaration
// order; dataset names never contain commas). Everything else about the
// world is derived deterministically from these.
// ---------------------------------------------------------------------------

std::string encode_world(const DatasetSpec& spec, const HarnessOptions& opts) {
  std::string out;
  const auto add = [&](const std::string& v) {
    if (!out.empty()) out += ',';
    out += v;
  };
  add(spec.name);
  add(spec.kind);
  add(std::to_string(static_cast<int>(spec.family)));
  add(std::to_string(spec.devices));
  add(std::to_string(spec.links));
  char lat[64];
  std::snprintf(lat, sizeof(lat), "%.17g", spec.max_latency);
  add(lat);
  add(std::to_string(spec.prefixes_per_device));
  add(std::to_string(spec.fattree_k));
  add(std::to_string(spec.clos_pods));
  add(std::to_string(spec.clos_spines));
  add(std::to_string(spec.clos_leaves));
  add(std::to_string(spec.clos_cores));
  add(std::to_string(spec.seed));
  add(std::to_string(spec.extra_rules));
  add(std::to_string(opts.slack));
  add(std::to_string(opts.ecmp_width));
  add(std::to_string(opts.seed));
  add(std::to_string(opts.max_destinations));
  return out;
}

void decode_world(const std::string& s, DatasetSpec& spec,
                  HarnessOptions& opts) {
  std::vector<std::string> f;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      f.push_back(s.substr(pos));
      break;
    }
    f.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (f.size() != 18) throw Error("malformed --world spec: " + s);
  const auto u32 = [](const std::string& v) {
    return static_cast<std::uint32_t>(std::stoul(v));
  };
  spec.name = f[0];
  spec.kind = f[1];
  spec.family = static_cast<Family>(std::stoi(f[2]));
  spec.devices = u32(f[3]);
  spec.links = u32(f[4]);
  spec.max_latency = std::strtod(f[5].c_str(), nullptr);
  spec.prefixes_per_device = u32(f[6]);
  spec.fattree_k = u32(f[7]);
  spec.clos_pods = u32(f[8]);
  spec.clos_spines = u32(f[9]);
  spec.clos_leaves = u32(f[10]);
  spec.clos_cores = u32(f[11]);
  spec.seed = std::stoull(f[12]);
  spec.extra_rules = u32(f[13]);
  opts.slack = u32(f[14]);
  opts.ecmp_width = u32(f[15]);
  opts.seed = std::stoull(f[16]);
  opts.max_destinations = std::stoull(f[17]);
}

// Runs start + all phases + collect on `coord`, leaving shutdown to the
// caller (the forking launcher must flip its supervisor into don't-respawn
// mode between collect and shutdown).
DistRunResult drive(runtime::DistCoordinator& coord, std::size_t n_updates) {
  DistRunResult res;
  coord.start();
  const auto burst = coord.run_phase();
  res.burst_wall_seconds = burst.wall_seconds;
  for (std::size_t i = 0; i < n_updates; ++i) {
    const auto p = coord.run_phase();
    res.incremental_wall_seconds.add(p.wall_seconds);
  }
  auto col = coord.collect();
  res.violations = col.violations;
  res.rows = std::move(col.rows);
  res.metrics = std::move(col.metrics);
  res.resets = col.epoch;  // one epoch bump per reset survived
  res.traces = std::move(col.traces);
  if (obs::trace_enabled()) {
    // The coordinator's own spans (dist.phase roots, net events) live in
    // this process's recorder; drain them so the merged timeline has the
    // parent side of every cross-rank arrow.
    res.traces.push_back(obs::drain_snapshot());
  }
  return res;
}

[[nodiscard]] runtime::DistCoordinator::Config coordinator_config(
    std::size_t n_device_procs) {
  runtime::DistCoordinator::Config cfg;
  cfg.n_device_procs = n_device_procs;
  return cfg;
}

DistRunResult dist_run_inproc(const DatasetSpec& spec,
                              const HarnessOptions& opts,
                              const DistOptions& dist) {
  if (dist.kill_rank1_at_phase != runtime::DeviceProcess::kNoKillPhase) {
    throw Error("kill_rank1_at_phase requires process isolation (uds|tcp)");
  }
  if (dist.collect_trace) obs::set_trace_enabled(true);
  obs::set_default_rank(runtime::kCoordinatorRank);
  Harness harness(spec, opts);
  const std::size_t P = dist.device_procs;
  auto hub = std::make_shared<net::InProcHub>();
  auto builder = harness.world_builder(dist.n_updates);

  std::vector<std::unique_ptr<net::InProcTransport>> transports;
  std::vector<std::unique_ptr<runtime::DeviceProcess>> procs;
  for (std::size_t r = 1; r <= P; ++r) {
    transports.push_back(std::make_unique<net::InProcTransport>(
        hub, static_cast<net::PeerId>(r)));
    runtime::DeviceProcess::Config dcfg;
    dcfg.rank = static_cast<net::PeerId>(r);
    dcfg.n_device_procs = P;
    dcfg.engine = opts.engine;
    procs.push_back(std::make_unique<runtime::DeviceProcess>(
        *transports.back(), harness.topology(), builder, dcfg));
  }
  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::size_t i = 0; i < P; ++i) {
    threads.emplace_back([&, i] {
      procs[i]->run();
      transports[i]->stop();
    });
  }

  net::InProcTransport coord_transport(hub, runtime::kCoordinatorRank);
  runtime::DistCoordinator coord(coord_transport, coordinator_config(P));
  auto res = drive(coord, dist.n_updates);
  coord.shutdown();
  for (auto& t : threads) t.join();
  coord_transport.stop();
  return res;
}

// ---------------------------------------------------------------------------
// Forking launcher: children are fork+exec of our own binary (argv carries
// the --tulkun-device-proc marker handled by maybe_run_device_role), so the
// child never inherits this process's threads, sockets or BDD state.
// ---------------------------------------------------------------------------

struct ChildArgs {
  net::PeerId rank = 1;
  std::size_t n_device_procs = 1;
  net::TransportKind kind = net::TransportKind::Unix;
  std::string dir;
  std::uint16_t base_port = 0;
  std::size_t n_updates = 0;
  std::uint32_t kill_at_phase = runtime::DeviceProcess::kNoKillPhase;
  std::string world;
};

pid_t spawn_child(const ChildArgs& a, std::uint32_t incarnation) {
  std::vector<std::string> args = {
      "/proc/self/exe",
      "--tulkun-device-proc",
      "--rank=" + std::to_string(a.rank),
      "--procs=" + std::to_string(a.n_device_procs),
      "--incarnation=" + std::to_string(incarnation),
      "--transport=" + std::string(net::transport_kind_name(a.kind)),
      "--dir=" + a.dir,
      "--base-port=" + std::to_string(a.base_port),
      "--updates=" + std::to_string(a.n_updates),
      "--kill-phase=" + std::to_string(a.kill_at_phase),
      "--trace=" + std::string(obs::trace_enabled() ? "1" : "0"),
      "--world=" + a.world,
  };
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& s : args) argv.push_back(s.data());
    argv.push_back(nullptr);
    execv("/proc/self/exe", argv.data());
    _exit(127);  // exec failed; the supervisor will give up after the cap
  }
  if (pid < 0) throw Error("fork failed for device process");
  return pid;
}

}  // namespace

DistRunResult dist_run(const DatasetSpec& spec, const HarnessOptions& opts,
                       const DistOptions& dist) {
  if (dist.kind == net::TransportKind::Inproc) {
    return dist_run_inproc(spec, opts, dist);
  }
  if (dist.collect_trace) obs::set_trace_enabled(true);
  obs::set_default_rank(runtime::kCoordinatorRank);
  const std::size_t P = dist.device_procs;
  std::string dir = dist.socket_dir;
  bool made_dir = false;
  if (dist.kind == net::TransportKind::Unix && dir.empty()) {
    char tmpl[] = "/tmp/tulkun-dist-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    dir = tmpl;
    made_dir = true;
  }
  std::uint16_t base_port = dist.base_port;
  if (dist.kind == net::TransportKind::Tcp && base_port == 0) {
    // Keep concurrent test binaries off each other's ports.
    base_port = static_cast<std::uint16_t>(41000 + getpid() % 20000);
  }
  const auto endpoints = net::local_endpoints(dist.kind, dir, P + 1, base_port);

  ChildArgs base;
  base.n_device_procs = P;
  base.kind = dist.kind;
  base.dir = dir;
  base.base_port = base_port;
  base.n_updates = dist.n_updates;
  base.world = encode_world(spec, opts);

  // Supervisor state: pid -> rank of every live child; a child that dies
  // while the run is active is re-forked with a bumped incarnation (the
  // coordinator notices the new Hello and replays). The respawn cap stops
  // fork storms if a child crashes deterministically.
  constexpr std::uint32_t kMaxRespawns = 16;
  std::mutex mu;
  std::map<pid_t, net::PeerId> live;
  std::map<net::PeerId, std::uint32_t> incarnation;
  std::atomic<bool> shutting{false};

  const auto spawn_rank = [&](net::PeerId rank, std::uint32_t inc) {
    ChildArgs a = base;
    a.rank = rank;
    a.kill_at_phase = rank == 1 ? dist.kill_rank1_at_phase
                                : runtime::DeviceProcess::kNoKillPhase;
    live[spawn_child(a, inc)] = rank;
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t r = 1; r <= P; ++r) {
      spawn_rank(static_cast<net::PeerId>(r), 0);
    }
  }

  std::thread supervisor([&] {
    while (true) {
      int status = 0;
      const pid_t pid = waitpid(-1, &status, 0);
      if (pid < 0) break;  // ECHILD: everything reaped
      std::lock_guard<std::mutex> lock(mu);
      const auto it = live.find(pid);
      if (it == live.end()) continue;
      const net::PeerId rank = it->second;
      live.erase(it);
      if (shutting.load()) {
        if (live.empty()) break;
        continue;
      }
      const std::uint32_t inc = ++incarnation[rank];
      if (inc > kMaxRespawns) continue;  // give up; the run will time out
      spawn_rank(rank, inc);
    }
  });

  DistRunResult res;
  std::exception_ptr failure;
  try {
    net::SocketTransport coord_transport(
        net::mesh_config(runtime::kCoordinatorRank, endpoints));
    runtime::DistCoordinator coord(coord_transport, coordinator_config(P));
    res = drive(coord, dist.n_updates);
    shutting.store(true);
    coord.shutdown();
    coord_transport.stop();
  } catch (...) {
    failure = std::current_exception();
    shutting.store(true);
  }

  // Give children a grace period to exit on Done, then force the issue so
  // the supervisor (blocked in waitpid) can drain and finish.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (live.empty()) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        for (const auto& [pid, rank] : live) kill(pid, SIGKILL);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  supervisor.join();

  if (dist.kind == net::TransportKind::Unix) {
    for (const auto& ep : endpoints) unlink(ep.address.c_str());
    if (made_dir) rmdir(dir.c_str());
  }
  if (failure) std::rethrow_exception(failure);
  return res;
}

DistRunResult dist_run_coordinator(const DatasetSpec& spec,
                                   const HarnessOptions& opts,
                                   std::size_t n_updates,
                                   const std::vector<net::Endpoint>& endpoints) {
  (void)spec;
  (void)opts;
  if (endpoints.size() < 2) throw Error("need >= 1 device endpoint");
  const std::size_t P = endpoints.size() - 1;
  net::SocketTransport transport(
      net::mesh_config(runtime::kCoordinatorRank, endpoints));
  runtime::DistCoordinator coord(transport, coordinator_config(P));
  auto res = drive(coord, n_updates);
  coord.shutdown();
  transport.stop();
  return res;
}

void dist_run_device(const DatasetSpec& spec, const HarnessOptions& opts,
                     std::size_t n_updates,
                     const std::vector<net::Endpoint>& endpoints,
                     net::PeerId rank, std::uint32_t incarnation,
                     std::uint32_t kill_at_phase) {
  if (rank == runtime::kCoordinatorRank || rank >= endpoints.size()) {
    throw Error("device rank out of range");
  }
  obs::set_default_rank(rank);
  Harness harness(spec, opts);
  net::SocketTransport transport(net::mesh_config(rank, endpoints));
  runtime::DeviceProcess::Config dcfg;
  dcfg.rank = rank;
  dcfg.n_device_procs = endpoints.size() - 1;
  dcfg.engine = opts.engine;
  dcfg.incarnation = incarnation;
  dcfg.kill_at_phase = kill_at_phase;
  runtime::DeviceProcess proc(transport, harness.topology(),
                              harness.world_builder(n_updates), dcfg);
  proc.run();
  transport.stop();
}

bool maybe_run_device_role(int argc, char** argv) {
  bool marked = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tulkun-device-proc") == 0) marked = true;
  }
  if (!marked) return false;

  const auto value = [&](const char* prefix) -> std::string {
    const std::size_t n = std::strlen(prefix);
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
    }
    throw Error(std::string("device process missing flag ") + prefix);
  };
  const auto value_or = [&](const char* prefix,
                            const std::string& dflt) -> std::string {
    const std::size_t n = std::strlen(prefix);
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
    }
    return dflt;
  };

  // The launcher may have SIGINT/SIGTERM blocked (dist_cli masks them for a
  // sigwait flush thread) and sigmasks survive execv; restore the default
  // disposition so a Ctrl-C on the process group still kills the children.
  sigset_t unblock;
  sigemptyset(&unblock);
  sigaddset(&unblock, SIGINT);
  sigaddset(&unblock, SIGTERM);
  pthread_sigmask(SIG_UNBLOCK, &unblock, nullptr);

  try {
    const auto rank = static_cast<net::PeerId>(std::stoul(value("--rank=")));
    const std::size_t procs = std::stoull(value("--procs="));
    const auto inc =
        static_cast<std::uint32_t>(std::stoul(value("--incarnation=")));
    const auto kind = net::parse_transport_kind(value("--transport="));
    const std::string dir = value("--dir=");
    const auto base_port =
        static_cast<std::uint16_t>(std::stoul(value("--base-port=")));
    const std::size_t updates = std::stoull(value("--updates="));
    const auto kill_phase =
        static_cast<std::uint32_t>(std::stoul(value("--kill-phase=")));
    if (value_or("--trace=", "0") == "1") obs::set_trace_enabled(true);
    DatasetSpec spec;
    HarnessOptions opts;
    decode_world(value("--world="), spec, opts);
    const auto endpoints =
        net::local_endpoints(kind, dir, procs + 1, base_port);
    dist_run_device(spec, opts, updates, endpoints, rank, inc, kill_phase);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tulkun device process: %s\n", e.what());
    std::fflush(stderr);
    _exit(1);
  }
  return true;
}

}  // namespace tulkun::eval
