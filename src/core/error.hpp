// Error types for the Tulkun library.
//
// All user-facing failures (malformed specs, inconsistent invariants,
// dataset problems) throw tulkun::Error; internal invariant violations use
// TULKUN_ASSERT which throws tulkun::InternalError so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace tulkun {

/// Base class for all errors raised by the library on invalid user input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing an invariant specification fails.
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error("spec error: " + what) {}
};

/// Raised when parsing a regular expression over devices fails.
class RegexError : public Error {
 public:
  explicit RegexError(const std::string& what)
      : Error("regex error: " + what) {}
};

/// Raised for malformed topologies or datasets.
class TopologyError : public Error {
 public:
  explicit TopologyError(const std::string& what)
      : Error("topology error: " + what) {}
};

/// Raised when an internal invariant is violated (a library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

[[noreturn]] void throw_internal(const char* file, int line, const char* expr);

}  // namespace tulkun

/// Checks an internal invariant; throws InternalError when violated.
/// Active in all build types: verification correctness beats raw speed here,
/// and the checks are on cold paths.
#define TULKUN_ASSERT(expr)                            \
  do {                                                 \
    if (!(expr)) {                                     \
      ::tulkun::throw_internal(__FILE__, __LINE__, #expr); \
    }                                                  \
  } while (false)
