// Summary statistics used by the evaluation harness: quantiles, CDFs, means.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tulkun {

/// Accumulates samples and answers quantile/CDF queries.
/// Samples are stored; queries sort lazily. Suitable for evaluation-scale
/// sample counts (up to a few million).
class Samples {
 public:
  void add(double v);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// q in [0,1]; linear interpolation between order statistics.
  /// Requires at least one sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Fraction of samples strictly below `threshold`.
  [[nodiscard]] double fraction_below(double threshold) const;

  /// Evenly spaced CDF points (value at k/(n_points-1) quantiles).
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t n_points = 11) const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Formats seconds with an adaptive unit (ns/us/ms/s) for table output.
std::string format_duration(double seconds);

/// Formats a byte count with an adaptive unit (B/KB/MB).
std::string format_bytes(double bytes);

}  // namespace tulkun
