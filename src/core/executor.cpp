#include "core/executor.hpp"

namespace tulkun::core {

namespace {

class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return 1;
  }

  void run_all(std::vector<std::function<void()>> tasks) override {
    for (auto& t : tasks) t();
  }
};

}  // namespace

Executor& serial_executor() {
  static SerialExecutor ex;
  return ex;
}

}  // namespace tulkun::core
