#include "core/interval_set.hpp"

#include <algorithm>

namespace tulkun {

IntervalSet::IntervalSet(Interval iv) {
  if (!iv.empty()) ivs_.push_back(iv);
}

IntervalSet::IntervalSet(std::initializer_list<Interval> ivs) {
  for (const auto& iv : ivs) {
    if (!iv.empty()) ivs_.push_back(iv);
  }
  normalize();
}

std::uint64_t IntervalSet::size() const {
  std::uint64_t total = 0;
  for (const auto& iv : ivs_) total += iv.size();
  return total;
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  ivs_.push_back(iv);
  normalize();
}

void IntervalSet::normalize() {
  if (ivs_.empty()) return;
  std::sort(ivs_.begin(), ivs_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.reserve(ivs_.size());
  for (const auto& iv : ivs_) {
    if (iv.empty()) continue;
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  ivs_ = std::move(merged);
}

bool IntervalSet::contains(std::uint64_t x) const {
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), x,
      [](std::uint64_t v, const Interval& iv) { return v < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return x >= it->lo && x < it->hi;
}

bool IntervalSet::intersects(const IntervalSet& other) const {
  auto a = ivs_.begin();
  auto b = other.ivs_.begin();
  while (a != ivs_.end() && b != other.ivs_.end()) {
    if (a->hi <= b->lo) {
      ++a;
    } else if (b->hi <= a->lo) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out;
  out.ivs_ = ivs_;
  out.ivs_.insert(out.ivs_.end(), other.ivs_.begin(), other.ivs_.end());
  out.normalize();
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = ivs_.begin();
  auto b = other.ivs_.begin();
  while (a != ivs_.end() && b != other.ivs_.end()) {
    const std::uint64_t lo = std::max(a->lo, b->lo);
    const std::uint64_t hi = std::min(a->hi, b->hi);
    if (lo < hi) out.ivs_.push_back(Interval{lo, hi});
    if (a->hi < b->hi) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;  // already sorted and disjoint
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet out;
  auto b = other.ivs_.begin();
  for (const auto& iv : ivs_) {
    std::uint64_t lo = iv.lo;
    while (b != other.ivs_.end() && b->hi <= lo) ++b;
    auto bb = b;
    while (bb != other.ivs_.end() && bb->lo < iv.hi) {
      if (bb->lo > lo) out.ivs_.push_back(Interval{lo, bb->lo});
      lo = std::max(lo, bb->hi);
      if (lo >= iv.hi) break;
      ++bb;
    }
    if (lo < iv.hi) out.ivs_.push_back(Interval{lo, iv.hi});
  }
  return out;
}

}  // namespace tulkun
