// Deterministic random number generation for workloads and benchmarks.
//
// Every randomized component takes an explicit seed so that datasets,
// update workloads, and fault scenes are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace tulkun {

/// Deterministic RNG wrapper. A thin facade over std::mt19937_64 with
/// convenience helpers; all Tulkun randomness flows through this type.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform real in [0, 1).
  double real() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return real() < p; }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace tulkun
