#include "core/error.hpp"

namespace tulkun {

void throw_internal(const char* file, int line, const char* expr) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": assertion failed: " + expr);
}

}  // namespace tulkun
