// A simple dynamic bitset used by the centralized baselines to label
// forwarding-graph edges with equivalence-class (atom) sets.
#pragma once

#include <cstdint>
#include <vector>

namespace tulkun {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  void set(std::size_t i) { words_[i / 64] |= (1ULL << (i % 64)); }
  void reset(std::size_t i) { words_[i / 64] &= ~(1ULL << (i % 64)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  void set_all() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  [[nodiscard]] bool any() const {
    for (const auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  DynBitset& operator&=(const DynBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  DynBitset& operator|=(const DynBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  /// this &= ~o
  DynBitset& subtract(const DynBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  [[nodiscard]] bool intersects(const DynBitset& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & o.words_[i]) return true;
    }
    return false;
  }

  /// Calls f(i) for every set bit.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(bits));
        f(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const DynBitset&, const DynBitset&) = default;

 private:
  void trim() {
    if (n_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (n_ % 64)) - 1;
    }
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tulkun
