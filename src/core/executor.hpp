// Minimal executor seam: lets lower layers (dpvnet construction) fan work
// out onto a caller-provided pool without depending on who owns the
// threads. planner::WorkerPool is the real implementation; the serial
// executor runs tasks inline in submission order, which is also the
// reference semantics every parallel implementation must reproduce
// (deterministic outputs, lowest-index exception wins).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace tulkun::core {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker count usable for sizing decisions (>= 1, includes the caller).
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Runs every task to completion before returning. Tasks may run in any
  /// order and concurrently; when one or more tasks throw, the exception
  /// of the lowest-index throwing task is rethrown (so failure behavior is
  /// deterministic regardless of scheduling). Implementations must support
  /// nested run_all calls from inside tasks without deadlocking.
  virtual void run_all(std::vector<std::function<void()>> tasks) = 0;
};

/// Process-wide inline executor: runs each task on the calling thread in
/// submission order. Tasks submitted here throw straight through.
[[nodiscard]] Executor& serial_executor();

}  // namespace tulkun::core
