#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/error.hpp"

namespace tulkun {

void Samples::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(values_);
    std::sort(mut.begin(), mut.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Samples::quantile(double q) const {
  TULKUN_ASSERT(!values_.empty());
  TULKUN_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::min() const {
  TULKUN_ASSERT(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  TULKUN_ASSERT(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Samples::mean() const {
  TULKUN_ASSERT(!values_.empty());
  const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
  return sum / static_cast<double>(values_.size());
}

double Samples::fraction_below(double threshold) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Samples::cdf(std::size_t n_points) const {
  TULKUN_ASSERT(n_points >= 2);
  std::vector<std::pair<double, double>> out;
  if (values_.empty()) return out;
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(n_points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes < 1024.0) {
    std::snprintf(buf, sizeof buf, "%.0fB", bytes);
  } else if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fMB", bytes / (1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace tulkun
