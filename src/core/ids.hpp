// Strongly typed identifiers used across the Tulkun library.
//
// Devices, links, DPVNet nodes, and invariants all use small integer
// identifiers internally; distinct wrapper types keep them from being mixed
// up at call sites while compiling down to plain integers.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace tulkun {

/// Index of a device (switch/router) within a Topology.
using DeviceId = std::uint32_t;

/// Index of a node within a DPVNet.
using NodeId = std::uint32_t;

/// Index of an invariant within a planner session.
using InvariantId = std::uint32_t;

/// Sentinel for "no device".
inline constexpr DeviceId kNoDevice = std::numeric_limits<DeviceId>::max();

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// A directed link between two devices, identified by endpoint device ids.
struct LinkId {
  DeviceId from = kNoDevice;
  DeviceId to = kNoDevice;

  friend bool operator==(const LinkId&, const LinkId&) = default;
  friend auto operator<=>(const LinkId&, const LinkId&) = default;

  /// The opposite direction of this link.
  [[nodiscard]] LinkId reversed() const { return LinkId{to, from}; }
};

/// Combines a new value into a running hash seed (boost-style).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace tulkun

template <>
struct std::hash<tulkun::LinkId> {
  std::size_t operator()(const tulkun::LinkId& l) const noexcept {
    std::size_t seed = std::hash<tulkun::DeviceId>{}(l.from);
    tulkun::hash_combine(seed, std::hash<tulkun::DeviceId>{}(l.to));
    return seed;
  }
};
