// A set of disjoint, sorted half-open integer intervals [lo, hi).
//
// Used by the Delta-net baseline (dstIP "atoms") and by the predicate
// ablation bench as the interval-based alternative to BDD predicates.
#pragma once

#include <cstdint>
#include <vector>

namespace tulkun {

/// A half-open interval [lo, hi) over 64-bit unsigned integers.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // exclusive

  [[nodiscard]] bool empty() const { return lo >= hi; }
  [[nodiscard]] std::uint64_t size() const { return empty() ? 0 : hi - lo; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A canonical set of disjoint, sorted, non-adjacent intervals.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv);
  IntervalSet(std::initializer_list<Interval> ivs);

  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  [[nodiscard]] std::uint64_t size() const;  // total covered points
  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }

  void insert(Interval iv);

  [[nodiscard]] bool contains(std::uint64_t x) const;
  [[nodiscard]] bool intersects(const IntervalSet& other) const;

  [[nodiscard]] IntervalSet unite(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet subtract(const IntervalSet& other) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalize();

  std::vector<Interval> ivs_;  // sorted, disjoint, non-adjacent, non-empty
};

}  // namespace tulkun
