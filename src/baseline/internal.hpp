// Shared machinery for the centralized baselines.
//
//  * AtomTable / edge labels / per-destination hop DP: the atomic-predicate
//    family (AP, APKeep, Flash).
//  * IntervalAtoms: the dstIP-interval family (Delta-net, VeriFlow).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "baseline/centralized.hpp"
#include "core/bitset.hpp"
#include "core/interval_set.hpp"
#include "fib/lec.hpp"

namespace tulkun::baseline::internal {

/// Global atomic predicates: the coarsest partition refining every
/// registered predicate [Yang & Lam, ICNP'13].
class AtomTable {
 public:
  explicit AtomTable(packet::PacketSpace& space);

  /// Rebuilds from scratch by refining {true} with each predicate.
  void rebuild(const std::vector<packet::PacketSet>& predicates);

  /// Incrementally refines with one predicate (APKeep-style). Returns the
  /// splits performed as (old_id, inside_id, outside_id); inside/outside
  /// reuse old_id for one half to keep ids dense.
  struct Split {
    std::size_t old_id;
    std::size_t inside_id;   // atom ∩ p
    std::size_t outside_id;  // atom − p
  };
  std::vector<Split> refine(const packet::PacketSet& p);

  [[nodiscard]] std::size_t size() const { return atoms_.size(); }
  [[nodiscard]] const packet::PacketSet& atom(std::size_t i) const {
    return atoms_[i];
  }

  /// Atoms intersecting `p` (exact membership when atoms refine p).
  [[nodiscard]] DynBitset atoms_of(const packet::PacketSet& p) const;

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  packet::PacketSpace* space_;
  std::vector<packet::PacketSet> atoms_;
};

/// Directed forwarding graph labeled with atom sets.
class LabeledGraph {
 public:
  LabeledGraph(const topo::Topology& topo, std::size_t n_atoms);

  void resize_atoms(std::size_t n_atoms);
  [[nodiscard]] DynBitset& label(DeviceId from, DeviceId to);
  [[nodiscard]] const DynBitset& label(DeviceId from, DeviceId to) const;

  /// Applies an atom split to every edge label (both halves inherit).
  void apply_splits(const std::vector<AtomTable::Split>& splits);

  /// Per-device list of (neighbor, label) for traversal.
  [[nodiscard]] const std::vector<std::pair<DeviceId, DynBitset>>& edges(
      DeviceId from) const {
    return adj_[from];
  }
  [[nodiscard]] std::vector<std::pair<DeviceId, DynBitset>>& edges(
      DeviceId from) {
    return adj_[from];
  }

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<std::vector<std::pair<DeviceId, DynBitset>>> adj_;
};

/// Per-destination minimum hop counts per atom:
/// result[dev] = bitset of atoms reaching `dst` within `max_hops[dev]`.
/// Computed by layered reverse propagation up to the largest bound.
[[nodiscard]] std::vector<DynBitset> atoms_reaching(
    const topo::Topology& topo, const LabeledGraph& graph, DeviceId dst,
    const std::vector<std::uint32_t>& max_hops, std::size_t n_atoms);

/// Runs the query set for one destination and appends violations.
void verify_dst_queries(const topo::Topology& topo, const LabeledGraph& graph,
                        const AtomTable& atoms, const QuerySet& queries,
                        DeviceId dst, std::vector<BaselineViolation>& out);

/// dstIP interval atoms (Delta-net's "atoms", VeriFlow's trie ECs).
class IntervalAtoms {
 public:
  /// Rebuilds boundaries from every rule range in the network.
  void rebuild(const fib::NetworkFib& net);

  /// Ensures boundaries exist for [lo, hi); returns true when new
  /// boundaries were inserted (atom ids shift — callers rebuild labels).
  bool ensure_boundaries(std::uint64_t lo, std::uint64_t hi);

  [[nodiscard]] std::size_t size() const {
    return boundaries_.empty() ? 0 : boundaries_.size() - 1;
  }
  [[nodiscard]] Interval atom(std::size_t i) const {
    return Interval{boundaries_[i], boundaries_[i + 1]};
  }
  /// Atom ids covering [lo, hi) (requires aligned boundaries).
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(
      std::uint64_t lo, std::uint64_t hi) const;

  /// Per-device effective next-hop assignment: for each atom in [first,
  /// last), the action of the highest-priority covering rule.
  [[nodiscard]] std::vector<const fib::Rule*> assignment(
      const fib::FibTable& fib, std::size_t first, std::size_t last) const;

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<std::uint64_t> boundaries_;  // sorted; atoms are consecutive
};

/// Per-device, per-interval-atom effective rule (the Delta-net edge-label
/// substrate / VeriFlow trie-lookup result).
class IntervalPlane {
 public:
  void rebuild(const fib::NetworkFib& net, const IntervalAtoms& atoms);
  void set_range(const fib::NetworkFib& net, const IntervalAtoms& atoms,
                 DeviceId device, std::size_t first, std::size_t last);
  [[nodiscard]] const fib::Rule* rule_at(DeviceId device,
                                         std::size_t atom) const {
    return assign_[device][atom];
  }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<std::vector<const fib::Rule*>> assign_;
};

/// Interval-atom analogue of verify_dst_queries: checks all queries with
/// destination `dst` against the labeled graph and appends violations.
void verify_dst_interval(const topo::Topology& topo, const LabeledGraph& graph,
                         const IntervalAtoms& atoms, const QuerySet& queries,
                         DeviceId dst, std::vector<BaselineViolation>& out);

/// Common engine of the atomic-predicate family. Subclasses pick the
/// incremental strategy (the architectural difference between AP, APKeep,
/// and Flash).
class AtomFamily : public CentralizedVerifier {
 public:
  explicit AtomFamily(bool dedupe_predicates)
      : dedupe_predicates_(dedupe_predicates) {}

  double burst(fib::NetworkFib& net, const QuerySet& queries) override;
  double incremental(fib::NetworkFib& net, const fib::FibUpdate& update,
                     const std::vector<fib::LecDelta>& deltas,
                     const QuerySet& queries) override;
  double reverify(fib::NetworkFib& net, const QuerySet& queries) override;
  [[nodiscard]] const std::vector<BaselineViolation>& violations()
      const override {
    return flat_violations_;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;

 protected:
  enum class IncStrategy {
    RebuildAtoms,   // AP: global atom recomputation per update
    RefineAtoms,    // APKeep: split only affected atoms
    RefineRebuildDevice,  // Flash: refine atoms, rebuild device labels
  };
  [[nodiscard]] virtual IncStrategy strategy() const = 0;

  void rebuild_all(fib::NetworkFib& net);
  void rebuild_device_labels(fib::NetworkFib& net, DeviceId device);
  void verify_dsts(fib::NetworkFib& net, const QuerySet& queries,
                   const std::vector<DeviceId>& dsts);
  [[nodiscard]] std::vector<DeviceId> affected_dsts(
      const fib::NetworkFib& net, const QuerySet& queries,
      const packet::PacketSet& region) const;
  [[nodiscard]] DynBitset memo_atoms_of(const packet::PacketSet& p);

  bool dedupe_predicates_;
  packet::PacketSpace* space_ = nullptr;
  std::vector<fib::LecTable> lecs_;
  std::unique_ptr<AtomTable> atoms_;
  std::unique_ptr<LabeledGraph> graph_;
  std::unordered_map<bdd::NodeRef, DynBitset> atoms_of_memo_;
  std::map<DeviceId, std::vector<BaselineViolation>> violations_by_dst_;
  std::vector<BaselineViolation> flat_violations_;
};

}  // namespace tulkun::baseline::internal
