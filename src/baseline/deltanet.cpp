// Delta-net [Horn et al., NSDI'17]: real-time verification with dstIP
// interval *atoms*. The data plane is cut at every rule boundary into
// global atoms; edges of the forwarding graph are labeled with atom sets,
// and an update touches only the atoms inside the updated rule's range —
// very fast incremental checking, at the cost of materializing per-device
// per-atom state (the memory footprint that blows up on large DCs, §9.3.2)
// and of supporting only destination-prefix data planes.
#include <chrono>

#include "baseline/internal.hpp"

namespace tulkun::baseline {

namespace {

using internal::IntervalAtoms;
using internal::IntervalPlane;
using internal::LabeledGraph;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

class DeltaNetVerifier final : public CentralizedVerifier {
 public:
  [[nodiscard]] std::string name() const override { return "Delta-net"; }

  double burst(fib::NetworkFib& net, const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    atoms_.rebuild(net);
    plane_.rebuild(net, atoms_);
    rebuild_labels(net);

    std::vector<DeviceId> dsts;
    for (const auto& q : queries) {
      if (std::find(dsts.begin(), dsts.end(), q.dst) == dsts.end()) {
        dsts.push_back(q.dst);
      }
    }
    violations_by_dst_.clear();
    verify_dsts(net, queries, dsts);
    return seconds_since(t0);
  }

  double incremental(fib::NetworkFib& net, const fib::FibUpdate& update,
                     const std::vector<fib::LecDelta>& deltas,
                     const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    (void)deltas;
    // apply_update fills update.rule with the removed rule on Erase, so
    // the affected range is available for both kinds.
    const auto& prefix = update.rule.dst_prefix;
    const std::uint64_t lo = prefix.range_lo();
    const std::uint64_t hi = prefix.range_hi();

    if (atoms_.ensure_boundaries(lo, hi)) {
      // New cut points shift atom ids: rebuild the plane and labels (rare;
      // Delta-net pays a similar re-slicing cost on unseen boundaries).
      plane_.rebuild(net, atoms_);
      rebuild_labels(net);
    } else {
      const auto [f, l] = atoms_.range(lo, hi);
      apply_range(net, update.device, f, l);
    }

    // Re-verify destinations whose prefixes overlap the updated range.
    std::vector<DeviceId> dsts;
    for (const auto& q : queries) {
      bool overlaps = false;
      for (const auto& p : net.topology().prefixes(q.dst)) {
        if (p.range_lo() < hi && lo < p.range_hi()) {
          overlaps = true;
          break;
        }
      }
      if (overlaps &&
          std::find(dsts.begin(), dsts.end(), q.dst) == dsts.end()) {
        dsts.push_back(q.dst);
      }
    }
    verify_dsts(net, queries, dsts);
    return seconds_since(t0);
  }

  double reverify(fib::NetworkFib& net, const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<DeviceId> dsts;
    for (const auto& q : queries) {
      if (std::find(dsts.begin(), dsts.end(), q.dst) == dsts.end()) {
        dsts.push_back(q.dst);
      }
    }
    verify_dsts(net, queries, dsts);
    return seconds_since(t0);
  }

  [[nodiscard]] const std::vector<BaselineViolation>& violations()
      const override {
    return flat_violations_;
  }

  [[nodiscard]] std::size_t memory_bytes() const override {
    std::size_t bytes = atoms_.memory_bytes() + plane_.memory_bytes();
    if (graph_) bytes += graph_->memory_bytes();
    return bytes;
  }

 private:
  void rebuild_labels(const fib::NetworkFib& net) {
    graph_ = std::make_unique<LabeledGraph>(net.topology(), atoms_.size());
    for (DeviceId d = 0; d < net.device_count(); ++d) {
      for (std::size_t i = 0; i < atoms_.size(); ++i) {
        label_atom(net, d, i, /*set=*/true);
      }
    }
  }

  void label_atom(const fib::NetworkFib& net, DeviceId dev, std::size_t atom,
                  bool set) {
    const fib::Rule* r = plane_.rule_at(dev, atom);
    if (r == nullptr || r->action.type == fib::ActionType::Drop) return;
    for (const DeviceId hop : r->action.next_hops) {
      if (hop == fib::kExternalPort) continue;
      if (!net.topology().has_link(dev, hop)) continue;
      auto& label = graph_->label(dev, hop);
      if (set) {
        label.set(atom);
      } else {
        label.reset(atom);
      }
    }
  }

  void apply_range(const fib::NetworkFib& net, DeviceId dev,
                   std::size_t first, std::size_t last) {
    // Clear the atoms on every out-edge rather than following the plane's
    // cached rule pointer: an Erase update has already freed that rule, so
    // dereferencing it here would read freed memory. The set pass below
    // re-establishes exactly the edges the new winning rules use.
    for (const auto& adj : net.topology().neighbors(dev)) {
      auto& label = graph_->label(dev, adj.neighbor);
      for (std::size_t i = first; i < last; ++i) label.reset(i);
    }
    plane_.set_range(net, atoms_, dev, first, last);
    for (std::size_t i = first; i < last; ++i) {
      label_atom(net, dev, i, /*set=*/true);
    }
  }

  void verify_dsts(const fib::NetworkFib& net, const QuerySet& queries,
                   const std::vector<DeviceId>& dsts) {
    for (const DeviceId dst : dsts) {
      auto& vs = violations_by_dst_[dst];
      vs.clear();
      internal::verify_dst_interval(net.topology(), *graph_, atoms_, queries,
                                    dst, vs);
    }
    flat_violations_.clear();
    for (const auto& [dst, vs] : violations_by_dst_) {
      flat_violations_.insert(flat_violations_.end(), vs.begin(), vs.end());
    }
  }

  IntervalAtoms atoms_;
  IntervalPlane plane_;
  std::unique_ptr<LabeledGraph> graph_;
  std::map<DeviceId, std::vector<BaselineViolation>> violations_by_dst_;
  std::vector<BaselineViolation> flat_violations_;
};

}  // namespace

std::unique_ptr<CentralizedVerifier> make_deltanet() {
  return std::make_unique<DeltaNetVerifier>();
}

}  // namespace tulkun::baseline
