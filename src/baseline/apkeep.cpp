// APKeep [Zhang et al., NSDI'20]: real-time centralized verification that
// maintains the atomic-predicate partition incrementally (the PPM model):
// an update splits only the affected atoms and relabels only the updated
// device's ports, so incremental verification avoids AP's global
// recomputation.
#include "baseline/internal.hpp"

namespace tulkun::baseline {

namespace {

class ApKeepVerifier final : public internal::AtomFamily {
 public:
  ApKeepVerifier() : AtomFamily(/*dedupe_predicates=*/false) {}
  [[nodiscard]] std::string name() const override { return "APKeep"; }

 protected:
  [[nodiscard]] IncStrategy strategy() const override {
    return IncStrategy::RefineAtoms;
  }
};

}  // namespace

std::unique_ptr<CentralizedVerifier> make_apkeep() {
  return std::make_unique<ApKeepVerifier>();
}

}  // namespace tulkun::baseline
