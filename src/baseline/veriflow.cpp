// VeriFlow [Khurshid et al., NSDI'13]: real-time centralized verification
// via a prefix trie of equivalence classes. An update touches only the ECs
// overlapping the changed rule; for each, VeriFlow materializes that EC's
// forwarding graph and traverses it. There is no global atom partition to
// maintain — bursts pay a per-EC graph construction instead (slower in
// batch, fast per update).
#include <chrono>
#include <deque>

#include "baseline/internal.hpp"

namespace tulkun::baseline {

namespace {

using internal::IntervalAtoms;
using internal::IntervalPlane;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

class VeriFlowVerifier final : public CentralizedVerifier {
 public:
  [[nodiscard]] std::string name() const override { return "VeriFlow"; }

  double burst(fib::NetworkFib& net, const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    atoms_.rebuild(net);  // the trie's leaf equivalence classes
    plane_.rebuild(net, atoms_);

    violations_by_atom_.assign(atoms_.size(), {});
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      verify_atom(net, queries, a);
    }
    flatten();
    return seconds_since(t0);
  }

  double incremental(fib::NetworkFib& net, const fib::FibUpdate& update,
                     const std::vector<fib::LecDelta>& deltas,
                     const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    (void)deltas;
    const std::uint64_t lo = update.rule.dst_prefix.range_lo();
    const std::uint64_t hi = update.rule.dst_prefix.range_hi();

    if (atoms_.ensure_boundaries(lo, hi)) {
      // A previously unseen prefix splits trie leaves; re-slice.
      plane_.rebuild(net, atoms_);
      violations_by_atom_.assign(atoms_.size(), {});
      for (std::size_t a = 0; a < atoms_.size(); ++a) {
        verify_atom(net, queries, a);
      }
    } else {
      const auto [f, l] = atoms_.range(lo, hi);
      plane_.set_range(net, atoms_, update.device, f, l);
      for (std::size_t a = f; a < l; ++a) {
        verify_atom(net, queries, a);
      }
    }
    flatten();
    return seconds_since(t0);
  }

  double reverify(fib::NetworkFib& net, const QuerySet& queries) override {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      verify_atom(net, queries, a);
    }
    flatten();
    return seconds_since(t0);
  }

  [[nodiscard]] const std::vector<BaselineViolation>& violations()
      const override {
    return flat_violations_;
  }

  [[nodiscard]] std::size_t memory_bytes() const override {
    return atoms_.memory_bytes() + plane_.memory_bytes();
  }

 private:
  /// Builds this EC's forwarding graph on the fly and reverse-BFSes from
  /// each queried destination.
  void verify_atom(const fib::NetworkFib& net, const QuerySet& queries,
                   std::size_t atom) {
    const auto& topo = net.topology();
    violations_by_atom_[atom].clear();

    // Destinations whose prefix covers this atom.
    const Interval iv = atoms_.atom(atom);
    for (const auto& q : queries) {
      bool covers = false;
      for (const auto& p : topo.prefixes(q.dst)) {
        if (p.range_lo() <= iv.lo && iv.hi <= p.range_hi()) {
          covers = true;
          break;
        }
      }
      if (!covers) continue;

      // Reverse BFS from q.dst over edges forwarding this EC toward dst.
      std::vector<std::uint32_t> dist(topo.device_count(),
                                      topo::Topology::kUnreachable);
      std::deque<DeviceId> work;
      dist[q.dst] = 0;
      work.push_back(q.dst);
      while (!work.empty()) {
        const DeviceId v = work.front();
        work.pop_front();
        for (const auto& adj : topo.neighbors(v)) {
          const DeviceId u = adj.neighbor;
          if (dist[u] != topo::Topology::kUnreachable) continue;
          const fib::Rule* r = plane_.rule_at(u, atom);
          if (r == nullptr || !r->action.forwards_to(v)) continue;
          dist[u] = dist[v] + 1;
          work.push_back(u);
        }
      }
      if (dist[q.ingress] > q.max_hops) {
        violations_by_atom_[atom].push_back(
            BaselineViolation{q.ingress, q.dst, q.space});
      }
    }
  }

  void flatten() {
    flat_violations_.clear();
    for (const auto& vs : violations_by_atom_) {
      flat_violations_.insert(flat_violations_.end(), vs.begin(), vs.end());
    }
  }

  IntervalAtoms atoms_;
  IntervalPlane plane_;
  std::vector<std::vector<BaselineViolation>> violations_by_atom_;
  std::vector<BaselineViolation> flat_violations_;
};

}  // namespace

std::unique_ptr<CentralizedVerifier> make_veriflow() {
  return std::make_unique<VeriFlowVerifier>();
}

}  // namespace tulkun::baseline
