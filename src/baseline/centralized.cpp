#include "baseline/centralized.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/internal.hpp"

namespace tulkun::baseline {

QuerySet all_pair_queries(const topo::Topology& topo,
                          packet::PacketSpace& space, std::uint32_t slack) {
  QuerySet out;
  for (DeviceId dst = 0; dst < topo.device_count(); ++dst) {
    if (topo.prefixes(dst).empty()) continue;
    packet::PacketSet p = space.none();
    for (const auto& prefix : topo.prefixes(dst)) {
      p |= space.dst_prefix(prefix);
    }
    const auto dist = topo.hop_distances_to(dst);
    for (DeviceId ing = 0; ing < topo.device_count(); ++ing) {
      if (ing == dst) continue;
      if (dist[ing] == topo::Topology::kUnreachable) continue;
      out.push_back(Query{ing, dst, p, dist[ing] + slack});
    }
  }
  return out;
}

double collection_latency(const topo::Topology& topo, DeviceId verifier) {
  const auto dist = topo.latency_distances_to(verifier);
  double worst = 0.0;
  for (const double d : dist) {
    if (std::isfinite(d)) worst = std::max(worst, d);
  }
  return worst;
}

double update_latency(const topo::Topology& topo, DeviceId verifier,
                      DeviceId from) {
  return topo.latency_distances_to(verifier)[from];
}

std::vector<std::unique_ptr<CentralizedVerifier>> make_all_baselines() {
  std::vector<std::unique_ptr<CentralizedVerifier>> out;
  out.push_back(make_ap());
  out.push_back(make_apkeep());
  out.push_back(make_deltanet());
  out.push_back(make_veriflow());
  out.push_back(make_flash());
  return out;
}

namespace internal {

AtomTable::AtomTable(packet::PacketSpace& space) : space_(&space) {}

void AtomTable::rebuild(const std::vector<packet::PacketSet>& predicates) {
  atoms_.clear();
  atoms_.push_back(space_->all());
  for (const auto& p : predicates) {
    (void)refine(p);
  }
}

std::vector<AtomTable::Split> AtomTable::refine(const packet::PacketSet& p) {
  std::vector<Split> splits;
  if (p.empty() || p.is_all()) return splits;
  const std::size_t n = atoms_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto inside = atoms_[i] & p;
    if (inside.empty() || inside == atoms_[i]) continue;
    const auto outside = atoms_[i] - p;
    atoms_[i] = inside;  // inside keeps the old id
    atoms_.push_back(outside);
    splits.push_back(Split{i, i, atoms_.size() - 1});
  }
  return splits;
}

DynBitset AtomTable::atoms_of(const packet::PacketSet& p) const {
  DynBitset out(atoms_.size());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].intersects(p)) out.set(i);
  }
  return out;
}

std::size_t AtomTable::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& a : atoms_) bytes += a.bdd_nodes() * 16 + sizeof(a);
  return bytes;
}

LabeledGraph::LabeledGraph(const topo::Topology& topo, std::size_t n_atoms)
    : adj_(topo.device_count()) {
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    for (const auto& a : topo.neighbors(d)) {
      adj_[d].emplace_back(a.neighbor, DynBitset(n_atoms));
    }
  }
}

void LabeledGraph::resize_atoms(std::size_t n_atoms) {
  for (auto& edges : adj_) {
    for (auto& [to, label] : edges) {
      DynBitset fresh(n_atoms);
      label.for_each([&](std::size_t i) { fresh.set(i); });
      label = std::move(fresh);
    }
  }
}

DynBitset& LabeledGraph::label(DeviceId from, DeviceId to) {
  for (auto& [t, l] : adj_[from]) {
    if (t == to) return l;
  }
  throw Error("LabeledGraph: no edge");
}

const DynBitset& LabeledGraph::label(DeviceId from, DeviceId to) const {
  for (const auto& [t, l] : adj_[from]) {
    if (t == to) return l;
  }
  throw Error("LabeledGraph: no edge");
}

void LabeledGraph::apply_splits(const std::vector<AtomTable::Split>& splits) {
  if (splits.empty()) return;
  std::size_t new_size = 0;
  for (const auto& s : splits) {
    new_size = std::max(new_size, std::max(s.inside_id, s.outside_id) + 1);
  }
  for (auto& edges : adj_) {
    for (auto& [to, label] : edges) {
      if (label.size() < new_size) {
        DynBitset fresh(new_size);
        label.for_each([&](std::size_t i) { fresh.set(i); });
        label = std::move(fresh);
      }
      for (const auto& s : splits) {
        // Both halves of a split atom inherit membership from the parent
        // (the parent was wholly inside or outside each edge predicate).
        if (label.test(s.old_id)) {
          label.set(s.inside_id);
          label.set(s.outside_id);
        }
      }
    }
  }
}

std::size_t LabeledGraph::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& edges : adj_) {
    for (const auto& [to, label] : edges) {
      bytes += label.size() / 8 + sizeof(to);
    }
  }
  return bytes;
}

std::vector<DynBitset> atoms_reaching(const topo::Topology& topo,
                                      const LabeledGraph& graph, DeviceId dst,
                                      const std::vector<std::uint32_t>& max_hops,
                                      std::size_t n_atoms) {
  std::uint32_t horizon = 0;
  for (const auto h : max_hops) {
    if (h != topo::Topology::kUnreachable) horizon = std::max(horizon, h);
  }

  // frontier[dev] = atoms reaching dst in <= h hops; result captures each
  // device's bitset at its own hop bound.
  std::vector<DynBitset> reach(topo.device_count(), DynBitset(n_atoms));
  std::vector<DynBitset> result(topo.device_count(), DynBitset(n_atoms));
  reach[dst].set_all();
  if (max_hops[dst] != topo::Topology::kUnreachable) {
    result[dst] = reach[dst];
  }

  for (std::uint32_t h = 1; h <= horizon; ++h) {
    std::vector<DynBitset> next = reach;
    for (DeviceId u = 0; u < topo.device_count(); ++u) {
      for (const auto& [v, label] : graph.edges(u)) {
        DynBitset through = label;
        through &= reach[v];
        next[u] |= through;
      }
    }
    reach = std::move(next);
    for (DeviceId u = 0; u < topo.device_count(); ++u) {
      if (max_hops[u] == h) result[u] = reach[u];
    }
  }
  // Devices whose bound exceeds the horizon (or is zero) take the final /
  // initial state.
  for (DeviceId u = 0; u < topo.device_count(); ++u) {
    if (max_hops[u] != topo::Topology::kUnreachable && max_hops[u] > horizon) {
      result[u] = reach[u];
    }
  }
  return result;
}

void verify_dst_queries(const topo::Topology& topo, const LabeledGraph& graph,
                        const AtomTable& atoms, const QuerySet& queries,
                        DeviceId dst, std::vector<BaselineViolation>& out) {
  std::vector<std::uint32_t> max_hops(topo.device_count(),
                                      topo::Topology::kUnreachable);
  bool any = false;
  for (const auto& q : queries) {
    if (q.dst != dst) continue;
    max_hops[q.ingress] = std::max(
        max_hops[q.ingress] == topo::Topology::kUnreachable ? 0 : max_hops[q.ingress],
        q.max_hops);
    any = true;
  }
  if (!any) return;
  max_hops[dst] = 0;

  const auto reach = atoms_reaching(topo, graph, dst, max_hops, atoms.size());
  for (const auto& q : queries) {
    if (q.dst != dst) continue;
    DynBitset want = atoms.atoms_of(q.space);
    DynBitset missing = want;
    missing.subtract(reach[q.ingress]);
    if (missing.any()) {
      out.push_back(BaselineViolation{q.ingress, q.dst, q.space});
    }
  }
}

void IntervalAtoms::rebuild(const fib::NetworkFib& net) {
  boundaries_.clear();
  boundaries_.push_back(0);
  boundaries_.push_back(1ULL << 32);
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    for (const fib::Rule* r : net.table(d).all()) {
      boundaries_.push_back(r->dst_prefix.range_lo());
      boundaries_.push_back(r->dst_prefix.range_hi());
    }
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
}

bool IntervalAtoms::ensure_boundaries(std::uint64_t lo, std::uint64_t hi) {
  bool inserted = false;
  for (const std::uint64_t b : {lo, hi}) {
    const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), b);
    if (it == boundaries_.end() || *it != b) {
      boundaries_.insert(it, b);
      inserted = true;
    }
  }
  return inserted;
}

std::pair<std::size_t, std::size_t> IntervalAtoms::range(std::uint64_t lo,
                                                         std::uint64_t hi)
    const {
  const auto first = static_cast<std::size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), lo) -
      boundaries_.begin());
  const auto last = static_cast<std::size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), hi) -
      boundaries_.begin());
  return {first, last};
}

std::vector<const fib::Rule*> IntervalAtoms::assignment(
    const fib::FibTable& fib, std::size_t first, std::size_t last) const {
  std::vector<const fib::Rule*> out(last - first, nullptr);
  // Highest priority first: claim unowned atoms in the rule's range.
  for (const fib::Rule* r : fib.ordered()) {
    const auto [rf, rl] = range(r->dst_prefix.range_lo(),
                                r->dst_prefix.range_hi());
    const std::size_t from = std::max(rf, first);
    const std::size_t to = std::min(rl, last);
    for (std::size_t i = from; i < to; ++i) {
      if (out[i - first] == nullptr) out[i - first] = r;
    }
  }
  return out;
}

std::size_t IntervalAtoms::memory_bytes() const {
  return boundaries_.size() * sizeof(std::uint64_t);
}

void IntervalPlane::rebuild(const fib::NetworkFib& net,
                            const IntervalAtoms& atoms) {
  assign_.assign(net.device_count(),
                 std::vector<const fib::Rule*>(atoms.size(), nullptr));
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    set_range(net, atoms, d, 0, atoms.size());
  }
}

void IntervalPlane::set_range(const fib::NetworkFib& net,
                              const IntervalAtoms& atoms, DeviceId device,
                              std::size_t first, std::size_t last) {
  auto fresh = atoms.assignment(net.table(device), first, last);
  for (std::size_t i = first; i < last; ++i) {
    assign_[device][i] = fresh[i - first];
  }
}

std::size_t IntervalPlane::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& row : assign_) bytes += row.size() * sizeof(void*);
  return bytes;
}

void verify_dst_interval(const topo::Topology& topo,
                         const LabeledGraph& graph, const IntervalAtoms& atoms,
                         const QuerySet& queries, DeviceId dst,
                         std::vector<BaselineViolation>& out) {
  std::vector<std::uint32_t> max_hops(topo.device_count(),
                                      topo::Topology::kUnreachable);
  bool any = false;
  for (const auto& q : queries) {
    if (q.dst != dst) continue;
    const std::uint32_t cur =
        max_hops[q.ingress] == topo::Topology::kUnreachable
            ? 0
            : max_hops[q.ingress];
    max_hops[q.ingress] = std::max(cur, q.max_hops);
    any = true;
  }
  if (!any) return;
  max_hops[dst] = 0;

  const auto reach = atoms_reaching(topo, graph, dst, max_hops, atoms.size());

  // The query space of a dst is its attached prefixes; use interval ids.
  DynBitset want(atoms.size());
  for (const auto& prefix : topo.prefixes(dst)) {
    const auto [f, l] = atoms.range(prefix.range_lo(), prefix.range_hi());
    for (std::size_t i = f; i < l; ++i) want.set(i);
  }
  for (const auto& q : queries) {
    if (q.dst != dst) continue;
    DynBitset missing = want;
    missing.subtract(reach[q.ingress]);
    if (missing.any()) {
      out.push_back(BaselineViolation{q.ingress, q.dst, q.space});
    }
  }
}

}  // namespace internal

}  // namespace tulkun::baseline
