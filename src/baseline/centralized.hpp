// Shared substrate for the centralized DPV baselines (AP, APKeep,
// Delta-net, VeriFlow, Flash).
//
// Each baseline re-implements the core algorithm of the corresponding tool
// (global atomic predicates, incremental atoms, dstIP interval atoms,
// prefix-trie equivalence classes, batched EC computation). All consume the
// same NetworkFib and the same query set Tulkun verifies, so the comparison
// isolates the architectural difference the paper studies. Collection cost
// is modeled per §9.3.1: devices ship their data planes to a randomly
// placed verifier along lowest-latency paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fib/update_stream.hpp"
#include "packet/packet_set.hpp"
#include "topo/topology.hpp"

namespace tulkun::baseline {

/// One reachability-style requirement: every packet of `space` entering at
/// `ingress` must reach `dst` within `max_hops` hops (loop- and
/// blackhole-freeness follow from the hop bound).
struct Query {
  DeviceId ingress = kNoDevice;
  DeviceId dst = kNoDevice;
  packet::PacketSet space;
  std::uint32_t max_hops = 0;
};

using QuerySet = std::vector<Query>;

/// All-pair queries: for every device owning a prefix, from every other
/// device, within (shortest + slack) hops — the §9.2/§9.3 invariant.
[[nodiscard]] QuerySet all_pair_queries(const topo::Topology& topo,
                                        packet::PacketSpace& space,
                                        std::uint32_t slack);

/// A violation found by a baseline (for cross-checking against Tulkun).
struct BaselineViolation {
  DeviceId ingress = kNoDevice;
  DeviceId dst = kNoDevice;
  packet::PacketSet space;
};

/// Latency until the last device's data plane reaches the verifier.
[[nodiscard]] double collection_latency(const topo::Topology& topo,
                                        DeviceId verifier);

/// Latency for one device's rule update to reach the verifier.
[[nodiscard]] double update_latency(const topo::Topology& topo,
                                    DeviceId verifier, DeviceId from);

/// Interface of every centralized baseline. burst()/incremental() return
/// host-measured compute seconds; the harness adds collection latency.
class CentralizedVerifier {
 public:
  virtual ~CentralizedVerifier() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Ingests the full data plane and verifies all queries.
  virtual double burst(fib::NetworkFib& net, const QuerySet& queries) = 0;

  /// Applies one already-applied update (rule form and LEC-delta form) and
  /// re-verifies what the tool's data structures say is affected. The
  /// update has already been applied to `net`. Call only after burst().
  virtual double incremental(fib::NetworkFib& net, const fib::FibUpdate& update,
                             const std::vector<fib::LecDelta>& deltas,
                             const QuerySet& queries) = 0;

  /// Re-checks every query against the existing equivalence-class state
  /// WITHOUT recomputing it (what a centralized tool does when the
  /// topology changes but no rule does — the §9.3.4 scene verification).
  virtual double reverify(fib::NetworkFib& net, const QuerySet& queries) = 0;

  [[nodiscard]] virtual const std::vector<BaselineViolation>& violations()
      const = 0;

  /// Peak auxiliary memory estimate in bytes (reproduces Delta-net's
  /// memory-out behaviour on large DCs).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
};

/// Factory helpers.
std::unique_ptr<CentralizedVerifier> make_ap();
std::unique_ptr<CentralizedVerifier> make_apkeep();
std::unique_ptr<CentralizedVerifier> make_deltanet();
std::unique_ptr<CentralizedVerifier> make_veriflow();
std::unique_ptr<CentralizedVerifier> make_flash();

/// All five, in the paper's comparison order.
std::vector<std::unique_ptr<CentralizedVerifier>> make_all_baselines();

}  // namespace tulkun::baseline
