// AP [Yang & Lam, ICNP'13]: centralized verification with global atomic
// predicates. Burst computes all LECs, refines the global atom set, labels
// the forwarding graph, and checks every query. Incremental recomputes the
// atoms from scratch after each update — the tool's known weakness the
// paper leverages (§9.3.3).
#include <chrono>

#include "baseline/internal.hpp"

namespace tulkun::baseline {

namespace internal {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

DynBitset AtomFamily::memo_atoms_of(const packet::PacketSet& p) {
  const auto it = atoms_of_memo_.find(p.ref());
  if (it != atoms_of_memo_.end()) return it->second;
  DynBitset out = atoms_->atoms_of(p);
  atoms_of_memo_.emplace(p.ref(), out);
  return out;
}

void AtomFamily::rebuild_all(fib::NetworkFib& net) {
  space_ = &net.space();
  const auto& topo = net.topology();

  // Collect every LEC predicate; Flash processes the whole batch at once
  // and can deduplicate identical predicates network-wide before the
  // quadratic refinement, which is its batch-processing edge.
  std::vector<packet::PacketSet> preds;
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    for (const auto& e : lecs_[d].entries()) {
      preds.push_back(e.pred);
    }
  }
  if (dedupe_predicates_) {
    std::sort(preds.begin(), preds.end(),
              [](const packet::PacketSet& a, const packet::PacketSet& b) {
                return a.ref() < b.ref();
              });
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  }

  atoms_ = std::make_unique<AtomTable>(*space_);
  atoms_->rebuild(preds);
  atoms_of_memo_.clear();

  graph_ = std::make_unique<LabeledGraph>(topo, atoms_->size());
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    rebuild_device_labels(net, d);
  }
}

void AtomFamily::rebuild_device_labels(fib::NetworkFib& net, DeviceId device) {
  for (auto& [to, label] : graph_->edges(device)) {
    label = DynBitset(atoms_->size());
  }
  for (const auto& e : lecs_[device].entries()) {
    if (e.action.type == fib::ActionType::Drop) continue;
    const DynBitset members = memo_atoms_of(e.pred);
    for (const DeviceId hop : e.action.next_hops) {
      if (hop == fib::kExternalPort) continue;
      if (!net.topology().has_link(device, hop)) continue;
      graph_->label(device, hop) |= members;
    }
  }
}

std::vector<DeviceId> AtomFamily::affected_dsts(
    const fib::NetworkFib& net, const QuerySet& queries,
    const packet::PacketSet& region) const {
  std::vector<DeviceId> out;
  for (const auto& q : queries) {
    if (!q.space.intersects(region)) continue;
    if (std::find(out.begin(), out.end(), q.dst) == out.end()) {
      out.push_back(q.dst);
    }
  }
  (void)net;
  return out;
}

void AtomFamily::verify_dsts(fib::NetworkFib& net, const QuerySet& queries,
                             const std::vector<DeviceId>& dsts) {
  for (const DeviceId dst : dsts) {
    auto& vs = violations_by_dst_[dst];
    vs.clear();
    verify_dst_queries(net.topology(), *graph_, *atoms_, queries, dst, vs);
  }
  flat_violations_.clear();
  for (const auto& [dst, vs] : violations_by_dst_) {
    flat_violations_.insert(flat_violations_.end(), vs.begin(), vs.end());
  }
}

double AtomFamily::burst(fib::NetworkFib& net, const QuerySet& queries) {
  const auto t0 = std::chrono::steady_clock::now();
  // Centralized LEC computation for every collected FIB.
  fib::LecBuilder builder(net.space());
  lecs_.clear();
  lecs_.reserve(net.device_count());
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    lecs_.push_back(builder.build(net.table(d)));
  }
  rebuild_all(net);

  std::vector<DeviceId> dsts;
  for (const auto& q : queries) {
    if (std::find(dsts.begin(), dsts.end(), q.dst) == dsts.end()) {
      dsts.push_back(q.dst);
    }
  }
  violations_by_dst_.clear();
  verify_dsts(net, queries, dsts);
  return seconds_since(t0);
}

double AtomFamily::incremental(fib::NetworkFib& net,
                               const fib::FibUpdate& update,
                               const std::vector<fib::LecDelta>& deltas,
                               const QuerySet& queries) {
  const DeviceId device = update.device;
  const auto t0 = std::chrono::steady_clock::now();
  if (deltas.empty()) return seconds_since(t0);

  // Patch the stored LEC of the updated device.
  fib::LecBuilder builder(net.space());
  packet::PacketSet region = net.space().none();
  std::vector<fib::Lec> after;
  for (const auto& d : deltas) {
    region |= d.pred;
    after.push_back(fib::Lec{d.pred, d.new_action});
  }
  lecs_[device] = builder.apply_patch(lecs_[device], region, after);

  switch (strategy()) {
    case IncStrategy::RebuildAtoms:
      rebuild_all(net);
      break;
    case IncStrategy::RefineAtoms: {
      for (const auto& d : deltas) {
        const auto splits = atoms_->refine(d.pred);
        graph_->apply_splits(splits);
      }
      atoms_of_memo_.clear();
      // Only the updated device's labels change; flip membership for the
      // delta regions.
      for (const auto& d : deltas) {
        const DynBitset members = memo_atoms_of(d.pred);
        const auto flip = [&](const fib::Action& action, bool set) {
          if (action.type == fib::ActionType::Drop) return;
          for (const DeviceId hop : action.next_hops) {
            if (hop == fib::kExternalPort) continue;
            if (!net.topology().has_link(device, hop)) continue;
            auto& label = graph_->label(device, hop);
            members.for_each([&](std::size_t i) {
              if (set) {
                label.set(i);
              } else {
                label.reset(i);
              }
            });
          }
        };
        flip(d.old_action, false);
        flip(d.new_action, true);
      }
      break;
    }
    case IncStrategy::RefineRebuildDevice: {
      for (const auto& d : deltas) {
        const auto splits = atoms_->refine(d.pred);
        graph_->apply_splits(splits);
      }
      atoms_of_memo_.clear();
      rebuild_device_labels(net, device);
      break;
    }
  }

  verify_dsts(net, queries, affected_dsts(net, queries, region));
  return seconds_since(t0);
}

double AtomFamily::reverify(fib::NetworkFib& net, const QuerySet& queries) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<DeviceId> dsts;
  for (const auto& q : queries) {
    if (std::find(dsts.begin(), dsts.end(), q.dst) == dsts.end()) {
      dsts.push_back(q.dst);
    }
  }
  verify_dsts(net, queries, dsts);
  return seconds_since(t0);
}

std::size_t AtomFamily::memory_bytes() const {
  std::size_t bytes = atoms_ ? atoms_->memory_bytes() : 0;
  if (graph_) bytes += graph_->memory_bytes();
  for (const auto& lec : lecs_) {
    for (const auto& e : lec.entries()) bytes += e.pred.bdd_nodes() * 16;
  }
  return bytes;
}

}  // namespace internal

namespace {

class ApVerifier final : public internal::AtomFamily {
 public:
  ApVerifier() : AtomFamily(/*dedupe_predicates=*/false) {}
  [[nodiscard]] std::string name() const override { return "AP"; }

 protected:
  [[nodiscard]] IncStrategy strategy() const override {
    return IncStrategy::RebuildAtoms;
  }
};

}  // namespace

std::unique_ptr<CentralizedVerifier> make_ap() {
  return std::make_unique<ApVerifier>();
}

}  // namespace tulkun::baseline
