// Flash [Guo et al., SIGCOMM'22]: consistent verification for large-scale
// networks via batch processing. Its burst-mode edge is processing all
// collected rules as one batch — network-wide predicate deduplication
// before equivalence-class computation. Incremental updates still pay for
// re-deriving the updated device's labels (the paper finds Flash slow on
// single-rule updates, §1/§9.3.3).
#include "baseline/internal.hpp"

namespace tulkun::baseline {

namespace {

class FlashVerifier final : public internal::AtomFamily {
 public:
  FlashVerifier() : AtomFamily(/*dedupe_predicates=*/true) {}
  [[nodiscard]] std::string name() const override { return "Flash"; }

 protected:
  [[nodiscard]] IncStrategy strategy() const override {
    return IncStrategy::RefineRebuildDevice;
  }
};

}  // namespace

std::unique_ptr<CentralizedVerifier> make_flash() {
  return std::make_unique<FlashVerifier>();
}

}  // namespace tulkun::baseline
