// Invariant specification AST (§3, Figure 3).
//
// An invariant is (packet_space, ingress_set, behavior, [fault_scenes]).
// A behavior is a boolean combination of (match_op, path_exp) atoms, where
// path_exp is a device regex with optional length filters and a loop_free
// flag, and match_op is `exist <cmp> N`, `equal`, or `subset`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "packet/packet_set.hpp"
#include "regex/parser.hpp"

namespace tulkun::spec {

/// A hop-count filter on valid paths, e.g. (<= shortest+1) or (< 5).
/// Hop count = number of links = devices on path - 1.
struct LengthFilter {
  enum class Cmp : std::uint8_t { Eq, Le, Lt, Ge, Gt };
  enum class Base : std::uint8_t { Const, Shortest };

  Cmp cmp = Cmp::Le;
  Base base = Base::Const;
  std::int32_t offset = 0;  // Const: the bound itself; Shortest: the "+k"

  /// True when the bound depends on the topology (== shortest etc.), so
  /// fault scenes can change it (§6, Proposition 2).
  [[nodiscard]] bool symbolic() const { return base == Base::Shortest; }

  /// Does a path of `len` hops pass, given the current shortest length?
  [[nodiscard]] bool admits(std::uint32_t len, std::uint32_t shortest) const;

  /// Largest admissible hop count, or nullopt if unbounded above.
  [[nodiscard]] std::optional<std::uint32_t> upper_bound(
      std::uint32_t shortest) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LengthFilter&, const LengthFilter&) = default;
};

/// A regular path pattern with optional filters.
struct PathExpr {
  std::string regex_text;           // original text (for reporting)
  regex::Ast ast;                   // parsed regex
  std::vector<LengthFilter> filters;
  bool loop_free = false;           // restrict to simple paths

  /// True when the set of matching paths is finite: either simple paths
  /// only, or an upper-bounding length filter exists. The planner requires
  /// this for enumeration-based DPVNet construction.
  [[nodiscard]] bool bounded() const;
};

/// The numeric comparison of an `exist` match operator.
struct CountExpr {
  enum class Cmp : std::uint8_t { Eq, Ge, Gt, Le, Lt };
  Cmp cmp = Cmp::Ge;
  std::uint32_t n = 1;

  [[nodiscard]] bool satisfied(std::uint32_t count) const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CountExpr&, const CountExpr&) = default;
};

enum class MatchOpKind : std::uint8_t {
  Exist,   ///< per-universe trace count must satisfy the CountExpr
  Equal,   ///< union of universes == all matching paths (RCDC-style)
  Subset,  ///< traces are a non-empty subset of matching paths
};

enum class BehaviorKind : std::uint8_t { Atom, Not, And, Or };

/// Behavior tree. An Atom pairs a match operator with a path expression.
struct Behavior {
  BehaviorKind kind = BehaviorKind::Atom;

  // Atom payload:
  MatchOpKind op = MatchOpKind::Exist;
  CountExpr count;     // valid when op == Exist
  PathExpr path;

  // Not: 1 child. And/Or: >= 2 children.
  std::vector<Behavior> children;

  static Behavior exist(CountExpr c, PathExpr p);
  static Behavior equal(PathExpr p);
  static Behavior subset(PathExpr p);
  static Behavior negate(Behavior b);
  static Behavior conj(std::vector<Behavior> bs);
  static Behavior disj(std::vector<Behavior> bs);

  /// All Atom nodes, in dfs order (the planner assigns one counting task
  /// per atom).
  [[nodiscard]] std::vector<const Behavior*> atoms() const;
};

/// One fault scene: a set of failed (bidirectional) links.
struct FaultScene {
  std::vector<LinkId> failed;  // canonical: from < to, sorted

  static FaultScene of(std::vector<LinkId> links);
  [[nodiscard]] bool contains(LinkId l) const;
  /// True iff every failed link of `other` is also failed here.
  [[nodiscard]] bool superset_of(const FaultScene& other) const;

  friend bool operator==(const FaultScene&, const FaultScene&) = default;
};

/// Fault tolerance request: explicit scenes and/or "any k link failures".
struct FaultSpec {
  std::vector<FaultScene> scenes;
  std::uint32_t any_k = 0;  // any_k > 0: all scenes with <= any_k failures

  [[nodiscard]] bool empty() const { return scenes.empty() && any_k == 0; }
};

/// A fully resolved invariant.
struct Invariant {
  std::string name;                 // optional label for reporting
  packet::PacketSet packet_space;
  std::string packet_space_text;
  std::vector<DeviceId> ingress_set;
  Behavior behavior;
  FaultSpec faults;
};

}  // namespace tulkun::spec
