#include "spec/check.hpp"

#include <deque>
#include <set>

namespace tulkun::spec {

namespace {

/// Forward-reachable DFA states over an alphabet of `alphabet_size` symbols.
std::set<std::uint32_t> reachable_states(const regex::Dfa& dfa,
                                         std::size_t alphabet_size) {
  std::set<std::uint32_t> seen;
  if (dfa.start() == regex::Dfa::kDead) return seen;
  std::deque<std::uint32_t> work{dfa.start()};
  seen.insert(dfa.start());
  while (!work.empty()) {
    const auto q = work.front();
    work.pop_front();
    for (regex::Symbol s = 0; s < alphabet_size; ++s) {
      const auto t = dfa.next(q, s);
      if (t != regex::Dfa::kDead && seen.insert(t).second) {
        work.push_back(t);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<regex::Symbol> last_symbols(const regex::Dfa& dfa,
                                        std::size_t alphabet_size) {
  std::vector<regex::Symbol> out;
  const auto states = reachable_states(dfa, alphabet_size);
  for (regex::Symbol s = 0; s < alphabet_size; ++s) {
    for (const auto q : states) {
      if (dfa.accepting(dfa.next(q, s))) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

std::vector<regex::Symbol> first_symbols(const regex::Dfa& dfa,
                                         std::size_t alphabet_size) {
  std::vector<regex::Symbol> out;
  if (dfa.start() == regex::Dfa::kDead) return out;
  for (regex::Symbol s = 0; s < alphabet_size; ++s) {
    const auto t = dfa.next(dfa.start(), s);
    if (t != regex::Dfa::kDead && dfa.can_accept(t)) out.push_back(s);
  }
  return out;
}

std::vector<std::string> validate(const Invariant& inv,
                                  const topo::Topology& topo,
                                  packet::PacketSpace& space) {
  std::vector<std::string> problems;
  const std::size_t n = topo.device_count();

  if (inv.ingress_set.empty()) {
    problems.push_back("empty ingress set");
  }
  for (const DeviceId ing : inv.ingress_set) {
    if (ing >= n) problems.push_back("ingress device id out of range");
  }

  for (const Behavior* atom : inv.behavior.atoms()) {
    const PathExpr& pe = atom->path;
    if ((atom->op == MatchOpKind::Exist || atom->op == MatchOpKind::Subset) &&
        !pe.bounded()) {
      problems.push_back("path expression '" + pe.regex_text +
                         "' is unbounded: add loop_free or an upper length "
                         "filter");
      continue;
    }
    const regex::Dfa dfa =
        regex::Dfa::determinize(regex::build_nfa(pe.ast)).minimize();
    if (dfa.start() == regex::Dfa::kDead) {
      problems.push_back("path expression '" + pe.regex_text +
                         "' matches no path at all");
      continue;
    }

    // Destination <-> packet-space consistency: some device that can end a
    // matching path must own a prefix intersecting the packet space.
    // Negative atoms (satisfied by zero matching traces, e.g. isolation's
    // exist == 0) intentionally name destinations the packets must NOT
    // reach, so the coverage requirement does not apply.
    const bool zero_satisfiable =
        atom->op == MatchOpKind::Exist && atom->count.satisfied(0);
    const auto dests = last_symbols(dfa, n);
    if (!dests.empty() && !zero_satisfiable) {
      bool covered = false;
      for (const auto dev : dests) {
        for (const auto& prefix : topo.prefixes(dev)) {
          if (inv.packet_space.intersects(space.dst_prefix(prefix))) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      if (!covered) {
        problems.push_back(
            "packet space '" + inv.packet_space_text +
            "' does not reach any prefix attached to the destinations of '" +
            pe.regex_text + "'");
      }
    }

    // Every ingress should be able to start a matching path.
    const auto firsts = first_symbols(dfa, n);
    for (const DeviceId ing : inv.ingress_set) {
      if (ing < n &&
          std::find(firsts.begin(), firsts.end(), ing) == firsts.end()) {
        problems.push_back("ingress " + topo.name(ing) +
                           " cannot start any path matching '" +
                           pe.regex_text + "'");
      }
    }
  }

  for (const auto& scene : inv.faults.scenes) {
    for (const auto& link : scene.failed) {
      if (link.from >= n || link.to >= n ||
          !topo.has_link(link.from, link.to)) {
        problems.push_back("fault scene names a non-existent link");
      }
    }
  }
  return problems;
}

void ensure_valid(const Invariant& inv, const topo::Topology& topo,
                  packet::PacketSpace& space) {
  const auto problems = validate(inv, topo, space);
  if (problems.empty()) return;
  std::string msg = "invariant '" + inv.name + "' invalid:";
  for (const auto& p : problems) msg += "\n  - " + p;
  throw SpecError(msg);
}

}  // namespace tulkun::spec
