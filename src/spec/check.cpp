#include "spec/check.hpp"

#include <deque>
#include <set>

namespace tulkun::spec {

namespace {

/// Forward-reachable DFA states over an alphabet of `alphabet_size` symbols.
std::set<std::uint32_t> reachable_states(const regex::Dfa& dfa,
                                         std::size_t alphabet_size) {
  std::set<std::uint32_t> seen;
  if (dfa.start() == regex::Dfa::kDead) return seen;
  std::deque<std::uint32_t> work{dfa.start()};
  seen.insert(dfa.start());
  while (!work.empty()) {
    const auto q = work.front();
    work.pop_front();
    for (regex::Symbol s = 0; s < alphabet_size; ++s) {
      const auto t = dfa.next(q, s);
      if (t != regex::Dfa::kDead && seen.insert(t).second) {
        work.push_back(t);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<regex::Symbol> last_symbols(const regex::Dfa& dfa,
                                        std::size_t alphabet_size) {
  std::vector<regex::Symbol> out;
  const auto states = reachable_states(dfa, alphabet_size);
  for (regex::Symbol s = 0; s < alphabet_size; ++s) {
    for (const auto q : states) {
      if (dfa.accepting(dfa.next(q, s))) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

std::vector<regex::Symbol> first_symbols(const regex::Dfa& dfa,
                                         std::size_t alphabet_size) {
  std::vector<regex::Symbol> out;
  if (dfa.start() == regex::Dfa::kDead) return out;
  for (regex::Symbol s = 0; s < alphabet_size; ++s) {
    const auto t = dfa.next(dfa.start(), s);
    if (t != regex::Dfa::kDead && dfa.can_accept(t)) out.push_back(s);
  }
  return out;
}

namespace {

/// Minimized DFA of `pe` through the caller's memoized hook (or fresh).
regex::Dfa atom_dfa(const PathExpr& pe, const DfaFn& dfa) {
  if (dfa) return dfa(pe);
  return regex::Dfa::determinize(regex::build_nfa(pe.ast)).minimize();
}

/// Boundedness / dead-regex problems of one atom; returns false when the
/// atom is too broken for the downstream DFA-based checks to apply.
bool atom_shape_ok(const Behavior* atom, std::vector<std::string>* problems) {
  const PathExpr& pe = atom->path;
  if ((atom->op == MatchOpKind::Exist || atom->op == MatchOpKind::Subset) &&
      !pe.bounded()) {
    if (problems != nullptr) {
      problems->push_back("path expression '" + pe.regex_text +
                          "' is unbounded: add loop_free or an upper length "
                          "filter");
    }
    return false;
  }
  return true;
}

/// Destination <-> packet-space consistency: some device that can end a
/// matching path must own a prefix intersecting the packet space.
/// Negative atoms (satisfied by zero matching traces, e.g. isolation's
/// exist == 0) intentionally name destinations the packets must NOT
/// reach, so the coverage requirement does not apply.
void atom_coverage_problems(const Behavior* atom, const Invariant& inv,
                            const topo::Topology& topo,
                            packet::PacketSpace& space, const regex::Dfa& dfa,
                            std::vector<std::string>& problems) {
  const PathExpr& pe = atom->path;
  const std::size_t n = topo.device_count();
  const bool zero_satisfiable =
      atom->op == MatchOpKind::Exist && atom->count.satisfied(0);
  const auto dests = last_symbols(dfa, n);
  if (dests.empty() || zero_satisfiable) return;
  for (const auto dev : dests) {
    for (const auto& prefix : topo.prefixes(dev)) {
      if (inv.packet_space.intersects(space.dst_prefix(prefix))) return;
    }
  }
  problems.push_back(
      "packet space '" + inv.packet_space_text +
      "' does not reach any prefix attached to the destinations of '" +
      pe.regex_text + "'");
}

/// Every ingress should be able to start a matching path.
void atom_ingress_problems(const Behavior* atom, const Invariant& inv,
                           const topo::Topology& topo, const regex::Dfa& dfa,
                           std::vector<std::string>& problems) {
  const std::size_t n = topo.device_count();
  const auto firsts = first_symbols(dfa, n);
  for (const DeviceId ing : inv.ingress_set) {
    if (ing < n &&
        std::find(firsts.begin(), firsts.end(), ing) == firsts.end()) {
      problems.push_back("ingress " + topo.name(ing) +
                         " cannot start any path matching '" +
                         atom->path.regex_text + "'");
    }
  }
}

void scene_problems(const Invariant& inv, const topo::Topology& topo,
                    std::vector<std::string>& problems) {
  const std::size_t n = topo.device_count();
  for (const auto& scene : inv.faults.scenes) {
    for (const auto& link : scene.failed) {
      if (link.from >= n || link.to >= n ||
          !topo.has_link(link.from, link.to)) {
        problems.push_back("fault scene names a non-existent link");
      }
    }
  }
}

void ingress_set_problems(const Invariant& inv, const topo::Topology& topo,
                          std::vector<std::string>& problems) {
  if (inv.ingress_set.empty()) {
    problems.push_back("empty ingress set");
  }
  for (const DeviceId ing : inv.ingress_set) {
    if (ing >= topo.device_count()) {
      problems.push_back("ingress device id out of range");
    }
  }
}

}  // namespace

std::vector<std::string> validate(const Invariant& inv,
                                  const topo::Topology& topo,
                                  packet::PacketSpace& space,
                                  const DfaFn& dfa_fn) {
  std::vector<std::string> problems;
  ingress_set_problems(inv, topo, problems);
  for (const Behavior* atom : inv.behavior.atoms()) {
    if (!atom_shape_ok(atom, &problems)) continue;
    const regex::Dfa dfa = atom_dfa(atom->path, dfa_fn);
    if (dfa.start() == regex::Dfa::kDead) {
      problems.push_back("path expression '" + atom->path.regex_text +
                         "' matches no path at all");
      continue;
    }
    atom_coverage_problems(atom, inv, topo, space, dfa, problems);
    atom_ingress_problems(atom, inv, topo, dfa, problems);
  }
  scene_problems(inv, topo, problems);
  return problems;
}

std::vector<std::string> validate_structure(const Invariant& inv,
                                            const topo::Topology& topo,
                                            const DfaFn& dfa_fn) {
  std::vector<std::string> problems;
  ingress_set_problems(inv, topo, problems);
  for (const Behavior* atom : inv.behavior.atoms()) {
    if (!atom_shape_ok(atom, &problems)) continue;
    const regex::Dfa dfa = atom_dfa(atom->path, dfa_fn);
    if (dfa.start() == regex::Dfa::kDead) {
      problems.push_back("path expression '" + atom->path.regex_text +
                         "' matches no path at all");
      continue;
    }
    atom_ingress_problems(atom, inv, topo, dfa, problems);
  }
  scene_problems(inv, topo, problems);
  return problems;
}

std::vector<std::string> validate_coverage(const Invariant& inv,
                                           const topo::Topology& topo,
                                           packet::PacketSpace& space,
                                           const DfaFn& dfa_fn) {
  std::vector<std::string> problems;
  for (const Behavior* atom : inv.behavior.atoms()) {
    if (!atom_shape_ok(atom, nullptr)) continue;
    const regex::Dfa dfa = atom_dfa(atom->path, dfa_fn);
    if (dfa.start() == regex::Dfa::kDead) continue;
    atom_coverage_problems(atom, inv, topo, space, dfa, problems);
  }
  return problems;
}

void ensure_valid(const Invariant& inv, const topo::Topology& topo,
                  packet::PacketSpace& space, const DfaFn& dfa_fn) {
  const auto problems = validate(inv, topo, space, dfa_fn);
  if (problems.empty()) return;
  std::string msg = "invariant '" + inv.name + "' invalid:";
  for (const auto& p : problems) msg += "\n  - " + p;
  throw SpecError(msg);
}

}  // namespace tulkun::spec
