// Builtin invariant constructors: the Table 1 catalogue, programmatic form.
//
// Each helper returns a fully resolved Invariant over a topology and packet
// space, matching the Tulkun-language specification listed in the paper:
//
//   reachability            (P, [S], (exist >= 1, S .* D))
//   isolation               (P, [S], (exist == 0, S .* D))
//   blackhole-free          == reachability on loop-free paths (see note)
//   waypoint                (P, [S], (exist >= 1, S .* W .* D))
//   bounded-length reach    (P, [S], (exist >= 1, S .* D ; length <= k))
//   multi-ingress reach     (P, [X,Y], (exist >= 1, (X|Y) .* D))
//   all-shortest-path       (P, [S], (equal, S .* D ; length == shortest))
//   non-redundant reach     (P, [S], (exist == 1, S .* D))
//   multicast               (P, [S], (exist >= 1, S.*D) and (exist >= 1, S.*E))
//   anycast                 (P, [S], exactly one of D, E receives)
//
// Delivered traces are always simple paths (within one universe each device
// applies one action, so a revisited device loops forever and never
// delivers); the loop_free flag on these builtins therefore restricts the
// DPVNet without excluding any deliverable trace, and loop/blackhole errors
// both surface as count deficits against these invariants.
#pragma once

#include <vector>

#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::spec {

/// Bundles what every builtin needs.
struct Builtins {
  const topo::Topology* topo;
  packet::PacketSpace* space;

  Builtins(const topo::Topology& t, packet::PacketSpace& s)
      : topo(&t), space(&s) {}

  /// Path expression `<from> .* <to>` with loop_free and optional filters.
  [[nodiscard]] PathExpr simple_paths(DeviceId from, DeviceId to,
                                      std::vector<LengthFilter> filters = {})
      const;

  /// Path expression `<from> .* <via> .* <to>`, loop-free.
  [[nodiscard]] PathExpr waypoint_paths(DeviceId from, DeviceId via,
                                        DeviceId to) const;

  [[nodiscard]] Invariant reachability(packet::PacketSet p, DeviceId s,
                                       DeviceId d) const;
  [[nodiscard]] Invariant isolation(packet::PacketSet p, DeviceId s,
                                    DeviceId d) const;
  [[nodiscard]] Invariant waypoint(packet::PacketSet p, DeviceId s,
                                   DeviceId w, DeviceId d) const;
  [[nodiscard]] Invariant bounded_reachability(packet::PacketSet p, DeviceId s,
                                               DeviceId d,
                                               std::uint32_t max_hops) const;
  /// Reachability along paths within `slack` hops of the shortest.
  [[nodiscard]] Invariant shortest_plus_reachability(packet::PacketSet p,
                                                     DeviceId s, DeviceId d,
                                                     std::uint32_t slack)
      const;
  [[nodiscard]] Invariant multi_ingress_reachability(
      packet::PacketSet p, std::vector<DeviceId> ingresses, DeviceId d) const;
  [[nodiscard]] Invariant all_shortest_path(packet::PacketSet p, DeviceId s,
                                            DeviceId d) const;
  [[nodiscard]] Invariant non_redundant_reachability(packet::PacketSet p,
                                                     DeviceId s,
                                                     DeviceId d) const;
  [[nodiscard]] Invariant multicast(packet::PacketSet p, DeviceId s,
                                    std::vector<DeviceId> dests) const;
  [[nodiscard]] Invariant anycast(packet::PacketSet p, DeviceId s,
                                  std::vector<DeviceId> dests) const;

  /// The packet space of a device's attached prefixes (union), or none().
  [[nodiscard]] packet::PacketSet attached_packets(DeviceId d) const;
};

}  // namespace tulkun::spec
