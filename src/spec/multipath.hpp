// Multi-path invariants (§7 "Multi-path comparison"): invariants that
// compare the packet traces of two packet spaces — route symmetry, path
// node-/link-disjointness. The paper sketches the mechanism: construct a
// DPVNet per packet space, let on-device verifiers collect the actual
// downstream paths and send them upstream, and run a user-defined
// comparison on the collected complete paths.
//
// Semantics note: the collected set of a side is its *possible-path* set —
// every path some universe may take (ANY-type choices contribute all
// alternatives, ALL-type replication contributes every branch).
#pragma once

#include <functional>

#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::spec {

/// One side of a comparison: packets of `space` entering at `ingress`,
/// restricted to paths matching `path` (must be bounded).
struct PathQuery {
  packet::PacketSet space;
  DeviceId ingress = kNoDevice;
  PathExpr path;
};

enum class PathCompareKind : std::uint8_t {
  /// Side A's possible paths == side B's possible paths reversed
  /// (middlebox/route symmetry: S->D and D->S traverse the same chain).
  RouteSymmetry,
  /// No intermediate device is shared between the two sides' paths
  /// (node-disjoint protection paths).
  NodeDisjoint,
  /// No (undirected) link is shared between the two sides' paths.
  LinkDisjoint,
  /// The two sides take exactly the same path sets.
  SamePaths,
};

struct MultiPathInvariant {
  std::string name;
  PathQuery a;
  PathQuery b;
  PathCompareKind compare = PathCompareKind::RouteSymmetry;
  /// Where the comparison runs; defaults to a.ingress.
  DeviceId comparator = kNoDevice;
};

/// A path as collected by verifiers: the device sequence.
using CollectedPath = std::vector<DeviceId>;
using PathSet = std::vector<CollectedPath>;  // sorted, unique

/// Evaluates a comparison on two collected path sets; returns an empty
/// string on success, else a human-readable reason.
[[nodiscard]] std::string compare_path_sets(PathCompareKind kind,
                                            const PathSet& a,
                                            const PathSet& b);

/// Builders for the §7 examples.
struct MultiPathBuiltins {
  const topo::Topology* topo;
  packet::PacketSpace* space;

  MultiPathBuiltins(const topo::Topology& t, packet::PacketSpace& s)
      : topo(&t), space(&s) {}

  /// forward paths of `fwd_space` (S -> D) must be the reverse of the
  /// return paths of `rev_space` (D -> S).
  [[nodiscard]] MultiPathInvariant route_symmetry(
      packet::PacketSet fwd_space, packet::PacketSet rev_space, DeviceId s,
      DeviceId d) const;

  /// Two services' paths from `s` must be node-disjoint between their
  /// (distinct) destinations.
  [[nodiscard]] MultiPathInvariant node_disjoint(packet::PacketSet space_a,
                                                 DeviceId da,
                                                 packet::PacketSet space_b,
                                                 DeviceId db,
                                                 DeviceId s) const;

 private:
  [[nodiscard]] PathExpr simple(DeviceId from, DeviceId to) const;
};

}  // namespace tulkun::spec
