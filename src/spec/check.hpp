// Invariant consistency checks (§3 "Convenience features").
//
// Tulkun validates an invariant before planning:
//  * every exist/subset atom's path expression must be bounded (loop_free
//    or an upper length filter), so the valid-path set is finite;
//  * the destination devices implied by each path regex must own prefixes
//    consistent with the packet space's destination IPs;
//  * every ingress must be a possible first device of some matching path;
//  * explicit fault scenes may only name existing links.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "regex/dfa.hpp"
#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::spec {

/// Devices that can END a path accepted by `dfa` (restricted to real
/// devices of `topo`; virtual symbols >= device_count are included too when
/// `alphabet_size` exceeds the device count).
[[nodiscard]] std::vector<regex::Symbol> last_symbols(
    const regex::Dfa& dfa, std::size_t alphabet_size);

/// Devices that can START a path accepted by `dfa`.
[[nodiscard]] std::vector<regex::Symbol> first_symbols(
    const regex::Dfa& dfa, std::size_t alphabet_size);

/// Memoized regex -> minimized-DFA hook (planner::DfaCache bridges through
/// this). Empty = compile fresh per call.
using DfaFn = std::function<regex::Dfa(const PathExpr&)>;

/// Collects human-readable problems; empty means the invariant is valid.
/// `dfa` (when non-empty) supplies minimized DFAs instead of fresh builds.
[[nodiscard]] std::vector<std::string> validate(const Invariant& inv,
                                                const topo::Topology& topo,
                                                packet::PacketSpace& space,
                                                const DfaFn& dfa = {});

/// The topology/automaton subset of validate(): boundedness, dead regexes,
/// ingress-can-start, fault-scene links. Touches no PacketSpace, so
/// planning workers may run it concurrently (given a thread-safe `dfa`).
[[nodiscard]] std::vector<std::string> validate_structure(
    const Invariant& inv, const topo::Topology& topo, const DfaFn& dfa = {});

/// The packet-space <-> destination-prefix coverage subset of validate():
/// the only part that mutates `space`'s BDD manager. Callers parallelizing
/// validation run this part serially.
[[nodiscard]] std::vector<std::string> validate_coverage(
    const Invariant& inv, const topo::Topology& topo,
    packet::PacketSpace& space, const DfaFn& dfa = {});

/// Throws SpecError listing all problems when validate() is non-empty.
void ensure_valid(const Invariant& inv, const topo::Topology& topo,
                  packet::PacketSpace& space, const DfaFn& dfa = {});

}  // namespace tulkun::spec
