// Invariant consistency checks (§3 "Convenience features").
//
// Tulkun validates an invariant before planning:
//  * every exist/subset atom's path expression must be bounded (loop_free
//    or an upper length filter), so the valid-path set is finite;
//  * the destination devices implied by each path regex must own prefixes
//    consistent with the packet space's destination IPs;
//  * every ingress must be a possible first device of some matching path;
//  * explicit fault scenes may only name existing links.
#pragma once

#include <string>
#include <vector>

#include "regex/dfa.hpp"
#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::spec {

/// Devices that can END a path accepted by `dfa` (restricted to real
/// devices of `topo`; virtual symbols >= device_count are included too when
/// `alphabet_size` exceeds the device count).
[[nodiscard]] std::vector<regex::Symbol> last_symbols(
    const regex::Dfa& dfa, std::size_t alphabet_size);

/// Devices that can START a path accepted by `dfa`.
[[nodiscard]] std::vector<regex::Symbol> first_symbols(
    const regex::Dfa& dfa, std::size_t alphabet_size);

/// Collects human-readable problems; empty means the invariant is valid.
[[nodiscard]] std::vector<std::string> validate(const Invariant& inv,
                                                const topo::Topology& topo,
                                                packet::PacketSpace& space);

/// Throws SpecError listing all problems when validate() is non-empty.
void ensure_valid(const Invariant& inv, const topo::Topology& topo,
                  packet::PacketSpace& space);

}  // namespace tulkun::spec
