#include "spec/ast.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tulkun::spec {

bool LengthFilter::admits(std::uint32_t len, std::uint32_t shortest) const {
  const std::int64_t bound =
      base == Base::Shortest
          ? static_cast<std::int64_t>(shortest) + offset
          : offset;
  const auto l = static_cast<std::int64_t>(len);
  switch (cmp) {
    case Cmp::Eq: return l == bound;
    case Cmp::Le: return l <= bound;
    case Cmp::Lt: return l < bound;
    case Cmp::Ge: return l >= bound;
    case Cmp::Gt: return l > bound;
  }
  return false;
}

std::optional<std::uint32_t> LengthFilter::upper_bound(
    std::uint32_t shortest) const {
  const std::int64_t bound =
      base == Base::Shortest
          ? static_cast<std::int64_t>(shortest) + offset
          : offset;
  switch (cmp) {
    case Cmp::Eq:
    case Cmp::Le:
      return bound < 0 ? 0 : static_cast<std::uint32_t>(bound);
    case Cmp::Lt:
      return bound <= 0 ? 0 : static_cast<std::uint32_t>(bound - 1);
    case Cmp::Ge:
    case Cmp::Gt:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string LengthFilter::to_string() const {
  std::string out;
  switch (cmp) {
    case Cmp::Eq: out = "=="; break;
    case Cmp::Le: out = "<="; break;
    case Cmp::Lt: out = "<"; break;
    case Cmp::Ge: out = ">="; break;
    case Cmp::Gt: out = ">"; break;
  }
  out += " ";
  if (base == Base::Shortest) {
    out += "shortest";
    if (offset > 0) out += "+" + std::to_string(offset);
    if (offset < 0) out += std::to_string(offset);
  } else {
    out += std::to_string(offset);
  }
  return out;
}

bool PathExpr::bounded() const {
  if (loop_free) return true;
  return std::any_of(filters.begin(), filters.end(), [](const LengthFilter& f) {
    // Any filter with a finite upper bound (for some shortest value) works;
    // Ge/Gt never bound from above.
    return f.cmp == LengthFilter::Cmp::Eq || f.cmp == LengthFilter::Cmp::Le ||
           f.cmp == LengthFilter::Cmp::Lt;
  });
}

bool CountExpr::satisfied(std::uint32_t count) const {
  switch (cmp) {
    case Cmp::Eq: return count == n;
    case Cmp::Ge: return count >= n;
    case Cmp::Gt: return count > n;
    case Cmp::Le: return count <= n;
    case Cmp::Lt: return count < n;
  }
  return false;
}

std::string CountExpr::to_string() const {
  std::string out = "exist ";
  switch (cmp) {
    case Cmp::Eq: out += "=="; break;
    case Cmp::Ge: out += ">="; break;
    case Cmp::Gt: out += ">"; break;
    case Cmp::Le: out += "<="; break;
    case Cmp::Lt: out += "<"; break;
  }
  return out + " " + std::to_string(n);
}

Behavior Behavior::exist(CountExpr c, PathExpr p) {
  Behavior b;
  b.kind = BehaviorKind::Atom;
  b.op = MatchOpKind::Exist;
  b.count = c;
  b.path = std::move(p);
  return b;
}

Behavior Behavior::equal(PathExpr p) {
  Behavior b;
  b.kind = BehaviorKind::Atom;
  b.op = MatchOpKind::Equal;
  b.path = std::move(p);
  return b;
}

Behavior Behavior::subset(PathExpr p) {
  Behavior b;
  b.kind = BehaviorKind::Atom;
  b.op = MatchOpKind::Subset;
  b.path = std::move(p);
  return b;
}

Behavior Behavior::negate(Behavior inner) {
  Behavior b;
  b.kind = BehaviorKind::Not;
  b.children.push_back(std::move(inner));
  return b;
}

Behavior Behavior::conj(std::vector<Behavior> bs) {
  TULKUN_ASSERT(!bs.empty());
  if (bs.size() == 1) return std::move(bs.front());
  Behavior b;
  b.kind = BehaviorKind::And;
  b.children = std::move(bs);
  return b;
}

Behavior Behavior::disj(std::vector<Behavior> bs) {
  TULKUN_ASSERT(!bs.empty());
  if (bs.size() == 1) return std::move(bs.front());
  Behavior b;
  b.kind = BehaviorKind::Or;
  b.children = std::move(bs);
  return b;
}

namespace {
void collect_atoms(const Behavior& b, std::vector<const Behavior*>& out) {
  if (b.kind == BehaviorKind::Atom) {
    out.push_back(&b);
    return;
  }
  for (const auto& c : b.children) collect_atoms(c, out);
}
}  // namespace

std::vector<const Behavior*> Behavior::atoms() const {
  std::vector<const Behavior*> out;
  collect_atoms(*this, out);
  return out;
}

FaultScene FaultScene::of(std::vector<LinkId> links) {
  for (auto& l : links) {
    if (l.from > l.to) l = l.reversed();
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return FaultScene{std::move(links)};
}

bool FaultScene::contains(LinkId l) const {
  if (l.from > l.to) l = l.reversed();
  return std::binary_search(failed.begin(), failed.end(), l);
}

bool FaultScene::superset_of(const FaultScene& other) const {
  return std::includes(failed.begin(), failed.end(), other.failed.begin(),
                       other.failed.end());
}

}  // namespace tulkun::spec
