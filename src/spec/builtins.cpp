#include "spec/builtins.hpp"

namespace tulkun::spec {

namespace {

regex::Ast sym(DeviceId d) {
  return regex::Ast::symbols_node(regex::SymbolSet::single(d));
}

regex::Ast any_star() {
  return regex::Ast::star(regex::Ast::symbols_node(regex::SymbolSet::any()));
}

Invariant make(std::string name, packet::PacketSet p,
               std::vector<DeviceId> ingresses, Behavior b) {
  Invariant inv;
  inv.name = std::move(name);
  inv.packet_space = std::move(p);
  inv.ingress_set = std::move(ingresses);
  inv.behavior = std::move(b);
  return inv;
}

}  // namespace

PathExpr Builtins::simple_paths(DeviceId from, DeviceId to,
                                std::vector<LengthFilter> filters) const {
  PathExpr pe;
  pe.regex_text =
      topo->name(from) + " .* " + topo->name(to);
  pe.ast = regex::Ast::concat({sym(from), any_star(), sym(to)});
  pe.filters = std::move(filters);
  pe.loop_free = true;
  return pe;
}

PathExpr Builtins::waypoint_paths(DeviceId from, DeviceId via,
                                  DeviceId to) const {
  PathExpr pe;
  pe.regex_text = topo->name(from) + " .* " + topo->name(via) + " .* " +
                  topo->name(to);
  pe.ast = regex::Ast::concat(
      {sym(from), any_star(), sym(via), any_star(), sym(to)});
  pe.loop_free = true;
  return pe;
}

Invariant Builtins::reachability(packet::PacketSet p, DeviceId s,
                                 DeviceId d) const {
  return make("reachability", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                              simple_paths(s, d)));
}

Invariant Builtins::isolation(packet::PacketSet p, DeviceId s,
                              DeviceId d) const {
  return make("isolation", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Eq, 0},
                              simple_paths(s, d)));
}

Invariant Builtins::waypoint(packet::PacketSet p, DeviceId s, DeviceId w,
                             DeviceId d) const {
  return make("waypoint", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                              waypoint_paths(s, w, d)));
}

Invariant Builtins::bounded_reachability(packet::PacketSet p, DeviceId s,
                                         DeviceId d,
                                         std::uint32_t max_hops) const {
  LengthFilter f;
  f.cmp = LengthFilter::Cmp::Le;
  f.base = LengthFilter::Base::Const;
  f.offset = static_cast<std::int32_t>(max_hops);
  return make("bounded_reachability", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                              simple_paths(s, d, {f})));
}

Invariant Builtins::shortest_plus_reachability(packet::PacketSet p,
                                               DeviceId s, DeviceId d,
                                               std::uint32_t slack) const {
  LengthFilter f;
  f.cmp = LengthFilter::Cmp::Le;
  f.base = LengthFilter::Base::Shortest;
  f.offset = static_cast<std::int32_t>(slack);
  return make("shortest_plus_reachability", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                              simple_paths(s, d, {f})));
}

Invariant Builtins::multi_ingress_reachability(packet::PacketSet p,
                                               std::vector<DeviceId> ingresses,
                                               DeviceId d) const {
  TULKUN_ASSERT(!ingresses.empty());
  // One regex per ingress, unioned: (X .* D | Y .* D | ...).
  std::vector<regex::Ast> alts;
  std::string text;
  for (const DeviceId ing : ingresses) {
    alts.push_back(
        regex::Ast::concat({sym(ing), any_star(), sym(d)}));
    if (!text.empty()) text += " | ";
    text += topo->name(ing) + " .* " + topo->name(d);
  }
  PathExpr pe;
  pe.regex_text = std::move(text);
  pe.ast = regex::Ast::alternation(std::move(alts));
  pe.loop_free = true;
  return make("multi_ingress_reachability", std::move(p), ingresses,
              Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                              std::move(pe)));
}

Invariant Builtins::all_shortest_path(packet::PacketSet p, DeviceId s,
                                      DeviceId d) const {
  LengthFilter f;
  f.cmp = LengthFilter::Cmp::Eq;
  f.base = LengthFilter::Base::Shortest;
  f.offset = 0;
  return make("all_shortest_path", std::move(p), {s},
              Behavior::equal(simple_paths(s, d, {f})));
}

Invariant Builtins::non_redundant_reachability(packet::PacketSet p, DeviceId s,
                                               DeviceId d) const {
  return make("non_redundant_reachability", std::move(p), {s},
              Behavior::exist(CountExpr{CountExpr::Cmp::Eq, 1},
                              simple_paths(s, d)));
}

Invariant Builtins::multicast(packet::PacketSet p, DeviceId s,
                              std::vector<DeviceId> dests) const {
  TULKUN_ASSERT(!dests.empty());
  std::vector<Behavior> parts;
  for (const DeviceId d : dests) {
    parts.push_back(Behavior::exist(CountExpr{CountExpr::Cmp::Ge, 1},
                                    simple_paths(s, d)));
  }
  return make("multicast", std::move(p), {s},
              Behavior::conj(std::move(parts)));
}

Invariant Builtins::anycast(packet::PacketSet p, DeviceId s,
                            std::vector<DeviceId> dests) const {
  TULKUN_ASSERT(dests.size() >= 2);
  // Exactly one destination receives the packet: for each i, the disjunct
  // (exist >= 1 to dest_i) and (exist == 0 to all others).
  std::vector<Behavior> disjuncts;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    std::vector<Behavior> conjuncts;
    for (std::size_t j = 0; j < dests.size(); ++j) {
      const CountExpr c = i == j ? CountExpr{CountExpr::Cmp::Ge, 1}
                                 : CountExpr{CountExpr::Cmp::Eq, 0};
      conjuncts.push_back(Behavior::exist(c, simple_paths(s, dests[j])));
    }
    disjuncts.push_back(Behavior::conj(std::move(conjuncts)));
  }
  return make("anycast", std::move(p), {s},
              Behavior::disj(std::move(disjuncts)));
}

packet::PacketSet Builtins::attached_packets(DeviceId d) const {
  packet::PacketSet out = space->none();
  for (const auto& prefix : topo->prefixes(d)) {
    out |= space->dst_prefix(prefix);
  }
  return out;
}

}  // namespace tulkun::spec
