// Text parser for the invariant specification language.
//
// Concrete syntax (one or more invariants):
//
//   invariant waypoint_reach:
//     packets: dstIP=10.0.0.0/23 & dstPort=80
//     ingress: S, B            # or * for all devices
//     behavior: exist >= 1 : { S .* W .* D ; loop_free ; length <= shortest+1 }
//     faults: (A,B) ; (B,W),(B,D)
//     faults: any 2
//
// Behaviors compose: `not (...)`, `(...) and (...)`, `(...) or (...)`.
// Each atom is `exist <cmp> <n>`, `equal`, or `subset`, followed by
// `: { regex [; loop_free] [; length <cmp> <bound>] }` where <bound> is an
// integer or `shortest[+k]`.
//
// Packet-space atoms: dstIP=<cidr>, srcIP=<cidr>, dstPort=<n|lo-hi>,
// srcPort=<n|lo-hi>, proto=<n>, `*`; combined with `&`, `|`, `!`, parens;
// `field!=n` is sugar for `!(field=n)`.
#pragma once

#include <string_view>
#include <vector>

#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::spec {

/// Parses invariant text against a topology (device names) and packet
/// space (predicates). Throws SpecError on malformed input.
class SpecParser {
 public:
  SpecParser(const topo::Topology& topo, packet::PacketSpace& space)
      : topo_(&topo), space_(&space) {}

  /// Parses a whole document of `invariant NAME:` blocks.
  [[nodiscard]] std::vector<Invariant> parse(std::string_view text) const;

  /// Parses just a packet-space expression.
  [[nodiscard]] packet::PacketSet parse_packets(std::string_view text) const;

  /// Parses just a behavior expression.
  [[nodiscard]] Behavior parse_behavior(std::string_view text) const;

  /// Parses just a path expression body (the inside of `{ ... }`).
  [[nodiscard]] PathExpr parse_path(std::string_view text) const;

  /// Parses an ingress list ("S, B" or "*").
  [[nodiscard]] std::vector<DeviceId> parse_ingress(
      std::string_view text) const;

  /// Parses a `faults:` value into an existing FaultSpec.
  void parse_faults(std::string_view text, FaultSpec& out) const;

 private:
  const topo::Topology* topo_;
  packet::PacketSpace* space_;
};

}  // namespace tulkun::spec
