#include "spec/multipath.hpp"

#include <algorithm>
#include <set>

namespace tulkun::spec {

namespace {

std::string path_to_string(const CollectedPath& p) {
  std::string out = "[";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(p[i]);
  }
  return out + "]";
}

}  // namespace

std::string compare_path_sets(PathCompareKind kind, const PathSet& a,
                              const PathSet& b) {
  switch (kind) {
    case PathCompareKind::RouteSymmetry: {
      PathSet reversed = b;
      for (auto& p : reversed) std::reverse(p.begin(), p.end());
      std::sort(reversed.begin(), reversed.end());
      if (a != reversed) {
        return "route asymmetry: forward paths differ from reversed "
               "return paths";
      }
      return {};
    }
    case PathCompareKind::SamePaths:
      if (a != b) return "path sets differ";
      return {};
    case PathCompareKind::NodeDisjoint: {
      std::set<DeviceId> interior_a;
      for (const auto& p : a) {
        for (std::size_t i = 1; i + 1 < p.size(); ++i) {
          interior_a.insert(p[i]);
        }
      }
      for (const auto& p : b) {
        for (std::size_t i = 1; i + 1 < p.size(); ++i) {
          if (interior_a.contains(p[i])) {
            return "paths share intermediate device " +
                   std::to_string(p[i]) + " on " + path_to_string(p);
          }
        }
      }
      return {};
    }
    case PathCompareKind::LinkDisjoint: {
      std::set<std::pair<DeviceId, DeviceId>> links_a;
      for (const auto& p : a) {
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          links_a.emplace(std::min(p[i], p[i + 1]),
                          std::max(p[i], p[i + 1]));
        }
      }
      for (const auto& p : b) {
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          const auto key = std::make_pair(std::min(p[i], p[i + 1]),
                                          std::max(p[i], p[i + 1]));
          if (links_a.contains(key)) {
            return "paths share link " + std::to_string(key.first) + "-" +
                   std::to_string(key.second);
          }
        }
      }
      return {};
    }
  }
  return "unknown comparison";
}

PathExpr MultiPathBuiltins::simple(DeviceId from, DeviceId to) const {
  PathExpr pe;
  pe.regex_text = topo->name(from) + " .* " + topo->name(to);
  pe.ast = regex::Ast::concat(
      {regex::Ast::symbols_node(regex::SymbolSet::single(from)),
       regex::Ast::star(regex::Ast::symbols_node(regex::SymbolSet::any())),
       regex::Ast::symbols_node(regex::SymbolSet::single(to))});
  pe.loop_free = true;
  return pe;
}

MultiPathInvariant MultiPathBuiltins::route_symmetry(
    packet::PacketSet fwd_space, packet::PacketSet rev_space, DeviceId s,
    DeviceId d) const {
  MultiPathInvariant inv;
  inv.name = "route_symmetry_" + topo->name(s) + "_" + topo->name(d);
  inv.a = PathQuery{std::move(fwd_space), s, simple(s, d)};
  inv.b = PathQuery{std::move(rev_space), d, simple(d, s)};
  inv.compare = PathCompareKind::RouteSymmetry;
  inv.comparator = s;
  return inv;
}

MultiPathInvariant MultiPathBuiltins::node_disjoint(
    packet::PacketSet space_a, DeviceId da, packet::PacketSet space_b,
    DeviceId db, DeviceId s) const {
  MultiPathInvariant inv;
  inv.name = "node_disjoint_" + topo->name(da) + "_" + topo->name(db);
  inv.a = PathQuery{std::move(space_a), s, simple(s, da)};
  inv.b = PathQuery{std::move(space_b), s, simple(s, db)};
  inv.compare = PathCompareKind::NodeDisjoint;
  inv.comparator = s;
  return inv;
}

}  // namespace tulkun::spec
