#include "spec/parser.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace tulkun::spec {

namespace {

/// Minimal cursor over a string_view with whitespace skipping.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    const char got = take();
    if (got != c) {
      fail(std::string("expected '") + c + "', got '" + got + "'");
    }
  }

  bool try_take(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes `word` if it appears next as a whole word.
  bool try_word(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) != word) return false;
    const std::size_t after = pos_ + word.size();
    if (after < text_.size() && is_word_char(text_[after])) return false;
    pos_ = after;
    return true;
  }

  [[nodiscard]] static bool is_word_char(char c) {
    // '.' and '/' are word characters so CIDR notation ("10.0.0.0/23")
    // parses as one word; ':' is a delimiter and must not be.
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '/';
  }

  std::string_view word() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_word_char(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  std::uint32_t number() {
    skip_ws();
    std::uint32_t value = 0;
    const auto* begin = text_.data() + pos_;
    const auto* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) fail("expected number");
    pos_ += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  /// Everything up to (not including) the next occurrence of `c` at depth 0
  /// of nested braces/parens; consumes the terminator.
  std::string_view until(char c) {
    skip_ws();
    const std::size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (depth == 0 && ch == c) {
        const auto out = text_.substr(start, pos_ - start);
        ++pos_;
        return out;
      }
      if (ch == '(' || ch == '{') ++depth;
      if (ch == ')' || ch == '}') --depth;
      ++pos_;
    }
    fail(std::string("expected '") + c + "'");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw SpecError(why + " at offset " + std::to_string(pos_) + " in '" +
                    std::string(text_) + "'");
  }

  [[nodiscard]] std::string_view rest() {
    skip_ws();
    return text_.substr(pos_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

CountExpr::Cmp parse_cmp(Cursor& c) {
  if (c.try_take('=')) {
    c.expect('=');
    return CountExpr::Cmp::Eq;
  }
  if (c.try_take('>')) {
    return c.try_take('=') ? CountExpr::Cmp::Ge : CountExpr::Cmp::Gt;
  }
  if (c.try_take('<')) {
    return c.try_take('=') ? CountExpr::Cmp::Le : CountExpr::Cmp::Lt;
  }
  c.fail("expected comparison operator");
}

LengthFilter::Cmp to_length_cmp(CountExpr::Cmp cmp) {
  switch (cmp) {
    case CountExpr::Cmp::Eq: return LengthFilter::Cmp::Eq;
    case CountExpr::Cmp::Ge: return LengthFilter::Cmp::Ge;
    case CountExpr::Cmp::Gt: return LengthFilter::Cmp::Gt;
    case CountExpr::Cmp::Le: return LengthFilter::Cmp::Le;
    case CountExpr::Cmp::Lt: return LengthFilter::Cmp::Lt;
  }
  return LengthFilter::Cmp::Le;
}

/// Packet-space expression parser: | over & over unary over atoms.
class PacketExprParser {
 public:
  PacketExprParser(packet::PacketSpace& space, std::string_view text)
      : space_(&space), c_(text) {}

  packet::PacketSet run() {
    auto p = or_expr();
    if (!c_.done()) c_.fail("unexpected trailing input in packet space");
    return p;
  }

 private:
  packet::PacketSet or_expr() {
    auto p = and_expr();
    while (c_.try_take('|')) p |= and_expr();
    return p;
  }

  packet::PacketSet and_expr() {
    auto p = unary();
    while (c_.try_take('&')) p &= unary();
    return p;
  }

  packet::PacketSet unary() {
    if (c_.try_take('!')) return ~unary();
    if (c_.try_take('(')) {
      auto p = or_expr();
      c_.expect(')');
      return p;
    }
    if (c_.try_take('*')) return space_->all();
    return atom();
  }

  packet::PacketSet atom() {
    const auto field_and_value = c_.word();
    // word() consumes '=' values too? No: '=' is not a word char.
    const std::string field(field_and_value);
    bool negate = false;
    if (c_.try_take('!')) negate = true;
    c_.expect('=');
    auto p = field_value(field);
    return negate ? ~p : p;
  }

  packet::PacketSet field_value(const std::string& field) {
    if (field == "dstIP" || field == "srcIP") {
      const auto prefix = packet::Ipv4Prefix::parse(c_.word());
      return field == "dstIP" ? space_->dst_prefix(prefix)
                              : space_->src_prefix(prefix);
    }
    if (field == "dstPort" || field == "srcPort" || field == "proto") {
      const std::uint32_t lo = c_.number();
      std::uint32_t hi = lo;
      if (c_.try_take('-')) hi = c_.number();
      if (field == "dstPort") {
        return space_->field_range(packet::Field::DstPort, lo, hi);
      }
      if (field == "srcPort") {
        return space_->field_range(packet::Field::SrcPort, lo, hi);
      }
      return space_->field_range(packet::Field::Proto, lo, hi);
    }
    c_.fail("unknown packet field: " + field);
  }

  packet::PacketSpace* space_;
  Cursor c_;
};

}  // namespace

packet::PacketSet SpecParser::parse_packets(std::string_view text) const {
  return PacketExprParser(*space_, text).run();
}

PathExpr SpecParser::parse_path(std::string_view text) const {
  // Split on ';' at top level: regex ; option ; option ...
  PathExpr out;
  Cursor c(text);
  std::vector<std::string_view> parts;
  std::string_view remaining = c.rest();
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= remaining.size(); ++i) {
    if (i == remaining.size() || (remaining[i] == ';' && depth == 0)) {
      parts.push_back(remaining.substr(start, i - start));
      start = i + 1;
      continue;
    }
    if (remaining[i] == '(' || remaining[i] == '{') ++depth;
    if (remaining[i] == ')' || remaining[i] == '}') --depth;
  }
  if (parts.empty()) throw SpecError("empty path expression");

  out.regex_text = std::string(parts[0]);
  const auto resolver = [this](std::string_view name) -> regex::Symbol {
    return topo_->device(std::string(name));
  };
  out.ast = regex::parse(parts[0], resolver);

  for (std::size_t i = 1; i < parts.size(); ++i) {
    Cursor oc(parts[i]);
    if (oc.done()) continue;
    if (oc.try_word("loop_free")) {
      out.loop_free = true;
    } else if (oc.try_word("length")) {
      LengthFilter f;
      f.cmp = to_length_cmp(parse_cmp(oc));
      if (oc.try_word("shortest")) {
        f.base = LengthFilter::Base::Shortest;
        if (oc.try_take('+')) {
          f.offset = static_cast<std::int32_t>(oc.number());
        } else if (oc.try_take('-')) {
          f.offset = -static_cast<std::int32_t>(oc.number());
        }
      } else {
        f.base = LengthFilter::Base::Const;
        f.offset = static_cast<std::int32_t>(oc.number());
      }
      out.filters.push_back(f);
    } else {
      throw SpecError("unknown path option: '" + std::string(parts[i]) + "'");
    }
    if (!oc.done()) {
      throw SpecError("trailing input in path option: '" +
                      std::string(parts[i]) + "'");
    }
  }
  return out;
}

namespace {

/// Behavior parser: or over and over unary over atoms.
class BehaviorParser {
 public:
  BehaviorParser(const SpecParser& spec, std::string_view text)
      : spec_(&spec), c_(text) {}

  Behavior run() {
    Behavior b = or_expr();
    if (!c_.done()) c_.fail("unexpected trailing input in behavior");
    return b;
  }

 private:
  Behavior or_expr() {
    std::vector<Behavior> parts;
    parts.push_back(and_expr());
    while (c_.try_word("or")) parts.push_back(and_expr());
    return Behavior::disj(std::move(parts));
  }

  Behavior and_expr() {
    std::vector<Behavior> parts;
    parts.push_back(unary());
    while (c_.try_word("and")) parts.push_back(unary());
    return Behavior::conj(std::move(parts));
  }

  Behavior unary() {
    if (c_.try_word("not")) return Behavior::negate(unary());
    if (c_.try_take('(')) {
      // Distinguish a grouped behavior from a parenthesized regex: groups
      // start with an operator keyword, 'not', or another '('.
      Behavior b = or_expr();
      c_.expect(')');
      return b;
    }
    return atom();
  }

  Behavior atom() {
    if (c_.try_word("exist")) {
      CountExpr count;
      count.cmp = parse_cmp(c_);
      count.n = c_.number();
      c_.expect(':');
      return Behavior::exist(count, braced_path());
    }
    if (c_.try_word("equal")) {
      c_.expect(':');
      return Behavior::equal(braced_path());
    }
    if (c_.try_word("subset")) {
      c_.expect(':');
      return Behavior::subset(braced_path());
    }
    c_.fail("expected 'exist', 'equal', 'subset', 'not', or '('");
  }

  PathExpr braced_path() {
    c_.expect('{');
    const auto body = c_.until('}');
    return spec_->parse_path(body);
  }

  const SpecParser* spec_;
  Cursor c_;
};

}  // namespace

Behavior SpecParser::parse_behavior(std::string_view text) const {
  return BehaviorParser(*this, text).run();
}

std::vector<DeviceId> SpecParser::parse_ingress(std::string_view text) const {
  Cursor c(text);
  std::vector<DeviceId> out;
  if (c.try_take('*')) {
    if (!c.done()) c.fail("unexpected input after '*'");
    return topo_->all_devices();
  }
  while (!c.done()) {
    out.push_back(topo_->device(std::string(c.word())));
    if (!c.done()) c.expect(',');
  }
  if (out.empty()) throw SpecError("empty ingress set");
  return out;
}

void SpecParser::parse_faults(std::string_view text, FaultSpec& out) const {
  Cursor c(text);
  if (c.try_word("any")) {
    out.any_k = c.number();
    if (!c.done()) c.fail("unexpected input after 'any k'");
    return;
  }
  // Scenes separated by ';', each a ','-separated list of "(A,B)" links.
  while (!c.done()) {
    std::vector<LinkId> links;
    while (true) {
      c.expect('(');
      const DeviceId a = topo_->device(std::string(c.word()));
      c.expect(',');
      const DeviceId b = topo_->device(std::string(c.word()));
      c.expect(')');
      links.push_back(LinkId{a, b});
      if (!c.try_take(',')) break;
    }
    out.scenes.push_back(FaultScene::of(std::move(links)));
    if (!c.done()) c.expect(';');
  }
}

std::vector<Invariant> SpecParser::parse(std::string_view text) const {
  std::vector<Invariant> out;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;

  Invariant cur;
  bool in_invariant = false;
  bool have_packets = false;
  bool have_ingress = false;
  bool have_behavior = false;

  const auto finish = [&]() {
    if (!in_invariant) return;
    if (!have_packets || !have_ingress || !have_behavior) {
      throw SpecError("invariant '" + cur.name +
                      "' needs packets, ingress, and behavior");
    }
    out.push_back(std::move(cur));
    cur = Invariant{};
    in_invariant = false;
    have_packets = have_ingress = have_behavior = false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    Cursor c(line);
    if (c.done()) continue;

    const auto fail = [&](const std::string& why) -> void {
      throw SpecError("line " + std::to_string(line_no) + ": " + why);
    };

    if (c.try_word("invariant")) {
      finish();
      in_invariant = true;
      cur.name = std::string(c.word());
      c.expect(':');
      if (!c.done()) fail("unexpected input after invariant header");
      continue;
    }
    if (!in_invariant) fail("expected 'invariant <name>:'");

    if (c.try_word("packets")) {
      c.expect(':');
      cur.packet_space_text = std::string(c.rest());
      cur.packet_space = parse_packets(cur.packet_space_text);
      have_packets = true;
    } else if (c.try_word("ingress")) {
      c.expect(':');
      cur.ingress_set = parse_ingress(c.rest());
      have_ingress = true;
    } else if (c.try_word("behavior")) {
      c.expect(':');
      cur.behavior = parse_behavior(c.rest());
      have_behavior = true;
    } else if (c.try_word("faults")) {
      c.expect(':');
      parse_faults(c.rest(), cur.faults);
    } else {
      fail("unknown key");
    }
  }
  finish();
  if (out.empty()) throw SpecError("no invariants in input");
  return out;
}

}  // namespace tulkun::spec
