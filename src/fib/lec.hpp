// Local equivalence classes (LECs, §5.1): the minimal partition of the
// packet space such that all packets in one class share the same action at
// this device. LEC tables are what on-device verifiers consume, and LEC
// *deltas* are what incremental verification propagates.
#pragma once

#include <vector>

#include "fib/fib_table.hpp"
#include "fib/prefix_index.hpp"
#include "packet/packet_set.hpp"

namespace tulkun::fib {

/// One LEC: a packet predicate and the action every packet in it receives.
struct Lec {
  packet::PacketSet pred;
  Action action;
};

/// A device's LEC table: disjoint predicates whose union is the full packet
/// space (unmatched packets appear with the Drop action).
class LecTable {
 public:
  LecTable() = default;
  explicit LecTable(std::vector<Lec> entries) : entries_(std::move(entries)) {
    build_index();
  }

  [[nodiscard]] const std::vector<Lec>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// The action applied to every packet in `p`; requires p to be contained
  /// in one LEC (true for predicates produced by partition()).
  [[nodiscard]] const Action& action_of(const packet::PacketSet& p) const;

  /// Splits `region` by action: returns disjoint (pred, action) pairs
  /// covering region. Entry order in the result is unspecified (entries
  /// are disjoint, so the pieces themselves don't depend on it).
  [[nodiscard]] std::vector<Lec> partition(
      const packet::PacketSet& region) const;

  /// Visits entries whose dst-prefix hull overlaps `p`'s — a superset of
  /// the entries actually intersecting `p`. Entries hulled at /0 (e.g. the
  /// grouped Drop class) are always visited. fn: (const Lec&) -> bool,
  /// false = stop.
  template <typename Fn>
  void for_overlapping(const packet::PacketSet& p, Fn&& fn) const {
    if (entries_.empty() || p.empty()) return;
    const packet::Ipv4Prefix hull = packet::dst_prefix_hull(p);
    if (!prefix_index_enabled() || hull.len == 0) {
      index_counters_add(IndexKind::Lec, 1, entries_.size(), 0, 1);
      for (const auto& lec : entries_) {
        if (!fn(lec)) return;
      }
      return;
    }
    scratch_.clear();
    by_hull_.collect(hull, scratch_);
    index_counters_add(IndexKind::Lec, 1, scratch_.size(),
                       entries_.size() - scratch_.size(), 0);
    for (const std::uint32_t id : scratch_) {
      if (!fn(entries_[id])) return;
    }
  }

  /// Appends every BDD ref this table pins (gc root enumeration).
  void collect_refs(std::vector<bdd::NodeRef>& out) const {
    for (const auto& lec : entries_) {
      out.push_back(lec.pred.ref_if_materialized());
    }
  }

 private:
  void build_index();

  std::vector<Lec> entries_;
  PrefixTrie by_hull_;  // entry index -> dst-prefix hull of its predicate
  mutable std::vector<std::uint32_t> scratch_;
};

/// A change in the effective action of some packets.
struct LecDelta {
  packet::PacketSet pred;
  Action old_action;
  Action new_action;
};

/// Builds LEC tables and incremental deltas from a FibTable.
class LecBuilder {
 public:
  explicit LecBuilder(packet::PacketSpace& space) : space_(&space) {}

  /// Full LEC computation: walk rules in priority order, peeling each
  /// rule's unmatched remainder; group resulting predicates by action.
  [[nodiscard]] LecTable build(const FibTable& fib) const;

  /// Effective-action partition of `region` only (bounded by the rules
  /// overlapping `region`'s destination prefix). Used for incremental
  /// updates: the caller passes the changed rule's match region.
  [[nodiscard]] std::vector<Lec> effective_in_region(
      const FibTable& fib, const packet::Ipv4Prefix& region_prefix,
      const packet::PacketSet& region) const;

  /// Incrementally patches a LEC table: predicates inside `region` take the
  /// actions of `after_region` (a partition of region); everything else is
  /// kept. O(|table| + |after|) BDD operations — the incremental
  /// maintenance step that keeps per-update work device-local.
  [[nodiscard]] LecTable apply_patch(const LecTable& before,
                                     const packet::PacketSet& region,
                                     const std::vector<Lec>& after_region)
      const;

  /// Deltas between two LEC tables (entries whose action changed).
  [[nodiscard]] std::vector<LecDelta> diff(const LecTable& before,
                                           const LecTable& after) const;

  /// Deltas caused by one rule insertion/removal, computed against the
  /// device's *current* FIB state (post-change) and the pre-change
  /// effective actions within the affected region.
  [[nodiscard]] std::vector<LecDelta> region_deltas(
      const std::vector<Lec>& before_region,
      const std::vector<Lec>& after_region) const;

 private:
  packet::PacketSpace* space_;
};

}  // namespace tulkun::fib
