#include "fib/lec.hpp"

#include <unordered_map>

#include "core/error.hpp"

namespace tulkun::fib {

void LecTable::build_index() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].pred.empty()) continue;
    by_hull_.insert(static_cast<std::uint32_t>(i),
                    packet::dst_prefix_hull(entries_[i].pred));
  }
}

const Action& LecTable::action_of(const packet::PacketSet& p) const {
  TULKUN_ASSERT(!p.empty());
  const Action* found = nullptr;
  for_overlapping(p, [&](const Lec& lec) {
    if (p.subset_of(lec.pred)) {
      found = &lec.action;
      return false;
    }
    return true;
  });
  if (found != nullptr) return *found;
  // Unmatched space is implicit Drop when not materialized.
  static const Action kDrop = Action::drop();
  return kDrop;
}

std::vector<Lec> LecTable::partition(const packet::PacketSet& region) const {
  std::vector<Lec> out;
  packet::PacketSet remaining = region;
  for_overlapping(region, [&](const Lec& lec) {
    const packet::PacketSet inter = remaining & lec.pred;
    if (!inter.empty()) {
      out.push_back(Lec{inter, lec.action});
      remaining -= inter;
    }
    return !remaining.empty();
  });
  if (!remaining.empty()) {
    out.push_back(Lec{remaining, Action::drop()});
  }
  return out;
}

namespace {

/// Walks `rules` in match order, splitting `scope` by effective action.
/// Groups by action so the result is the minimal partition.
std::vector<Lec> effective_partition(packet::PacketSpace& space,
                                     const std::vector<const Rule*>& rules,
                                     const packet::PacketSet& scope) {
  std::unordered_map<Action, packet::PacketSet, ActionHash> by_action;
  packet::PacketSet remaining = scope;
  for (const Rule* r : rules) {
    if (remaining.empty()) break;
    const packet::PacketSet m = r->match(space) & remaining;
    if (m.empty()) continue;
    remaining -= m;
    const auto it = by_action.find(r->action);
    if (it == by_action.end()) {
      by_action.emplace(r->action, m);
    } else {
      it->second |= m;
    }
  }
  if (!remaining.empty()) {
    const Action drop = Action::drop();
    const auto it = by_action.find(drop);
    if (it == by_action.end()) {
      by_action.emplace(drop, remaining);
    } else {
      it->second |= remaining;
    }
  }
  std::vector<Lec> out;
  out.reserve(by_action.size());
  for (auto& [action, pred] : by_action) {
    out.push_back(Lec{pred, action});
  }
  return out;
}

}  // namespace

LecTable LecBuilder::build(const FibTable& fib) const {
  auto space_all = space_->all();
  return LecTable(effective_partition(*space_, fib.ordered(), space_all));
}

std::vector<Lec> LecBuilder::effective_in_region(
    const FibTable& fib, const packet::Ipv4Prefix& region_prefix,
    const packet::PacketSet& region) const {
  return effective_partition(*space_, fib.overlapping(region_prefix), region);
}

LecTable LecBuilder::apply_patch(const LecTable& before,
                                 const packet::PacketSet& region,
                                 const std::vector<Lec>& after_region) const {
  std::vector<Lec> merged;
  merged.reserve(before.size() + after_region.size());
  for (const auto& e : before.entries()) {
    const packet::PacketSet kept = e.pred - region;
    if (!kept.empty()) merged.push_back(Lec{kept, e.action});
  }
  for (const auto& a : after_region) {
    if (a.pred.empty()) continue;
    bool absorbed = false;
    for (auto& m : merged) {
      if (m.action == a.action) {
        m.pred |= a.pred;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push_back(a);
  }
  return LecTable(std::move(merged));
}

std::vector<LecDelta> LecBuilder::diff(const LecTable& before,
                                       const LecTable& after) const {
  std::vector<LecDelta> out;
  for (const auto& b : before.entries()) {
    // Pairs whose hulls are disjoint intersect emptily; prune them via
    // after's index instead of forming the product.
    after.for_overlapping(b.pred, [&](const Lec& a) {
      if (b.action != a.action) {
        const packet::PacketSet inter = b.pred & a.pred;
        if (!inter.empty()) {
          out.push_back(LecDelta{inter, b.action, a.action});
        }
      }
      return true;
    });
  }
  return out;
}

std::vector<LecDelta> LecBuilder::region_deltas(
    const std::vector<Lec>& before_region,
    const std::vector<Lec>& after_region) const {
  std::vector<LecDelta> out;
  for (const auto& b : before_region) {
    for (const auto& a : after_region) {
      if (b.action == a.action) continue;
      const packet::PacketSet inter = b.pred & a.pred;
      if (!inter.empty()) {
        out.push_back(LecDelta{inter, b.action, a.action});
      }
    }
  }
  return out;
}

}  // namespace tulkun::fib
