// Destination-keyed region index (the device hot path, §4.2/§5.2).
//
// Every per-device table Tulkun maintains — FIB rules, LECs, CIBIn entries,
// LocCIB rows, last-sent CIBOut — keys its entries by BDD predicates that
// are, in real data planes, overwhelmingly destination-prefix shaped. The
// structures here exploit that: a binary trie over dst-IP prefixes maps a
// query region's prefix hull (packet::dst_prefix_hull) to the small set of
// entries whose hulls are ancestors or descendants of it. Two prefixes
// overlap iff one covers the other, and a predicate's hull contains the
// predicate, so any entry outside that candidate set is provably disjoint
// from the query — no BDD operation needed. Queries whose hull is /0
// (non-prefix-shaped regions: port-only filters, unions across prefixes,
// rewrite images) degrade to a full scan, which is the pre-index behavior.
//
// PrefixTrie is the raw structure (ids at exact prefixes); RegionIndexed<E>
// is the table wrapper the DVM tables use (stable slots, hull maintenance
// across predicate mutation). Per-table effectiveness counters aggregate
// into process-global atomics surfaced through runtime::metrics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "packet/packet_set.hpp"

namespace tulkun::fib {

/// Which device table an index instance serves (counter attribution).
enum class IndexKind : std::uint8_t {
  Fib = 0,      // FibTable::overlapping (rule dst prefixes)
  Lec = 1,      // LecTable::partition / action_of
  CibIn = 2,    // dvm::CibIn lookup / apply
  Loc = 3,      // DeviceEngine LocCIB rows
  OutSent = 4,  // DeviceEngine last-transmitted CIBOut
};
inline constexpr std::size_t kNumIndexKinds = 5;

[[nodiscard]] const char* index_kind_name(IndexKind kind);

/// One table kind's counters (a snapshot; the live counters are atomic).
struct IndexCounters {
  std::uint64_t queries = 0;     // indexed lookups answered
  std::uint64_t candidates = 0;  // entries offered to the caller
  std::uint64_t skipped = 0;     // entries pruned without touching them
  std::uint64_t full_scans = 0;  // queries degraded to a full scan

  /// Fraction of entries the index let the caller skip.
  [[nodiscard]] double skip_rate() const {
    const std::uint64_t total = candidates + skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(skipped) /
                            static_cast<double>(total);
  }

  void merge(const IndexCounters& other) {
    queries += other.queries;
    candidates += other.candidates;
    skipped += other.skipped;
    full_scans += other.full_scans;
  }
};

/// Process-global accounting: tables live deep inside per-device engines,
/// so counters aggregate here instead of being plumbed through every
/// constructor. Relaxed atomics; negligible next to one BDD operation.
void index_counters_add(IndexKind kind, std::uint64_t queries,
                        std::uint64_t candidates, std::uint64_t skipped,
                        std::uint64_t full_scans);
[[nodiscard]] std::array<IndexCounters, kNumIndexKinds>
index_counters_snapshot();
void index_counters_reset();

/// Kill switch (and the lever the differential property test pulls): when
/// disabled, every indexed query degrades to the full scan through the
/// same call sites, so indexed and linear behavior can be compared on
/// identical code paths.
void set_prefix_index_enabled(bool enabled);
[[nodiscard]] bool prefix_index_enabled();

/// A binary trie over IPv4 prefixes holding opaque 32-bit ids at their
/// exact prefix node. collect() returns the ids on the root path of a
/// query prefix (entries covering the query) plus the ids in its subtree
/// (entries the query covers) — exactly the entries whose prefix overlaps
/// the query's. Nodes are never freed (paths are reused heavily); empty
/// subtrees are skipped via per-node id counts.
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  void insert(std::uint32_t id, const packet::Ipv4Prefix& prefix);
  /// Requires (id, prefix) to have been inserted.
  void erase(std::uint32_t id, const packet::Ipv4Prefix& prefix);
  /// Appends overlapping ids to `out` (not cleared).
  void collect(const packet::Ipv4Prefix& prefix,
               std::vector<std::uint32_t>& out) const;
  void clear();

  [[nodiscard]] std::size_t size() const { return nodes_[0].subtree_ids; }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::uint32_t subtree_ids = 0;  // ids here + in both subtrees
    std::vector<std::uint32_t> ids;
  };

  /// Walks to `prefix`'s node, creating it when `create`; returns -1 when
  /// absent and !create.
  std::int32_t walk(const packet::Ipv4Prefix& prefix, bool create);
  void collect_subtree(std::int32_t node,
                       std::vector<std::uint32_t>& out) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root (the /0 prefix)
};

/// An indexed table of entries exposing a `pred` PacketSet member. Entries
/// live in stable slots; the trie maps each live slot's dst-prefix hull to
/// its id. Iteration order is slot order for full scans and trie order for
/// indexed queries — callers must not depend on entry order (the DVM
/// tables hold disjoint predicates, so their contents are order-free).
template <typename Entry>
class RegionIndexed {
 public:
  explicit RegionIndexed(IndexKind kind = IndexKind::CibIn) : kind_(kind) {}

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  void clear() {
    slots_.clear();
    hulls_.clear();
    alive_.clear();
    free_.clear();
    trie_.clear();
    live_ = 0;
  }

  /// Inserts an entry; requires a non-empty predicate.
  void insert(Entry e) {
    const packet::Ipv4Prefix hull = packet::dst_prefix_hull(e.pred);
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      slots_[id] = std::move(e);
      hulls_[id] = hull;
      alive_[id] = true;
    } else {
      id = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(e));
      hulls_.push_back(hull);
      alive_.push_back(true);
    }
    trie_.insert(id, hull);
    ++live_;
  }

  /// Visits every live entry. fn: (const Entry&) -> void.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (alive_[i]) fn(slots_[i]);
    }
  }

  /// Visits entries that may intersect `query` (hull-pruned; callers still
  /// check real intersection). fn: (const Entry&) -> bool, false = stop.
  template <typename Fn>
  void for_candidates(const packet::PacketSet& query, Fn&& fn) const {
    if (empty()) return;
    const packet::Ipv4Prefix hull = packet::dst_prefix_hull(query);
    if (!prefix_index_enabled() || hull.len == 0) {
      index_counters_add(kind_, 1, live_, 0, 1);
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (alive_[i] && !fn(slots_[i])) return;
      }
      return;
    }
    scratch_.clear();
    trie_.collect(hull, scratch_);
    index_counters_add(kind_, 1, scratch_.size(), live_ - scratch_.size(),
                       0);
    for (const std::uint32_t id : scratch_) {
      if (!fn(slots_[id])) return;
    }
  }

  /// Mutating pass over candidate entries: fn may shrink/grow entry.pred.
  /// Entries left empty are erased; changed hulls are re-indexed.
  /// fn: (Entry&) -> void.
  template <typename Fn>
  void mutate_candidates(const packet::PacketSet& query, Fn&& fn) {
    if (empty()) return;
    const packet::Ipv4Prefix hull = packet::dst_prefix_hull(query);
    scratch_.clear();
    if (!prefix_index_enabled() || hull.len == 0) {
      index_counters_add(kind_, 1, live_, 0, 1);
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (alive_[i]) scratch_.push_back(static_cast<std::uint32_t>(i));
      }
    } else {
      trie_.collect(hull, scratch_);
      index_counters_add(kind_, 1, scratch_.size(), live_ - scratch_.size(),
                         0);
    }
    for (const std::uint32_t id : scratch_) {
      Entry& e = slots_[id];
      fn(e);
      if (e.pred.empty()) {
        trie_.erase(id, hulls_[id]);
        alive_[id] = false;
        free_.push_back(id);
        slots_[id] = Entry{};
        --live_;
        continue;
      }
      const packet::Ipv4Prefix now = packet::dst_prefix_hull(e.pred);
      if (now != hulls_[id]) {
        trie_.erase(id, hulls_[id]);
        trie_.insert(id, now);
        hulls_[id] = now;
      }
    }
  }

  /// Dense copy in slot order (tests, protocol snapshots).
  [[nodiscard]] std::vector<Entry> snapshot() const {
    std::vector<Entry> out;
    out.reserve(live_);
    for_each([&](const Entry& e) { out.push_back(e); });
    return out;
  }

 private:
  PrefixTrie trie_;
  std::vector<Entry> slots_;
  std::vector<packet::Ipv4Prefix> hulls_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  IndexKind kind_;
  mutable std::vector<std::uint32_t> scratch_;
};

}  // namespace tulkun::fib
