#include "fib/update_stream.hpp"

namespace tulkun::fib {

std::size_t NetworkFib::total_rules() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.size();
  return total;
}

std::vector<LecDelta> apply_update(NetworkFib& net, FibUpdate& update) {
  TULKUN_ASSERT(update.device < net.device_count());
  FibTable& fib = net.table(update.device);
  LecBuilder builder(net.space());

  // The only packets whose effective action can change are those matching
  // the inserted/removed rule; capture the old partition of that region,
  // apply the change, and re-partition.
  const packet::Ipv4Prefix region_prefix =
      update.kind == FibUpdate::Kind::Insert
          ? update.rule.dst_prefix
          : fib.rule(update.rule_id).dst_prefix;
  const packet::PacketSet region =
      update.kind == FibUpdate::Kind::Insert
          ? update.rule.match(net.space())
          : fib.rule(update.rule_id).match(net.space());

  const auto before =
      builder.effective_in_region(fib, region_prefix, region);

  if (update.kind == FibUpdate::Kind::Insert) {
    update.rule_id = fib.insert(update.rule);
  } else {
    update.rule = fib.erase(update.rule_id);
  }

  const auto after = builder.effective_in_region(fib, region_prefix, region);
  return builder.region_deltas(before, after);
}

}  // namespace tulkun::fib
