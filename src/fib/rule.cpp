#include "fib/rule.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tulkun::fib {

bool Action::forwards_to(DeviceId d) const {
  return std::binary_search(next_hops.begin(), next_hops.end(), d);
}

std::string Action::to_string() const {
  switch (type) {
    case ActionType::Drop:
      return "drop";
    case ActionType::All:
    case ActionType::Any: {
      std::string out = type == ActionType::All ? "fwd(ALL,{" : "fwd(ANY,{";
      for (std::size_t i = 0; i < next_hops.size(); ++i) {
        if (i > 0) out += ",";
        out += next_hops[i] == kExternalPort ? "ext"
                                             : std::to_string(next_hops[i]);
      }
      out += "})";
      if (rewrite) out += "+rw";
      return out;
    }
  }
  return "?";
}

Action Action::drop() { return Action{}; }

namespace {
std::vector<DeviceId> sorted_unique(std::vector<DeviceId> hops) {
  std::sort(hops.begin(), hops.end());
  hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
  if (hops.empty()) {
    throw Error("forwarding action needs at least one next-hop");
  }
  return hops;
}
}  // namespace

Action Action::forward_all(std::vector<DeviceId> hops,
                           std::optional<Rewrite> rw) {
  return Action{ActionType::All, sorted_unique(std::move(hops)),
                std::move(rw)};
}

Action Action::forward_any(std::vector<DeviceId> hops,
                           std::optional<Rewrite> rw) {
  auto sorted = sorted_unique(std::move(hops));
  // A one-element ANY group is deterministic; canonicalize to ALL so action
  // equality (and therefore LEC identity) doesn't depend on the spelling.
  const ActionType type =
      sorted.size() == 1 ? ActionType::All : ActionType::Any;
  return Action{type, std::move(sorted), std::move(rw)};
}

Action Action::forward(DeviceId hop, std::optional<Rewrite> rw) {
  return forward_all({hop}, std::move(rw));
}

Action Action::deliver() { return forward_all({kExternalPort}); }

packet::PacketSet Rule::match(packet::PacketSpace& space) const {
  packet::PacketSet m = space.dst_prefix(dst_prefix);
  if (extra_match) m &= *extra_match;
  return m;
}

std::size_t ActionHash::operator()(const Action& a) const noexcept {
  std::size_t seed = static_cast<std::size_t>(a.type);
  for (const DeviceId d : a.next_hops) {
    hash_combine(seed, d);
  }
  if (a.rewrite) {
    hash_combine(seed, static_cast<std::size_t>(a.rewrite->field));
    hash_combine(seed, a.rewrite->value);
  }
  return seed;
}

}  // namespace tulkun::fib
