#include "fib/prefix_index.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tulkun::fib {

namespace {

std::array<std::array<std::atomic<std::uint64_t>, 4>, kNumIndexKinds>
    g_counters{};

std::atomic<bool> g_enabled{true};

}  // namespace

const char* index_kind_name(IndexKind kind) {
  switch (kind) {
    case IndexKind::Fib:
      return "fib";
    case IndexKind::Lec:
      return "lec";
    case IndexKind::CibIn:
      return "cib_in";
    case IndexKind::Loc:
      return "loc";
    case IndexKind::OutSent:
      return "out_sent";
  }
  return "unknown";
}

void index_counters_add(IndexKind kind, std::uint64_t queries,
                        std::uint64_t candidates, std::uint64_t skipped,
                        std::uint64_t full_scans) {
  auto& row = g_counters[static_cast<std::size_t>(kind)];
  row[0].fetch_add(queries, std::memory_order_relaxed);
  row[1].fetch_add(candidates, std::memory_order_relaxed);
  row[2].fetch_add(skipped, std::memory_order_relaxed);
  row[3].fetch_add(full_scans, std::memory_order_relaxed);
}

std::array<IndexCounters, kNumIndexKinds> index_counters_snapshot() {
  std::array<IndexCounters, kNumIndexKinds> out{};
  for (std::size_t k = 0; k < kNumIndexKinds; ++k) {
    out[k].queries = g_counters[k][0].load(std::memory_order_relaxed);
    out[k].candidates = g_counters[k][1].load(std::memory_order_relaxed);
    out[k].skipped = g_counters[k][2].load(std::memory_order_relaxed);
    out[k].full_scans = g_counters[k][3].load(std::memory_order_relaxed);
  }
  return out;
}

void index_counters_reset() {
  for (auto& row : g_counters) {
    for (auto& c : row) c.store(0, std::memory_order_relaxed);
  }
}

void set_prefix_index_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool prefix_index_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

std::int32_t PrefixTrie::walk(const packet::Ipv4Prefix& prefix, bool create) {
  std::int32_t cur = 0;
  for (std::uint8_t depth = 0; depth < prefix.len; ++depth) {
    const int bit = (prefix.addr >> (31 - depth)) & 1U;
    std::int32_t next = nodes_[cur].child[bit];
    if (next < 0) {
      if (!create) return -1;
      next = static_cast<std::int32_t>(nodes_.size());
      nodes_[cur].child[bit] = next;
      nodes_.push_back(Node{});
    }
    cur = next;
  }
  return cur;
}

void PrefixTrie::insert(std::uint32_t id, const packet::Ipv4Prefix& prefix) {
  const std::int32_t node = walk(prefix, /*create=*/true);
  nodes_[node].ids.push_back(id);
  // Bump counts along the path (walk again; paths are ≤32 deep).
  std::int32_t cur = 0;
  ++nodes_[cur].subtree_ids;
  for (std::uint8_t depth = 0; depth < prefix.len; ++depth) {
    const int bit = (prefix.addr >> (31 - depth)) & 1U;
    cur = nodes_[cur].child[bit];
    ++nodes_[cur].subtree_ids;
  }
}

void PrefixTrie::erase(std::uint32_t id, const packet::Ipv4Prefix& prefix) {
  const std::int32_t node = walk(prefix, /*create=*/false);
  TULKUN_ASSERT(node >= 0);
  auto& ids = nodes_[node].ids;
  const auto it = std::find(ids.begin(), ids.end(), id);
  TULKUN_ASSERT(it != ids.end());
  *it = ids.back();
  ids.pop_back();
  std::int32_t cur = 0;
  --nodes_[cur].subtree_ids;
  for (std::uint8_t depth = 0; depth < prefix.len; ++depth) {
    const int bit = (prefix.addr >> (31 - depth)) & 1U;
    cur = nodes_[cur].child[bit];
    --nodes_[cur].subtree_ids;
  }
}

void PrefixTrie::collect(const packet::Ipv4Prefix& prefix,
                         std::vector<std::uint32_t>& out) const {
  // Ancestors (strictly shorter prefixes covering the query).
  std::int32_t cur = 0;
  for (std::uint8_t depth = 0; depth < prefix.len; ++depth) {
    if (nodes_[cur].subtree_ids == 0) return;
    out.insert(out.end(), nodes_[cur].ids.begin(), nodes_[cur].ids.end());
    const int bit = (prefix.addr >> (31 - depth)) & 1U;
    cur = nodes_[cur].child[bit];
    if (cur < 0) return;
  }
  // The query's own node plus everything beneath it.
  collect_subtree(cur, out);
}

void PrefixTrie::collect_subtree(std::int32_t node,
                                 std::vector<std::uint32_t>& out) const {
  if (node < 0 || nodes_[node].subtree_ids == 0) return;
  out.insert(out.end(), nodes_[node].ids.begin(), nodes_[node].ids.end());
  collect_subtree(nodes_[node].child[0], out);
  collect_subtree(nodes_[node].child[1], out);
}

void PrefixTrie::clear() {
  nodes_.clear();
  nodes_.push_back(Node{});
}

}  // namespace tulkun::fib
