#include "fib/fib_table.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tulkun::fib {

std::uint64_t FibTable::insert(Rule rule) {
  rule.id = next_id_++;
  const std::uint64_t id = rule.id;
  TULKUN_ASSERT(id <= UINT32_MAX);  // trie ids are 32-bit
  by_prefix_.insert(static_cast<std::uint32_t>(id), rule.dst_prefix);
  by_id_.emplace(id, std::move(rule));
  return id;
}

Rule FibTable::erase(std::uint64_t id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    throw Error("FibTable::erase: no rule with id " + std::to_string(id));
  }
  Rule out = std::move(it->second);
  by_prefix_.erase(static_cast<std::uint32_t>(id), out.dst_prefix);
  by_id_.erase(it);
  return out;
}

bool FibTable::contains(std::uint64_t id) const { return by_id_.contains(id); }

const Rule& FibTable::rule(std::uint64_t id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    throw Error("FibTable::rule: no rule with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<const Rule*> FibTable::ordered() const {
  std::vector<const Rule*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, r] : by_id_) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(), [](const Rule* a, const Rule* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->id < b->id;
  });
  return out;
}

std::vector<const Rule*> FibTable::overlapping(
    const packet::Ipv4Prefix& prefix) const {
  std::vector<const Rule*> out;
  if (prefix_index_enabled()) {
    std::vector<std::uint32_t> ids;
    by_prefix_.collect(prefix, ids);
    index_counters_add(IndexKind::Fib, 1, ids.size(),
                       by_id_.size() - ids.size(), 0);
    out.reserve(ids.size());
    for (const std::uint32_t id : ids) out.push_back(&by_id_.at(id));
  } else {
    index_counters_add(IndexKind::Fib, 1, by_id_.size(), 0, 1);
    for (const auto& [id, r] : by_id_) {
      if (r.dst_prefix.covers(prefix) || prefix.covers(r.dst_prefix)) {
        out.push_back(&r);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Rule* a, const Rule* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->id < b->id;
  });
  return out;
}

std::vector<const Rule*> FibTable::all() const {
  std::vector<const Rule*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, r] : by_id_) out.push_back(&r);
  return out;
}

packet::PacketSet rewrite_image(packet::PacketSpace& space,
                                const packet::PacketSet& p,
                                const Rewrite& rw) {
  const std::uint32_t lo = packet::Layout::offset(rw.field);
  const std::uint32_t hi = lo + packet::Layout::width(rw.field);
  auto& mgr = space.manager();
  const auto forgotten = space.wrap(mgr.exists_range(p.ref(), lo, hi));
  const auto fixed = space.field_range(rw.field, rw.value, rw.value);
  return forgotten & fixed;
}

packet::PacketSet rewrite_preimage(packet::PacketSpace& space,
                                   const packet::PacketSet& p,
                                   const Rewrite& rw) {
  const std::uint32_t lo = packet::Layout::offset(rw.field);
  const std::uint32_t hi = lo + packet::Layout::width(rw.field);
  auto& mgr = space.manager();
  const auto fixed = space.field_range(rw.field, rw.value, rw.value);
  // Restrict p to the written value, then free the field: any original
  // field value rewrites into that restriction.
  const auto restricted = p & fixed;
  return space.wrap(mgr.exists_range(restricted.ref(), lo, hi));
}

}  // namespace tulkun::fib
