#include "fib/fib_parser.hpp"

#include <sstream>
#include <vector>

namespace tulkun::fib {

namespace {

[[noreturn]] void fail(int line, const std::string& why) {
  throw Error("fib line " + std::to_string(line) + ": " + why);
}

}  // namespace

void parse_fib(std::istream& in, NetworkFib& net) {
  const topo::Topology& topo = net.topology();
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::vector<std::string> tok;
    std::string t;
    while (ls >> t) tok.push_back(t);
    if (tok.empty()) continue;
    if (tok[0] != "rule") fail(line_no, "expected 'rule'");
    if (tok.size() < 6) fail(line_no, "truncated rule");

    const auto dev = topo.find_device(tok[1]);
    if (!dev) fail(line_no, "unknown device " + tok[1]);

    Rule r;
    r.dst_prefix = packet::Ipv4Prefix::parse(tok[2]);
    std::size_t i = 3;
    if (tok[i] != "prio" || i + 1 >= tok.size()) {
      fail(line_no, "expected 'prio <n>'");
    }
    r.priority = std::stoi(tok[i + 1]);
    i += 2;

    std::optional<std::uint16_t> port;
    std::optional<Rewrite> rewrite;
    while (i < tok.size()) {
      if (tok[i] == "port" && i + 1 < tok.size()) {
        port = static_cast<std::uint16_t>(std::stoul(tok[i + 1]));
        i += 2;
      } else if (tok[i] == "rewrite-dst" && i + 1 < tok.size()) {
        rewrite = Rewrite{packet::Field::DstIp,
                          packet::parse_ipv4(tok[i + 1])};
        i += 2;
      } else {
        break;
      }
    }
    if (port) r.extra_match = net.space().dst_port(*port);

    if (i >= tok.size()) fail(line_no, "missing action");
    const std::string& action = tok[i++];
    const auto hops = [&]() {
      std::vector<DeviceId> out;
      for (; i < tok.size(); ++i) {
        const auto h = topo.find_device(tok[i]);
        if (!h) fail(line_no, "unknown next hop " + tok[i]);
        out.push_back(*h);
      }
      if (out.empty()) fail(line_no, "action needs next hops");
      return out;
    };
    if (action == "drop") {
      if (rewrite) fail(line_no, "drop cannot rewrite");
      r.action = Action::drop();
    } else if (action == "deliver") {
      r.action = Action::deliver();
    } else if (action == "fwd" || action == "fwd-all") {
      r.action = Action::forward_all(hops(), rewrite);
    } else if (action == "fwd-any") {
      r.action = Action::forward_any(hops(), rewrite);
    } else {
      fail(line_no, "unknown action " + action);
    }
    if (i < tok.size()) fail(line_no, "trailing tokens");
    net.table(*dev).insert(std::move(r));
  }
}

void parse_fib(std::string_view text, NetworkFib& net) {
  std::istringstream in{std::string(text)};
  parse_fib(in, net);
}

std::string to_text(NetworkFib& net) {
  const topo::Topology& topo = net.topology();
  std::ostringstream out;
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    for (const Rule* r : net.table(d).ordered()) {
      out << "rule " << topo.name(d) << " " << r->dst_prefix.to_string()
          << " prio " << r->priority;
      if (r->extra_match) {
        // Only an exact dst-port match is expressible in the format; a
        // single-port predicate constrains exactly 16 of the header bits,
        // so read the port back from a satisfying assignment and compare.
        std::uint32_t port = 0;
        for (const auto& [var, bit] : net.space().manager().any_sat(
                 r->extra_match->ref())) {
          if (bit && var >= packet::Layout::kDstPortOffset &&
              var < packet::Layout::kDstPortOffset +
                        packet::Layout::kDstPortWidth) {
            port |= 1U << (packet::Layout::kDstPortWidth - 1 -
                           (var - packet::Layout::kDstPortOffset));
          }
        }
        if (*r->extra_match !=
            net.space().dst_port(static_cast<std::uint16_t>(port))) {
          throw Error("to_text: non-port match not expressible; rule id " +
                      std::to_string(r->id));
        }
        out << " port " << port;
      }
      const auto& a = r->action;
      if (a.rewrite) {
        if (a.rewrite->field != packet::Field::DstIp) {
          throw Error("to_text: only dstIP rewrites expressible");
        }
        out << " rewrite-dst " << packet::format_ipv4(a.rewrite->value);
      }
      switch (a.type) {
        case ActionType::Drop:
          out << " drop";
          break;
        case ActionType::All:
        case ActionType::Any: {
          if (a.next_hops.size() == 1 &&
              a.next_hops[0] == kExternalPort) {
            out << " deliver";
            break;
          }
          out << (a.type == ActionType::All ? " fwd-all" : " fwd-any");
          for (const DeviceId h : a.next_hops) {
            if (h == kExternalPort) {
              throw Error("to_text: mixed external+internal group");
            }
            out << " " << topo.name(h);
          }
          break;
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace tulkun::fib
