// Plain-text FIB format, for the CLI and user-provided data planes:
//
//   # rule <device> <cidr> prio <n> [port <n>] [rewrite-dst <ip>] <action>
//   rule S 10.0.0.0/23 prio 10 fwd A
//   rule A 10.0.0.0/24 prio 10 fwd-all B W
//   rule A 10.0.1.0/24 prio 20 port 80 fwd-any B W
//   rule B 10.0.0.0/24 prio 10 drop
//   rule D 10.0.0.0/23 prio 10 deliver
//   rule N 10.0.9.0/24 prio 10 rewrite-dst 192.168.0.1 fwd D
#pragma once

#include <istream>
#include <string_view>

#include "fib/update_stream.hpp"

namespace tulkun::fib {

/// Parses the text format above into `net` (which supplies the topology
/// for device-name resolution and the packet space for port matches).
/// Throws Error with a line number on malformed input.
void parse_fib(std::istream& in, NetworkFib& net);
void parse_fib(std::string_view text, NetworkFib& net);

/// Serializes a network FIB back to the text format (round-trips for
/// rules expressible in it: prefix and exact-dst-port matches, dstIP
/// rewrites; throws Error for anything else). Non-const: comparing a
/// rule's extra match against port predicates builds BDDs in net's space.
[[nodiscard]] std::string to_text(NetworkFib& net);

}  // namespace tulkun::fib
