// Network-wide data plane state and rule-update streams.
//
// NetworkFib owns one FibTable per device over a shared PacketSpace; it is
// the "ground truth" both Tulkun's on-device verifiers and the centralized
// baselines read. FibUpdate/UpdateStream model the incremental-verification
// workloads of §9.2/§9.3.3.
#pragma once

#include <cstdint>
#include <vector>

#include "fib/fib_table.hpp"
#include "fib/lec.hpp"
#include "topo/topology.hpp"

namespace tulkun::fib {

/// The complete data plane of a network.
class NetworkFib {
 public:
  explicit NetworkFib(const topo::Topology& topo)
      : topo_(&topo), tables_(topo.device_count()) {}

  [[nodiscard]] packet::PacketSpace& space() { return space_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

  [[nodiscard]] FibTable& table(DeviceId d) {
    TULKUN_ASSERT(d < tables_.size());
    return tables_[d];
  }
  [[nodiscard]] const FibTable& table(DeviceId d) const {
    TULKUN_ASSERT(d < tables_.size());
    return tables_[d];
  }

  [[nodiscard]] std::size_t device_count() const { return tables_.size(); }

  /// Total rules across all devices.
  [[nodiscard]] std::size_t total_rules() const;

 private:
  const topo::Topology* topo_;
  packet::PacketSpace space_;
  std::vector<FibTable> tables_;
};

/// One rule change at one device.
struct FibUpdate {
  enum class Kind : std::uint8_t { Insert, Erase };

  DeviceId device = kNoDevice;
  Kind kind = Kind::Insert;
  /// Insert: the rule to add. Erase: filled with the removed rule when the
  /// update is applied (so observers know the affected match region).
  Rule rule;
  std::uint64_t rule_id = 0;  // target for Erase; assigned id after Insert

  static FibUpdate insert(DeviceId dev, Rule r) {
    return FibUpdate{dev, Kind::Insert, std::move(r), 0};
  }
  static FibUpdate erase(DeviceId dev, std::uint64_t id) {
    return FibUpdate{dev, Kind::Erase, Rule{}, id};
  }
};

/// Applies `update` to `net`, returning the resulting LEC deltas at the
/// updated device (empty when the change is shadowed by higher-priority
/// rules). On Insert, the assigned rule id is written back to update.rule_id.
std::vector<LecDelta> apply_update(NetworkFib& net, FibUpdate& update);

}  // namespace tulkun::fib
