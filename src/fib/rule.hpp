// Match-action rules: the data plane model of §2.1.
//
// Each rule matches packets on header fields (dominated by destination
// prefixes, optionally refined with port/proto constraints) and performs an
// action: drop, forward to ALL next-hops of a group (multicast/replication),
// or forward to ANY one next-hop of a group (ECMP — the selection is a
// vendor black box, which is exactly what Tulkun's "universes" model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "packet/packet_set.hpp"

namespace tulkun::fib {

/// Pseudo-device id meaning "deliver out of an external port".
inline constexpr DeviceId kExternalPort = kNoDevice - 1;

enum class ActionType : std::uint8_t {
  Drop,  ///< empty next-hop group
  All,   ///< forward a copy to every next-hop in the group
  Any,   ///< forward to exactly one next-hop, selection unknown
};

/// Header rewrite applied before forwarding: overwrite one field with a
/// fixed value (models NAT-style packet transformation, §5).
struct Rewrite {
  packet::Field field = packet::Field::DstIp;
  std::uint32_t value = 0;

  friend bool operator==(const Rewrite&, const Rewrite&) = default;
};

/// A forwarding action. Value type with structural equality (next-hops are
/// kept sorted by the constructor helpers below).
struct Action {
  ActionType type = ActionType::Drop;
  std::vector<DeviceId> next_hops;  // sorted ascending; empty iff Drop
  std::optional<Rewrite> rewrite;

  friend bool operator==(const Action&, const Action&) = default;

  [[nodiscard]] bool forwards_to(DeviceId d) const;
  [[nodiscard]] std::string to_string() const;

  static Action drop();
  static Action forward_all(std::vector<DeviceId> hops,
                            std::optional<Rewrite> rw = std::nullopt);
  static Action forward_any(std::vector<DeviceId> hops,
                            std::optional<Rewrite> rw = std::nullopt);
  /// Single next-hop unicast (ALL and ANY coincide).
  static Action forward(DeviceId hop,
                        std::optional<Rewrite> rw = std::nullopt);
  /// Deliver out of an external port.
  static Action deliver();
};

/// A prioritized match-action rule. Higher `priority` wins; ties broken by
/// lower id (first inserted). `dst_prefix` is the destination-prefix part of
/// the match; `extra_match` (optional) refines it with non-prefix fields.
struct Rule {
  std::uint64_t id = 0;
  std::int32_t priority = 0;
  packet::Ipv4Prefix dst_prefix;
  std::optional<packet::PacketSet> extra_match;  // nullopt = prefix only
  Action action;

  /// Full match predicate (prefix AND extra).
  [[nodiscard]] packet::PacketSet match(packet::PacketSpace& space) const;

  /// True if the rule matches purely on the destination prefix.
  [[nodiscard]] bool prefix_only() const { return !extra_match.has_value(); }
};

/// Hash of an Action, for grouping LECs by action.
struct ActionHash {
  std::size_t operator()(const Action& a) const noexcept;
};

}  // namespace tulkun::fib
