// FibTable: the ordered match-action table of one device (§2.1), plus the
// rewrite-image helper used for packet transformations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fib/prefix_index.hpp"
#include "fib/rule.hpp"

namespace tulkun::fib {

/// One device's data plane: rules ordered by descending priority
/// (ties: earliest-inserted first). Unmatched packets are dropped.
class FibTable {
 public:
  /// Adds a rule; returns the rule id assigned (input id is ignored and
  /// replaced to keep ids unique within the table).
  std::uint64_t insert(Rule rule);

  /// Removes a rule by id; returns the removed rule.
  /// Throws Error if absent.
  Rule erase(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const;
  [[nodiscard]] const Rule& rule(std::uint64_t id) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

  /// Rules in match order (descending priority, then insertion order).
  /// Invalidated by insert/erase.
  [[nodiscard]] std::vector<const Rule*> ordered() const;

  /// Rules whose destination prefix overlaps `prefix` (either covers the
  /// other). Used by incremental LEC recomputation to bound work. Answered
  /// from a prefix trie over rule dst prefixes: overlap is exactly
  /// ancestor-or-descendant, so the trie result is exact, not a candidate
  /// superset.
  [[nodiscard]] std::vector<const Rule*> overlapping(
      const packet::Ipv4Prefix& prefix) const;

  /// Iterates all rules in unspecified order.
  [[nodiscard]] std::vector<const Rule*> all() const;

 private:
  std::map<std::uint64_t, Rule> by_id_;
  PrefixTrie by_prefix_;  // rule id (narrowed) -> dst_prefix
  std::uint64_t next_id_ = 1;
};

/// The image of `p` under rewrite `rw`: forget the rewritten field, then
/// constrain it to the written value.
[[nodiscard]] packet::PacketSet rewrite_image(packet::PacketSpace& space,
                                              const packet::PacketSet& p,
                                              const Rewrite& rw);

/// The preimage of `p` under rewrite `rw`: all packets whose rewritten form
/// lies in `p` (the rewritten field is unconstrained in the result).
[[nodiscard]] packet::PacketSet rewrite_preimage(packet::PacketSpace& space,
                                                 const packet::PacketSet& p,
                                                 const Rewrite& rw);

}  // namespace tulkun::fib
