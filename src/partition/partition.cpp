#include "partition/partition.hpp"

#include <algorithm>
#include <deque>

#include "core/rng.hpp"

namespace tulkun::partition {

std::vector<DeviceId> Partitioning::members(std::uint32_t c) const {
  std::vector<DeviceId> out;
  for (DeviceId d = 0; d < cluster_of.size(); ++d) {
    if (cluster_of[d] == c) out.push_back(d);
  }
  return out;
}

Partitioning make_clusters(const topo::Topology& topo, std::uint32_t k,
                           std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(topo.device_count());
  TULKUN_ASSERT(k >= 1);
  k = std::min(k, n);

  // Greedy farthest-point seeds: start random, then repeatedly take the
  // device with the largest hop distance to any chosen seed.
  Rng rng(seed);
  std::vector<DeviceId> seeds{static_cast<DeviceId>(rng.index(n))};
  std::vector<std::uint32_t> best(n, topo::Topology::kUnreachable);
  const auto absorb = [&](DeviceId s) {
    const auto dist = topo.hop_distances_to(s);
    for (DeviceId d = 0; d < n; ++d) {
      best[d] = std::min(best[d], dist[d]);
    }
  };
  absorb(seeds[0]);
  while (seeds.size() < k) {
    DeviceId far = 0;
    for (DeviceId d = 1; d < n; ++d) {
      if (best[d] != topo::Topology::kUnreachable &&
          (best[far] == topo::Topology::kUnreachable ||
           best[d] > best[far])) {
        far = d;
      }
    }
    seeds.push_back(far);
    absorb(far);
  }

  // Multi-source BFS assignment.
  Partitioning parts;
  parts.clusters = static_cast<std::uint32_t>(seeds.size());
  parts.cluster_of.assign(n, parts.clusters);
  std::deque<DeviceId> work;
  for (std::uint32_t c = 0; c < seeds.size(); ++c) {
    parts.cluster_of[seeds[c]] = c;
    work.push_back(seeds[c]);
  }
  while (!work.empty()) {
    const DeviceId cur = work.front();
    work.pop_front();
    for (const auto& adj : topo.neighbors(cur)) {
      if (parts.cluster_of[adj.neighbor] == parts.clusters) {
        parts.cluster_of[adj.neighbor] = parts.cluster_of[cur];
        work.push_back(adj.neighbor);
      }
    }
  }
  // Isolated devices (no links) become singleton members of cluster 0.
  for (auto& c : parts.cluster_of) {
    if (c == parts.clusters) c = 0;
  }
  return parts;
}

PartitionedVerifier::PartitionedVerifier(const fib::NetworkFib& net,
                                         Partitioning parts)
    : net_(&net), parts_(std::move(parts)) {
  instances_.resize(parts_.clusters);
  for (std::uint32_t c = 0; c < parts_.clusters; ++c) {
    instances_[c].id = c;
    for (const DeviceId d : parts_.members(c)) {
      instances_[c].members.insert(d);
    }
  }
}

namespace {

/// Longest-prefix-match winner for a representative address of `dst`'s
/// first prefix (extra match fields are ignored: partitioned mode serves
/// destination-prefix planes).
const fib::Rule* lpm(const fib::FibTable& fib, std::uint32_t point) {
  for (const fib::Rule* r : fib.ordered()) {
    if (r->dst_prefix.contains(point)) return r;
  }
  return nullptr;
}

}  // namespace

Reach PartitionedVerifier::resolve(Instance& inst, DeviceId device,
                                   DeviceId dst,
                                   std::set<DeviceId>& visiting,
                                   std::set<DeviceId>& walked) {
  ++stats_.intra_queries;
  walked.insert(device);

  if (device == dst) return Reach::Yes;  // delivery at the owner

  const auto key = std::make_pair(device, dst);
  if (const auto it = inst.memo.find(key); it != inst.memo.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  if (visiting.contains(device)) {
    // Revisit: within one universe forwarding is deterministic, so the
    // packet cycles forever — this chain never delivers.
    return Reach::No;
  }

  const auto& prefixes = net_->topology().prefixes(dst);
  TULKUN_ASSERT(!prefixes.empty());
  const fib::Rule* rule =
      lpm(net_->table(device), prefixes.front().addr);

  Reach verdict = Reach::No;
  if (rule != nullptr && rule->action.type != fib::ActionType::Drop) {
    // External-port branches before dst's device are misdeliveries and are
    // skipped below; only forwarding toward real devices can deliver.
    const auto& action = rule->action;
    visiting.insert(device);
    bool any_yes = false;
    bool all_yes = true;
    bool has_branch = false;
    for (const DeviceId hop : action.next_hops) {
      if (hop == fib::kExternalPort) continue;
      has_branch = true;
      Reach branch;
      const std::uint32_t hop_cluster = parts_.cluster_of[hop];
      if (hop_cluster == inst.id) {
        branch = resolve(inst, hop, dst, visiting, walked);
      } else {
        // Cross-border QUERY/ANSWER with the neighbor instance.
        stats_.cross_messages += 2;
        branch = resolve(instances_[hop_cluster], hop, dst, visiting,
                         walked);
      }
      any_yes = any_yes || branch == Reach::Yes;
      all_yes = all_yes && branch == Reach::Yes;
    }
    visiting.erase(device);
    if (has_branch) {
      // ALL replication delivers if any copy does; an ANY choice must
      // deliver whichever branch the device picks.
      verdict = (action.type == fib::ActionType::All ? any_yes : all_yes)
                    ? Reach::Yes
                    : Reach::No;
    }
  }

  inst.memo.emplace(key, verdict);
  inst.deps[key] = walked;
  return verdict;
}

Reach PartitionedVerifier::query(DeviceId ingress, DeviceId dst) {
  std::set<DeviceId> visiting;
  std::set<DeviceId> walked;
  Instance& inst = instances_[parts_.cluster_of[ingress]];
  return resolve(inst, ingress, dst, visiting, walked);
}

std::vector<std::pair<DeviceId, DeviceId>>
PartitionedVerifier::verify_all_pairs() {
  std::vector<std::pair<DeviceId, DeviceId>> failures;
  const auto& topo = net_->topology();
  for (DeviceId dst = 0; dst < topo.device_count(); ++dst) {
    if (topo.prefixes(dst).empty()) continue;
    for (DeviceId ing = 0; ing < topo.device_count(); ++ing) {
      if (ing == dst || topo.prefixes(ing).empty()) continue;
      if (query(ing, dst) != Reach::Yes) {
        failures.emplace_back(ing, dst);
      }
    }
  }
  return failures;
}

void PartitionedVerifier::invalidate(DeviceId device) {
  for (auto& inst : instances_) {
    std::erase_if(inst.memo, [&](const auto& kv) {
      const auto dep = inst.deps.find(kv.first);
      return dep != inst.deps.end() && dep->second.contains(device);
    });
    std::erase_if(inst.deps, [&](const auto& kv) {
      return !inst.memo.contains(kv.first);
    });
  }
}

}  // namespace tulkun::partition
