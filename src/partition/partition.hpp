// Divide-and-conquer verification (§7 "Large networks with a huge number
// of valid paths" / "Incremental deployment"): the network is divided into
// partitions, each abstracted as a one-big-switch and served by one
// verification instance; instances verify intra-partition reachability
// locally and query neighbor instances across partition borders.
//
// Scope: destination-prefix reachability (the §9 evaluation invariant,
// minus the hop bound) over arbitrary ALL/ANY data planes. Each instance
// resolves "do packets for dst entering at device x get delivered (in
// every universe)?" by walking its members' LEC actions, recursing across
// borders with memoized QUERY/ANSWER messages — the paper's
// "one instance per partition to perform intra-/inter-partition
// verification".
#pragma once

#include <map>
#include <optional>
#include <set>

#include "fib/update_stream.hpp"

namespace tulkun::partition {

/// device -> cluster assignment.
struct Partitioning {
  std::vector<std::uint32_t> cluster_of;  // size = device_count
  std::uint32_t clusters = 0;

  [[nodiscard]] std::vector<DeviceId> members(std::uint32_t c) const;
};

/// Balanced BFS-grown clusters, deterministic in `seed`.
[[nodiscard]] Partitioning make_clusters(const topo::Topology& topo,
                                         std::uint32_t k,
                                         std::uint64_t seed);

/// Tri-state verdict for "does every universe deliver at least one copy".
enum class Reach : std::uint8_t { Unknown, Yes, No };

struct PartitionStats {
  std::uint64_t intra_queries = 0;   // device resolutions inside instances
  std::uint64_t cross_messages = 0;  // QUERY/ANSWER pairs between instances
  std::uint64_t cache_hits = 0;
};

/// The distributed divide-and-conquer verifier. In-process, but instances
/// only exchange information through the query interface (counted in
/// stats), so the communication pattern is faithful.
class PartitionedVerifier {
 public:
  PartitionedVerifier(const fib::NetworkFib& net, Partitioning parts);

  /// Does every universe deliver packets for `dst`'s prefixes entering at
  /// `ingress`? (Loop via revisit => No, matching trace semantics: a
  /// revisited device loops forever.)
  [[nodiscard]] Reach query(DeviceId ingress, DeviceId dst);

  /// All-pair verification: (ingress, dst) pairs whose delivery fails.
  [[nodiscard]] std::vector<std::pair<DeviceId, DeviceId>> verify_all_pairs();

  /// Invalidate caches touching `device` after its FIB changed.
  void invalidate(DeviceId device);

  [[nodiscard]] const PartitionStats& stats() const { return stats_; }
  [[nodiscard]] const Partitioning& partitioning() const { return parts_; }

 private:
  struct Instance {
    std::uint32_t id = 0;
    std::set<DeviceId> members;
    // memo: (device, dst) -> verdict, plus which devices each entry
    // walked through (for invalidation).
    std::map<std::pair<DeviceId, DeviceId>, Reach> memo;
    std::map<std::pair<DeviceId, DeviceId>, std::set<DeviceId>> deps;
  };

  /// Resolves (device, dst) inside `inst`; `visiting` carries the devices
  /// on the current resolution chain (cross-border cycle detection).
  Reach resolve(Instance& inst, DeviceId device, DeviceId dst,
                std::set<DeviceId>& visiting,
                std::set<DeviceId>& walked);

  const fib::NetworkFib* net_;
  Partitioning parts_;
  std::vector<Instance> instances_;
  PartitionStats stats_;
};

}  // namespace tulkun::partition
