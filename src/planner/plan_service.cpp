#include "planner/plan_service.hpp"

#include <algorithm>
#include <chrono>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "planner/plan_digest.hpp"
#include "spec/check.hpp"

namespace tulkun::planner {

namespace {

LinkId canon(LinkId l) { return l.from < l.to ? l : l.reversed(); }

/// Scenes with the overlay's downed links added to every failed set: a
/// downed link is failed in every fault scenario the operator asked about.
std::vector<spec::FaultScene> overlaid_scenes(
    std::vector<spec::FaultScene> scenes,
    const std::unordered_set<LinkId>& overlay) {
  if (overlay.empty()) return scenes;
  for (auto& s : scenes) {
    auto links = s.failed;
    links.insert(links.end(), overlay.begin(), overlay.end());
    s = spec::FaultScene::of(std::move(links));
  }
  return scenes;
}

/// Same static diagnostics as Planner::plan (string-identical, so plans
/// digest equal across the batch and service paths).
std::vector<std::string> static_warnings(const dpvnet::DpvNet& dag,
                                         const topo::Topology& topo) {
  std::vector<std::string> out;
  for (const auto& [ingress, src] : dag.sources()) {
    if (src == kNoNode || !dag.node(src).scenes.test(0)) {
      out.push_back("ingress " + topo.name(ingress) +
                    " has no valid path in the failure-free topology");
    }
  }
  for (const auto& [scene, ingress] : dag.intolerable) {
    if (scene == 0) continue;  // already covered above
    out.push_back("fault scene #" + std::to_string(scene) +
                  " is intolerable for ingress " + topo.name(ingress));
  }
  return out;
}

/// Links traversed by any valid path in any scene: the plan's support.
std::unordered_set<LinkId> dag_support(const dpvnet::DpvNet& dag) {
  std::unordered_set<LinkId> out;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    for (const auto& e : n.down) {
      out.insert(canon(LinkId{n.dev, dag.node(e.to).dev}));
    }
  }
  return out;
}

}  // namespace

PlanService::PlanService(const topo::Topology& topo,
                         packet::PacketSpace& space, PlanServiceOptions opts)
    : topo_(&topo), space_(&space), opts_(opts) {
  if (opts_.workers != 1) {
    pool_ = std::make_unique<WorkerPool>(opts_.workers);
  }
}

InvariantId PlanService::add_invariant(spec::Invariant inv) {
  const InvariantId id = next_id_++;
  Intent intent;
  intent.inv = std::move(inv);
  intents_.emplace(id, std::move(intent));
  return id;
}

bool PlanService::remove_invariant(InvariantId id) {
  const auto it = intents_.find(id);
  if (it == intents_.end()) return false;
  index_remove(id, it->second);
  intents_.erase(it);
  pending_removed_.push_back(id);
  return true;
}

void PlanService::index_add(InvariantId id, const Intent& intent) {
  for (const auto& l : intent.support) support_index_[l].insert(id);
  for (const auto& l : intent.overlay_at_plan) overlay_index_[l].insert(id);
}

void PlanService::index_remove(InvariantId id, const Intent& intent) {
  for (const auto& l : intent.support) {
    const auto it = support_index_.find(l);
    if (it == support_index_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) support_index_.erase(it);
  }
  for (const auto& l : intent.overlay_at_plan) {
    const auto it = overlay_index_.find(l);
    if (it == overlay_index_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) overlay_index_.erase(it);
  }
}

void PlanService::set_link_state(LinkId link, bool up) {
  const LinkId l = canon(link);
  if (up) {
    if (overlay_.erase(l) == 0) return;  // was not down
    // Only plans built while `l` was overlaid excluded paths through it.
    const auto it = overlay_index_.find(l);
    if (it == overlay_index_.end()) return;
    for (const InvariantId id : it->second) {
      const auto iit = intents_.find(id);
      if (iit != intents_.end()) iit->second.dirty = true;
    }
  } else {
    if (!overlay_.insert(l).second) return;  // already down
    // A downed link changes only plans whose valid paths traverse it.
    const auto it = support_index_.find(l);
    if (it == support_index_.end()) return;
    for (const InvariantId id : it->second) {
      const auto iit = intents_.find(id);
      if (iit == intents_.end()) continue;
      if (iit->second.overlay_at_plan.contains(l)) continue;
      iit->second.dirty = true;
    }
  }
}

bool PlanService::link_is_up(LinkId link) const {
  return !overlay_.contains(canon(link));
}

std::size_t PlanService::dirty_count() const {
  std::size_t n = 0;
  for (const auto& [id, intent] : intents_) {
    if (intent.dirty || intent.plan == nullptr) ++n;
  }
  return n;
}

PlanDelta PlanService::commit() {
  TLK_SPAN("planner.commit");
  const auto t0 = std::chrono::steady_clock::now();
  PlanDelta delta;
  delta.removed = std::move(pending_removed_);
  pending_removed_.clear();

  std::vector<std::pair<InvariantId, Intent*>> dirty;
  for (auto& [id, intent] : intents_) {
    if (!opts_.incremental || intent.dirty || intent.plan == nullptr) {
      dirty.emplace_back(id, &intent);
    } else {
      ++delta.reused;
    }
  }

  const auto dfa = cache_.builder();
  core::Executor& exec =
      pool_ != nullptr ? *pool_ : core::serial_executor();

  // Phase 1 (serial): packet-space coverage validation — the BDD manager
  // backing the packet space is single-threaded. Also warms the DfaCache
  // so phase-2 workers mostly hit.
  std::vector<std::vector<std::string>> coverage(dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    coverage[i] =
        spec::validate_coverage(dirty[i].second->inv, *topo_, *space_, dfa);
  }

  // Phase 2 (parallel): structural validation + DPVNet construction, one
  // job per dirty intent; each construction fans its scene enumerations
  // back onto the same pool (nested run_all).
  struct Job {
    std::vector<std::string> problems;
    std::shared_ptr<InvariantPlan> plan;
    std::unordered_set<LinkId> support;
  };
  std::vector<Job> jobs(dirty.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      tasks.emplace_back([this, i, &dirty, &jobs, &exec, dfa] {
        const auto tj = std::chrono::steady_clock::now();
        const InvariantId id = dirty[i].first;
        const spec::Invariant& inv = dirty[i].second->inv;
        Job& job = jobs[i];
        job.problems = spec::validate_structure(inv, *topo_, dfa);
        if (!job.problems.empty()) return;

        auto plan = std::make_shared<InvariantPlan>();
        plan->id = id;
        plan->inv = inv;
        plan->scenes = dpvnet::expand_scenes(*topo_, inv.faults,
                                             opts_.planner.build.max_scenes);
        dpvnet::BuildOptions build = opts_.planner.build;
        build.executor = &exec;
        build.dfa_builder = dfa;
        auto dag = std::make_shared<dpvnet::DpvNet>(
            dpvnet::build_dpvnet(*topo_, inv,
                                 overlaid_scenes(plan->scenes, overlay_),
                                 build, &plan->stats));
        plan->static_warnings = static_warnings(*dag, *topo_);
        job.support = dag_support(*dag);
        plan->dag = std::move(dag);
        plan->plan_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - tj)
                                 .count();
        job.plan = std::move(plan);
      });
    }
    exec.run_all(std::move(tasks));
  }

  // Phase 3 (serial, id order): abort on the first invalid invariant,
  // else publish plans and refresh the dependency index.
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    if (jobs[i].problems.empty() && coverage[i].empty()) continue;
    std::string msg =
        "invariant '" + dirty[i].second->inv.name + "' invalid:";
    for (const auto& p : jobs[i].problems) msg += "\n  - " + p;
    for (const auto& p : coverage[i]) msg += "\n  - " + p;
    throw SpecError(msg);
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const InvariantId id = dirty[i].first;
    Intent& intent = *dirty[i].second;
    index_remove(id, intent);
    intent.plan = std::move(jobs[i].plan);
    intent.support = std::move(jobs[i].support);
    intent.overlay_at_plan = overlay_;
    intent.dirty = false;
    index_add(id, intent);
    delta.replanned.push_back(id);
  }

  obs::Registry::instance()
      .counter("planner_commit_replanned")
      .add(delta.replanned.size());
  obs::Registry::instance()
      .counter("planner_commit_reused")
      .add(delta.reused);
  delta.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return delta;
}

const InvariantPlan* PlanService::plan(InvariantId id) const {
  const auto it = intents_.find(id);
  if (it == intents_.end()) return nullptr;
  return it->second.plan.get();
}

std::vector<const InvariantPlan*> PlanService::plans() const {
  std::vector<const InvariantPlan*> out;
  out.reserve(intents_.size());
  for (const auto& [id, intent] : intents_) {
    if (intent.plan != nullptr) out.push_back(intent.plan.get());
  }
  return out;
}

std::uint64_t PlanService::digest() const { return plan_digest(plans()); }

}  // namespace tulkun::planner
