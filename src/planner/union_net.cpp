#include "planner/union_net.hpp"

#include <algorithm>

namespace tulkun::planner {

const UnionDpvNet::PlanRef& UnionDpvNet::add(const InvariantPlan& plan) {
  const dpvnet::DpvNet& dag = *plan.dag;
  constexpr std::uint32_t kNone = ~0U;
  std::vector<std::uint32_t> global(dag.node_count(), kNone);

  PlanRef ref;
  ref.id = plan.id;
  ref.nodes_total = dag.node_count();

  // reverse_topological lists every node after its downstream neighbors,
  // so children are interned before their parents reference them.
  for (const NodeId id : dag.reverse_topological()) {
    const auto& n = dag.node(id);
    Key key;
    key.dev = n.dev;
    key.accept = n.accept;
    key.down.reserve(n.down.size());
    for (const auto& e : n.down) {
      key.down.emplace_back(global[e.to], e.scenes);
    }
    std::sort(key.down.begin(), key.down.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const auto it = interned_.find(key);
    if (it != interned_.end()) {
      global[id] = it->second;
      continue;
    }
    const auto gid = static_cast<std::uint32_t>(nodes_.size());
    Node node;
    node.dev = key.dev;
    node.accept = key.accept;
    node.down = key.down;
    nodes_.push_back(std::move(node));
    interned_.emplace(std::move(key), gid);
    global[id] = gid;
    ++ref.nodes_new;
  }
  total_nodes_ += dag.node_count();

  for (const auto& [ingress, src] : dag.sources()) {
    ref.sources.emplace_back(ingress,
                             src == kNoNode ? kNone : global[src]);
  }

  // Per-device slices: the plan's node ids grouped by device.
  std::map<DeviceId, Slice> slices;
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    auto [it, inserted] = slices.try_emplace(dag.node(id).dev);
    if (inserted) {
      it->second.invariant = plan.id;
    }
    it->second.nodes.push_back(global[id]);
  }
  for (auto& [dev, slice] : slices) {
    slice.is_ingress =
        std::find(plan.inv.ingress_set.begin(), plan.inv.ingress_set.end(),
                  dev) != plan.inv.ingress_set.end();
    std::sort(slice.nodes.begin(), slice.nodes.end());
    by_device_[dev].push_back(std::move(slice));
  }

  refs_.push_back(std::move(ref));
  return refs_.back();
}

std::vector<UnionDpvNet::DeviceTable> UnionDpvNet::device_tables() const {
  std::vector<DeviceTable> out;
  out.reserve(by_device_.size());
  for (const auto& [dev, slices] : by_device_) {
    DeviceTable table;
    table.device = dev;
    table.slices = slices;
    for (const auto& s : slices) {
      table.unique_nodes.insert(table.unique_nodes.end(), s.nodes.begin(),
                                s.nodes.end());
    }
    std::sort(table.unique_nodes.begin(), table.unique_nodes.end());
    table.unique_nodes.erase(
        std::unique(table.unique_nodes.begin(), table.unique_nodes.end()),
        table.unique_nodes.end());
    out.push_back(std::move(table));
  }
  return out;
}

}  // namespace tulkun::planner
