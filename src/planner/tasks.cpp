#include "planner/planner.hpp"

namespace tulkun::planner {

std::vector<DeviceTask> Planner::decompose(const dpvnet::DpvNet& dag,
                                           const spec::Invariant& inv) {
  std::vector<DeviceTask> tasks(dag.topology().device_count());
  for (DeviceId d = 0; d < tasks.size(); ++d) tasks[d].device = d;

  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    DeviceTask::NodeTask nt;
    nt.node = id;
    nt.accepting = n.accepting();
    for (const auto& e : n.down) {
      nt.downstream.emplace_back(e.to, dag.node(e.to).dev);
    }
    for (const NodeId up : n.up) {
      nt.upstream.emplace_back(up, dag.node(up).dev);
    }
    tasks[n.dev].nodes.push_back(std::move(nt));
  }
  for (const DeviceId ing : inv.ingress_set) {
    if (ing < tasks.size()) tasks[ing].is_ingress = true;
  }
  std::erase_if(tasks, [](const DeviceTask& t) {
    return t.nodes.empty() && !t.is_ingress;
  });
  return tasks;
}

std::string Planner::describe_tasks(const dpvnet::DpvNet& dag,
                                    const std::vector<DeviceTask>& tasks) {
  std::string out;
  for (const auto& t : tasks) {
    out += "device " + dag.topology().name(t.device);
    if (t.is_ingress) out += " (ingress)";
    out += ":\n";
    for (const auto& nt : t.nodes) {
      out += "  node " + dag.label(nt.node);
      if (nt.accepting) out += " [dest]";
      out += "  down:{";
      for (std::size_t i = 0; i < nt.downstream.size(); ++i) {
        if (i > 0) out += ",";
        out += dag.label(nt.downstream[i].first);
      }
      out += "}  up:{";
      for (std::size_t i = 0; i < nt.upstream.size(); ++i) {
        if (i > 0) out += ",";
        out += dag.label(nt.upstream[i].first);
      }
      out += "}\n";
    }
  }
  return out;
}

}  // namespace tulkun::planner
