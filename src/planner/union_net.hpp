// UnionDpvNet (multi-tenant sharing): one global node store for the DAGs
// of thousands of concurrent invariants.
//
// Data-center intent sets are highly templated — per-tenant reachability
// to the same service prefix, waypoint chains stamped out per pod — so
// structurally equal DPVNet subgraphs recur across invariants. UnionDpvNet
// interns plan DAGs bottom-up into a shared arena keyed on
// (device, acceptance masks, (child, scene-mask) edges), the same
// canonical key DAWG compaction uses within one plan, extended across
// plans. Each plan keeps only a slice: its sources and per-device node-id
// lists referencing shared storage.
//
// Distribution is intent-sliced: a device's table holds each unique
// shared node once plus one slim slice per invariant touching the device,
// so per-device payload scales with the structure the device actually
// participates in, not with the total invariant count.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "planner/planner.hpp"

namespace tulkun::planner {

class UnionDpvNet {
 public:
  /// One shared node (the union-DAG analogue of dpvnet::DpvNode).
  struct Node {
    DeviceId dev = kNoDevice;
    std::vector<dpvnet::SceneMask> accept;
    /// Downstream edges: (global node id, scenes), sorted by id.
    std::vector<std::pair<std::uint32_t, dpvnet::SceneMask>> down;
  };

  /// One invariant's view into the shared store.
  struct PlanRef {
    InvariantId id = 0;
    /// Ingress -> global source node (kNoNode sentinel stays ~0u).
    std::vector<std::pair<DeviceId, std::uint32_t>> sources;
    std::size_t nodes_total = 0;  // nodes in the plan's own DAG
    std::size_t nodes_new = 0;    // nodes this plan added to the store
  };

  /// A device's table: shared nodes once + a slim slice per invariant.
  struct Slice {
    InvariantId invariant = 0;
    std::vector<std::uint32_t> nodes;  // global ids mapped to this device
    bool is_ingress = false;
  };
  struct DeviceTable {
    DeviceId device = kNoDevice;
    std::vector<std::uint32_t> unique_nodes;  // sorted, deduplicated
    std::vector<Slice> slices;                // in add order
  };

  /// Interns `plan`'s DAG (children before parents) and records its slice.
  const PlanRef& add(const InvariantPlan& plan);

  [[nodiscard]] const Node& node(std::uint32_t id) const {
    return nodes_[id];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Sum of per-plan DAG sizes; node_count()/total is the sharing ratio.
  [[nodiscard]] std::size_t total_nodes() const { return total_nodes_; }
  [[nodiscard]] std::size_t plan_count() const { return refs_.size(); }
  [[nodiscard]] const std::vector<PlanRef>& refs() const { return refs_; }

  /// Per-device distribution tables, ascending device id.
  [[nodiscard]] std::vector<DeviceTable> device_tables() const;

 private:
  struct Key {
    DeviceId dev = kNoDevice;
    std::vector<dpvnet::SceneMask> accept;
    std::vector<std::pair<std::uint32_t, dpvnet::SceneMask>> down;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t seed = k.dev;
      for (const auto& m : k.accept) hash_combine(seed, m.hash());
      for (const auto& [to, m] : k.down) {
        hash_combine(seed, to);
        hash_combine(seed, m.hash());
      }
      return seed;
    }
  };

  std::vector<Node> nodes_;
  std::unordered_map<Key, std::uint32_t, KeyHash> interned_;
  std::vector<PlanRef> refs_;
  std::size_t total_nodes_ = 0;
  /// device -> slices of every plan touching it (in add order).
  std::map<DeviceId, std::vector<Slice>> by_device_;
};

}  // namespace tulkun::planner
