// Memoized regex compilation: canonical regex AST -> minimized DFA.
//
// Thousands of concurrent intents routinely share path shapes (".* D" per
// destination, waypoint templates), and the same regex is compiled up to
// three times per plan today (validation, prepare_atoms, multipath sides).
// The cache keys on a canonical serialization of the AST — not on
// regex_text, which is advisory — and hands out shared immutable DFAs.
// Thread-safe: planning workers hit it concurrently; a racing miss builds
// twice and first-insert wins (the DFA is a pure function of the AST).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "regex/dfa.hpp"
#include "spec/ast.hpp"

namespace tulkun::planner {

class DfaCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Minimized DFA of `ast` (determinize + minimize), memoized.
  [[nodiscard]] std::shared_ptr<const regex::Dfa> minimized(
      const regex::Ast& ast);

  /// Adapter matching dpvnet::BuildOptions::dfa_builder /
  /// spec::DfaFn: returns a copy of the cached minimized DFA.
  [[nodiscard]] std::function<regex::Dfa(const spec::PathExpr&)> builder();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;

  /// Canonical serialization of a regex AST (structure + symbol sets);
  /// equal languages may key differently, equal ASTs never do.
  [[nodiscard]] static std::string canonical_key(const regex::Ast& ast);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const regex::Dfa>> map_;
  Stats stats_;
};

}  // namespace tulkun::planner
