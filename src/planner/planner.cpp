#include "planner/planner.hpp"

#include <chrono>

#include "obs/trace.hpp"
#include "spec/check.hpp"

namespace tulkun::planner {

InvariantPlan Planner::plan(spec::Invariant inv) const {
  TLK_SPAN("planner.plan");
  const auto t0 = std::chrono::steady_clock::now();
  spec::ensure_valid(inv, *topo_, *space_, opts_.build.dfa_builder);

  InvariantPlan out;
  out.id = next_id_++;
  out.scenes = dpvnet::expand_scenes(*topo_, inv.faults, opts_.build.max_scenes);
  auto dag = std::make_shared<dpvnet::DpvNet>(
      dpvnet::build_dpvnet(*topo_, inv, out.scenes, opts_.build, &out.stats));

  // Static diagnostics: ingresses with no valid path in the base scene.
  for (const auto& [ingress, src] : dag->sources()) {
    if (src == kNoNode || !dag->node(src).scenes.test(0)) {
      out.static_warnings.push_back(
          "ingress " + topo_->name(ingress) +
          " has no valid path in the failure-free topology");
    }
  }
  for (const auto& [scene, ingress] : dag->intolerable) {
    if (scene == 0) continue;  // already covered above
    out.static_warnings.push_back(
        "fault scene #" + std::to_string(scene) +
        " is intolerable for ingress " + topo_->name(ingress));
  }

  out.inv = std::move(inv);
  out.dag = std::move(dag);
  out.plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

MultiPathPlan Planner::plan_multipath(spec::MultiPathInvariant inv) const {
  if (inv.comparator == kNoDevice) inv.comparator = inv.a.ingress;

  const auto build_side =
      [&](const spec::PathQuery& q) -> std::shared_ptr<const dpvnet::DpvNet> {
    // Wrap the query as a single-atom exist invariant so the standard
    // construction (and its validation) applies.
    spec::Invariant side;
    side.name = inv.name;
    side.packet_space = q.space;
    side.ingress_set = {q.ingress};
    side.behavior = spec::Behavior::exist(
        spec::CountExpr{spec::CountExpr::Cmp::Ge, 1}, q.path);
    spec::ensure_valid(side, *topo_, *space_);
    auto dag = std::make_shared<dpvnet::DpvNet>(
        dpvnet::build_dpvnet(*topo_, side, opts_.build));
    for (const auto& [ingress, src] : dag->sources()) {
      if (src == kNoNode) {
        throw Error("multi-path invariant '" + inv.name + "': ingress " +
                    topo_->name(ingress) + " has no valid path");
      }
    }
    return dag;
  };

  MultiPathPlan out;
  out.id = next_id_++;
  out.dag_a = build_side(inv.a);
  out.dag_b = build_side(inv.b);
  out.inv = std::move(inv);
  return out;
}

}  // namespace tulkun::planner
