// The verification planner (§4): validates invariants, computes DPVNets,
// and decomposes verification into per-device counting tasks.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "dpvnet/build.hpp"
#include "dvm/engine.hpp"
#include "spec/ast.hpp"
#include "spec/multipath.hpp"

namespace tulkun::planner {

struct PlannerOptions {
  dpvnet::BuildOptions build;
  dvm::EngineConfig engine;
};

/// Everything the planner derives for one invariant.
struct InvariantPlan {
  InvariantId id = 0;
  spec::Invariant inv;
  std::shared_ptr<const dpvnet::DpvNet> dag;
  std::vector<spec::FaultScene> scenes;  // expanded; index 0 = no failure
  dpvnet::BuildStats stats;
  /// Problems detectable before any data plane exists, e.g. an ingress with
  /// no valid path at all (an exist>=1 invariant can then never hold).
  std::vector<std::string> static_warnings;
  double plan_seconds = 0.0;  // wall time spent planning
};

/// The counting task shipped to one device (§4.2: "the planner sends u.dev
/// the task of u and its lists of downstream and upstream neighbors").
struct DeviceTask {
  DeviceId device = kNoDevice;
  struct NodeTask {
    NodeId node = kNoNode;
    std::vector<std::pair<NodeId, DeviceId>> downstream;  // (node, device)
    std::vector<std::pair<NodeId, DeviceId>> upstream;
    bool accepting = false;
  };
  std::vector<NodeTask> nodes;
  bool is_ingress = false;
};

/// Plan for a §7 multi-path comparison: one DPVNet per side.
struct MultiPathPlan {
  InvariantId id = 0;
  spec::MultiPathInvariant inv;
  std::shared_ptr<const dpvnet::DpvNet> dag_a;
  std::shared_ptr<const dpvnet::DpvNet> dag_b;
};

class Planner {
 public:
  Planner(const topo::Topology& topo, packet::PacketSpace& space,
          PlannerOptions opts = {})
      : topo_(&topo), space_(&space), opts_(opts) {}

  /// Validates `inv` (spec::ensure_valid) and builds its plan.
  [[nodiscard]] InvariantPlan plan(spec::Invariant inv) const;

  /// Builds the two DPVNets of a multi-path comparison (§7). Throws Error
  /// for unbounded path expressions or an ingress with no valid path.
  [[nodiscard]] MultiPathPlan plan_multipath(
      spec::MultiPathInvariant inv) const;

  /// Task decomposition: one DeviceTask per participating device.
  [[nodiscard]] static std::vector<DeviceTask> decompose(
      const dpvnet::DpvNet& dag, const spec::Invariant& inv);

  /// Human-readable task sheet (used by examples and docs).
  [[nodiscard]] static std::string describe_tasks(
      const dpvnet::DpvNet& dag, const std::vector<DeviceTask>& tasks);

  [[nodiscard]] const PlannerOptions& options() const { return opts_; }

 private:
  const topo::Topology* topo_;
  packet::PacketSpace* space_;
  PlannerOptions opts_;
  // Atomic: PlanService workers allocate ids from one shared Planner.
  mutable std::atomic<InvariantId> next_id_{1};
};

}  // namespace tulkun::planner
