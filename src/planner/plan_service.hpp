// PlanService: the incremental, parallel, multi-tenant planner front end.
//
// The batch Planner recomputes every invariant from scratch on any change;
// at data-center intent counts (thousands of concurrent invariants) that
// makes a single link flap cost a full replan. PlanService keeps the
// intent set resident and turns planning into a transaction:
//
//   add_invariant / remove_invariant   edit the intent set,
//   set_link_state                     edits a link-state overlay,
//   commit()                           replans exactly the dirty subset.
//
// Incremental: a dependency index maps each topology link to the plans
// whose valid paths traverse it (the plan's "support"), so a link-down
// dirties only the touching intents; a link-up dirties only intents that
// were planned while that link was overlaid down. Regex work is shared
// through a DfaCache keyed on canonical ASTs.
//
// Parallel: dirty intents are planned concurrently on a WorkerPool, and
// each DPVNet construction additionally fans its per-scene enumerations
// onto the same pool (nested run_all is deadlock-free: callers help). The
// packet-space coverage check runs serially first — the BDD manager is
// single-threaded — via the spec::validate_structure/validate_coverage
// split.
//
// Determinism: ids are assigned in add order, construction merges results
// in serial order (see build_dpvnet), and digest() covers the
// device-visible payload, so serial, parallel, and incremental commits of
// the same logical state produce byte-identical plans.
//
// Error handling: commit() is atomic — an invalid invariant aborts the
// whole commit with SpecError (structural problems listed before coverage
// problems) and publishes nothing.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "planner/dfa_cache.hpp"
#include "planner/planner.hpp"
#include "planner/worker_pool.hpp"

namespace tulkun::planner {

struct PlanServiceOptions {
  PlannerOptions planner;
  /// Total planning concurrency including the committing thread
  /// (1 = serial; 0 = one per hardware thread).
  std::size_t workers = 1;
  /// When false every commit replans the full intent set (ablation /
  /// digest-equivalence baseline).
  bool incremental = true;
};

/// What one commit changed.
struct PlanDelta {
  std::vector<InvariantId> replanned;  // built or rebuilt this commit
  std::vector<InvariantId> removed;    // retired since the last commit
  std::size_t reused = 0;              // intents kept without replanning
  double seconds = 0.0;                // commit wall time
};

class PlanService {
 public:
  PlanService(const topo::Topology& topo, packet::PacketSpace& space,
              PlanServiceOptions opts = {});

  /// Registers an invariant; returns its id (assigned in add order).
  /// Planning is deferred to commit().
  InvariantId add_invariant(spec::Invariant inv);

  /// Retires an invariant; false when the id is unknown.
  bool remove_invariant(InvariantId id);

  /// Marks a topology link down (up = false) or back up for subsequent
  /// commits. Downed links are excluded from every invariant's valid
  /// paths, as if failed in every fault scene. Dirties only dependent
  /// intents (via the support index).
  void set_link_state(LinkId link, bool up);
  [[nodiscard]] bool link_is_up(LinkId link) const;

  /// Replans the dirty subset (or everything when incremental is off).
  PlanDelta commit();

  /// Published plan of `id` (null before its first commit / unknown id).
  [[nodiscard]] const InvariantPlan* plan(InvariantId id) const;

  /// All published plans in ascending id order.
  [[nodiscard]] std::vector<const InvariantPlan*> plans() const;

  /// Canonical digest over the published plans (see plan_digest.hpp).
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] DfaCache& dfa_cache() { return cache_; }
  [[nodiscard]] std::size_t intent_count() const { return intents_.size(); }
  [[nodiscard]] std::size_t dirty_count() const;
  [[nodiscard]] const PlanServiceOptions& options() const { return opts_; }

 private:
  struct Intent {
    spec::Invariant inv;
    std::shared_ptr<const InvariantPlan> plan;     // null until committed
    bool dirty = true;
    std::unordered_set<LinkId> support;            // links on valid paths
    std::unordered_set<LinkId> overlay_at_plan;    // overlay when planned
  };

  void index_add(InvariantId id, const Intent& intent);
  void index_remove(InvariantId id, const Intent& intent);

  const topo::Topology* topo_;
  packet::PacketSpace* space_;
  PlanServiceOptions opts_;
  DfaCache cache_;
  std::unique_ptr<WorkerPool> pool_;  // null when workers == 1
  std::map<InvariantId, Intent> intents_;
  std::unordered_set<LinkId> overlay_;  // currently-down links (canonical)
  /// Dependency index: link -> intents whose plan depends on it.
  std::unordered_map<LinkId, std::unordered_set<InvariantId>> support_index_;
  std::unordered_map<LinkId, std::unordered_set<InvariantId>> overlay_index_;
  std::vector<InvariantId> pending_removed_;
  InvariantId next_id_ = 1;
};

}  // namespace tulkun::planner
