// Fixed-size planning worker pool (core::Executor implementation).
//
// run_all callers *participate*: the submitting thread claims and runs
// queued tasks alongside the pool threads until its own batch completes.
// That makes nested run_all calls (an invariant-level job fanning its
// fault scenes back out onto the same pool) deadlock-free on a fixed pool:
// a blocked parent is never idle while claimable work exists, so forward
// progress only requires one runnable thread.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace tulkun::planner {

class WorkerPool final : public core::Executor {
 public:
  /// `workers` is the total planning concurrency including the caller
  /// (workers - 1 pool threads are spawned). 0 = one per hardware thread;
  /// 1 = fully inline (no threads, serial reference behavior).
  explicit WorkerPool(std::size_t workers = 0);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return threads_.size() + 1;
  }

  void run_all(std::vector<std::function<void()>> tasks) override;

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::size_t next = 0;        // next unclaimed task index
    std::size_t unfinished = 0;  // claimed-or-unclaimed tasks still pending
    std::size_t error_index = ~std::size_t{0};
    std::exception_ptr error;
  };

  /// Claims one task from the oldest batch with unclaimed work and runs it
  /// (lock dropped during execution). Returns false when nothing was
  /// claimable.
  bool run_one(std::unique_lock<std::mutex>& lk);
  void worker();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: claimable work or stop
  std::condition_variable done_cv_;  // callers: task completions / new work
  std::vector<std::shared_ptr<Batch>> active_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tulkun::planner
