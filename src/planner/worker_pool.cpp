#include "planner/worker_pool.hpp"

#include <algorithm>

namespace tulkun::planner {

WorkerPool::WorkerPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool WorkerPool::run_one(std::unique_lock<std::mutex>& lk) {
  for (std::size_t bi = 0; bi < active_.size(); ++bi) {
    const auto batch = active_[bi];
    if (batch->next >= batch->tasks.size()) continue;
    const std::size_t idx = batch->next++;
    if (batch->next >= batch->tasks.size()) {
      // Fully claimed: stop offering it (completions still tracked).
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(bi));
    }
    lk.unlock();
    std::exception_ptr err;
    try {
      batch->tasks[idx]();
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && idx < batch->error_index) {
      batch->error_index = idx;
      batch->error = err;
    }
    if (--batch->unfinished == 0) done_cv_.notify_all();
    return true;
  }
  return false;
}

void WorkerPool::worker() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (run_one(lk)) continue;
    if (stop_) return;
    work_cv_.wait(lk);
  }
}

void WorkerPool::run_all(std::vector<std::function<void()>> tasks) {
  if (threads_.empty() || tasks.size() <= 1) {
    for (auto& t : tasks) t();
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->unfinished = tasks.size();
  batch->tasks = std::move(tasks);

  std::unique_lock<std::mutex> lk(mu_);
  active_.push_back(batch);
  work_cv_.notify_all();
  done_cv_.notify_all();  // waiting callers may claim from this batch too
  // Participate until this batch drains; helping with *any* claimable
  // work (including batches nested under our own tasks) keeps a fixed
  // pool deadlock-free.
  while (batch->unfinished > 0) {
    if (run_one(lk)) continue;
    done_cv_.wait(lk, [&] {
      if (batch->unfinished == 0) return true;
      return std::any_of(active_.begin(), active_.end(), [](const auto& b) {
        return b->next < b->tasks.size();
      });
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace tulkun::planner
