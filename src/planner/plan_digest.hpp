// Canonical plan digests: equality certificates for the planner paths.
//
// The parallel and incremental planners both promise byte-identical output
// to the serial batch walk; the digest is how tests (and operators) check
// that promise cheaply. It covers exactly the device-visible payload of a
// plan — DAG structure, scene/acceptance masks, sources, intolerable
// pairs, static warnings — and excludes wall times, build statistics, and
// the fault scenes' raw failed-link lists (an overlaid link used by no
// valid path may appear in scene bookkeeping without changing anything a
// device receives).
#pragma once

#include <cstdint>

#include "planner/planner.hpp"

namespace tulkun::planner {

/// FNV-1a digest of one plan's device-visible payload.
[[nodiscard]] std::uint64_t plan_digest(const InvariantPlan& plan);

/// Combined digest over plans, order-sensitive (callers pass id order).
[[nodiscard]] std::uint64_t plan_digest(
    const std::vector<const InvariantPlan*>& plans);

}  // namespace tulkun::planner
