#include "planner/plan_digest.hpp"

namespace tulkun::planner {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, const std::string& s) {
  mix(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, const dpvnet::SceneMask& m, std::size_t n_scenes) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n_scenes; ++i) {
    if (m.test(i)) word |= 1ULL << (i % 64);
    if (i % 64 == 63 || i + 1 == n_scenes) {
      mix(h, word);
      word = 0;
    }
  }
}

}  // namespace

std::uint64_t plan_digest(const InvariantPlan& plan) {
  std::uint64_t h = kFnvOffset;
  mix(h, plan.id);
  mix(h, plan.inv.name);
  const dpvnet::DpvNet& dag = *plan.dag;
  const std::size_t n_scenes = dag.scene_count();
  mix(h, dag.arity());
  mix(h, n_scenes);
  mix(h, dag.node_count());
  for (NodeId id = 0; id < dag.node_count(); ++id) {
    const auto& n = dag.node(id);
    mix(h, n.dev);
    mix(h, n.scenes, n_scenes);
    mix(h, n.accept.size());
    for (const auto& m : n.accept) mix(h, m, n_scenes);
    mix(h, n.down.size());
    for (const auto& e : n.down) {
      mix(h, e.to);
      mix(h, e.scenes, n_scenes);
    }
  }
  mix(h, dag.sources().size());
  for (const auto& [ingress, node] : dag.sources()) {
    mix(h, ingress);
    mix(h, node);
  }
  mix(h, dag.intolerable.size());
  for (const auto& [scene, ingress] : dag.intolerable) {
    mix(h, scene);
    mix(h, ingress);
  }
  mix(h, plan.static_warnings.size());
  for (const auto& w : plan.static_warnings) mix(h, w);
  return h;
}

std::uint64_t plan_digest(const std::vector<const InvariantPlan*>& plans) {
  std::uint64_t h = kFnvOffset;
  mix(h, plans.size());
  for (const auto* p : plans) mix(h, plan_digest(*p));
  return h;
}

}  // namespace tulkun::planner
