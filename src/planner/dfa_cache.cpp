#include "planner/dfa_cache.hpp"

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "regex/nfa.hpp"

namespace tulkun::planner {

namespace {

void append_key(const regex::Ast& ast, std::string& out) {
  using regex::AstKind;
  switch (ast.kind) {
    case AstKind::Symbols:
      out += ast.symbols.negated ? "[^" : "[";
      for (const auto s : ast.symbols.syms) {
        out += std::to_string(s);
        out += ' ';
      }
      out += ']';
      return;
    case AstKind::Epsilon:
      out += 'e';
      return;
    case AstKind::Concat:
      out += "C(";
      break;
    case AstKind::Union:
      out += "U(";
      break;
    case AstKind::Star:
      out += "*(";
      break;
    case AstKind::Plus:
      out += "+(";
      break;
    case AstKind::Optional:
      out += "?(";
      break;
  }
  for (const auto& c : ast.children) append_key(c, out);
  out += ')';
}

}  // namespace

std::string DfaCache::canonical_key(const regex::Ast& ast) {
  std::string out;
  out.reserve(64);
  append_key(ast, out);
  return out;
}

std::shared_ptr<const regex::Dfa> DfaCache::minimized(const regex::Ast& ast) {
  auto key = canonical_key(ast);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      obs::Registry::instance().counter("planner_dfa_cache_hits").add();
      return it->second;
    }
    ++stats_.misses;
    obs::Registry::instance().counter("planner_dfa_cache_misses").add();
  }
  // Build outside the lock: a racing miss compiles twice, first insert
  // wins, and both results are identical (pure function of the AST).
  std::shared_ptr<const regex::Dfa> built;
  {
    TLK_SPAN("planner.dfa");
    auto dfa = regex::Dfa::determinize(regex::build_nfa(ast));
    TLK_SPAN("planner.minimize");
    built = std::make_shared<const regex::Dfa>(dfa.minimize());
  }
  std::lock_guard<std::mutex> lk(mu_);
  return map_.try_emplace(std::move(key), std::move(built)).first->second;
}

std::function<regex::Dfa(const spec::PathExpr&)> DfaCache::builder() {
  return [this](const spec::PathExpr& pe) { return *minimized(pe.ast); };
}

DfaCache::Stats DfaCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t DfaCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

}  // namespace tulkun::planner
