#include "pred/atom_set.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "core/error.hpp"

namespace tulkun::pred {

namespace {

constexpr std::uint64_t kAddrEnd = 1ull << 32;

std::atomic<bool> g_atom_path_enabled{true};
std::atomic<bool> g_lockstep_check{false};

struct GlobalCounters {
  std::atomic<std::uint64_t> atom_hits{0};
  std::atomic<std::uint64_t> bdd_fallbacks{0};
  std::atomic<std::uint64_t> demotions{0};
  std::atomic<std::uint64_t> promotions{0};
  std::atomic<std::uint64_t> promote_failures{0};
  std::atomic<std::uint64_t> materializations{0};
  std::atomic<std::uint64_t> atom_table_size{0};
  std::atomic<std::uint64_t> arena_bytes{0};
};

GlobalCounters& counters() {
  static GlobalCounters c;
  return c;
}

/// splitmix64 finalizer: the usual cheap, well-mixed integer hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash_intervals(std::span<const Interval> ivs) {
  std::uint64_t h = mix(ivs.size());
  for (const auto& iv : ivs) {
    h = mix(h ^ iv.lo);
    h = mix(h ^ iv.hi);
  }
  return h;
}

bool equal_intervals(std::span<const Interval> a,
                     std::span<const Interval> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::vector<Interval> unite_intervals(std::span<const Interval> a,
                                      std::span<const Interval> b) {
  std::vector<Interval> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  const auto push = [&out](Interval iv) {
    if (!out.empty() && out.back().hi >= iv.lo) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  };
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].lo <= b[j].lo)) {
      push(a[i++]);
    } else {
      push(b[j++]);
    }
  }
  return out;
}

std::vector<Interval> intersect_intervals(std::span<const Interval> a,
                                          std::span<const Interval> b) {
  std::vector<Interval> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t lo = std::max(a[i].lo, b[j].lo);
    const std::uint64_t hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi <= b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<Interval> subtract_intervals(std::span<const Interval> a,
                                         std::span<const Interval> b) {
  std::vector<Interval> out;
  std::size_t j = 0;
  for (const auto& iv : a) {
    std::uint64_t lo = iv.lo;
    while (j < b.size() && b[j].hi <= lo) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].lo < iv.hi) {
      if (b[k].lo > lo) out.push_back({lo, b[k].lo});
      lo = std::max(lo, b[k].hi);
      if (lo >= iv.hi) break;
      ++k;
    }
    if (lo < iv.hi) out.push_back({lo, iv.hi});
  }
  return out;
}

std::vector<Interval> complement_intervals(std::span<const Interval> a) {
  std::vector<Interval> out;
  std::uint64_t lo = 0;
  for (const auto& iv : a) {
    if (iv.lo > lo) out.push_back({lo, iv.lo});
    lo = iv.hi;
  }
  if (lo < kAddrEnd) out.push_back({lo, kAddrEnd});
  return out;
}

/// Single-path ROBDD of "top prefix_len dst bits == value", LSB upward so
/// each mk() has its children ready (same shape as PacketSpace::exact_bits).
bdd::NodeRef exact_dst_bits(bdd::Manager& mgr, std::uint32_t prefix_len,
                            std::uint64_t value) {
  bdd::NodeRef acc = bdd::kTrue;
  for (std::uint32_t i = 0; i < prefix_len; ++i) {
    const std::uint32_t var =
        packet::Layout::kDstIpOffset + prefix_len - 1 - i;
    const bool bit = (value >> i) & 1ull;
    acc = bit ? mgr.mk(var, bdd::kFalse, acc)
              : mgr.mk(var, acc, bdd::kFalse);
  }
  return acc;
}

/// Canonical ROBDD of a canonical interval list: each interval decomposes
/// into maximal aligned power-of-two blocks (prefixes) OR'd together.
bdd::NodeRef build_bdd(bdd::Manager& mgr, std::span<const Interval> ivs) {
  bdd::NodeRef acc = bdd::kFalse;
  for (const auto& iv : ivs) {
    std::uint64_t cur = iv.lo;
    while (cur < iv.hi) {
      std::uint32_t block_bits = 0;
      while (block_bits < 32) {
        const std::uint64_t size = 1ull << (block_bits + 1);
        if ((cur & (size - 1)) != 0 || cur + size > iv.hi) break;
        ++block_bits;
      }
      acc = mgr.lor(
          acc, exact_dst_bits(mgr, 32 - block_bits, cur >> block_bits));
      cur += 1ull << block_bits;
    }
  }
  return acc;
}

/// Total recursion-step bail-out for promote (defense in depth on top of
/// the interval cap; see the path-count argument in promote()).
constexpr std::size_t kMaxPromoteSteps = 1ull << 20;

/// Collects the dst-address intervals of `r` in ascending order. `base` is
/// the address with all decided bits set; `bit` is the next (MSB-first)
/// dst bit. Returns false when the function depends on a non-dst variable
/// or the output exceeds the interval cap.
bool extract_intervals(const bdd::Manager& mgr, bdd::NodeRef r,
                       std::uint64_t base, std::uint32_t bit,
                       std::vector<Interval>& out, std::size_t& steps) {
  if (++steps > kMaxPromoteSteps) return false;
  if (r == bdd::kFalse) return true;
  if (r == bdd::kTrue) {
    const std::uint64_t size = 1ull << (32 - bit);
    if (!out.empty() && out.back().hi == base) {
      out.back().hi = base + size;
    } else {
      if (out.size() >= AtomStore::kMaxPromoteIntervals) return false;
      out.push_back({base, base + size});
    }
    return true;
  }
  const bdd::Node& n = mgr.node(r);
  if (n.var >= packet::Layout::kDstIpOffset + packet::Layout::kDstIpWidth) {
    return false;  // constrained on src/port/proto: genuinely multi-field
  }
  const std::uint64_t half = 1ull << (31 - bit);
  if (n.var > bit) {
    // Bit `bit` is free: both half-spaces see the same function.
    return extract_intervals(mgr, r, base, bit + 1, out, steps) &&
           extract_intervals(mgr, r, base + half, bit + 1, out, steps);
  }
  return extract_intervals(mgr, n.low, base, bit + 1, out, steps) &&
         extract_intervals(mgr, n.high, base + half, bit + 1, out, steps);
}

}  // namespace

void set_atom_path_enabled(bool enabled) {
  g_atom_path_enabled.store(enabled, std::memory_order_relaxed);
}

bool atom_path_enabled() {
  return g_atom_path_enabled.load(std::memory_order_relaxed);
}

void set_atom_lockstep_check(bool enabled) {
  g_lockstep_check.store(enabled, std::memory_order_relaxed);
}

bool atom_lockstep_check() {
  return g_lockstep_check.load(std::memory_order_relaxed);
}

bool apply_atom_env_overrides() {
  // Latch-once: only the first call reads the environment. Later calls
  // (e.g. Harness construction inside a bench main) are no-ops, so an
  // explicit --atoms flag applied after the first call stays in force.
  static const bool present = [] {
    const char* env = std::getenv("TULKUN_ATOMS");
    if (env == nullptr) return false;
    const std::string_view v(env);
    set_atom_path_enabled(!(v == "0" || v == "off" || v == "false"));
    return true;
  }();
  return present;
}

AtomCounters atom_counters_snapshot() {
  auto& c = counters();
  AtomCounters out;
  out.atom_hits = c.atom_hits.load(std::memory_order_relaxed);
  out.bdd_fallbacks = c.bdd_fallbacks.load(std::memory_order_relaxed);
  out.demotions = c.demotions.load(std::memory_order_relaxed);
  out.promotions = c.promotions.load(std::memory_order_relaxed);
  out.promote_failures = c.promote_failures.load(std::memory_order_relaxed);
  out.materializations = c.materializations.load(std::memory_order_relaxed);
  out.atom_table_size = c.atom_table_size.load(std::memory_order_relaxed);
  out.arena_bytes = c.arena_bytes.load(std::memory_order_relaxed);
  return out;
}

void atom_counters_reset() {
  auto& c = counters();
  c.atom_hits.store(0, std::memory_order_relaxed);
  c.bdd_fallbacks.store(0, std::memory_order_relaxed);
  c.demotions.store(0, std::memory_order_relaxed);
  c.promotions.store(0, std::memory_order_relaxed);
  c.promote_failures.store(0, std::memory_order_relaxed);
  c.materializations.store(0, std::memory_order_relaxed);
}

void atom_note_hit() {
  counters().atom_hits.fetch_add(1, std::memory_order_relaxed);
}

void atom_note_fallback(bool had_atom_operand) {
  auto& c = counters();
  c.bdd_fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (had_atom_operand) c.demotions.fetch_add(1, std::memory_order_relaxed);
}

AtomStore::AtomStore(bdd::Manager& mgr)
    : mgr_(&mgr),
      op_cache_(kOpCacheSize),
      memo_generation_(mgr.generation()),
      memo_epoch_(mgr.epoch()) {
  // Pre-interned: id 0 = empty, id 1 = the full address space.
  sets_.push_back(Meta{0, 0, 0});
  arena_.push_back({0, kAddrEnd});
  sets_.push_back(Meta{0, 1, kAddrEnd});
  boundaries_.insert(0);
  boundaries_.insert(kAddrEnd);
  reported_boundaries_ = boundaries_.size();
  reported_arena_bytes_ = arena_bytes();
  counters().atom_table_size.fetch_add(reported_boundaries_,
                                       std::memory_order_relaxed);
  counters().arena_bytes.fetch_add(reported_arena_bytes_,
                                   std::memory_order_relaxed);
}

AtomStore::~AtomStore() {
  counters().atom_table_size.fetch_sub(reported_boundaries_,
                                       std::memory_order_relaxed);
  counters().arena_bytes.fetch_sub(reported_arena_bytes_,
                                   std::memory_order_relaxed);
}

AtomRef AtomStore::intern(std::vector<Interval>&& ivs) {
  if (ivs.empty()) return kAtomEmpty;
  if (ivs.size() == 1 && ivs[0].lo == 0 && ivs[0].hi == kAddrEnd) {
    return kAtomAll;
  }
  const std::uint64_t h = hash_intervals(ivs);
  auto& bucket = dedup_[h];
  for (const AtomRef id : bucket) {
    if (equal_intervals(intervals(id), ivs)) return id;
  }

  std::uint64_t addrs = 0;
  std::uint64_t prev_hi = 0;
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    TULKUN_ASSERT(ivs[i].lo < ivs[i].hi && ivs[i].hi <= kAddrEnd);
    TULKUN_ASSERT(i == 0 || ivs[i].lo > prev_hi);  // sorted, non-adjacent
    prev_hi = ivs[i].hi;
    addrs += ivs[i].size();
  }

  Meta m;
  m.offset = static_cast<std::uint32_t>(arena_.size());
  m.len = static_cast<std::uint32_t>(ivs.size());
  m.addrs = addrs;
  arena_.insert(arena_.end(), ivs.begin(), ivs.end());
  sets_.push_back(m);
  const auto id = static_cast<AtomRef>(sets_.size() - 1);
  bucket.push_back(id);
  for (const auto& iv : ivs) {
    boundaries_.insert(iv.lo);
    boundaries_.insert(iv.hi);
  }

  // Push gauge deltas to the process-global counters.
  auto& c = counters();
  const std::uint64_t b = boundaries_.size();
  if (b != reported_boundaries_) {
    c.atom_table_size.fetch_add(b - reported_boundaries_,
                                std::memory_order_relaxed);
    reported_boundaries_ = b;
  }
  const std::uint64_t bytes = arena_bytes();
  if (bytes != reported_arena_bytes_) {
    c.arena_bytes.fetch_add(bytes - reported_arena_bytes_,
                            std::memory_order_relaxed);
    reported_arena_bytes_ = bytes;
  }
  return id;
}

AtomRef AtomStore::from_prefix(const packet::Ipv4Prefix& prefix) {
  return from_range(prefix.range_lo(), prefix.range_hi());
}

AtomRef AtomStore::from_range(std::uint64_t lo, std::uint64_t hi) {
  TULKUN_ASSERT(hi <= kAddrEnd);
  if (lo >= hi) return kAtomEmpty;
  return intern({{lo, hi}});
}

AtomRef AtomStore::from_intervals(std::vector<Interval> ivs) {
  return intern(std::move(ivs));
}

AtomRef AtomStore::cached_op(Op op, AtomRef a, AtomRef b) {
  const std::uint64_t ab = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::size_t idx =
      mix(ab ^ (static_cast<std::uint64_t>(op) << 56)) & (kOpCacheSize - 1);
  const OpEntry& e = op_cache_[idx];
  if (e.ab == ab && e.op == op) return e.result;
  return kNoAtom;
}

void AtomStore::cache_op(Op op, AtomRef a, AtomRef b, AtomRef result) {
  const std::uint64_t ab = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::size_t idx =
      mix(ab ^ (static_cast<std::uint64_t>(op) << 56)) & (kOpCacheSize - 1);
  op_cache_[idx] = OpEntry{ab, op, result};
}

void AtomStore::lockstep_check_binary(Op op, AtomRef a, AtomRef b,
                                      AtomRef result) {
  if (!atom_lockstep_check()) return;
  const bdd::NodeRef ra = materialize(a);
  const bdd::NodeRef rb = materialize(b);
  bdd::NodeRef expect = bdd::kFalse;
  switch (op) {
    case Op::Unite:
      expect = mgr_->lor(ra, rb);
      break;
    case Op::Intersect:
      expect = mgr_->land(ra, rb);
      break;
    case Op::Subtract:
      expect = mgr_->diff(ra, rb);
      break;
    case Op::Complement:
      expect = mgr_->negate(ra);
      break;
  }
  TULKUN_ASSERT(materialize(result) == expect);
}

AtomRef AtomStore::unite(AtomRef a, AtomRef b) {
  TULKUN_ASSERT(a < sets_.size() && b < sets_.size());
  if (a == b || b == kAtomEmpty) return a;
  if (a == kAtomEmpty) return b;
  if (a == kAtomAll || b == kAtomAll) return kAtomAll;
  if (a > b) std::swap(a, b);  // commutative: canonical operand order
  if (const AtomRef c = cached_op(Op::Unite, a, b); c != kNoAtom) return c;
  const AtomRef r = intern(unite_intervals(intervals(a), intervals(b)));
  cache_op(Op::Unite, a, b, r);
  lockstep_check_binary(Op::Unite, a, b, r);
  return r;
}

AtomRef AtomStore::intersect(AtomRef a, AtomRef b) {
  TULKUN_ASSERT(a < sets_.size() && b < sets_.size());
  if (a == b || b == kAtomAll) return a;
  if (a == kAtomAll) return b;
  if (a == kAtomEmpty || b == kAtomEmpty) return kAtomEmpty;
  if (a > b) std::swap(a, b);
  if (const AtomRef c = cached_op(Op::Intersect, a, b); c != kNoAtom) {
    return c;
  }
  const AtomRef r = intern(intersect_intervals(intervals(a), intervals(b)));
  cache_op(Op::Intersect, a, b, r);
  lockstep_check_binary(Op::Intersect, a, b, r);
  return r;
}

AtomRef AtomStore::subtract(AtomRef a, AtomRef b) {
  TULKUN_ASSERT(a < sets_.size() && b < sets_.size());
  if (a == kAtomEmpty || b == kAtomAll || a == b) return kAtomEmpty;
  if (b == kAtomEmpty) return a;
  if (const AtomRef c = cached_op(Op::Subtract, a, b); c != kNoAtom) {
    return c;
  }
  const AtomRef r = intern(subtract_intervals(intervals(a), intervals(b)));
  cache_op(Op::Subtract, a, b, r);
  lockstep_check_binary(Op::Subtract, a, b, r);
  return r;
}

AtomRef AtomStore::complement(AtomRef a) {
  TULKUN_ASSERT(a < sets_.size());
  if (a == kAtomEmpty) return kAtomAll;
  if (a == kAtomAll) return kAtomEmpty;
  if (const AtomRef c = cached_op(Op::Complement, a, 0); c != kNoAtom) {
    return c;
  }
  const AtomRef r = intern(complement_intervals(intervals(a)));
  cache_op(Op::Complement, a, 0, r);
  lockstep_check_binary(Op::Complement, a, 0, r);
  return r;
}

bool AtomStore::intersects(AtomRef a, AtomRef b) const {
  TULKUN_ASSERT(a < sets_.size() && b < sets_.size());
  if (a == kAtomEmpty || b == kAtomEmpty) return false;
  if (a == kAtomAll || b == kAtomAll || a == b) return true;
  const auto as = intervals(a);
  const auto bs = intervals(b);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < as.size() && j < bs.size()) {
    if (std::max(as[i].lo, bs[j].lo) < std::min(as[i].hi, bs[j].hi)) {
      return true;
    }
    if (as[i].hi <= bs[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool AtomStore::subset(AtomRef a, AtomRef b) const {
  TULKUN_ASSERT(a < sets_.size() && b < sets_.size());
  if (a == kAtomEmpty || a == b || b == kAtomAll) return true;
  if (b == kAtomEmpty || a == kAtomAll) return false;
  const auto as = intervals(a);
  const auto bs = intervals(b);
  std::size_t j = 0;
  for (const auto& iv : as) {
    while (j < bs.size() && bs[j].hi < iv.hi) ++j;
    if (j == bs.size() || bs[j].lo > iv.lo || bs[j].hi < iv.hi) return false;
  }
  return true;
}

std::uint64_t AtomStore::addr_count(AtomRef a) const {
  TULKUN_ASSERT(a < sets_.size());
  return sets_[a].addrs;
}

double AtomStore::header_count(AtomRef a) const {
  // Exact: the address count has at most 33 significant bits, and the
  // non-dst header bits contribute a pure power-of-two scale.
  return std::ldexp(
      static_cast<double>(addr_count(a)),
      packet::Layout::kNumVars - packet::Layout::kDstIpWidth);
}

packet::Ipv4Prefix AtomStore::hull(AtomRef a) const {
  TULKUN_ASSERT(a < sets_.size() && a != kAtomEmpty);
  if (a == kAtomAll) return packet::Ipv4Prefix{0, 0};
  const auto ivs = intervals(a);
  const auto lo = static_cast<std::uint32_t>(ivs.front().lo);
  const auto hi = static_cast<std::uint32_t>(ivs.back().hi - 1);
  // Longest common prefix of the extremes = longest prefix containing the
  // set (identical to the forced-decision walk on the materialized BDD).
  const auto len =
      static_cast<std::uint8_t>(std::countl_zero<std::uint32_t>(lo ^ hi));
  const std::uint32_t mask = len == 0 ? 0 : ~0u << (32 - len);
  return packet::Ipv4Prefix{lo & mask, len};
}

std::span<const Interval> AtomStore::intervals(AtomRef a) const {
  TULKUN_ASSERT(a < sets_.size());
  const Meta& m = sets_[a];
  return {arena_.data() + m.offset, m.len};
}

void AtomStore::check_memo_stamp() {
  if (memo_generation_ == mgr_->generation() && memo_epoch_ == mgr_->epoch()) {
    return;
  }
  // NodeRefs moved under us (reset or gc): both conversion memos are stale.
  materialize_memo_.clear();
  promote_memo_.clear();
  memo_generation_ = mgr_->generation();
  memo_epoch_ = mgr_->epoch();
}

bdd::NodeRef AtomStore::materialize(AtomRef a) {
  TULKUN_ASSERT(a != kNoAtom && a < sets_.size());
  if (a == kAtomEmpty) return bdd::kFalse;
  if (a == kAtomAll) return bdd::kTrue;
  check_memo_stamp();
  if (const auto it = materialize_memo_.find(a);
      it != materialize_memo_.end()) {
    return it->second;
  }
  counters().materializations.fetch_add(1, std::memory_order_relaxed);
  const bdd::NodeRef ref = build_bdd(*mgr_, intervals(a));
  materialize_memo_.emplace(a, ref);
  // Canonical both ways: this BDD's interval form is exactly `a`.
  promote_memo_.emplace(ref, a);
  return ref;
}

AtomRef AtomStore::promote(bdd::NodeRef ref) {
  if (ref == bdd::kFalse) return kAtomEmpty;
  if (ref == bdd::kTrue) return kAtomAll;
  check_memo_stamp();
  if (const auto it = promote_memo_.find(ref); it != promote_memo_.end()) {
    return it->second;
  }
  // Work is bounded: every root-to-kTrue path appends or extends one
  // interval, and a canonical ROBDD has no fully-tiled free subtrees, so
  // the interval cap (plus the step cap as defense in depth) bounds the
  // traversal at O(kMaxPromoteIntervals * depth).
  std::vector<Interval> out;
  std::size_t steps = 0;
  AtomRef result = kNoAtom;
  if (extract_intervals(*mgr_, ref, 0, 0, out, steps)) {
    result = intern(std::move(out));
    counters().promotions.fetch_add(1, std::memory_order_relaxed);
    if (atom_lockstep_check()) {
      TULKUN_ASSERT(build_bdd(*mgr_, intervals(result)) == ref);
    }
    materialize_memo_.emplace(result, ref);
  } else {
    counters().promote_failures.fetch_add(1, std::memory_order_relaxed);
  }
  promote_memo_.emplace(ref, result);
  return result;
}

}  // namespace tulkun::pred
