// Tier-1 predicate representation: interned interval-atom sets over the
// destination-IP field (Delta-net style, lifted from src/baseline into a
// first-class engine tier).
//
// Every dst-prefix-expressible predicate is a canonical set of disjoint,
// sorted, non-adjacent half-open address intervals, hash-consed into an
// AtomStore so equality is id equality — exactly the property the BDD tier
// provides, at a fraction of the cost for the single-field common case.
// The store keeps a global, incrementally-refined boundary table (the
// "atom universe"): every interval endpoint ever interned refines it, and
// its size is exported as the atom-table gauge.
//
// Each AtomStore is bound to one bdd::Manager (one PacketSpace):
//   materialize(atom) -> NodeRef   builds the canonical ROBDD of the set;
//   promote(ref)      -> AtomRef   recovers the interval form of a dst-only
//                                  BDD (kNoAtom when genuinely multi-field).
// Both directions are memoized per (manager generation, gc epoch), so the
// lockstep conversion check in PacketSet costs one id compare after the
// first crossing. Like bdd::Manager, a store is confined to one thread.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bdd/manager.hpp"
#include "core/interval_set.hpp"
#include "packet/fields.hpp"

namespace tulkun::pred {

/// Dense id of an interned interval set. Ids are stable for the lifetime
/// of the store (the store never garbage-collects: the interned universe
/// of a device is small and churn re-uses existing ids).
using AtomRef = std::uint32_t;

inline constexpr AtomRef kAtomEmpty = 0;
inline constexpr AtomRef kAtomAll = 1;
/// "No atom representation": the predicate is multi-field (BDD tier only).
inline constexpr AtomRef kNoAtom = 0xFFFFFFFFu;

/// Process-global kill switch for the atom fast path, mirroring
/// fib::set_prefix_index_enabled(). Off forces every set operation onto
/// the BDD tier (sets keep their atom ids, so flipping mid-run is safe in
/// both directions). Overridden by TULKUN_ATOMS=0/1 via
/// apply_atom_env_overrides().
void set_atom_path_enabled(bool enabled);
[[nodiscard]] bool atom_path_enabled();

/// Debug mode: every atom-tier operation also runs the BDD-tier op on the
/// materialized operands and asserts the results agree (both directions of
/// the tier conversion are lockstep-checked). Heavy; tests only.
void set_atom_lockstep_check(bool enabled);
[[nodiscard]] bool atom_lockstep_check();

/// Applies the TULKUN_ATOMS environment override ("0"/"off"/"false"
/// disables the atom path, anything else enables). No-op when unset, and
/// only the FIRST call reads the environment (later calls return the
/// cached presence without touching the switch, so explicit flags applied
/// in between stay in force). Returns true when the variable was present.
bool apply_atom_env_overrides();

/// Process-global atom-tier counters (relaxed atomics, like
/// fib::IndexCounters). Gauges (atom_table_size, arena_bytes) aggregate
/// over all live stores; the rest are monotone event counts.
struct AtomCounters {
  std::uint64_t atom_hits = 0;         // set ops answered on the atom tier
  std::uint64_t bdd_fallbacks = 0;     // set ops that ran on the BDD tier
  std::uint64_t demotions = 0;         // fallbacks that had >=1 atom operand
  std::uint64_t promotions = 0;        // successful BDD -> atom conversions
  std::uint64_t promote_failures = 0;  // conversions that found multi-field
  std::uint64_t materializations = 0;  // atom -> BDD conversions
  std::uint64_t atom_table_size = 0;   // global refined boundary count
  std::uint64_t arena_bytes = 0;       // interval arena footprint
};
[[nodiscard]] AtomCounters atom_counters_snapshot();
/// Resets the event counters (gauges track live stores and are unaffected).
void atom_counters_reset();

/// Counter taps used by the PacketSet fast-path dispatch (hot; inlined
/// callers pay one relaxed fetch_add).
void atom_note_hit();
void atom_note_fallback(bool had_atom_operand);

/// The interned universe of dst-interval sets for one PacketSpace.
class AtomStore {
 public:
  explicit AtomStore(bdd::Manager& mgr);
  ~AtomStore();

  AtomStore(const AtomStore&) = delete;
  AtomStore& operator=(const AtomStore&) = delete;

  /// Interns the address set of `prefix`.
  [[nodiscard]] AtomRef from_prefix(const packet::Ipv4Prefix& prefix);
  /// Interns the half-open address range [lo, hi), hi <= 2^32.
  [[nodiscard]] AtomRef from_range(std::uint64_t lo, std::uint64_t hi);
  /// Interns a canonical interval list (sorted, disjoint, non-adjacent,
  /// non-empty, all within [0, 2^32]). Asserts canonicity.
  [[nodiscard]] AtomRef from_intervals(std::vector<Interval> ivs);

  [[nodiscard]] AtomRef unite(AtomRef a, AtomRef b);
  [[nodiscard]] AtomRef intersect(AtomRef a, AtomRef b);
  /// Set difference a \ b.
  [[nodiscard]] AtomRef subtract(AtomRef a, AtomRef b);
  [[nodiscard]] AtomRef complement(AtomRef a);

  [[nodiscard]] bool intersects(AtomRef a, AtomRef b) const;
  /// True iff a is a subset of b.
  [[nodiscard]] bool subset(AtomRef a, AtomRef b) const;

  /// Number of destination addresses in the set (exact; up to 2^32).
  [[nodiscard]] std::uint64_t addr_count(AtomRef a) const;
  /// Number of packet headers: addr_count * 2^(non-dst header bits).
  /// Matches bdd::Manager::sat_count of the materialized set exactly
  /// (both are integers with < 53 significant bits, scaled by the same
  /// power of two).
  [[nodiscard]] double header_count(AtomRef a) const;

  /// The longest IPv4 prefix containing every address in the set; equals
  /// packet::dst_prefix_hull of the materialized BDD. Requires non-empty.
  [[nodiscard]] packet::Ipv4Prefix hull(AtomRef a) const;

  [[nodiscard]] std::span<const Interval> intervals(AtomRef a) const;

  /// Builds (memoized) the canonical ROBDD of the set in the bound manager.
  [[nodiscard]] bdd::NodeRef materialize(AtomRef a);

  /// Recovers (memoized) the interval form of a dst-only BDD; kNoAtom when
  /// the function depends on any non-dst variable or decomposes into more
  /// than kMaxPromoteIntervals intervals.
  [[nodiscard]] AtomRef promote(bdd::NodeRef ref);

  /// Interned set count (distinct interval sets seen by this store).
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }
  /// Global refined boundary count (the atom-table size gauge).
  [[nodiscard]] std::size_t boundary_count() const {
    return boundaries_.size();
  }
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.capacity() * sizeof(Interval);
  }
  [[nodiscard]] bdd::Manager& manager() const { return *mgr_; }

  /// Promotion bail-out threshold: a dst-only BDD whose interval form
  /// exceeds this many intervals stays on the BDD tier.
  static constexpr std::size_t kMaxPromoteIntervals = 4096;

 private:
  struct Meta {
    std::uint32_t offset = 0;  // first interval in arena_
    std::uint32_t len = 0;     // interval count
    std::uint64_t addrs = 0;   // total covered addresses
  };
  enum class Op : std::uint8_t { Unite, Intersect, Subtract, Complement };
  struct OpEntry {
    std::uint64_t ab = ~0ull;
    Op op = Op::Unite;
    AtomRef result = kNoAtom;
  };
  static constexpr std::size_t kOpCacheSize = 1 << 16;  // direct-mapped

  [[nodiscard]] AtomRef intern(std::vector<Interval>&& ivs);
  [[nodiscard]] AtomRef cached_op(Op op, AtomRef a, AtomRef b);
  void cache_op(Op op, AtomRef a, AtomRef b, AtomRef result);
  /// Clears the materialize/promote memos when the bound manager's
  /// generation or gc epoch moved (NodeRefs are otherwise stable).
  void check_memo_stamp();
  void lockstep_check_binary(Op op, AtomRef a, AtomRef b, AtomRef result);

  bdd::Manager* mgr_;
  std::vector<Interval> arena_;  // all interned sets, back to back
  std::vector<Meta> sets_;
  std::unordered_map<std::uint64_t, std::vector<AtomRef>> dedup_;
  std::vector<OpEntry> op_cache_;
  std::unordered_set<std::uint64_t> boundaries_;  // global atom table

  std::unordered_map<AtomRef, bdd::NodeRef> materialize_memo_;
  std::unordered_map<bdd::NodeRef, AtomRef> promote_memo_;
  std::uint64_t memo_generation_ = 0;
  std::uint64_t memo_epoch_ = 0;

  // Gauge deltas pushed to the process-global counters (subtracted back on
  // destruction so the gauges track live stores).
  std::uint64_t reported_boundaries_ = 0;
  std::uint64_t reported_arena_bytes_ = 0;
};

}  // namespace tulkun::pred
