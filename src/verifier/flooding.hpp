// Link-state failure flooding (§6): when a fault scene happens, verifiers
// detecting link failures flood them (Open/R- and OSPF-style) so every
// device converges on the same failed-link set and can recount without
// contacting the planner.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dvm/message.hpp"
#include "topo/topology.hpp"

namespace tulkun::verifier {

/// One device's flooding agent. Deduplicates by (origin, seq) and returns
/// the neighbors to re-flood to.
class FloodingAgent {
 public:
  FloodingAgent(DeviceId dev, const topo::Topology& topo)
      : dev_(dev), topo_(&topo) {}

  /// A locally detected link event (one endpoint is this device). Returns
  /// the messages to originate.
  std::vector<dvm::Envelope> local_event(LinkId link, bool up);

  /// Handles a received LINKSTATE. Returns re-flood messages; sets
  /// `changed` when the known failed-link set changed.
  std::vector<dvm::Envelope> on_message(DeviceId from,
                                        const dvm::LinkStateMessage& msg,
                                        bool& changed);

  /// Currently known failed links (canonical from < to, sorted).
  [[nodiscard]] std::vector<LinkId> failed_links() const;

 private:
  std::vector<dvm::Envelope> flood(const dvm::LinkStateMessage& msg,
                                   DeviceId except);
  bool record(const dvm::LinkStateMessage& msg);

  DeviceId dev_;
  const topo::Topology* topo_;
  std::uint64_t next_seq_ = 1;
  // Per link: latest (seq, origin, up). Higher seq wins; ties by origin.
  struct LinkRecord {
    std::uint64_t seq = 0;
    DeviceId origin = kNoDevice;
    bool up = true;
  };
  std::map<LinkId, LinkRecord> records_;
  // Flood dedup is per (origin, link): both endpoints may announce the
  // same link with independent sequence spaces, and each announcement must
  // be re-flooded at most once.
  std::map<std::pair<DeviceId, LinkId>, std::uint64_t> seen_;
};

}  // namespace tulkun::verifier
