#include "verifier/flooding.hpp"

namespace tulkun::verifier {

namespace {
LinkId canonical(LinkId l) { return l.from < l.to ? l : l.reversed(); }
}  // namespace

bool FloodingAgent::record(const dvm::LinkStateMessage& msg) {
  const LinkId key = canonical(msg.link);
  auto& rec = records_[key];
  const bool newer = msg.seq > rec.seq ||
                     (msg.seq == rec.seq && msg.origin < rec.origin &&
                      rec.origin != kNoDevice);
  if (!newer && rec.origin != kNoDevice) return false;
  const bool state_changed = rec.up != msg.up || rec.origin == kNoDevice;
  rec.seq = msg.seq;
  rec.origin = msg.origin;
  rec.up = msg.up;
  return state_changed;
}

std::vector<dvm::Envelope> FloodingAgent::flood(
    const dvm::LinkStateMessage& msg, DeviceId except) {
  std::vector<dvm::Envelope> out;
  for (const auto& adj : topo_->neighbors(dev_)) {
    if (adj.neighbor == except) continue;
    // Do not flood over the failed link itself.
    if (!msg.up && canonical(msg.link) ==
                       canonical(LinkId{dev_, adj.neighbor})) {
      continue;
    }
    out.push_back(dvm::Envelope{dev_, adj.neighbor, msg});
  }
  return out;
}

std::vector<dvm::Envelope> FloodingAgent::local_event(LinkId link, bool up) {
  dvm::LinkStateMessage msg;
  msg.link = canonical(link);
  msg.up = up;
  msg.seq = next_seq_++;
  msg.origin = dev_;
  record(msg);
  return flood(msg, kNoDevice);
}

std::vector<dvm::Envelope> FloodingAgent::on_message(
    DeviceId from, const dvm::LinkStateMessage& msg, bool& changed) {
  changed = false;
  const auto seen_key = std::make_pair(msg.origin, canonical(msg.link));
  const auto it = seen_.find(seen_key);
  if (it != seen_.end() && it->second >= msg.seq) {
    return {};  // already processed this (or a newer) announcement
  }
  seen_[seen_key] = msg.seq;
  changed = record(msg);
  return flood(msg, from);
}

std::vector<LinkId> FloodingAgent::failed_links() const {
  std::vector<LinkId> out;
  for (const auto& [link, rec] : records_) {
    if (!rec.up) out.push_back(link);
  }
  return out;
}

}  // namespace tulkun::verifier
