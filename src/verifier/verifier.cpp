#include "verifier/verifier.hpp"

#include <algorithm>
#include <chrono>

#include "obs/trace.hpp"

namespace tulkun::verifier {

OnDeviceVerifier::OnDeviceVerifier(DeviceId dev, const topo::Topology& topo,
                                   packet::PacketSpace& space,
                                   dvm::EngineConfig cfg)
    : dev_(dev),
      topo_(&topo),
      space_(&space),
      cfg_(cfg),
      builder_(space),
      flooding_(dev, topo) {}

void OnDeviceVerifier::install(const planner::InvariantPlan& plan) {
  Installed inst;
  inst.id = plan.id;
  inst.dag = plan.dag;
  inst.inv = std::make_shared<spec::Invariant>(plan.inv);
  inst.scenes = plan.scenes;
  inst.engine = std::make_unique<dvm::DeviceEngine>(
      dev_, *inst.dag, *inst.inv, inst.id, *space_, cfg_);
  if (initialized_) {
    // Late install: engines need the current LEC immediately.
    (void)inst.engine->set_lec(lec_);
  }
  installed_.push_back(std::move(inst));
}

void OnDeviceVerifier::install_multipath(const planner::MultiPathPlan& plan) {
  InstalledMultiPath inst;
  inst.id = plan.id;
  inst.dag_a = plan.dag_a;
  inst.dag_b = plan.dag_b;
  inst.inv = std::make_shared<spec::MultiPathInvariant>(plan.inv);
  inst.engine = std::make_unique<dvm::PathSetEngine>(
      dev_, *inst.dag_a, *inst.dag_b, *inst.inv, inst.id, *space_);
  if (initialized_) {
    (void)inst.engine->set_lec(lec_);
  }
  multipath_.push_back(std::move(inst));
}

std::optional<std::pair<spec::PathSet, spec::PathSet>>
OnDeviceVerifier::multipath_view(InvariantId session) const {
  for (const auto& inst : multipath_) {
    if (inst.id == session) return inst.engine->comparator_view();
  }
  return std::nullopt;
}

std::vector<dvm::Envelope> OnDeviceVerifier::initialize(fib::FibTable fib) {
  fib_ = std::move(fib);
  lec_ = builder_.build(fib_);
  ++stats_.lec_builds;
  initialized_ = true;
  std::vector<dvm::Envelope> out;
  for (auto& inst : installed_) {
    auto msgs = inst.engine->set_lec(lec_);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
  for (auto& inst : multipath_) {
    auto msgs = inst.engine->set_lec(lec_);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
  return out;
}

std::vector<dvm::Envelope> OnDeviceVerifier::apply_rule_update(
    fib::FibUpdate& update) {
  TULKUN_ASSERT(initialized_);
  TULKUN_ASSERT(update.device == dev_);

  TLK_SPAN_ARG("device.lec_delta", dev_);
  const auto t0 = std::chrono::steady_clock::now();
  const auto note_lec_delta = [&] {
    stats_.lec_delta_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  const packet::Ipv4Prefix region_prefix =
      update.kind == fib::FibUpdate::Kind::Insert
          ? update.rule.dst_prefix
          : fib_.rule(update.rule_id).dst_prefix;
  const packet::PacketSet region =
      update.kind == fib::FibUpdate::Kind::Insert
          ? update.rule.match(*space_)
          : fib_.rule(update.rule_id).match(*space_);

  const auto before =
      builder_.effective_in_region(fib_, region_prefix, region);
  if (update.kind == fib::FibUpdate::Kind::Insert) {
    update.rule_id = fib_.insert(update.rule);
  } else {
    update.rule = fib_.erase(update.rule_id);
  }
  const auto after = builder_.effective_in_region(fib_, region_prefix, region);
  const auto deltas = builder_.region_deltas(before, after);

  std::vector<dvm::Envelope> out;
  if (deltas.empty()) {
    note_lec_delta();
    return out;  // shadowed update: nothing changed
  }

  lec_ = builder_.apply_patch(lec_, region, after);
  ++stats_.lec_patches;
  note_lec_delta();
  for (auto& inst : installed_) {
    auto msgs = inst.engine->on_lec_deltas(deltas, lec_);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
  for (auto& inst : multipath_) {
    auto msgs = inst.engine->on_lec_deltas(deltas, lec_);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
  return out;
}

std::vector<dvm::Envelope> OnDeviceVerifier::on_message(
    const dvm::Envelope& env) {
  TULKUN_ASSERT(env.dst == dev_);
  ++stats_.messages_handled;
  std::vector<dvm::Envelope> out;

  if (const auto* u = std::get_if<dvm::UpdateMessage>(&env.msg)) {
    for (auto& inst : installed_) {
      if (inst.id != u->invariant) continue;
      auto msgs = inst.engine->on_update(*u);
      out.insert(out.end(), std::make_move_iterator(msgs.begin()),
                 std::make_move_iterator(msgs.end()));
    }
  } else if (const auto* s = std::get_if<dvm::SubscribeMessage>(&env.msg)) {
    for (auto& inst : installed_) {
      if (inst.id != s->invariant) continue;
      auto msgs = inst.engine->on_subscribe(*s);
      out.insert(out.end(), std::make_move_iterator(msgs.begin()),
                 std::make_move_iterator(msgs.end()));
    }
  } else if (const auto* p = std::get_if<dvm::PathSetUpdate>(&env.msg)) {
    for (auto& inst : multipath_) {
      if (inst.id != p->session) continue;
      auto msgs = inst.engine->on_pathset(*p);
      out.insert(out.end(), std::make_move_iterator(msgs.begin()),
                 std::make_move_iterator(msgs.end()));
    }
  } else if (const auto* l = std::get_if<dvm::LinkStateMessage>(&env.msg)) {
    bool changed = false;
    auto refloods = flooding_.on_message(env.src, *l, changed);
    out.insert(out.end(), std::make_move_iterator(refloods.begin()),
               std::make_move_iterator(refloods.end()));
    if (changed) resync_scenes(out);
  }
  return out;
}

std::vector<dvm::Envelope> OnDeviceVerifier::on_local_link_event(LinkId link,
                                                                 bool up) {
  auto out = flooding_.local_event(link, up);
  resync_scenes(out);
  return out;
}

void OnDeviceVerifier::resync_scenes(std::vector<dvm::Envelope>& out) {
  const auto failed = flooding_.failed_links();
  const spec::FaultScene current = spec::FaultScene::of(failed);
  for (auto& inst : installed_) {
    const auto it =
        std::find(inst.scenes.begin(), inst.scenes.end(), current);
    if (it == inst.scenes.end()) {
      // §6: a scene the operator did not pre-specify — report to planner.
      ++stats_.unknown_scene_reports;
      continue;
    }
    const auto scene = static_cast<std::size_t>(it - inst.scenes.begin());
    auto msgs = inst.engine->on_scene_change(scene);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
}

std::vector<dvm::Violation> OnDeviceVerifier::violations() const {
  std::vector<dvm::Violation> out;
  for (const auto& inst : installed_) {
    const auto& v = inst.engine->violations();
    out.insert(out.end(), v.begin(), v.end());
  }
  for (const auto& inst : multipath_) {
    const auto& v = inst.engine->violations();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::vector<std::pair<DeviceId, std::vector<dvm::CountEntry>>>
OnDeviceVerifier::source_results(InvariantId id) const {
  for (const auto& inst : installed_) {
    if (inst.id == id) return inst.engine->source_results();
  }
  return {};
}

dvm::EngineStats OnDeviceVerifier::engine_totals() const {
  dvm::EngineStats total;
  for (const auto& inst : installed_) {
    const auto& s = inst.engine->stats();
    total.updates_sent += s.updates_sent;
    total.updates_received += s.updates_received;
    total.subscribes_sent += s.subscribes_sent;
    total.entries_recomputed += s.entries_recomputed;
    total.recompute_seconds += s.recompute_seconds;
    total.emit_seconds += s.emit_seconds;
  }
  return total;
}

std::vector<std::pair<InvariantId, std::vector<dvm::DeviceEngine::NodeSnapshot>>>
OnDeviceVerifier::engine_snapshots() const {
  std::vector<
      std::pair<InvariantId, std::vector<dvm::DeviceEngine::NodeSnapshot>>>
      out;
  for (const auto& inst : installed_) {
    out.emplace_back(inst.id, inst.engine->node_snapshots());
  }
  return out;
}

std::size_t OnDeviceVerifier::memory_bytes() const {
  // Predicates share the session BDD arena; attribute 16 bytes per BDD node
  // per reference plus table bookkeeping. A proxy, but a consistent one.
  std::size_t bytes = 0;
  for (const auto& e : lec_.entries()) {
    bytes += e.pred.bdd_nodes() * 16 + sizeof(fib::Lec);
  }
  bytes += fib_.size() * sizeof(fib::Rule);
  return bytes;
}

void OnDeviceVerifier::collect_refs(std::vector<bdd::NodeRef>& out) const {
  for (const fib::Rule* r : fib_.ordered()) {
    if (r->extra_match) {
      out.push_back(r->extra_match->ref_if_materialized());
    }
  }
  lec_.collect_refs(out);
  for (const auto& inst : installed_) {
    out.push_back(inst.inv->packet_space.ref_if_materialized());
    inst.engine->collect_refs(out);
  }
  for (const auto& mp : multipath_) {
    out.push_back(mp.inv->a.space.ref_if_materialized());
    out.push_back(mp.inv->b.space.ref_if_materialized());
    mp.engine->collect_refs(out);
  }
}

}  // namespace tulkun::verifier
