// The on-device verifier (§5, §8): owns the device's data plane copy and
// LEC table (the "LEC builder"), one DVM engine per installed invariant
// (the "verification agent"), and the link-state flooding agent. The
// runtime feeds it events (rule updates, messages, link events) and ships
// the envelopes it returns.
#pragma once

#include <memory>
#include <vector>

#include "dvm/engine.hpp"
#include "dvm/pathset.hpp"
#include "fib/update_stream.hpp"
#include "planner/planner.hpp"
#include "verifier/flooding.hpp"

namespace tulkun::verifier {

struct VerifierStats {
  std::uint64_t lec_builds = 0;
  std::uint64_t lec_patches = 0;
  std::uint64_t messages_handled = 0;
  /// Fault scenes observed that no installed invariant pre-specified;
  /// per §6 these must be reported to the planner.
  std::uint64_t unknown_scene_reports = 0;
  /// Wall time spent deriving LEC deltas + patching the LEC table on rule
  /// updates (the "lec-delta" phase; recompute/emit live in EngineStats).
  double lec_delta_seconds = 0.0;
};

class OnDeviceVerifier {
 public:
  OnDeviceVerifier(DeviceId dev, const topo::Topology& topo,
                   packet::PacketSpace& space, dvm::EngineConfig cfg = {});

  [[nodiscard]] DeviceId device() const { return dev_; }

  /// Installs an invariant's task set (the planner ships the DPVNet slice;
  /// we hand the engine the full DAG plus this device's identity, which is
  /// equivalent and simpler to serialize in-process).
  void install(const planner::InvariantPlan& plan);

  /// Installs a §7 multi-path comparison (path-collection tasks).
  void install_multipath(const planner::MultiPathPlan& plan);

  /// The comparator's collected per-side path sets for a session (empty
  /// until both sides have reported; only on the comparator device).
  [[nodiscard]] std::optional<std::pair<spec::PathSet, spec::PathSet>>
  multipath_view(InvariantId session) const;

  /// Loads the device's initial FIB and computes the initial LEC and CIBs
  /// (the §9.4 "initialization phase"). Returns messages to transmit.
  std::vector<dvm::Envelope> initialize(fib::FibTable fib);

  /// Applies one rule update (insert/erase) to the local FIB: recomputes
  /// the affected LEC region, patches the LEC table, and feeds the deltas
  /// to every engine. On insert, update.rule_id receives the assigned id.
  std::vector<dvm::Envelope> apply_rule_update(fib::FibUpdate& update);

  /// Handles a protocol message addressed to this device.
  std::vector<dvm::Envelope> on_message(const dvm::Envelope& env);

  /// A locally detected link event on an adjacent link.
  std::vector<dvm::Envelope> on_local_link_event(LinkId link, bool up);

  /// Violations across all installed invariants.
  [[nodiscard]] std::vector<dvm::Violation> violations() const;

  /// Source-node results for one invariant (empty if not hosted here).
  [[nodiscard]] std::vector<std::pair<DeviceId, std::vector<dvm::CountEntry>>>
  source_results(InvariantId id) const;

  [[nodiscard]] const VerifierStats& stats() const { return stats_; }

  /// Aggregate engine stats across installed invariants.
  [[nodiscard]] dvm::EngineStats engine_totals() const;

  /// Test/debug snapshots of every installed engine's node tables,
  /// keyed by invariant id.
  [[nodiscard]] std::vector<
      std::pair<InvariantId, std::vector<dvm::DeviceEngine::NodeSnapshot>>>
  engine_snapshots() const;
  [[nodiscard]] const fib::FibTable& fib() const { return fib_; }
  [[nodiscard]] const fib::LecTable& lec() const { return lec_; }

  /// Approximate resident memory of verification state, in bytes (LEC +
  /// CIB predicates and counts) — the §9.4 memory metric.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Appends every BDD ref reachable from this verifier's state (FIB extra
  /// matches, LEC table, installed invariants, engine tables, violations).
  /// Together with any codec channel tables, this is the complete gc root
  /// set for a device whose space is private to the runtime.
  void collect_refs(std::vector<bdd::NodeRef>& out) const;

 private:
  /// Re-resolves the active fault scene of each engine from the flooding
  /// agent's failed-link set.
  void resync_scenes(std::vector<dvm::Envelope>& out);

  struct Installed {
    InvariantId id = 0;
    std::shared_ptr<const dpvnet::DpvNet> dag;
    std::shared_ptr<const spec::Invariant> inv;
    std::vector<spec::FaultScene> scenes;
    std::unique_ptr<dvm::DeviceEngine> engine;
  };

  struct InstalledMultiPath {
    InvariantId id = 0;
    std::shared_ptr<const dpvnet::DpvNet> dag_a;
    std::shared_ptr<const dpvnet::DpvNet> dag_b;
    std::shared_ptr<const spec::MultiPathInvariant> inv;
    std::unique_ptr<dvm::PathSetEngine> engine;
  };

  DeviceId dev_;
  const topo::Topology* topo_;
  packet::PacketSpace* space_;
  dvm::EngineConfig cfg_;
  fib::FibTable fib_;
  fib::LecBuilder builder_;
  fib::LecTable lec_;
  bool initialized_ = false;
  FloodingAgent flooding_;
  std::vector<Installed> installed_;
  std::vector<InstalledMultiPath> multipath_;
  VerifierStats stats_;
};

}  // namespace tulkun::verifier
