#include "runtime/dist_proto.hpp"

#include <bit>

namespace tulkun::runtime {

namespace {

constexpr std::uint8_t kHello = 1;
constexpr std::uint8_t kBegin = 2;
constexpr std::uint8_t kProbe = 3;
constexpr std::uint8_t kProbeAck = 4;
constexpr std::uint8_t kReset = 5;
constexpr std::uint8_t kCollect = 6;
constexpr std::uint8_t kVerdicts = 7;
constexpr std::uint8_t kDone = 8;
constexpr std::uint8_t kData = 9;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void str(const std::string& s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t len = u32();
    need(len);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return out;
  }
  /// Count-vs-remaining-bytes guard (see dvm::codec): each of `n` declared
  /// elements occupies at least `min_elem_bytes`.
  std::uint32_t count(std::uint32_t n, std::size_t min_elem_bytes) const {
    if (n > (bytes_.size() - pos_) / min_elem_bytes) {
      throw Error("dist decode: declared count exceeds buffer");
    }
    return n;
  }
  void done() const {
    if (pos_ != bytes_.size()) throw Error("dist decode: trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw Error("dist decode: truncated");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_dist(const DistMsg& msg) {
  Writer w;
  if (const auto* m = std::get_if<DistHello>(&msg)) {
    w.u8(kHello);
    w.u32(m->rank);
    w.u32(m->incarnation);
  } else if (const auto* m = std::get_if<DistBegin>(&msg)) {
    w.u8(kBegin);
    w.u32(m->epoch);
    w.u32(m->phase);
    w.u64(m->trace_id);
    w.u64(m->parent_span);
  } else if (const auto* m = std::get_if<DistProbe>(&msg)) {
    w.u8(kProbe);
    w.u32(m->epoch);
    w.u32(m->wave);
  } else if (const auto* m = std::get_if<DistProbeAck>(&msg)) {
    w.u8(kProbeAck);
    w.u32(m->epoch);
    w.u32(m->wave);
    w.u64(m->sent);
    w.u64(m->received);
    w.u8(m->idle ? 1 : 0);
    w.u32(m->phase);
    w.u8(m->phase_started ? 1 : 0);
  } else if (const auto* m = std::get_if<DistReset>(&msg)) {
    w.u8(kReset);
    w.u32(m->epoch);
  } else if (const auto* m = std::get_if<DistCollect>(&msg)) {
    w.u8(kCollect);
    w.u32(m->epoch);
  } else if (const auto* m = std::get_if<DistVerdicts>(&msg)) {
    w.u8(kVerdicts);
    w.u32(m->epoch);
    w.u32(m->rank);
    w.u64(m->violations);
    w.u32(static_cast<std::uint32_t>(m->rows.size()));
    for (const auto& row : m->rows) w.str(row);
    w.u64(m->jobs);
    w.u64(m->frames);
    w.u64(m->envelopes);
    w.u64(m->frame_bytes);
    w.f64(m->lec_delta_seconds);
    w.f64(m->recompute_seconds);
    w.f64(m->emit_seconds);
    w.u64(m->transport.frames_sent);
    w.u64(m->transport.bytes_sent);
    w.u64(m->transport.frames_received);
    w.u64(m->transport.bytes_received);
    w.u64(m->transport.reconnects);
    w.u64(m->transport.heartbeat_misses);
    w.u64(m->transport.protocol_errors);
    w.u64(m->transport.send_queue_depth);
    w.u64(m->transport.send_queue_peak);
    w.bytes(m->trace);
  } else if (std::get_if<DistDone>(&msg) != nullptr) {
    w.u8(kDone);
  } else {
    const auto& m = std::get<DistData>(msg);
    w.u8(kData);
    w.u32(m.epoch);
    w.u32(m.dst_device);
    w.bytes(m.frame);
    w.u64(m.trace_id);
    w.u64(m.parent_span);
  }
  return w.take();
}

DistMsg decode_dist(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const std::uint8_t tag = r.u8();
  DistMsg out;
  switch (tag) {
    case kHello: {
      DistHello m;
      m.rank = r.u32();
      m.incarnation = r.u32();
      out = m;
      break;
    }
    case kBegin: {
      DistBegin m;
      m.epoch = r.u32();
      m.phase = r.u32();
      m.trace_id = r.u64();
      m.parent_span = r.u64();
      out = m;
      break;
    }
    case kProbe: {
      DistProbe m;
      m.epoch = r.u32();
      m.wave = r.u32();
      out = m;
      break;
    }
    case kProbeAck: {
      DistProbeAck m;
      m.epoch = r.u32();
      m.wave = r.u32();
      m.sent = r.u64();
      m.received = r.u64();
      m.idle = r.u8() != 0;
      m.phase = r.u32();
      m.phase_started = r.u8() != 0;
      out = m;
      break;
    }
    case kReset: {
      DistReset m;
      m.epoch = r.u32();
      out = m;
      break;
    }
    case kCollect: {
      DistCollect m;
      m.epoch = r.u32();
      out = m;
      break;
    }
    case kVerdicts: {
      DistVerdicts m;
      m.epoch = r.u32();
      m.rank = r.u32();
      m.violations = r.u64();
      const std::uint32_t n = r.count(r.u32(), 4);
      m.rows.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.rows.push_back(r.str());
      m.jobs = r.u64();
      m.frames = r.u64();
      m.envelopes = r.u64();
      m.frame_bytes = r.u64();
      m.lec_delta_seconds = r.f64();
      m.recompute_seconds = r.f64();
      m.emit_seconds = r.f64();
      m.transport.frames_sent = r.u64();
      m.transport.bytes_sent = r.u64();
      m.transport.frames_received = r.u64();
      m.transport.bytes_received = r.u64();
      m.transport.reconnects = r.u64();
      m.transport.heartbeat_misses = r.u64();
      m.transport.protocol_errors = r.u64();
      m.transport.send_queue_depth = r.u64();
      m.transport.send_queue_peak = r.u64();
      m.trace = r.bytes();
      out = m;
      break;
    }
    case kDone:
      out = DistDone{};
      break;
    case kData: {
      DistData m;
      m.epoch = r.u32();
      m.dst_device = r.u32();
      m.frame = r.bytes();
      m.trace_id = r.u64();
      m.parent_span = r.u64();
      out = m;
      break;
    }
    default:
      throw Error("dist decode: unknown message tag");
  }
  r.done();
  return out;
}

}  // namespace tulkun::runtime
