// Canonical, cross-process digests of verifier state.
//
// The in-process differential tests compare BDD refs directly because both
// runs share one PacketSpace. Across OS processes every device has its own
// manager, so refs are meaningless; rows here serialize each predicate to
// its canonical node-list bytes (bdd::serialize emits the same bytes for
// equal functions under the repo's fixed variable layout) and hex-encode
// them. Sorting the rows makes table iteration order irrelevant, so two
// runs converged to the same state iff their sorted row sets are equal.
//
// Invariant ids are assigned by a process-global counter and differ across
// processes (and across epoch replays within one process); rows renumber
// them densely by sorted order, which matches because every run installs
// the same plans in the same order.
#pragma once

#include <string>
#include <vector>

#include "verifier/verifier.hpp"

namespace tulkun::runtime {

/// Sorted canonical rows of one device: every LoC / out_sent / CIB-in
/// table entry ("loc|", "out|", "cib|" rows) plus one "vio|" row per
/// violation. Rows embed the device id, so rows from different devices
/// never collide and whole-network digests are plain sorted unions.
[[nodiscard]] std::vector<std::string> canonical_device_rows(
    const verifier::OnDeviceVerifier& v);

}  // namespace tulkun::runtime
