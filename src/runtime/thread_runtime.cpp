#include "runtime/thread_runtime.hpp"

#include "bdd/serialize.hpp"
#include "dvm/codec.hpp"

namespace tulkun::runtime {

namespace {

packet::PacketSet transfer(const packet::PacketSet& p,
                           packet::PacketSpace& target) {
  const auto bytes = bdd::serialize(*p.manager(), p.ref());
  return target.wrap(bdd::deserialize(target.manager(), bytes));
}

}  // namespace

spec::Invariant localize_invariant(const spec::Invariant& inv,
                                   packet::PacketSpace& target) {
  spec::Invariant out = inv;
  out.packet_space = transfer(inv.packet_space, target);
  return out;
}

fib::Rule localize_rule(const fib::Rule& rule, packet::PacketSpace& target) {
  fib::Rule out = rule;
  if (rule.extra_match) {
    out.extra_match = transfer(*rule.extra_match, target);
  }
  return out;
}

fib::FibTable localize_fib(const fib::FibTable& fib,
                           packet::PacketSpace& target) {
  fib::FibTable out;
  for (const fib::Rule* r : fib.ordered()) {
    out.insert(localize_rule(*r, target));
  }
  return out;
}

ThreadRuntime::ThreadRuntime(const topo::Topology& topo,
                             dvm::EngineConfig cfg)
    : topo_(&topo), cfg_(cfg) {
  workers_.reserve(topo.device_count());
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    auto w = std::make_unique<Worker>();
    w->dev = d;
    w->space = std::make_unique<packet::PacketSpace>();
    w->verifier = std::make_unique<verifier::OnDeviceVerifier>(
        d, topo, *w->space, cfg);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_loop(*worker); });
  }
}

ThreadRuntime::~ThreadRuntime() {
  stopping_.store(true);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadRuntime::install(const planner::InvariantPlan& plan) {
  // Installation happens before threads receive work; localize on the
  // caller thread while each device space is otherwise untouched.
  wait_quiescent();
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    planner::InvariantPlan local = plan;
    local.inv = localize_invariant(plan.inv, *w->space);
    w->verifier->install(local);
  }
}

void ThreadRuntime::enqueue(DeviceId dev, Job job) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  Worker& w = *workers_[dev];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(job));
  }
  w.cv.notify_one();
}

void ThreadRuntime::finish_one() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  --inflight_;
  if (inflight_ == 0) inflight_cv_.notify_all();
}

ThreadRuntime::WireRule ThreadRuntime::to_wire(const fib::Rule& rule) {
  WireRule out;
  out.rule = rule;
  if (rule.extra_match) {
    out.extra_bytes =
        bdd::serialize(*rule.extra_match->manager(), rule.extra_match->ref());
    out.rule.extra_match.reset();
  }
  return out;
}

fib::Rule ThreadRuntime::from_wire(const WireRule& wire,
                                   packet::PacketSpace& space) {
  fib::Rule out = wire.rule;
  if (!wire.extra_bytes.empty()) {
    out.extra_match =
        space.wrap(bdd::deserialize(space.manager(), wire.extra_bytes));
  }
  return out;
}

void ThreadRuntime::post_initialize(DeviceId dev, const fib::FibTable& fib) {
  Job job;
  job.kind = Job::Kind::Init;
  // Flatten to wire form on the caller thread (reads only the caller's
  // space); the device thread rebuilds rules in its own space.
  for (const fib::Rule* r : fib.ordered()) job.rules.push_back(to_wire(*r));
  enqueue(dev, std::move(job));
}

void ThreadRuntime::post_rule_update(DeviceId dev,
                                     const fib::FibUpdate& update) {
  Job job;
  job.kind = Job::Kind::Update;
  job.update = update;
  if (update.kind == fib::FibUpdate::Kind::Insert) {
    job.update_rule = to_wire(update.rule);
    job.update.rule = fib::Rule{};
  }
  enqueue(dev, std::move(job));
}

void ThreadRuntime::wait_quiescent() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::vector<dvm::Violation> ThreadRuntime::violations() {
  std::vector<dvm::Violation> out;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);  // memory barrier
    auto v = w->verifier->violations();
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

void ThreadRuntime::handle(Worker& w, Job& job) {
  std::vector<dvm::Envelope> out;
  switch (job.kind) {
    case Job::Kind::Init: {
      fib::FibTable local;
      for (const auto& wr : job.rules) {
        local.insert(from_wire(wr, *w.space));
      }
      out = w.verifier->initialize(std::move(local));
      break;
    }
    case Job::Kind::Update: {
      fib::FibUpdate local = job.update;
      if (local.kind == fib::FibUpdate::Kind::Insert) {
        local.rule = from_wire(job.update_rule, *w.space);
      }
      out = w.verifier->apply_rule_update(local);
      break;
    }
    case Job::Kind::Bytes: {
      const dvm::Envelope env = dvm::decode(job.bytes, *w.space);
      out = w.verifier->on_message(env);
      break;
    }
  }
  // Encode outgoing envelopes in this thread (sender's space), then hand
  // the bytes to the destination thread.
  for (const auto& env : out) {
    Job next;
    next.kind = Job::Kind::Bytes;
    next.bytes = dvm::encode(env);
    enqueue(env.dst, std::move(next));
  }
}

void ThreadRuntime::worker_loop(Worker& w) {
  while (true) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] { return stopping_.load() || !w.queue.empty(); });
      if (stopping_.load() && w.queue.empty()) return;
      batch.swap(w.queue);
    }
    for (auto& job : batch) {
      handle(w, job);
      finish_one();
    }
  }
}

}  // namespace tulkun::runtime
