// Discrete-event simulator: runs every on-device verifier in one process
// under a virtual clock.
//
// Substitution note (see DESIGN.md): the paper runs verifiers on switch
// CPUs. Here each device is an independent verifier object with a serial
// event loop; per-event compute cost is measured on the host with a
// steady clock and scaled by `cpu_scale` (>1 models a slower switch CPU),
// and messages between devices incur the topology's per-link propagation
// latency with FIFO per-link ordering (the TCP in-order assumption of
// §5.2). Verification time = virtual time from the first posted event to
// the last completed handler, exactly the paper's timeline definition.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "fib/update_stream.hpp"
#include "runtime/metrics.hpp"
#include "verifier/verifier.hpp"

namespace tulkun::runtime {

struct SimConfig {
  /// Multiplier applied to host-measured compute time (models the low-end
  /// switch CPU; the §9.4 Centec/ARM profile uses a larger value).
  double cpu_scale = 1.0;
  /// Account exact wire bytes by encoding every envelope (slower).
  bool account_bytes = false;
  /// §7 incremental deployment: verifiers live in off-device instances
  /// (VMs) `proxy_latency` away from their switches, so every message
  /// pays two extra proxy hops. 0 = on-device verifiers.
  double proxy_latency = 0.0;
};

class EventSimulator {
 public:
  EventSimulator(const topo::Topology& topo, SimConfig cfg = {});

  /// Creates one verifier per device, sharing `space`.
  void make_devices(packet::PacketSpace& space, dvm::EngineConfig ecfg = {});

  [[nodiscard]] verifier::OnDeviceVerifier& device(DeviceId d);
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Installs an invariant plan on every device.
  void install(const planner::InvariantPlan& plan);

  /// Installs a multi-path comparison plan on every device.
  void install_multipath(const planner::MultiPathPlan& plan);

  /// Schedules events (times are virtual seconds; events at equal times
  /// run in posting order per device).
  void post_initialize(DeviceId dev, fib::FibTable fib, double t = 0.0);
  /// Returns a handle to the posted update; after run(), the handle's
  /// rule_id holds the id assigned on Insert (for scripting later erases)
  /// and rule holds the removed rule on Erase.
  std::shared_ptr<const fib::FibUpdate> post_rule_update(
      DeviceId dev, fib::FibUpdate update, double t);
  void post_link_event(LinkId link, bool up, double t);

  /// Drains the event queue. Returns the virtual time at which the last
  /// handler finished (0 when nothing ran).
  double run();

  [[nodiscard]] std::vector<dvm::Violation> violations() const;
  [[nodiscard]] RunStats& stats() { return stats_; }
  [[nodiscard]] double device_busy_seconds(DeviceId d) const {
    return busy_total_[d];
  }

 private:
  struct Work {
    enum class Kind { Init, Update, Message, LinkEvent } kind;
    DeviceId dev = kNoDevice;
    fib::FibTable fib;          // Init
    fib::FibUpdate update;      // Update
    dvm::Envelope env;          // Message
    LinkId link;                // LinkEvent
    bool link_up = false;
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::shared_ptr<Work> work;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void post(double t, std::shared_ptr<Work> work);
  void dispatch_outgoing(DeviceId src, double t,
                         std::vector<dvm::Envelope> msgs);

  const topo::Topology* topo_;
  SimConfig cfg_;
  std::vector<std::unique_ptr<verifier::OnDeviceVerifier>> devices_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  std::vector<double> busy_until_;
  std::vector<double> busy_total_;
  RunStats stats_;
};

}  // namespace tulkun::runtime
