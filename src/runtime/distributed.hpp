// Multi-process DistributedRuntime: devices partitioned across OS
// processes, exchanging DVM traffic over a real net::Transport.
//
// Process model. Rank 0 is the coordinator; ranks 1..P are device
// processes, each owning the devices with `owner_rank(dev, P) == rank`.
// Every process deterministically rebuilds the whole world — topology,
// invariant plans, initial FIBs, and the update stream — from a
// WorldBuilder (ultimately a dataset spec + seed), so nothing but DVM
// messages, verdicts and control traffic ever crosses the wire.
//
// Execution is phased: phase 0 loads every initial FIB (the burst), phase
// k >= 1 applies update step k-1 on its owning process. Between phases the
// coordinator runs Mattern-style four-counter termination detection: probe
// waves collect per-process (sent, received, idle) snapshots, and a phase
// is converged when two consecutive waves show every process idle at the
// current phase with identical, balanced global send/receive totals. This
// replaces the ShardedRuntime's shared-atomic quiescence count, which
// cannot exist across address spaces.
//
// Fault recovery. When a device process dies, its supervisor re-forks it
// with a higher incarnation number. The new Hello makes the coordinator
// bump the global epoch, broadcast a Reset, and replay all completed
// phases in the new epoch; every data frame is epoch-tagged, so stragglers
// from the previous life are dropped instead of corrupting rebuilt state.
// Replay is sound because world construction is deterministic.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "runtime/dist_proto.hpp"
#include "runtime/sharded_runtime.hpp"

namespace tulkun::runtime {

inline constexpr net::PeerId kCoordinatorRank = 0;

/// The device process owning a device: ranks 1..n_device_procs, round-robin.
[[nodiscard]] inline net::PeerId owner_rank(DeviceId dev,
                                            std::size_t n_device_procs) {
  return 1 + static_cast<net::PeerId>(dev % n_device_procs);
}

/// Everything a process must agree on with its peers, rebuilt locally per
/// epoch. `keepalive` owns whatever PacketSpaces back the plans, tables
/// and update rules (predicates are localized into per-device spaces
/// through the wire codec before use, exactly like ShardedRuntime).
struct DistWorld {
  std::shared_ptr<void> keepalive;
  std::vector<planner::InvariantPlan> plans;
  std::vector<fib::FibTable> tables;  // indexed by DeviceId
  struct Step {
    fib::FibUpdate update;
    std::int32_t erase_of = -1;  // >= 0: erase the rule of that insert step
  };
  std::vector<Step> steps;
};

/// Must be deterministic: every call (in any process, any epoch) returns
/// an equivalent world.
using WorldBuilder = std::function<DistWorld()>;

/// One device-owning process (rank >= 1). Owns a single worker thread's
/// worth of state; the transport's receive path only enqueues.
class DeviceProcess {
 public:
  static constexpr std::uint32_t kNoKillPhase = 0xffffffffu;

  struct Config {
    net::PeerId rank = 1;
    std::size_t n_device_procs = 1;
    dvm::EngineConfig engine;
    std::uint32_t incarnation = 0;
    /// Chaos hook: _exit the process upon receiving Begin for this phase
    /// (first incarnation only), simulating a mid-run crash.
    std::uint32_t kill_at_phase = kNoKillPhase;
  };

  DeviceProcess(net::Transport& transport, const topo::Topology& topo,
                WorldBuilder builder, Config cfg);

  /// Starts the transport, sends Hello, and processes work until the
  /// coordinator's Done arrives. The caller stops the transport afterward.
  void run();

 private:
  struct OwnedDevice {
    DeviceId dev = kNoDevice;
    std::unique_ptr<packet::PacketSpace> space;
    std::unique_ptr<verifier::OnDeviceVerifier> verifier;
  };

  void on_frame(net::PeerId from, std::vector<std::uint8_t> frame);
  void build_world();
  void process(DistMsg& msg);
  void run_phase(const DistBegin& begin);
  void handle_data(DistData& data);
  void route(std::vector<dvm::Envelope> outs);
  void send_verdicts(std::uint32_t epoch);
  [[nodiscard]] OwnedDevice* owned(DeviceId dev);

  net::Transport* transport_;
  const topo::Topology* topo_;
  WorldBuilder builder_;
  Config cfg_;

  // Worker-owned state (no lock needed).
  DistWorld world_;
  bool world_built_ = false;  // plans/tables cached across epoch resets
  std::vector<OwnedDevice> devices_;
  std::vector<std::uint64_t> step_rule_ids_;
  bdd::SerializeCache transfer_cache_;
  RuntimeMetrics local_;
  // Flight-recorder records drained so far. Accumulated (not just the last
  // drain) because the coordinator may re-broadcast Collect after a
  // timeout and a drain consumes — a re-ask must not ship an empty blob.
  obs::TraceSnapshot trace_acc_;
  bool done_ = false;

  // Shared with the transport thread (queue, counters, probe snapshots).
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<DistMsg> queue_;
  std::vector<DistData> parked_;  // Data frames from a future epoch
  bool busy_ = false;
  std::uint32_t epoch_ = 0;
  std::uint64_t sent_ = 0;      // cross-process Data frames, current epoch
  std::uint64_t received_ = 0;  // counted when processed, not enqueued
  std::int64_t completed_phase_ = -1;
};

/// The coordinator (rank 0): drives phases, detects termination, and
/// collects verdicts. One instance per run; not thread-safe (drive it from
/// a single thread).
class DistCoordinator {
 public:
  struct Config {
    std::size_t n_device_procs = 1;
    double probe_interval_s = 0.002;
    /// Patience for hellos/acks/verdicts before re-broadcasting.
    double wait_step_s = 0.05;
  };

  struct PhaseOutcome {
    double wall_seconds = 0.0;
    std::uint32_t resets = 0;  // epoch bumps absorbed during this phase
  };

  struct Collected {
    std::uint64_t violations = 0;
    std::vector<std::string> rows;  // sorted canonical digest, all devices
    RuntimeMetrics metrics;         // merged over device processes
    std::uint32_t epoch = 0;        // final epoch (resets survived = epoch)
    /// Per-rank flight-recorder snapshots (one entry per shipped blob;
    /// empty when tracing is off). The coordinator's own records are
    /// appended by eval::dist_run, not here.
    std::vector<obs::TraceSnapshot> traces;
  };

  DistCoordinator(net::Transport& transport, Config cfg);

  /// Starts the transport and blocks until every device process helloed.
  void start();

  /// Runs the next phase to convergence (replaying earlier phases first if
  /// a device process was reborn).
  PhaseOutcome run_phase();

  /// Collects verdicts, digests and metrics from every device process.
  [[nodiscard]] Collected collect();

  /// Broadcasts Done so device processes exit their run() loops.
  void shutdown();

 private:
  void on_frame(net::PeerId from, std::vector<std::uint8_t> frame);
  void broadcast(const DistMsg& msg);
  /// True when phase `k` terminated; false when interrupted by a reset.
  bool await_termination(std::uint32_t k);
  [[nodiscard]] bool reset_pending();
  void absorb_reset(std::uint32_t upto_phase, PhaseOutcome& outcome);

  net::Transport* transport_;
  Config cfg_;
  std::uint32_t next_phase_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<net::PeerId, std::uint32_t> incarnations_;
  bool world_started_ = false;
  bool reset_wanted_ = false;
  std::uint32_t epoch_ = 0;
  std::uint32_t wave_ = 0;
  std::map<net::PeerId, DistProbeAck> acks_;  // for the current wave
  std::map<net::PeerId, DistVerdicts> verdicts_;
};

}  // namespace tulkun::runtime
