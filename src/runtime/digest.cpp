#include "runtime/digest.hpp"

#include <algorithm>
#include <sstream>

#include "bdd/serialize.hpp"

namespace tulkun::runtime {

namespace {

std::string pred_hex(const packet::PacketSet& p) {
  const auto bytes = bdd::serialize(*p.manager(), p.ref());
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace

std::vector<std::string> canonical_device_rows(
    const verifier::OnDeviceVerifier& v) {
  const auto snapshots = v.engine_snapshots();
  std::vector<InvariantId> ids;
  ids.reserve(snapshots.size());
  for (const auto& [raw, nodes] : snapshots) ids.push_back(raw);
  std::sort(ids.begin(), ids.end());
  const auto dense = [&](InvariantId raw) {
    return std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin();
  };

  std::vector<std::string> rows;
  for (const auto& [raw_inv, nodes] : snapshots) {
    const auto inv = dense(raw_inv);
    for (const auto& ns : nodes) {
      std::ostringstream node_key;
      node_key << v.device() << "|" << inv << "|" << ns.id << "|";
      const std::string prefix = node_key.str();
      for (const auto& e : ns.loc) {
        std::ostringstream os;
        os << "loc|" << prefix << pred_hex(e.pred) << "|"
           << pred_hex(e.down_pred) << "|" << e.action.to_string() << "|"
           << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& e : ns.out_sent) {
        std::ostringstream os;
        os << "out|" << prefix << pred_hex(e.pred) << "|"
           << e.counts.to_string();
        rows.push_back(os.str());
      }
      for (const auto& [down, entries] : ns.cib_in) {
        for (const auto& e : entries) {
          std::ostringstream os;
          os << "cib|" << prefix << down << "|" << pred_hex(e.pred) << "|"
             << e.counts.to_string();
          rows.push_back(os.str());
        }
      }
    }
  }
  for (const auto& vio : v.violations()) {
    std::ostringstream os;
    os << "vio|" << dense(vio.invariant) << "|" << vio.device << "|"
       << vio.node << "|" << pred_hex(vio.pred) << "|"
       << vio.counts.to_string() << "|" << vio.reason;
    rows.push_back(os.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace tulkun::runtime
