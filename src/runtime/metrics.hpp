// Runtime measurement containers shared by the simulator, the sharded
// worker-pool runtime, and the evaluation harness.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/stats.hpp"
#include "fib/prefix_index.hpp"
#include "net/transport.hpp"

namespace tulkun::runtime {

/// Aggregate counters of one run.
struct RunStats {
  std::uint64_t events = 0;        // handler invocations
  std::uint64_t messages = 0;      // envelopes delivered
  std::uint64_t bytes = 0;         // wire bytes (when accounting enabled)
  Samples per_message_seconds;     // host-measured handler durations
  Samples per_device_busy_seconds; // total busy time per device (filled at end)
};

/// Counters of one ShardedRuntime run: how work spread over shards, how
/// well per-destination batching and the cross-space transfer cache did,
/// and how long jobs waited in shard queues. Aggregated from per-shard
/// counters; read only while the runtime is quiescent.
struct RuntimeMetrics {
  std::vector<std::uint64_t> jobs_per_shard;
  std::uint64_t jobs = 0;       // handled jobs (init + update + frame)
  std::uint64_t frames = 0;     // batched message frames enqueued
  std::uint64_t envelopes = 0;  // envelopes carried inside those frames
  std::uint64_t frame_bytes = 0;
  std::uint64_t transfer_cache_hits = 0;
  std::uint64_t transfer_cache_misses = 0;
  /// Node-ID delta streams (dvm::ChannelEncoders): predicates sent in delta
  /// form, BDD nodes actually shipped, and stream resets (epoch/generation
  /// moves or table-bound rollovers).
  std::uint64_t channel_roots = 0;
  std::uint64_t channel_nodes_shipped = 0;
  std::uint64_t channel_resets = 0;
  /// Per-device BDD garbage collection (bdd_gc_node_threshold > 0).
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaimed_nodes = 0;
  Samples batch_size;          // envelopes per frame
  Samples queue_wait_seconds;  // enqueue -> dequeue latency per job

  /// Per-table prefix-index effectiveness (fib/lec/cib_in/loc/out_sent),
  /// snapshotted from the process-global counters over the run's window.
  std::array<fib::IndexCounters, fib::kNumIndexKinds> index;

  /// Wall time per update-processing phase, summed across devices:
  /// LEC-delta derivation/patching, LocCIB recompute, CIBOut emit.
  double lec_delta_seconds = 0.0;
  double recompute_seconds = 0.0;
  double emit_seconds = 0.0;

  /// Network-transport activity summed over links (zeros for purely
  /// in-process runs); net::LinkMetrics is the one counter vocabulary.
  net::LinkMetrics transport;

  [[nodiscard]] double transfer_cache_hit_rate() const;
  [[nodiscard]] double mean_batch_size() const;

  /// Accumulates another shard's (or run's) counters into this one.
  void merge(const RuntimeMetrics& other);
};

/// One-line-per-counter human-readable dump (bench binaries).
void print_metrics(std::ostream& os, const RuntimeMetrics& m);

/// Localizing helpers for distributed runtimes live in sharded_runtime.hpp.

}  // namespace tulkun::runtime
