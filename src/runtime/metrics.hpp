// Runtime measurement containers shared by the simulator, the thread
// runtime, and the evaluation harness.
#pragma once

#include <cstdint>

#include "core/stats.hpp"

namespace tulkun::runtime {

/// Aggregate counters of one run.
struct RunStats {
  std::uint64_t events = 0;        // handler invocations
  std::uint64_t messages = 0;      // envelopes delivered
  std::uint64_t bytes = 0;         // wire bytes (when accounting enabled)
  Samples per_message_seconds;     // host-measured handler durations
  Samples per_device_busy_seconds; // total busy time per device (filled at end)
};

/// Localizing helpers for distributed runtimes live in thread_runtime.hpp.

}  // namespace tulkun::runtime
