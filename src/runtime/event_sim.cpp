#include "runtime/event_sim.hpp"

#include <chrono>

#include "dvm/codec.hpp"

namespace tulkun::runtime {

EventSimulator::EventSimulator(const topo::Topology& topo, SimConfig cfg)
    : topo_(&topo),
      cfg_(cfg),
      busy_until_(topo.device_count(), 0.0),
      busy_total_(topo.device_count(), 0.0) {}

void EventSimulator::make_devices(packet::PacketSpace& space,
                                  dvm::EngineConfig ecfg) {
  devices_.clear();
  devices_.reserve(topo_->device_count());
  for (DeviceId d = 0; d < topo_->device_count(); ++d) {
    devices_.push_back(std::make_unique<verifier::OnDeviceVerifier>(
        d, *topo_, space, ecfg));
  }
}

verifier::OnDeviceVerifier& EventSimulator::device(DeviceId d) {
  TULKUN_ASSERT(d < devices_.size());
  return *devices_[d];
}

void EventSimulator::install(const planner::InvariantPlan& plan) {
  for (auto& dev : devices_) dev->install(plan);
}

void EventSimulator::install_multipath(const planner::MultiPathPlan& plan) {
  for (auto& dev : devices_) dev->install_multipath(plan);
}

void EventSimulator::post(double t, std::shared_ptr<Work> work) {
  queue_.push(Event{t, next_seq_++, std::move(work)});
}

void EventSimulator::post_initialize(DeviceId dev, fib::FibTable fib,
                                     double t) {
  auto w = std::make_shared<Work>();
  w->kind = Work::Kind::Init;
  w->dev = dev;
  w->fib = std::move(fib);
  post(t, std::move(w));
}

std::shared_ptr<const fib::FibUpdate> EventSimulator::post_rule_update(
    DeviceId dev, fib::FibUpdate update, double t) {
  auto w = std::make_shared<Work>();
  w->kind = Work::Kind::Update;
  w->dev = dev;
  w->update = std::move(update);
  std::shared_ptr<const fib::FibUpdate> handle(w, &w->update);
  post(t, std::move(w));
  return handle;
}

void EventSimulator::post_link_event(LinkId link, bool up, double t) {
  // Both endpoints detect the event locally.
  for (const DeviceId endpoint : {link.from, link.to}) {
    auto w = std::make_shared<Work>();
    w->kind = Work::Kind::LinkEvent;
    w->dev = endpoint;
    w->link = link;
    w->link_up = up;
    post(t, std::move(w));
  }
}

void EventSimulator::dispatch_outgoing(DeviceId src, double t,
                                       std::vector<dvm::Envelope> msgs) {
  for (auto& env : msgs) {
    TULKUN_ASSERT(env.src == src);
    // DVM traffic flows between neighbors; comparator reports (§7) may
    // cross several hops and pay the lowest-latency path.
    const double latency =
        (topo_->has_link(env.src, env.dst)
             ? topo_->link_latency(env.src, env.dst)
             : topo_->latency_distances_to(env.dst)[env.src]) +
        2.0 * cfg_.proxy_latency;
    if (cfg_.account_bytes) {
      stats_.bytes += dvm::encoded_size(env);
    }
    ++stats_.messages;
    auto w = std::make_shared<Work>();
    w->kind = Work::Kind::Message;
    w->dev = env.dst;
    w->env = std::move(env);
    post(t + latency, std::move(w));
  }
}

double EventSimulator::run() {
  double last_completion = 0.0;
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    Work& w = *ev.work;
    verifier::OnDeviceVerifier& dev = device(w.dev);

    const double start = std::max(ev.time, busy_until_[w.dev]);
    const auto host_t0 = std::chrono::steady_clock::now();
    std::vector<dvm::Envelope> out;
    switch (w.kind) {
      case Work::Kind::Init:
        out = dev.initialize(std::move(w.fib));
        break;
      case Work::Kind::Update:
        out = dev.apply_rule_update(w.update);
        break;
      case Work::Kind::Message:
        out = dev.on_message(w.env);
        break;
      case Work::Kind::LinkEvent:
        out = dev.on_local_link_event(w.link, w.link_up);
        break;
    }
    const double host_dur =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_t0)
            .count();
    const double dur = host_dur * cfg_.cpu_scale;
    const double completion = start + dur;
    busy_until_[w.dev] = completion;
    busy_total_[w.dev] += dur;
    last_completion = std::max(last_completion, completion);

    ++stats_.events;
    if (w.kind == Work::Kind::Message) {
      stats_.per_message_seconds.add(dur);
    }
    dispatch_outgoing(w.dev, completion, std::move(out));
  }
  return last_completion;
}

std::vector<dvm::Violation> EventSimulator::violations() const {
  std::vector<dvm::Violation> out;
  for (const auto& dev : devices_) {
    auto v = dev->violations();
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

}  // namespace tulkun::runtime
