// Thread-backed runtime: one OS thread per device, each with its own BDD
// space; envelopes cross threads as encoded wire bytes.
//
// This runtime demonstrates that the verifiers are genuinely distributed:
// no shared predicate state exists between devices — every predicate a
// device learns arrives through the DVM codec, exactly as it would over a
// TCP connection between switches. The event simulator is the measurement
// vehicle; this runtime is the fidelity/correctness vehicle (tests assert
// both produce identical verdicts).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fib/update_stream.hpp"
#include "planner/planner.hpp"
#include "verifier/verifier.hpp"

namespace tulkun::runtime {

/// Re-encodes an invariant's packet space into `target` (regexes, ingress
/// sets, and fault scenes carry no BDD state and copy verbatim).
[[nodiscard]] spec::Invariant localize_invariant(const spec::Invariant& inv,
                                                 packet::PacketSpace& target);

/// Re-encodes a rule's extra match (if any) into `target`.
[[nodiscard]] fib::Rule localize_rule(const fib::Rule& rule,
                                      packet::PacketSpace& target);

/// Re-encodes a whole FIB into `target`.
[[nodiscard]] fib::FibTable localize_fib(const fib::FibTable& fib,
                                         packet::PacketSpace& target);

class ThreadRuntime {
 public:
  ThreadRuntime(const topo::Topology& topo, dvm::EngineConfig cfg = {});
  ~ThreadRuntime();

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  /// Installs an invariant on every device (localized per device space).
  void install(const planner::InvariantPlan& plan);

  /// Loads a device's FIB asynchronously (localized on the device thread).
  void post_initialize(DeviceId dev, const fib::FibTable& fib);

  /// Applies a rule update asynchronously.
  void post_rule_update(DeviceId dev, const fib::FibUpdate& update);

  /// Blocks until every queue is drained and no message is in flight.
  void wait_quiescent();

  /// Safe only after wait_quiescent().
  [[nodiscard]] std::vector<dvm::Violation> violations();

  [[nodiscard]] std::size_t device_count() const { return workers_.size(); }

 private:
  /// A rule with its extra match flattened to wire bytes, so rules cross
  /// threads without sharing a BDD manager.
  struct WireRule {
    fib::Rule rule;  // extra_match cleared; rebuilt from extra_bytes
    std::vector<std::uint8_t> extra_bytes;  // empty = prefix-only rule
  };

  struct Job {
    enum class Kind { Init, Update, Bytes } kind = Kind::Bytes;
    std::vector<WireRule> rules;       // Init
    fib::FibUpdate update;             // Update (rule payload in wire form)
    WireRule update_rule;              // Update/Insert payload
    std::vector<std::uint8_t> bytes;   // Bytes: encoded envelope
  };

  [[nodiscard]] static WireRule to_wire(const fib::Rule& rule);
  [[nodiscard]] static fib::Rule from_wire(const WireRule& wire,
                                           packet::PacketSpace& space);

  struct Worker {
    DeviceId dev = kNoDevice;
    std::unique_ptr<packet::PacketSpace> space;
    std::unique_ptr<verifier::OnDeviceVerifier> verifier;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Job> queue;
    std::thread thread;
  };

  void enqueue(DeviceId dev, Job job);
  void worker_loop(Worker& w);
  void handle(Worker& w, Job& job);
  void finish_one();

  const topo::Topology* topo_;
  dvm::EngineConfig cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::int64_t inflight_ = 0;
};

}  // namespace tulkun::runtime
