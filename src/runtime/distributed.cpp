#include "runtime/distributed.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "dvm/codec.hpp"
#include "obs/export.hpp"
#include "runtime/digest.hpp"

namespace tulkun::runtime {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// DeviceProcess
// ---------------------------------------------------------------------------

DeviceProcess::DeviceProcess(net::Transport& transport,
                             const topo::Topology& topo, WorldBuilder builder,
                             Config cfg)
    : transport_(&transport),
      topo_(&topo),
      builder_(std::move(builder)),
      cfg_(cfg) {}

void DeviceProcess::on_frame(net::PeerId /*from*/,
                             std::vector<std::uint8_t> frame) {
  DistMsg msg;
  try {
    msg = decode_dist(frame);
  } catch (const Error&) {
    return;  // transport framing already vetted; drop malformed payloads
  }
  if (const auto* probe = std::get_if<DistProbe>(&msg)) {
    // Answered inline so probe latency is independent of job length; the
    // snapshot is consistent because every counted quantity sits under mu_.
    DistProbeAck ack;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ack.epoch = epoch_;
      ack.wave = probe->wave;
      ack.sent = sent_;
      ack.received = received_;
      ack.idle = queue_.empty() && !busy_;
      ack.phase_started = completed_phase_ >= 0;
      ack.phase = completed_phase_ >= 0
                      ? static_cast<std::uint32_t>(completed_phase_)
                      : 0;
    }
    transport_->send(kCoordinatorRank, encode_dist(ack));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

void DeviceProcess::build_world() {
  devices_.clear();
  // The world (plans, initial tables, update steps) is a deterministic
  // function of the dataset and identical in every epoch; planning it is
  // the expensive part of recovery. Build it once and let epoch resets
  // rebuild only the per-device verifier state — recovery applies the
  // cached plan payload instead of replanning the network.
  if (!world_built_) {
    world_ = builder_();
    world_built_ = true;
  }
  step_rule_ids_.assign(world_.steps.size(), 0);
  for (DeviceId d = 0; d < topo_->device_count(); ++d) {
    if (owner_rank(d, cfg_.n_device_procs) != cfg_.rank) continue;
    OwnedDevice od;
    od.dev = d;
    od.space = std::make_unique<packet::PacketSpace>();
    od.verifier = std::make_unique<verifier::OnDeviceVerifier>(
        d, *topo_, *od.space, cfg_.engine);
    for (const auto& plan : world_.plans) {
      planner::InvariantPlan local = plan;
      local.inv = localize_invariant(plan.inv, *od.space);
      od.verifier->install(local);
    }
    devices_.push_back(std::move(od));
  }
}

DeviceProcess::OwnedDevice* DeviceProcess::owned(DeviceId dev) {
  for (auto& od : devices_) {
    if (od.dev == dev) return &od;
  }
  return nullptr;
}

void DeviceProcess::run() {
  net::Transport::Handlers handlers;
  handlers.on_frame = [this](net::PeerId from, std::vector<std::uint8_t> f) {
    on_frame(from, std::move(f));
  };
  transport_->start(std::move(handlers));
  transport_->send(kCoordinatorRank,
                   encode_dist(DistHello{cfg_.rank, cfg_.incarnation}));
  build_world();
  while (!done_) {
    DistMsg msg;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty(); });
      msg = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    {
      // Inproc runs share threads between logical ranks, so records adopt
      // the rank per processed message rather than per process.
      obs::RankScope rank_scope(cfg_.rank);
      process(msg);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
  }
}

void DeviceProcess::process(DistMsg& msg) {
  if (auto* begin = std::get_if<DistBegin>(&msg)) {
    run_phase(*begin);
  } else if (auto* data = std::get_if<DistData>(&msg)) {
    handle_data(*data);
  } else if (const auto* reset = std::get_if<DistReset>(&msg)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_ = reset->epoch;
      sent_ = 0;
      received_ = 0;
      completed_phase_ = -1;
    }
    build_world();
    // Revive data frames that raced ahead of this Reset; drop older ones.
    std::vector<DistData> keep;
    std::vector<DistData> revive;
    for (auto& d : parked_) {
      if (d.epoch == reset->epoch) {
        revive.push_back(std::move(d));
      } else if (d.epoch > reset->epoch) {
        keep.push_back(std::move(d));
      }
    }
    parked_ = std::move(keep);
    if (!revive.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& d : revive) queue_.emplace_back(std::move(d));
    }
  } else if (const auto* collect = std::get_if<DistCollect>(&msg)) {
    send_verdicts(collect->epoch);
  } else if (std::get_if<DistDone>(&msg) != nullptr) {
    done_ = true;
  }
  // Hello/Probe/ProbeAck/Verdicts never reach the worker queue.
}

void DeviceProcess::run_phase(const DistBegin& begin) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (begin.epoch != epoch_) return;  // stale Begin from before a Reset
  }
  if (cfg_.kill_at_phase == begin.phase && cfg_.incarnation == 0) {
    // Chaos hook: die exactly like a crashed switch process — no cleanup,
    // no goodbye. The supervisor re-forks us with incarnation 1.
    _exit(43);
  }
  // Adopt the coordinator's context: device-side spans (and everything
  // route() stamps onto outgoing Data) link under its phase span.
  obs::ContextScope trace_ctx({begin.trace_id, begin.parent_span});
  TLK_SPAN_ARG("dist.device_phase", begin.phase);
  if (begin.phase == 0) {
    for (auto& od : devices_) {
      auto outs = od.verifier->initialize(
          localize_fib(world_.tables[od.dev], *od.space));
      local_.jobs += 1;
      route(std::move(outs));
    }
  } else {
    const std::size_t idx = begin.phase - 1;
    if (idx < world_.steps.size()) {
      const auto& step = world_.steps[idx];
      if (owner_rank(step.update.device, cfg_.n_device_procs) == cfg_.rank) {
        OwnedDevice* od = owned(step.update.device);
        fib::FibUpdate upd = step.update;
        if (upd.kind == fib::FibUpdate::Kind::Insert) {
          upd.rule = localize_rule(step.update.rule, *od->space);
        }
        if (step.erase_of >= 0) {
          upd.rule_id =
              step_rule_ids_[static_cast<std::size_t>(step.erase_of)];
        }
        auto outs = od->verifier->apply_rule_update(upd);
        step_rule_ids_[idx] = upd.rule_id;
        local_.jobs += 1;
        route(std::move(outs));
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  completed_phase_ = begin.phase;
}

void DeviceProcess::handle_data(DistData& data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (data.epoch != epoch_) {
      // Ahead of our Reset: park until we catch up. Behind: a frame from a
      // previous life; the epoch tag exists precisely to drop it here.
      if (data.epoch > epoch_) parked_.push_back(std::move(data));
      return;
    }
    received_ += 1;
  }
  // Adopt the sender's context so this span links back to the send site.
  obs::ContextScope trace_ctx({data.trace_id, data.parent_span});
  TLK_SPAN_ARG("dist.handle_data", data.frame.size());
  OwnedDevice* od = owned(data.dst_device);
  if (od == nullptr) return;  // misrouted frame; ignore
  std::vector<dvm::Envelope> outs;
  try {
    const auto envs = dvm::decode_frame(data.frame, *od->space);
    for (const auto& env : envs) {
      auto msgs = od->verifier->on_message(env);
      outs.insert(outs.end(), std::make_move_iterator(msgs.begin()),
                  std::make_move_iterator(msgs.end()));
    }
  } catch (const dvm::CodecError&) {
    local_.transport.protocol_errors += 1;
    return;
  }
  local_.jobs += 1;
  route(std::move(outs));
}

void DeviceProcess::route(std::vector<dvm::Envelope> outs) {
  if (outs.empty()) return;
  std::map<DeviceId, std::vector<dvm::Envelope>> by_dst;
  for (auto& env : outs) by_dst[env.dst].push_back(std::move(env));
  const obs::TraceContext ctx = obs::current_context();
  for (auto& [dst, envs] : by_dst) {
    DistData d;
    d.dst_device = dst;
    d.trace_id = ctx.trace_id;
    d.parent_span = ctx.span_id;
    d.frame = dvm::encode_frame(envs, &transfer_cache_);
    local_.frames += 1;
    local_.envelopes += envs.size();
    local_.frame_bytes += d.frame.size();
    local_.batch_size.add(static_cast<double>(envs.size()));
    const net::PeerId owner = owner_rank(dst, cfg_.n_device_procs);
    if (owner == cfg_.rank) {
      // Loopback: both counters move together so the global sums stay
      // balanced without special-casing local frames.
      {
        std::lock_guard<std::mutex> lock(mu_);
        d.epoch = epoch_;
        sent_ += 1;
        queue_.emplace_back(std::move(d));
      }
      cv_.notify_one();
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        d.epoch = epoch_;
        sent_ += 1;
      }
      transport_->send(owner, encode_dist(DistMsg(std::move(d))));
    }
  }
}

void DeviceProcess::send_verdicts(std::uint32_t /*epoch*/) {
  DistVerdicts v;
  {
    std::lock_guard<std::mutex> lock(mu_);
    v.epoch = epoch_;
  }
  v.rank = cfg_.rank;
  for (const auto& od : devices_) {
    auto rows = canonical_device_rows(*od.verifier);
    v.violations += od.verifier->violations().size();
    v.rows.insert(v.rows.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
    v.lec_delta_seconds += od.verifier->stats().lec_delta_seconds;
    const auto totals = od.verifier->engine_totals();
    v.recompute_seconds += totals.recompute_seconds;
    v.emit_seconds += totals.emit_seconds;
  }
  v.jobs = local_.jobs;
  v.frames = local_.frames;
  v.envelopes = local_.envelopes;
  v.frame_bytes = local_.frame_bytes;
  v.transport = local_.transport;
  for (const auto& [peer, m] : transport_->link_metrics()) {
    v.transport.merge(m);
  }
  if (obs::trace_enabled()) {
    obs::merge_snapshot(trace_acc_, obs::drain_snapshot());
    v.trace = obs::serialize_trace(trace_acc_);
  }
  transport_->send(kCoordinatorRank, encode_dist(v));
}

// ---------------------------------------------------------------------------
// DistCoordinator
// ---------------------------------------------------------------------------

DistCoordinator::DistCoordinator(net::Transport& transport, Config cfg)
    : transport_(&transport), cfg_(cfg) {}

void DistCoordinator::on_frame(net::PeerId from,
                               std::vector<std::uint8_t> frame) {
  DistMsg msg;
  try {
    msg = decode_dist(frame);
  } catch (const Error&) {
    return;
  }
  if (const auto* hello = std::get_if<DistHello>(&msg)) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incarnations_.find(hello->rank);
    const bool reborn =
        it != incarnations_.end() && hello->incarnation > it->second;
    if (it == incarnations_.end() || hello->incarnation >= it->second) {
      incarnations_[hello->rank] = hello->incarnation;
    }
    if (reborn && world_started_) reset_wanted_ = true;
  } else if (const auto* ack = std::get_if<DistProbeAck>(&msg)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ack->epoch == epoch_ && ack->wave == wave_) acks_[from] = *ack;
  } else if (auto* verdicts = std::get_if<DistVerdicts>(&msg)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (verdicts->epoch == epoch_) {
      verdicts_[verdicts->rank] = std::move(*verdicts);
    }
  }
  cv_.notify_all();
}

void DistCoordinator::broadcast(const DistMsg& msg) {
  const auto bytes = encode_dist(msg);
  for (std::size_t r = 1; r <= cfg_.n_device_procs; ++r) {
    transport_->send(static_cast<net::PeerId>(r), bytes);
  }
}

void DistCoordinator::start() {
  net::Transport::Handlers handlers;
  handlers.on_frame = [this](net::PeerId from, std::vector<std::uint8_t> f) {
    on_frame(from, std::move(f));
  };
  transport_->start(std::move(handlers));
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return incarnations_.size() >= cfg_.n_device_procs; });
  world_started_ = true;
}

bool DistCoordinator::reset_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  return reset_wanted_;
}

bool DistCoordinator::await_termination(std::uint32_t k) {
  std::uint64_t prev_sent = 0;
  std::uint64_t prev_recv = 0;
  bool have_prev = false;
  const auto wait_step = std::chrono::duration<double>(cfg_.wait_step_s);
  const auto probe_gap = std::chrono::duration<double>(cfg_.probe_interval_s);
  while (true) {
    std::uint32_t epoch = 0;
    std::uint32_t wave = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (reset_wanted_) return false;
      wave_ += 1;
      wave = wave_;
      epoch = epoch_;
      acks_.clear();
    }
    TLK_EVENT_ARG("dist.probe_wave", wave);
    broadcast(DistProbe{epoch, wave});
    bool complete = false;
    bool terminated = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, wait_step, [&] {
        return reset_wanted_ || acks_.size() >= cfg_.n_device_procs;
      });
      if (reset_wanted_) return false;
      complete = acks_.size() >= cfg_.n_device_procs;
      if (complete) {
        bool all_settled = true;
        std::uint64_t sent = 0;
        std::uint64_t recv = 0;
        for (const auto& [rank, ack] : acks_) {
          sent += ack.sent;
          recv += ack.received;
          all_settled = all_settled && ack.idle && ack.phase_started &&
                        ack.phase == k;
        }
        if (all_settled && sent == recv) {
          if (have_prev && prev_sent == sent && prev_recv == recv) {
            terminated = true;  // two consecutive stable, balanced waves
          }
          have_prev = true;
          prev_sent = sent;
          prev_recv = recv;
        } else {
          have_prev = false;
        }
      }
    }
    if (terminated) return true;
    // Missing acks (dead or slow peer): just probe again — a rebirth Hello
    // will flip reset_wanted_ and abort this wait.
    if (complete) std::this_thread::sleep_for(probe_gap);
  }
}

void DistCoordinator::absorb_reset(std::uint32_t upto_phase,
                                   PhaseOutcome& outcome) {
  TLK_SPAN_ARG("dist.reset", upto_phase);
  bool again = true;
  while (again) {
    again = false;
    std::uint32_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reset_wanted_ = false;
      epoch_ += 1;
      epoch = epoch_;
      wave_ = 0;
      acks_.clear();
    }
    outcome.resets += 1;
    TLK_EVENT_ARG("dist.epoch_bump", epoch);
    broadcast(DistReset{epoch});
    // Replay every phase completed before the crash; world construction is
    // deterministic, so the replay reconverges to the identical state.
    const obs::TraceContext ctx = obs::current_context();
    for (std::uint32_t p = 0; p < upto_phase && !again; ++p) {
      while (true) {
        if (reset_pending()) {
          again = true;
          break;
        }
        broadcast(DistBegin{epoch, p, ctx.trace_id, ctx.span_id});
        if (await_termination(p)) break;
      }
    }
    if (!again && reset_pending()) again = true;
  }
}

DistCoordinator::PhaseOutcome DistCoordinator::run_phase() {
  PhaseOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t k = next_phase_;
  // Each phase is one distributed trace: mint its id here, span it, and
  // ship the context inside Begin so every rank's work links under it.
  obs::ContextScope trace_root(
      {obs::trace_enabled() ? obs::new_trace_id() : 0, 0});
  TLK_SPAN_ARG("dist.phase", k);
  const obs::TraceContext ctx = obs::current_context();
  while (true) {
    if (reset_pending()) absorb_reset(k, out);
    std::uint32_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch = epoch_;
    }
    broadcast(DistBegin{epoch, k, ctx.trace_id, ctx.span_id});
    if (await_termination(k)) break;
  }
  next_phase_ = k + 1;
  out.wall_seconds = seconds_since(t0);
  return out;
}

DistCoordinator::Collected DistCoordinator::collect() {
  Collected out;
  const auto wait_step = std::chrono::duration<double>(cfg_.wait_step_s);
  while (true) {
    std::uint32_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch = epoch_;
      verdicts_.clear();
    }
    broadcast(DistCollect{epoch});
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, wait_step,
                 [&] { return verdicts_.size() >= cfg_.n_device_procs; });
    if (verdicts_.size() < cfg_.n_device_procs) continue;  // re-ask
    out.epoch = epoch;
    for (auto& [rank, v] : verdicts_) {
      out.violations += v.violations;
      out.rows.insert(out.rows.end(),
                      std::make_move_iterator(v.rows.begin()),
                      std::make_move_iterator(v.rows.end()));
      out.metrics.jobs += v.jobs;
      out.metrics.frames += v.frames;
      out.metrics.envelopes += v.envelopes;
      out.metrics.frame_bytes += v.frame_bytes;
      out.metrics.lec_delta_seconds += v.lec_delta_seconds;
      out.metrics.recompute_seconds += v.recompute_seconds;
      out.metrics.emit_seconds += v.emit_seconds;
      out.metrics.transport.merge(v.transport);
      if (!v.trace.empty()) {
        try {
          out.traces.push_back(obs::deserialize_trace(v.trace));
        } catch (const Error&) {
          // A malformed blob loses that rank's trace, never the run.
        }
      }
    }
    break;
  }
  // Fold in the coordinator's own side of the control links.
  for (const auto& [peer, m] : transport_->link_metrics()) {
    out.metrics.transport.merge(m);
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

void DistCoordinator::shutdown() { broadcast(DistDone{}); }

}  // namespace tulkun::runtime
