#include "runtime/sharded_runtime.hpp"

#include <algorithm>
#include <map>

#include "dvm/codec.hpp"
#include "obs/trace.hpp"

namespace tulkun::runtime {

namespace {

packet::PacketSet transfer(const packet::PacketSet& p,
                           packet::PacketSpace& target) {
  if (pred::atom_path_enabled() && p.atom_ref() != pred::kNoAtom) {
    // Atom-tier predicate: re-intern the interval list directly; neither
    // space builds a BDD.
    const auto ivs = p.atom_store()->intervals(p.atom_ref());
    return target.from_intervals({ivs.begin(), ivs.end()});
  }
  const auto bytes = bdd::serialize(*p.manager(), p.ref());
  return target.wrap(bdd::deserialize(target.manager(), bytes));
}

}  // namespace

spec::Invariant localize_invariant(const spec::Invariant& inv,
                                   packet::PacketSpace& target) {
  spec::Invariant out = inv;
  out.packet_space = transfer(inv.packet_space, target);
  return out;
}

fib::Rule localize_rule(const fib::Rule& rule, packet::PacketSpace& target) {
  fib::Rule out = rule;
  if (rule.extra_match) {
    out.extra_match = transfer(*rule.extra_match, target);
  }
  return out;
}

fib::FibTable localize_fib(const fib::FibTable& fib,
                           packet::PacketSpace& target) {
  fib::FibTable out;
  for (const fib::Rule* r : fib.ordered()) {
    out.insert(localize_rule(*r, target));
  }
  return out;
}

ShardedRuntime::ShardedRuntime(const topo::Topology& topo,
                               dvm::EngineConfig cfg)
    : topo_(&topo), cfg_(cfg) {
  devices_.reserve(topo.device_count());
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    Device dev;
    dev.dev = d;
    dev.space = std::make_unique<packet::PacketSpace>();
    dev.verifier = std::make_unique<verifier::OnDeviceVerifier>(
        d, topo, *dev.space, cfg);
    dev.channels = std::make_unique<dvm::ChannelDecoders>(dev.space->manager());
    devices_.push_back(std::move(dev));
  }

  std::size_t n_shards = cfg.runtime_shards;
  if (n_shards == 0) {
    n_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  // More shards than devices would idle; cap (also keeps tiny tests light).
  n_shards = std::max<std::size_t>(
      1, std::min<std::size_t>(n_shards, devices_.size()));
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->local.jobs_per_shard.assign(n_shards, 0);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards_[s]->thread = std::thread([this, s] { worker_loop(s); });
  }
}

ShardedRuntime::~ShardedRuntime() {
  stopping_.store(true);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedRuntime::install(const planner::InvariantPlan& plan) {
  // Installation happens between work waves; localize on the caller thread
  // while each device space is otherwise untouched. The next enqueue's
  // shard mutex publishes the installed state to the shard thread.
  wait_quiescent();
  for (auto& dev : devices_) {
    planner::InvariantPlan local = plan;
    local.inv = localize_invariant(plan.inv, *dev.space);
    dev.verifier->install(local);
  }
}

void ShardedRuntime::enqueue(Job job) {
  job.enqueued = std::chrono::steady_clock::now();
  Shard& shard = *shards_[shard_of(job.dev)];
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue.push_back(std::move(job));
  }
  shard.cv.notify_one();
}

void ShardedRuntime::finish_one() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Regression note: the notify must be ordered with the waiter's
    // predicate check — take the quiesce mutex (even empty) so the wake
    // cannot slip between the waiter's load and its sleep.
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

ShardedRuntime::WireRule ShardedRuntime::to_wire(const fib::Rule& rule) {
  WireRule out;
  out.rule = rule;
  if (rule.extra_match) {
    out.extra_bytes =
        bdd::serialize(*rule.extra_match->manager(), rule.extra_match->ref());
    out.rule.extra_match.reset();
  }
  return out;
}

fib::Rule ShardedRuntime::from_wire(const WireRule& wire,
                                    packet::PacketSpace& space) {
  fib::Rule out = wire.rule;
  if (!wire.extra_bytes.empty()) {
    out.extra_match =
        space.wrap(bdd::deserialize(space.manager(), wire.extra_bytes));
  }
  return out;
}

void ShardedRuntime::post_initialize(DeviceId dev, const fib::FibTable& fib) {
  Job job;
  job.kind = Job::Kind::Init;
  job.dev = dev;
  // Flatten to wire form on the caller thread (reads only the caller's
  // space); the shard thread rebuilds rules in the device's own space.
  for (const fib::Rule* r : fib.ordered()) job.rules.push_back(to_wire(*r));
  enqueue(std::move(job));
}

std::shared_ptr<const fib::FibUpdate> ShardedRuntime::post_rule_update(
    DeviceId dev, const fib::FibUpdate& update) {
  Job job;
  job.kind = Job::Kind::Update;
  job.dev = dev;
  job.update = std::make_shared<fib::FibUpdate>(update);
  if (update.kind == fib::FibUpdate::Kind::Insert) {
    job.update_rule = to_wire(update.rule);
    job.update->rule = fib::Rule{};
  }
  std::shared_ptr<const fib::FibUpdate> handle = job.update;
  enqueue(std::move(job));
  return handle;
}

void ShardedRuntime::wait_quiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

std::vector<dvm::Violation> ShardedRuntime::violations() {
  std::vector<dvm::Violation> out;
  for (auto& dev : devices_) {
    auto v = dev.verifier->violations();
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

RuntimeMetrics ShardedRuntime::metrics() const {
  RuntimeMetrics out;
  out.jobs_per_shard.assign(shards_.size(), 0);
  for (const auto& shard : shards_) {
    out.merge(shard->local);
    out.transfer_cache_hits += shard->transfer_cache.hits();
    out.transfer_cache_misses += shard->transfer_cache.misses();
    out.channel_roots += shard->channel_encoders.roots_encoded();
    out.channel_nodes_shipped += shard->channel_encoders.nodes_shipped();
    out.channel_resets += shard->channel_encoders.resets();
  }
  // Prefix-index effectiveness over this process (callers reset the global
  // counters at run start to scope them to one run).
  out.index = fib::index_counters_snapshot();
  for (const auto& dev : devices_) {
    out.lec_delta_seconds += dev.verifier->stats().lec_delta_seconds;
    const auto totals = dev.verifier->engine_totals();
    out.recompute_seconds += totals.recompute_seconds;
    out.emit_seconds += totals.emit_seconds;
    out.gc_runs += dev.space->manager().gc_runs();
    out.gc_reclaimed_nodes += dev.space->manager().gc_reclaimed();
  }
  return out;
}

void ShardedRuntime::handle(Shard& shard, Job& job) {
  Device& dev = devices_[job.dev];
  std::vector<dvm::Envelope> out;
  switch (job.kind) {
    case Job::Kind::Init: {
      fib::FibTable local;
      for (const auto& wr : job.rules) {
        local.insert(from_wire(wr, *dev.space));
      }
      out = dev.verifier->initialize(std::move(local));
      break;
    }
    case Job::Kind::Update: {
      fib::FibUpdate local = *job.update;
      if (local.kind == fib::FibUpdate::Kind::Insert) {
        local.rule = from_wire(job.update_rule, *dev.space);
      }
      out = dev.verifier->apply_rule_update(local);
      // Publish the assigned id (and, on erase, the removed rule's prefix
      // match — but not its extra predicate, which belongs to this space)
      // back through the caller's handle.
      job.update->rule_id = local.rule_id;
      break;
    }
    case Job::Kind::Frame: {
      const auto envs = dvm::decode_frame(
          job.bytes, *dev.space, dvm::default_decode_limits(),
          dev.channels.get());
      for (const auto& env : envs) {
        auto msgs = dev.verifier->on_message(env);
        out.insert(out.end(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
      }
      break;
    }
  }
  // Encode outgoing envelopes on this shard (sender's spaces), coalescing
  // everything bound for the same destination into one frame. Predicate
  // serialization is memoized per shard, so an UPDATE flooded to N
  // neighbors serializes its BDD once.
  std::map<DeviceId, std::vector<dvm::Envelope>> by_dst;
  for (auto& env : out) {
    by_dst[env.dst].push_back(std::move(env));
  }
  for (auto& [dst, envs] : by_dst) {
    Job next;
    next.kind = Job::Kind::Frame;
    next.dev = dst;
    next.bytes = dvm::encode_frame(envs, &shard.transfer_cache,
                                   &shard.channel_encoders);
    shard.local.frames += 1;
    shard.local.envelopes += envs.size();
    shard.local.frame_bytes += next.bytes.size();
    shard.local.batch_size.add(static_cast<double>(envs.size()));
    enqueue(std::move(next));
  }
  by_dst.clear();  // outgoing refs die before a collection can move them
  // Threshold-triggered mark/sweep of this device's BDD space. Root
  // enumeration walks the whole verifier state, so it only happens when a
  // collection is actually due. Every localized ref is reachable from the
  // verifier or the channel decoder tables: outgoing envelopes were
  // already flattened to bytes above.
  if (dev.space->manager().gc_pending(cfg_.bdd_gc_node_threshold)) {
    std::vector<bdd::NodeRef> roots;
    dev.verifier->collect_refs(roots);
    dev.channels->collect_refs(roots);
    dev.space->manager().maybe_gc(roots, cfg_.bdd_gc_node_threshold);
  }
}

void ShardedRuntime::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  obs::set_thread_label("shard" + std::to_string(shard_index));
  while (true) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return stopping_.load() || !shard.queue.empty();
      });
      if (stopping_.load() && shard.queue.empty()) return;
      batch.swap(shard.queue);
    }
    TLK_SPAN_ARG("runtime.batch", batch.size());
    const auto drained = std::chrono::steady_clock::now();
    for (auto& job : batch) {
      shard.local.queue_wait_seconds.add(
          std::chrono::duration<double>(drained - job.enqueued).count());
      handle(shard, job);
      shard.local.jobs_per_shard[shard_index] += 1;
      shard.local.jobs += 1;
      finish_one();
    }
  }
}

}  // namespace tulkun::runtime
