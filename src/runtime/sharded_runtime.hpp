// Sharded worker-pool runtime: a fixed-size pool of OS threads (default
// hardware_concurrency) executes all simulated devices; each device has its
// own BDD space, and envelopes cross shard boundaries as encoded wire
// bytes, batched per destination into multi-envelope frames.
//
// This runtime demonstrates that the verifiers are genuinely distributed:
// no shared predicate state exists between devices — every predicate a
// device learns arrives through the DVM codec, exactly as it would over a
// TCP connection between switches. The event simulator is the measurement
// vehicle; this runtime is the fidelity/correctness vehicle (tests assert
// both produce identical verdicts) and the throughput vehicle (wall-clock
// benches drive it with a configurable shard count).
//
// Replaces the earlier thread-per-device ThreadRuntime, which spawned 320+
// threads on the DC datasets and took two mutex acquisitions per job on a
// global inflight counter. Devices hash onto shards; a shard drains its
// MPSC queue FIFO, so per-device job ordering is preserved (a device always
// lands on the same shard). In-flight accounting is a single atomic with
// one condition variable signalled only on the zero transition.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bdd/serialize.hpp"
#include "dvm/codec.hpp"
#include "fib/update_stream.hpp"
#include "planner/planner.hpp"
#include "runtime/metrics.hpp"
#include "verifier/verifier.hpp"

namespace tulkun::runtime {

/// Re-encodes an invariant's packet space into `target` (regexes, ingress
/// sets, and fault scenes carry no BDD state and copy verbatim).
[[nodiscard]] spec::Invariant localize_invariant(const spec::Invariant& inv,
                                                 packet::PacketSpace& target);

/// Re-encodes a rule's extra match (if any) into `target`.
[[nodiscard]] fib::Rule localize_rule(const fib::Rule& rule,
                                      packet::PacketSpace& target);

/// Re-encodes a whole FIB into `target`.
[[nodiscard]] fib::FibTable localize_fib(const fib::FibTable& fib,
                                         packet::PacketSpace& target);

class ShardedRuntime {
 public:
  /// `cfg.runtime_shards` selects the worker-pool size (0 = one worker per
  /// hardware thread). Every other EngineConfig field is forwarded to the
  /// per-device engines.
  ShardedRuntime(const topo::Topology& topo, dvm::EngineConfig cfg = {});
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Installs an invariant on every device (localized per device space).
  /// Must be called while quiescent (waits for quiescence itself).
  void install(const planner::InvariantPlan& plan);

  /// Loads a device's FIB asynchronously (localized on the shard thread).
  void post_initialize(DeviceId dev, const fib::FibTable& fib);

  /// Applies a rule update asynchronously. After the next wait_quiescent()
  /// the returned handle's rule_id holds the id assigned on Insert.
  std::shared_ptr<const fib::FibUpdate> post_rule_update(
      DeviceId dev, const fib::FibUpdate& update);

  /// Blocks until every queue is drained and no message is in flight.
  /// Must not race with concurrent post_* calls from other threads.
  void wait_quiescent();

  /// Safe only after wait_quiescent().
  [[nodiscard]] std::vector<dvm::Violation> violations();

  /// Direct access to one device's verifier (digests, inspection).
  /// Safe only after wait_quiescent().
  [[nodiscard]] const verifier::OnDeviceVerifier& device(DeviceId dev) const {
    return *devices_[dev].verifier;
  }

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Aggregated shard counters. Safe only after wait_quiescent().
  [[nodiscard]] RuntimeMetrics metrics() const;

 private:
  /// A rule with its extra match flattened to wire bytes, so rules cross
  /// threads without sharing a BDD manager.
  struct WireRule {
    fib::Rule rule;  // extra_match cleared; rebuilt from extra_bytes
    std::vector<std::uint8_t> extra_bytes;  // empty = prefix-only rule
  };

  struct Job {
    enum class Kind { Init, Update, Frame } kind = Kind::Frame;
    DeviceId dev = kNoDevice;          // destination device
    std::vector<WireRule> rules;       // Init
    std::shared_ptr<fib::FibUpdate> update;  // Update (result handle)
    WireRule update_rule;              // Update/Insert payload
    std::vector<std::uint8_t> bytes;   // Frame: encoded envelope batch
    std::chrono::steady_clock::time_point enqueued;
  };

  [[nodiscard]] static WireRule to_wire(const fib::Rule& rule);
  [[nodiscard]] static fib::Rule from_wire(const WireRule& wire,
                                           packet::PacketSpace& space);

  struct Device {
    DeviceId dev = kNoDevice;
    std::unique_ptr<packet::PacketSpace> space;
    std::unique_ptr<verifier::OnDeviceVerifier> verifier;
    // Per-source node-ID delta decoders (bound to this device's manager);
    // their stream tables are part of this device's gc roots.
    std::unique_ptr<dvm::ChannelDecoders> channels;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Job> queue;  // MPSC: any thread pushes, shard thread drains
    std::thread thread;
    // Written by the shard thread only (read after quiescence). A device
    // always runs on its home shard, so the per-(src, dst) channel
    // encoders here see each source's messages in emission order — the
    // FIFO discipline the delta streams require.
    bdd::SerializeCache transfer_cache;
    dvm::ChannelEncoders channel_encoders;
    RuntimeMetrics local;
  };

  [[nodiscard]] std::size_t shard_of(DeviceId dev) const {
    return dev % shards_.size();
  }

  void enqueue(Job job);
  void worker_loop(std::size_t shard_index);
  void handle(Shard& shard, Job& job);
  void finish_one();

  const topo::Topology* topo_;
  dvm::EngineConfig cfg_;
  std::vector<Device> devices_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};

  // Queued + executing jobs. A handler's outputs are enqueued before its
  // own decrement, so the count cannot touch zero while work remains.
  std::atomic<std::int64_t> inflight_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
};

}  // namespace tulkun::runtime
