// Wire protocol of the multi-process DistributedRuntime.
//
// Every transport frame between processes carries one DistMsg. Control
// messages flow between the coordinator (rank 0) and the device processes;
// Data messages carry dvm-encoded envelope frames directly between device
// processes. All Data traffic (and the coordinator's probe rounds) is
// tagged with an epoch: the coordinator bumps the epoch when a device
// process is reborn, every process then rebuilds its deterministic world,
// and frames from the previous life are recognized by their stale tag and
// dropped instead of corrupting the rebuilt state.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/error.hpp"
#include "runtime/metrics.hpp"

namespace tulkun::runtime {

/// First (and only first) message a device process sends the coordinator.
/// `incarnation` counts rebirths: the supervisor increments it each time it
/// re-forks a dead rank, and a Hello with a higher incarnation than the
/// last one recorded is what triggers the coordinator's epoch reset.
struct DistHello {
  std::uint32_t rank = 0;
  std::uint32_t incarnation = 0;
};

/// Coordinator -> all: run phase `phase` (0 = FIB burst, k >= 1 = update
/// step k-1 of the deterministic workload). Carries the coordinator's trace
/// context so device-side spans link under the phase span (0 = no tracing).
struct DistBegin {
  std::uint32_t epoch = 0;
  std::uint32_t phase = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Coordinator -> all: one wave of the four-counter termination probe.
struct DistProbe {
  std::uint32_t epoch = 0;
  std::uint32_t wave = 0;
};

/// Device process -> coordinator: consistent snapshot for one probe wave.
/// `sent`/`received` count cross-process Data frames in the current epoch;
/// `idle` means the work queue was empty and no job was executing; `phase`
/// is the highest Begin already processed (termination additionally
/// requires every process to have reached the current phase, otherwise a
/// process that merely has not seen the Begin yet looks idle).
struct DistProbeAck {
  std::uint32_t epoch = 0;
  std::uint32_t wave = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  bool idle = false;
  std::uint32_t phase = 0;
  bool phase_started = false;  // false until the first Begin of this epoch
};

/// Coordinator -> all: discard all verification state, rebuild the world
/// from the deterministic seed, and switch to `epoch`. The coordinator
/// replays Begin 0..k afterwards.
struct DistReset {
  std::uint32_t epoch = 0;
};

/// Coordinator -> all: report verdicts and state digests.
struct DistCollect {
  std::uint32_t epoch = 0;
};

/// Device process -> coordinator: canonical digest rows (tables and
/// violations, see runtime/digest.hpp) of all owned devices, plus the
/// process's runtime counters.
struct DistVerdicts {
  std::uint32_t epoch = 0;
  std::uint32_t rank = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> rows;
  // Flattened RuntimeMetrics slice worth shipping (Samples stay local).
  std::uint64_t jobs = 0;
  std::uint64_t frames = 0;
  std::uint64_t envelopes = 0;
  std::uint64_t frame_bytes = 0;
  double lec_delta_seconds = 0.0;
  double recompute_seconds = 0.0;
  double emit_seconds = 0.0;
  net::LinkMetrics transport;
  /// obs::serialize_trace blob: the rank's flight-recorder records drained
  /// since the last Collect (empty when tracing is off).
  std::vector<std::uint8_t> trace;
};

/// Coordinator -> all: run is over, exit cleanly.
struct DistDone {};

/// Device process -> device process: a dvm::encode_frame byte string for
/// `dst_device` (owned by the receiver), valid within `epoch`. The sender's
/// trace context rides along so the receiver's handling span links causally
/// back to the send site (0 = no tracing).
struct DistData {
  std::uint32_t epoch = 0;
  std::uint32_t dst_device = 0;
  std::vector<std::uint8_t> frame;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

using DistMsg = std::variant<DistHello, DistBegin, DistProbe, DistProbeAck,
                             DistReset, DistCollect, DistVerdicts, DistDone,
                             DistData>;

[[nodiscard]] std::vector<std::uint8_t> encode_dist(const DistMsg& msg);
/// Throws Error on malformed input.
[[nodiscard]] DistMsg decode_dist(std::span<const std::uint8_t> bytes);

}  // namespace tulkun::runtime
