#include "runtime/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace tulkun::runtime {

double RuntimeMetrics::transfer_cache_hit_rate() const {
  const std::uint64_t total = transfer_cache_hits + transfer_cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(transfer_cache_hits) /
                          static_cast<double>(total);
}

double RuntimeMetrics::mean_batch_size() const {
  return frames == 0
             ? 0.0
             : static_cast<double>(envelopes) / static_cast<double>(frames);
}

void RuntimeMetrics::merge(const RuntimeMetrics& other) {
  if (jobs_per_shard.size() < other.jobs_per_shard.size()) {
    jobs_per_shard.resize(other.jobs_per_shard.size(), 0);
  }
  for (std::size_t i = 0; i < other.jobs_per_shard.size(); ++i) {
    jobs_per_shard[i] += other.jobs_per_shard[i];
  }
  jobs += other.jobs;
  frames += other.frames;
  envelopes += other.envelopes;
  frame_bytes += other.frame_bytes;
  transfer_cache_hits += other.transfer_cache_hits;
  transfer_cache_misses += other.transfer_cache_misses;
  channel_roots += other.channel_roots;
  channel_nodes_shipped += other.channel_nodes_shipped;
  channel_resets += other.channel_resets;
  gc_runs += other.gc_runs;
  gc_reclaimed_nodes += other.gc_reclaimed_nodes;
  for (const double v : other.batch_size.values()) batch_size.add(v);
  for (const double v : other.queue_wait_seconds.values()) {
    queue_wait_seconds.add(v);
  }
  for (std::size_t k = 0; k < fib::kNumIndexKinds; ++k) {
    index[k].merge(other.index[k]);
  }
  lec_delta_seconds += other.lec_delta_seconds;
  recompute_seconds += other.recompute_seconds;
  emit_seconds += other.emit_seconds;
  transport.merge(other.transport);
}

void print_metrics(std::ostream& os, const RuntimeMetrics& m) {
  os << "  shards: " << m.jobs_per_shard.size() << ", jobs/shard: [";
  for (std::size_t i = 0; i < m.jobs_per_shard.size(); ++i) {
    os << (i ? " " : "") << m.jobs_per_shard[i];
  }
  os << "]\n";
  os << "  frames: " << m.frames << " carrying " << m.envelopes
     << " envelopes (" << format_bytes(static_cast<double>(m.frame_bytes))
     << "), mean batch " << m.mean_batch_size() << "\n";
  os << "  transfer cache: " << m.transfer_cache_hits << " hits / "
     << m.transfer_cache_misses << " misses (hit rate "
     << m.transfer_cache_hit_rate() << ")\n";
  if (m.channel_roots != 0) {
    os << "  delta channels: " << m.channel_roots << " preds, "
       << m.channel_nodes_shipped << " nodes shipped, " << m.channel_resets
       << " resets\n";
  }
  if (m.gc_runs != 0) {
    os << "  bdd gc: " << m.gc_runs << " runs, " << m.gc_reclaimed_nodes
       << " nodes reclaimed\n";
  }
  if (!m.queue_wait_seconds.empty()) {
    os << "  queue wait: p50 "
       << format_duration(m.queue_wait_seconds.quantile(0.5)) << ", p99 "
       << format_duration(m.queue_wait_seconds.quantile(0.99)) << ", max "
       << format_duration(m.queue_wait_seconds.max()) << "\n";
  }
  for (std::size_t k = 0; k < fib::kNumIndexKinds; ++k) {
    const auto& c = m.index[k];
    if (c.queries == 0) continue;
    os << "  index[" << fib::index_kind_name(static_cast<fib::IndexKind>(k))
       << "]: " << c.queries << " queries, " << c.candidates
       << " candidates, " << c.skipped << " skipped (skip rate "
       << c.skip_rate() << "), " << c.full_scans << " full scans\n";
  }
  if (m.lec_delta_seconds + m.recompute_seconds + m.emit_seconds > 0.0) {
    os << "  phases: lec-delta " << format_duration(m.lec_delta_seconds)
       << ", recompute " << format_duration(m.recompute_seconds) << ", emit "
       << format_duration(m.emit_seconds) << "\n";
  }
  const auto& t = m.transport;
  if (t.frames_sent + t.frames_received > 0) {
    os << "  transport: sent " << t.frames_sent << " frames ("
       << format_bytes(static_cast<double>(t.bytes_sent)) << "), received "
       << t.frames_received << " frames ("
       << format_bytes(static_cast<double>(t.bytes_received)) << "), "
       << t.reconnects << " reconnects, " << t.heartbeat_misses
       << " heartbeat misses, " << t.protocol_errors
       << " protocol errors, send-queue peak " << t.send_queue_peak << "\n";
  }
}

}  // namespace tulkun::runtime
