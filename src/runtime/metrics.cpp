#include "runtime/metrics.hpp"

// Currently header-only; kept as a translation unit anchor so the metrics
// types have a home if they grow out-of-line members.
namespace tulkun::runtime {}
