// DVM protocol messages (§5.2).
//
// UPDATE carries counting results along a DPVNet link in the upstream
// direction, maintaining the protocol invariant that the union of withdrawn
// predicates equals the union of the incoming results' predicates.
// SUBSCRIBE supports packet transformations: it asks a downstream node to
// report counts for the rewritten predicate. LINKSTATE implements the §6
// failure-flooding used to synchronize fault scenes.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "count/count_set.hpp"
#include "core/ids.hpp"
#include "packet/packet_set.hpp"

namespace tulkun::dvm {

/// One (predicate, counts) pair as stored in CIBs and sent in UPDATEs.
struct CountEntry {
  packet::PacketSet pred;
  count::CountSet counts;
};

struct UpdateMessage {
  InvariantId invariant = 0;
  NodeId up_node = kNoNode;    // u: the intended link is (u, v)
  NodeId down_node = kNoNode;  // v: the sender's node
  std::vector<packet::PacketSet> withdrawn;
  std::vector<CountEntry> results;
};

struct SubscribeMessage {
  InvariantId invariant = 0;
  NodeId up_node = kNoNode;
  NodeId down_node = kNoNode;
  packet::PacketSet original;   // predicate1 (pre-rewrite)
  packet::PacketSet rewritten;  // predicate2 (what v should report)
};

struct LinkStateMessage {
  LinkId link;          // canonical from < to
  bool up = false;
  std::uint64_t seq = 0;  // per-origin sequence number
  DeviceId origin = kNoDevice;
};

/// Path-collection update for the §7 multi-path extension: instead of
/// counts, nodes propagate the *actual* downstream paths (device
/// sequences) their packets may take, so user-defined comparisons (route
/// symmetry, disjointness) can run on complete paths.
struct PathSetUpdate {
  InvariantId session = 0;
  /// kNoNode: a report from a side's source node to the comparator device.
  NodeId up_node = kNoNode;
  NodeId down_node = kNoNode;
  std::uint8_t side = 0;  // which PathQuery of the comparison (0 or 1)
  std::vector<packet::PacketSet> withdrawn;
  struct Entry {
    packet::PacketSet pred;
    std::vector<std::vector<DeviceId>> paths;  // sorted, unique
  };
  std::vector<Entry> results;
};

using Message = std::variant<UpdateMessage, SubscribeMessage,
                             LinkStateMessage, PathSetUpdate>;

/// A message addressed between devices (the runtime adds latency/ordering).
struct Envelope {
  DeviceId src = kNoDevice;
  DeviceId dst = kNoDevice;
  Message msg;
};

}  // namespace tulkun::dvm
