// Path-collection engine for multi-path invariants (§7).
//
// Structure mirrors DeviceEngine, but nodes propagate *path sets* instead
// of count sets: LocPIB maps packet predicates to the set of device
// sequences packets may traverse from this node to the destination (the
// possible-path semantics — ALL replication and ANY alternatives both
// contribute every branch). Each side's source reports its collected
// paths to the comparator device, which runs the user-defined comparison.
#pragma once

#include <map>
#include <optional>

#include "dpvnet/dpvnet.hpp"
#include "dvm/engine.hpp"
#include "spec/multipath.hpp"

namespace tulkun::dvm {

class PathSetEngine {
 public:
  PathSetEngine(DeviceId dev, const dpvnet::DpvNet& dag_a,
                const dpvnet::DpvNet& dag_b,
                const spec::MultiPathInvariant& inv, InvariantId session,
                packet::PacketSpace& space);

  std::vector<Envelope> set_lec(fib::LecTable lec);
  std::vector<Envelope> on_lec_deltas(const std::vector<fib::LecDelta>& deltas,
                                      fib::LecTable lec);
  std::vector<Envelope> on_pathset(const PathSetUpdate& msg);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// The comparator's current view (valid only on the comparator device):
  /// per side, the union of collected paths over the side's packet space.
  [[nodiscard]] std::optional<std::pair<spec::PathSet, spec::PathSet>>
  comparator_view() const;

  [[nodiscard]] InvariantId session() const { return session_; }

  /// Appends every BDD ref this engine pins (gc root enumeration).
  void collect_refs(std::vector<bdd::NodeRef>& out) const;

 private:
  struct PathEntry {
    packet::PacketSet pred;
    spec::PathSet paths;
  };

  struct NodeState {
    NodeId id = kNoNode;
    std::uint8_t side = 0;
    std::map<NodeId, std::vector<PathEntry>> pib_in;  // per downstream node
    std::vector<PathEntry> loc;
    std::vector<PathEntry> out_sent;
  };

  struct Side {
    const dpvnet::DpvNet* dag = nullptr;
    const spec::PathQuery* query = nullptr;
    std::vector<NodeState> nodes;
    std::map<NodeId, std::size_t> node_index;
    NodeId source = kNoNode;           // this side's source node
    bool source_hosted_here = false;
  };

  /// Disjoint (pred, paths) cover of `region` from a child's table;
  /// uncovered packets map to the empty path set.
  [[nodiscard]] static std::vector<PathEntry> lookup(
      const std::vector<PathEntry>& table, const packet::PacketSet& region,
      packet::PacketSpace& space);

  [[nodiscard]] std::vector<PathEntry> compute_region(
      Side& side, NodeState& ns, const packet::PacketSet& region);
  void recompute(Side& side, NodeState& ns, const packet::PacketSet& region,
                 std::vector<Envelope>& out);
  void emit(Side& side, NodeState& ns, std::vector<Envelope>& out);
  void report_to_comparator(Side& side, const NodeState& ns,
                            std::vector<Envelope>& out);
  void absorb_report(std::uint8_t side_idx,
                     const std::vector<PathSetUpdate::Entry>& entries);
  void evaluate();

  DeviceId dev_;
  const spec::MultiPathInvariant* inv_;
  InvariantId session_;
  packet::PacketSpace* space_;
  fib::LecTable lec_;
  Side sides_[2];
  bool is_comparator_ = false;
  // Comparator state: per-side union of reported paths.
  spec::PathSet reported_[2];
  bool have_report_[2] = {false, false};
  std::vector<Violation> violations_;
};

}  // namespace tulkun::dvm
