#include "dvm/pathset.hpp"

#include <algorithm>

namespace tulkun::dvm {

namespace {

void normalize(spec::PathSet& paths) {
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
}

spec::PathSet prepend(DeviceId dev, const spec::PathSet& paths) {
  spec::PathSet out;
  out.reserve(paths.size());
  for (const auto& p : paths) {
    spec::CollectedPath np;
    np.reserve(p.size() + 1);
    np.push_back(dev);
    np.insert(np.end(), p.begin(), p.end());
    out.push_back(std::move(np));
  }
  return out;
}

}  // namespace

PathSetEngine::PathSetEngine(DeviceId dev, const dpvnet::DpvNet& dag_a,
                             const dpvnet::DpvNet& dag_b,
                             const spec::MultiPathInvariant& inv,
                             InvariantId session,
                             packet::PacketSpace& space)
    : dev_(dev), inv_(&inv), session_(session), space_(&space) {
  sides_[0].dag = &dag_a;
  sides_[0].query = &inv.a;
  sides_[1].dag = &dag_b;
  sides_[1].query = &inv.b;
  is_comparator_ = inv.comparator == dev;

  for (std::uint8_t s = 0; s < 2; ++s) {
    Side& side = sides_[s];
    for (const NodeId id : side.dag->nodes_of_device(dev)) {
      NodeState ns;
      ns.id = id;
      ns.side = s;
      side.node_index.emplace(id, side.nodes.size());
      side.nodes.push_back(std::move(ns));
    }
    for (const auto& [ingress, src] : side.dag->sources()) {
      if (ingress == side.query->ingress) {
        side.source = src;
        side.source_hosted_here =
            src != kNoNode && side.dag->node(src).dev == dev;
      }
    }
  }
}

std::vector<PathSetEngine::PathEntry> PathSetEngine::lookup(
    const std::vector<PathEntry>& table, const packet::PacketSet& region,
    packet::PacketSpace& space) {
  std::vector<PathEntry> out;
  packet::PacketSet remaining = region;
  for (const auto& e : table) {
    if (remaining.empty()) break;
    const auto inter = remaining & e.pred;
    if (!inter.empty()) {
      out.push_back(PathEntry{inter, e.paths});
      remaining -= inter;
    }
  }
  if (!remaining.empty()) {
    out.push_back(PathEntry{remaining, {}});
  }
  (void)space;
  return out;
}

std::vector<PathSetEngine::PathEntry> PathSetEngine::compute_region(
    Side& side, NodeState& ns, const packet::PacketSet& region) {
  std::vector<PathEntry> result;
  if (region.empty()) return result;
  const dpvnet::DpvNode& node = side.dag->node(ns.id);
  const bool accepting = node.accepting();

  for (const auto& [pred, action] : lec_.partition(region)) {
    // "Delivered here": pure destinations always terminate a path; other
    // accepting nodes terminate one when they hand to an external port.
    spec::PathSet base;
    if (accepting &&
        (node.down.empty() || action.forwards_to(fib::kExternalPort))) {
      base.push_back(spec::CollectedPath{dev_});
    }

    std::vector<const dpvnet::DpvEdge*> relevant;
    for (const auto& e : node.down) {
      if (action.forwards_to(side.dag->node(e.to).dev)) {
        relevant.push_back(&e);
      }
    }

    // Possible-path semantics: ALL replication and ANY alternatives both
    // contribute every branch; refine piecewise across children.
    std::vector<PathEntry> pieces{PathEntry{pred, base}};
    for (const auto* e : relevant) {
      const auto& table = ns.pib_in[e->to];
      std::vector<PathEntry> next;
      for (auto& piece : pieces) {
        for (auto& part : lookup(table, piece.pred, *space_)) {
          PathEntry np;
          np.pred = part.pred;
          np.paths = piece.paths;
          auto extended = prepend(dev_, part.paths);
          np.paths.insert(np.paths.end(),
                          std::make_move_iterator(extended.begin()),
                          std::make_move_iterator(extended.end()));
          normalize(np.paths);
          next.push_back(std::move(np));
        }
      }
      pieces = std::move(next);
    }
    for (auto& piece : pieces) {
      result.push_back(std::move(piece));
    }
  }
  return result;
}

void PathSetEngine::recompute(Side& side, NodeState& ns,
                              const packet::PacketSet& region,
                              std::vector<Envelope>& out) {
  const packet::PacketSet scoped = region & side.query->space;
  if (scoped.empty()) return;
  std::vector<PathEntry> kept;
  kept.reserve(ns.loc.size());
  for (auto& e : ns.loc) {
    e.pred -= scoped;
    if (!e.pred.empty()) kept.push_back(std::move(e));
  }
  ns.loc = std::move(kept);
  for (auto& fresh : compute_region(side, ns, scoped)) {
    ns.loc.push_back(std::move(fresh));
  }
  emit(side, ns, out);
}

void PathSetEngine::emit(Side& side, NodeState& ns,
                         std::vector<Envelope>& out) {
  // Merge loc entries with identical path sets.
  std::vector<PathEntry> merged;
  for (const auto& e : ns.loc) {
    const auto it =
        std::find_if(merged.begin(), merged.end(), [&](const PathEntry& m) {
          return m.paths == e.paths;
        });
    if (it == merged.end()) {
      merged.push_back(e);
    } else {
      it->pred |= e.pred;
    }
  }

  // Changed region vs. last transmission.
  packet::PacketSet changed = space_->none();
  for (const auto& o : ns.out_sent) {
    for (const auto& n : merged) {
      if (o.paths == n.paths) continue;
      const auto inter = o.pred & n.pred;
      if (!inter.empty()) changed |= inter;
    }
  }
  auto cover = [&](const std::vector<PathEntry>& es) {
    packet::PacketSet u = space_->none();
    for (const auto& e : es) u |= e.pred;
    return u;
  };
  const auto old_cover = cover(ns.out_sent);
  const auto new_cover = cover(merged);
  changed |= new_cover - old_cover;
  changed |= old_cover - new_cover;
  if (changed.empty()) return;
  ns.out_sent = merged;

  const dpvnet::DpvNode& node = side.dag->node(ns.id);
  PathSetUpdate base;
  base.session = session_;
  base.down_node = ns.id;
  base.side = ns.side;
  base.withdrawn.push_back(changed);
  for (const auto& e : merged) {
    const auto inter = e.pred & changed;
    if (!inter.empty()) {
      base.results.push_back(PathSetUpdate::Entry{inter, e.paths});
    }
  }
  for (const NodeId up : node.up) {
    PathSetUpdate msg = base;
    msg.up_node = up;
    out.push_back(Envelope{dev_, side.dag->node(up).dev, std::move(msg)});
  }
  if (ns.id == side.source) {
    report_to_comparator(side, ns, out);
  }
}

void PathSetEngine::report_to_comparator(Side& side, const NodeState& ns,
                                         std::vector<Envelope>& out) {
  std::vector<PathSetUpdate::Entry> entries;
  for (const auto& e : ns.out_sent) {
    entries.push_back(PathSetUpdate::Entry{e.pred, e.paths});
  }
  if (inv_->comparator == dev_) {
    absorb_report(ns.side, entries);
    evaluate();
    return;
  }
  PathSetUpdate report;
  report.session = session_;
  report.up_node = kNoNode;  // comparator report
  report.down_node = ns.id;
  report.side = ns.side;
  report.results = std::move(entries);
  out.push_back(Envelope{dev_, inv_->comparator, std::move(report)});
}

void PathSetEngine::absorb_report(
    std::uint8_t side_idx, const std::vector<PathSetUpdate::Entry>& entries) {
  spec::PathSet all;
  for (const auto& e : entries) {
    all.insert(all.end(), e.paths.begin(), e.paths.end());
  }
  normalize(all);
  reported_[side_idx] = std::move(all);
  have_report_[side_idx] = true;
}

void PathSetEngine::evaluate() {
  violations_.clear();
  if (!have_report_[0] || !have_report_[1]) return;
  const auto reason =
      spec::compare_path_sets(inv_->compare, reported_[0], reported_[1]);
  if (!reason.empty()) {
    violations_.push_back(Violation{
        session_, dev_, kNoNode, space_->none(), {},
        inv_->name + ": " + reason});
  }
}

std::vector<Envelope> PathSetEngine::set_lec(fib::LecTable lec) {
  lec_ = std::move(lec);
  std::vector<Envelope> out;
  for (auto& side : sides_) {
    for (auto& ns : side.nodes) {
      recompute(side, ns, side.query->space, out);
    }
  }
  return out;
}

std::vector<Envelope> PathSetEngine::on_lec_deltas(
    const std::vector<fib::LecDelta>& deltas, fib::LecTable lec) {
  lec_ = std::move(lec);
  std::vector<Envelope> out;
  if (deltas.empty()) return out;
  packet::PacketSet region = space_->none();
  for (const auto& d : deltas) region |= d.pred;
  for (auto& side : sides_) {
    for (auto& ns : side.nodes) {
      recompute(side, ns, region, out);
    }
  }
  return out;
}

std::vector<Envelope> PathSetEngine::on_pathset(const PathSetUpdate& msg) {
  std::vector<Envelope> out;
  if (msg.session != session_) return out;

  if (msg.up_node == kNoNode) {
    // A comparator report.
    if (is_comparator_) {
      absorb_report(msg.side, msg.results);
      evaluate();
    }
    return out;
  }

  Side& side = sides_[msg.side];
  const auto it = side.node_index.find(msg.up_node);
  if (it == side.node_index.end()) return out;
  NodeState& ns = side.nodes[it->second];

  auto& table = ns.pib_in[msg.down_node];
  packet::PacketSet updated = space_->none();
  for (const auto& w : msg.withdrawn) updated |= w;
  for (auto& e : table) e.pred -= updated;
  std::erase_if(table, [](const PathEntry& e) { return e.pred.empty(); });
  for (const auto& r : msg.results) {
    updated |= r.pred;
    table.push_back(PathEntry{r.pred, r.paths});
  }

  packet::PacketSet region = space_->none();
  for (const auto& e : ns.loc) {
    if (e.pred.intersects(updated)) region |= e.pred;
  }
  // New coverage may not intersect any existing row yet.
  region |= updated;
  recompute(side, ns, region, out);
  return out;
}

std::optional<std::pair<spec::PathSet, spec::PathSet>>
PathSetEngine::comparator_view() const {
  if (!is_comparator_ || !have_report_[0] || !have_report_[1]) {
    return std::nullopt;
  }
  return std::make_pair(reported_[0], reported_[1]);
}

void PathSetEngine::collect_refs(std::vector<bdd::NodeRef>& out) const {
  lec_.collect_refs(out);
  for (const Side& side : sides_) {
    for (const auto& ns : side.nodes) {
      for (const auto& [down, table] : ns.pib_in) {
        for (const auto& e : table) {
          out.push_back(e.pred.ref_if_materialized());
        }
      }
      for (const auto& e : ns.loc) {
        out.push_back(e.pred.ref_if_materialized());
      }
      for (const auto& e : ns.out_sent) {
        out.push_back(e.pred.ref_if_materialized());
      }
    }
  }
  for (const auto& v : violations_) {
    out.push_back(v.pred.ref_if_materialized());
  }
}

}  // namespace tulkun::dvm
