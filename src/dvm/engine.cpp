#include "dvm/engine.hpp"

#include <algorithm>
#include <chrono>

#include "fib/fib_table.hpp"
#include "obs/trace.hpp"

namespace tulkun::dvm {

namespace {

/// For Exist atoms the declared comparator; Subset counts as (exist >= 1).
spec::CountExpr effective_count_expr(const spec::Behavior& atom) {
  if (atom.op == spec::MatchOpKind::Exist) return atom.count;
  return spec::CountExpr{spec::CountExpr::Cmp::Ge, 1};
}

/// merge_by_counts over a LocStore's live rows.
std::vector<CountEntry> merged_counts(const LocStore& loc) {
  CountMerger merger;
  loc.for_each([&](const LocEntry& e) { merger.add(e.pred, e.counts); });
  return merger.take();
}

}  // namespace

DeviceEngine::DeviceEngine(DeviceId dev, const dpvnet::DpvNet& dag,
                           const spec::Invariant& inv, InvariantId inv_id,
                           packet::PacketSpace& space, EngineConfig cfg)
    : dev_(dev),
      dag_(&dag),
      inv_(&inv),
      inv_id_(inv_id),
      space_(&space),
      cfg_(cfg) {
  atoms_ = inv.behavior.atoms();
  arity_ = atoms_.size();
  TULKUN_ASSERT(arity_ == dag.arity());
  counting_mode_ = atoms_.front()->op != spec::MatchOpKind::Equal;

  for (const NodeId id : dag.nodes_of_device(dev)) {
    NodeState ns;
    ns.id = id;
    ns.scope = inv.packet_space;
    ns.out_cover = space.none();
    node_index_.emplace(id, nodes_.size());
    nodes_.push_back(std::move(ns));
  }
  for (const auto& [ingress, src] : dag.sources()) {
    if (ingress == dev_) is_source_device_ = true;
  }
}

count::CountVec DeviceEngine::accept_indicator(
    const dpvnet::DpvNode& node) const {
  count::CountVec v(arity_, 0);
  for (std::size_t a = 0; a < arity_; ++a) {
    if (node.accepts(a, scene_)) v[a] = 1;
  }
  return v;
}

std::vector<const dpvnet::DpvEdge*> DeviceEngine::live_children(
    const dpvnet::DpvNode& node) const {
  std::vector<const dpvnet::DpvEdge*> out;
  for (const auto& e : node.down) {
    if (e.scenes.test(scene_)) out.push_back(&e);
  }
  return out;
}

std::vector<LocEntry> DeviceEngine::compute_region(
    NodeState& ns, const packet::PacketSet& region,
    std::vector<Envelope>& out) {
  std::vector<LocEntry> result;
  if (region.empty()) return result;

  const dpvnet::DpvNode& node = dag_->node(ns.id);
  const auto children = live_children(node);
  const count::CountVec indicator = accept_indicator(node);
  const bool accepting = std::any_of(indicator.begin(), indicator.end(),
                                     [](std::uint32_t c) { return c > 0; });

  for (const auto& [pred, action] : lec_.partition(region)) {
    // Pure destination in this scene: Algorithm 1 lines 2-3.
    if (children.empty() && cfg_.assume_delivery_at_destination) {
      result.push_back(LocEntry{
          pred, pred, action,
          count::CountSet::singleton(indicator)});
      continue;
    }

    // "Delivered here" contribution: acceptance materializes only when the
    // device hands the packet to an external port.
    const bool delivers_ext = action.forwards_to(fib::kExternalPort);
    count::CountVec here(arity_, 0);
    if (accepting && delivers_ext) here = indicator;

    // Downstream scope, through the rewrite when present.
    const packet::PacketSet down_scope =
        action.rewrite ? fib::rewrite_image(*space_, pred, *action.rewrite)
                       : pred;

    // Children whose device is in the next-hop group.
    std::vector<const dpvnet::DpvEdge*> relevant;
    for (const auto* e : children) {
      if (action.forwards_to(dag_->node(e->to).dev)) relevant.push_back(e);
    }

    // SUBSCRIBE propagation: a rewrite makes this node consume counts for
    // a predicate the child may not be reporting yet.
    if (action.rewrite) {
      for (const auto* e : relevant) {
        auto [it, inserted] =
            ns.sub_sent.try_emplace(e->to, space_->none());
        const packet::PacketSet covered = inv_->packet_space | it->second;
        const packet::PacketSet missing = down_scope - covered;
        if (!missing.empty()) {
          it->second |= missing;
          SubscribeMessage sub;
          sub.invariant = inv_id_;
          sub.up_node = ns.id;
          sub.down_node = e->to;
          sub.original = pred;
          sub.rewritten = missing;
          out.push_back(Envelope{dev_, dag_->node(e->to).dev, sub});
          ++stats_.subscribes_sent;
        }
      }
    }

    if (action.type == fib::ActionType::Drop ||
        (relevant.empty() && action.type == fib::ActionType::All)) {
      // No DPVNet-relevant forwarding: only the local delivery counts.
      result.push_back(LocEntry{pred, down_scope, action,
                                count::CountSet::singleton(here)});
      continue;
    }

    // Common refinement of down_scope across relevant children, tracking
    // each child's counts per piece.
    struct Piece {
      packet::PacketSet pred;
      std::vector<count::CountSet> child_counts;  // parallel to `relevant`
    };
    std::vector<Piece> pieces{{down_scope, {}}};
    for (const auto* e : relevant) {
      const CibIn& cib = ns.cib_in[e->to];
      std::vector<Piece> next;
      for (auto& piece : pieces) {
        for (auto& part : cib.lookup(piece.pred, arity_)) {
          Piece np;
          np.pred = part.pred;
          np.child_counts = piece.child_counts;
          np.child_counts.push_back(std::move(part.counts));
          next.push_back(std::move(np));
        }
      }
      pieces = std::move(next);
    }

    const count::CountSet base = count::CountSet::singleton(here);
    for (auto& piece : pieces) {
      count::CountSet counts;
      if (action.type == fib::ActionType::All) {
        // Equation (1): cross-product sum over every forwarded branch.
        counts = base;
        for (const auto& cc : piece.child_counts) {
          counts = counts.cross_sum(cc);
        }
      } else {
        // Equation (2): union over the possible single choices; a choice
        // outside the DPVNet (δ = 1) or a drop-at-non-dest contributes 0.
        bool has_outside_choice = false;
        for (const DeviceId hop : action.next_hops) {
          if (hop == fib::kExternalPort) continue;  // handled below
          const bool in_dag = std::any_of(
              relevant.begin(), relevant.end(), [&](const dpvnet::DpvEdge* e) {
                return dag_->node(e->to).dev == hop;
              });
          if (!in_dag) has_outside_choice = true;
        }
        for (std::size_t i = 0; i < relevant.size(); ++i) {
          counts = counts.unite(piece.child_counts[i]);
        }
        if (delivers_ext) {
          counts = counts.unite(count::CountSet::singleton(
              accepting ? indicator : count::CountVec(arity_, 0)));
        }
        if (has_outside_choice) {
          counts = counts.unite(count::CountSet::zeros(arity_));
        }
        if (counts.empty()) {
          counts = count::CountSet::zeros(arity_);
        }
      }

      // Pull the piece back through the rewrite into the original space.
      const packet::PacketSet final_pred =
          action.rewrite
              ? (pred &
                 fib::rewrite_preimage(*space_, piece.pred, *action.rewrite))
              : piece.pred;
      if (!final_pred.empty()) {
        result.push_back(LocEntry{final_pred, piece.pred, action,
                                  std::move(counts)});
      }
    }
  }
  stats_.entries_recomputed += result.size();
  return result;
}

void DeviceEngine::recompute(NodeState& ns, const packet::PacketSet& region,
                             std::vector<Envelope>& out) {
  const packet::PacketSet scoped = region & ns.scope;
  if (scoped.empty()) return;
  TLK_SPAN_ARG("device.recompute", ns.id);
  const auto t0 = std::chrono::steady_clock::now();
  // Drop rows covering the region (only rows overlapping it are touched),
  // re-derive them, keep the rest.
  ns.loc.subtract(scoped);
  auto fresh = compute_region(ns, scoped, out);
  for (auto& e : fresh) ns.loc.insert(std::move(e));
  stats_.recompute_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  emit_updates(ns, out);
}

void DeviceEngine::emit_updates(NodeState& ns, std::vector<Envelope>& out) {
  const dpvnet::DpvNode& node = dag_->node(ns.id);
  if (node.up.empty()) return;  // nothing upstream to inform
  TLK_SPAN_ARG("device.emit", ns.id);
  const auto t0 = std::chrono::steady_clock::now();
  const auto done = [&] {
    stats_.emit_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  CountMerger merger;
  ns.loc.for_each([&](const LocEntry& e) { merger.add(e.pred, e.counts); });
  std::vector<CountEntry> out_new = merger.take();
  if (cfg_.minimize_counting_info && arity_ == 1) {
    const spec::CountExpr ce = effective_count_expr(*atoms_.front());
    // Re-merge: minimization may have made counts equal.
    for (const auto& e : out_new) merger.add(e.pred, e.counts.minimized(ce));
    out_new = merger.take();
  }

  // Changed region: pieces where old and new counts differ, plus coverage
  // differences. The old×new product is hull-pruned: an old entry whose
  // hull is disjoint from a new entry's cannot intersect it, so the diff
  // cost is bounded by the entries around the changed region, not the
  // table size.
  packet::PacketSet changed = space_->none();
  packet::PacketSet new_cover = space_->none();
  for (const auto& n : out_new) {
    new_cover |= n.pred;
    ns.out_sent.for_candidates(n.pred, [&](const CountEntry& o) {
      if (o.counts != n.counts) {
        const auto inter = o.pred & n.pred;
        if (!inter.empty()) changed |= inter;
      }
      return true;
    });
  }
  changed |= new_cover - ns.out_cover;
  changed |= ns.out_cover - new_cover;
  if (changed.empty()) {
    done();
    return;
  }

  UpdateMessage base;
  base.invariant = inv_id_;
  base.down_node = ns.id;
  base.withdrawn.push_back(changed);
  for (const auto& e : out_new) {
    const auto inter = e.pred & changed;
    if (!inter.empty()) base.results.push_back(CountEntry{inter, e.counts});
  }

  for (const NodeId up : node.up) {
    UpdateMessage msg = base;
    msg.up_node = up;
    out.push_back(Envelope{dev_, dag_->node(up).dev, std::move(msg)});
    ++stats_.updates_sent;
  }
  ns.out_sent.clear();
  for (auto& e : out_new) ns.out_sent.insert(std::move(e));
  ns.out_cover = std::move(new_cover);
  done();
}

std::vector<Envelope> DeviceEngine::set_lec(fib::LecTable lec) {
  lec_ = std::move(lec);
  std::vector<Envelope> out;
  if (counting_mode_) {
    for (auto& ns : nodes_) {
      recompute(ns, ns.scope, out);
    }
  }
  refresh_verdicts();
  return out;
}

std::vector<Envelope> DeviceEngine::on_lec_deltas(
    const std::vector<fib::LecDelta>& deltas, fib::LecTable lec) {
  lec_ = std::move(lec);
  std::vector<Envelope> out;
  if (deltas.empty()) return out;
  packet::PacketSet region = space_->none();
  for (const auto& d : deltas) region |= d.pred;
  if (counting_mode_) {
    for (auto& ns : nodes_) {
      recompute(ns, region, out);
    }
  }
  refresh_verdicts();
  return out;
}

std::vector<Envelope> DeviceEngine::on_update(const UpdateMessage& msg) {
  std::vector<Envelope> out;
  const auto it = node_index_.find(msg.up_node);
  if (it == node_index_.end()) return out;  // stale/misrouted: ignore
  ++stats_.updates_received;
  NodeState& ns = nodes_[it->second];
  CibIn& cib = ns.cib_in[msg.down_node];
  cib.apply(msg.withdrawn, msg.results);

  if (!counting_mode_) return out;

  // Affected LocCIB rows: those whose downstream predicate (causality)
  // meets the updated region.
  packet::PacketSet updated = space_->none();
  for (const auto& w : msg.withdrawn) updated |= w;
  for (const auto& r : msg.results) updated |= r.pred;

  const packet::PacketSet region =
      ns.loc.affected_region(updated, space_->none());
  recompute(ns, region, out);
  refresh_verdicts();
  return out;
}

std::vector<Envelope> DeviceEngine::on_subscribe(const SubscribeMessage& msg) {
  std::vector<Envelope> out;
  const auto it = node_index_.find(msg.down_node);
  if (it == node_index_.end()) return out;
  NodeState& ns = nodes_[it->second];
  const packet::PacketSet extra = msg.rewritten - ns.scope;
  if (extra.empty()) return out;
  ns.scope |= extra;
  recompute(ns, extra, out);
  return out;
}

std::vector<Envelope> DeviceEngine::on_scene_change(std::size_t scene) {
  std::vector<Envelope> out;
  if (scene == scene_) return out;
  scene_ = scene;
  if (counting_mode_) {
    for (auto& ns : nodes_) {
      recompute(ns, ns.scope, out);
    }
  }
  refresh_verdicts();
  return out;
}

void DeviceEngine::check_local_contracts() {
  // §4.2 equal-operator local verification (and the "only along DPVNet"
  // half for subset). Runs entirely from local state: no messages.
  const bool availability = atoms_.front()->op == spec::MatchOpKind::Equal;

  // Allowed forwarding targets at device granularity: any downstream
  // device of any hosted node, plus external delivery.
  std::vector<DeviceId> allowed;
  for (const auto& ns : nodes_) {
    for (const auto* e : live_children(dag_->node(ns.id))) {
      allowed.push_back(dag_->node(e->to).dev);
    }
  }
  std::sort(allowed.begin(), allowed.end());
  allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());

  for (const auto& ns : nodes_) {
    const dpvnet::DpvNode& node = dag_->node(ns.id);
    const auto children = live_children(node);
    if (!node.scenes.test(scene_)) continue;

    for (const auto& [pred, action] : lec_.partition(inv_->packet_space)) {
      if (availability) {
        for (const auto* e : children) {
          const DeviceId cd = dag_->node(e->to).dev;
          if (!action.forwards_to(cd)) {
            violations_.push_back(Violation{
                inv_id_, dev_, ns.id, pred, {},
                "local contract: missing forwarding to " +
                    dag_->topology().name(cd) + " required by node " +
                    dag_->label(ns.id)});
          }
        }
        if (node.accepting() && !action.forwards_to(fib::kExternalPort) &&
            children.empty() && !cfg_.assume_delivery_at_destination) {
          violations_.push_back(Violation{
              inv_id_, dev_, ns.id, pred, {},
              "local contract: destination does not deliver externally"});
        }
      }
      // Only-check: forwarding outside the DPVNet breaks equal/subset.
      for (const DeviceId hop : action.next_hops) {
        if (hop == fib::kExternalPort) continue;
        if (!std::binary_search(allowed.begin(), allowed.end(), hop)) {
          violations_.push_back(Violation{
              inv_id_, dev_, ns.id, pred, {},
              "local contract: forwards outside DPVNet to " +
                  dag_->topology().name(hop)});
        }
      }
    }
  }
}

void DeviceEngine::refresh_verdicts() {
  violations_.clear();

  if (!counting_mode_ || atoms_.front()->op == spec::MatchOpKind::Subset) {
    check_local_contracts();
  }
  if (!counting_mode_) return;

  for (const auto& [ingress, src] : dag_->sources()) {
    if (ingress == dev_ && src == kNoNode) {
      // No valid path exists at all for this ingress: every universe
      // delivers zero copies. Statically violated unless zero satisfies
      // the behavior (e.g. isolation).
      const count::CountSet zeros = count::CountSet::zeros(arity_);
      if (!zeros.all_satisfy(inv_->behavior, atoms_)) {
        violations_.push_back(Violation{
            inv_id_, dev_, kNoNode, inv_->packet_space, zeros,
            "no valid path from ingress " + dag_->topology().name(ingress) +
                " matches the invariant's path expression"});
      }
      continue;
    }
    if (src == kNoNode || dag_->node(src).dev != dev_) continue;
    const auto it = node_index_.find(src);
    if (it == node_index_.end()) continue;
    const NodeState& ns = nodes_[it->second];
    for (const auto& e : merged_counts(ns.loc)) {
      const auto scoped = e.pred & inv_->packet_space;
      if (scoped.empty() || e.counts.empty()) continue;
      if (!e.counts.all_satisfy(inv_->behavior, atoms_)) {
        violations_.push_back(Violation{
            inv_id_, dev_, src, scoped, e.counts,
            "behavior violated at ingress " +
                dag_->topology().name(ingress) + ": counts " +
                e.counts.to_string()});
      }
    }
  }
}

std::vector<DeviceEngine::NodeSnapshot> DeviceEngine::node_snapshots() const {
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const auto& ns : nodes_) {
    NodeSnapshot snap;
    snap.id = ns.id;
    snap.loc = ns.loc.snapshot();
    snap.out_sent = ns.out_sent.snapshot();
    for (const auto& [down, cib] : ns.cib_in) {
      snap.cib_in.emplace(down, cib.entries());
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<std::pair<DeviceId, std::vector<CountEntry>>>
DeviceEngine::source_results() const {
  std::vector<std::pair<DeviceId, std::vector<CountEntry>>> out;
  for (const auto& [ingress, src] : dag_->sources()) {
    if (src == kNoNode || dag_->node(src).dev != dev_) continue;
    const auto it = node_index_.find(src);
    if (it == node_index_.end()) continue;
    const NodeState& ns = nodes_[it->second];
    auto merged = merged_counts(ns.loc);
    for (auto& e : merged) e.pred &= inv_->packet_space;
    std::erase_if(merged,
                  [](const CountEntry& e) { return e.pred.empty(); });
    out.emplace_back(ingress, std::move(merged));
  }
  return out;
}

void DeviceEngine::collect_refs(std::vector<bdd::NodeRef>& out) const {
  lec_.collect_refs(out);
  for (const auto& ns : nodes_) {
    for (const auto& [down, cib] : ns.cib_in) cib.collect_refs(out);
    ns.loc.collect_refs(out);
    ns.out_sent.for_each([&](const CountEntry& e) {
      out.push_back(e.pred.ref_if_materialized());
    });
    out.push_back(ns.out_cover.ref_if_materialized());
    out.push_back(ns.scope.ref_if_materialized());
    for (const auto& [child, sub] : ns.sub_sent) {
      out.push_back(sub.ref_if_materialized());
    }
  }
  for (const auto& v : violations_) {
    out.push_back(v.pred.ref_if_materialized());
  }
}

}  // namespace tulkun::dvm
