// Counting information bases (§5.1): CIBIn, LocCIB, CIBOut.
#pragma once

#include <vector>

#include "dvm/message.hpp"
#include "fib/rule.hpp"

namespace tulkun::dvm {

/// CIBIn(v): the latest counting results received from downstream node v.
/// Entries hold disjoint predicates; packets not covered by any entry have
/// zero counts (nothing deliverable through v is known for them).
class CibIn {
 public:
  /// Applies an UPDATE (step 1 of §5.2): withdrawn predicates are removed
  /// from existing entries, then the incoming results are inserted.
  void apply(const std::vector<packet::PacketSet>& withdrawn,
             const std::vector<CountEntry>& results);

  /// Splits `region` into disjoint (pred, counts) pieces; uncovered packets
  /// appear with zero counts of the given arity.
  [[nodiscard]] std::vector<CountEntry> lookup(
      const packet::PacketSet& region, std::size_t arity) const;

  [[nodiscard]] const std::vector<CountEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<CountEntry> entries_;
};

/// One LocCIB row: the predicate, its action at this device, the counts,
/// and the downstream predicate consumed (the causality link; differs from
/// `pred` only under packet transformations).
struct LocEntry {
  packet::PacketSet pred;
  packet::PacketSet down_pred;
  fib::Action action;
  count::CountSet counts;
};

/// Merges entries with equal counts (CIBOut preparation, step 3 of §5.2:
/// strip action/causality and merge by count value).
[[nodiscard]] std::vector<CountEntry> merge_by_counts(
    const std::vector<LocEntry>& entries);

/// Union of entry predicates; `none` must be the empty set of the session's
/// packet space (used as the fold seed).
[[nodiscard]] packet::PacketSet pred_union(
    const std::vector<CountEntry>& entries, packet::PacketSet none);

}  // namespace tulkun::dvm
