// Counting information bases (§5.1): CIBIn, LocCIB, CIBOut.
#pragma once

#include <unordered_map>
#include <vector>

#include "count/count_set.hpp"
#include "dvm/message.hpp"
#include "fib/prefix_index.hpp"
#include "fib/rule.hpp"

namespace tulkun::dvm {

/// CIBIn(v): the latest counting results received from downstream node v.
/// Entries hold disjoint predicates; packets not covered by any entry have
/// zero counts (nothing deliverable through v is known for them). Entries
/// are prefix-indexed by their dst hull, so apply/lookup touch only the
/// entries overlapping the update's region instead of the whole table.
class CibIn {
 public:
  /// Applies an UPDATE (step 1 of §5.2): withdrawn predicates are removed
  /// from existing entries, then the incoming results are inserted.
  void apply(const std::vector<packet::PacketSet>& withdrawn,
             const std::vector<CountEntry>& results);

  /// Splits `region` into disjoint (pred, counts) pieces; uncovered packets
  /// appear with zero counts of the given arity. Piece order is
  /// unspecified (entries are disjoint, so piece content is order-free).
  [[nodiscard]] std::vector<CountEntry> lookup(
      const packet::PacketSet& region, std::size_t arity) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Copy of the live entries in unspecified order (tests, snapshots).
  [[nodiscard]] std::vector<CountEntry> entries() const {
    return entries_.snapshot();
  }

  /// Appends every BDD ref this table pins (gc root enumeration).
  void collect_refs(std::vector<bdd::NodeRef>& out) const {
    entries_.for_each([&](const CountEntry& e) {
      out.push_back(e.pred.ref_if_materialized());
    });
  }

 private:
  fib::RegionIndexed<CountEntry> entries_{fib::IndexKind::CibIn};
};

/// One LocCIB row: the predicate, its action at this device, the counts,
/// and the downstream predicate consumed (the causality link; differs from
/// `pred` only under packet transformations).
struct LocEntry {
  packet::PacketSet pred;
  packet::PacketSet down_pred;
  fib::Action action;
  count::CountSet counts;
};

/// The LocCIB of one DPVNet node: rows indexed by TWO dst-prefix hulls —
/// the row predicate (for recompute's subtract-and-rederive) and the
/// downstream predicate (for finding rows affected by a child's UPDATE).
/// Rows hold disjoint `pred`s, so iteration order never changes content.
class LocStore {
 public:
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  void insert(LocEntry e);
  void clear();

  /// Visits every live row. fn: (const LocEntry&) -> void.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (alive_[i]) fn(slots_[i]);
    }
  }

  /// Removes `region` from every overlapping row's predicate (step 2 of
  /// recompute: drop what will be re-derived); erases emptied rows.
  void subtract(const packet::PacketSet& region);

  /// Union of `pred` over rows whose downstream predicate (causality link)
  /// intersects `updated`; `seed` must be the space's empty set.
  [[nodiscard]] packet::PacketSet affected_region(
      const packet::PacketSet& updated, packet::PacketSet seed) const;

  /// Copy of the live rows in unspecified order (tests, snapshots).
  [[nodiscard]] std::vector<LocEntry> snapshot() const;

  /// Appends every BDD ref this store pins (gc root enumeration).
  void collect_refs(std::vector<bdd::NodeRef>& out) const {
    for_each([&](const LocEntry& e) {
      out.push_back(e.pred.ref_if_materialized());
      out.push_back(e.down_pred.ref_if_materialized());
    });
  }

 private:
  void erase_slot(std::uint32_t id);

  std::vector<LocEntry> slots_;
  std::vector<packet::Ipv4Prefix> pred_hulls_;
  std::vector<packet::Ipv4Prefix> down_hulls_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> free_;
  fib::PrefixTrie by_pred_;
  fib::PrefixTrie by_down_;
  std::size_t live_ = 0;
  mutable std::vector<std::uint32_t> scratch_;
};

/// Incremental merge of (pred, counts) rows by count value (CIBOut
/// preparation, step 3 of §5.2). Buckets by CountSet hash instead of
/// linearly scanning the output for an equal set.
class CountMerger {
 public:
  void add(const packet::PacketSet& pred, const count::CountSet& counts) {
    const auto it = buckets_.find(counts);
    if (it == buckets_.end()) {
      buckets_.emplace(counts, pred);
    } else {
      it->second |= pred;
    }
  }

  /// Drains the merged entries (unspecified order).
  [[nodiscard]] std::vector<CountEntry> take() {
    std::vector<CountEntry> out;
    out.reserve(buckets_.size());
    for (auto& [counts, pred] : buckets_) {
      out.push_back(CountEntry{pred, counts});
    }
    buckets_.clear();
    return out;
  }

 private:
  std::unordered_map<count::CountSet, packet::PacketSet, count::CountSetHash>
      buckets_;
};

/// Merges entries with equal counts (strip action/causality and merge by
/// count value). Output order is unspecified.
[[nodiscard]] std::vector<CountEntry> merge_by_counts(
    const std::vector<LocEntry>& entries);

/// Union of entry predicates; `none` must be the empty set of the session's
/// packet space (used as the fold seed).
[[nodiscard]] packet::PacketSet pred_union(
    const std::vector<CountEntry>& entries, packet::PacketSet none);

}  // namespace tulkun::dvm
