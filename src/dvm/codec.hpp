// Wire codec for DVM messages.
//
// The paper serializes BDD predicates (JDD + Protobuf) to ship them between
// devices; we encode messages into a compact length-prefixed binary format
// so message sizes measured in benchmarks are the real on-the-wire sizes,
// and round-trip decoding is tested for fidelity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/serialize.hpp"
#include "core/error.hpp"
#include "dvm/message.hpp"

namespace tulkun::dvm {

/// Why a decode rejected its input. Network receivers branch on this: an
/// Oversize or BadTag from an untrusted stream takes the transport's
/// dead-peer path (drop the connection), while Truncated on an in-process
/// buffer is a plain bug.
enum class CodecErrorKind : std::uint8_t {
  Truncated,      // declared more bytes/elements than the buffer holds
  BadTag,         // unknown message or frame tag
  Oversize,       // a declared size exceeds the configured cap
  TrailingBytes,  // well-formed message followed by junk
};

class CodecError : public Error {
 public:
  CodecError(CodecErrorKind kind, const std::string& what)
      : Error("dvm decode: " + what), kind_(kind) {}
  [[nodiscard]] CodecErrorKind kind() const { return kind_; }

 private:
  CodecErrorKind kind_;
};

/// Caps applied while decoding untrusted input. Every declared length is
/// validated against both the cap and the bytes actually present BEFORE
/// any allocation, so a hostile 4-billion-element header cannot reserve
/// gigabytes. The defaults comfortably fit any frame the runtime emits.
struct DecodeLimits {
  /// Upper bound on one whole frame (mirrors the transport's frame cap).
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  /// Envelopes per multi-envelope frame.
  std::uint32_t max_envelopes = 1u << 16;
  /// Serialized bytes per predicate.
  std::uint32_t max_pred_bytes = 16u << 20;
};

/// The process-default limits (used by the no-limits overloads).
[[nodiscard]] const DecodeLimits& default_decode_limits();

/// Serializes an envelope. Predicates are encoded as BDD node lists.
/// When `cache` is non-null, predicate serializations are memoized through
/// it (a predicate flooded to N destinations is serialized once).
[[nodiscard]] std::vector<std::uint8_t> encode(
    const Envelope& env, bdd::SerializeCache* cache = nullptr);

/// Decodes an envelope; predicates are rebuilt inside `space`.
/// Throws CodecError on malformed input.
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space);
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space,
                              const DecodeLimits& limits);

/// Serializes several envelopes into one multi-envelope frame. The sharded
/// runtime batches all traffic for one destination into a single frame, so
/// per-message queue overhead is paid once per (sender burst, destination).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const Envelope> envs, bdd::SerializeCache* cache = nullptr);

/// Decodes a multi-envelope frame. Throws CodecError on malformed input.
[[nodiscard]] std::vector<Envelope> decode_frame(
    std::span<const std::uint8_t> bytes, packet::PacketSpace& space);
[[nodiscard]] std::vector<Envelope> decode_frame(
    std::span<const std::uint8_t> bytes, packet::PacketSpace& space,
    const DecodeLimits& limits);

/// encode(env).size() without materializing the buffer contents
/// (used for fast message accounting; exact).
[[nodiscard]] std::size_t encoded_size(const Envelope& env);

}  // namespace tulkun::dvm
