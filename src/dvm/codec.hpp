// Wire codec for DVM messages.
//
// The paper serializes BDD predicates (JDD + Protobuf) to ship them between
// devices; we encode messages into a compact length-prefixed binary format
// so message sizes measured in benchmarks are the real on-the-wire sizes,
// and round-trip decoding is tested for fidelity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dvm/message.hpp"

namespace tulkun::dvm {

/// Serializes an envelope. Predicates are encoded as BDD node lists.
[[nodiscard]] std::vector<std::uint8_t> encode(const Envelope& env);

/// Decodes an envelope; predicates are rebuilt inside `space`.
/// Throws Error on malformed input.
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space);

/// encode(env).size() without materializing the buffer contents
/// (used for fast message accounting; exact).
[[nodiscard]] std::size_t encoded_size(const Envelope& env);

}  // namespace tulkun::dvm
