// Wire codec for DVM messages.
//
// The paper serializes BDD predicates (JDD + Protobuf) to ship them between
// devices; we encode messages into a compact length-prefixed binary format
// so message sizes measured in benchmarks are the real on-the-wire sizes,
// and round-trip decoding is tested for fidelity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/serialize.hpp"
#include "dvm/message.hpp"

namespace tulkun::dvm {

/// Serializes an envelope. Predicates are encoded as BDD node lists.
/// When `cache` is non-null, predicate serializations are memoized through
/// it (a predicate flooded to N destinations is serialized once).
[[nodiscard]] std::vector<std::uint8_t> encode(
    const Envelope& env, bdd::SerializeCache* cache = nullptr);

/// Decodes an envelope; predicates are rebuilt inside `space`.
/// Throws Error on malformed input.
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space);

/// Serializes several envelopes into one multi-envelope frame. The sharded
/// runtime batches all traffic for one destination into a single frame, so
/// per-message queue overhead is paid once per (sender burst, destination).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const Envelope> envs, bdd::SerializeCache* cache = nullptr);

/// Decodes a multi-envelope frame. Throws Error on malformed input.
[[nodiscard]] std::vector<Envelope> decode_frame(
    std::span<const std::uint8_t> bytes, packet::PacketSpace& space);

/// encode(env).size() without materializing the buffer contents
/// (used for fast message accounting; exact).
[[nodiscard]] std::size_t encoded_size(const Envelope& env);

}  // namespace tulkun::dvm
