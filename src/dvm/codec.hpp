// Wire codec for DVM messages.
//
// The paper serializes BDD predicates (JDD + Protobuf) to ship them between
// devices; we encode messages into a compact length-prefixed binary format
// so message sizes measured in benchmarks are the real on-the-wire sizes,
// and round-trip decoding is tested for fidelity.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "bdd/serialize.hpp"
#include "core/error.hpp"
#include "dvm/message.hpp"

namespace tulkun::dvm {

/// Why a decode rejected its input. Network receivers branch on this: an
/// Oversize or BadTag from an untrusted stream takes the transport's
/// dead-peer path (drop the connection), while Truncated on an in-process
/// buffer is a plain bug.
enum class CodecErrorKind : std::uint8_t {
  Truncated,      // declared more bytes/elements than the buffer holds
  BadTag,         // unknown message or frame tag
  Oversize,       // a declared size exceeds the configured cap
  TrailingBytes,  // well-formed message followed by junk
};

class CodecError : public Error {
 public:
  CodecError(CodecErrorKind kind, const std::string& what)
      : Error("dvm decode: " + what), kind_(kind) {}
  [[nodiscard]] CodecErrorKind kind() const { return kind_; }

 private:
  CodecErrorKind kind_;
};

/// Caps applied while decoding untrusted input. Every declared length is
/// validated against both the cap and the bytes actually present BEFORE
/// any allocation, so a hostile 4-billion-element header cannot reserve
/// gigabytes. The defaults comfortably fit any frame the runtime emits.
struct DecodeLimits {
  /// Upper bound on one whole frame (mirrors the transport's frame cap).
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  /// Envelopes per multi-envelope frame.
  std::uint32_t max_envelopes = 1u << 16;
  /// Serialized bytes per predicate.
  std::uint32_t max_pred_bytes = 16u << 20;
};

/// The process-default limits (used by the no-limits overloads).
[[nodiscard]] const DecodeLimits& default_decode_limits();

/// Sender-side predicate compression state: one bdd::NodeChannelEncoder
/// per (src, dst) device pair. All of a source device's outgoing traffic
/// originates on its home shard, so one ChannelEncoders per shard gives
/// every stream a single-writer FIFO — the ordering the decoder requires.
class ChannelEncoders {
 public:
  /// The encoder for predicates from `mgr` (src's manager) toward `dst`.
  [[nodiscard]] bdd::NodeChannelEncoder& get(const bdd::Manager& mgr,
                                             DeviceId src, DeviceId dst);

  /// Aggregate stream statistics (for metrics/bench reporting).
  [[nodiscard]] std::uint64_t roots_encoded() const;
  [[nodiscard]] std::uint64_t nodes_shipped() const;
  [[nodiscard]] std::uint64_t resets() const;

 private:
  std::map<std::pair<DeviceId, DeviceId>, bdd::NodeChannelEncoder> encoders_;
};

/// Receiver-side state, bound to one device's manager: one decoder per
/// source device. The stream-id tables pin received nodes, so they must be
/// included in the device's gc roots (collect_refs).
class ChannelDecoders {
 public:
  explicit ChannelDecoders(bdd::Manager& mgr) : mgr_(&mgr) {}

  [[nodiscard]] bdd::NodeChannelDecoder& get(DeviceId src);
  void collect_refs(std::vector<bdd::NodeRef>& out) const;

 private:
  bdd::Manager* mgr_;
  std::map<DeviceId, bdd::NodeChannelDecoder> decoders_;
};

/// Serializes an envelope. Each predicate carries a one-byte form tag:
/// dst-only predicates ship as their interval list (atom tier, no BDD
/// work on either side); with `channels` set, BDD predicates ship as
/// node-ID deltas over the (src, dst) stream; otherwise as self-contained
/// node-list blobs. When `cache` is non-null, blob serializations are
/// memoized through it.
[[nodiscard]] std::vector<std::uint8_t> encode(
    const Envelope& env, bdd::SerializeCache* cache = nullptr,
    ChannelEncoders* channels = nullptr);

/// Decodes an envelope; predicates are rebuilt inside `space`. `channels`
/// (bound to space's manager) is required to accept delta-form predicates
/// and must mirror the sender's stream order. Throws CodecError on
/// malformed input.
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space);
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> bytes,
                              packet::PacketSpace& space,
                              const DecodeLimits& limits,
                              ChannelDecoders* channels = nullptr);

/// Serializes several envelopes into one multi-envelope frame. The sharded
/// runtime batches all traffic for one destination into a single frame, so
/// per-message queue overhead is paid once per (sender burst, destination).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const Envelope> envs, bdd::SerializeCache* cache = nullptr,
    ChannelEncoders* channels = nullptr);

/// Decodes a multi-envelope frame. Throws CodecError on malformed input.
[[nodiscard]] std::vector<Envelope> decode_frame(
    std::span<const std::uint8_t> bytes, packet::PacketSpace& space);
[[nodiscard]] std::vector<Envelope> decode_frame(
    std::span<const std::uint8_t> bytes, packet::PacketSpace& space,
    const DecodeLimits& limits, ChannelDecoders* channels = nullptr);

/// encode(env).size() without materializing the buffer contents
/// (used for fast message accounting; exact for the channel-less forms).
[[nodiscard]] std::size_t encoded_size(const Envelope& env);

}  // namespace tulkun::dvm
