#include "dvm/codec.hpp"

namespace tulkun::dvm {

namespace {

constexpr std::uint8_t kTagUpdate = 1;
constexpr std::uint8_t kTagSubscribe = 2;
constexpr std::uint8_t kTagLinkState = 3;
constexpr std::uint8_t kTagPathSet = 4;
constexpr std::uint8_t kTagFrame = 0xF5;  // multi-envelope frame header

class Writer {
 public:
  explicit Writer(bdd::SerializeCache* cache = nullptr) : cache_(cache) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void pred(const packet::PacketSet& p) {
    if (cache_ != nullptr) {
      bytes(*cache_->get(*p.manager(), p.ref()));
    } else {
      bytes(bdd::serialize(*p.manager(), p.ref()));
    }
  }
  void counts(const count::CountSet& c) {
    u32(static_cast<std::uint32_t>(c.size()));
    u32(static_cast<std::uint32_t>(c.arity()));
    for (const auto& vec : c.elems()) {
      for (const auto v : vec) u32(v);
    }
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  bdd::SerializeCache* cache_;
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, packet::PacketSpace& space)
      : bytes_(bytes), space_(&space) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  packet::PacketSet pred() {
    const std::uint32_t len = u32();
    need(len);
    const auto ref = bdd::deserialize(
        space_->manager(), bytes_.subspan(pos_, len));
    pos_ += len;
    return space_->wrap(ref);
  }
  count::CountSet counts() {
    const std::uint32_t n = u32();
    const std::uint32_t arity = u32();
    count::CountSet out;
    for (std::uint32_t i = 0; i < n; ++i) {
      count::CountVec vec(arity);
      for (auto& v : vec) v = u32();
      out.insert(std::move(vec));
    }
    return out;
  }
  void done() const {
    if (pos_ != bytes_.size()) throw Error("dvm decode: trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw Error("dvm decode: truncated");
  }
  std::span<const std::uint8_t> bytes_;
  packet::PacketSpace* space_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const Envelope& env,
                                 bdd::SerializeCache* cache) {
  Writer w(cache);
  w.u32(env.src);
  w.u32(env.dst);
  if (const auto* u = std::get_if<UpdateMessage>(&env.msg)) {
    w.u8(kTagUpdate);
    w.u32(u->invariant);
    w.u32(u->up_node);
    w.u32(u->down_node);
    w.u32(static_cast<std::uint32_t>(u->withdrawn.size()));
    for (const auto& p : u->withdrawn) w.pred(p);
    w.u32(static_cast<std::uint32_t>(u->results.size()));
    for (const auto& e : u->results) {
      w.pred(e.pred);
      w.counts(e.counts);
    }
  } else if (const auto* s = std::get_if<SubscribeMessage>(&env.msg)) {
    w.u8(kTagSubscribe);
    w.u32(s->invariant);
    w.u32(s->up_node);
    w.u32(s->down_node);
    w.pred(s->original);
    w.pred(s->rewritten);
  } else if (const auto* p = std::get_if<PathSetUpdate>(&env.msg)) {
    w.u8(kTagPathSet);
    w.u32(p->session);
    w.u32(p->up_node);
    w.u32(p->down_node);
    w.u8(p->side);
    w.u32(static_cast<std::uint32_t>(p->withdrawn.size()));
    for (const auto& pred : p->withdrawn) w.pred(pred);
    w.u32(static_cast<std::uint32_t>(p->results.size()));
    for (const auto& e : p->results) {
      w.pred(e.pred);
      w.u32(static_cast<std::uint32_t>(e.paths.size()));
      for (const auto& path : e.paths) {
        w.u32(static_cast<std::uint32_t>(path.size()));
        for (const DeviceId d : path) w.u32(d);
      }
    }
  } else {
    const auto& l = std::get<LinkStateMessage>(env.msg);
    w.u8(kTagLinkState);
    w.u32(l.link.from);
    w.u32(l.link.to);
    w.u8(l.up ? 1 : 0);
    w.u64(l.seq);
    w.u32(l.origin);
  }
  return w.take();
}

Envelope decode(std::span<const std::uint8_t> bytes,
                packet::PacketSpace& space) {
  Reader r(bytes, space);
  Envelope env;
  env.src = r.u32();
  env.dst = r.u32();
  const std::uint8_t tag = r.u8();
  if (tag == kTagUpdate) {
    UpdateMessage u;
    u.invariant = r.u32();
    u.up_node = r.u32();
    u.down_node = r.u32();
    const std::uint32_t nw = r.u32();
    for (std::uint32_t i = 0; i < nw; ++i) u.withdrawn.push_back(r.pred());
    const std::uint32_t nr = r.u32();
    for (std::uint32_t i = 0; i < nr; ++i) {
      CountEntry e;
      e.pred = r.pred();
      e.counts = r.counts();
      u.results.push_back(std::move(e));
    }
    env.msg = std::move(u);
  } else if (tag == kTagSubscribe) {
    SubscribeMessage s;
    s.invariant = r.u32();
    s.up_node = r.u32();
    s.down_node = r.u32();
    s.original = r.pred();
    s.rewritten = r.pred();
    env.msg = std::move(s);
  } else if (tag == kTagPathSet) {
    PathSetUpdate p;
    p.session = r.u32();
    p.up_node = r.u32();
    p.down_node = r.u32();
    p.side = r.u8();
    const std::uint32_t nw = r.u32();
    for (std::uint32_t i = 0; i < nw; ++i) p.withdrawn.push_back(r.pred());
    const std::uint32_t nr = r.u32();
    for (std::uint32_t i = 0; i < nr; ++i) {
      PathSetUpdate::Entry e;
      e.pred = r.pred();
      const std::uint32_t np = r.u32();
      for (std::uint32_t j = 0; j < np; ++j) {
        std::vector<DeviceId> path(r.u32());
        for (auto& d : path) d = r.u32();
        e.paths.push_back(std::move(path));
      }
      p.results.push_back(std::move(e));
    }
    env.msg = std::move(p);
  } else if (tag == kTagLinkState) {
    LinkStateMessage l;
    l.link.from = r.u32();
    l.link.to = r.u32();
    l.up = r.u8() != 0;
    l.seq = r.u64();
    l.origin = r.u32();
    env.msg = l;
  } else {
    throw Error("dvm decode: unknown message tag");
  }
  r.done();
  return env;
}

std::vector<std::uint8_t> encode_frame(std::span<const Envelope> envs,
                                       bdd::SerializeCache* cache) {
  Writer w(cache);
  w.u8(kTagFrame);
  w.u32(static_cast<std::uint32_t>(envs.size()));
  for (const Envelope& env : envs) {
    w.bytes(encode(env, cache));
  }
  return w.take();
}

std::vector<Envelope> decode_frame(std::span<const std::uint8_t> bytes,
                                   packet::PacketSpace& space) {
  // The header is read manually (no predicate decoding at frame level).
  if (bytes.empty() || bytes[0] != kTagFrame) {
    throw Error("dvm decode: not a frame");
  }
  std::size_t pos = 1;
  const auto u32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes.size()) throw Error("dvm decode: truncated frame");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    }
    return v;
  };
  const std::uint32_t count = u32();
  std::vector<Envelope> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = u32();
    if (pos + len > bytes.size()) throw Error("dvm decode: truncated frame");
    out.push_back(decode(bytes.subspan(pos, len), space));
    pos += len;
  }
  if (pos != bytes.size()) throw Error("dvm decode: trailing bytes");
  return out;
}

std::size_t encoded_size(const Envelope& env) {
  // Exact by construction: re-encode and measure. Message sizes are small;
  // benchmarks that need only the size of predicates use serialized_size.
  return encode(env).size();
}

}  // namespace tulkun::dvm
