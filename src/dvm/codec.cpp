#include "dvm/codec.hpp"

#include <algorithm>

namespace tulkun::dvm {

const DecodeLimits& default_decode_limits() {
  static const DecodeLimits limits;
  return limits;
}

bdd::NodeChannelEncoder& ChannelEncoders::get(const bdd::Manager& mgr,
                                              DeviceId src, DeviceId dst) {
  const auto key = std::make_pair(src, dst);
  const auto it = encoders_.find(key);
  if (it != encoders_.end()) return it->second;
  return encoders_.emplace(key, bdd::NodeChannelEncoder(mgr)).first->second;
}

std::uint64_t ChannelEncoders::roots_encoded() const {
  std::uint64_t total = 0;
  for (const auto& [key, enc] : encoders_) total += enc.roots_encoded();
  return total;
}

std::uint64_t ChannelEncoders::nodes_shipped() const {
  std::uint64_t total = 0;
  for (const auto& [key, enc] : encoders_) total += enc.nodes_shipped();
  return total;
}

std::uint64_t ChannelEncoders::resets() const {
  std::uint64_t total = 0;
  for (const auto& [key, enc] : encoders_) total += enc.resets();
  return total;
}

bdd::NodeChannelDecoder& ChannelDecoders::get(DeviceId src) {
  const auto it = decoders_.find(src);
  if (it != decoders_.end()) return it->second;
  return decoders_.emplace(src, bdd::NodeChannelDecoder(*mgr_)).first->second;
}

void ChannelDecoders::collect_refs(std::vector<bdd::NodeRef>& out) const {
  for (const auto& [src, dec] : decoders_) dec.collect_refs(out);
}

namespace {

constexpr std::uint8_t kTagUpdate = 1;
constexpr std::uint8_t kTagSubscribe = 2;
constexpr std::uint8_t kTagLinkState = 3;
constexpr std::uint8_t kTagPathSet = 4;
constexpr std::uint8_t kTagFrame = 0xF5;  // multi-envelope frame header

// Predicate form tags: every encoded predicate leads with one.
constexpr std::uint8_t kPredBlob = 0;   // self-contained BDD node list
constexpr std::uint8_t kPredAtoms = 1;  // dst interval list (atom tier)
constexpr std::uint8_t kPredDelta = 2;  // node-ID delta over a channel

class Writer {
 public:
  explicit Writer(bdd::SerializeCache* cache = nullptr,
                  bdd::NodeChannelEncoder* channel = nullptr)
      : cache_(cache), channel_(channel) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void pred(const packet::PacketSet& p) {
    if (pred::atom_path_enabled() && p.atom_ref() != pred::kNoAtom) {
      // Dst-only predicate: ship the interval list itself. The receiver
      // interns it directly — no BDD is built on either side.
      u8(kPredAtoms);
      const auto ivs = p.atom_store()->intervals(p.atom_ref());
      u32(static_cast<std::uint32_t>(ivs.size()));
      for (const auto& iv : ivs) {
        u32(static_cast<std::uint32_t>(iv.lo));
        u32(static_cast<std::uint32_t>(iv.hi - 1));  // inclusive: fits u32
      }
      return;
    }
    if (channel_ != nullptr) {
      u8(kPredDelta);
      channel_->encode(p.ref(), out_);
      return;
    }
    u8(kPredBlob);
    if (cache_ != nullptr) {
      bytes(*cache_->get(*p.manager(), p.ref()));
    } else {
      bytes(bdd::serialize(*p.manager(), p.ref()));
    }
  }
  void counts(const count::CountSet& c) {
    u32(static_cast<std::uint32_t>(c.size()));
    u32(static_cast<std::uint32_t>(c.arity()));
    for (const auto& vec : c.elems()) {
      for (const auto v : vec) u32(v);
    }
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  bdd::SerializeCache* cache_;
  bdd::NodeChannelEncoder* channel_;
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, packet::PacketSpace& space,
         const DecodeLimits& limits,
         bdd::NodeChannelDecoder* channel = nullptr)
      : bytes_(bytes), space_(&space), limits_(&limits), channel_(channel) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  /// Validates a declared element count before anything is allocated for
  /// it: `n` elements of at least `min_elem_bytes` each must fit in the
  /// remaining buffer. Untrusted input can otherwise declare 2^32 - 1
  /// elements and make the decoder reserve gigabytes up front.
  std::uint32_t count(std::uint32_t n, std::size_t min_elem_bytes) const {
    const std::size_t remaining = bytes_.size() - pos_;
    if (min_elem_bytes != 0 && n > remaining / min_elem_bytes) {
      throw CodecError(CodecErrorKind::Truncated,
                       "declared element count exceeds buffer");
    }
    return n;
  }
  packet::PacketSet pred() {
    const std::uint8_t tag = u8();
    if (tag == kPredAtoms) {
      // Canonical interval list (sorted, disjoint, non-adjacent); interned
      // directly — invalid lists are rejected, not normalized, since the
      // writer only ever produces canonical form.
      const std::uint32_t n = count(u32(), 8);
      // The interval form obeys the same per-predicate size cap as blobs,
      // so a hostile peer cannot sidestep the cap by picking this tag.
      if (static_cast<std::uint64_t>(n) * 8 > limits_->max_pred_bytes) {
        throw CodecError(CodecErrorKind::Oversize,
                         "predicate exceeds size cap");
      }
      std::vector<Interval> ivs;
      ivs.reserve(n);
      std::uint64_t prev_end = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t lo = u32();
        const std::uint32_t hi_incl = u32();
        if (hi_incl < lo || (i > 0 && lo <= prev_end)) {
          throw CodecError(CodecErrorKind::BadTag,
                           "non-canonical interval list");
        }
        prev_end = static_cast<std::uint64_t>(hi_incl) + 1;
        ivs.push_back({lo, prev_end});
      }
      return space_->from_intervals(std::move(ivs));
    }
    if (tag == kPredDelta) {
      if (channel_ == nullptr) {
        throw CodecError(CodecErrorKind::BadTag,
                         "delta predicate without a channel");
      }
      return space_->wrap(channel_->decode(bytes_, pos_));
    }
    if (tag != kPredBlob) {
      throw CodecError(CodecErrorKind::BadTag, "unknown predicate form");
    }
    const std::uint32_t len = u32();
    if (len > limits_->max_pred_bytes) {
      throw CodecError(CodecErrorKind::Oversize,
                       "predicate exceeds size cap");
    }
    need(len);
    const auto ref = bdd::deserialize(
        space_->manager(), bytes_.subspan(pos_, len));
    pos_ += len;
    return space_->wrap(ref);
  }
  count::CountSet counts() {
    const std::uint32_t n = u32();
    const std::uint32_t arity = u32();
    // Each tuple is arity u32s on the wire (and at least one byte when
    // arity is 0, which the writer never produces but a peer could claim).
    count(n, std::max<std::size_t>(std::size_t{4} * arity, 1));
    count::CountSet out;
    for (std::uint32_t i = 0; i < n; ++i) {
      count::CountVec vec(arity);
      for (auto& v : vec) v = u32();
      out.insert(std::move(vec));
    }
    return out;
  }
  void done() const {
    if (pos_ != bytes_.size()) {
      throw CodecError(CodecErrorKind::TrailingBytes, "trailing bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw CodecError(CodecErrorKind::Truncated, "truncated");
    }
  }
  std::span<const std::uint8_t> bytes_;
  packet::PacketSpace* space_;
  const DecodeLimits* limits_;
  bdd::NodeChannelDecoder* channel_;
  std::size_t pos_ = 0;
};

/// The manager owning this envelope's predicates (nullptr when the message
/// carries none, e.g. LinkState) — selects the (src, dst) channel encoder.
const bdd::Manager* envelope_manager(const Envelope& env) {
  if (const auto* u = std::get_if<UpdateMessage>(&env.msg)) {
    if (!u->withdrawn.empty()) return u->withdrawn.front().manager();
    if (!u->results.empty()) return u->results.front().pred.manager();
    return nullptr;
  }
  if (const auto* s = std::get_if<SubscribeMessage>(&env.msg)) {
    return s->original.manager();
  }
  if (const auto* p = std::get_if<PathSetUpdate>(&env.msg)) {
    if (!p->withdrawn.empty()) return p->withdrawn.front().manager();
    if (!p->results.empty()) return p->results.front().pred.manager();
    return nullptr;
  }
  return nullptr;
}

}  // namespace

std::vector<std::uint8_t> encode(const Envelope& env,
                                 bdd::SerializeCache* cache,
                                 ChannelEncoders* channels) {
  bdd::NodeChannelEncoder* channel = nullptr;
  if (channels != nullptr) {
    if (const bdd::Manager* mgr = envelope_manager(env)) {
      channel = &channels->get(*mgr, env.src, env.dst);
    }
  }
  Writer w(cache, channel);
  w.u32(env.src);
  w.u32(env.dst);
  if (const auto* u = std::get_if<UpdateMessage>(&env.msg)) {
    w.u8(kTagUpdate);
    w.u32(u->invariant);
    w.u32(u->up_node);
    w.u32(u->down_node);
    w.u32(static_cast<std::uint32_t>(u->withdrawn.size()));
    for (const auto& p : u->withdrawn) w.pred(p);
    w.u32(static_cast<std::uint32_t>(u->results.size()));
    for (const auto& e : u->results) {
      w.pred(e.pred);
      w.counts(e.counts);
    }
  } else if (const auto* s = std::get_if<SubscribeMessage>(&env.msg)) {
    w.u8(kTagSubscribe);
    w.u32(s->invariant);
    w.u32(s->up_node);
    w.u32(s->down_node);
    w.pred(s->original);
    w.pred(s->rewritten);
  } else if (const auto* p = std::get_if<PathSetUpdate>(&env.msg)) {
    w.u8(kTagPathSet);
    w.u32(p->session);
    w.u32(p->up_node);
    w.u32(p->down_node);
    w.u8(p->side);
    w.u32(static_cast<std::uint32_t>(p->withdrawn.size()));
    for (const auto& pred : p->withdrawn) w.pred(pred);
    w.u32(static_cast<std::uint32_t>(p->results.size()));
    for (const auto& e : p->results) {
      w.pred(e.pred);
      w.u32(static_cast<std::uint32_t>(e.paths.size()));
      for (const auto& path : e.paths) {
        w.u32(static_cast<std::uint32_t>(path.size()));
        for (const DeviceId d : path) w.u32(d);
      }
    }
  } else {
    const auto& l = std::get<LinkStateMessage>(env.msg);
    w.u8(kTagLinkState);
    w.u32(l.link.from);
    w.u32(l.link.to);
    w.u8(l.up ? 1 : 0);
    w.u64(l.seq);
    w.u32(l.origin);
  }
  return w.take();
}

Envelope decode(std::span<const std::uint8_t> bytes,
                packet::PacketSpace& space) {
  return decode(bytes, space, default_decode_limits());
}

Envelope decode(std::span<const std::uint8_t> bytes,
                packet::PacketSpace& space, const DecodeLimits& limits,
                ChannelDecoders* channels) {
  // The (src, dst) channel is determined by the sender id, which sits in
  // the first four bytes — peek it before constructing the reader so
  // delta-form predicates resolve against the right per-source stream.
  bdd::NodeChannelDecoder* channel = nullptr;
  if (channels != nullptr && bytes.size() >= 4) {
    DeviceId src = 0;
    for (int i = 0; i < 4; ++i) {
      src |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    }
    channel = &channels->get(src);
  }
  Reader r(bytes, space, limits, channel);
  Envelope env;
  env.src = r.u32();
  env.dst = r.u32();
  const std::uint8_t tag = r.u8();
  if (tag == kTagUpdate) {
    UpdateMessage u;
    u.invariant = r.u32();
    u.up_node = r.u32();
    u.down_node = r.u32();
    // Predicates are at least a 4-byte length prefix; count entries are at
    // least a predicate plus the 8-byte counts header.
    const std::uint32_t nw = r.count(r.u32(), 4);
    for (std::uint32_t i = 0; i < nw; ++i) u.withdrawn.push_back(r.pred());
    const std::uint32_t nr = r.count(r.u32(), 12);
    for (std::uint32_t i = 0; i < nr; ++i) {
      CountEntry e;
      e.pred = r.pred();
      e.counts = r.counts();
      u.results.push_back(std::move(e));
    }
    env.msg = std::move(u);
  } else if (tag == kTagSubscribe) {
    SubscribeMessage s;
    s.invariant = r.u32();
    s.up_node = r.u32();
    s.down_node = r.u32();
    s.original = r.pred();
    s.rewritten = r.pred();
    env.msg = std::move(s);
  } else if (tag == kTagPathSet) {
    PathSetUpdate p;
    p.session = r.u32();
    p.up_node = r.u32();
    p.down_node = r.u32();
    p.side = r.u8();
    const std::uint32_t nw = r.count(r.u32(), 4);
    for (std::uint32_t i = 0; i < nw; ++i) p.withdrawn.push_back(r.pred());
    const std::uint32_t nr = r.count(r.u32(), 8);
    for (std::uint32_t i = 0; i < nr; ++i) {
      PathSetUpdate::Entry e;
      e.pred = r.pred();
      const std::uint32_t np = r.count(r.u32(), 4);
      for (std::uint32_t j = 0; j < np; ++j) {
        std::vector<DeviceId> path(r.count(r.u32(), 4));
        for (auto& d : path) d = r.u32();
        e.paths.push_back(std::move(path));
      }
      p.results.push_back(std::move(e));
    }
    env.msg = std::move(p);
  } else if (tag == kTagLinkState) {
    LinkStateMessage l;
    l.link.from = r.u32();
    l.link.to = r.u32();
    l.up = r.u8() != 0;
    l.seq = r.u64();
    l.origin = r.u32();
    env.msg = l;
  } else {
    throw CodecError(CodecErrorKind::BadTag, "unknown message tag");
  }
  r.done();
  return env;
}

std::vector<std::uint8_t> encode_frame(std::span<const Envelope> envs,
                                       bdd::SerializeCache* cache,
                                       ChannelEncoders* channels) {
  Writer w(cache);
  w.u8(kTagFrame);
  w.u32(static_cast<std::uint32_t>(envs.size()));
  for (const Envelope& env : envs) {
    w.bytes(encode(env, cache, channels));
  }
  return w.take();
}

std::vector<Envelope> decode_frame(std::span<const std::uint8_t> bytes,
                                   packet::PacketSpace& space) {
  return decode_frame(bytes, space, default_decode_limits());
}

std::vector<Envelope> decode_frame(std::span<const std::uint8_t> bytes,
                                   packet::PacketSpace& space,
                                   const DecodeLimits& limits,
                                   ChannelDecoders* channels) {
  // The header is read manually (no predicate decoding at frame level).
  if (bytes.size() > limits.max_frame_bytes) {
    throw CodecError(CodecErrorKind::Oversize, "frame exceeds size cap");
  }
  if (bytes.empty() || bytes[0] != kTagFrame) {
    throw CodecError(CodecErrorKind::BadTag, "not a frame");
  }
  std::size_t pos = 1;
  const auto u32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes.size()) {
      throw CodecError(CodecErrorKind::Truncated, "truncated frame");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    }
    return v;
  };
  const std::uint32_t count = u32();
  if (count > limits.max_envelopes) {
    throw CodecError(CodecErrorKind::Oversize, "too many envelopes");
  }
  // Every envelope costs at least its 4-byte length prefix, so a count the
  // remaining bytes cannot hold is rejected before reserve().
  if (count > (bytes.size() - pos) / 4) {
    throw CodecError(CodecErrorKind::Truncated,
                     "envelope count exceeds buffer");
  }
  std::vector<Envelope> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = u32();
    if (pos + len > bytes.size()) {
      throw CodecError(CodecErrorKind::Truncated, "truncated frame");
    }
    out.push_back(decode(bytes.subspan(pos, len), space, limits, channels));
    pos += len;
  }
  if (pos != bytes.size()) {
    throw CodecError(CodecErrorKind::TrailingBytes, "trailing bytes");
  }
  return out;
}

std::size_t encoded_size(const Envelope& env) {
  // Exact by construction: re-encode and measure. Message sizes are small;
  // benchmarks that need only the size of predicates use serialized_size.
  return encode(env).size();
}

}  // namespace tulkun::dvm
