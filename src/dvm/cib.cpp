#include "dvm/cib.hpp"

namespace tulkun::dvm {

void CibIn::apply(const std::vector<packet::PacketSet>& withdrawn,
                  const std::vector<CountEntry>& results) {
  if (!withdrawn.empty()) {
    packet::PacketSet w = withdrawn.front();
    for (std::size_t i = 1; i < withdrawn.size(); ++i) w |= withdrawn[i];
    if (!w.empty()) {
      entries_.mutate_candidates(w, [&](CountEntry& e) { e.pred -= w; });
    }
  }
  for (const auto& r : results) {
    if (r.pred.empty()) continue;
    // Defensive disjointness: the protocol guarantees incoming results fall
    // inside the withdrawn region, but a buggy/byzantine sender must not
    // corrupt the table. Only entries overlapping r's hull can intersect
    // it; stop as soon as nothing of r survives.
    CountEntry clean = r;
    entries_.for_candidates(r.pred, [&](const CountEntry& e) {
      clean.pred -= e.pred;
      return !clean.pred.empty();
    });
    if (!clean.pred.empty()) entries_.insert(std::move(clean));
  }
}

std::vector<CountEntry> CibIn::lookup(const packet::PacketSet& region,
                                      std::size_t arity) const {
  std::vector<CountEntry> out;
  packet::PacketSet remaining = region;
  if (!remaining.empty()) {
    entries_.for_candidates(region, [&](const CountEntry& e) {
      const auto inter = remaining & e.pred;
      if (!inter.empty()) {
        out.push_back(CountEntry{inter, e.counts});
        remaining -= inter;
      }
      return !remaining.empty();
    });
  }
  if (!remaining.empty()) {
    out.push_back(CountEntry{remaining, count::CountSet::zeros(arity)});
  }
  return out;
}

void LocStore::insert(LocEntry e) {
  const packet::Ipv4Prefix pred_hull = packet::dst_prefix_hull(e.pred);
  const packet::Ipv4Prefix down_hull = packet::dst_prefix_hull(e.down_pred);
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    slots_[id] = std::move(e);
    pred_hulls_[id] = pred_hull;
    down_hulls_[id] = down_hull;
    alive_[id] = true;
  } else {
    id = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(e));
    pred_hulls_.push_back(pred_hull);
    down_hulls_.push_back(down_hull);
    alive_.push_back(true);
  }
  by_pred_.insert(id, pred_hull);
  by_down_.insert(id, down_hull);
  ++live_;
}

void LocStore::erase_slot(std::uint32_t id) {
  by_pred_.erase(id, pred_hulls_[id]);
  by_down_.erase(id, down_hulls_[id]);
  alive_[id] = false;
  free_.push_back(id);
  slots_[id] = LocEntry{};
  --live_;
}

void LocStore::clear() {
  slots_.clear();
  pred_hulls_.clear();
  down_hulls_.clear();
  alive_.clear();
  free_.clear();
  by_pred_.clear();
  by_down_.clear();
  live_ = 0;
}

void LocStore::subtract(const packet::PacketSet& region) {
  if (live_ == 0 || region.empty()) return;
  const packet::Ipv4Prefix hull = packet::dst_prefix_hull(region);
  scratch_.clear();
  if (!fib::prefix_index_enabled() || hull.len == 0) {
    fib::index_counters_add(fib::IndexKind::Loc, 1, live_, 0, 1);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (alive_[i]) scratch_.push_back(static_cast<std::uint32_t>(i));
    }
  } else {
    by_pred_.collect(hull, scratch_);
    fib::index_counters_add(fib::IndexKind::Loc, 1, scratch_.size(),
                            live_ - scratch_.size(), 0);
  }
  for (const std::uint32_t id : scratch_) {
    LocEntry& e = slots_[id];
    e.pred -= region;
    if (e.pred.empty()) {
      erase_slot(id);
      continue;
    }
    const packet::Ipv4Prefix now = packet::dst_prefix_hull(e.pred);
    if (now != pred_hulls_[id]) {
      by_pred_.erase(id, pred_hulls_[id]);
      by_pred_.insert(id, now);
      pred_hulls_[id] = now;
    }
  }
}

packet::PacketSet LocStore::affected_region(const packet::PacketSet& updated,
                                            packet::PacketSet seed) const {
  packet::PacketSet region = std::move(seed);
  if (live_ == 0 || updated.empty()) return region;
  const packet::Ipv4Prefix hull = packet::dst_prefix_hull(updated);
  if (!fib::prefix_index_enabled() || hull.len == 0) {
    fib::index_counters_add(fib::IndexKind::Loc, 1, live_, 0, 1);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (alive_[i] && slots_[i].down_pred.intersects(updated)) {
        region |= slots_[i].pred;
      }
    }
    return region;
  }
  scratch_.clear();
  by_down_.collect(hull, scratch_);
  fib::index_counters_add(fib::IndexKind::Loc, 1, scratch_.size(),
                          live_ - scratch_.size(), 0);
  for (const std::uint32_t id : scratch_) {
    if (slots_[id].down_pred.intersects(updated)) region |= slots_[id].pred;
  }
  return region;
}

std::vector<LocEntry> LocStore::snapshot() const {
  std::vector<LocEntry> out;
  out.reserve(live_);
  for_each([&](const LocEntry& e) { out.push_back(e); });
  return out;
}

std::vector<CountEntry> merge_by_counts(const std::vector<LocEntry>& entries) {
  CountMerger merger;
  for (const auto& e : entries) merger.add(e.pred, e.counts);
  return merger.take();
}

packet::PacketSet pred_union(const std::vector<CountEntry>& entries,
                             packet::PacketSet none) {
  packet::PacketSet out = std::move(none);
  for (const auto& e : entries) out |= e.pred;
  return out;
}

}  // namespace tulkun::dvm
