#include "dvm/cib.hpp"

#include <algorithm>

namespace tulkun::dvm {

void CibIn::apply(const std::vector<packet::PacketSet>& withdrawn,
                  const std::vector<CountEntry>& results) {
  if (!withdrawn.empty()) {
    packet::PacketSet w = withdrawn.front();
    for (std::size_t i = 1; i < withdrawn.size(); ++i) w |= withdrawn[i];
    for (auto& e : entries_) e.pred -= w;
    std::erase_if(entries_, [](const CountEntry& e) { return e.pred.empty(); });
  }
  for (const auto& r : results) {
    if (r.pred.empty()) continue;
    // Defensive disjointness: the protocol guarantees incoming results fall
    // inside the withdrawn region, but a buggy/byzantine sender must not
    // corrupt the table.
    CountEntry clean = r;
    for (const auto& e : entries_) clean.pred -= e.pred;
    if (!clean.pred.empty()) entries_.push_back(std::move(clean));
  }
}

std::vector<CountEntry> CibIn::lookup(const packet::PacketSet& region,
                                      std::size_t arity) const {
  std::vector<CountEntry> out;
  packet::PacketSet remaining = region;
  for (const auto& e : entries_) {
    if (remaining.empty()) break;
    const auto inter = remaining & e.pred;
    if (!inter.empty()) {
      out.push_back(CountEntry{inter, e.counts});
      remaining -= inter;
    }
  }
  if (!remaining.empty()) {
    out.push_back(CountEntry{remaining, count::CountSet::zeros(arity)});
  }
  return out;
}

std::vector<CountEntry> merge_by_counts(const std::vector<LocEntry>& entries) {
  std::vector<CountEntry> out;
  for (const auto& e : entries) {
    const auto it = std::find_if(out.begin(), out.end(),
                                 [&](const CountEntry& o) {
                                   return o.counts == e.counts;
                                 });
    if (it == out.end()) {
      out.push_back(CountEntry{e.pred, e.counts});
    } else {
      it->pred |= e.pred;
    }
  }
  return out;
}

packet::PacketSet pred_union(const std::vector<CountEntry>& entries,
                             packet::PacketSet none) {
  packet::PacketSet out = std::move(none);
  for (const auto& e : entries) out |= e.pred;
  return out;
}

}  // namespace tulkun::dvm
