// The per-device DVM engine: executes this device's counting tasks for one
// invariant, maintains its CIBs, and produces the UPDATE/SUBSCRIBE messages
// mandated by the protocol (§5).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dpvnet/dpvnet.hpp"
#include "dvm/cib.hpp"
#include "fib/lec.hpp"
#include "spec/ast.hpp"

namespace tulkun::dvm {

/// A detected data-plane error.
struct Violation {
  InvariantId invariant = 0;
  DeviceId device = kNoDevice;
  NodeId node = kNoNode;
  packet::PacketSet pred;
  count::CountSet counts;  // empty for local-contract violations
  std::string reason;
};

struct EngineConfig {
  /// Apply Proposition 1 minimal counting information to outgoing results
  /// (ablation toggle for bench_mincount).
  bool minimize_counting_info = true;
  /// Paper semantics: a node with no downstream DPVNet edges counts one
  /// delivered copy per accepted atom regardless of the local FIB action.
  bool assume_delivery_at_destination = true;
  /// Worker-pool size of runtime::ShardedRuntime (0 = one worker per
  /// hardware thread). Ignored by the engines themselves; carried here so
  /// one config object travels from CLI/env through harness to runtime.
  std::size_t runtime_shards = 0;
  /// When nonzero, runtime::ShardedRuntime mark/sweep-collects a device's
  /// BDD space whenever its live-node count crosses this threshold
  /// (0 = never). Ignored by EventSimulator, whose spaces are shared with
  /// the caller and therefore have roots the runtime cannot enumerate.
  std::size_t bdd_gc_node_threshold = 0;
};

struct EngineStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t subscribes_sent = 0;
  std::uint64_t entries_recomputed = 0;
  /// Wall time in the LocCIB recompute step (subtract + re-derive).
  double recompute_seconds = 0.0;
  /// Wall time building/diffing CIBOut and emitting UPDATEs.
  double emit_seconds = 0.0;
};

/// All DVM state of one device for one invariant. The runtime owns one
/// DeviceEngine per (device, invariant) pair, feeds it events, and ships
/// the returned envelopes to neighbor devices.
class DeviceEngine {
 public:
  DeviceEngine(DeviceId dev, const dpvnet::DpvNet& dag,
               const spec::Invariant& inv, InvariantId inv_id,
               packet::PacketSpace& space, EngineConfig cfg = {});

  /// True when this device hosts at least one DPVNet node or ingress.
  [[nodiscard]] bool participates() const {
    return !nodes_.empty() || is_source_device_;
  }

  /// Installs/replaces the device's LEC table (initialization / burst
  /// update). Returns protocol messages to transmit.
  std::vector<Envelope> set_lec(fib::LecTable lec);

  /// Applies incremental LEC deltas after a local rule update.
  std::vector<Envelope> on_lec_deltas(const std::vector<fib::LecDelta>& deltas,
                                      fib::LecTable lec);

  /// Handles a received UPDATE addressed to a node on this device.
  std::vector<Envelope> on_update(const UpdateMessage& msg);

  /// Handles a received SUBSCRIBE (packet transformation support).
  std::vector<Envelope> on_subscribe(const SubscribeMessage& msg);

  /// Switches the active fault scene (after §6 flooding synchronization)
  /// and recounts along the scene's sub-DAG.
  std::vector<Envelope> on_scene_change(std::size_t scene);

  [[nodiscard]] std::size_t active_scene() const { return scene_; }

  /// Current violations at this device: behavior violations at hosted
  /// source nodes, plus local-contract violations for equal/subset atoms.
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// Verification results at hosted source nodes: per ingress, the counting
  /// entries over the invariant's packet space.
  [[nodiscard]] std::vector<std::pair<DeviceId, std::vector<CountEntry>>>
  source_results() const;

  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Test/debug copy of one hosted node's tables, in unspecified order
  /// (the tables hold disjoint predicates, so order carries no meaning).
  struct NodeSnapshot {
    NodeId id = kNoNode;
    std::vector<LocEntry> loc;
    std::vector<CountEntry> out_sent;
    std::map<NodeId, std::vector<CountEntry>> cib_in;
  };
  [[nodiscard]] std::vector<NodeSnapshot> node_snapshots() const;

  /// Appends every BDD ref this engine pins (gc root enumeration).
  void collect_refs(std::vector<bdd::NodeRef>& out) const;

 private:
  struct NodeState {
    NodeId id = kNoNode;
    std::map<NodeId, CibIn> cib_in;  // per downstream node
    LocStore loc;
    // Last transmitted upstream, prefix-indexed for the old×new diff, with
    // its predicate union cached so emit_updates need not re-fold it.
    fib::RegionIndexed<CountEntry> out_sent{fib::IndexKind::OutSent};
    packet::PacketSet out_cover;
    packet::PacketSet scope;  // inv space ∪ subscribed regions
    std::map<NodeId, packet::PacketSet> sub_sent;  // per child: subscribed
  };

  /// Scene-valid downstream edges of a node.
  [[nodiscard]] std::vector<const dpvnet::DpvEdge*> live_children(
      const dpvnet::DpvNode& node) const;

  /// Recomputes LocCIB rows covering `region` at `ns` (Equations 1-2) and
  /// appends any resulting UPDATE/SUBSCRIBE envelopes to `out`.
  void recompute(NodeState& ns, const packet::PacketSet& region,
                 std::vector<Envelope>& out);

  /// Computes fresh LocCIB rows for `region` from the LEC table and CIBIn.
  [[nodiscard]] std::vector<LocEntry> compute_region(
      NodeState& ns, const packet::PacketSet& region,
      std::vector<Envelope>& out);

  /// Rebuilds CIBOut for `ns`, diffs against out_sent, and emits UPDATEs
  /// to all upstream devices when the results changed.
  void emit_updates(NodeState& ns, std::vector<Envelope>& out);

  /// Re-evaluates behavior satisfaction at hosted source nodes and local
  /// contracts; refreshes violations_.
  void refresh_verdicts();

  /// Local-contract checks for equal/subset atoms (§4.2: minimal counting
  /// information is empty — verification is communication-free).
  void check_local_contracts();

  [[nodiscard]] count::CountVec accept_indicator(
      const dpvnet::DpvNode& node) const;

  DeviceId dev_;
  const dpvnet::DpvNet* dag_;
  const spec::Invariant* inv_;
  InvariantId inv_id_;
  packet::PacketSpace* space_;
  EngineConfig cfg_;

  std::vector<const spec::Behavior*> atoms_;
  std::size_t arity_ = 0;
  bool counting_mode_ = true;  // false for equal/subset local contracts
  bool is_source_device_ = false;

  fib::LecTable lec_;
  std::vector<NodeState> nodes_;              // nodes hosted on this device
  std::map<NodeId, std::size_t> node_index_;  // NodeId -> nodes_ index
  std::size_t scene_ = 0;

  std::vector<Violation> violations_;
  EngineStats stats_;
};

}  // namespace tulkun::dvm
