#include "bdd/serialize.hpp"

#include <cstring>
#include <unordered_map>

namespace tulkun::bdd {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  if (pos + 4 > bytes.size()) {
    throw Error("bdd deserialize: truncated buffer");
  }
  const std::uint32_t v = static_cast<std::uint32_t>(bytes[pos]) |
                          (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
  pos += 4;
  return v;
}

// Post-order collection: children appear before parents, so local indices
// in the output always reference already-emitted nodes.
void collect_postorder(const Manager& mgr, NodeRef r,
                       std::unordered_map<NodeRef, std::uint32_t>& local,
                       std::vector<NodeRef>& order) {
  if (r < 2 || local.contains(r)) return;
  const Node& n = mgr.node(r);
  collect_postorder(mgr, n.low, local, order);
  collect_postorder(mgr, n.high, local, order);
  local.emplace(r, static_cast<std::uint32_t>(order.size()) + 2);
  order.push_back(r);
}

std::uint32_t local_ref(
    const std::unordered_map<NodeRef, std::uint32_t>& local, NodeRef r) {
  if (r < 2) return r;
  return local.at(r);
}

}  // namespace

std::vector<std::uint8_t> serialize(const Manager& mgr, NodeRef root) {
  std::unordered_map<NodeRef, std::uint32_t> local;
  std::vector<NodeRef> order;
  collect_postorder(mgr, root, local, order);

  std::vector<std::uint8_t> out;
  out.reserve(8 + order.size() * 12);
  put_u32(out, static_cast<std::uint32_t>(order.size()));
  put_u32(out, local_ref(local, root));
  for (const NodeRef r : order) {
    const Node& n = mgr.node(r);
    put_u32(out, n.var);
    put_u32(out, local_ref(local, n.low));
    put_u32(out, local_ref(local, n.high));
  }
  return out;
}

std::size_t serialized_size(const Manager& mgr, NodeRef root) {
  return 8 + mgr.node_count(root) * 12;
}

NodeRef deserialize(Manager& mgr, std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const std::uint32_t n_nodes = get_u32(bytes, pos);
  const std::uint32_t root_local = get_u32(bytes, pos);

  std::vector<NodeRef> refs;  // local index i+2 -> manager ref
  refs.reserve(n_nodes);
  const auto resolve = [&](std::uint32_t local) -> NodeRef {
    if (local < 2) return local;
    const std::uint32_t idx = local - 2;
    if (idx >= refs.size()) {
      throw Error("bdd deserialize: forward reference");
    }
    return refs[idx];
  };

  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    const std::uint32_t var = get_u32(bytes, pos);
    const std::uint32_t lo = get_u32(bytes, pos);
    const std::uint32_t hi = get_u32(bytes, pos);
    if (var >= mgr.num_vars()) {
      throw Error("bdd deserialize: variable out of range");
    }
    refs.push_back(mgr.mk(var, resolve(lo), resolve(hi)));
  }
  return resolve(root_local);
}

}  // namespace tulkun::bdd
