#include "bdd/serialize.hpp"

#include <cstring>

namespace tulkun::bdd {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  if (pos + 4 > bytes.size()) {
    throw Error("bdd deserialize: truncated buffer");
  }
  const std::uint32_t v = static_cast<std::uint32_t>(bytes[pos]) |
                          (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
  pos += 4;
  return v;
}

// Post-order collection: children appear before parents, so local indices
// in the output always reference already-emitted nodes. Iterative with an
// explicit stack — predicates flooded through deep rule chains produce
// BDDs whose depth exceeds comfortable recursion limits.
void collect_postorder(const Manager& mgr, NodeRef root,
                       std::unordered_map<NodeRef, std::uint32_t>& local,
                       std::vector<NodeRef>& order) {
  if (root < 2) return;
  struct Frame {
    NodeRef ref;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({root, false});
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (r < 2 || local.contains(r)) continue;
    if (expanded) {
      local.emplace(r, static_cast<std::uint32_t>(order.size()) + 2);
      order.push_back(r);
      continue;
    }
    const Node& n = mgr.node(r);
    stack.push_back({r, true});
    stack.push_back({n.high, false});
    stack.push_back({n.low, false});
  }
}

std::uint32_t local_ref(
    const std::unordered_map<NodeRef, std::uint32_t>& local, NodeRef r) {
  if (r < 2) return r;
  return local.at(r);
}

}  // namespace

std::vector<std::uint8_t> serialize(const Manager& mgr, NodeRef root) {
  std::unordered_map<NodeRef, std::uint32_t> local;
  std::vector<NodeRef> order;
  collect_postorder(mgr, root, local, order);

  std::vector<std::uint8_t> out;
  out.reserve(8 + order.size() * 12);
  put_u32(out, static_cast<std::uint32_t>(order.size()));
  put_u32(out, local_ref(local, root));
  for (const NodeRef r : order) {
    const Node& n = mgr.node(r);
    put_u32(out, n.var);
    put_u32(out, local_ref(local, n.low));
    put_u32(out, local_ref(local, n.high));
  }
  return out;
}

std::size_t serialized_size(const Manager& mgr, NodeRef root) {
  return 8 + mgr.node_count(root) * 12;
}

NodeRef deserialize(Manager& mgr, std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const std::uint32_t n_nodes = get_u32(bytes, pos);
  const std::uint32_t root_local = get_u32(bytes, pos);

  std::vector<NodeRef> refs;  // local index i+2 -> manager ref
  refs.reserve(n_nodes);
  const auto resolve = [&](std::uint32_t local) -> NodeRef {
    if (local < 2) return local;
    const std::uint32_t idx = local - 2;
    if (idx >= refs.size()) {
      throw Error("bdd deserialize: forward reference");
    }
    return refs[idx];
  };

  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    const std::uint32_t var = get_u32(bytes, pos);
    const std::uint32_t lo = get_u32(bytes, pos);
    const std::uint32_t hi = get_u32(bytes, pos);
    if (var >= mgr.num_vars()) {
      throw Error("bdd deserialize: variable out of range");
    }
    refs.push_back(mgr.mk(var, resolve(lo), resolve(hi)));
  }
  return resolve(root_local);
}

std::shared_ptr<const std::vector<std::uint8_t>> SerializeCache::get(
    const Manager& mgr, NodeRef root) {
  const Key key{&mgr, mgr.generation(), mgr.epoch(), root};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  if (entries_.size() >= max_entries_) {
    // Lossy: drop everything rather than track recency. Working sets in a
    // verification session are far below the cap; overflow means churn.
    entries_.clear();
  }
  auto bytes =
      std::make_shared<const std::vector<std::uint8_t>>(serialize(mgr, root));
  entries_.emplace(key, bytes);
  return bytes;
}

void NodeChannelEncoder::encode(NodeRef root,
                                std::vector<std::uint8_t>& out) {
  std::uint8_t flags = 0;
  if (generation_ != mgr_->generation() || epoch_ != mgr_->epoch() ||
      shipped_.size() > kMaxShippedNodes) {
    // NodeRefs moved (reset/gc) or the table grew past the bound: start a
    // fresh stream. The receiver clears its table on the reset flag, so
    // both sides stay bounded and consistent.
    shipped_.clear();
    next_id_ = 2;
    generation_ = mgr_->generation();
    epoch_ = mgr_->epoch();
    flags |= 1;
    ++resets_;
  }
  ++roots_;
  out.push_back(flags);

  // Ship unshipped reachable nodes children-first (same post-order walk as
  // serialize()), assigning stream ids in shipping order.
  std::unordered_map<NodeRef, std::uint32_t> fresh_local;
  std::vector<NodeRef> order;
  if (root >= 2 && !shipped_.contains(root)) {
    struct Frame {
      NodeRef ref;
      bool expanded;
    };
    std::vector<Frame> stack;
    stack.push_back({root, false});
    while (!stack.empty()) {
      auto [r, expanded] = stack.back();
      stack.pop_back();
      if (r < 2 || shipped_.contains(r) || fresh_local.contains(r)) continue;
      if (expanded) {
        fresh_local.emplace(r, 0);  // placeholder; ids assigned below
        order.push_back(r);
        continue;
      }
      const Node& n = mgr_->node(r);
      stack.push_back({r, true});
      stack.push_back({n.high, false});
      stack.push_back({n.low, false});
    }
  }
  for (const NodeRef r : order) {
    shipped_.emplace(r, next_id_++);
  }
  const auto stream_id = [this](NodeRef r) -> std::uint32_t {
    if (r < 2) return r;
    return shipped_.at(r);
  };

  put_u32(out, static_cast<std::uint32_t>(order.size()));
  for (const NodeRef r : order) {
    const Node& n = mgr_->node(r);
    put_u32(out, n.var);
    put_u32(out, stream_id(n.low));
    put_u32(out, stream_id(n.high));
  }
  put_u32(out, stream_id(root));
  shipped_total_ += order.size();
}

NodeRef NodeChannelDecoder::decode(std::span<const std::uint8_t> bytes,
                                   std::size_t& pos) {
  if (pos >= bytes.size()) {
    throw Error("bdd channel: truncated buffer");
  }
  const std::uint8_t flags = bytes[pos++];
  if (flags & 1) ids_.clear();

  const std::uint32_t n_new = get_u32(bytes, pos);
  // Hostile-input guard: each node costs 12 bytes on the wire, so n_new
  // cannot exceed what the buffer could possibly hold.
  if (n_new > (bytes.size() - pos) / 12) {
    throw Error("bdd channel: node count exceeds buffer");
  }
  const auto resolve = [this](std::uint32_t id) -> NodeRef {
    if (id < 2) return id;
    const std::uint32_t idx = id - 2;
    if (idx >= ids_.size()) {
      throw Error("bdd channel: reference to unshipped node");
    }
    return ids_[idx];
  };
  for (std::uint32_t i = 0; i < n_new; ++i) {
    const std::uint32_t var = get_u32(bytes, pos);
    const std::uint32_t lo = get_u32(bytes, pos);
    const std::uint32_t hi = get_u32(bytes, pos);
    if (var >= mgr_->num_vars()) {
      throw Error("bdd channel: variable out of range");
    }
    ids_.push_back(mgr_->mk(var, resolve(lo), resolve(hi)));
  }
  return resolve(get_u32(bytes, pos));
}

void NodeChannelDecoder::collect_refs(std::vector<NodeRef>& out) const {
  out.insert(out.end(), ids_.begin(), ids_.end());
}

}  // namespace tulkun::bdd
