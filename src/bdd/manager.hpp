// From-scratch ROBDD engine.
//
// Tulkun encodes packet sets (LEC predicates, DVM message payloads) as
// reduced ordered binary decision diagrams, mirroring the paper's choice of
// BDDs (it used the Java JDD library; we implement our own).
//
// Design:
//  - Nodes live in a growable arena; a NodeRef is an index into it.
//    Refs 0 and 1 are the FALSE and TRUE terminals.
//  - A hash-consing unique table guarantees canonicity: structural equality
//    is pointer (index) equality, so packet-set equality checks are O(1).
//  - Binary operations are memoized in a lossy direct-mapped cache.
//  - No garbage collection: verification sessions are bounded and the arena
//    is compact (16 bytes/node); managers are per-session and can be reset.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "core/ids.hpp"

namespace tulkun::bdd {

/// Index of a BDD node within its Manager. 0 = FALSE, 1 = TRUE.
using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// Binary boolean operations supported by apply().
enum class Op : std::uint8_t { And, Or, Xor, Diff };

/// A decision node: branch on `var`; `low` = var=0 branch, `high` = var=1.
/// `next` chains nodes in the same unique-table bucket (0 = end of chain;
/// the FALSE terminal never appears in the table).
struct Node {
  std::uint32_t var = 0;
  NodeRef low = kFalse;
  NodeRef high = kFalse;
  NodeRef next = kFalse;
};

/// Owns the node arena, unique table, and operation caches for one BDD space.
/// All NodeRefs are only meaningful relative to their Manager.
class Manager {
 public:
  /// num_vars: number of boolean variables; variable 0 is the topmost in
  /// the decision order.
  explicit Manager(std::uint32_t num_vars);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  [[nodiscard]] std::uint32_t num_vars() const { return num_vars_; }

  /// Total nodes allocated (including the two terminals).
  [[nodiscard]] std::size_t arena_size() const { return nodes_.size(); }

  /// Monotonic counter bumped by reset(). A (generation, NodeRef) pair
  /// identifies an immutable BDD for the manager's whole lifetime, which
  /// makes serialized-bytes caches sound across resets.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// BDD for a single variable (true iff var v is 1).
  [[nodiscard]] NodeRef var(std::uint32_t v);

  /// BDD for the negation of a single variable.
  [[nodiscard]] NodeRef nvar(std::uint32_t v);

  /// The canonical node for (v, low, high); reduces when low == high.
  [[nodiscard]] NodeRef mk(std::uint32_t v, NodeRef low, NodeRef high);

  [[nodiscard]] NodeRef apply(Op op, NodeRef a, NodeRef b);
  [[nodiscard]] NodeRef land(NodeRef a, NodeRef b) { return apply(Op::And, a, b); }
  [[nodiscard]] NodeRef lor(NodeRef a, NodeRef b) { return apply(Op::Or, a, b); }
  [[nodiscard]] NodeRef lxor(NodeRef a, NodeRef b) { return apply(Op::Xor, a, b); }
  /// a AND NOT b.
  [[nodiscard]] NodeRef diff(NodeRef a, NodeRef b) { return apply(Op::Diff, a, b); }
  [[nodiscard]] NodeRef negate(NodeRef a);
  /// if-then-else: f ? g : h.
  [[nodiscard]] NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  /// True iff a => b (a AND NOT b is empty).
  [[nodiscard]] bool implies(NodeRef a, NodeRef b) {
    return diff(a, b) == kFalse;
  }

  /// Existentially quantifies all variables in [lo_var, hi_var):
  /// result is true for an assignment iff some setting of those variables
  /// satisfies `a`. Used to compute rewrite images of packet sets.
  [[nodiscard]] NodeRef exists_range(NodeRef a, std::uint32_t lo_var,
                                     std::uint32_t hi_var);

  /// Number of satisfying assignments over all num_vars() variables.
  /// Returned as double: may exceed 2^53 for wide packet spaces, where an
  /// approximate count is acceptable (used only for stats/workload sizing).
  [[nodiscard]] double sat_count(NodeRef a);

  /// Number of decision nodes reachable from `a` (terminals excluded).
  [[nodiscard]] std::size_t node_count(NodeRef a) const;

  /// One satisfying assignment as (var -> bool) pairs along a path to TRUE.
  /// Unconstrained variables are omitted. Requires a != kFalse.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, bool>> any_sat(
      NodeRef a) const;

  /// Access a decision node. Requires r >= 2.
  [[nodiscard]] const Node& node(NodeRef r) const {
    TULKUN_ASSERT(r >= 2 && r < nodes_.size());
    return nodes_[r];
  }

  /// Drops all nodes and caches, keeping only terminals. Invalidates every
  /// outstanding NodeRef; callers own that hazard (used between bench runs).
  void reset();

 private:
  // Lossy direct-mapped cache for apply(); collisions overwrite.
  struct ApplyEntry {
    std::uint64_t key = ~0ULL;  // packed (op, a, b)
    NodeRef result = kFalse;
  };
  struct NegateEntry {
    NodeRef key = ~0U;
    NodeRef result = kFalse;
  };

  [[nodiscard]] std::uint32_t var_of(NodeRef r) const {
    // Terminals sort below all variables.
    return r < 2 ? num_vars_ : nodes_[r].var;
  }

  [[nodiscard]] static std::size_t hash_node(std::uint32_t v, NodeRef low,
                                             NodeRef high) noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(low) << 32) ^ high ^
                      (static_cast<std::uint64_t>(v) << 17);
    x *= 0x9E3779B97F4A7C15ULL;  // Fibonacci multiplicative mix
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
  void grow_table();

  NodeRef apply_rec(Op op, NodeRef a, NodeRef b);
  NodeRef exists_rec(NodeRef a, std::uint32_t lo_var, std::uint32_t hi_var,
                     std::unordered_map<NodeRef, NodeRef>& memo);
  double sat_count_rec(NodeRef a, std::unordered_map<NodeRef, double>& memo);
  void node_count_rec(NodeRef a, std::vector<bool>& seen,
                      std::size_t& count) const;

  std::uint32_t num_vars_;
  std::uint64_t generation_ = 0;
  std::vector<Node> nodes_;
  // Intrusive chained unique table: buckets hold node indices, chains run
  // through Node::next inside the arena. Replaces std::unordered_map —
  // mk() is the engine's hottest call and the map's find/emplace machinery
  // dominated whole-bench profiles.
  std::vector<NodeRef> table_;  // power-of-2 size
  std::size_t table_mask_ = 0;
  std::vector<ApplyEntry> apply_cache_;
  std::vector<NegateEntry> negate_cache_;
};

}  // namespace tulkun::bdd
