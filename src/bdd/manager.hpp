// From-scratch ROBDD engine.
//
// Tulkun encodes packet sets (LEC predicates, DVM message payloads) as
// reduced ordered binary decision diagrams, mirroring the paper's choice of
// BDDs (it used the Java JDD library; we implement our own).
//
// Design:
//  - Nodes live in a growable arena; a NodeRef is an index into it.
//    Refs 0 and 1 are the FALSE and TRUE terminals.
//  - A hash-consing unique table guarantees canonicity: structural equality
//    is pointer (index) equality, so packet-set equality checks are O(1).
//  - Binary operations are memoized in a lossy direct-mapped cache.
//  - Garbage collection is explicit and epoch-based: gc(roots) mark/sweeps
//    the arena in place, threading dead slots onto a free list that mk()
//    reuses, so live NodeRefs stay stable dense IDs across collections.
//    Each collection bumps epoch(); (generation, epoch, NodeRef) identifies
//    an immutable BDD, which keeps serialized-bytes caches and the pred
//    atom-conversion memos sound across both reset() and gc().
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "core/ids.hpp"

namespace tulkun::bdd {

/// Index of a BDD node within its Manager. 0 = FALSE, 1 = TRUE.
using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// Binary boolean operations supported by apply().
enum class Op : std::uint8_t { And, Or, Xor, Diff };

/// A decision node: branch on `var`; `low` = var=0 branch, `high` = var=1.
/// `next` chains nodes in the same unique-table bucket (0 = end of chain;
/// the FALSE terminal never appears in the table).
struct Node {
  std::uint32_t var = 0;
  NodeRef low = kFalse;
  NodeRef high = kFalse;
  NodeRef next = kFalse;
};

/// Owns the node arena, unique table, and operation caches for one BDD space.
/// All NodeRefs are only meaningful relative to their Manager.
class Manager {
 public:
  /// num_vars: number of boolean variables; variable 0 is the topmost in
  /// the decision order.
  explicit Manager(std::uint32_t num_vars);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  [[nodiscard]] std::uint32_t num_vars() const { return num_vars_; }

  /// Total nodes allocated (including the two terminals).
  [[nodiscard]] std::size_t arena_size() const { return nodes_.size(); }

  /// Monotonic counter bumped by reset(). A (generation, epoch, NodeRef)
  /// triple identifies an immutable BDD for the manager's whole lifetime,
  /// which makes serialized-bytes caches sound across resets and gcs.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Monotonic counter bumped by gc(). Live refs survive a collection
  /// unchanged, but freed slots may be re-issued for different nodes, so
  /// any cache keyed by NodeRef must also key on the epoch.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Nodes currently allocated (terminals excluded, free slots excluded).
  [[nodiscard]] std::size_t live_node_count() const {
    return nodes_.size() - 2 - free_count_;
  }

  /// BDD for a single variable (true iff var v is 1).
  [[nodiscard]] NodeRef var(std::uint32_t v);

  /// BDD for the negation of a single variable.
  [[nodiscard]] NodeRef nvar(std::uint32_t v);

  /// The canonical node for (v, low, high); reduces when low == high.
  [[nodiscard]] NodeRef mk(std::uint32_t v, NodeRef low, NodeRef high);

  [[nodiscard]] NodeRef apply(Op op, NodeRef a, NodeRef b);
  [[nodiscard]] NodeRef land(NodeRef a, NodeRef b) { return apply(Op::And, a, b); }
  [[nodiscard]] NodeRef lor(NodeRef a, NodeRef b) { return apply(Op::Or, a, b); }
  [[nodiscard]] NodeRef lxor(NodeRef a, NodeRef b) { return apply(Op::Xor, a, b); }
  /// a AND NOT b.
  [[nodiscard]] NodeRef diff(NodeRef a, NodeRef b) { return apply(Op::Diff, a, b); }
  [[nodiscard]] NodeRef negate(NodeRef a);
  /// if-then-else: f ? g : h.
  [[nodiscard]] NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  /// True iff a => b (a AND NOT b is empty).
  [[nodiscard]] bool implies(NodeRef a, NodeRef b) {
    return diff(a, b) == kFalse;
  }

  /// Existentially quantifies all variables in [lo_var, hi_var):
  /// result is true for an assignment iff some setting of those variables
  /// satisfies `a`. Used to compute rewrite images of packet sets.
  [[nodiscard]] NodeRef exists_range(NodeRef a, std::uint32_t lo_var,
                                     std::uint32_t hi_var);

  /// Number of satisfying assignments over all num_vars() variables.
  /// Returned as double: may exceed 2^53 for wide packet spaces, where an
  /// approximate count is acceptable (used only for stats/workload sizing).
  [[nodiscard]] double sat_count(NodeRef a);

  /// Number of decision nodes reachable from `a` (terminals excluded).
  [[nodiscard]] std::size_t node_count(NodeRef a) const;

  /// One satisfying assignment as (var -> bool) pairs along a path to TRUE.
  /// Unconstrained variables are omitted. Requires a != kFalse.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, bool>> any_sat(
      NodeRef a) const;

  /// Access a decision node. Requires r >= 2.
  [[nodiscard]] const Node& node(NodeRef r) const {
    TULKUN_ASSERT(r >= 2 && r < nodes_.size());
    return nodes_[r];
  }

  /// Drops all nodes and caches, keeping only terminals. Invalidates every
  /// outstanding NodeRef; callers own that hazard (used between bench runs).
  void reset();

  /// Mark/sweep collection: keeps exactly the nodes reachable from `roots`
  /// (terminals always live), threads every other slot onto the free list
  /// for reuse by mk(), rebuilds the unique table, clears the operation
  /// caches, and bumps epoch(). Live NodeRefs are stable. The caller must
  /// enumerate EVERY ref it intends to use again — including lazily
  /// materialized refs cached inside PacketSets. Returns reclaimed slots.
  std::size_t gc(std::span<const NodeRef> roots);

  /// Growth-threshold gc policy: collects when the live-node estimate
  /// exceeds the current trigger (initially `threshold`, then twice the
  /// surviving live count, never below `threshold`). threshold == 0
  /// disables. Returns true when a collection ran.
  bool maybe_gc(std::span<const NodeRef> roots, std::size_t threshold);

  /// True when maybe_gc(_, threshold) would collect — lets callers defer
  /// the (possibly expensive) root enumeration until a collection is due.
  [[nodiscard]] bool gc_pending(std::size_t threshold) const {
    if (threshold == 0) return false;
    return live_node_count() >= (gc_trigger_ == 0 ? threshold : gc_trigger_);
  }

  /// Collections run / slots reclaimed by this manager.
  [[nodiscard]] std::uint64_t gc_runs() const { return gc_runs_; }
  [[nodiscard]] std::uint64_t gc_reclaimed() const { return gc_reclaimed_; }

 private:
  // Lossy direct-mapped cache for apply(); collisions overwrite.
  struct ApplyEntry {
    std::uint64_t key = ~0ULL;  // packed (op, a, b)
    NodeRef result = kFalse;
  };
  struct NegateEntry {
    NodeRef key = ~0U;
    NodeRef result = kFalse;
  };

  [[nodiscard]] std::uint32_t var_of(NodeRef r) const {
    // Terminals sort below all variables.
    return r < 2 ? num_vars_ : nodes_[r].var;
  }

  [[nodiscard]] static std::size_t hash_node(std::uint32_t v, NodeRef low,
                                             NodeRef high) noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(low) << 32) ^ high ^
                      (static_cast<std::uint64_t>(v) << 17);
    x *= 0x9E3779B97F4A7C15ULL;  // Fibonacci multiplicative mix
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
  void grow_table();

  NodeRef apply_rec(Op op, NodeRef a, NodeRef b);
  NodeRef exists_rec(NodeRef a, std::uint32_t lo_var, std::uint32_t hi_var,
                     std::unordered_map<NodeRef, NodeRef>& memo);
  double sat_count_rec(NodeRef a, std::unordered_map<NodeRef, double>& memo);
  void node_count_rec(NodeRef a, std::vector<bool>& seen,
                      std::size_t& count) const;

  /// Sentinel var marking a free arena slot; Node::low then chains the
  /// free list. Never collides with real vars (num_vars is small).
  static constexpr std::uint32_t kFreeVar = ~0U;

  std::uint32_t num_vars_;
  std::uint64_t generation_ = 0;
  std::uint64_t epoch_ = 0;
  NodeRef free_head_ = kFalse;  // kFalse = empty (slot 0 is a terminal)
  std::size_t free_count_ = 0;
  std::size_t gc_trigger_ = 0;  // 0 = uninitialized; set by maybe_gc
  std::uint64_t gc_runs_ = 0;
  std::uint64_t gc_reclaimed_ = 0;
  std::vector<Node> nodes_;
  // Intrusive chained unique table: buckets hold node indices, chains run
  // through Node::next inside the arena. Replaces std::unordered_map —
  // mk() is the engine's hottest call and the map's find/emplace machinery
  // dominated whole-bench profiles.
  std::vector<NodeRef> table_;  // power-of-2 size
  std::size_t table_mask_ = 0;
  std::vector<ApplyEntry> apply_cache_;
  std::vector<NegateEntry> negate_cache_;
};

/// Process-global gc totals across all managers (relaxed atomics), for the
/// observability export: "epoch reclaims" without walking every runtime's
/// per-device managers.
struct GcTotals {
  std::uint64_t runs = 0;
  std::uint64_t reclaimed_nodes = 0;
};
[[nodiscard]] GcTotals gc_totals();
void gc_totals_reset();

}  // namespace tulkun::bdd
