#include "bdd/manager.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace tulkun::bdd {

namespace {
constexpr std::size_t kApplyCacheSize = 1 << 18;  // 256K entries, lossy
constexpr std::size_t kNegateCacheSize = 1 << 16;
constexpr std::size_t kInitialTableSize = 1 << 16;  // power of 2

std::uint64_t pack_apply_key(Op op, NodeRef a, NodeRef b) {
  // 2 bits op, 31 bits each operand: sufficient for our arena sizes.
  return (static_cast<std::uint64_t>(op) << 62) |
         (static_cast<std::uint64_t>(a) << 31) | b;
}

std::atomic<std::uint64_t> g_gc_runs{0};
std::atomic<std::uint64_t> g_gc_reclaimed{0};
}  // namespace

GcTotals gc_totals() {
  GcTotals t;
  t.runs = g_gc_runs.load(std::memory_order_relaxed);
  t.reclaimed_nodes = g_gc_reclaimed.load(std::memory_order_relaxed);
  return t;
}

void gc_totals_reset() {
  g_gc_runs.store(0, std::memory_order_relaxed);
  g_gc_reclaimed.store(0, std::memory_order_relaxed);
}

Manager::Manager(std::uint32_t num_vars)
    : num_vars_(num_vars),
      table_(kInitialTableSize, kFalse),
      table_mask_(kInitialTableSize - 1),
      apply_cache_(kApplyCacheSize),
      negate_cache_(kNegateCacheSize) {
  // Terminals occupy slots 0 and 1; their contents are never read.
  nodes_.resize(2);
}

void Manager::reset() {
  ++generation_;
  nodes_.clear();
  nodes_.resize(2);
  free_head_ = kFalse;
  free_count_ = 0;
  gc_trigger_ = 0;
  std::fill(table_.begin(), table_.end(), kFalse);
  std::fill(apply_cache_.begin(), apply_cache_.end(), ApplyEntry{});
  std::fill(negate_cache_.begin(), negate_cache_.end(), NegateEntry{});
}

void Manager::grow_table() {
  std::vector<NodeRef> grown(table_.size() * 2, kFalse);
  table_mask_ = grown.size() - 1;
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    Node& n = nodes_[r];
    if (n.var == kFreeVar) continue;  // free slot: not in the table
    const std::size_t h = hash_node(n.var, n.low, n.high) & table_mask_;
    n.next = grown[h];
    grown[h] = r;
  }
  table_ = std::move(grown);
}

NodeRef Manager::mk(std::uint32_t v, NodeRef low, NodeRef high) {
  TULKUN_ASSERT(v < num_vars_);
  if (low == high) return low;  // reduction rule
  const std::size_t h = hash_node(v, low, high) & table_mask_;
  for (NodeRef p = table_[h]; p != kFalse; p = nodes_[p].next) {
    const Node& n = nodes_[p];
    if (n.var == v && n.low == low && n.high == high) return p;
  }
  NodeRef ref;
  if (free_head_ != kFalse) {
    // Reuse a slot freed by gc(); the free list chains through Node::low.
    ref = free_head_;
    free_head_ = nodes_[ref].low;
    --free_count_;
    nodes_[ref] = Node{v, low, high, table_[h]};
  } else {
    ref = static_cast<NodeRef>(nodes_.size());
    nodes_.push_back(Node{v, low, high, table_[h]});
  }
  table_[h] = ref;
  // Keep the load factor under 3/4 so chains stay short.
  if (live_node_count() + 2 > table_.size() - (table_.size() >> 2)) {
    grow_table();
  }
  return ref;
}

NodeRef Manager::var(std::uint32_t v) { return mk(v, kFalse, kTrue); }

NodeRef Manager::nvar(std::uint32_t v) { return mk(v, kTrue, kFalse); }

NodeRef Manager::apply(Op op, NodeRef a, NodeRef b) {
  return apply_rec(op, a, b);
}

NodeRef Manager::apply_rec(Op op, NodeRef a, NodeRef b) {
  // Terminal cases.
  switch (op) {
    case Op::And:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case Op::Or:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case Op::Xor:
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return kFalse;
      if (a == kTrue) return negate(b);
      if (b == kTrue) return negate(a);
      break;
    case Op::Diff:
      if (a == kFalse || b == kTrue) return kFalse;
      if (a == b) return kFalse;
      if (b == kFalse) return a;
      if (a == kTrue) return negate(b);
      break;
  }

  // Canonicalize commutative operand order for better cache hit rates.
  NodeRef ca = a;
  NodeRef cb = b;
  if ((op == Op::And || op == Op::Or || op == Op::Xor) && cb < ca) {
    std::swap(ca, cb);
  }
  const std::uint64_t key = pack_apply_key(op, ca, cb);
  ApplyEntry& slot = apply_cache_[key % kApplyCacheSize];
  if (slot.key == key) return slot.result;

  const std::uint32_t va = var_of(ca);
  const std::uint32_t vb = var_of(cb);
  const std::uint32_t v = std::min(va, vb);
  const NodeRef a_lo = va == v ? nodes_[ca].low : ca;
  const NodeRef a_hi = va == v ? nodes_[ca].high : ca;
  const NodeRef b_lo = vb == v ? nodes_[cb].low : cb;
  const NodeRef b_hi = vb == v ? nodes_[cb].high : cb;

  const NodeRef lo = apply_rec(op, a_lo, b_lo);
  const NodeRef hi = apply_rec(op, a_hi, b_hi);
  const NodeRef result = mk(v, lo, hi);

  slot = ApplyEntry{key, result};
  return result;
}

NodeRef Manager::negate(NodeRef a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  NegateEntry& slot = negate_cache_[a % kNegateCacheSize];
  if (slot.key == a) return slot.result;
  const Node n = nodes_[a];
  const NodeRef result = mk(n.var, negate(n.low), negate(n.high));
  negate_cache_[a % kNegateCacheSize] = NegateEntry{a, result};
  return result;
}

NodeRef Manager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // ite(f,g,h) = (f AND g) OR (NOT f AND h); fine for our usage patterns.
  return lor(land(f, g), land(negate(f), h));
}

NodeRef Manager::exists_range(NodeRef a, std::uint32_t lo_var,
                              std::uint32_t hi_var) {
  std::unordered_map<NodeRef, NodeRef> memo;
  return exists_rec(a, lo_var, hi_var, memo);
}

NodeRef Manager::exists_rec(NodeRef a, std::uint32_t lo_var,
                            std::uint32_t hi_var,
                            std::unordered_map<NodeRef, NodeRef>& memo) {
  if (a < 2) return a;
  const std::uint32_t v = nodes_[a].var;
  if (v >= hi_var) return a;  // all quantified vars are above this node
  const auto it = memo.find(a);
  if (it != memo.end()) return it->second;
  const Node n = nodes_[a];
  const NodeRef lo = exists_rec(n.low, lo_var, hi_var, memo);
  const NodeRef hi = exists_rec(n.high, lo_var, hi_var, memo);
  const NodeRef result =
      (v >= lo_var && v < hi_var) ? lor(lo, hi) : mk(v, lo, hi);
  memo.emplace(a, result);
  return result;
}

double Manager::sat_count(NodeRef a) {
  std::unordered_map<NodeRef, double> memo;
  // sat_count_rec counts over variables [var_of(a), num_vars); variables
  // above the root are unconstrained and scale the count.
  return sat_count_rec(a, memo) *
         std::pow(2.0, static_cast<double>(var_of(a)));
}

double Manager::sat_count_rec(NodeRef a,
                              std::unordered_map<NodeRef, double>& memo) {
  // Returns the count over variables [var_of(a), num_vars).
  if (a == kFalse) return 0.0;
  if (a == kTrue) return 1.0;
  const auto it = memo.find(a);
  if (it != memo.end()) return it->second;
  const Node& n = nodes_[a];
  const double lo = sat_count_rec(n.low, memo);
  const double hi = sat_count_rec(n.high, memo);
  const double lo_scale =
      std::pow(2.0, static_cast<double>(var_of(n.low) - n.var - 1));
  const double hi_scale =
      std::pow(2.0, static_cast<double>(var_of(n.high) - n.var - 1));
  const double count = lo * lo_scale + hi * hi_scale;
  memo.emplace(a, count);
  return count;
}

std::size_t Manager::node_count(NodeRef a) const {
  if (a < 2) return 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  node_count_rec(a, seen, count);
  return count;
}

void Manager::node_count_rec(NodeRef a, std::vector<bool>& seen,
                             std::size_t& count) const {
  if (a < 2 || seen[a]) return;
  seen[a] = true;
  ++count;
  node_count_rec(nodes_[a].low, seen, count);
  node_count_rec(nodes_[a].high, seen, count);
}

std::size_t Manager::gc(std::span<const NodeRef> roots) {
  // Mark every node reachable from the roots.
  std::vector<bool> live(nodes_.size(), false);
  live[kFalse] = true;
  live[kTrue] = true;
  std::vector<NodeRef> stack;
  for (const NodeRef r : roots) {
    TULKUN_ASSERT(r < nodes_.size());
    if (!live[r]) {
      live[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    TULKUN_ASSERT(n.var != kFreeVar);  // a root pointed into the free list
    if (!live[n.low]) {
      live[n.low] = true;
      stack.push_back(n.low);
    }
    if (!live[n.high]) {
      live[n.high] = true;
      stack.push_back(n.high);
    }
  }

  // Sweep in place: relink survivors into a fresh unique table, thread
  // everything else onto the free list. Live refs keep their indices.
  std::fill(table_.begin(), table_.end(), kFalse);
  free_head_ = kFalse;
  free_count_ = 0;
  std::size_t reclaimed = 0;
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    Node& n = nodes_[r];
    if (live[r]) {
      const std::size_t h = hash_node(n.var, n.low, n.high) & table_mask_;
      n.next = table_[h];
      table_[h] = r;
    } else {
      if (n.var != kFreeVar) ++reclaimed;  // already-free slots don't count
      n = Node{kFreeVar, free_head_, kFalse, kFalse};
      free_head_ = r;
      ++free_count_;
    }
  }

  // Every cache keyed by bare NodeRefs is now unsound; epoch-keyed caches
  // (SerializeCache, pred memos, node channels) invalidate themselves.
  std::fill(apply_cache_.begin(), apply_cache_.end(), ApplyEntry{});
  std::fill(negate_cache_.begin(), negate_cache_.end(), NegateEntry{});
  ++epoch_;
  ++gc_runs_;
  gc_reclaimed_ += reclaimed;
  g_gc_runs.fetch_add(1, std::memory_order_relaxed);
  g_gc_reclaimed.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

bool Manager::maybe_gc(std::span<const NodeRef> roots, std::size_t threshold) {
  if (threshold == 0) return false;
  if (gc_trigger_ == 0) gc_trigger_ = threshold;
  if (live_node_count() < gc_trigger_) return false;
  gc(roots);
  // Back off until the live set doubles again, but never below the floor.
  gc_trigger_ = std::max(threshold, live_node_count() * 2);
  return true;
}

std::vector<std::pair<std::uint32_t, bool>> Manager::any_sat(NodeRef a) const {
  TULKUN_ASSERT(a != kFalse);
  std::vector<std::pair<std::uint32_t, bool>> path;
  while (a != kTrue) {
    const Node& n = nodes_[a];
    if (n.high != kFalse) {
      path.emplace_back(n.var, true);
      a = n.high;
    } else {
      path.emplace_back(n.var, false);
      a = n.low;
    }
  }
  return path;
}

}  // namespace tulkun::bdd
