// Wire (de)serialization of BDDs.
//
// DVM UPDATE messages carry predicates between devices; the paper adapted
// JDD + Protobuf for this. We use a compact custom format: a topologically
// ordered node list with local indices, so the receiver can rebuild the
// predicate in its own manager with hash-consing intact.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/manager.hpp"

namespace tulkun::bdd {

/// Serializes the BDD rooted at `root` into a self-contained byte buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Manager& mgr,
                                                  NodeRef root);

/// Rebuilds a serialized BDD inside `mgr`. Throws Error on malformed input.
/// The manager may differ from the serializing one as long as it has at
/// least as many variables.
[[nodiscard]] NodeRef deserialize(Manager& mgr,
                                  std::span<const std::uint8_t> bytes);

/// Size in bytes that serialize() would produce (for message accounting).
[[nodiscard]] std::size_t serialized_size(const Manager& mgr, NodeRef root);

/// Memoizes serialize(): a predicate flooded to N destinations (or re-sent
/// unchanged) is serialized once and the bytes are shared thereafter.
///
/// Keyed by (source manager, manager generation, NodeRef). BDD nodes are
/// immutable and managers never recycle NodeRefs within a generation
/// (reset() bumps the generation), so a hit is always byte-identical to a
/// fresh serialize. Not thread-safe: use one cache per worker thread.
class SerializeCache {
 public:
  explicit SerializeCache(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  /// serialize(mgr, root), memoized. The returned buffer is shared with
  /// the cache; callers must treat it as immutable.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> get(
      const Manager& mgr, NodeRef root);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Key {
    const Manager* mgr;
    std::uint64_t generation;
    NodeRef root;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t seed = std::hash<const void*>{}(k.mgr);
      hash_combine(seed, k.generation);
      hash_combine(seed, k.root);
      return seed;
    }
  };

  std::size_t max_entries_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<std::uint8_t>>,
                     KeyHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tulkun::bdd
