// Wire (de)serialization of BDDs.
//
// DVM UPDATE messages carry predicates between devices; the paper adapted
// JDD + Protobuf for this. We use a compact custom format: a topologically
// ordered node list with local indices, so the receiver can rebuild the
// predicate in its own manager with hash-consing intact.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/manager.hpp"

namespace tulkun::bdd {

/// Serializes the BDD rooted at `root` into a self-contained byte buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Manager& mgr,
                                                  NodeRef root);

/// Rebuilds a serialized BDD inside `mgr`. Throws Error on malformed input.
/// The manager may differ from the serializing one as long as it has at
/// least as many variables.
[[nodiscard]] NodeRef deserialize(Manager& mgr,
                                  std::span<const std::uint8_t> bytes);

/// Size in bytes that serialize() would produce (for message accounting).
[[nodiscard]] std::size_t serialized_size(const Manager& mgr, NodeRef root);

/// Memoizes serialize(): a predicate flooded to N destinations (or re-sent
/// unchanged) is serialized once and the bytes are shared thereafter.
///
/// Keyed by (source manager, generation, gc epoch, NodeRef). BDD nodes are
/// immutable and managers never recycle a NodeRef within one (generation,
/// epoch) window — reset() bumps the generation, gc() bumps the epoch — so
/// a hit is always byte-identical to a fresh serialize. Not thread-safe:
/// use one cache per worker thread.
class SerializeCache {
 public:
  explicit SerializeCache(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  /// serialize(mgr, root), memoized. The returned buffer is shared with
  /// the cache; callers must treat it as immutable.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> get(
      const Manager& mgr, NodeRef root);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Key {
    const Manager* mgr;
    std::uint64_t generation;
    std::uint64_t epoch;
    NodeRef root;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t seed = std::hash<const void*>{}(k.mgr);
      hash_combine(seed, k.generation);
      hash_combine(seed, k.epoch);
      hash_combine(seed, k.root);
      return seed;
    }
  };

  std::size_t max_entries_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<std::uint8_t>>,
                     KeyHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Stateful per-connection BDD compression: because NodeRefs are stable
/// dense IDs (the arena + epoch-gc rearchitecture), a sender can ship each
/// reachable node ONCE per (src, dst) stream and afterwards reference it
/// by a small stream-local id. Re-sent or structurally shared predicates
/// cost 5 bytes instead of a full re-serialized blob — the node-ID delta
/// form carried by shard frames and dist_proto.
///
/// Wire form of one predicate:
///   u8 flags (bit0: reset — receiver must clear its table first)
///   u32 n_new, then n_new * (u32 var, u32 low_id, u32 high_id)
///   u32 root_id
/// Stream ids: 0 = FALSE, 1 = TRUE, then 2.. in shipping order. New nodes
/// arrive children-first, so every id in the payload is already resolved.
///
/// The encoder invalidates itself (emitting a reset) when the manager's
/// generation or epoch moves, and periodically when the shipped-node table
/// exceeds kMaxShippedNodes — which also bounds the decoder table, since
/// the decoder clears on the same reset flag. Encoder and decoder must see
/// the same predicate stream in FIFO order (one encoder per (src, dst)
/// connection, exactly like a TCP byte stream).
class NodeChannelEncoder {
 public:
  explicit NodeChannelEncoder(const Manager& mgr) : mgr_(&mgr) {}

  /// Appends the delta encoding of `root` to `out`.
  void encode(NodeRef root, std::vector<std::uint8_t>& out);

  [[nodiscard]] std::uint64_t roots_encoded() const { return roots_; }
  [[nodiscard]] std::uint64_t nodes_shipped() const { return shipped_total_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }

  static constexpr std::size_t kMaxShippedNodes = 1 << 16;

 private:
  const Manager* mgr_;
  std::uint64_t generation_ = ~0ull;  // force a reset on first use
  std::uint64_t epoch_ = ~0ull;
  std::unordered_map<NodeRef, std::uint32_t> shipped_;  // ref -> stream id
  std::uint32_t next_id_ = 2;
  std::uint64_t roots_ = 0;
  std::uint64_t shipped_total_ = 0;
  std::uint64_t resets_ = 0;
};

/// Receiving half of the node-ID delta stream; rebuilds shipped nodes in
/// the local manager. Throws Error on malformed input. The stream-id table
/// holds refs the peer may reference again, so it must be enumerated as gc
/// roots on the receiving manager (collect_refs).
class NodeChannelDecoder {
 public:
  explicit NodeChannelDecoder(Manager& mgr) : mgr_(&mgr) {}

  /// Consumes one delta-encoded predicate from `bytes` at `pos`.
  [[nodiscard]] NodeRef decode(std::span<const std::uint8_t> bytes,
                               std::size_t& pos);

  /// GC roots: every ref the peer may still reference by stream id.
  void collect_refs(std::vector<NodeRef>& out) const;

  [[nodiscard]] std::size_t table_size() const { return ids_.size(); }

 private:
  Manager* mgr_;
  std::vector<NodeRef> ids_;  // stream id - 2 -> local ref
};

}  // namespace tulkun::bdd
