// Wire (de)serialization of BDDs.
//
// DVM UPDATE messages carry predicates between devices; the paper adapted
// JDD + Protobuf for this. We use a compact custom format: a topologically
// ordered node list with local indices, so the receiver can rebuild the
// predicate in its own manager with hash-consing intact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/manager.hpp"

namespace tulkun::bdd {

/// Serializes the BDD rooted at `root` into a self-contained byte buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Manager& mgr,
                                                  NodeRef root);

/// Rebuilds a serialized BDD inside `mgr`. Throws Error on malformed input.
/// The manager may differ from the serializing one as long as it has at
/// least as many variables.
[[nodiscard]] NodeRef deserialize(Manager& mgr,
                                  std::span<const std::uint8_t> bytes);

/// Size in bytes that serialize() would produce (for message accounting).
[[nodiscard]] std::size_t serialized_size(const Manager& mgr, NodeRef root);

}  // namespace tulkun::bdd
