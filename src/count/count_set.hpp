// Per-universe counting (§4.2, Algorithm 1, Equations 1-2).
//
// A CountVec is the tuple of copy-counts for one universe, one entry per
// counting task (= per regex atom of a compound invariant; arity 1 for
// simple invariants). A CountSet is the set of distinct CountVecs across
// universes:
//   ⊗ (cross_sum) combines ALL-type branches: every universe pair sums;
//   ⊕ (unite)     combines ANY-type branches: either universe may occur.
//
// Proposition 1 (minimal counting information) prunes what a node must send
// upstream: min for (>= / >), max for (<= / <), and the two smallest
// elements for (==).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/ast.hpp"

namespace tulkun::count {

using CountVec = std::vector<std::uint32_t>;

/// A canonical (sorted, deduplicated) set of per-universe count tuples.
class CountSet {
 public:
  CountSet() = default;

  /// The set {v}.
  static CountSet singleton(CountVec v);
  /// The set {(0,...,0)} of the given arity.
  static CountSet zeros(std::size_t arity);
  /// The destination-node initial value {(..,1 at task_index,..)}.
  static CountSet unit(std::size_t arity, std::size_t task_index);

  [[nodiscard]] bool empty() const { return elems_.empty(); }
  [[nodiscard]] std::size_t size() const { return elems_.size(); }
  [[nodiscard]] const std::vector<CountVec>& elems() const { return elems_; }
  [[nodiscard]] std::size_t arity() const {
    return elems_.empty() ? 0 : elems_.front().size();
  }

  void insert(CountVec v);

  /// ⊗: { a + b | a in this, b in o } (element-wise sums).
  [[nodiscard]] CountSet cross_sum(const CountSet& o) const;

  /// ⊕: this ∪ o.
  [[nodiscard]] CountSet unite(const CountSet& o) const;

  /// Proposition 1: the minimal subset that upstream nodes need, for a
  /// single-atom invariant with the given comparator. Multi-atom sets are
  /// returned unchanged (the proposition is proved per comparator on
  /// scalar counts).
  [[nodiscard]] CountSet minimized(const spec::CountExpr& cmp) const;

  /// Keeps at most `max_elems` tuples (smallest first) — ablation only;
  /// flags lossy truncation.
  void truncate(std::size_t max_elems);
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// True iff EVERY universe tuple satisfies `b` (atoms indexed by
  /// position in `atoms`). Requires non-empty set.
  [[nodiscard]] bool all_satisfy(
      const spec::Behavior& b,
      const std::vector<const spec::Behavior*>& atoms) const;

  /// Tuples violating `b` (for error reporting).
  [[nodiscard]] std::vector<CountVec> violations(
      const spec::Behavior& b,
      const std::vector<const spec::Behavior*>& atoms) const;

  [[nodiscard]] std::string to_string() const;

  /// Hash consistent with operator== (covers elements AND the truncation
  /// flag). Usable as an unordered_map key; the canonical sorted-unique
  /// representation makes equal sets hash equal.
  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const CountSet&, const CountSet&) = default;

 private:
  void normalize();

  std::vector<CountVec> elems_;  // sorted lexicographically, unique
  bool truncated_ = false;
};

/// Hash functor for using CountSet as an unordered container key.
struct CountSetHash {
  std::size_t operator()(const CountSet& s) const noexcept {
    return s.hash();
  }
};

/// Evaluates a behavior tree on one universe tuple.
[[nodiscard]] bool evaluate_behavior(
    const spec::Behavior& b, const std::vector<const spec::Behavior*>& atoms,
    const CountVec& tuple);

}  // namespace tulkun::count
