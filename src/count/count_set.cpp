#include "count/count_set.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tulkun::count {

CountSet CountSet::singleton(CountVec v) {
  CountSet s;
  s.elems_.push_back(std::move(v));
  return s;
}

CountSet CountSet::zeros(std::size_t arity) {
  return singleton(CountVec(arity, 0));
}

CountSet CountSet::unit(std::size_t arity, std::size_t task_index) {
  TULKUN_ASSERT(task_index < arity);
  CountVec v(arity, 0);
  v[task_index] = 1;
  return singleton(std::move(v));
}

void CountSet::insert(CountVec v) {
  elems_.push_back(std::move(v));
  normalize();
}

void CountSet::normalize() {
  std::sort(elems_.begin(), elems_.end());
  elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
}

CountSet CountSet::cross_sum(const CountSet& o) const {
  if (elems_.empty()) return o;
  if (o.elems_.empty()) return *this;
  CountSet out;
  out.truncated_ = truncated_ || o.truncated_;
  out.elems_.reserve(elems_.size() * o.elems_.size());
  for (const auto& a : elems_) {
    for (const auto& b : o.elems_) {
      TULKUN_ASSERT(a.size() == b.size());
      CountVec sum(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
      out.elems_.push_back(std::move(sum));
    }
  }
  out.normalize();
  return out;
}

CountSet CountSet::unite(const CountSet& o) const {
  CountSet out;
  out.truncated_ = truncated_ || o.truncated_;
  out.elems_ = elems_;
  out.elems_.insert(out.elems_.end(), o.elems_.begin(), o.elems_.end());
  out.normalize();
  return out;
}

CountSet CountSet::minimized(const spec::CountExpr& cmp) const {
  if (arity() != 1 || elems_.size() <= 1) return *this;
  CountSet out;
  out.truncated_ = truncated_;
  switch (cmp.cmp) {
    case spec::CountExpr::Cmp::Ge:
    case spec::CountExpr::Cmp::Gt:
      // Upstream only needs the worst case from below: the minimum.
      out.elems_.push_back(elems_.front());
      break;
    case spec::CountExpr::Cmp::Le:
    case spec::CountExpr::Cmp::Lt:
      out.elems_.push_back(elems_.back());
      break;
    case spec::CountExpr::Cmp::Eq:
      // Two distinct counts already prove a violation at the source; keep
      // the two smallest (min(|c|,2) elements, Prop. 1).
      out.elems_.push_back(elems_[0]);
      out.elems_.push_back(elems_[1]);
      break;
  }
  return out;
}

std::size_t CountSet::hash() const {
  // FNV-1a over the flattened tuples, with per-tuple length separators so
  // {(1,2)} and {(1),(2)} hash differently; fold in truncated_ last since
  // the defaulted operator== distinguishes it.
  std::size_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& v : elems_) {
    mix(v.size() + 0x9e3779b97f4a7c15ULL);
    for (const std::uint32_t c : v) mix(c);
  }
  mix(truncated_ ? 2 : 1);
  return h;
}

void CountSet::truncate(std::size_t max_elems) {
  if (elems_.size() > max_elems) {
    elems_.resize(max_elems);
    truncated_ = true;
  }
}

bool evaluate_behavior(const spec::Behavior& b,
                       const std::vector<const spec::Behavior*>& atoms,
                       const CountVec& tuple) {
  switch (b.kind) {
    case spec::BehaviorKind::Atom: {
      const auto it = std::find(atoms.begin(), atoms.end(), &b);
      TULKUN_ASSERT(it != atoms.end());
      const auto idx = static_cast<std::size_t>(it - atoms.begin());
      TULKUN_ASSERT(idx < tuple.size());
      // Subset counts as (exist >= 1); the rest of its semantics is the
      // local only-check. Equal never reaches count evaluation.
      TULKUN_ASSERT(b.op != spec::MatchOpKind::Equal);
      const spec::CountExpr ce =
          b.op == spec::MatchOpKind::Exist
              ? b.count
              : spec::CountExpr{spec::CountExpr::Cmp::Ge, 1};
      return ce.satisfied(tuple[idx]);
    }
    case spec::BehaviorKind::Not:
      return !evaluate_behavior(b.children.front(), atoms, tuple);
    case spec::BehaviorKind::And:
      return std::all_of(b.children.begin(), b.children.end(),
                         [&](const spec::Behavior& c) {
                           return evaluate_behavior(c, atoms, tuple);
                         });
    case spec::BehaviorKind::Or:
      return std::any_of(b.children.begin(), b.children.end(),
                         [&](const spec::Behavior& c) {
                           return evaluate_behavior(c, atoms, tuple);
                         });
  }
  return false;
}

bool CountSet::all_satisfy(
    const spec::Behavior& b,
    const std::vector<const spec::Behavior*>& atoms) const {
  TULKUN_ASSERT(!elems_.empty());
  return std::all_of(elems_.begin(), elems_.end(), [&](const CountVec& v) {
    return evaluate_behavior(b, atoms, v);
  });
}

std::vector<CountVec> CountSet::violations(
    const spec::Behavior& b,
    const std::vector<const spec::Behavior*>& atoms) const {
  std::vector<CountVec> out;
  for (const auto& v : elems_) {
    if (!evaluate_behavior(b, atoms, v)) out.push_back(v);
  }
  return out;
}

std::string CountSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (i > 0) out += ",";
    if (elems_[i].size() == 1) {
      out += std::to_string(elems_[i][0]);
    } else {
      out += "(";
      for (std::size_t j = 0; j < elems_[i].size(); ++j) {
        if (j > 0) out += ",";
        out += std::to_string(elems_[i][j]);
      }
      out += ")";
    }
  }
  out += "}";
  if (truncated_) out += "~";
  return out;
}

}  // namespace tulkun::count
