#include "topo/parser.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace tulkun::topo {

double parse_latency(std::string_view text) {
  double scale = 1.0;
  std::string_view num = text;
  const auto ends_with = [&](std::string_view suffix) {
    return text.size() > suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
  };
  if (ends_with("ns")) {
    scale = 1e-9;
    num = text.substr(0, text.size() - 2);
  } else if (ends_with("us")) {
    scale = 1e-6;
    num = text.substr(0, text.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e-3;
    num = text.substr(0, text.size() - 2);
  } else if (ends_with("s")) {
    scale = 1.0;
    num = text.substr(0, text.size() - 1);
  }
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(num.data(), num.data() + num.size(), value);
  if (ec != std::errc{} || ptr != num.data() + num.size() || value < 0.0) {
    throw TopologyError("malformed latency: '" + std::string(text) + "'");
  }
  return value * scale;
}

Topology parse_topology(std::istream& in) {
  Topology t;
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) -> void {
    throw TopologyError("line " + std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;

    const std::string& kind = tokens[0];
    if (kind == "device") {
      if (tokens.size() != 2) fail("expected: device <name>");
      t.add_device(tokens[1]);
    } else if (kind == "link") {
      if (tokens.size() != 4) fail("expected: link <a> <b> <latency>");
      const auto a = t.find_device(tokens[1]);
      const auto b = t.find_device(tokens[2]);
      if (!a || !b) fail("link references unknown device");
      t.add_link(*a, *b, parse_latency(tokens[3]));
    } else if (kind == "prefix") {
      if (tokens.size() != 3) fail("expected: prefix <device> <cidr>");
      const auto d = t.find_device(tokens[1]);
      if (!d) fail("prefix references unknown device");
      t.attach_prefix(*d, packet::Ipv4Prefix::parse(tokens[2]));
    } else {
      fail("unknown directive: " + kind);
    }
  }
  return t;
}

Topology parse_topology(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_topology(in);
}

std::string to_text(const Topology& t) {
  std::ostringstream out;
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    out << "device " << t.name(d) << "\n";
  }
  for (DeviceId d = 0; d < t.device_count(); ++d) {
    for (const auto& a : t.neighbors(d)) {
      if (a.neighbor > d) {  // emit each bidirectional link once
        out << "link " << t.name(d) << " " << t.name(a.neighbor) << " "
            << a.latency_s * 1e6 << "us\n";
      }
    }
  }
  for (const auto& [d, p] : t.all_prefix_attachments()) {
    out << "prefix " << t.name(d) << " " << p.to_string() << "\n";
  }
  return out.str();
}

}  // namespace tulkun::topo
