#include "topo/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

namespace tulkun::topo {

DeviceId Topology::add_device(const std::string& name) {
  if (name.empty()) {
    throw TopologyError("device name must be non-empty");
  }
  if (by_name_.contains(name)) {
    throw TopologyError("duplicate device name: " + name);
  }
  const auto id = static_cast<DeviceId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  adj_.emplace_back();
  prefixes_.emplace_back();
  return id;
}

void Topology::add_link(DeviceId a, DeviceId b, double latency_s) {
  TULKUN_ASSERT(a < names_.size() && b < names_.size());
  if (a == b) {
    throw TopologyError("self-loop link on device " + names_[a]);
  }
  if (has_link(a, b)) {
    throw TopologyError("duplicate link " + names_[a] + "-" + names_[b]);
  }
  if (latency_s < 0.0) {
    throw TopologyError("negative link latency");
  }
  adj_[a].push_back(Adjacency{b, latency_s});
  adj_[b].push_back(Adjacency{a, latency_s});
}

void Topology::attach_prefix(DeviceId dev, const packet::Ipv4Prefix& prefix) {
  TULKUN_ASSERT(dev < names_.size());
  prefixes_[dev].push_back(prefix);
}

std::size_t Topology::link_count() const {
  std::size_t total = 0;
  for (const auto& a : adj_) total += a.size();
  return total / 2;
}

DeviceId Topology::device(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw TopologyError("unknown device: " + name);
  }
  return it->second;
}

std::optional<DeviceId> Topology::find_device(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool Topology::has_link(DeviceId a, DeviceId b) const {
  TULKUN_ASSERT(a < adj_.size());
  return std::any_of(adj_[a].begin(), adj_[a].end(),
                     [b](const Adjacency& x) { return x.neighbor == b; });
}

double Topology::link_latency(DeviceId a, DeviceId b) const {
  TULKUN_ASSERT(a < adj_.size());
  for (const auto& x : adj_[a]) {
    if (x.neighbor == b) return x.latency_s;
  }
  throw TopologyError("no link " + names_[a] + "-" + names_[b]);
}

std::vector<std::pair<DeviceId, packet::Ipv4Prefix>>
Topology::all_prefix_attachments() const {
  std::vector<std::pair<DeviceId, packet::Ipv4Prefix>> out;
  for (DeviceId d = 0; d < prefixes_.size(); ++d) {
    for (const auto& p : prefixes_[d]) out.emplace_back(d, p);
  }
  return out;
}

std::vector<DeviceId> Topology::devices_covering(
    const packet::Ipv4Prefix& prefix) const {
  std::vector<DeviceId> out;
  for (DeviceId d = 0; d < prefixes_.size(); ++d) {
    for (const auto& p : prefixes_[d]) {
      if (p.covers(prefix) || prefix.covers(p)) {
        out.push_back(d);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> Topology::hop_distances_to(
    DeviceId to, const std::unordered_set<LinkId>& failed) const {
  TULKUN_ASSERT(to < adj_.size());
  std::vector<std::uint32_t> dist(names_.size(), kUnreachable);
  std::deque<DeviceId> queue;
  dist[to] = 0;
  queue.push_back(to);
  while (!queue.empty()) {
    const DeviceId cur = queue.front();
    queue.pop_front();
    for (const auto& a : adj_[cur]) {
      // Walking backwards from `to`: the forwarding link is neighbor->cur.
      if (failed.contains(LinkId{a.neighbor, cur}) ||
          failed.contains(LinkId{cur, a.neighbor})) {
        continue;
      }
      if (dist[a.neighbor] == kUnreachable) {
        dist[a.neighbor] = dist[cur] + 1;
        queue.push_back(a.neighbor);
      }
    }
  }
  return dist;
}

std::vector<double> Topology::latency_distances_to(DeviceId to) const {
  TULKUN_ASSERT(to < adj_.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(names_.size(), kInf);
  using Entry = std::pair<double, DeviceId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[to] = 0.0;
  pq.emplace(0.0, to);
  while (!pq.empty()) {
    const auto [d, cur] = pq.top();
    pq.pop();
    if (d > dist[cur]) continue;
    for (const auto& a : adj_[cur]) {
      const double nd = d + a.latency_s;
      if (nd < dist[a.neighbor]) {
        dist[a.neighbor] = nd;
        pq.emplace(nd, a.neighbor);
      }
    }
  }
  return dist;
}

std::vector<DeviceId> Topology::all_devices() const {
  std::vector<DeviceId> out(names_.size());
  for (DeviceId d = 0; d < names_.size(); ++d) out[d] = d;
  return out;
}

}  // namespace tulkun::topo
