// Plain-text topology format, for examples and user-provided datasets:
//
//   # comment
//   device S
//   device A
//   link S A 5ms        # latency suffix: ns / us / ms / s
//   prefix S 10.0.0.0/24
#pragma once

#include <istream>
#include <string_view>

#include "topo/topology.hpp"

namespace tulkun::topo {

/// Parses the text format above. Throws TopologyError with a line number on
/// malformed input.
[[nodiscard]] Topology parse_topology(std::istream& in);

/// Convenience overload for in-memory text.
[[nodiscard]] Topology parse_topology(std::string_view text);

/// Parses a duration like "5ms", "10us", "1s", "250ns" into seconds.
[[nodiscard]] double parse_latency(std::string_view text);

/// Serializes a topology back to the text format (round-trips with parse).
[[nodiscard]] std::string to_text(const Topology& t);

}  // namespace tulkun::topo
