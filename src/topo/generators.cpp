#include "topo/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"

namespace tulkun::topo {

namespace {

packet::Ipv4Prefix tor_prefix(std::uint32_t a, std::uint32_t b) {
  // 10.a.b.0/24
  const std::uint32_t addr =
      (10U << 24) | ((a & 0xff) << 16) | ((b & 0xff) << 8);
  return packet::Ipv4Prefix(addr, 24);
}

}  // namespace

Topology fat_tree(std::uint32_t k) {
  if (k < 2 || k % 2 != 0) {
    throw TopologyError("fat-tree arity must be even and >= 2");
  }
  Topology t;
  const std::uint32_t half = k / 2;

  std::vector<std::vector<DeviceId>> core(half);  // core groups
  for (std::uint32_t g = 0; g < half; ++g) {
    for (std::uint32_t i = 0; i < half; ++i) {
      core[g].push_back(
          t.add_device("core" + std::to_string(g) + "_" + std::to_string(i)));
    }
  }

  for (std::uint32_t p = 0; p < k; ++p) {
    std::vector<DeviceId> aggs;
    std::vector<DeviceId> edges;
    for (std::uint32_t i = 0; i < half; ++i) {
      aggs.push_back(
          t.add_device("p" + std::to_string(p) + "_agg" + std::to_string(i)));
    }
    for (std::uint32_t i = 0; i < half; ++i) {
      const DeviceId e =
          t.add_device("p" + std::to_string(p) + "_tor" + std::to_string(i));
      edges.push_back(e);
      t.attach_prefix(e, tor_prefix(p, i));
    }
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t e = 0; e < half; ++e) {
        t.add_link(aggs[a], edges[e], kDcLinkLatency);
      }
      // Aggregation switch a of every pod connects to core group a.
      for (const DeviceId c : core[a]) {
        t.add_link(aggs[a], c, kDcLinkLatency);
      }
    }
  }
  return t;
}

Topology clos3(std::uint32_t pods, std::uint32_t spines_per_pod,
               std::uint32_t leaves_per_pod, std::uint32_t cores) {
  if (pods == 0 || spines_per_pod == 0 || leaves_per_pod == 0 || cores == 0) {
    throw TopologyError("clos3 dimensions must be positive");
  }
  Topology t;
  std::vector<DeviceId> core_ids;
  for (std::uint32_t c = 0; c < cores; ++c) {
    core_ids.push_back(t.add_device("core" + std::to_string(c)));
  }
  for (std::uint32_t p = 0; p < pods; ++p) {
    std::vector<DeviceId> spines;
    for (std::uint32_t s = 0; s < spines_per_pod; ++s) {
      const DeviceId sp =
          t.add_device("p" + std::to_string(p) + "_sp" + std::to_string(s));
      spines.push_back(sp);
      // Stripe pod-spines over cores so each core has pod diversity.
      for (std::uint32_t c = s; c < cores; c += spines_per_pod) {
        t.add_link(sp, core_ids[c], kDcLinkLatency);
      }
    }
    for (std::uint32_t l = 0; l < leaves_per_pod; ++l) {
      const DeviceId leaf =
          t.add_device("p" + std::to_string(p) + "_tor" + std::to_string(l));
      t.attach_prefix(leaf, tor_prefix(p, l));
      for (const DeviceId sp : spines) {
        t.add_link(leaf, sp, kDcLinkLatency);
      }
    }
  }
  return t;
}

Topology synthetic_wan(const std::string& name_prefix, std::uint32_t n,
                       std::uint32_t target_links, std::uint64_t seed,
                       double max_latency,
                       std::uint32_t prefixes_per_device) {
  if (n < 2) {
    throw TopologyError("synthetic WAN needs at least 2 devices");
  }
  if (n > 255 || prefixes_per_device > 255) {
    throw TopologyError("synthetic WAN prefix scheme needs n, P <= 255");
  }
  const std::uint32_t min_links = n - 1;
  const std::uint32_t max_links = n * (n - 1) / 2;
  const std::uint32_t links = std::clamp(target_links, min_links, max_links);

  Rng rng(seed);
  Topology t;
  std::vector<std::pair<double, double>> pos;
  pos.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.add_device(name_prefix + std::to_string(i));
    pos.emplace_back(rng.real(), rng.real());
    // Device i announces 10.i.j.0/24 for j in [0, prefixes_per_device).
    for (std::uint32_t j = 0; j < prefixes_per_device; ++j) {
      t.attach_prefix(
          i, packet::Ipv4Prefix((10U << 24) | (i << 16) | (j << 8), 24));
    }
  }

  const auto dist = [&](std::uint32_t a, std::uint32_t b) {
    const double dx = pos[a].first - pos[b].first;
    const double dy = pos[a].second - pos[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto latency = [&](std::uint32_t a, std::uint32_t b) {
    // Scale by the unit-square diagonal; floor at 100us so no WAN link is
    // effectively free.
    return std::max(1e-4, max_latency * dist(a, b) / std::sqrt(2.0));
  };

  // Prim's MST for guaranteed connectivity over realistic (short) edges.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::uint32_t> parent(n, 0);
  in_tree[0] = true;
  for (std::uint32_t v = 1; v < n; ++v) {
    best[v] = dist(0, v);
  }
  for (std::uint32_t added = 1; added < n; ++added) {
    std::uint32_t pick = 0;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_d) {
        pick = v;
        pick_d = best[v];
      }
    }
    in_tree[pick] = true;
    t.add_link(parent[pick], pick, latency(parent[pick], pick));
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_tree[v] && dist(pick, v) < best[v]) {
        best[v] = dist(pick, v);
        parent[v] = pick;
      }
    }
  }

  // Add the shortest remaining candidate edges until the target link count.
  struct Cand {
    double d;
    std::uint32_t a, b;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (!t.has_link(a, b)) cands.push_back(Cand{dist(a, b), a, b});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.d < y.d; });
  std::size_t next = 0;
  while (t.link_count() < links && next < cands.size()) {
    const Cand& c = cands[next++];
    t.add_link(c.a, c.b, latency(c.a, c.b));
  }
  return t;
}

Topology figure2_network() {
  Topology t;
  const DeviceId s = t.add_device("S");
  const DeviceId a = t.add_device("A");
  const DeviceId b = t.add_device("B");
  const DeviceId w = t.add_device("W");
  const DeviceId d = t.add_device("D");
  const DeviceId c = t.add_device("C");
  const double lat = 1e-3;
  t.add_link(s, a, lat);
  t.add_link(a, b, lat);
  t.add_link(a, w, lat);
  t.add_link(b, w, lat);
  t.add_link(b, d, lat);
  t.add_link(w, d, lat);
  t.add_link(b, c, lat);
  t.attach_prefix(d, packet::Ipv4Prefix::parse("10.0.0.0/23"));
  t.attach_prefix(c, packet::Ipv4Prefix::parse("10.0.2.0/24"));
  return t;
}

}  // namespace tulkun::topo
