// Network topology: devices, bidirectional links with propagation latency,
// and external prefix attachments (the paper's (device, IP_prefix) mapping
// for devices with external ports).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/error.hpp"
#include "core/ids.hpp"
#include "packet/fields.hpp"

namespace tulkun::topo {

/// One directed adjacency entry.
struct Adjacency {
  DeviceId neighbor = kNoDevice;
  double latency_s = 0.0;  // propagation latency of the link
};

/// A network topology. Links are stored as directed pairs; add_link()
/// inserts both directions with the same latency (all paper topologies are
/// symmetric).
class Topology {
 public:
  /// Adds a device; name must be unique and non-empty. Returns its id.
  DeviceId add_device(const std::string& name);

  /// Adds a bidirectional link with the given propagation latency.
  /// Duplicate links and self-loops are rejected.
  void add_link(DeviceId a, DeviceId b, double latency_s);

  /// Attaches an externally reachable prefix to a device (ToR/border port).
  void attach_prefix(DeviceId dev, const packet::Ipv4Prefix& prefix);

  [[nodiscard]] std::size_t device_count() const { return names_.size(); }
  [[nodiscard]] std::size_t link_count() const;  // bidirectional link pairs

  [[nodiscard]] const std::string& name(DeviceId d) const {
    TULKUN_ASSERT(d < names_.size());
    return names_[d];
  }

  /// Looks up a device by name; throws TopologyError if absent.
  [[nodiscard]] DeviceId device(const std::string& name) const;

  /// Looks up a device by name; nullopt if absent.
  [[nodiscard]] std::optional<DeviceId> find_device(
      const std::string& name) const;

  [[nodiscard]] const std::vector<Adjacency>& neighbors(DeviceId d) const {
    TULKUN_ASSERT(d < adj_.size());
    return adj_[d];
  }

  [[nodiscard]] bool has_link(DeviceId a, DeviceId b) const;

  /// Latency of link (a,b); throws TopologyError if absent.
  [[nodiscard]] double link_latency(DeviceId a, DeviceId b) const;

  [[nodiscard]] const std::vector<packet::Ipv4Prefix>& prefixes(
      DeviceId d) const {
    TULKUN_ASSERT(d < prefixes_.size());
    return prefixes_[d];
  }

  /// All (device, prefix) attachments.
  [[nodiscard]] std::vector<std::pair<DeviceId, packet::Ipv4Prefix>>
  all_prefix_attachments() const;

  /// Devices owning a prefix covering `prefix` (used by spec consistency
  /// checks: which devices can be the destination of this packet space).
  [[nodiscard]] std::vector<DeviceId> devices_covering(
      const packet::Ipv4Prefix& prefix) const;

  /// Hop-count shortest distance from every device to `to`
  /// (kUnreachable when disconnected). `failed` links are excluded.
  static constexpr std::uint32_t kUnreachable = ~0U;
  [[nodiscard]] std::vector<std::uint32_t> hop_distances_to(
      DeviceId to, const std::unordered_set<LinkId>& failed = {}) const;

  /// Latency-weighted shortest distance from every device to `to`.
  [[nodiscard]] std::vector<double> latency_distances_to(DeviceId to) const;

  /// All device ids [0, device_count).
  [[nodiscard]] std::vector<DeviceId> all_devices() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, DeviceId> by_name_;
  std::vector<std::vector<Adjacency>> adj_;
  std::vector<std::vector<packet::Ipv4Prefix>> prefixes_;
};

}  // namespace tulkun::topo
