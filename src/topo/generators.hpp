// Topology generators: data-center fabrics (fat-tree, 3-stage Clos) and
// seeded synthetic WANs shaped like the paper's datasets.
#pragma once

#include <cstdint>
#include <string>

#include "topo/topology.hpp"

namespace tulkun::topo {

/// Latency assigned to every DC link (the paper uses 10us for LAN/DC).
inline constexpr double kDcLinkLatency = 10e-6;

/// k-ary fat-tree [Al-Fares et al., SIGCOMM'08]: (k/2)^2 core switches,
/// k pods of k/2 aggregation + k/2 edge switches. Each edge (ToR) switch
/// gets an external /24 prefix 10.<pod>.<edge>.0/24.
/// Requires k even, k >= 2.
[[nodiscard]] Topology fat_tree(std::uint32_t k);

/// 3-stage Clos datacenter (the paper's NGDC is "a real, Clos-based DC"):
/// `pods` pods, each with `leaves_per_pod` ToRs fully meshed to
/// `spines_per_pod` pod-spines; pod-spines connect to `cores` core switches.
/// Each ToR gets an external /24 prefix.
[[nodiscard]] Topology clos3(std::uint32_t pods, std::uint32_t spines_per_pod,
                             std::uint32_t leaves_per_pod,
                             std::uint32_t cores);

/// Seeded synthetic WAN: `n` devices placed uniformly in a unit square,
/// connected by a Euclidean minimum spanning tree plus the shortest
/// remaining candidate edges until `target_links` links exist. Link latency
/// is proportional to distance (max_latency at the square diagonal).
/// Every device announces `prefixes_per_device` external /24s (WAN routers
/// carry many prefixes; this is the dataset rule-count knob).
/// Deterministic in `seed`.
[[nodiscard]] Topology synthetic_wan(const std::string& name_prefix,
                                     std::uint32_t n,
                                     std::uint32_t target_links,
                                     std::uint64_t seed,
                                     double max_latency = 0.040,
                                     std::uint32_t prefixes_per_device = 1);

/// The five-switch example network of the paper's Figure 2a:
/// S-A, A-B, A-W, B-W, B-D, W-D, plus C attached to B (used by the §9.1
/// multicast/all-shortest-path demos). D owns 10.0.0.0/23, B owns
/// 10.0.1.0/24 externally in the paper's example; prefix attachment here
/// follows the figure: D is the destination for 10.0.0.0/23.
[[nodiscard]] Topology figure2_network();

}  // namespace tulkun::topo
