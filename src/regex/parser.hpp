// Regular expressions over the set of network devices (§3, §4.1).
//
// Grammar (whitespace-insensitive; device names are identifiers):
//
//   expr    := concat ('|' concat)*
//   concat  := postfix+
//   postfix := atom ('*' | '+' | '?')*
//   atom    := IDENT | '.' | '(' expr ')' | '[' '^'? IDENT+ ']'
//
// '.' matches any device; '[^X Y]' matches any device except X and Y.
// Example from the paper: "S .* W .* D" (waypoint W between S and D).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace tulkun::regex {

/// A symbol is a device identifier (possibly a virtual device added by the
/// planner for compound invariants).
using Symbol = std::uint32_t;

/// A set of symbols, possibly complemented — the label of one regex atom
/// or NFA edge. Keeping labels symbolic avoids materializing the alphabet.
struct SymbolSet {
  bool negated = false;         // true: matches all symbols NOT in syms
  std::vector<Symbol> syms;     // sorted ascending

  [[nodiscard]] bool matches(Symbol s) const;

  static SymbolSet any() { return SymbolSet{true, {}}; }
  static SymbolSet single(Symbol s) { return SymbolSet{false, {s}}; }
  static SymbolSet of(std::vector<Symbol> ss);
  static SymbolSet none_of(std::vector<Symbol> ss);

  friend bool operator==(const SymbolSet&, const SymbolSet&) = default;
};

enum class AstKind : std::uint8_t {
  Symbols,   ///< one SymbolSet occurrence
  Epsilon,   ///< the empty string (used by '?' desugaring)
  Concat,
  Union,
  Star,
  Plus,
  Optional,
};

/// Regex abstract syntax tree. Plain recursive value type.
struct Ast {
  AstKind kind = AstKind::Epsilon;
  SymbolSet symbols;           // valid when kind == Symbols
  std::vector<Ast> children;   // operands for the composite kinds

  static Ast symbols_node(SymbolSet s);
  static Ast epsilon();
  static Ast concat(std::vector<Ast> parts);
  static Ast alternation(std::vector<Ast> parts);
  static Ast star(Ast inner);
  static Ast plus(Ast inner);
  static Ast optional(Ast inner);
};

/// Maps a device identifier in regex text to its Symbol.
/// Throws RegexError (or any Error) for unknown names.
using NameResolver = std::function<Symbol(std::string_view)>;

/// Parses regex text. Throws RegexError on syntax errors.
[[nodiscard]] Ast parse(std::string_view text, const NameResolver& resolve);

}  // namespace tulkun::regex
