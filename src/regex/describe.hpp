// Human-readable dumps of automata, for debugging and the examples.
#pragma once

#include <functional>
#include <string>

#include "regex/dfa.hpp"

namespace tulkun::regex {

/// Names a symbol for output (topology device name or raw number).
using SymbolNamer = std::function<std::string(Symbol)>;

/// Multi-line state/transition listing.
[[nodiscard]] std::string describe(const Dfa& dfa, const SymbolNamer& namer);

/// Graphviz dot output.
[[nodiscard]] std::string to_dot(const Dfa& dfa, const SymbolNamer& namer);

}  // namespace tulkun::regex
