// DFA over the device alphabet, built by subset construction.
//
// Transitions are stored as an explicit (symbol -> state) map plus a
// default target for all other symbols, so the alphabet never needs to be
// materialized; kDead marks a missing transition.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "regex/nfa.hpp"

namespace tulkun::regex {

class Dfa {
 public:
  /// Pseudo-state meaning "reject everything from here".
  static constexpr std::uint32_t kDead = ~0U;

  struct State {
    std::unordered_map<Symbol, std::uint32_t> trans;
    std::uint32_t otherwise = kDead;  // target for symbols not in trans
    bool accepting = false;
  };

  /// Deterministic automaton of `nfa` (subset construction).
  [[nodiscard]] static Dfa determinize(const Nfa& nfa);

  /// Product automaton: accepts L(a) ∩ L(b) (intersect=true) or
  /// L(a) ∪ L(b) (intersect=false).
  [[nodiscard]] static Dfa product(const Dfa& a, const Dfa& b, bool intersect);

  /// Complement (accepts exactly the rejected strings).
  [[nodiscard]] Dfa complement() const;

  /// Moore-refinement minimization; also drops unreachable and dead states.
  [[nodiscard]] Dfa minimize() const;

  /// One transition step; `from` may be kDead (stays dead).
  [[nodiscard]] std::uint32_t next(std::uint32_t from, Symbol s) const;

  [[nodiscard]] bool accepts(std::span<const Symbol> word) const;

  /// True iff some accepting state is reachable from `state`
  /// (kDead -> false). Precomputed; O(1) per query.
  [[nodiscard]] bool can_accept(std::uint32_t state) const;

  /// Minimum number of further symbols needed to reach acceptance from
  /// `state` assuming any symbol is available; kInfinity if none.
  /// Used as an admissible pruning bound during path enumeration.
  static constexpr std::uint32_t kInfinity = ~0U;
  [[nodiscard]] std::uint32_t min_steps_to_accept(std::uint32_t state) const;

  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::size_t state_count() const { return states_.size(); }
  [[nodiscard]] const State& state(std::uint32_t i) const {
    TULKUN_ASSERT(i < states_.size());
    return states_[i];
  }
  [[nodiscard]] bool accepting(std::uint32_t i) const {
    return i != kDead && states_[i].accepting;
  }

 private:
  void compute_accept_reach();
  /// Adds an explicit non-accepting sink and points every kDead edge at it,
  /// making the automaton total (needed by complement/product).
  [[nodiscard]] Dfa totalized() const;

  std::vector<State> states_;
  std::uint32_t start_ = kDead;  // kDead: the empty automaton
  // min_steps_to_accept per state; computed lazily on first query.
  mutable std::vector<std::uint32_t> accept_dist_;
};

}  // namespace tulkun::regex
