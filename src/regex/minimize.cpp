// Automaton describing/dot-dump helpers (the minimization algorithm itself
// lives with the Dfa class in dfa.cpp).
#include <algorithm>
#include <sstream>
#include <vector>

#include "regex/describe.hpp"

namespace tulkun::regex {

namespace {

std::vector<std::pair<Symbol, std::uint32_t>> sorted_trans(
    const Dfa::State& st) {
  std::vector<std::pair<Symbol, std::uint32_t>> out(st.trans.begin(),
                                                    st.trans.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string target_name(std::uint32_t t) {
  return t == Dfa::kDead ? "DEAD" : "q" + std::to_string(t);
}

}  // namespace

std::string describe(const Dfa& dfa, const SymbolNamer& namer) {
  std::ostringstream out;
  out << "start: " << target_name(dfa.start()) << "\n";
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s) {
    const auto& st = dfa.state(s);
    out << "q" << s << (st.accepting ? " (accept)" : "") << ":\n";
    for (const auto& [sym, t] : sorted_trans(st)) {
      out << "  " << namer(sym) << " -> " << target_name(t) << "\n";
    }
    out << "  * -> " << target_name(st.otherwise) << "\n";
  }
  return out.str();
}

std::string to_dot(const Dfa& dfa, const SymbolNamer& namer) {
  std::ostringstream out;
  out << "digraph dfa {\n  rankdir=LR;\n";
  if (dfa.start() != Dfa::kDead) {
    out << "  __start [shape=point];\n  __start -> q" << dfa.start() << ";\n";
  }
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s) {
    const auto& st = dfa.state(s);
    out << "  q" << s << " [shape="
        << (st.accepting ? "doublecircle" : "circle") << "];\n";
    for (const auto& [sym, t] : sorted_trans(st)) {
      if (t == Dfa::kDead) continue;
      out << "  q" << s << " -> q" << t << " [label=\"" << namer(sym)
          << "\"];\n";
    }
    if (st.otherwise != Dfa::kDead) {
      out << "  q" << s << " -> q" << st.otherwise << " [label=\"*\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace tulkun::regex
