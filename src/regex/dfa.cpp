#include "regex/dfa.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "core/ids.hpp"

namespace tulkun::regex {

namespace {

using StateSet = std::vector<std::uint32_t>;  // sorted NFA state ids

void eps_close(const Nfa& nfa, StateSet& set) {
  std::deque<std::uint32_t> work(set.begin(), set.end());
  std::set<std::uint32_t> seen(set.begin(), set.end());
  while (!work.empty()) {
    const auto s = work.front();
    work.pop_front();
    for (const auto t : nfa.states[s].eps) {
      if (seen.insert(t).second) work.push_back(t);
    }
  }
  set.assign(seen.begin(), seen.end());
}

struct StateSetHash {
  std::size_t operator()(const StateSet& s) const noexcept {
    std::size_t seed = s.size();
    for (const auto v : s) hash_combine(seed, v);
    return seed;
  }
};

}  // namespace

Dfa Dfa::determinize(const Nfa& nfa) {
  Dfa dfa;
  std::unordered_map<StateSet, std::uint32_t, StateSetHash> index;
  std::deque<StateSet> work;

  const auto intern = [&](StateSet set) -> std::uint32_t {
    if (set.empty()) return kDead;
    const auto it = index.find(set);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(dfa.states_.size());
    dfa.states_.emplace_back();
    dfa.states_.back().accepting =
        std::binary_search(set.begin(), set.end(), nfa.accept);
    index.emplace(set, id);
    work.push_back(std::move(set));
    return id;
  };

  StateSet start{nfa.start};
  eps_close(nfa, start);
  dfa.start_ = intern(std::move(start));

  while (!work.empty()) {
    const StateSet set = std::move(work.front());
    work.pop_front();
    const std::uint32_t id = index.at(set);

    // Gather outgoing consuming edges of this subset.
    std::vector<const NfaEdge*> edges;
    for (const auto s : set) {
      for (const auto& e : nfa.states[s].edges) edges.push_back(&e);
    }

    // Explicit symbols: every symbol named by any edge label.
    std::set<Symbol> explicit_syms;
    for (const auto* e : edges) {
      explicit_syms.insert(e->on.syms.begin(), e->on.syms.end());
    }

    const auto target_for = [&](auto matches) -> std::uint32_t {
      StateSet t;
      for (const auto* e : edges) {
        if (matches(*e)) t.push_back(e->to);
      }
      std::sort(t.begin(), t.end());
      t.erase(std::unique(t.begin(), t.end()), t.end());
      eps_close(nfa, t);
      return intern(std::move(t));
    };

    // Any symbol not named anywhere matches exactly the negated labels.
    const std::uint32_t otherwise = target_for(
        [](const NfaEdge& e) { return e.on.negated; });

    // Collect transitions before writing: intern() may reallocate the
    // state vector, so no reference into it can be held across calls.
    std::unordered_map<Symbol, std::uint32_t> trans;
    for (const Symbol s : explicit_syms) {
      const std::uint32_t t = target_for(
          [s](const NfaEdge& e) { return e.on.matches(s); });
      if (t != otherwise) trans.emplace(s, t);
    }
    dfa.states_[id].otherwise = otherwise;
    dfa.states_[id].trans = std::move(trans);
  }
  return dfa;
}

std::uint32_t Dfa::next(std::uint32_t from, Symbol s) const {
  if (from == kDead) return kDead;
  TULKUN_ASSERT(from < states_.size());
  const State& st = states_[from];
  const auto it = st.trans.find(s);
  return it != st.trans.end() ? it->second : st.otherwise;
}

bool Dfa::accepts(std::span<const Symbol> word) const {
  std::uint32_t s = start_;
  if (s == kDead) return false;
  for (const Symbol sym : word) {
    s = next(s, sym);
    if (s == kDead) return false;
  }
  return accepting(s);
}

Dfa Dfa::totalized() const {
  Dfa out = *this;
  const auto sink = static_cast<std::uint32_t>(out.states_.size());
  bool used = false;
  for (auto& st : out.states_) {
    for (auto& [sym, t] : st.trans) {
      if (t == kDead) {
        t = sink;
        used = true;
      }
    }
    if (st.otherwise == kDead) {
      st.otherwise = sink;
      used = true;
    }
  }
  if (out.start_ == kDead) {
    out.start_ = sink;
    used = true;
  }
  if (used || out.states_.empty()) {
    State s;
    s.otherwise = sink;
    out.states_.push_back(std::move(s));
  }
  out.accept_dist_.clear();
  return out;
}

Dfa Dfa::complement() const {
  Dfa out = totalized();
  for (auto& st : out.states_) st.accepting = !st.accepting;
  return out.minimize();
}

Dfa Dfa::product(const Dfa& a_in, const Dfa& b_in, bool intersect) {
  const Dfa a = a_in.totalized();
  const Dfa b = b_in.totalized();

  Dfa out;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> index;
  std::deque<std::pair<std::uint32_t, std::uint32_t>> work;

  const auto intern = [&](std::uint32_t sa, std::uint32_t sb) {
    const auto key = std::make_pair(sa, sb);
    const auto it = index.find(key);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(out.states_.size());
    out.states_.emplace_back();
    out.states_.back().accepting =
        intersect ? (a.accepting(sa) && b.accepting(sb))
                  : (a.accepting(sa) || b.accepting(sb));
    index.emplace(key, id);
    work.push_back(key);
    return id;
  };

  out.start_ = intern(a.start(), b.start());
  while (!work.empty()) {
    const auto [sa, sb] = work.front();
    work.pop_front();
    const std::uint32_t id = index.at({sa, sb});

    std::set<Symbol> explicit_syms;
    for (const auto& [sym, t] : a.state(sa).trans) explicit_syms.insert(sym);
    for (const auto& [sym, t] : b.state(sb).trans) explicit_syms.insert(sym);

    const std::uint32_t otherwise =
        intern(a.state(sa).otherwise, b.state(sb).otherwise);
    // Note: writing to out.states_[id] only after all intern() calls, since
    // intern() may reallocate the state vector.
    std::unordered_map<Symbol, std::uint32_t> trans;
    for (const Symbol sym : explicit_syms) {
      const std::uint32_t t = intern(a.next(sa, sym), b.next(sb, sym));
      if (t != otherwise) trans.emplace(sym, t);
    }
    out.states_[id].otherwise = otherwise;
    out.states_[id].trans = std::move(trans);
  }
  return out.minimize();
}

void Dfa::compute_accept_reach() {
  // accept_dist_[s] = minimum symbols to reach an accepting state, over the
  // reverse transition graph (explicit + otherwise edges).
  accept_dist_.assign(states_.size(), kInfinity);
  std::vector<std::vector<std::uint32_t>> rev(states_.size());
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    const State& st = states_[s];
    if (st.otherwise != kDead) rev[st.otherwise].push_back(s);
    for (const auto& [sym, t] : st.trans) {
      if (t != kDead) rev[t].push_back(s);
    }
  }
  std::deque<std::uint32_t> work;
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    if (states_[s].accepting) {
      accept_dist_[s] = 0;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const auto s = work.front();
    work.pop_front();
    for (const auto p : rev[s]) {
      if (accept_dist_[p] == kInfinity) {
        accept_dist_[p] = accept_dist_[s] + 1;
        work.push_back(p);
      }
    }
  }
}

bool Dfa::can_accept(std::uint32_t state) const {
  return min_steps_to_accept(state) != kInfinity;
}

std::uint32_t Dfa::min_steps_to_accept(std::uint32_t state) const {
  if (state == kDead) return kInfinity;
  if (accept_dist_.size() != states_.size()) {
    const_cast<Dfa*>(this)->compute_accept_reach();
  }
  TULKUN_ASSERT(state < states_.size());
  return accept_dist_[state];
}

Dfa Dfa::minimize() const {
  if (states_.empty() || start_ == kDead) return Dfa{};

  // Pre-pass: states that cannot reach acceptance behave like kDead.
  Dfa pruned = *this;
  pruned.compute_accept_reach();
  const auto effective = [&](std::uint32_t t) {
    return (t == kDead || pruned.accept_dist_[t] == kInfinity) ? kDead : t;
  };
  for (auto& st : pruned.states_) {
    st.otherwise = effective(st.otherwise);
    std::erase_if(st.trans, [&](const auto& kv) {
      return effective(kv.second) == kDead && st.otherwise == kDead;
    });
    for (auto& [sym, t] : st.trans) t = effective(t);
  }
  if (effective(pruned.start_) == kDead) return Dfa{};

  // Moore partition refinement. Class of kDead is a fixed sentinel.
  constexpr std::uint32_t kDeadClass = ~0U;
  const std::size_t n = pruned.states_.size();
  std::vector<std::uint32_t> cls(n);
  for (std::size_t s = 0; s < n; ++s) {
    cls[s] = pruned.states_[s].accepting ? 1 : 0;
  }

  const auto cls_of = [&](std::uint32_t t) {
    return t == kDead ? kDeadClass : cls[t];
  };

  while (true) {
    // Signature: (old class, class(otherwise), per-symbol class deviations).
    using Sig = std::tuple<std::uint32_t, std::uint32_t,
                           std::vector<std::pair<Symbol, std::uint32_t>>>;
    std::map<Sig, std::uint32_t> sig_to_class;
    std::vector<std::uint32_t> next_cls(n);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t otherwise_cls =
          cls_of(pruned.states_[s].otherwise);
      std::vector<std::pair<Symbol, std::uint32_t>> deviations;
      for (const auto& [sym, t] : pruned.states_[s].trans) {
        const std::uint32_t c = cls_of(t);
        if (c != otherwise_cls) deviations.emplace_back(sym, c);
      }
      std::sort(deviations.begin(), deviations.end());
      Sig sig{cls[s], otherwise_cls, std::move(deviations)};
      const auto [it, inserted] = sig_to_class.emplace(
          std::move(sig), static_cast<std::uint32_t>(sig_to_class.size()));
      next_cls[s] = it->second;
    }
    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (next_cls[s] != cls[s]) {
        changed = true;
        break;
      }
    }
    cls = std::move(next_cls);
    if (!changed) break;
  }

  // Rebuild: one state per class reachable from the start class.
  std::vector<std::uint32_t> rep_of_class;  // class -> representative state
  {
    std::uint32_t max_cls = 0;
    for (const auto c : cls) max_cls = std::max(max_cls, c);
    rep_of_class.assign(max_cls + 1, kDead);
    for (std::uint32_t s = 0; s < n; ++s) {
      if (rep_of_class[cls[s]] == kDead) rep_of_class[cls[s]] = s;
    }
  }

  Dfa out;
  std::unordered_map<std::uint32_t, std::uint32_t> class_to_new;
  std::deque<std::uint32_t> work;
  const auto intern_class = [&](std::uint32_t c) -> std::uint32_t {
    if (c == kDeadClass) return kDead;
    const auto it = class_to_new.find(c);
    if (it != class_to_new.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(out.states_.size());
    out.states_.emplace_back();
    out.states_.back().accepting =
        pruned.states_[rep_of_class[c]].accepting;
    class_to_new.emplace(c, id);
    work.push_back(c);
    return id;
  };

  out.start_ = intern_class(cls[pruned.start_]);
  while (!work.empty()) {
    const auto c = work.front();
    work.pop_front();
    const std::uint32_t id = class_to_new.at(c);
    const State& rep = pruned.states_[rep_of_class[c]];
    const std::uint32_t otherwise = intern_class(cls_of(rep.otherwise));
    std::unordered_map<Symbol, std::uint32_t> trans;
    for (const auto& [sym, t] : rep.trans) {
      const std::uint32_t nt = intern_class(cls_of(t));
      if (nt != otherwise) trans.emplace(sym, nt);
    }
    out.states_[id].otherwise = otherwise;
    out.states_[id].trans = std::move(trans);
  }
  return out;
}

}  // namespace tulkun::regex
