// Thompson construction: regex AST -> NFA with epsilon transitions.
#pragma once

#include <cstdint>
#include <vector>

#include "regex/parser.hpp"

namespace tulkun::regex {

struct NfaEdge {
  SymbolSet on;
  std::uint32_t to = 0;
};

struct NfaState {
  std::vector<NfaEdge> edges;       // consuming transitions
  std::vector<std::uint32_t> eps;   // epsilon transitions
};

/// NFA with a single start and a single accepting state (Thompson shape).
struct Nfa {
  std::vector<NfaState> states;
  std::uint32_t start = 0;
  std::uint32_t accept = 0;
};

/// Builds the Thompson NFA of `ast`.
[[nodiscard]] Nfa build_nfa(const Ast& ast);

}  // namespace tulkun::regex
