#include "regex/nfa.hpp"

namespace tulkun::regex {

namespace {

/// Incremental Thompson builder; each construct returns (start, accept).
class Builder {
 public:
  std::pair<std::uint32_t, std::uint32_t> build(const Ast& ast) {
    switch (ast.kind) {
      case AstKind::Symbols: {
        const auto s = new_state();
        const auto t = new_state();
        states_[s].edges.push_back(NfaEdge{ast.symbols, t});
        return {s, t};
      }
      case AstKind::Epsilon: {
        const auto s = new_state();
        const auto t = new_state();
        states_[s].eps.push_back(t);
        return {s, t};
      }
      case AstKind::Concat: {
        TULKUN_ASSERT(!ast.children.empty());
        auto [s, t] = build(ast.children.front());
        for (std::size_t i = 1; i < ast.children.size(); ++i) {
          auto [s2, t2] = build(ast.children[i]);
          states_[t].eps.push_back(s2);
          t = t2;
        }
        return {s, t};
      }
      case AstKind::Union: {
        TULKUN_ASSERT(!ast.children.empty());
        const auto s = new_state();
        const auto t = new_state();
        for (const Ast& child : ast.children) {
          auto [cs, ct] = build(child);
          states_[s].eps.push_back(cs);
          states_[ct].eps.push_back(t);
        }
        return {s, t};
      }
      case AstKind::Star: {
        auto [is, it] = build(ast.children.front());
        const auto s = new_state();
        const auto t = new_state();
        states_[s].eps.push_back(is);
        states_[s].eps.push_back(t);
        states_[it].eps.push_back(is);
        states_[it].eps.push_back(t);
        return {s, t};
      }
      case AstKind::Plus: {
        auto [is, it] = build(ast.children.front());
        const auto s = new_state();
        const auto t = new_state();
        states_[s].eps.push_back(is);
        states_[it].eps.push_back(is);
        states_[it].eps.push_back(t);
        return {s, t};
      }
      case AstKind::Optional: {
        auto [is, it] = build(ast.children.front());
        const auto s = new_state();
        const auto t = new_state();
        states_[s].eps.push_back(is);
        states_[s].eps.push_back(t);
        states_[it].eps.push_back(t);
        return {s, t};
      }
    }
    TULKUN_ASSERT(false);
    return {0, 0};
  }

  std::vector<NfaState> take_states() { return std::move(states_); }

 private:
  std::uint32_t new_state() {
    states_.emplace_back();
    return static_cast<std::uint32_t>(states_.size() - 1);
  }

  std::vector<NfaState> states_;
};

}  // namespace

Nfa build_nfa(const Ast& ast) {
  Builder b;
  const auto [start, accept] = b.build(ast);
  return Nfa{b.take_states(), start, accept};
}

}  // namespace tulkun::regex
